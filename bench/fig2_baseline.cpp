//===- fig2_baseline.cpp - Figure 2: baseline hardware prefetching ---------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 2: per-benchmark IPC on the baseline SMT processor
// with no hardware prefetching, 4x4 stream buffers, and 8x8 stream
// buffers. The paper reports average speedups of ~35% (4x4) and ~40%
// (8x8) over no prefetching; the 8x8 configuration becomes the baseline
// for all later figures.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 2", "baseline IPC with hardware stream buffers",
              "4x4 buffers +35% avg over no prefetching; 8x8 +40%; "
              "8x8 adopted as the baseline");

  Table T({"benchmark", "IPC no-pf", "IPC 4x4", "IPC 8x8", "4x4 speedup",
           "8x8 speedup"});
  std::vector<double> S4, S8;

  SimConfig CN = SimConfig::hwBaseline();
  CN.HwPf = "none";
  SimConfig C4 = SimConfig::hwBaseline();
  C4.HwPf = "sb4x4";
  SimConfig C8 = SimConfig::hwBaseline();

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames()) {
    Jobs.emplace_back(Name, CN);
    Jobs.emplace_back(Name, C4);
    Jobs.emplace_back(Name, C8);
  }
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const std::string &Name = workloadNames()[I];
    const SimResult &RN = *Results[3 * I + 0];
    const SimResult &R4 = *Results[3 * I + 1];
    const SimResult &R8 = *Results[3 * I + 2];
    S4.push_back(speedup(R4, RN));
    S8.push_back(speedup(R8, RN));

    T.addRow({Name, formatDouble(RN.Ipc, 3), formatDouble(R4.Ipc, 3),
              formatDouble(R8.Ipc, 3), pctOver(R4, RN), pctOver(R8, RN)});
  }

  T.addSeparator();
  T.addRow({"geo-mean", "-", "-", "-",
            formatPercent(geometricMean(S4) - 1.0, 1),
            formatPercent(geometricMean(S8) - 1.0, 1)});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: both prefetching configurations should beat "
              "no-pf on average,\nwith 8x8 >= 4x4.\n");
  printEventHealthJson(Results);
  return 0;
}
