//===- fig7_sensitivity_window.cpp - Figure 7: DLT threshold sweep ---------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 7: average self-repairing speedup for load monitoring
// window sizes of 128/256/512 accesses crossed with cache-miss-rate
// thresholds of 1/3/6/12%. The paper finds that at least 8 misses per
// window is an adequate signal and that 3% @ 256 (the default) works
// best: too small a threshold over-prefetches, too large misses
// delinquent loads.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 7", "sensitivity to monitoring window & miss-rate "
                          "threshold (avg over all benchmarks)",
              "3% at a 256-access window works best; 8 misses per window "
              "is an adequate delinquency signal");

  const unsigned Windows[] = {128, 256, 512};
  const double Rates[] = {0.01, 0.03, 0.06, 0.12};

  // Per-benchmark baselines are shared across all 12 configurations.
  std::vector<SimResult> Bases;
  for (const std::string &Name : workloadNames())
    Bases.push_back(run(Name, SimConfig::hwBaseline()));

  Table T({"window \\ rate", "1%", "3%", "6%", "12%"});
  for (unsigned W : Windows) {
    std::vector<std::string> Row = {std::to_string(W) + " accesses"};
    for (double Rate : Rates) {
      unsigned MissThreshold =
          std::max(1u, static_cast<unsigned>(std::lround(W * Rate)));
      std::vector<double> Speedups;
      size_t I = 0;
      for (const std::string &Name : workloadNames()) {
        SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
        C.Runtime.Dlt.MonitorWindow = W;
        C.Runtime.Dlt.MissThreshold = MissThreshold;
        SimResult R = run(Name, C);
        Speedups.push_back(speedup(R, Bases[I++]));
      }
      Row.push_back(formatPercent(geometricMean(Speedups) - 1.0, 1));
      std::fflush(stdout);
    }
    T.addRow(Row);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: a broad plateau around the paper's default "
              "(256 accesses, 3%%);\nvery small windows with tiny "
              "thresholds over-trigger, very large thresholds\nmiss "
              "delinquent loads.\n");
  return 0;
}
