//===- fig7_sensitivity_window.cpp - Figure 7: DLT threshold sweep ---------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 7: average self-repairing speedup for load monitoring
// window sizes of 128/256/512 accesses crossed with cache-miss-rate
// thresholds of 1/3/6/12%. The paper finds that at least 8 misses per
// window is an adequate signal and that 3% @ 256 (the default) works
// best: too small a threshold over-prefetches, too large misses
// delinquent loads.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 7", "sensitivity to monitoring window & miss-rate "
                          "threshold (avg over all benchmarks)",
              "3% at a 256-access window works best; 8 misses per window "
              "is an adequate delinquency signal");

  const unsigned Windows[] = {128, 256, 512};
  const double Rates[] = {0.01, 0.03, 0.06, 0.12};

  // One batch covers the whole grid: 14 baselines (shared across all 12
  // configurations via the memo cache) plus 12x14 sweep points.
  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames())
    Jobs.emplace_back(Name, SimConfig::hwBaseline());
  for (unsigned W : Windows) {
    for (double Rate : Rates) {
      unsigned MissThreshold =
          std::max(1u, static_cast<unsigned>(std::lround(W * Rate)));
      for (const std::string &Name : workloadNames()) {
        SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
        C.Runtime.Dlt.MonitorWindow = W;
        C.Runtime.Dlt.MissThreshold = MissThreshold;
        Jobs.emplace_back(Name, C);
      }
    }
  }
  auto Results = runBatch(Jobs);

  const size_t NumWl = workloadNames().size();
  size_t Cursor = NumWl; // sweep points start after the baselines
  Table T({"window \\ rate", "1%", "3%", "6%", "12%"});
  for (unsigned W : Windows) {
    std::vector<std::string> Row = {std::to_string(W) + " accesses"};
    for (size_t R = 0; R < std::size(Rates); ++R) {
      std::vector<double> Speedups;
      for (size_t I = 0; I < NumWl; ++I)
        Speedups.push_back(speedup(*Results[Cursor++], *Results[I]));
      Row.push_back(formatPercent(geometricMean(Speedups) - 1.0, 1));
    }
    T.addRow(Row);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: a broad plateau around the paper's default "
              "(256 accesses, 3%%);\nvery small windows with tiny "
              "thresholds over-trigger, very large thresholds\nmiss "
              "delinquent loads.\n");
  printEventHealthJson(Results);
  return 0;
}
