//===- fig8_sensitivity_dlt.cpp - Figure 8: DLT size sweep -----------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 8: average self-repairing speedup for DLT sizes of
// 256/512/1024/2048 entries. The paper finds performance only slightly
// increases with size for most programs, but benchmarks with large
// working sets of load PCs (dot, parser) benefit from a large DLT; 1024
// entries suffices.
//
// Also reproduces the Section 5.4 note: spending the DLT + watch-table
// SRAM on a larger L1 instead yields only ~0.8%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 8", "sensitivity to DLT size (entries)",
              "small gains from doubling for most benchmarks; dot/parser "
              "want a large table; 1024 entries suffice");

  const unsigned Sizes[] = {256, 512, 1024, 2048};
  const size_t NumWl = workloadNames().size();

  // Baselines, the 4x14 size sweep, and the Section 5.4 big-L1 runs all
  // go into one parallel batch.
  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames())
    Jobs.emplace_back(Name, SimConfig::hwBaseline());
  for (unsigned SI = 0; SI < 4; ++SI) {
    for (const std::string &Name : workloadNames()) {
      SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
      C.Runtime.Dlt.NumEntries = Sizes[SI];
      Jobs.emplace_back(Name, C);
    }
  }
  for (const std::string &Name : workloadNames()) {
    SimConfig C = SimConfig::hwBaseline();
    C.Mem.L1 = {"L1", 96 * 1024, 3, 64, 3};
    Jobs.emplace_back(Name, C);
  }
  auto Results = runBatch(Jobs);

  Table T({"benchmark", "256", "512", "1024", "2048"});
  std::vector<std::vector<double>> PerSize(4);

  std::vector<std::vector<std::string>> Rows;
  for (size_t I = 0; I < NumWl; ++I)
    Rows.push_back({workloadNames()[I]});

  for (unsigned SI = 0; SI < 4; ++SI) {
    for (size_t I = 0; I < NumWl; ++I) {
      double S = speedup(*Results[NumWl * (SI + 1) + I], *Results[I]);
      PerSize[SI].push_back(S);
      Rows[I].push_back(formatPercent(S - 1.0, 1));
    }
  }
  for (auto &Row : Rows)
    T.addRow(Row);
  T.addSeparator();
  std::vector<std::string> Avg = {"geo-mean"};
  for (unsigned SI = 0; SI < 4; ++SI)
    Avg.push_back(formatPercent(geometricMean(PerSize[SI]) - 1.0, 1));
  T.addRow(Avg);
  std::printf("%s\n", T.render().c_str());

  // Section 5.4: spend the monitoring SRAM on a bigger L1 instead.
  // DLT (1024 x ~200 bits) + watch table + profiler is ~32KB: model it as
  // growing the 64KB 2-way L1 to 96KB 3-way (same 512 sets).
  std::printf("Section 5.4: monitoring SRAM spent on a larger L1 instead\n");
  std::vector<double> BigL1;
  for (size_t I = 0; I < NumWl; ++I)
    BigL1.push_back(speedup(*Results[NumWl * 5 + I], *Results[I]));
  std::printf("  96KB/3-way L1 vs 64KB/2-way: %s average speedup "
              "(paper: ~0.8%%)\n",
              formatPercent(geometricMean(BigL1) - 1.0, 2).c_str());
  std::printf("  vs. +%s from using the same SRAM as a 1024-entry DLT "
              "(self-repairing).\n\n",
              formatPercent(geometricMean(PerSize[2]) - 1.0, 1).c_str());
  printEventHealthJson(Results);
  return 0;
}
