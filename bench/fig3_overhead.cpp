//===- fig3_overhead.cpp - Section 5.1 / Figure 3: optimizer overhead ------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces the two overhead results of Section 5.1:
//   * Table: run Trident with prefetch optimization but *without linking*
//     the optimized traces; the slowdown vs. the plain baseline is the
//     pure cost of concurrent optimization (paper: ~0.6% total).
//   * Figure 3: fraction of the program's execution cycles during which
//     the optimization helper thread is active (paper: ~2.2% on average;
//     self-repairing adds at most ~25% more helper activity).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 3 / Section 5.1", "dynamic optimizer overhead",
              "optimize-without-linking costs ~0.6%; helper thread active "
              "~2.2% of cycles; self-repair <= ~25% more activity");

  Table T({"benchmark", "no-link overhead", "helper active (base)",
           "helper active (self-rep)"});
  std::vector<double> Overheads, ActBase, ActSrp;

  // Optimize but never link (the Section 5.1 experiment).
  SimConfig NoLink = SimConfig::withMode(PrefetchMode::SelfRepairing);
  NoLink.Runtime.LinkTraces = false;

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames()) {
    Jobs.emplace_back(Name, SimConfig::hwBaseline());
    Jobs.emplace_back(Name, NoLink);
    // Helper-thread activity with traces linked: trace formation only
    // (mode none) vs. the full self-repairing prefetcher.
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::None));
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));
  }
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const std::string &Name = workloadNames()[I];
    const SimResult &Base = *Results[4 * I + 0];
    const SimResult &RNoLink = *Results[4 * I + 1];
    const SimResult &RNone = *Results[4 * I + 2];
    const SimResult &RSrp = *Results[4 * I + 3];
    double Ovh = 1.0 - RNoLink.Ipc / Base.Ipc;

    Overheads.push_back(Ovh);
    ActBase.push_back(RNone.helperActiveFraction());
    ActSrp.push_back(RSrp.helperActiveFraction());
    T.addRow({Name, formatPercent(Ovh, 2),
              formatPercent(RNone.helperActiveFraction(), 2),
              formatPercent(RSrp.helperActiveFraction(), 2)});
  }

  T.addSeparator();
  T.addRow({"average", formatPercent(arithmeticMean(Overheads), 2),
            formatPercent(arithmeticMean(ActBase), 2),
            formatPercent(arithmeticMean(ActSrp), 2)});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: no-link overhead well under a few percent; "
              "helper activity a few\npercent of cycles, higher with "
              "self-repairing (extra repair events).\n");
  printEventHealthJson(Results);
  return 0;
}
