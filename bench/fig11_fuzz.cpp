//===- fig11_fuzz.cpp - Figure 11: the fuzzed scenario sweep ---------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The paper evaluates on 14 fixed benchmarks; this figure replaces the
// workload axis with an unbounded, seeded scenario space drawn from the
// generative fuzzer (src/workloads/fuzz). Each scenario is a canonical
// "fuzz@SEED[:knob=v,...]" name — fully reproducible from the JSONL
// record alone — and runs against every arsenal prefetcher with the
// Trident runtime off and on, relative to the no-prefetch baseline of
// the same scenario. The summary is the per-arsenal-unit geo-mean over
// all scenarios: how each unit holds up when the workload is not one of
// the 14 programs its heuristics grew up on.
//
// A second, smaller block re-runs a few scenarios as the primary of a
// multi-programmed mix (--mix semantics: shared memory system, private
// cores). For each such mix the harness ranks the arsenal units by
// speedup in the solo and the mixed context and flags rank changes:
// contention is exactly the condition under which a unit that wins solo
// can lose its slot, which is the event-driven selector's whole reason
// to exist.
//
// Environment knobs (on top of the BenchCommon set):
//   TRIDENT_FIG11_OUT        JSONL output path (default fig11_fuzz.jsonl)
//   TRIDENT_FIG11_SCENARIOS  number of fuzzed scenarios (default 50)
//   TRIDENT_FIG11_SEED0      first seed; scenario i uses SEED0+i
//                            (default 1000)
//   TRIDENT_FIG11_HWPF       comma list restricting the prefetcher axis
//   TRIDENT_FIG11_MIX        number of mix cells (default 6, 0 disables)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hwpf/PrefetcherRegistry.h"
#include "support/Random.h"
#include "workloads/fuzz/FuzzGenerator.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <type_traits>

using namespace trident;
using namespace trident::bench;

namespace {

uint64_t envU64(const char *Name, uint64_t Default) {
  if (const char *E = std::getenv(Name))
    if (*E)
      return std::strtoull(E, nullptr, 10);
  return Default;
}

std::vector<std::string> envList(const char *Name) {
  std::vector<std::string> Out;
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Out;
  std::string S(E);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

bool contains(const std::vector<std::string> &V, const std::string &S) {
  return std::find(V.begin(), V.end(), S) != V.end();
}

void jsonEscapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

/// Draws the knob vector for scenario \p Seed. Every knob independently
/// keeps its default half the time, so the space covers both the
/// mid-range defaults and the extremes; all draws come from one
/// SplitMix64 over the seed, so the scenario list is a pure function of
/// (SEED0, index) and a failure reproduces from its seed alone.
FuzzKnobs drawKnobs(uint64_t Seed) {
  SplitMix64 R(Seed * 0x9e3779b97f4a7c15ull + 0xf1611);
  FuzzKnobs K;
  auto maybe = [&](auto &Field, uint64_t Value) {
    if (R.nextBelow(2))
      Field = static_cast<std::remove_reference_t<decltype(Field)>>(Value);
  };
  static const uint64_t Wsets[] = {64, 256, 1024, 4096, 16384, 65536, 131072};
  static const uint64_t Phases[] = {128, 512, 2000, 8000, 40000, 200000};
  maybe(K.WsetKB, Wsets[R.nextBelow(7)]);
  maybe(K.Segments, 1 + R.nextBelow(8));
  maybe(K.EntropyPermille, R.nextBelow(1001));
  maybe(K.BranchPermille, R.nextBelow(1001));
  maybe(K.PhaseIters, Phases[R.nextBelow(6)]);
  maybe(K.Streams, 1 + R.nextBelow(10));
  return K;
}

/// Ranks units (indices into a speedup vector) best-first; ties broken by
/// index so the order is total and deterministic.
std::vector<size_t> rankOrder(const std::vector<double> &Speedups) {
  std::vector<size_t> Order(Speedups.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Speedups[A] > Speedups[B];
  });
  return Order;
}

} // namespace

int main() {
  printHeader("Figure 11", "fuzzed scenarios x arsenal x Trident on/off",
              "no direct paper analogue: out-of-distribution robustness of "
              "the arsenal, plus mix-induced ranking changes");

  const uint64_t NumScenarios = envU64("TRIDENT_FIG11_SCENARIOS", 50);
  const uint64_t Seed0 = envU64("TRIDENT_FIG11_SEED0", 1000);
  const uint64_t NumMixes = envU64("TRIDENT_FIG11_MIX", 6);

  std::vector<std::string> Hwpfs = {"none"};
  {
    std::vector<std::string> Filter = envList("TRIDENT_FIG11_HWPF");
    for (const std::string &N : PrefetcherRegistry::instance().arsenalNames())
      if (Filter.empty() || contains(Filter, N))
        Hwpfs.push_back(N);
  }

  std::vector<std::string> Scenarios;
  for (uint64_t I = 0; I < NumScenarios; ++I) {
    uint64_t Seed = Seed0 + I;
    Scenarios.push_back(fuzzWorkloadName(Seed, drawKnobs(Seed)));
  }

  // Mix cells: a rotating co-runner schedule over the first scenarios.
  // Co-runners mix hand-written streams (art/swim), pointer chasers
  // (mcf), and another fuzz scenario, 1..3 lanes, so the contention
  // shapes differ cell to cell. Mix cells run Trident off: the ranking
  // question is about the raw hardware units.
  std::vector<std::pair<std::string, std::vector<std::string>>> Mixes;
  if (!Scenarios.empty() && NumMixes > 0) {
    const std::vector<std::vector<std::string>> CoSets = {
        {"art"},
        {"mcf"},
        {"equake", "art"},
        {Scenarios[Scenarios.size() / 2]},
        {"swim"},
        {"art", "mcf", "equake"},
    };
    for (uint64_t I = 0; I < NumMixes; ++I)
      Mixes.emplace_back(Scenarios[I % Scenarios.size()],
                         CoSets[I % CoSets.size()]);
  }

  // One flat batch: the solo matrix scenario-major, then the mix cells.
  std::vector<NamedJob> Jobs;
  for (const std::string &Name : Scenarios)
    for (int Trident = 0; Trident < 2; ++Trident)
      for (const std::string &Pf : Hwpfs) {
        SimConfig C = Trident ? SimConfig::withMode(PrefetchMode::SelfRepairing)
                              : SimConfig::hwBaseline();
        C.HwPf = Pf;
        Jobs.emplace_back(Name, C);
      }
  const size_t MixBase = Jobs.size();
  for (const auto &[Primary, CoRunners] : Mixes)
    for (const std::string &Pf : Hwpfs) {
      SimConfig C = SimConfig::hwBaseline();
      C.HwPf = Pf;
      C.MixWith = CoRunners;
      Jobs.emplace_back(Primary, C);
    }
  auto Results = runBatch(Jobs);

  const size_t PerScenario = 2 * Hwpfs.size();
  auto cell = [&](size_t ScenIdx, int Trident, size_t PfIdx) {
    return Results[ScenIdx * PerScenario + size_t(Trident) * Hwpfs.size() +
                   PfIdx];
  };
  auto mixCell = [&](size_t MixIdx, size_t PfIdx) {
    return Results[MixBase + MixIdx * Hwpfs.size() + PfIdx];
  };

  const char *OutPath = std::getenv("TRIDENT_FIG11_OUT");
  if (!OutPath || !*OutPath)
    OutPath = "fig11_fuzz.jsonl";
  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 1;
  }

  auto emitLine = [&](const std::string &Scenario, const std::string &Pf,
                      const SimResult &R, int Trident, double Speedup,
                      const std::vector<std::string> &MixWith) {
    std::string Line = "{\"scenario\":\"";
    jsonEscapeInto(Line, Scenario);
    Line += "\",\"hwpf\":\"";
    jsonEscapeInto(Line, hwPfConfigName(Pf));
    Line += "\",\"mix\":\"";
    std::string MixStr;
    for (const std::string &M : MixWith) {
      if (!MixStr.empty())
        MixStr += '+';
      MixStr += M;
    }
    jsonEscapeInto(Line, MixStr);
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"trident\":%d,\"ipc\":%.6f,"
                  "\"speedup_over_none\":%.6f,\"hw_prefetches\":%llu,"
                  "\"pf_issued\":%llu,\"pf_useful\":%llu,\"pf_late\":%llu,"
                  "\"demand_misses\":%llu,\"accuracy\":%.6f,"
                  "\"coverage\":%.6f}",
                  Trident, R.Ipc, Speedup,
                  (unsigned long long)R.Mem.HardwarePrefetches,
                  (unsigned long long)R.PfFeedback.Issued,
                  (unsigned long long)R.PfFeedback.Useful,
                  (unsigned long long)R.PfFeedback.Late,
                  (unsigned long long)R.PfFeedback.DemandMisses,
                  R.PfFeedback.accuracy(), R.PfFeedback.coverage());
    Line += Buf;
    std::fprintf(Out, "%s\n", Line.c_str());
  };

  // Solo matrix records + per-unit speedup series.
  std::map<std::pair<std::string, int>, std::vector<double>> Series;
  for (size_t S = 0; S < Scenarios.size(); ++S) {
    const SimResult &Base = *cell(S, 0, 0);
    for (int Trident = 0; Trident < 2; ++Trident)
      for (size_t P = 0; P < Hwpfs.size(); ++P) {
        const SimResult &R = *cell(S, Trident, P);
        double Sp = speedup(R, Base);
        Series[{Hwpfs[P], Trident}].push_back(Sp);
        emitLine(Scenarios[S], Hwpfs[P], R, Trident, Sp, {});
      }
  }

  // Mix records: speedup is over the no-prefetch cell of the *same mix*,
  // so it isolates the unit's value under that contention, not the
  // contention itself.
  for (size_t M = 0; M < Mixes.size(); ++M) {
    const SimResult &Base = *mixCell(M, 0);
    for (size_t P = 0; P < Hwpfs.size(); ++P)
      emitLine(Mixes[M].first, Hwpfs[P], *mixCell(M, P), 0,
               speedup(*mixCell(M, P), Base), Mixes[M].second);
  }
  std::fclose(Out);
  std::printf("fuzz sweep: %zu scenarios x %zu units x 2 + %zu mix cells "
              "-> %s\n\n",
              Scenarios.size(), Hwpfs.size(), Mixes.size() * Hwpfs.size(),
              OutPath);

  // Per-unit geo-mean over the whole scenario space.
  Table A({"prefetcher", "geo-mean (Trident off)", "geo-mean (Trident on)"});
  for (const std::string &Pf : Hwpfs) {
    const std::vector<double> &Off = Series[{Pf, 0}];
    const std::vector<double> &On = Series[{Pf, 1}];
    A.addRow({hwPfConfigName(Pf),
              Off.empty() ? "-" : formatPercent(geometricMean(Off) - 1.0, 1),
              On.empty() ? "-" : formatPercent(geometricMean(On) - 1.0, 1)});
  }
  std::printf("%s\n", A.render().c_str());

  // Ranking comparison: for every mix cell, order the real units (index
  // 1..) by speedup solo vs mixed; any difference in the order is a rank
  // change worth a record.
  size_t Changed = 0;
  for (size_t M = 0; M < Mixes.size(); ++M) {
    // Locate the primary's solo row (Trident off).
    size_t ScenIdx =
        size_t(std::find(Scenarios.begin(), Scenarios.end(), Mixes[M].first) -
               Scenarios.begin());
    std::vector<double> SoloSp, MixSp;
    for (size_t P = 1; P < Hwpfs.size(); ++P) {
      SoloSp.push_back(speedup(*cell(ScenIdx, 0, P), *cell(ScenIdx, 0, 0)));
      MixSp.push_back(speedup(*mixCell(M, P), *mixCell(M, 0)));
    }
    std::vector<size_t> SoloOrder = rankOrder(SoloSp);
    std::vector<size_t> MixOrder = rankOrder(MixSp);
    bool Diff = SoloOrder != MixOrder;
    Changed += Diff;

    std::string Co;
    for (const std::string &C : Mixes[M].second)
      Co += (Co.empty() ? "" : "+") + C;
    std::printf("mix %zu: %s vs %s%s\n", M, Mixes[M].first.c_str(), Co.c_str(),
                Diff ? "  ** ranking changed **" : "");
    Table T({"unit", "solo speedup", "solo rank", "mix speedup", "mix rank"});
    for (size_t P = 1; P < Hwpfs.size(); ++P) {
      size_t SoloRank =
          size_t(std::find(SoloOrder.begin(), SoloOrder.end(), P - 1) -
                 SoloOrder.begin());
      size_t MixRank = size_t(std::find(MixOrder.begin(), MixOrder.end(),
                                        P - 1) -
                              MixOrder.begin());
      char SB[32], MB[32];
      std::snprintf(SB, sizeof(SB), "%.4f", SoloSp[P - 1]);
      std::snprintf(MB, sizeof(MB), "%.4f", MixSp[P - 1]);
      T.addRow({hwPfConfigName(Hwpfs[P]), SB, std::to_string(SoloRank + 1), MB,
                std::to_string(MixRank + 1)});
    }
    std::printf("%s\n", T.render().c_str());
  }
  if (!Mixes.empty())
    std::printf("arsenal ranking changed under contention in %zu of %zu "
                "mixes\n\n",
                Changed, Mixes.size());

  printEventHealthJson(Results);
  return 0;
}
