//===- fig6_breakdown.cpp - Figure 6: dynamic-load outcome breakdown -------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 6: the percentage of all dynamic loads that hit
// normally, hit a line a prefetch brought in (first touch), partially hit
// an in-flight prefetch, miss, or miss *because* a prefetch displaced the
// line. The paper's two key observations: misses due to prefetching
// rarely occur, and partial prefetch hits are a small fraction.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 6", "breakdown of all dynamic loads",
              "misses-due-to-prefetch rare; low incidence of partial hits");

  Table T({"benchmark", "hits", "hit-prefetched", "partial hits", "misses",
           "miss-due-to-pf"});
  double SumPartial = 0, SumMissPf = 0;

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames())
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const RuntimeStats &S = Results[I]->Runtime;
    double N = std::max<double>(1.0, static_cast<double>(S.LdTotal));
    auto Pct = [&](uint64_t X) {
      return formatPercent(static_cast<double>(X) / N, 1);
    };
    SumPartial += static_cast<double>(S.LdPartial) / N;
    SumMissPf += static_cast<double>(S.LdMissDueToPf) / N;
    T.addRow({workloadNames()[I], Pct(S.LdHitNone), Pct(S.LdHitPrefetched),
              Pct(S.LdPartial), Pct(S.LdMiss), Pct(S.LdMissDueToPf)});
  }

  size_t N = workloadNames().size();
  T.addSeparator();
  T.addRow({"average", "-", "-", formatPercent(SumPartial / static_cast<double>(N), 1), "-",
            formatPercent(SumMissPf / static_cast<double>(N), 1)});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: the miss-due-to-prefetch column should be near "
              "zero everywhere\n(the adaptive prefetcher rarely pollutes), "
              "and partial hits a modest share.\n");
  printEventHealthJson(Results);
  return 0;
}
