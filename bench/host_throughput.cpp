//===- host_throughput.cpp - Simulator host-throughput benchmark -----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Not a paper figure: measures how fast *the simulator itself* runs on the
// host. Executes the full 14-workload x 4-config sweep (the shape of a
// complete figure batch) twice — once on a single worker thread, once on
// the full pool — with the memo cache disabled, and reports wall-clock
// time, simulated-instructions-per-host-second, and the parallel/serial
// speedup. Also cross-checks that the parallel results are bit-identical
// to the serial ones (Cycles and RegChecksum per run).
//
// Emits a machine-readable JSON line at the end so CI can track the
// repo's performance trajectory:
//
//   {"bench":"host_throughput","jobs":56,...,"speedup":3.42,...}
//
// Knobs: TRIDENT_BENCH_INSTR / TRIDENT_BENCH_QUICK (per-run budget),
// TRIDENT_BENCH_JOBS (pool size for the parallel leg).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>

using namespace trident;
using namespace trident::bench;

namespace {

std::vector<ExperimentJob> buildSweep() {
  const SimConfig Configs[] = {
      SimConfig::hwBaseline(),
      SimConfig::withMode(PrefetchMode::Basic),
      SimConfig::withMode(PrefetchMode::WholeObject),
      SimConfig::withMode(PrefetchMode::SelfRepairing),
  };
  std::vector<ExperimentJob> Jobs;
  for (const std::string &Name : workloadNames())
    for (const SimConfig &C : Configs)
      Jobs.push_back(ExperimentJob{makeWorkload(Name), withBudget(C)});
  return Jobs;
}

struct Leg {
  double Seconds = 0.0;
  uint64_t SimInstructions = 0;
  std::vector<std::shared_ptr<const SimResult>> Results;

  double instrPerSecond() const {
    return Seconds == 0.0 ? 0.0 : static_cast<double>(SimInstructions) / Seconds;
  }
};

Leg runLeg(const std::vector<ExperimentJob> &Jobs, unsigned Threads) {
  ExperimentRunner Runner({Threads, /*UseCache=*/false});
  auto Start = std::chrono::steady_clock::now();
  Leg L;
  L.Results = Runner.runBatch(Jobs);
  auto End = std::chrono::steady_clock::now();
  L.Seconds = std::chrono::duration<double>(End - Start).count();
  for (const auto &R : L.Results)
    L.SimInstructions += R->Instructions;
  return L;
}

} // namespace

int main() {
  std::vector<ExperimentJob> Jobs = buildSweep();
  unsigned Threads = ExperimentRunner::defaultThreadCount();

  printHeader("host_throughput",
              "simulator wall-clock throughput, serial vs parallel",
              "not a paper figure — tracks simulated-instructions-per-"
              "host-second across the repo's history");
  std::printf("sweep: %zu jobs (14 workloads x 4 configs), parallel leg on "
              "%u threads\n\n",
              Jobs.size(), Threads);

  std::printf("serial leg (1 worker)...\n");
  Leg Serial = runLeg(Jobs, 1);
  std::printf("  %.2fs, %.0f simulated instructions/host-second\n",
              Serial.Seconds, Serial.instrPerSecond());

  std::printf("parallel leg (%u workers)...\n", Threads);
  Leg Parallel = runLeg(Jobs, Threads);
  std::printf("  %.2fs, %.0f simulated instructions/host-second\n",
              Parallel.Seconds, Parallel.instrPerSecond());

  // Determinism cross-check: scheduling must not perturb a single bit.
  size_t Mismatches = 0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const SimResult &A = *Serial.Results[I];
    const SimResult &B = *Parallel.Results[I];
    if (A.Cycles != B.Cycles || A.RegChecksum != B.RegChecksum ||
        A.Instructions != B.Instructions)
      ++Mismatches;
  }

  double Speedup =
      Parallel.Seconds == 0.0 ? 0.0 : Serial.Seconds / Parallel.Seconds;
  std::printf("\nspeedup: %.2fx; results %s\n", Speedup,
              Mismatches == 0 ? "bit-identical"
                              : "MISMATCHED (determinism bug!)");

  std::printf("\n{\"bench\":\"host_throughput\",\"jobs\":%zu,"
              "\"threads\":%u,\"instr_per_run\":%llu,"
              "\"serial_seconds\":%.3f,\"parallel_seconds\":%.3f,"
              "\"serial_ips\":%.0f,\"parallel_ips\":%.0f,"
              "\"speedup\":%.3f,\"identical\":%s}\n",
              Jobs.size(), Threads,
              static_cast<unsigned long long>(instrBudget()), Serial.Seconds,
              Parallel.Seconds, Serial.instrPerSecond(),
              Parallel.instrPerSecond(), Speedup,
              Mismatches == 0 ? "true" : "false");
  return Mismatches == 0 ? 0 : 1;
}
