//===- host_throughput.cpp - Simulator host-throughput benchmark -----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Not a paper figure: measures how fast *the simulator itself* runs on the
// host. Executes the full 14-workload x 4-config sweep (the shape of a
// complete figure batch) on a single worker thread and on the full pool,
// each leg repeated TRIDENT_BENCH_REPEATS times (default 3) with the memo
// cache disabled, and reports the per-leg median wall-clock time,
// simulated-instructions-per-host-second, and the parallel/serial speedup.
// Also cross-checks that every repeat of every leg is bit-identical to the
// first serial run (Cycles and RegChecksum per job).
//
// Besides the human-readable report, writes one machine-readable JSON
// object to $TRIDENT_BENCH_OUT (default ./BENCH_host_throughput.json) and
// echoes it on stdout, so CI can compare against the committed scoreboard
// with tools/bench_compare.py:
//
//   {"bench":"host_throughput","jobs":56,...,"serial_ips":...,
//    "serial_runs_ips":[...],"speedup":3.42,...}
//
// Knobs: TRIDENT_BENCH_INSTR / TRIDENT_BENCH_QUICK (per-run budget),
// TRIDENT_BENCH_JOBS (pool size for the parallel leg),
// TRIDENT_BENCH_REPEATS (repeats per leg), TRIDENT_BENCH_OUT (JSON path).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <chrono>
#include <map>

using namespace trident;
using namespace trident::bench;

namespace {

std::vector<ExperimentJob> buildSweep() {
  const SimConfig Configs[] = {
      SimConfig::hwBaseline(),
      SimConfig::withMode(PrefetchMode::Basic),
      SimConfig::withMode(PrefetchMode::WholeObject),
      SimConfig::withMode(PrefetchMode::SelfRepairing),
  };
  std::vector<ExperimentJob> Jobs;
  for (const std::string &Name : workloadNames())
    for (const SimConfig &C : Configs)
      Jobs.push_back(ExperimentJob{makeWorkload(Name), withBudget(C)});
  return Jobs;
}

unsigned repeatCount() {
  unsigned N = 3;
  if (const char *E = std::getenv("TRIDENT_BENCH_REPEATS"))
    if (unsigned V = static_cast<unsigned>(std::strtoul(E, nullptr, 10)))
      N = V;
  return N;
}

struct Leg {
  double Seconds = 0.0;
  uint64_t SimInstructions = 0;
  std::vector<std::shared_ptr<const SimResult>> Results;

  double instrPerSecond() const {
    return Seconds == 0.0 ? 0.0 : static_cast<double>(SimInstructions) / Seconds;
  }
};

Leg runLeg(const std::vector<ExperimentJob> &Jobs, unsigned Threads) {
  ExperimentRunner Runner({Threads, /*UseCache=*/false});
  auto Start = std::chrono::steady_clock::now();
  Leg L;
  L.Results = Runner.runBatch(Jobs);
  auto End = std::chrono::steady_clock::now();
  L.Seconds = std::chrono::duration<double>(End - Start).count();
  for (const auto &R : L.Results)
    L.SimInstructions += R->Instructions;
  return L;
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  size_t N = V.size();
  return N % 2 ? V[N / 2] : (V[N / 2 - 1] + V[N / 2]) / 2.0;
}

/// Counts jobs whose (Cycles, RegChecksum, Instructions) differ from the
/// reference leg — any nonzero count is a determinism bug.
size_t mismatchesVs(const Leg &Ref, const Leg &L) {
  size_t Bad = 0;
  for (size_t I = 0; I < Ref.Results.size(); ++I) {
    const SimResult &A = *Ref.Results[I];
    const SimResult &B = *L.Results[I];
    if (A.Cycles != B.Cycles || A.RegChecksum != B.RegChecksum ||
        A.Instructions != B.Instructions)
      ++Bad;
  }
  return Bad;
}

void appendDoubleArray(std::string &Out, const std::vector<double> &V,
                       const char *Fmt) {
  Out.push_back('[');
  char Buf[64];
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out.push_back(',');
    std::snprintf(Buf, sizeof(Buf), Fmt, V[I]);
    Out += Buf;
  }
  Out.push_back(']');
}

} // namespace

int main() {
  std::vector<ExperimentJob> Jobs = buildSweep();
  unsigned Threads = ExperimentRunner::defaultThreadCount();
  unsigned Repeats = repeatCount();

  printHeader("host_throughput",
              "simulator wall-clock throughput, serial vs parallel",
              "not a paper figure — tracks simulated-instructions-per-"
              "host-second across the repo's history");
  std::printf("sweep: %zu jobs (14 workloads x 4 configs), %u repeats per "
              "leg, parallel leg on %u threads\n\n",
              Jobs.size(), Repeats, Threads);

  // First serial run is the determinism reference for every later leg.
  Leg Reference;
  std::vector<double> SerialIps, SerialSecs, ParallelIps, ParallelSecs;
  size_t Mismatches = 0;

  std::printf("serial leg (1 worker), %u repeats...\n", Repeats);
  for (unsigned R = 0; R < Repeats; ++R) {
    Leg L = runLeg(Jobs, 1);
    std::printf("  run %u: %.2fs, %.0f simulated instructions/host-second\n",
                R + 1, L.Seconds, L.instrPerSecond());
    SerialIps.push_back(L.instrPerSecond());
    SerialSecs.push_back(L.Seconds);
    if (R == 0)
      Reference = std::move(L);
    else
      Mismatches += mismatchesVs(Reference, L);
  }

  std::printf("parallel leg (%u workers), %u repeats...\n", Threads, Repeats);
  for (unsigned R = 0; R < Repeats; ++R) {
    Leg L = runLeg(Jobs, Threads);
    std::printf("  run %u: %.2fs, %.0f simulated instructions/host-second\n",
                R + 1, L.Seconds, L.instrPerSecond());
    ParallelIps.push_back(L.instrPerSecond());
    ParallelSecs.push_back(L.Seconds);
    Mismatches += mismatchesVs(Reference, L);
  }

  double SerialSec = median(SerialSecs);
  double ParallelSec = median(ParallelSecs);
  double Speedup = ParallelSec == 0.0 ? 0.0 : SerialSec / ParallelSec;
  std::printf("\nmedians: serial %.2fs (%.0f instr/s), parallel %.2fs "
              "(%.0f instr/s), speedup %.2fx; results %s\n",
              SerialSec, median(SerialIps), ParallelSec, median(ParallelIps),
              Speedup,
              Mismatches == 0 ? "bit-identical"
                              : "MISMATCHED (determinism bug!)");

  // Every sweep config runs the same hardware prefetcher; record which,
  // plus its aggregate activity, so the scoreboard comparison refuses to
  // line up numbers from different hwpf configurations.
  const std::string HwPf = Jobs.front().Config.HwPf;
  std::map<std::string, uint64_t> PfTotals;
  for (const auto &R : Reference.Results)
    for (const auto &KV : R->HwPf.Counters)
      PfTotals[KV.first] += KV.second;

  std::string Json;
  Json.reserve(512);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"bench\":\"host_throughput\",\"jobs\":%zu,"
                "\"threads\":%u,\"repeats\":%u,\"instr_per_run\":%llu,"
                "\"hwpf\":\"%s\",\"serial_seconds\":%.3f,"
                "\"parallel_seconds\":%.3f,"
                "\"serial_ips\":%.0f,\"parallel_ips\":%.0f,",
                Jobs.size(), Threads, Repeats,
                static_cast<unsigned long long>(instrBudget()), HwPf.c_str(),
                SerialSec, ParallelSec, median(SerialIps),
                median(ParallelIps));
  Json += Buf;
  Json += "\"hwpf_stats\":{";
  {
    bool First = true;
    for (const auto &KV : PfTotals) {
      std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%llu", First ? "" : ",",
                    KV.first.c_str(),
                    static_cast<unsigned long long>(KV.second));
      Json += Buf;
      First = false;
    }
  }
  Json += "},";
  Json += "\"serial_runs_ips\":";
  appendDoubleArray(Json, SerialIps, "%.0f");
  Json += ",\"parallel_runs_ips\":";
  appendDoubleArray(Json, ParallelIps, "%.0f");
  std::snprintf(Buf, sizeof(Buf), ",\"speedup\":%.3f,\"identical\":%s}",
                Speedup, Mismatches == 0 ? "true" : "false");
  Json += Buf;

  std::printf("\n%s\n", Json.c_str());

  const char *OutPath = std::getenv("TRIDENT_BENCH_OUT");
  if (!OutPath || !*OutPath)
    OutPath = "BENCH_host_throughput.json";
  if (std::FILE *F = std::fopen(OutPath, "w")) {
    std::fprintf(F, "%s\n", Json.c_str());
    std::fclose(F);
    std::printf("wrote %s\n", OutPath);
  } else {
    std::printf("WARNING: could not write %s\n", OutPath);
  }
  return Mismatches == 0 ? 0 : 1;
}
