//===- fig9_hw_vs_sw.cpp - Figure 9: software vs hardware prefetching ------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 9: speedups relative to a machine with *no*
// prefetching at all, comparing hardware stream buffers alone (8x8),
// self-repairing software prefetching alone, and the combination. The
// paper finds software-only beats hardware-only on most benchmarks (~11%
// more on average) but hardware wins on dot, equake, and swim (simple
// short strides / low trace coverage), and the combination is best.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 9", "HW-only vs SW-only vs combined, over no-pf",
              "SW-only beats HW-only on most benchmarks (+11% avg more); "
              "HW-only wins on dot/equake/swim; combination best");

  Table T({"benchmark", "HW only", "SW only", "HW+SW"});
  std::vector<double> SH, SS, SC;

  for (const std::string &Name : workloadNames()) {
    SimConfig CN = SimConfig::hwBaseline();
    CN.HwPf = HwPfConfig::None;
    SimResult RNone = run(Name, CN);

    SimResult RHw = run(Name, SimConfig::hwBaseline());

    SimConfig CSw = SimConfig::withMode(PrefetchMode::SelfRepairing);
    CSw.HwPf = HwPfConfig::None;
    SimResult RSw = run(Name, CSw);

    SimResult RBoth =
        run(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));

    SH.push_back(speedup(RHw, RNone));
    SS.push_back(speedup(RSw, RNone));
    SC.push_back(speedup(RBoth, RNone));
    T.addRow({Name, pctOver(RHw, RNone), pctOver(RSw, RNone),
              pctOver(RBoth, RNone)});
    std::fflush(stdout);
  }

  T.addSeparator();
  T.addRow({"geo-mean", formatPercent(geometricMean(SH) - 1.0, 1),
            formatPercent(geometricMean(SS) - 1.0, 1),
            formatPercent(geometricMean(SC) - 1.0, 1)});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: hardware should win on the simple-stride and "
              "low-coverage\nbenchmarks (swim, equake, dot); the "
              "combination should dominate both.\n");
  return 0;
}
