//===- fig9_hw_vs_sw.cpp - Figure 9: software vs hardware prefetching ------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 9: speedups relative to a machine with *no*
// prefetching at all, comparing hardware stream buffers alone (8x8),
// self-repairing software prefetching alone, and the combination. The
// paper finds software-only beats hardware-only on most benchmarks (~11%
// more on average) but hardware wins on dot, equake, and swim (simple
// short strides / low trace coverage), and the combination is best.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 9", "HW-only vs SW-only vs combined, over no-pf",
              "SW-only beats HW-only on most benchmarks (+11% avg more); "
              "HW-only wins on dot/equake/swim; combination best");

  Table T({"benchmark", "HW only", "SW only", "HW+SW"});
  std::vector<double> SH, SS, SC;

  SimConfig CN = SimConfig::hwBaseline();
  CN.HwPf = HwPfConfig::None;
  SimConfig CSw = SimConfig::withMode(PrefetchMode::SelfRepairing);
  CSw.HwPf = HwPfConfig::None;

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames()) {
    Jobs.emplace_back(Name, CN);
    Jobs.emplace_back(Name, SimConfig::hwBaseline());
    Jobs.emplace_back(Name, CSw);
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));
  }
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const std::string &Name = workloadNames()[I];
    const SimResult &RNone = *Results[4 * I + 0];
    const SimResult &RHw = *Results[4 * I + 1];
    const SimResult &RSw = *Results[4 * I + 2];
    const SimResult &RBoth = *Results[4 * I + 3];

    SH.push_back(speedup(RHw, RNone));
    SS.push_back(speedup(RSw, RNone));
    SC.push_back(speedup(RBoth, RNone));
    T.addRow({Name, pctOver(RHw, RNone), pctOver(RSw, RNone),
              pctOver(RBoth, RNone)});
  }

  T.addSeparator();
  T.addRow({"geo-mean", formatPercent(geometricMean(SH) - 1.0, 1),
            formatPercent(geometricMean(SS) - 1.0, 1),
            formatPercent(geometricMean(SC) - 1.0, 1)});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: hardware should win on the simple-stride and "
              "low-coverage\nbenchmarks (swim, equake, dot); the "
              "combination should dominate both.\n");
  printEventHealthJson(Results);
  return 0;
}
