//===- fig9_hw_vs_sw.cpp - Figure 9: the prefetcher-arsenal matrix ---------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 9 and extends it into an arsenal matrix. The paper
// compares hardware stream buffers alone (8x8), self-repairing software
// prefetching alone, and the combination, all relative to a machine with
// *no* prefetching: software-only beats hardware-only on most benchmarks
// (~11% more on average) but hardware wins on dot, equake, and swim, and
// the combination is best.
//
// The arsenal matrix generalizes the "hardware" axis: every prefetcher in
// the registry (stream buffers, enhanced stream, DCPT, T-SKID) runs on
// every workload with the Trident runtime off and on, each cell emitted
// as one JSONL record with IPC, speedup over the no-prefetch baseline,
// and the unit's accuracy/coverage feedback.
//
// Environment knobs (on top of the BenchCommon set):
//   TRIDENT_FIG9_OUT        JSONL output path (default fig9_arsenal.jsonl)
//   TRIDENT_FIG9_WORKLOADS  comma list restricting the workload axis
//   TRIDENT_FIG9_HWPF       comma list restricting the prefetcher axis
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hwpf/PrefetcherRegistry.h"

#include <algorithm>
#include <map>

using namespace trident;
using namespace trident::bench;

namespace {

/// Splits a comma-separated env value; empty result means "no filter".
std::vector<std::string> envList(const char *Name) {
  std::vector<std::string> Out;
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Out;
  std::string S(E);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

bool contains(const std::vector<std::string> &V, const std::string &S) {
  return std::find(V.begin(), V.end(), S) != V.end();
}

void jsonEscapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

} // namespace

int main() {
  printHeader("Figure 9", "prefetcher arsenal x workloads x Trident on/off",
              "SW-only beats HW-only on most benchmarks (+11% avg more); "
              "HW-only wins on dot/equake/swim; combination best");

  // Axes. "none" is always present: every speedup in this figure is over
  // the no-prefetch, no-Trident machine.
  std::vector<std::string> Hwpfs = {"none"};
  {
    std::vector<std::string> Filter = envList("TRIDENT_FIG9_HWPF");
    for (const std::string &N : PrefetcherRegistry::instance().arsenalNames())
      if (Filter.empty() || contains(Filter, N))
        Hwpfs.push_back(N);
  }
  std::vector<std::string> Loads;
  {
    std::vector<std::string> Filter = envList("TRIDENT_FIG9_WORKLOADS");
    for (const std::string &N : workloadNames())
      if (Filter.empty() || contains(Filter, N))
        Loads.push_back(N);
  }

  // One flat batch: workload-major, then Trident off/on, then prefetcher.
  // The shared memo-cache dedups the overlap with other figures' jobs.
  std::vector<NamedJob> Jobs;
  for (const std::string &Name : Loads) {
    for (int Trident = 0; Trident < 2; ++Trident) {
      for (const std::string &Pf : Hwpfs) {
        SimConfig C = Trident ? SimConfig::withMode(PrefetchMode::SelfRepairing)
                              : SimConfig::hwBaseline();
        C.HwPf = Pf;
        Jobs.emplace_back(Name, C);
      }
    }
  }
  auto Results = runBatch(Jobs);

  const size_t PerLoad = 2 * Hwpfs.size();
  auto cell = [&](size_t LoadIdx, int Trident, size_t PfIdx) {
    return Results[LoadIdx * PerLoad + size_t(Trident) * Hwpfs.size() + PfIdx];
  };

  // JSONL: one record per matrix cell.
  const char *OutPath = std::getenv("TRIDENT_FIG9_OUT");
  if (!OutPath || !*OutPath)
    OutPath = "fig9_arsenal.jsonl";
  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 1;
  }

  // Per-prefetcher speedup series for the summary table, keyed by
  // (prefetcher, trident); "none" x trident-on is the SW-only column.
  std::map<std::pair<std::string, int>, std::vector<double>> Series;

  for (size_t L = 0; L < Loads.size(); ++L) {
    const SimResult &Base = *cell(L, 0, 0); // none, Trident off
    for (int Trident = 0; Trident < 2; ++Trident) {
      for (size_t P = 0; P < Hwpfs.size(); ++P) {
        const SimResult &R = *cell(L, Trident, P);
        double Speedup = speedup(R, Base);
        Series[{Hwpfs[P], Trident}].push_back(Speedup);

        std::string Line = "{\"workload\":\"";
        jsonEscapeInto(Line, Loads[L]);
        Line += "\",\"hwpf\":\"";
        jsonEscapeInto(Line, hwPfConfigName(Hwpfs[P]));
        Line += "\",\"prefetcher\":\"";
        jsonEscapeInto(Line, R.HwPf.Prefetcher.empty() ? "none"
                                                       : R.HwPf.Prefetcher);
        char Buf[256];
        std::snprintf(Buf, sizeof(Buf),
                      "\",\"trident\":%d,\"ipc\":%.6f,"
                      "\"speedup_over_none\":%.6f,\"hw_prefetches\":%llu,"
                      "\"pf_issued\":%llu,\"pf_useful\":%llu,"
                      "\"pf_late\":%llu,\"demand_misses\":%llu,"
                      "\"accuracy\":%.6f,\"coverage\":%.6f}",
                      Trident, R.Ipc, Speedup,
                      (unsigned long long)R.Mem.HardwarePrefetches,
                      (unsigned long long)R.PfFeedback.Issued,
                      (unsigned long long)R.PfFeedback.Useful,
                      (unsigned long long)R.PfFeedback.Late,
                      (unsigned long long)R.PfFeedback.DemandMisses,
                      R.PfFeedback.accuracy(), R.PfFeedback.coverage());
        Line += Buf;
        std::fprintf(Out, "%s\n", Line.c_str());
      }
    }
  }
  std::fclose(Out);
  std::printf("arsenal matrix: %zu cells -> %s\n\n",
              Loads.size() * PerLoad, OutPath);

  // The paper's classic four-way table, when its configurations survived
  // the axis filters.
  if (contains(Hwpfs, "sb8x8")) {
    size_t Sb = size_t(std::find(Hwpfs.begin(), Hwpfs.end(),
                                 std::string("sb8x8")) -
                       Hwpfs.begin());
    Table T({"benchmark", "HW only", "SW only", "HW+SW"});
    std::vector<double> SH, SS, SC;
    for (size_t L = 0; L < Loads.size(); ++L) {
      const SimResult &RNone = *cell(L, 0, 0);
      const SimResult &RHw = *cell(L, 0, Sb);
      const SimResult &RSw = *cell(L, 1, 0);
      const SimResult &RBoth = *cell(L, 1, Sb);
      SH.push_back(speedup(RHw, RNone));
      SS.push_back(speedup(RSw, RNone));
      SC.push_back(speedup(RBoth, RNone));
      T.addRow({Loads[L], pctOver(RHw, RNone), pctOver(RSw, RNone),
                pctOver(RBoth, RNone)});
    }
    T.addSeparator();
    T.addRow({"geo-mean", formatPercent(geometricMean(SH) - 1.0, 1),
              formatPercent(geometricMean(SS) - 1.0, 1),
              formatPercent(geometricMean(SC) - 1.0, 1)});
    std::printf("%s\n", T.render().c_str());
    std::printf("shape check: hardware should win on the simple-stride and "
                "low-coverage\nbenchmarks (swim, equake, dot); the "
                "combination should dominate both.\n\n");
  }

  // Arsenal summary: geo-mean speedup over no-pf for every prefetcher,
  // with and without the software side.
  Table A({"prefetcher", "geo-mean (Trident off)", "geo-mean (Trident on)"});
  for (const std::string &Pf : Hwpfs) {
    const std::vector<double> &Off = Series[{Pf, 0}];
    const std::vector<double> &On = Series[{Pf, 1}];
    A.addRow({hwPfConfigName(Pf),
              Off.empty() ? "-" : formatPercent(geometricMean(Off) - 1.0, 1),
              On.empty() ? "-" : formatPercent(geometricMean(On) - 1.0, 1)});
  }
  std::printf("%s\n", A.render().c_str());
  printEventHealthJson(Results);
  return 0;
}
