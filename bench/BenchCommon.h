//===- BenchCommon.h - Shared harness utilities for figure benches --------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: instruction-budget
/// env knobs, cached baseline runs, and table assembly. Every figure
/// binary prints the same rows/series the paper reports, plus a short
/// "paper says / we measure" note.
///
/// Environment knobs:
///   TRIDENT_BENCH_INSTR  per-run committed-instruction budget
///                        (default 2,000,000)
///   TRIDENT_BENCH_QUICK  =1: quarter budget (smoke-testing the harness)
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_BENCH_BENCHCOMMON_H
#define TRIDENT_BENCH_BENCHCOMMON_H

#include "sim/Simulation.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace trident {
namespace bench {

inline uint64_t instrBudget() {
  uint64_t N = 2'000'000;
  if (const char *E = std::getenv("TRIDENT_BENCH_INSTR"))
    if (uint64_t V = std::strtoull(E, nullptr, 10))
      N = V;
  if (const char *Q = std::getenv("TRIDENT_BENCH_QUICK"))
    if (*Q && *Q != '0')
      N /= 4;
  return N;
}

inline uint64_t warmupBudget() { return 100'000; }

inline SimConfig withBudget(SimConfig C) {
  C.SimInstructions = instrBudget();
  C.WarmupInstructions = warmupBudget();
  return C;
}

/// Runs one workload under one configuration with the standard budget.
inline SimResult run(const std::string &Name, SimConfig C) {
  Workload W = makeWorkload(Name);
  return runSimulation(W, withBudget(C));
}

/// Percent-speedup string of A over Base.
inline std::string pctOver(const SimResult &A, const SimResult &Base) {
  return formatPercent(speedup(A, Base) - 1.0, 1);
}

/// Prints a standard figure header.
inline void printHeader(const char *Figure, const char *What,
                        const char *PaperSays) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s: %s\n", Figure, What);
  std::printf("paper: %s\n", PaperSays);
  std::printf("budget: %llu committed instructions per run (+%llu warmup)\n",
              static_cast<unsigned long long>(instrBudget()),
              static_cast<unsigned long long>(warmupBudget()));
  std::printf("==============================================================="
              "=========\n");
}

} // namespace bench
} // namespace trident

#endif // TRIDENT_BENCH_BENCHCOMMON_H
