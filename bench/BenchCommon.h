//===- BenchCommon.h - Shared harness utilities for figure benches --------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: instruction-budget
/// env knobs, the shared parallel batch runner, and table assembly. Every
/// figure binary builds its full (workload, config) job list up front,
/// hands it to the process-wide ExperimentRunner — which fans the
/// independent runs across worker threads and memoizes shared
/// configurations such as the hw baseline — and then assembles the same
/// rows/series the paper reports, plus a short "paper says / we measure"
/// note.
///
/// Environment knobs:
///   TRIDENT_BENCH_INSTR  per-run committed-instruction budget
///                        (default 2,000,000)
///   TRIDENT_BENCH_QUICK  =1: quarter budget (smoke-testing the harness)
///   TRIDENT_BENCH_JOBS   worker threads for the batch runner
///                        (default: all hardware threads)
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_BENCH_BENCHCOMMON_H
#define TRIDENT_BENCH_BENCHCOMMON_H

#include "sim/ExperimentRunner.h"
#include "sim/Simulation.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace trident {
namespace bench {

inline uint64_t instrBudget() {
  uint64_t N = 2'000'000;
  if (const char *E = std::getenv("TRIDENT_BENCH_INSTR"))
    if (uint64_t V = std::strtoull(E, nullptr, 10))
      N = V;
  if (const char *Q = std::getenv("TRIDENT_BENCH_QUICK"))
    if (*Q && *Q != '0')
      N /= 4;
  return N;
}

inline uint64_t warmupBudget() { return 100'000; }

inline SimConfig withBudget(SimConfig C) {
  C.SimInstructions = instrBudget();
  C.WarmupInstructions = warmupBudget();
  return C;
}

/// The batch runner every figure binary shares: all hardware threads (or
/// $TRIDENT_BENCH_JOBS) plus the process-wide memo cache, so repeated
/// configurations — above all the hw baseline — simulate exactly once.
inline ExperimentRunner &runner() {
  static ExperimentRunner R;
  return R;
}

/// A (workload name, config) pair; the building block of figure sweeps.
using NamedJob = std::pair<std::string, SimConfig>;

/// Runs every job in parallel with the standard budget applied; results
/// come back in submission order.
inline std::vector<std::shared_ptr<const SimResult>>
runBatch(const std::vector<NamedJob> &Named) {
  std::vector<ExperimentJob> Jobs;
  Jobs.reserve(Named.size());
  for (const NamedJob &J : Named)
    Jobs.push_back(ExperimentJob{makeWorkload(J.first), withBudget(J.second)});
  return runner().runBatch(Jobs);
}

/// Runs one workload under one configuration with the standard budget
/// (through the shared runner, so the memo cache still applies).
inline SimResult run(const std::string &Name, SimConfig C) {
  return *runner().run(makeWorkload(Name), withBudget(C));
}

/// Percent-speedup string of A over Base.
inline std::string pctOver(const SimResult &A, const SimResult &Base) {
  return formatPercent(speedup(A, Base) - 1.0, 1);
}

/// Prints one machine-readable line summarizing event-plumbing health
/// across a figure's runs: total events dropped by the bounded runtime
/// queue and the worst per-run peak occupancy. A healthy configuration
/// drops nothing; a non-zero count means MaxPendingEvents is throttling
/// the optimizer and the figure should be read with that in mind.
inline void
printEventHealthJson(const std::vector<std::shared_ptr<const SimResult>> &Rs) {
  uint64_t Dropped = 0, Peak = 0, Runs = 0;
  for (const auto &R : Rs) {
    if (!R)
      continue;
    ++Runs;
    Dropped += R->Runtime.EventsDropped;
    if (R->Runtime.PeakPendingEvents > Peak)
      Peak = R->Runtime.PeakPendingEvents;
  }
  std::printf("{\"event_health\":{\"runs\":%llu,\"events_dropped\":%llu,"
              "\"peak_event_queue_occupancy\":%llu}}\n",
              static_cast<unsigned long long>(Runs),
              static_cast<unsigned long long>(Dropped),
              static_cast<unsigned long long>(Peak));
}

/// Prints a standard figure header.
inline void printHeader(const char *Figure, const char *What,
                        const char *PaperSays) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s: %s\n", Figure, What);
  std::printf("paper: %s\n", PaperSays);
  std::printf("budget: %llu committed instructions per run (+%llu warmup), "
              "%u worker threads\n",
              static_cast<unsigned long long>(instrBudget()),
              static_cast<unsigned long long>(warmupBudget()),
              runner().threadCount());
  std::printf("==============================================================="
              "=========\n");
}

} // namespace bench
} // namespace trident

#endif // TRIDENT_BENCH_BENCHCOMMON_H
