//===- ablation_adaptivity.cpp - Design-choice ablations --------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Ablations for the design choices DESIGN.md calls out:
//
//  A. Initial distance: 1 (the paper's default) vs the equation-2
//     estimate. Section 5.3: "we also examine an alternate strategy where
//     the initial prefetch distance is estimated more carefully and
//     repaired from there. We found it achieves performance almost
//     identical ... the initial value becomes irrelevant."
//
//  B. Phase adaptation (Section 3.5.2 future work): clearing mature flags
//     on a detected working-set change lets the prefetcher re-adapt when
//     a program's loads change behaviour mid-run. Demonstrated on a
//     purpose-built two-phase workload whose hot loop switches stride
//     mid-execution.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "isa/ProgramBuilder.h"

using namespace trident;
using namespace trident::bench;

namespace {

/// A loop whose memory behaviour changes phase: it walks a small stride
/// for a while (distance converges, loads mature), then switches to a
/// large stride — matured loads would keep the stale distance forever
/// without phase-triggered clearing. The phase alternates between two
/// distinct hot loops so the executing-trace mix shifts.
Workload phasedWorkload() {
  constexpr Addr A = 0x1000'0000, Bb = 0x3000'0000;
  ProgramBuilder B;
  B.loadImm(1, A).loadImm(2, Bb).loadImm(26, 0x50000000ll);
  B.label("outer");
  B.loadImm(4, 0).loadImm(5, 40'000);
  B.label("p1"); // stride phase with an unclassifiable hash probe
  B.load(6, 1, 0);
  B.fadd(9, 9, 6);
  B.aluImm(Opcode::MulI, 11, 4, 2654435761ll);
  B.aluImm(Opcode::ShrI, 12, 11, 7);
  B.aluImm(Opcode::AndI, 12, 12, 0x00FF0FF8);
  B.alu(Opcode::Add, 13, 26, 12);
  B.load(14, 13, 0); // random probe: matures after one attempt
  B.aluImm(Opcode::AddI, 1, 1, 64);
  B.addi(4, 4, 1);
  B.blt(4, 5, "p1");
  B.loadImm(4, 0).loadImm(5, 40'000);
  B.label("p2"); // large-stride phase (different loop, different trace)
  B.load(7, 2, 0);
  B.fadd(10, 10, 7);
  B.fadd(10, 10, 7);
  B.aluImm(Opcode::AddI, 2, 2, 4160);
  B.addi(4, 4, 1);
  B.blt(4, 5, "p2");
  B.jump("outer");
  B.halt();
  Workload W;
  W.Name = "phased";
  W.Description = "alternating small/large-stride phases";
  W.Prog = B.finish();
  W.Init = [](DataMemory &) {};
  return W;
}

} // namespace

int main() {
  printHeader("Ablations", "initial-distance & phase-adaptation choices",
              "initial distance is irrelevant under repair (5.3); mature "
              "clearing on phase change is the paper's future work");

  // ---- A: initial distance 1 vs estimate, across the full suite.
  std::printf("A. self-repairing with initial distance 1 vs estimated\n");
  Table TA({"benchmark", "start at 1", "start at estimate", "delta"});
  std::vector<double> S1, SE;

  SimConfig CE = SimConfig::withMode(PrefetchMode::SelfRepairing);
  CE.Runtime.SelfRepairInitialEstimate = true;

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames()) {
    Jobs.emplace_back(Name, SimConfig::hwBaseline());
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));
    Jobs.emplace_back(Name, CE);
  }
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const std::string &Name = workloadNames()[I];
    const SimResult &Base = *Results[3 * I + 0];
    const SimResult &R1 = *Results[3 * I + 1];
    const SimResult &RE = *Results[3 * I + 2];
    S1.push_back(speedup(R1, Base));
    SE.push_back(speedup(RE, Base));
    TA.addRow({Name, pctOver(R1, Base), pctOver(RE, Base),
               formatPercent(speedup(RE, Base) - speedup(R1, Base), 1)});
  }
  TA.addSeparator();
  TA.addRow({"geo-mean", formatPercent(geometricMean(S1) - 1.0, 1),
             formatPercent(geometricMean(SE) - 1.0, 1), "-"});
  std::printf("%s\n", TA.render().c_str());
  std::printf("shape check (paper 5.3): the two columns should be nearly "
              "identical —\nrepair converges regardless of the seed.\n\n");

  // ---- B: phase-change mature clearing on the phased workload. The
  // custom workload goes straight onto the shared runner as a 3-job batch.
  std::printf("B. phase adaptation on a two-phase workload\n");
  Workload W = phasedWorkload();
  SimConfig Base = withBudget(SimConfig::hwBaseline());

  SimConfig COff = withBudget(SimConfig::withMode(PrefetchMode::SelfRepairing));

  SimConfig COn = COff;
  COn.Runtime.ClearMatureOnPhaseChange = true;
  COn.Runtime.PhaseIntervalCommits = 100'000;

  auto PhaseResults = runner().runBatch(
      {ExperimentJob{W, Base}, ExperimentJob{W, COff}, ExperimentJob{W, COn}});
  const SimResult &RBase = *PhaseResults[0];
  const SimResult &ROff = *PhaseResults[1];
  const SimResult &ROn = *PhaseResults[2];

  Table TB({"config", "IPC", "speedup", "phase changes", "flags cleared"});
  TB.addRow({"hw baseline", formatDouble(RBase.Ipc, 3), "-", "-", "-"});
  TB.addRow({"self-rep (no phase hook)", formatDouble(ROff.Ipc, 3),
             pctOver(ROff, RBase), "0", "0"});
  TB.addRow({"self-rep + phase clearing", formatDouble(ROn.Ipc, 3),
             pctOver(ROn, RBase),
             std::to_string(ROn.Runtime.PhaseChangesDetected),
             std::to_string(ROn.Runtime.MatureFlagsCleared)});
  std::printf("%s\n", TB.render().c_str());
  std::printf("shape check: with clearing enabled, phase changes are "
              "detected and matured\nloads get re-optimized; performance "
              "should be at least as good as without.\n");
  auto All = Results;
  All.insert(All.end(), PhaseResults.begin(), PhaseResults.end());
  printEventHealthJson(All);
  return 0;
}
