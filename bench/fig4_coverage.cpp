//===- fig4_coverage.cpp - Figure 4: load-miss coverage --------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 4: the percentage of load misses that occur within
// hot traces, and the percentage covered by an inserted prefetch. The
// paper reports >85% of misses inside hot traces and ~55% potentially
// prefetched, with dot/parser low (poor trace coverage) and gap covering
// nearly all of its (few) hot-trace misses.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 4", "% of load misses in hot traces / prefetched",
              ">85% of misses inside traces; ~55% covered by prefetches; "
              "dot and parser low, gap's trace misses nearly all covered");

  Table T({"benchmark", "misses", "in hot traces", "prefetch-covered"});
  std::vector<double> InTrace, Covered;

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames())
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const SimResult &R = *Results[I];
    InTrace.push_back(R.Runtime.traceMissCoverage());
    Covered.push_back(R.Runtime.prefetchMissCoverage());
    T.addRow({workloadNames()[I], std::to_string(R.Runtime.LoadMissesTotal),
              formatPercent(R.Runtime.traceMissCoverage(), 1),
              formatPercent(R.Runtime.prefetchMissCoverage(), 1)});
  }

  T.addSeparator();
  T.addRow({"average", "-", formatPercent(arithmeticMean(InTrace), 1),
            formatPercent(arithmeticMean(Covered), 1)});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: high in-trace coverage except for the "
              "irregular benchmarks\n(dot, parser, gap's cold loop); "
              "covered <= in-trace everywhere.\n");
  printEventHealthJson(Results);
  return 0;
}
