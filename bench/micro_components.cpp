//===- micro_components.cpp - google-benchmark micro suite -----------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Not a paper figure: micro-benchmarks of the substrate components so
// regressions in simulator throughput are visible. Covers the structures
// on the per-instruction hot path (cache lookups, DLT updates, predictor
// updates) and the per-event cold path (trace building, prefetch
// planning, full simulation throughput).
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchPlanner.h"
#include "dlt/DelinquentLoadTable.h"
#include "hwpf/StridePredictor.h"
#include "isa/ProgramBuilder.h"
#include "mem/MemorySystem.h"
#include "sim/ExperimentRunner.h"
#include "sim/Simulation.h"
#include "trident/TraceBuilder.h"

#include <benchmark/benchmark.h>

using namespace trident;

static void BM_CacheLookupHit(benchmark::State &State) {
  Cache C({"L1", 64 * 1024, 2, 64, 3});
  C.insert(0x1000, 0, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(C.lookup(0x1000).Idx);
}
BENCHMARK(BM_CacheLookupHit);

static void BM_MemorySystemStreamingAccess(benchmark::State &State) {
  MemorySystem M(MemSystemConfig::baseline());
  Addr A = 0x1000'0000;
  Cycle Now = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        M.access(0x100, A, AccessKind::DemandLoad, Now));
    A += 8;
    Now += 4;
  }
}
BENCHMARK(BM_MemorySystemStreamingAccess);

static void BM_DltUpdate(benchmark::State &State) {
  DelinquentLoadTable T(DltConfig::baseline());
  Addr A = 0x1000;
  unsigned I = 0;
  for (auto _ : State) {
    unsigned Slot = I & 7;
    ++I;
    benchmark::DoNotOptimize(
        T.update(0x40000000 + Slot, A += 64, (I & 7) == 0, 300));
    // Drain events so the table does not stay frozen.
    if ((I & 1023) == 0)
      for (unsigned K = 0; K < 8; ++K)
        T.clearWindow(0x40000000 + K);
  }
}
BENCHMARK(BM_DltUpdate);

static void BM_StridePredictorTrain(benchmark::State &State) {
  StridePredictor P(1024);
  Addr A = 0x1000;
  for (auto _ : State) {
    P.train(0x100, A += 64);
    benchmark::DoNotOptimize(P.predict(0x100));
  }
}
BENCHMARK(BM_StridePredictorTrain);

static void BM_TraceBuild(benchmark::State &State) {
  ProgramBuilder B(0x100);
  B.label("head");
  for (int I = 0; I < 40; ++I)
    B.addi(1 + (I % 8), 1 + (I % 8), I);
  B.load(10, 2, 0);
  B.aluImm(Opcode::AddI, 2, 2, 64);
  B.blt(1, 3, "head");
  B.halt();
  Program P = B.finish();
  HotTraceCandidate Cand{0x100, 0b1, 1};
  TraceBuilder TB;
  for (auto _ : State) {
    auto T = TB.build(P, Cand, 0);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_TraceBuild);

static void BM_PrefetchPlanning(benchmark::State &State) {
  std::vector<Instruction> Body = {
      makeLoad(5, 2, 0),  makeLoad(6, 2, 8),   makeLoad(7, 2, 72),
      makeLoad(8, 2, 96), makeAluImm(Opcode::AddI, 2, 2, 128),
      makeBranch(Opcode::Blt, 2, 3, 0x10),
  };
  DltConfig DC;
  DC.MonitorWindow = 16;
  DC.MissThreshold = 4;
  DelinquentLoadTable T(DC);
  for (unsigned L = 0; L < 4; ++L)
    for (unsigned I = 0; I < 16; ++I)
      T.update(0x40000000 + L, 0x100000 + I * 128 + Body[L].Imm, true, 300);
  std::vector<Addr> PCs = {0x40000000, 0x40000001, 0x40000002,
                           0x40000003, 0x40000004, 0x40000005};
  PrefetchPlanner P;
  for (auto _ : State) {
    PrefetchPlan Plan;
    auto L = P.identifyDelinquentLoads(Body, PCs, T);
    P.plan(Body, L, Plan, 1);
    auto E = P.emit(Body, Plan);
    benchmark::DoNotOptimize(E.NewBody.data());
  }
}
BENCHMARK(BM_PrefetchPlanning);

static void BM_SimulatorThroughput(benchmark::State &State) {
  // End-to-end simulated instructions per second on a representative
  // workload with the full Trident stack enabled.
  for (auto _ : State) {
    Workload W = makeWorkload("mcf");
    SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
    C.WarmupInstructions = 10'000;
    C.SimInstructions = 200'000;
    SimResult R = runSimulation(W, C);
    benchmark::DoNotOptimize(R.Ipc);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(R.Instructions));
  }
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

static void runBatchThroughput(benchmark::State &State, unsigned Threads) {
  // A small multi-workload sweep through the batch executor, caching
  // disabled so every iteration simulates for real. Thread count 1 is the
  // serial reference; 0 means all hardware threads.
  std::vector<ExperimentJob> Jobs;
  for (const char *Name : {"mcf", "mgrid", "equake", "swim"}) {
    SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
    C.WarmupInstructions = 10'000;
    C.SimInstructions = 100'000;
    Jobs.push_back(ExperimentJob{makeWorkload(Name), C});
  }
  ExperimentRunner Runner({Threads, /*UseCache=*/false});
  for (auto _ : State) {
    auto Results = Runner.runBatch(Jobs);
    int64_t Instr = 0;
    for (const auto &R : Results)
      Instr += static_cast<int64_t>(R->Instructions);
    benchmark::DoNotOptimize(Results.data());
    State.SetItemsProcessed(State.items_processed() + Instr);
  }
}

static void BM_BatchThroughputSerial(benchmark::State &State) {
  runBatchThroughput(State, 1);
}
BENCHMARK(BM_BatchThroughputSerial)->Unit(benchmark::kMillisecond);

static void BM_BatchThroughputParallel(benchmark::State &State) {
  runBatchThroughput(State, 0);
}
BENCHMARK(BM_BatchThroughputParallel)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
