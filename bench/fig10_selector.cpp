//===- fig10_selector.cpp - Figure 10: phase-aware selector study ----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Beyond the paper: the control-plane study. Every static arsenal unit,
// the bandit selector, and the two-pass oracle run on every workload under
// a regime-shift fault plan (staggered latency spikes and cache flushes
// that keep changing which prefetcher is right), all with the Trident
// runtime off so the hardware axis is isolated. The per-cell metric is
// exposed latency per demand load, reported as the reduction against the
// no-prefetch machine under the same fault plan.
//
// Shape checks (the PR 9 acceptance bar): the bandit should land within a
// few percent of the oracle's geo-mean reduction and beat the worst static
// units on most workloads — a selector that only matched the best static
// would be pointless, one that trails the worst would be broken.
//
// Environment knobs (on top of the BenchCommon set):
//   TRIDENT_FIG10_OUT        JSONL output path (default fig10_selector.jsonl)
//   TRIDENT_FIG10_WORKLOADS  comma list restricting the workload axis
//   TRIDENT_FIG10_BANDIT     bandit spec override (default
//                            "bandit:seed=7,eps=10,ema=600" — light
//                            exploration, fast-aging values; tuned so the
//                            regime shifts themselves drive adaptation)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hwpf/PrefetcherRegistry.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace trident;
using namespace trident::bench;

namespace {

std::vector<std::string> envList(const char *Name) {
  std::vector<std::string> Out;
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Out;
  std::string S(E);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

bool contains(const std::vector<std::string> &V, const std::string &S) {
  return std::find(V.begin(), V.end(), S) != V.end();
}

void jsonEscapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

/// The regime-shift schedule: alternating wide latency spikes and full
/// cache flushes early enough to land inside even TRIDENT_BENCH_QUICK
/// runs, then spaced out to keep perturbing full-budget ones. Identical
/// for every cell, so the comparison across configs is fair.
FaultPlan regimeShiftPlan() {
  FaultPlan P;
  P.Seed = 0; // hand-written
  Cycle At = 150'000;
  for (int Shift = 0; Shift < 12; ++Shift) {
    FaultAction A;
    A.Trigger = FaultTrigger::AtCycle;
    A.At = At;
    if (Shift % 2 == 0) {
      A.Kind = FaultKind::LatencySpike;
      A.ExtraMemLatency = 300;
      A.ExtraL2Latency = 20;
      A.DurationCycles = 250'000;
    } else {
      A.Kind = FaultKind::EvictCaches;
    }
    P.Actions.push_back(A);
    At += 400'000;
  }
  return P;
}

/// Exposed latency per demand load — the study's cost metric.
double exposedPerLoad(const SimResult &R) {
  return R.Mem.DemandLoads == 0
             ? 0.0
             : static_cast<double>(R.Mem.TotalExposedLatency) /
                   static_cast<double>(R.Mem.DemandLoads);
}

} // namespace

int main() {
  printHeader("Figure 10",
              "phase-aware selector vs static arsenal under regime shifts",
              "beyond the paper: runtime-guided reconfiguration (POWER7) / "
              "online selection (Pythia) bounded by a replay oracle");

  std::vector<std::string> Loads;
  {
    std::vector<std::string> Filter = envList("TRIDENT_FIG10_WORKLOADS");
    for (const std::string &N : workloadNames())
      if (Filter.empty() || contains(Filter, N))
        Loads.push_back(N);
  }
  const std::vector<std::string> Arms =
      PrefetcherRegistry::instance().arsenalNames();
  const FaultPlan Plan = regimeShiftPlan();

  auto baseConfig = [&](const std::string &Pf) {
    SimConfig C = SimConfig::hwBaseline();
    C.HwPf = Pf;
    C.Faults = Plan;
    return C;
  };

  // Pass 1: the static axis — "none" plus every arsenal unit — as one
  // parallel batch. These land in the memo cache, so the per-workload
  // oracle resolution below is pure cache hits.
  std::vector<NamedJob> StaticJobs;
  for (const std::string &Name : Loads) {
    StaticJobs.emplace_back(Name, baseConfig("none"));
    for (const std::string &Arm : Arms)
      StaticJobs.emplace_back(Name, baseConfig(Arm));
  }
  auto StaticResults = runBatch(StaticJobs);
  const size_t PerLoadStatic = 1 + Arms.size();

  // Pass 2: the adaptive axis. The oracle's pinned unit is resolved at
  // job-construction time (runBatch is not reentrant; resolution itself
  // runs batches), never from inside a worker.
  std::vector<NamedJob> AdaptiveJobs;
  const char *BanditSpecEnv = std::getenv("TRIDENT_FIG10_BANDIT");
  const std::string BanditSpec = BanditSpecEnv && *BanditSpecEnv
                                     ? BanditSpecEnv
                                     : "bandit:seed=7,eps=10,ema=600";
  for (const std::string &Name : Loads) {
    SimConfig Bandit = baseConfig("sb8x8");
    std::string Err;
    bool Ok = SelectorConfig::parse(BanditSpec, Bandit.Selector, &Err);
    TRIDENT_CHECK(Ok, "fig10 bandit spec failed to parse: %s", Err.c_str());
    AdaptiveJobs.emplace_back(Name, Bandit);

    SimConfig Oracle = baseConfig("sb8x8");
    Ok = SelectorConfig::parse("oracle", Oracle.Selector, &Err);
    TRIDENT_CHECK(Ok, "fig10 oracle spec failed to parse: %s", Err.c_str());
    Oracle = resolveSelectorOracle(runner(), makeWorkload(Name),
                                   withBudget(Oracle));
    AdaptiveJobs.emplace_back(Name, Oracle);
  }
  auto AdaptiveResults = runBatch(AdaptiveJobs);

  // JSONL: one record per cell.
  const char *OutPath = std::getenv("TRIDENT_FIG10_OUT");
  if (!OutPath || !*OutPath)
    OutPath = "fig10_selector.jsonl";
  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 1;
  }

  auto emit = [&](const std::string &Load, const std::string &Config,
                  const SimResult &R, double Reduction) {
    std::string Line = "{\"workload\":\"";
    jsonEscapeInto(Line, Load);
    Line += "\",\"config\":\"";
    jsonEscapeInto(Line, Config);
    Line += "\",\"final_unit\":\"";
    jsonEscapeInto(Line, R.SelectorFinalUnit.empty()
                             ? (R.HwPf.Prefetcher.empty() ? "none"
                                                          : R.HwPf.Prefetcher)
                             : R.SelectorFinalUnit);
    char Buf[320];
    std::snprintf(
        Buf, sizeof(Buf),
        "\",\"ipc\":%.6f,\"demand_loads\":%llu,\"exposed_total\":%llu,"
        "\"exposed_per_load\":%.6f,\"reduction_vs_none\":%.6f,"
        "\"epochs\":%llu,\"swaps\":%llu,\"explorations\":%llu,"
        "\"decisions\":%llu,\"faults_injected\":%llu}",
        R.Ipc, (unsigned long long)R.Mem.DemandLoads,
        (unsigned long long)R.Mem.TotalExposedLatency, exposedPerLoad(R),
        Reduction, (unsigned long long)R.Selector.Epochs,
        (unsigned long long)R.Selector.Swaps,
        (unsigned long long)R.Selector.Explorations,
        (unsigned long long)R.SelectorTrace.size(),
        (unsigned long long)R.Faults.Injected);
    Line += Buf;
    std::fprintf(Out, "%s\n", Line.c_str());
  };

  // Per-config exposure ratios vs none (geo-mean input), plus the
  // per-workload data the shape checks need.
  std::map<std::string, std::vector<double>> Ratios;
  uint64_t BanditBeatsWorst3 = 0, BanditSwapsTotal = 0;

  Table T({"workload", "best static", "worst static", "bandit", "oracle",
           "swaps"});
  for (size_t L = 0; L < Loads.size(); ++L) {
    const SimResult &None = *StaticResults[L * PerLoadStatic];
    const double NoneExp = exposedPerLoad(None);
    auto reduction = [&](const SimResult &R) {
      return NoneExp == 0.0 ? 0.0 : 1.0 - exposedPerLoad(R) / NoneExp;
    };
    auto ratio = [&](const SimResult &R) {
      return NoneExp == 0.0 ? 1.0 : exposedPerLoad(R) / NoneExp;
    };
    emit(Loads[L], "none", None, 0.0);
    Ratios["none"].push_back(1.0);

    std::vector<double> StaticReds;
    double BestStatic = -1e9, WorstStatic = 1e9;
    for (size_t A = 0; A < Arms.size(); ++A) {
      const SimResult &R = *StaticResults[L * PerLoadStatic + 1 + A];
      const double Red = reduction(R);
      emit(Loads[L], Arms[A], R, Red);
      Ratios[Arms[A]].push_back(ratio(R));
      StaticReds.push_back(Red);
      BestStatic = std::max(BestStatic, Red);
      WorstStatic = std::min(WorstStatic, Red);
    }
    const SimResult &Bandit = *AdaptiveResults[L * 2];
    const SimResult &Oracle = *AdaptiveResults[L * 2 + 1];
    const double BanditRed = reduction(Bandit);
    const double OracleRed = reduction(Oracle);
    emit(Loads[L], "bandit", Bandit, BanditRed);
    emit(Loads[L], "oracle", Oracle, OracleRed);
    Ratios["bandit"].push_back(ratio(Bandit));
    Ratios["oracle"].push_back(ratio(Oracle));
    BanditSwapsTotal += Bandit.Selector.Swaps;

    // "Beats the worst three": strictly better than the third-worst
    // static unit's reduction on this workload.
    std::sort(StaticReds.begin(), StaticReds.end());
    const size_t Idx = std::min<size_t>(2, StaticReds.size() - 1);
    if (BanditRed > StaticReds[Idx])
      ++BanditBeatsWorst3;

    char SwapBuf[32];
    std::snprintf(SwapBuf, sizeof(SwapBuf), "%llu",
                  (unsigned long long)Bandit.Selector.Swaps);
    T.addRow({Loads[L], formatPercent(BestStatic, 1),
              formatPercent(WorstStatic, 1), formatPercent(BanditRed, 1),
              formatPercent(OracleRed, 1), SwapBuf});
  }
  std::fclose(Out);
  std::printf("selector matrix: %zu cells -> %s\n\n",
              Loads.size() * (PerLoadStatic + 2), OutPath);
  std::printf("exposed-latency reduction vs no-prefetch (same fault plan):\n");
  std::printf("%s\n", T.render().c_str());

  // Geo-mean reduction per config = 1 - geomean(exposure ratios).
  Table G({"config", "geo-mean reduction"});
  auto geoRed = [&](const std::string &Key) {
    const std::vector<double> &V = Ratios[Key];
    return V.empty() ? 0.0 : 1.0 - geometricMean(V);
  };
  for (const std::string &Arm : Arms)
    G.addRow({Arm, formatPercent(geoRed(Arm), 1)});
  G.addSeparator();
  G.addRow({"bandit", formatPercent(geoRed("bandit"), 1)});
  G.addRow({"oracle", formatPercent(geoRed("oracle"), 1)});
  std::printf("%s\n", G.render().c_str());

  const double BanditGeo = geoRed("bandit"), OracleGeo = geoRed("oracle");
  std::printf("shape check: bandit %.1f%% vs oracle %.1f%% geo-mean "
              "reduction (gap %.1f pts);\nbandit beats the worst-3 statics "
              "on %llu/%zu workloads, %llu swaps total.\n\n",
              100.0 * BanditGeo, 100.0 * OracleGeo,
              100.0 * (OracleGeo - BanditGeo),
              (unsigned long long)BanditBeatsWorst3, Loads.size(),
              (unsigned long long)BanditSwapsTotal);

  std::vector<std::shared_ptr<const SimResult>> All = StaticResults;
  All.insert(All.end(), AdaptiveResults.begin(), AdaptiveResults.end());
  printEventHealthJson(All);
  return 0;
}
