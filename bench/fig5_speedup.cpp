//===- fig5_speedup.cpp - Figure 5: the headline result --------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Reproduces Figure 5: speedup of software prefetching over the hardware
// (8x8 stream buffer) baseline, for the three schemes the paper compares:
//   basic         prior-work style: per-load stride prefetches at a fixed
//                 estimated distance (equation 2),
//   whole object  + same-object grouping and pointer dereference
//                 prefetching, still a fixed distance,
//   self-repair   + the adaptive distance-repair mechanism (start at 1,
//                 patch the prefetch immediates until the load stops
//                 being delinquent or matures).
//
// The paper reports ~11% average for basic and ~23% for self-repairing,
// with applu/facerec/fma3d gaining nothing from repair (the naive
// estimate is already right) and dot/mcf benefiting from whole-object.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace trident;
using namespace trident::bench;

int main() {
  printHeader("Figure 5", "software prefetching speedup over HW baseline",
              "basic ~+11% avg; self-repairing ~+23% avg (about 2x the "
              "basic gain); applu/facerec/fma3d: repair adds nothing");

  Table T({"benchmark", "basic", "whole object", "self-repairing",
           "repairs", "final dist"});
  std::vector<double> SB, SW, SS;

  std::vector<NamedJob> Jobs;
  for (const std::string &Name : workloadNames()) {
    Jobs.emplace_back(Name, SimConfig::hwBaseline());
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::Basic));
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::WholeObject));
    Jobs.emplace_back(Name, SimConfig::withMode(PrefetchMode::SelfRepairing));
  }
  auto Results = runBatch(Jobs);

  for (size_t I = 0; I < workloadNames().size(); ++I) {
    const std::string &Name = workloadNames()[I];
    const SimResult &Base = *Results[4 * I + 0];
    const SimResult &RB = *Results[4 * I + 1];
    const SimResult &RW = *Results[4 * I + 2];
    const SimResult &RS = *Results[4 * I + 3];

    SB.push_back(speedup(RB, Base));
    SW.push_back(speedup(RW, Base));
    SS.push_back(speedup(RS, Base));
    T.addRow({Name, pctOver(RB, Base), pctOver(RW, Base), pctOver(RS, Base),
              std::to_string(RS.Runtime.RepairOptimizations),
              std::to_string(RS.Runtime.LastRepairDistance)});
  }

  T.addSeparator();
  T.addRow({"geo-mean", formatPercent(geometricMean(SB) - 1.0, 1),
            formatPercent(geometricMean(SW) - 1.0, 1),
            formatPercent(geometricMean(SS) - 1.0, 1), "-", "-"});
  std::printf("%s\n", T.render().c_str());
  std::printf(
      "shape check: self-repairing's average gain should be roughly twice\n"
      "basic's (paper: 23%% vs 11%%); whole-object >= basic (dot is the\n"
      "whole-object showcase); applu/facerec gain little from repair.\n");
  printEventHealthJson(Results);
  return 0;
}
