#!/usr/bin/env python3
"""bench_compare: diff two host_throughput scoreboard JSONs, optionally gate.

Compares a baseline BENCH_host_throughput.json against a fresh run and
prints a delta table. Each input may be either

  * a single run object, as written by bench/host_throughput
    ({"bench":"host_throughput","serial_ips":...}), or
  * a trajectory file — {"bench":"host_throughput","runs":[...]} — in
    which case the LAST entry of "runs" is used (the committed repo-root
    scoreboard is a trajectory: one entry per landed perf-relevant PR).

With --check-regression PCT the script exits nonzero when the new run's
median serial_ips falls more than PCT percent below the baseline's. The
gate reads serial throughput only: the parallel leg's speedup depends on
how many host cores the runner happens to have, so it is reported but
never gated.

Usage:
  tools/bench_compare.py BASELINE.json NEW.json [--check-regression PCT]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_run(path: str) -> dict:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if "runs" in doc:
        runs = doc["runs"]
        if not runs:
            raise SystemExit(f"{path}: trajectory file with empty 'runs'")
        return runs[-1]
    return doc


FIELDS = [
    ("serial_ips", "serial instr/s", True),
    ("parallel_ips", "parallel instr/s", True),
    ("serial_seconds", "serial seconds", False),
    ("parallel_seconds", "parallel seconds", False),
    ("speedup", "parallel speedup", True),
]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed scoreboard JSON")
    ap.add_argument("new", help="fresh run JSON")
    ap.add_argument("--check-regression", type=float, metavar="PCT",
                    default=None,
                    help="exit 1 if new serial_ips is more than PCT%% "
                    "below the baseline")
    args = ap.parse_args()

    old = load_run(args.baseline)
    new = load_run(args.new)

    # Runs with different hardware prefetchers are not comparable at all:
    # refuse rather than print a silently-misleading delta table. A run
    # without the field predates the arsenal and implicitly means sb8x8.
    old_hwpf = old.get("hwpf", "sb8x8")
    new_hwpf = new.get("hwpf", "sb8x8")
    if old_hwpf != new_hwpf:
        print(f"FAIL: hwpf configs differ (baseline '{old_hwpf}' vs new "
              f"'{new_hwpf}'); throughput numbers are not comparable")
        return 1

    if old.get("instr_per_run") != new.get("instr_per_run"):
        print(f"note: instruction budgets differ "
              f"({old.get('instr_per_run')} vs {new.get('instr_per_run')}); "
              "instr/s stays comparable, wall-clock seconds do not")

    print(f"{'metric':<22} {'baseline':>14} {'new':>14} {'delta':>9}")
    print("-" * 62)
    for key, label, higher_is_better in FIELDS:
        if key not in old or key not in new:
            continue
        a, b = float(old[key]), float(new[key])
        delta = 0.0 if a == 0 else (b - a) / a * 100.0
        arrow = ""
        if abs(delta) >= 0.05:
            improved = (delta > 0) == higher_is_better
            arrow = " (better)" if improved else " (worse)"
        print(f"{label:<22} {a:>14,.2f} {b:>14,.2f} {delta:>+8.1f}%{arrow}")

    if args.check_regression is not None:
        limit = args.check_regression
        a, b = float(old["serial_ips"]), float(new["serial_ips"])
        loss = 0.0 if a == 0 else (a - b) / a * 100.0
        if loss > limit:
            print(f"\nFAIL: serial throughput regressed {loss:.1f}% "
                  f"(limit {limit:.1f}%): {a:,.0f} -> {b:,.0f} instr/s")
            return 1
        print(f"\nOK: serial throughput within budget "
              f"({loss:+.1f}% loss, limit {limit:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
