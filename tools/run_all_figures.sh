#!/usr/bin/env bash
# Builds the repo and runs every figure/ablation binary under
# TRIDENT_BENCH_QUICK=1 (quarter instruction budget) — a CI-sized smoke of
# the full experimental methodology. Also runs host_throughput, whose JSON
# line tracks simulator performance, and fails if any binary fails.
#
# Usage: tools/run_all_figures.sh [build-dir] [--hwpf LIST]
#   --hwpf LIST          comma list restricting fig9's prefetcher axis
#                        (exported as TRIDENT_FIG9_HWPF; e.g.
#                        --hwpf sb8x8,dcpt,tskid); default: full arsenal
#   TRIDENT_BENCH_JOBS   worker threads per binary (default: all cores)
#   TRIDENT_BENCH_INSTR  override the full per-run budget before quartering
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --hwpf)
      [[ $# -ge 2 ]] || { echo "error: --hwpf needs a value" >&2; exit 2; }
      export TRIDENT_FIG9_HWPF="$2"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j

export TRIDENT_BENCH_QUICK=1

FIGURES=(
  fig2_baseline
  fig3_overhead
  fig4_coverage
  fig5_speedup
  fig6_breakdown
  fig7_sensitivity_window
  fig8_sensitivity_dlt
  fig9_hw_vs_sw
  fig10_selector
  ablation_adaptivity
  host_throughput
)

for FIG in "${FIGURES[@]}"; do
  echo
  echo "### $FIG"
  "$BUILD_DIR/bench/$FIG"
done

echo
echo "all figures completed."
