#!/usr/bin/env python3
"""trident-analyze: semantic static analysis for the Trident-SRP simulator.

Successor to the regex-only trident_lint.py (PR 2). Instead of grepping
lines, the engine runs a small pass pipeline and feeds independent rule
visitors:

  lex       comment/string-aware stripper (digit-separator correct: the
            apostrophe in 0x4000'0000 is a separator, not a char literal)
            plus annotation extraction from comments
  include   an include-graph over src/ with a module-level projection
            (module = first directory component under src/)
  symbols   per-file scope tree (brace matching), class/struct extents and
            fields, container- and float-typed symbol tables

Rule families (ids are stable; SARIF ruleIds match):

  Determinism / reproducibility
    wall-clock         R1  no host time sources in simulator code
    randomness         R2  no unseeded/global RNGs (SplitMix64 only)
    unordered-iter     D1  no range-for / iterator loops over
                           std::unordered_map/set in result-affecting code
                           unless the loop feeds a sort or carries an
                           `ordered-ok(<reason>)` annotation
    float-order        C2  no floating-point `+=` reductions inside a loop
                           over an unordered container (FP addition is not
                           associative; iteration order changes the bits)
    stats-registration D2  every field of a *Stats struct is registered in
                           its registerInto() (or carries
                           `unregistered-ok(<reason>)`) so no counter
                           silently drops out of the golden JSONL

  Architecture
    layering           L1  the module DAG declared in tools/layering.json:
                           includes may only point strictly down-level (or
                           along an explicitly allowed same-level edge);
                           the actual module graph must be cycle-free and
                           the manifest must match the modules on disk

  Concurrency
    lock-discipline    C1  fields annotated `guarded-by(Mu)` are only
                           touched inside a scope that locks mutex Mu
                           (lock_guard/unique_lock/scoped_lock/.lock())

  Hardware-modeling hygiene (migrated from trident_lint.py, with two
  precision fixes)
    hot-path           R3  no O(n) erase/scan idioms in `hot-path` files
    table-bounds       R4  hardware-table classes declare a capacity bound
                           — now checked per class body, so one annotated
                           class no longer exempts every class in its file
    no-assert          R5  TRIDENT_CHECK/DCHECK instead of bare assert()
    event-names        R6  every EventKind enumerator has a name-table
                           case — enumerators are now parsed structurally
                           (the old `body.split(",")` broke when a digit
                           separator opened a bogus char literal and
                           swallowed trailing comments)
    hot-path-alloc     R7  zero-alloc files do not heap-allocate

Annotation grammar (in comments; `trident-lint:` is accepted as a legacy
spelling of `trident-analyze:`):

  trident-analyze: ordered-ok(<reason>)        on/above an unordered loop
  trident-analyze: guarded-by(<MutexName>)     on a field declaration
  trident-analyze: alloc-ok(<reason>)          on a hot-path alloc line
  trident-analyze: unregistered-ok(<reason>)   on a *Stats field / struct
  trident-analyze: not-a-hw-table(<reason>)    attached to a class
  trident-analyze: hot-path                    file marker for R3

Outputs: human text (path:line: [rule] message) and SARIF 2.1 (--sarif).
A suppression baseline (--baseline, default tools/analysis_baseline.json)
holds fingerprints of accepted findings; --write-baseline regenerates it.
Per-file results are memoized in a content-hash-keyed cache so a clean
re-run only re-lexes changed files; --diff BASE restricts *reported*
findings to files changed since BASE (project-wide passes still run on
the whole tree, so a layering break introduced by an unchanged file's
changed neighbor is still caught).

Usage:
  tools/trident_analyze.py [--root DIR] [paths...]
      [--rules r1,r2,... | --rules legacy] [--list-rules]
      [--sarif OUT.sarif] [--baseline FILE] [--write-baseline]
      [--diff [BASE]] [--no-cache] [--cache FILE] [-q]

Exits 0 when clean, 1 on findings, 2 on configuration errors.
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import re
import subprocess
import sys
from pathlib import Path

ENGINE_VERSION = "1.0.0"
# Bump to invalidate the incremental cache when rule logic changes.
RULES_VERSION = "2026-08-07a"

CPP_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

#===----------------------------------------------------------------------===#
# Lexing pass
#===----------------------------------------------------------------------===#


def strip_comments_and_strings(text: str) -> str:
    """Replaces comments and string/char literals with spaces, preserving
    line structure. Unlike the PR-2 lint stripper, an apostrophe preceded
    and followed by hex digits (0x4000'0000, 200'000) is treated as a
    digit separator, not the start of a char literal — the old behaviour
    swallowed real code up to the next apostrophe, exposing the tails of
    trailing comments as code."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and text[i - 1] in "0123456789abcdefABCDEF" \
                and nxt in "0123456789abcdefABCDEF":
            # C++14 digit separator inside a numeric literal.
            out.append(" ")
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\n" and quote == "'":
                    break  # unterminated char literal: don't eat lines
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


ANNOTATION = re.compile(
    r"trident-(?:lint|analyze):\s*([a-z-]+)(?:\(([^)]*)\))?")


class Annotation:
    __slots__ = ("kind", "arg", "line")

    def __init__(self, kind: str, arg: str, line: int):
        self.kind, self.arg, self.line = kind, arg, line


#===----------------------------------------------------------------------===#
# Scope / symbol pass
#===----------------------------------------------------------------------===#


class Scope:
    """One brace-delimited region of the stripped text ({ .. })."""
    __slots__ = ("start", "end", "parent", "children")

    def __init__(self, start: int, end: int, parent):
        self.start, self.end, self.parent = start, end, parent
        self.children: list[Scope] = []


def build_scopes(stripped: str) -> Scope:
    root = Scope(0, len(stripped), None)
    cur = root
    for i, c in enumerate(stripped):
        if c == "{":
            child = Scope(i, len(stripped), cur)
            cur.children.append(child)
            cur = child
        elif c == "}" and cur.parent is not None:
            cur.end = i + 1
            cur = cur.parent
    return root


CLASS_HEAD = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct)\s+"
                        r"(?:alignas\s*\([^)]*\)\s*)?(\w+)\b(?!\s*;)")
FIELD_DECL = re.compile(
    r"^\s*(?:mutable\s+)?((?:[\w:]+\s*(?:<.*>)?\s*[&*]*\s+)+)"
    r"(\w+)\s*(?:\[[^\]]*\])?\s*(?:=[^;]*|\{[^;]*\})?;")
UNORDERED_DECL = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|"
                            r"multiset)\s*<")
FLOAT_DECL = re.compile(r"^\s*(?:const\s+|constexpr\s+|static\s+)*"
                        r"(?:double|float)\s+(\w+)\b")


class ClassInfo:
    __slots__ = ("kind", "name", "line", "scope", "fields")

    def __init__(self, kind, name, line, scope):
        self.kind, self.name, self.line, self.scope = kind, name, line, scope
        # fields: list of (name, decl_line, decl_text)
        self.fields: list[tuple[str, int, str]] = []


class FileModel:
    """Everything the rules need to know about one translation unit."""

    def __init__(self, path: Path, rel: str, root: Path):
        self.path, self.rel = path, rel
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.sha = hashlib.sha256(self.text.encode()).hexdigest()
        self.stripped = strip_comments_and_strings(self.text)
        self.raw_lines = self.text.splitlines()
        self.lines = self.stripped.splitlines()
        # Offset of each line start in self.stripped, for offset->line.
        self.line_starts = [0]
        for ln in self.stripped.split("\n")[:-1]:
            self.line_starts.append(self.line_starts[-1] + len(ln) + 1)
        self.module = rel.split("/")[1] if rel.startswith("src/") and \
            rel.count("/") >= 2 else None
        # Local includes: (line, target-rel-to-src).
        self.includes: list[tuple[int, str]] = []
        inc = re.compile(r'#\s*include\s*"([^"]+)"')
        for no, raw in enumerate(self.raw_lines, start=1):
            m = inc.search(raw)
            if m:
                self.includes.append((no, m.group(1)))
        # Annotations, from the raw text (they live in comments).
        self.annotations: list[Annotation] = []
        for no, raw in enumerate(self.raw_lines, start=1):
            for m in ANNOTATION.finditer(raw):
                self.annotations.append(
                    Annotation(m.group(1), m.group(2) or "", no))
        self.root_scope = build_scopes(self.stripped)
        self.classes = self._parse_classes()
        self.unordered_syms = self._collect_unordered()
        self.float_syms = self._collect_floats()

    # -- helpers -------------------------------------------------------------

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)

    def offset_of_line(self, line: int) -> int:
        return self.line_starts[line - 1]

    def scope_at(self, offset: int) -> Scope:
        cur = self.root_scope
        descended = True
        while descended:
            descended = False
            for ch in cur.children:
                if ch.start <= offset < ch.end:
                    cur = ch
                    descended = True
                    break
        return cur

    def annotated(self, kind: str, line: int, above: int = 2) -> bool:
        """An annotation of `kind` on `line` or up to `above` lines above."""
        return any(a.kind == kind and line - above <= a.line <= line
                   for a in self.annotations)

    def annotation_arg(self, kind: str, line: int, above: int = 2):
        for a in self.annotations:
            if a.kind == kind and line - above <= a.line <= line:
                return a.arg
        return None

    # -- passes --------------------------------------------------------------

    def _parse_classes(self) -> list[ClassInfo]:
        out = []
        for no, line in enumerate(self.lines, start=1):
            m = CLASS_HEAD.match(line)
            if not m:
                continue
            # Find the definition's opening brace: first '{' at or after
            # the head, before any ';' that would make this a declaration.
            start = self.offset_of_line(no) + m.start(1)
            brace = self.stripped.find("{", start)
            semi = self.stripped.find(";", start)
            if brace < 0 or (0 <= semi < brace):
                continue
            # Inheritance lists etc. keep the brace within a few lines.
            if self.line_of(brace) - no > 4:
                continue
            scope = None
            node = self.scope_at(brace + 1)
            if node.start == brace:
                scope = node
            if scope is None:
                continue
            ci = ClassInfo(m.group(1), m.group(2), no, scope)
            self._parse_fields(ci)
            out.append(ci)
        return out

    def _parse_fields(self, ci: ClassInfo):
        """Direct data members of the class: lines in the class body that
        are not inside a nested scope and look like declarations."""
        nested = [(c.start, c.end) for c in ci.scope.children]
        first = self.line_of(ci.scope.start) + 1
        last = self.line_of(ci.scope.end - 1)
        for no in range(first, min(last, len(self.lines)) + 1):
            off = self.offset_of_line(no)
            if any(s < off < e for s, e in nested):
                continue
            line = self.lines[no - 1]
            if "(" in line or line.lstrip().startswith(("public", "private",
                                                        "protected", "using",
                                                        "friend", "typedef",
                                                        "static_assert",
                                                        "enum", "struct",
                                                        "class")):
                continue
            m = FIELD_DECL.match(line)
            if m:
                ci.fields.append((m.group(2), no, line.strip()))

    def _collect_unordered(self) -> set:
        """Names of variables/fields declared with an unordered container
        type anywhere in this file."""
        syms = set()
        for m in UNORDERED_DECL.finditer(self.stripped):
            # Walk the template argument list to its closing '>'.
            depth, i = 1, m.end()
            n = len(self.stripped)
            while i < n and depth:
                if self.stripped[i] == "<":
                    depth += 1
                elif self.stripped[i] == ">":
                    depth -= 1
                i += 1
            tail = self.stripped[i:i + 160]
            dm = re.match(r"\s*[&*]*\s*(\w+)\s*(?:;|=|\{|\[|,|\))", tail)
            if dm and dm.group(1) not in ("const",):
                syms.add(dm.group(1))
        return syms

    def _collect_floats(self) -> set:
        syms = set()
        for line in self.lines:
            m = FLOAT_DECL.match(line)
            if m:
                syms.add(m.group(1))
        return syms


#===----------------------------------------------------------------------===#
# Findings
#===----------------------------------------------------------------------===#


class Finding:
    __slots__ = ("rule", "rel", "line", "message", "context")

    def __init__(self, rule: str, rel: str, line: int, message: str,
                 context: str = ""):
        self.rule, self.rel, self.line = rule, rel, line
        self.message, self.context = message, context

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Line-number-insensitive identity for the suppression baseline:
        rule + file + the text of the flagged line + a message prefix."""
        h = hashlib.sha1()
        h.update(self.rule.encode())
        h.update(b"|")
        h.update(self.rel.encode())
        h.update(b"|")
        h.update(self.context.strip().encode())
        h.update(b"|")
        h.update(self.message[:48].encode())
        return h.hexdigest()[:16]

    def to_dict(self):
        return {"rule": self.rule, "rel": self.rel, "line": self.line,
                "message": self.message, "context": self.context}

    @staticmethod
    def from_dict(d):
        return Finding(d["rule"], d["rel"], d["line"], d["message"],
                       d.get("context", ""))


#===----------------------------------------------------------------------===#
# Analysis context
#===----------------------------------------------------------------------===#


class AnalysisContext:
    def __init__(self, root: Path, files: dict, layering, quiet=False):
        self.root = root
        self.files = files            # rel -> FileModel (hw-rule scope)
        self.harness_files = {}       # rel -> FileModel (R1/R2-only scope)
        self.layering = layering      # parsed manifest or None
        self.quiet = quiet

    def sibling(self, fm: FileModel):
        """The header/source counterpart of fm (same directory and stem)."""
        stem = fm.rel.rsplit(".", 1)[0]
        for suffix in (".h", ".hpp", ".cpp", ".cc"):
            rel = stem + suffix
            if rel != fm.rel and rel in self.files:
                return self.files[rel]
        return None

    def imported_unordered_syms(self, fm: FileModel) -> set:
        """fm's own unordered symbols plus those of directly included
        project headers (covers the field-declared-in-header,
        iterated-in-cpp case)."""
        syms = set(fm.unordered_syms)
        for _, target in fm.includes:
            inc = self.files.get("src/" + target)
            if inc is not None:
                syms |= inc.unordered_syms
        return syms


#===----------------------------------------------------------------------===#
# Rules — determinism family
#===----------------------------------------------------------------------===#

WALLCLOCK_PATTERNS = [
    (re.compile(r"#\s*include\s*<(chrono|ctime|sys/time\.h|time\.h)>"),
     "includes a wall-clock header"),
    (re.compile(r"\bstd::chrono\b"), "uses std::chrono"),
    (re.compile(r"\b(steady_clock|system_clock|high_resolution_clock)\b"),
     "uses a host clock type"),
    (re.compile(r"(?<![\w:.])(time|clock|gettimeofday|clock_gettime)\s*\("),
     "calls a wall-clock function"),
]
WALLCLOCK_EXEMPT = {"bench/host_throughput.cpp"}

RANDOMNESS_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "uses std::random_device"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "calls rand()/srand()"),
    (re.compile(r"\bmt19937(_64)?\b"), "uses std::mt19937 (use SplitMix64)"),
    (re.compile(r"\b(drand48|lrand48|random)\s*\(\s*\)"), "calls a libc RNG"),
]


def _match_lines(fm: FileModel, patterns, rule, findings):
    for no, line in enumerate(fm.lines, start=1):
        for pat, msg in patterns:
            if pat.search(line):
                findings.append(Finding(rule, fm.rel, no, msg, line))


def rule_wall_clock(fm: FileModel, ctx) -> list:
    findings = []
    if fm.rel not in WALLCLOCK_EXEMPT:
        _match_lines(fm, WALLCLOCK_PATTERNS, "wall-clock", findings)
    return findings


def rule_randomness(fm: FileModel, ctx) -> list:
    findings = []
    _match_lines(fm, RANDOMNESS_PATTERNS, "randomness", findings)
    return findings


RANGE_FOR = re.compile(r"\bfor\s*\(")


def _range_for_loops(fm: FileModel):
    """Yields (header_line, iterated_expr, body_scope|None) for each
    range-based for over the file."""
    for m in RANGE_FOR.finditer(fm.stripped):
        # Find the matching ')' of the for header.
        depth, i = 0, m.end() - 1
        n = len(fm.stripped)
        while i < n:
            if fm.stripped[i] == "(":
                depth += 1
            elif fm.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        header = fm.stripped[m.end():i]
        if ";" in header:
            # Classic for; handled by the iterator-loop detector below.
            yield (fm.line_of(m.start()), None, header, m.start(), i)
            continue
        if ":" not in header:
            continue
        expr = header.split(":", 1)[1].strip()
        yield (fm.line_of(m.start()), expr, header, m.start(), i)


def _loop_body(fm: FileModel, close_paren: int):
    """The scope of the loop body following the for(...) header, or None
    for single-statement bodies."""
    j = close_paren + 1
    n = len(fm.stripped)
    while j < n and fm.stripped[j] in " \t\n":
        j += 1
    if j < n and fm.stripped[j] == "{":
        sc = fm.scope_at(j + 1)
        if sc.start == j:
            return (j, sc.end)
    # Single statement: to the next ';'.
    semi = fm.stripped.find(";", j)
    return (j, semi + 1 if semi >= 0 else n)


def _trailing_name(expr: str):
    ids = re.findall(r"\w+", expr)
    return ids[-1] if ids else None


def _feeds_sort(fm: FileModel, body_start: int, body_end: int) -> bool:
    """True when the loop fills a container that the enclosing scope
    std::sort()s after the loop — the sanctioned way to iterate an
    unordered container deterministically."""
    body = fm.stripped[body_start:body_end]
    targets = set(re.findall(r"(\w+)\s*\.\s*(?:push_back|emplace_back|"
                             r"insert|emplace)\s*\(", body))
    if not targets:
        return False
    enclosing = fm.scope_at(body_start)
    # Walk up one level if the body scope itself was returned.
    if enclosing.start == body_start - 0 and enclosing.parent:
        enclosing = enclosing.parent
    after = fm.stripped[body_end:enclosing.end]
    for m in re.finditer(r"(?:std\s*::\s*)?(?:stable_)?sort\s*\(\s*(\w+)\s*"
                         r"\.\s*begin", after):
        if m.group(1) in targets:
            return True
    return False


def rule_unordered_iter(fm: FileModel, ctx) -> list:
    findings = []
    unordered = ctx.imported_unordered_syms(fm)
    if not unordered:
        return findings
    for line, expr, header, start, close in _range_for_loops(fm):
        if expr is None:
            # Iterator-style loop: for (auto It = X.begin(); ...)
            m = re.search(r"=\s*([\w.\->]+)\.(?:c?begin)\s*\(", header)
            if not m:
                continue
            name = _trailing_name(m.group(1).rsplit(".", 1)[0]
                                  if "." in m.group(1) else m.group(1))
            name = _trailing_name(m.group(1))
            # m.group(1) ends with the container; strip member access.
            name = re.findall(r"\w+", m.group(1))[-1]
        else:
            name = _trailing_name(expr)
        if name not in unordered:
            continue
        if fm.annotated("ordered-ok", line):
            continue
        body_start, body_end = _loop_body(fm, close)
        if _feeds_sort(fm, body_start, body_end):
            continue
        what = expr if expr is not None else name
        findings.append(Finding(
            "unordered-iter", fm.rel, line,
            f"iteration over unordered container '{what}': the visit order "
            "is hash-layout dependent, so any result-affecting use breaks "
            "bit-reproducibility; sort into a vector first, or annotate "
            "'trident-analyze: ordered-ok(<reason>)' if the fold is "
            "order-insensitive", fm.lines[line - 1]))
    return findings


def rule_float_order(fm: FileModel, ctx) -> list:
    findings = []
    unordered = ctx.imported_unordered_syms(fm)
    if not unordered:
        return findings
    for line, expr, header, start, close in _range_for_loops(fm):
        if expr is None:
            continue
        name = _trailing_name(expr)
        if name not in unordered:
            continue
        body_start, body_end = _loop_body(fm, close)
        body = fm.stripped[body_start:body_end]
        body_line0 = fm.line_of(body_start)
        for am in re.finditer(r"\b(\w+)\s*\+=", body):
            acc = am.group(1)
            if acc in fm.float_syms:
                at = fm.line_of(body_start + am.start())
                findings.append(Finding(
                    "float-order", fm.rel, at,
                    f"floating-point accumulation '{acc} +=' inside a loop "
                    f"over unordered container '{expr}': FP addition is not "
                    "associative, so the result depends on hash iteration "
                    "order; accumulate over a sorted sequence instead "
                    "(an ordered-ok annotation is NOT sufficient here)",
                    fm.lines[at - 1]))
        del body_line0
    return findings


#===----------------------------------------------------------------------===#
# Rule — stats-registration completeness (D2)
#===----------------------------------------------------------------------===#

STATS_SCALAR = re.compile(r"^\s*(?:mutable\s+)?(?:uint\d+_t|int\d+_t|int|"
                          r"unsigned|size_t|long|double|float|bool)\s")


def rule_stats_registration(ctx: AnalysisContext) -> list:
    """Project pass: pair every `struct \\w*Stats` with its registerInto
    body (inline or out-of-line, possibly in the sibling .cpp) and prove
    every scalar field is mentioned there."""
    findings = []
    # Collect registerInto bodies across the project: name -> body text.
    impls: dict[str, str] = {}
    outline = re.compile(r"\b(\w+)\s*::\s*registerInto\s*\(")
    for fm in ctx.files.values():
        for m in outline.finditer(fm.stripped):
            brace = fm.stripped.find("{", m.end())
            if brace < 0:
                continue
            sc = fm.scope_at(brace + 1)
            if sc.start == brace:
                impls[m.group(1)] = fm.stripped[sc.start:sc.end]
    for fm in ctx.files.values():
        for ci in fm.classes:
            if not re.fullmatch(r"\w*Stats", ci.name) or not ci.fields:
                continue
            if fm.annotated("unregistered-ok", ci.line):
                continue
            body_text = fm.stripped[ci.scope.start:ci.scope.end]
            inline = re.search(r"\bvoid\s+registerInto\s*\(", body_text)
            impl = impls.get(ci.name)
            if impl is None and inline:
                brace = body_text.find("{", inline.end())
                if brace >= 0:
                    sc = fm.scope_at(ci.scope.start + brace + 1)
                    impl = fm.stripped[sc.start:sc.end]
            declares = (inline is not None or
                        re.search(r"\bregisterInto\s*\(", body_text))
            if impl is None:
                if not declares:
                    findings.append(Finding(
                        "stats-registration", fm.rel, ci.line,
                        f"stats struct '{ci.name}' has no registerInto(): "
                        "its counters never reach the StatRegistry snapshot; "
                        "add one or annotate the struct "
                        "'trident-analyze: unregistered-ok(<reason>)'",
                        fm.lines[ci.line - 1]))
                continue
            impl_ids = set(re.findall(r"\w+", impl))
            for fname, fline, fdecl in ci.fields:
                if not STATS_SCALAR.match(fdecl):
                    continue
                if fname in impl_ids:
                    continue
                if fm.annotated("unregistered-ok", fline):
                    continue
                findings.append(Finding(
                    "stats-registration", fm.rel, fline,
                    f"field '{ci.name}::{fname}' is not registered in "
                    f"{ci.name}::registerInto(): the counter silently drops "
                    "out of the golden stats JSONL; register it or annotate "
                    "'trident-analyze: unregistered-ok(<reason>)'", fdecl))
    return findings


#===----------------------------------------------------------------------===#
# Rule — lock discipline (C1)
#===----------------------------------------------------------------------===#

LOCK_DECL = re.compile(r"\b(?:std\s*::\s*)?(?:lock_guard|unique_lock|"
                       r"scoped_lock)\s*(?:<[^<>]*>)?\s+\w+\s*[({]"
                       r"([^)}]*)[)}]")
LOCK_CALL = re.compile(r"\b([\w.\->]+)\s*\.\s*lock\s*\(\s*\)")


def _locked_regions(fm: FileModel, mutex: str):
    """(start, end) offset ranges in which `mutex` is held: from each lock
    acquisition to the end of its enclosing brace scope."""
    regions = []
    for m in LOCK_DECL.finditer(fm.stripped):
        ids = re.findall(r"\w+", m.group(1))
        if ids and ids[-1] == mutex:
            sc = fm.scope_at(m.start())
            regions.append((m.start(), sc.end))
    for m in LOCK_CALL.finditer(fm.stripped):
        ids = re.findall(r"\w+", m.group(1))
        if ids and ids[-1] == mutex:
            sc = fm.scope_at(m.start())
            regions.append((m.start(), sc.end))
    return regions


def rule_lock_discipline(fm: FileModel, ctx) -> list:
    """Fields annotated guarded-by(Mu) may only be named inside a region
    that holds Mu — checked over the declaring file and its header/source
    sibling (the annotation typically sits on a header field touched from
    the .cpp)."""
    findings = []
    guarded = []  # (field, mutex, decl_line)
    for a in fm.annotations:
        if a.kind != "guarded-by" or not a.arg:
            continue
        # The annotated declaration is on a.line (or the next line when
        # the comment sits above the field).
        for probe in (a.line, a.line + 1):
            if probe - 1 < len(fm.lines):
                m = FIELD_DECL.match(fm.lines[probe - 1])
                if m:
                    guarded.append((m.group(2), a.arg.strip(), probe))
                    break
    if not guarded:
        return findings
    targets = [fm]
    sib = ctx.sibling(fm)
    if sib is not None:
        targets.append(sib)
    for field, mutex, decl_line in guarded:
        pat = re.compile(r"\b" + re.escape(field) + r"\b")
        for tf in targets:
            regions = _locked_regions(tf, mutex)
            for m in pat.finditer(tf.stripped):
                line = tf.line_of(m.start())
                if tf is fm and line == decl_line:
                    continue
                if any(s <= m.start() < e for s, e in regions):
                    continue
                if tf.annotated("guard-ok", line):
                    continue
                findings.append(Finding(
                    "lock-discipline", tf.rel, line,
                    f"'{field}' is guarded-by({mutex}) but touched here "
                    f"with no {mutex} lock in scope (lock_guard/unique_lock/"
                    f"scoped_lock on {mutex}, or annotate the line "
                    "'trident-analyze: guard-ok(<reason>)')",
                    tf.lines[line - 1]))
    return findings


#===----------------------------------------------------------------------===#
# Rule — layering (L1)
#===----------------------------------------------------------------------===#


def load_layering(root: Path):
    for cand in (root / "tools" / "layering.json", root / "layering.json"):
        if cand.is_file():
            try:
                doc = json.loads(cand.read_text())
            except json.JSONDecodeError as e:
                return {"error": f"{cand}: invalid JSON: {e}"}
            doc["_path"] = str(cand)
            return doc
    return None


def rule_layering(ctx: AnalysisContext) -> list:
    """Project pass over the src/ include graph projected to modules.
    The manifest declares levels (an include may only point strictly
    down-level) plus explicitly allowed same-level edges; the resulting
    declared graph and the observed graph must both be acyclic, and the
    manifest's module set must match the directories on disk."""
    findings = []
    lay = ctx.layering
    src_files = [f for f in ctx.files.values() if f.module]
    if not src_files:
        return findings
    if lay is None:
        return findings  # fixture roots without a manifest skip L1
    manifest = lay.get("_path", "tools/layering.json")
    if "error" in lay:
        return [Finding("layering", "tools/layering.json", 1, lay["error"])]

    level_of: dict[str, int] = {}
    for lvl, mods in enumerate(lay.get("levels", [])):
        for m in mods:
            if m in level_of:
                findings.append(Finding(
                    "layering", "tools/layering.json", 1,
                    f"module '{m}' appears in more than one level"))
            level_of[m] = lvl
    allowed_lateral = {tuple(e) for e in lay.get("intra_level_edges", [])}

    # Manifest <-> disk agreement.
    on_disk = sorted({f.module for f in src_files})
    for m in on_disk:
        if m not in level_of:
            findings.append(Finding(
                "layering", "tools/layering.json", 1,
                f"module 'src/{m}' exists on disk but is missing from "
                f"the layering manifest ({manifest})"))
    for m in level_of:
        if m not in on_disk:
            findings.append(Finding(
                "layering", "tools/layering.json", 1,
                f"manifest module '{m}' has no src/{m} directory"))
    for a, b in allowed_lateral:
        if level_of.get(a) != level_of.get(b):
            findings.append(Finding(
                "layering", "tools/layering.json", 1,
                f"intra_level_edges entry {a}->{b} does not connect two "
                "modules of the same level"))

    # Observed module edges with their contributing include sites.
    edges: dict[tuple, list] = {}
    for fm in src_files:
        for line, target in fm.includes:
            tmod = target.split("/")[0]
            if tmod == fm.module or ("src/" + target) not in ctx.files:
                continue
            edges.setdefault((fm.module, tmod), []).append((fm.rel, line,
                                                            target))
    # Per-edge violation reports.
    for (a, b), sites in sorted(edges.items()):
        if a not in level_of or b not in level_of:
            continue  # already reported as a manifest mismatch
        ok = level_of[a] > level_of[b] or (a, b) in allowed_lateral
        if ok:
            continue
        kind = ("same-level edge not in intra_level_edges"
                if level_of[a] == level_of[b] else
                f"up-level include (level {level_of[a]} -> {level_of[b]})")
        for rel, line, target in sites:
            findings.append(Finding(
                "layering", rel, line,
                f"module edge {a} -> {b} violates the layering DAG "
                f"({kind}; manifest: {manifest}): "
                f'#include "{target}"', f'#include "{target}"'))

    # Cycle detection on the *declared* graph (levels + lateral edges can
    # only cycle laterally, but check generally) and the observed graph.
    def find_cycle(nodes, succ):
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in nodes}
        stack = []

        def dfs(n):
            color[n] = GRAY
            stack.append(n)
            for s in succ(n):
                if s not in color:
                    continue
                if color[s] == GRAY:
                    return stack[stack.index(s):] + [s]
                if color[s] == WHITE:
                    cyc = dfs(s)
                    if cyc:
                        return cyc
            stack.pop()
            color[n] = BLACK
            return None

        for n in sorted(nodes):
            if color[n] == WHITE:
                cyc = dfs(n)
                if cyc:
                    return cyc
        return None

    declared_succ = lambda n: sorted(
        b for (a, b) in allowed_lateral if a == n)
    cyc = find_cycle(set(level_of), declared_succ)
    if cyc:
        findings.append(Finding(
            "layering", "tools/layering.json", 1,
            "declared intra-level edges form a cycle: " + " -> ".join(cyc)))
    observed_succ = lambda n: sorted(b for (a, b) in edges if a == n)
    cyc = find_cycle({m for e in edges for m in e} | set(on_disk),
                     observed_succ)
    if cyc:
        findings.append(Finding(
            "layering", "src", 1,
            "observed include graph has a module cycle: " +
            " -> ".join(cyc)))
    return findings


#===----------------------------------------------------------------------===#
# Rules — migrated hardware-modeling hygiene (R3..R7)
#===----------------------------------------------------------------------===#

HOTPATH_PATTERNS = [
    (re.compile(r"\bstd::erase_if\b"), "std::erase_if is an O(n) scan"),
    (re.compile(r"\.erase\s*\(\s*std::remove"),
     "remove-erase idiom is an O(n) scan"),
    (re.compile(r"\bstd::remove_if\b"), "std::remove_if is an O(n) scan"),
    (re.compile(r"\bstd::find_if\s*\(\s*\w+\.begin\(\)"),
     "linear std::find_if scan over a container"),
]


def rule_hot_path(fm: FileModel, ctx) -> list:
    findings = []
    if any(a.kind == "hot-path" for a in fm.annotations):
        _match_lines(fm, HOTPATH_PATTERNS, "hot-path", findings)
    return findings


TABLE_SUFFIX = re.compile(r"\w*(?:Table|Cache|Buffer|Tlb|Predictor|"
                          r"Profiler|Prefetcher)$")
BOUND_TOKENS = re.compile(
    r"(\w*Entries|SizeBytes|MaxLength|[Cc]apacity|NumStreams|NumBuffers|"
    r"[Dd]epth\b)")
CONFIG_REF = re.compile(r"\b(\w*Config)\b")


def _config_bounded(fm: FileModel, ctx, body: str) -> bool:
    """A table class constructed from a `FooConfig` whose struct declares
    a capacity bound is itself bounded — the bound just lives one
    indirection away (the dominant idiom in this codebase)."""
    refs = set(CONFIG_REF.findall(body))
    if not refs:
        return False
    candidates = [fm] + [ctx.files.get("src/" + t) for _, t in fm.includes]
    for tf in candidates:
        if tf is None:
            continue
        for ci in tf.classes:
            if ci.name in refs and BOUND_TOKENS.search(
                    tf.stripped[ci.scope.start:ci.scope.end]):
                return True
    return False


def rule_table_bounds(fm: FileModel, ctx) -> list:
    """R4, fixed: the capacity bound and the not-a-hw-table annotation are
    resolved against the matched class — an annotation on one class no
    longer exempts its neighbors, and a bound declared by another class in
    the file no longer satisfies this one."""
    findings = []
    if fm.path.suffix not in {".h", ".hpp"}:
        return findings
    for ci in fm.classes:
        if not TABLE_SUFFIX.fullmatch(ci.name):
            continue
        body_first = ci.line
        body_last = fm.line_of(ci.scope.end - 1)
        attached = any(
            a.kind == "not-a-hw-table" and
            ci.line - 3 <= a.line <= body_last
            for a in fm.annotations)
        if attached:
            continue
        body = fm.stripped[fm.offset_of_line(body_first):ci.scope.end]
        if not BOUND_TOKENS.search(body) and not _config_bounded(fm, ctx,
                                                                 body):
            findings.append(Finding(
                "table-bounds", fm.rel, ci.line,
                f"hardware table class '{ci.name}' declares no capacity "
                "bound (NumEntries/SizeBytes/capacity) in its own body; "
                "annotate 'trident-analyze: not-a-hw-table(<reason>)' on "
                "the class if it is not modeling a hardware structure",
                fm.lines[ci.line - 1]))
    return findings


ASSERT_CALL = re.compile(r"(?<![\w.])assert\s*\(")
ASSERT_INCLUDE = re.compile(r"#\s*include\s*<(cassert|assert\.h)>")
ASSERT_ALLOWED = {"src/support/Check.h"}


def rule_no_assert(fm: FileModel, ctx) -> list:
    findings = []
    if fm.rel in ASSERT_ALLOWED:
        return findings
    for no, line in enumerate(fm.lines, start=1):
        if ASSERT_CALL.search(line) and "static_assert" not in line:
            findings.append(Finding(
                "no-assert", fm.rel, no,
                "bare assert(); use TRIDENT_CHECK/TRIDENT_DCHECK from "
                "support/Check.h", line))
        if ASSERT_INCLUDE.search(line):
            findings.append(Finding(
                "no-assert", fm.rel, no,
                "<cassert> include; use support/Check.h", line))
    return findings


EVENT_ENUM = re.compile(r"\benum\s+class\s+EventKind\b[^{;]*\{")
ENUMERATOR = re.compile(r"^\s*(\w+)\s*(?:=[^,]*)?(?:,|$)")


def rule_event_names(fm: FileModel, ctx) -> list:
    """R6, fixed: enumerators are parsed structurally, line by line within
    the enum's brace scope, instead of splitting the flattened body on
    commas (which misparsed once the old stripper mangled digit
    separators and trailing comments)."""
    findings = []
    m = EVENT_ENUM.search(fm.stripped)
    if not m:
        return findings
    brace = fm.stripped.index("{", m.start())
    sc = fm.scope_at(brace + 1)
    enum_line = fm.line_of(m.start())
    first = fm.line_of(sc.start) + (0 if fm.line_of(sc.start) != enum_line
                                    else 1)
    last = fm.line_of(sc.end - 1)
    names = []
    for no in range(fm.line_of(sc.start), last + 1):
        line = fm.lines[no - 1]
        if no == fm.line_of(sc.start):
            line = line[line.index("{") + 1:] if "{" in line else line
        if no == last:
            line = line[:line.rindex("}")] if "}" in line else line
        for piece in line.split(","):
            em = ENUMERATOR.match(piece.strip())
            if em and em.group(1).isidentifier():
                names.append(em.group(1))
    del first
    for name in names:
        if not re.search(r"\bcase\s+EventKind\s*::\s*" + name + r"\s*:",
                         fm.stripped):
            findings.append(Finding(
                "event-names", fm.rel, enum_line,
                f"EventKind::{name} has no 'case EventKind::{name}:' in "
                "eventKindName()'s switch; every event kind needs a "
                "string-table entry", fm.lines[enum_line - 1]))
    return findings


HOT_ALLOC_FILES = {
    "src/cpu/SmtCore.cpp",
    "src/mem/MemorySystem.cpp",
    "src/mem/Cache.cpp",
    "src/events/EventBus.h",
}
ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b"), "operator new on the hot path"),
    (re.compile(r"\bmake_(unique|shared)\b"),
     "make_unique/make_shared on the hot path"),
    (re.compile(r"\bstd::function\b"),
     "std::function allocates capture storage; use a function pointer or "
     "StubCallback"),
]
PUSH_CALL = re.compile(r"([A-Za-z_]\w*(?:\[[^\]]*\])?(?:(?:\.|->)\w+"
                       r"(?:\[[^\]]*\])?)*)\s*\.\s*"
                       r"(push_back|emplace_back)\s*\(")


def rule_hot_path_alloc(fm: FileModel, ctx) -> list:
    findings = []
    if fm.rel not in HOT_ALLOC_FILES:
        return findings
    for no, line in enumerate(fm.lines, start=1):
        raw = fm.raw_lines[no - 1] if no <= len(fm.raw_lines) else ""
        if ANNOTATION.search(raw) and "alloc-ok" in raw:
            continue
        for pat, msg in ALLOC_PATTERNS:
            if pat.search(line):
                findings.append(Finding("hot-path-alloc", fm.rel, no, msg,
                                        line))
        for m in PUSH_CALL.finditer(line):
            base = re.escape(re.sub(r"\[[^\]]*\]", "", m.group(1)))
            if re.search(base + r"\s*\.\s*(reserve|resize)\s*\(",
                         fm.stripped):
                continue
            findings.append(Finding(
                "hot-path-alloc", fm.rel, no,
                f"{m.group(2)} on '{m.group(1)}' which this file never "
                "reserve()s/resize()s — growth allocates mid-cycle; "
                "pre-size it or annotate the line "
                "'trident-analyze: alloc-ok(<reason>)'", line))
    return findings


#===----------------------------------------------------------------------===#
# Rule registry
#===----------------------------------------------------------------------===#

# (id, legacy-id, description, file_rule, hw_only)
FILE_RULES = [
    ("wall-clock", "R1", "no host time sources in simulator code",
     rule_wall_clock, False),
    ("randomness", "R2", "no unseeded/global randomness",
     rule_randomness, False),
    ("hot-path", "R3", "no O(n) erase/scan idioms in hot-path files",
     rule_hot_path, True),
    ("table-bounds", "R4", "hardware tables declare a capacity bound",
     rule_table_bounds, True),
    ("no-assert", "R5", "TRIDENT_CHECK instead of bare assert()",
     rule_no_assert, True),
    ("event-names", "R6", "every EventKind has a name-table case",
     rule_event_names, True),
    ("hot-path-alloc", "R7", "zero-alloc hot-path files do not allocate",
     rule_hot_path_alloc, True),
    ("unordered-iter", "D1",
     "no result-affecting iteration over unordered containers",
     rule_unordered_iter, True),
    ("float-order", "C2",
     "no FP += reductions over unordered containers",
     rule_float_order, True),
    ("lock-discipline", "C1",
     "guarded-by(Mu) fields only touched under their mutex",
     rule_lock_discipline, True),
]
PROJECT_RULES = [
    ("layering", "L1", "module include DAG matches tools/layering.json",
     rule_layering),
    ("stats-registration", "D2",
     "every *Stats field is registered in registerInto()",
     rule_stats_registration),
]
LEGACY_RULES = {"wall-clock", "randomness", "hot-path", "table-bounds",
                "no-assert", "event-names", "hot-path-alloc"}
ALL_RULE_IDS = [r[0] for r in FILE_RULES] + [r[0] for r in PROJECT_RULES]


#===----------------------------------------------------------------------===#
# SARIF 2.1 export
#===----------------------------------------------------------------------===#


def to_sarif(findings: list, root: Path) -> dict:
    rule_meta = []
    for rid, legacy, desc, *_ in FILE_RULES + PROJECT_RULES:
        rule_meta.append({
            "id": rid,
            "name": legacy,
            "shortDescription": {"text": desc},
        })
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "partialFingerprints": {"tridentAnalyze/v1": f.fingerprint()},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.rel,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        })
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "trident-analyze",
                "version": ENGINE_VERSION,
                "informationUri":
                    "https://example.invalid/trident-srp/tools",
                "rules": rule_meta,
            }},
            "originalUriBaseIds": {
                "SRCROOT": {"uri": root.resolve().as_uri() + "/"},
            },
            "results": results,
        }],
    }


#===----------------------------------------------------------------------===#
# Scope selection, cache, baseline, diff
#===----------------------------------------------------------------------===#


def default_scope(root: Path):
    """(path, hw_rules) pairs: src/ gets every rule; bench/tools/examples
    only the determinism rules R1/R2 (harness code may not add
    nondeterminism either, but is not hardware modeling)."""
    files = []
    for sub, hw in (("src", True), ("bench", False), ("tools", False),
                    ("examples", False)):
        d = root / sub
        if not d.is_dir():
            continue
        for p in sorted(d.rglob("*")):
            if p.suffix in CPP_SUFFIXES and p.is_file():
                files.append((p, hw))
    return files


def changed_files(root: Path, base: str) -> set:
    """Repo-relative paths changed vs `base`, plus staged and untracked."""
    out = set()
    cmds = [
        ["git", "diff", "--name-only", base, "--"],
        ["git", "diff", "--name-only", "--cached", "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "--"],
    ]
    for cmd in cmds:
        try:
            r = subprocess.run(cmd, cwd=root, capture_output=True,
                               text=True, check=True)
        except (subprocess.CalledProcessError, FileNotFoundError):
            continue
        out.update(l.strip() for l in r.stdout.splitlines() if l.strip())
    return out


def resolve_diff_base(root: Path, base: str) -> str:
    if base:
        return base
    for cmd in (["git", "merge-base", "HEAD", "main"],
                ["git", "rev-parse", "--verify", "-q", "HEAD~1"],
                ["git", "rev-parse", "HEAD"]):
        try:
            r = subprocess.run(cmd, cwd=root, capture_output=True,
                               text=True)
            if r.returncode == 0 and r.stdout.strip():
                return r.stdout.strip()
        except FileNotFoundError:
            break
    return "HEAD"


class Cache:
    def __init__(self, path: Path, enabled: bool):
        self.path, self.enabled = path, enabled
        self.store = {}
        self.dirty = False
        if enabled and path.is_file():
            try:
                doc = json.loads(path.read_text())
                if doc.get("version") == RULES_VERSION:
                    self.store = doc.get("files", {})
            except (json.JSONDecodeError, OSError):
                pass

    def key(self, fm: FileModel, ctx: AnalysisContext) -> str:
        """File content plus everything per-file rules consult across file
        boundaries: directly included src headers (symbol import for D1)
        and the header/source sibling (C1 annotations)."""
        h = hashlib.sha256(fm.sha.encode())
        for _, target in fm.includes:
            dep = ctx.files.get("src/" + target)
            if dep is not None:
                h.update(dep.sha.encode())
        sib = ctx.sibling(fm)
        if sib is not None:
            h.update(sib.sha.encode())
        return h.hexdigest()

    def get(self, rel: str, key: str):
        ent = self.store.get(rel)
        if ent and ent.get("key") == key:
            return [Finding.from_dict(d) for d in ent["findings"]]
        return None

    def put(self, rel: str, key: str, findings: list):
        self.store[rel] = {"key": key,
                           "findings": [f.to_dict() for f in findings]}
        self.dirty = True

    def save(self):
        if not (self.enabled and self.dirty):
            return
        try:
            self.path.write_text(json.dumps(
                {"version": RULES_VERSION, "files": self.store},
                sort_keys=True))
        except OSError:
            pass


#===----------------------------------------------------------------------===#
# Driver
#===----------------------------------------------------------------------===#


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("paths", nargs="*",
                    help="restrict *reported* findings to these files")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule ids, or 'legacy' for the "
                         "trident-lint R1-R7 set")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--sarif", default=None, metavar="OUT",
                    help="write a SARIF 2.1 report")
    ap.add_argument("--baseline", default=None, metavar="FILE",
                    help="suppression baseline (default: "
                         "tools/analysis_baseline.json if present)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write current findings into the baseline and "
                         "exit 0")
    ap.add_argument("--diff", nargs="?", const="", default=None,
                    metavar="BASE",
                    help="report only findings in files changed since BASE "
                         "(default: merge-base with main)")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--cache", default=None, metavar="FILE")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rid, legacy, desc, *_ in FILE_RULES + PROJECT_RULES:
            print(f"{rid:20s} {legacy:3s} {desc}")
        return 0

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent)
    if not root.is_dir():
        print(f"trident-analyze: no such root: {root}", file=sys.stderr)
        return 2

    if args.rules == "legacy":
        enabled = set(LEGACY_RULES)
    elif args.rules:
        enabled = {r.strip() for r in args.rules.split(",") if r.strip()}
        bad = enabled - set(ALL_RULE_IDS)
        if bad:
            print(f"trident-analyze: unknown rule(s): {', '.join(sorted(bad))}",
                  file=sys.stderr)
            return 2
    else:
        enabled = set(ALL_RULE_IDS)

    # ---- build file models -------------------------------------------------
    scope = default_scope(root)
    files: dict[str, FileModel] = {}
    harness: dict[str, FileModel] = {}
    for p, hw in scope:
        rel = p.relative_to(root).as_posix()
        try:
            fm = FileModel(p, rel, root)
        except OSError as e:
            print(f"trident-analyze: cannot read {rel}: {e}",
                  file=sys.stderr)
            return 2
        (files if hw else harness)[rel] = fm
    ctx = AnalysisContext(root, files, load_layering(root),
                          quiet=args.quiet)
    ctx.harness_files = harness

    cache_path = (Path(args.cache) if args.cache
                  else root / ".trident-analyze-cache.json")
    cache = Cache(cache_path, enabled=not args.no_cache)

    # ---- run per-file rules ------------------------------------------------
    findings: list[Finding] = []
    checked = 0
    cache_hits = 0
    for rel in sorted(list(files) + list(harness)):
        hw = rel in files
        fm = files[rel] if hw else harness[rel]
        checked += 1
        key = cache.key(fm, ctx) + ("|hw" if hw else "|harness") + \
            "|" + ",".join(sorted(enabled & {r[0] for r in FILE_RULES}))
        cached = cache.get(rel, key)
        if cached is not None:
            findings.extend(cached)
            cache_hits += 1
            continue
        file_findings = []
        for rid, _legacy, _desc, fn, hw_only in FILE_RULES:
            if rid not in enabled or (hw_only and not hw):
                continue
            file_findings.extend(fn(fm, ctx))
        cache.put(rel, key, file_findings)
        findings.extend(file_findings)

    # ---- run project rules -------------------------------------------------
    for rid, _legacy, _desc, fn in PROJECT_RULES:
        if rid in enabled:
            findings.extend(fn(ctx))
    cache.save()

    findings.sort(key=lambda f: (f.rel, f.line, f.rule, f.message))

    # ---- baseline suppression ----------------------------------------------
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / "tools" / "analysis_baseline.json")
    if args.write_baseline:
        doc = {"comment": "trident-analyze suppression baseline: "
                          "fingerprints of accepted findings. Regenerate "
                          "with tools/trident_analyze.py --write-baseline.",
               "suppressions": sorted({f.fingerprint() for f in findings})}
        baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"trident-analyze: wrote {len(doc['suppressions'])} "
              f"suppression(s) to {baseline_path}", file=sys.stderr)
        return 0
    suppressed = 0
    if baseline_path.is_file():
        try:
            doc = json.loads(baseline_path.read_text())
            fps = set(doc.get("suppressions", []))
        except (json.JSONDecodeError, OSError):
            fps = set()
        before = len(findings)
        findings = [f for f in findings if f.fingerprint() not in fps]
        suppressed = before - len(findings)

    # ---- diff / path gating ------------------------------------------------
    if args.diff is not None:
        base = resolve_diff_base(root, args.diff)
        changed = changed_files(root, base)
        findings = [f for f in findings if f.rel in changed]
        if not args.quiet:
            print(f"trident-analyze: diff mode vs {base[:12]} "
                  f"({len(changed)} changed file(s))", file=sys.stderr)
    if args.paths:
        wanted = set()
        for raw in args.paths:
            p = Path(raw).resolve()
            try:
                wanted.add(p.relative_to(root).as_posix())
            except ValueError:
                wanted.add(raw)
        findings = [f for f in findings if f.rel in wanted]

    # ---- report ------------------------------------------------------------
    for f in findings:
        print(f)
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(findings, root), indent=2) + "\n")
    if not args.quiet:
        extra = f", {suppressed} baseline-suppressed" if suppressed else ""
        extra += (f", {cache_hits}/{checked} cached"
                  if cache_hits else "")
        print(f"trident-analyze: {checked} files checked, "
              f"{len(findings)} finding(s){extra}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
