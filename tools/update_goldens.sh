#!/usr/bin/env bash
# Regenerates the golden stat snapshots in tests/golden/ from the current
# build. Run this after an *intentional* behaviour change, then review the
# resulting diff like any other code change before committing it.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake --build "$BUILD_DIR" --target golden_stats_test fuzz_golden_test -j
(cd "$BUILD_DIR/tests" && TRIDENT_UPDATE_GOLDENS=1 ./golden_stats_test)
(cd "$BUILD_DIR/tests" && TRIDENT_UPDATE_GOLDENS=1 ./fuzz_golden_test)

echo
echo "Golden snapshots rewritten; review before committing:"
git -C "$REPO_ROOT" status --short -- tests/golden
