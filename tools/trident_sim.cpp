//===- trident_sim.cpp - Command-line simulator driver ---------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// A full-featured CLI over the library: pick a workload and configuration,
// run it, and get the complete statistics dump. Everything the figure
// benches do can be reproduced ad hoc from here.
//
//   trident_sim --list
//   trident_sim --workload mcf --compare
//   trident_sim --workload galgel --mode self-repairing --instr 4000000
//               --window 128 --miss-threshold 4 --verbose
//   trident_sim --workload equake --hwpf none --mode self-repairing
//   trident_sim --workload art --mode basic --tlb --no-link
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "sim/Simulation.h"
#include "support/Table.h"
#include "workloads/Workloads.h"
#include "workloads/fuzz/FuzzGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace trident;

namespace {

void usage(const char *Prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --list                 list the 14 workloads and exit\n"
      "  --workload NAME        workload to run (required unless --list,\n"
      "                         --fuzz, or --mix); fuzz@SEED[:knobs] specs\n"
      "                         are accepted anywhere a name is\n"
      "  --fuzz SPEC            run a generated workload: SEED[:knob=v,...]\n"
      "                         with knobs wset (KB), segs, entropy (0-1000\n"
      "                         permille), branch (permille), phase (iters),\n"
      "                         streams; same seed+knobs => bit-identical\n"
      "                         program and result\n"
      "  --mix W1+W2[+W3[+W4]]  multi-programmed mix: W1 is the measured\n"
      "                         primary (full Trident wiring), the rest are\n"
      "                         raw co-runners contending for the shared\n"
      "                         memory system; names or fuzz specs\n"
      "  --mix-quantum N        mix co-scheduling quantum in cycles\n"
      "                         (default 1000; larger skews bandwidth\n"
      "                         toward the primary lane)\n"
      "  --mode MODE            hw | none | basic | whole-object |\n"
      "                         self-repairing   (default self-repairing;\n"
      "                         'hw' disables Trident entirely)\n"
      "  --hwpf SPEC            hardware-prefetcher spec (default sb8x8);\n"
      "                         'none' disables, 'list' enumerates the\n"
      "                         registered arsenal; knobs attach as\n"
      "                         name:k=v,k=v (e.g. dcpt:entries=64)\n"
      "  --hwpf-feedback N      publish hwpf accuracy/coverage feedback\n"
      "                         events every N commits and export the\n"
      "                         hwpf.feedback.* stats (default 0 = off)\n"
      "  --selector SPEC        phase-aware prefetcher selection (default\n"
      "                         static = off): bandit[:knobs] swaps arsenal\n"
      "                         units at epoch boundaries (knobs epoch,\n"
      "                         interval, seed, eps, ucb, ema),\n"
      "                         oracle[:knobs] replays every static unit\n"
      "                         first and pins the best\n"
      "  --instr N              committed instructions (default 2000000)\n"
      "  --warmup N             warmup instructions (default 100000)\n"
      "  --compare              also run the hw baseline and print speedup\n"
      "  --no-link              form/optimize traces but never link (5.1)\n"
      "  --tlb                  enable the data-TLB model (+ page-bounded\n"
      "                         stream buffers)\n"
      "  --seed-estimate        seed self-repair with the eq.2 estimate\n"
      "  --phase-adapt          clear mature flags on phase changes\n"
      "  --dlt-entries N        DLT size (default 1024)\n"
      "  --window N             DLT monitoring window (default 256)\n"
      "  --miss-threshold N     DLT miss threshold (default 8)\n"
      "  --distance-cap N       max prefetch distance (default 64)\n"
      "  --trace-out PATH       record hardware events into a ring buffer\n"
      "                         and write Chrome trace JSON (open it in\n"
      "                         chrome://tracing or ui.perfetto.dev)\n"
      "  --trace-capacity N     event-ring capacity (default 65536; the\n"
      "                         ring keeps the newest N events)\n"
      "  --stats-out PATH       write the full stat registry as JSONL\n"
      "                         (one {\"name\",\"type\",\"value\"} per line,\n"
      "                         sorted by name, byte-reproducible)\n"
      "  --faults PATH          inject faults from a JSON fault plan (see\n"
      "                         DESIGN.md section 11 for the schema); the\n"
      "                         run stays deterministic for a fixed plan\n"
      "  --verbose              full statistics dump\n",
      Prog);
}

const char *onOff(bool B) { return B ? "on" : "off"; }

void printStats(const SimResult &R, bool Verbose) {
  std::printf("workload         %s\n", R.Workload.c_str());
  std::printf("config           %s\n", R.ConfigName.c_str());
  std::printf("instructions     %llu\n",
              (unsigned long long)R.Instructions);
  std::printf("cycles           %llu\n", (unsigned long long)R.Cycles);
  std::printf("IPC              %.4f\n", R.Ipc);
  // Printed outside --verbose: CI's selector smoke parses this line.
  if (R.Selector.Samples > 0 || !R.SelectorFinalUnit.empty())
    std::printf("selector         epochs=%llu swaps=%llu explorations=%llu "
                "final=%s\n",
                (unsigned long long)R.Selector.Epochs,
                (unsigned long long)R.Selector.Swaps,
                (unsigned long long)R.Selector.Explorations,
                R.SelectorFinalUnit.empty() ? "none"
                                            : R.SelectorFinalUnit.c_str());
  for (size_t I = 0; I < R.MixLanes.size(); ++I) {
    const SimResult::MixLane &L = R.MixLanes[I];
    double LaneIpc =
        L.Cycles ? double(L.Instructions) / double(L.Cycles) : 0.0;
    std::printf("mix lane %zu       %s: %llu instrs, IPC %.4f\n", I + 1,
                L.Workload.c_str(), (unsigned long long)L.Instructions,
                LaneIpc);
  }
  if (!Verbose)
    return;

  const MemStats &M = R.Mem;
  std::printf("\n-- memory system --\n");
  std::printf("demand loads     %llu\n", (unsigned long long)M.DemandLoads);
  std::printf("  hits           %llu\n", (unsigned long long)M.HitsNone);
  std::printf("  hit-prefetched %llu\n",
              (unsigned long long)M.HitsPrefetched);
  std::printf("  partial hits   %llu\n", (unsigned long long)M.PartialHits);
  std::printf("  misses         %llu\n", (unsigned long long)M.Misses);
  std::printf("  miss-due-to-pf %llu\n",
              (unsigned long long)M.MissesDueToPrefetch);
  std::printf("sw prefetches    %llu\n",
              (unsigned long long)M.SoftwarePrefetches);
  std::printf("hw prefetches    %llu\n",
              (unsigned long long)M.HardwarePrefetches);
  std::printf("memory fetches   %llu\n",
              (unsigned long long)M.MemoryFetches);
  if (!R.HwPf.Prefetcher.empty()) {
    std::printf("hwpf unit        %s\n", R.HwPf.Prefetcher.c_str());
    for (const auto &KV : R.HwPf.Counters)
      std::printf("  %-14s %llu\n", KV.first.c_str(),
                  (unsigned long long)KV.second);
  }
  std::printf("exposed lat/load %.2f cycles\n",
              M.DemandLoads
                  ? double(M.TotalExposedLatency) / double(M.DemandLoads)
                  : 0.0);
  if (R.Tlb.Lookups)
    std::printf("dtlb             %llu lookups, %llu misses, %llu "
                "prefetches dropped\n",
                (unsigned long long)R.Tlb.Lookups,
                (unsigned long long)R.Tlb.Misses,
                (unsigned long long)R.Tlb.PrefetchesDropped);

  if (R.Faults.Injected > 0) {
    std::printf("\n-- fault injection --\n");
    std::printf("faults injected  %llu (%llu reverted, %llu skipped)\n",
                (unsigned long long)R.Faults.Injected,
                (unsigned long long)R.Faults.Reverts,
                (unsigned long long)R.Faults.Skipped);
    std::printf("evicted          %llu cache lines, %llu dlt, %llu watch\n",
                (unsigned long long)R.Faults.CacheLinesEvicted,
                (unsigned long long)R.Faults.DltEntriesEvicted,
                (unsigned long long)R.Faults.WatchEntriesEvicted);
    std::printf("re-detection     %llu faults, %llu cycles total\n",
                (unsigned long long)R.Faults.DetectionEvents,
                (unsigned long long)R.Faults.DetectionCyclesTotal);
    std::printf("re-convergence   %llu faults, %llu cycles total\n",
                (unsigned long long)R.Faults.ReconvergenceEvents,
                (unsigned long long)R.Faults.ReconvergenceCyclesTotal);
  }

  const RuntimeStats &S = R.Runtime;
  if (S.CommitsTotal == 0)
    return;
  std::printf("\n-- trident runtime --\n");
  std::printf("hot-trace events %llu\n",
              (unsigned long long)S.HotTraceEvents);
  std::printf("traces installed %llu (+%llu reinstalls)\n",
              (unsigned long long)S.TracesInstalled,
              (unsigned long long)S.TraceReinstalls);
  std::printf("delinquent evts  %llu\n",
              (unsigned long long)S.DelinquentEvents);
  std::printf("insertions       %llu\n",
              (unsigned long long)S.InsertionOptimizations);
  std::printf("repairs          %llu (last distance %d)\n",
              (unsigned long long)S.RepairOptimizations,
              S.LastRepairDistance);
  std::printf("loads matured    %llu\n", (unsigned long long)S.LoadsMatured);
  std::printf("events dropped   %llu\n",
              (unsigned long long)S.EventsDropped);
  std::printf("pf instructions  %llu planned\n",
              (unsigned long long)S.PrefetchInstructionsPlanned);
  std::printf("phase changes    %llu (%llu flags cleared)\n",
              (unsigned long long)S.PhaseChangesDetected,
              (unsigned long long)S.MatureFlagsCleared);
  std::printf("commit coverage  %.1f%% of commits in traces\n",
              S.CommitsTotal
                  ? 100.0 * double(S.CommitsInTraces) / double(S.CommitsTotal)
                  : 0.0);
  std::printf("miss coverage    %.1f%% in traces, %.1f%% prefetch-covered\n",
              100.0 * S.traceMissCoverage(),
              100.0 * S.prefetchMissCoverage());
  std::printf("helper thread    active %.2f%% of cycles\n",
              100.0 * R.helperActiveFraction());
  std::printf("dlt              %llu updates, %llu windows, %llu events, "
              "%llu replacements\n",
              (unsigned long long)R.Dlt.Updates,
              (unsigned long long)R.Dlt.WindowsCompleted,
              (unsigned long long)R.Dlt.Events,
              (unsigned long long)R.Dlt.Replacements);
}

} // namespace

int main(int argc, char **argv) {
  std::string WorkloadName;
  std::string FuzzSpec, MixSpec;
  uint64_t MixQuantum = 1'000;
  std::string Mode = "self-repairing";
  std::string HwPf = "sb8x8";
  std::string Selector;
  uint64_t HwPfFeedback = 0;
  uint64_t Instr = 2'000'000, Warmup = 100'000;
  bool Compare = false, Verbose = false, List = false;
  bool NoLink = false, EnableTlb = false, SeedEstimate = false,
       PhaseAdapt = false;
  unsigned DltEntries = 1024, Window = 256, MissThreshold = 8;
  int DistanceCap = 64;
  std::string TraceOut, StatsOut, FaultsPath;
  size_t TraceCapacity = 1 << 16;

  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[I]);
      std::exit(2);
    }
    return argv[++I];
  };

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (!std::strcmp(A, "--list"))
      List = true;
    else if (!std::strcmp(A, "--workload"))
      WorkloadName = needValue(I);
    else if (!std::strcmp(A, "--fuzz"))
      FuzzSpec = needValue(I);
    else if (!std::strcmp(A, "--mix"))
      MixSpec = needValue(I);
    else if (!std::strcmp(A, "--mix-quantum"))
      MixQuantum = std::strtoull(needValue(I), nullptr, 10);
    else if (!std::strcmp(A, "--mode"))
      Mode = needValue(I);
    else if (!std::strcmp(A, "--hwpf"))
      HwPf = needValue(I);
    else if (!std::strcmp(A, "--hwpf-feedback"))
      HwPfFeedback = std::strtoull(needValue(I), nullptr, 10);
    else if (!std::strcmp(A, "--selector"))
      Selector = needValue(I);
    else if (!std::strcmp(A, "--instr"))
      Instr = std::strtoull(needValue(I), nullptr, 10);
    else if (!std::strcmp(A, "--warmup"))
      Warmup = std::strtoull(needValue(I), nullptr, 10);
    else if (!std::strcmp(A, "--compare"))
      Compare = true;
    else if (!std::strcmp(A, "--no-link"))
      NoLink = true;
    else if (!std::strcmp(A, "--tlb"))
      EnableTlb = true;
    else if (!std::strcmp(A, "--seed-estimate"))
      SeedEstimate = true;
    else if (!std::strcmp(A, "--phase-adapt"))
      PhaseAdapt = true;
    else if (!std::strcmp(A, "--dlt-entries"))
      DltEntries = static_cast<unsigned>(std::strtoul(needValue(I), nullptr, 10));
    else if (!std::strcmp(A, "--window"))
      Window = static_cast<unsigned>(std::strtoul(needValue(I), nullptr, 10));
    else if (!std::strcmp(A, "--miss-threshold"))
      MissThreshold =
          static_cast<unsigned>(std::strtoul(needValue(I), nullptr, 10));
    else if (!std::strcmp(A, "--distance-cap"))
      DistanceCap = std::atoi(needValue(I));
    else if (!std::strcmp(A, "--trace-out"))
      TraceOut = needValue(I);
    else if (!std::strcmp(A, "--trace-capacity"))
      TraceCapacity = std::strtoull(needValue(I), nullptr, 10);
    else if (!std::strcmp(A, "--stats-out"))
      StatsOut = needValue(I);
    else if (!std::strcmp(A, "--faults"))
      FaultsPath = needValue(I);
    else if (!std::strcmp(A, "--verbose"))
      Verbose = true;
    else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", A);
      usage(argv[0]);
      return 2;
    }
  }

  if (List) {
    Table T({"workload", "behaviour"});
    for (const std::string &N : workloadNames())
      T.addRow({N, makeWorkload(N).Description});
    std::printf("%s", T.render().c_str());
    return 0;
  }
  if (HwPf == "list") {
    Table T({"prefetcher", "knobs", "description"});
    for (const std::string &N : PrefetcherRegistry::instance().names()) {
      const PrefetcherRegistry::Info *Inf =
          PrefetcherRegistry::instance().lookup(N);
      T.addRow({N, Inf->Knobs.empty() ? "-" : Inf->Knobs, Inf->Summary});
    }
    std::printf("%s", T.render().c_str());
    return 0;
  }
  // A workload reference is one of the named workloads or a fuzz spec;
  // validate every reference up front so a typo fails with a crisp
  // message instead of mid-run inside the machine wiring.
  auto validRef = [](const std::string &Ref) -> bool {
    if (isFuzzSpec(Ref)) {
      uint64_t Seed;
      FuzzKnobs Knobs;
      std::string FuzzError;
      if (!parseFuzzSpec(Ref, Seed, Knobs, &FuzzError)) {
        std::fprintf(stderr, "error: bad fuzz spec '%s': %s\n", Ref.c_str(),
                     FuzzError.c_str());
        return false;
      }
      return true;
    }
    for (const std::string &N : workloadNames())
      if (N == Ref)
        return true;
    std::fprintf(stderr, "error: unknown workload '%s' (see --list)\n",
                 Ref.c_str());
    return false;
  };

  if (!FuzzSpec.empty()) {
    if (!WorkloadName.empty()) {
      std::fprintf(stderr, "error: --fuzz and --workload are exclusive\n");
      return 2;
    }
    // Accept both the bare SEED[:knobs] form and a full fuzz@ name.
    WorkloadName = isFuzzSpec(FuzzSpec) ? FuzzSpec : "fuzz@" + FuzzSpec;
  }
  std::vector<std::string> MixCoRunners;
  if (!MixSpec.empty()) {
    if (!WorkloadName.empty()) {
      std::fprintf(stderr, "error: --mix names its own primary lane; drop "
                           "--workload/--fuzz\n");
      return 2;
    }
    std::vector<std::string> Lanes;
    size_t Pos = 0;
    while (Pos <= MixSpec.size()) {
      size_t Next = MixSpec.find('+', Pos);
      if (Next == std::string::npos)
        Next = MixSpec.size();
      Lanes.push_back(MixSpec.substr(Pos, Next - Pos));
      Pos = Next + 1;
    }
    if (Lanes.size() < 2 || Lanes.size() > 4) {
      std::fprintf(stderr,
                   "error: --mix needs 2..4 '+'-separated workloads\n");
      return 2;
    }
    for (const std::string &L : Lanes)
      if (L.empty()) {
        std::fprintf(stderr, "error: empty lane in --mix spec '%s'\n",
                     MixSpec.c_str());
        return 2;
      }
    WorkloadName = Lanes.front();
    MixCoRunners.assign(Lanes.begin() + 1, Lanes.end());
  }
  if (WorkloadName.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (!validRef(WorkloadName))
    return 2;
  for (const std::string &L : MixCoRunners)
    if (!validRef(L))
      return 2;

  SimConfig C = SimConfig::hwBaseline();
  if (Mode == "hw") {
    C.EnableTrident = false;
  } else if (Mode == "none" || Mode == "basic" || Mode == "whole-object" ||
             Mode == "self-repairing") {
    C.EnableTrident = true;
    C.Runtime.Mode = Mode == "none"           ? PrefetchMode::None
                     : Mode == "basic"        ? PrefetchMode::Basic
                     : Mode == "whole-object" ? PrefetchMode::WholeObject
                                              : PrefetchMode::SelfRepairing;
  } else {
    std::fprintf(stderr, "error: unknown mode '%s'\n", Mode.c_str());
    return 2;
  }

  {
    // Validate the spec up front so a typo fails fast with the registry's
    // own message instead of mid-run inside the machine wiring.
    std::string PfError;
    PrefetcherEnv Env;
    if (!PrefetcherRegistry::instance().create(HwPf, Env, &PfError) &&
        !PrefetcherRegistry::isNone(HwPf)) {
      std::fprintf(stderr, "error: bad --hwpf spec '%s': %s\n", HwPf.c_str(),
                   PfError.c_str());
      return 2;
    }
    C.HwPf = HwPf;
  }
  C.Core.HwPfFeedbackIntervalCommits = HwPfFeedback;
  if (!Selector.empty()) {
    std::string SelError;
    if (!SelectorConfig::parse(Selector, C.Selector, &SelError)) {
      std::fprintf(stderr, "error: bad --selector spec '%s': %s\n",
                   Selector.c_str(), SelError.c_str());
      return 2;
    }
  }

  C.SimInstructions = Instr;
  C.WarmupInstructions = Warmup;
  C.Runtime.LinkTraces = !NoLink;
  C.Mem.Tlb.Enable = EnableTlb;
  C.Runtime.SelfRepairInitialEstimate = SeedEstimate;
  C.Runtime.ClearMatureOnPhaseChange = PhaseAdapt;
  C.Runtime.Dlt.NumEntries = DltEntries;
  C.Runtime.Dlt.MonitorWindow = Window;
  C.Runtime.Dlt.MissThreshold = MissThreshold;
  C.Runtime.DistanceCap = DistanceCap;
  if (MixQuantum == 0) {
    std::fprintf(stderr, "error: --mix-quantum must be positive\n");
    return 2;
  }
  C.MixWith = MixCoRunners;
  C.MixQuantumCycles = MixQuantum;

  if (!FaultsPath.empty()) {
    std::ifstream In(FaultsPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot read fault plan '%s'\n",
                   FaultsPath.c_str());
      return 2;
    }
    std::ostringstream Text;
    Text << In.rdbuf();
    std::string Error;
    std::optional<FaultPlan> Plan = FaultPlan::parseJson(Text.str(), &Error);
    if (!Plan) {
      std::fprintf(stderr, "error: bad fault plan '%s': %s\n",
                   FaultsPath.c_str(), Error.c_str());
      return 2;
    }
    C.Faults = std::move(*Plan);
  }

  std::printf("trident_sim: %s, mode %s, hwpf %s, %llu instrs "
              "(tlb %s, link %s)\n",
              WorkloadName.c_str(), Mode.c_str(), HwPf.c_str(),
              (unsigned long long)Instr, onOff(EnableTlb), onOff(!NoLink));
  if (!MixCoRunners.empty()) {
    std::printf("mix co-runners:");
    for (const std::string &L : MixCoRunners)
      std::printf(" %s", L.c_str());
    std::printf(" (quantum %llu cycles)\n", (unsigned long long)MixQuantum);
  }
  std::printf("\n");

  Workload W = makeWorkload(WorkloadName);
  if (C.Selector.Policy == SelectorPolicy::Oracle) {
    // Two-pass oracle: replay every static arsenal unit (memoized, so the
    // batch below reuses them) and pin the best before the real run.
    ExperimentRunner Resolver;
    C = resolveSelectorOracle(Resolver, W, C);
    std::printf("selector oracle: pinned unit %s\n\n",
                C.Selector.OracleUnit.c_str());
  }
  SimResult R, RB;
  if (!TraceOut.empty()) {
    // Tracing runs outside the memoizing runner: the tracer observes one
    // concrete run, never a cached result.
    EventTracer Tracer(TraceCapacity);
    R = runSimulation(W, C, &Tracer);
    if (!Tracer.writeChromeTrace(TraceOut)) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   TraceOut.c_str());
      return 1;
    }
    std::printf("event trace: %s (%llu recorded, %llu overwritten, "
                "ring %zu)\n\n",
                TraceOut.c_str(), (unsigned long long)Tracer.recorded(),
                (unsigned long long)Tracer.overwritten(), Tracer.capacity());
    if (Compare) {
      SimConfig Base = C;
      Base.EnableTrident = false;
      RB = runSimulation(W, Base);
    }
  } else {
    // Both runs (the experiment and, with --compare, its baseline) go into
    // one batch so they execute concurrently when cores are available.
    std::vector<ExperimentJob> Jobs = {ExperimentJob{W, C}};
    if (Compare) {
      SimConfig Base = C;
      Base.EnableTrident = false;
      Jobs.push_back(ExperimentJob{W, Base});
    }
    ExperimentRunner Runner;
    auto Results = Runner.runBatch(Jobs);
    R = *Results[0];
    if (Compare)
      RB = *Results[1];
  }

  printStats(R, Verbose);

  if (!StatsOut.empty()) {
    if (!R.Registry || !R.Registry->writeJsonl(StatsOut)) {
      std::fprintf(stderr, "error: cannot write stats to '%s'\n",
                   StatsOut.c_str());
      return 1;
    }
    std::printf("\nstat registry: %s (%zu entries)\n", StatsOut.c_str(),
                R.Registry->size());
  }

  if (Compare) {
    std::printf("\n-- comparison --\n");
    std::printf("baseline IPC     %.4f (%s)\n", RB.Ipc,
                RB.ConfigName.c_str());
    std::printf("speedup          %.3fx (%+.1f%%)\n", speedup(R, RB),
                100.0 * (speedup(R, RB) - 1.0));
  }
  return 0;
}
