#!/usr/bin/env python3
"""Fixture self-test for tools/trident_analyze.py.

Each directory under tests/lint_fixtures/<rule>/<positive|negative>/ is a
miniature repo root (its own src/, optionally its own tools/layering.json)
plus an expected.txt listing the findings the engine must produce there,
one per line, as:

    <rule-id> <repo-relative-path>

(an empty or absent expected.txt means the fixture must analyze clean).
The runner executes the engine with --root <case> --no-cache and compares
the *set* of (rule, file) pairs — line numbers and message wording are
free to evolve; the rule firing (or staying silent) is the contract.

Positive fixtures prove a rule still fires; negative fixtures prove its
suppressions (annotations, sort-sinks, config-indirected bounds, allowed
layering edges) still hold. ctest runs this as analyze_fixture_test.

Exit: 0 when every case matches, 1 otherwise (with a per-case diff).
"""

import re
import subprocess
import sys
from pathlib import Path

FINDING = re.compile(r"^(?P<rel>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\] ")


def run_case(engine: Path, case: Path) -> list:
    """Returns a list of mismatch strings (empty = pass)."""
    expected = set()
    exp_file = case / "expected.txt"
    if exp_file.is_file():
        for raw in exp_file.read_text().splitlines():
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            rule, rel = raw.split()
            expected.add((rule, rel))
    proc = subprocess.run(
        [sys.executable, str(engine), "--root", str(case), "--no-cache"],
        capture_output=True, text=True)
    actual = set()
    for line in proc.stdout.splitlines():
        m = FINDING.match(line)
        if m:
            actual.add((m.group("rule"), m.group("rel")))
    errors = []
    for miss in sorted(expected - actual):
        errors.append(f"expected finding did not fire: [{miss[0]}] {miss[1]}")
    for extra in sorted(actual - expected):
        errors.append(f"unexpected finding: [{extra[0]}] {extra[1]}")
    want_rc = 1 if expected else 0
    if not errors and proc.returncode != want_rc:
        errors.append(f"exit code {proc.returncode}, expected {want_rc}")
    if proc.returncode not in (0, 1):
        errors.append(f"engine crashed (rc={proc.returncode}): "
                      f"{proc.stderr.strip()[:400]}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    engine = root / "tools" / "trident_analyze.py"
    corpus = root / "tests" / "lint_fixtures"
    cases = sorted(p for p in corpus.glob("*/*") if p.is_dir())
    if not cases:
        print(f"no fixture cases under {corpus}", file=sys.stderr)
        return 1
    failed = 0
    for case in cases:
        errors = run_case(engine, case)
        tag = case.relative_to(corpus)
        if errors:
            failed += 1
            print(f"FAIL {tag}")
            for e in errors:
                print(f"     {e}")
        else:
            print(f"ok   {tag}")
    # Every rule the engine ships must have at least one positive and one
    # negative fixture — a new rule without coverage fails the suite.
    list_rules = subprocess.run(
        [sys.executable, str(engine), "--list-rules"],
        capture_output=True, text=True)
    for line in list_rules.stdout.splitlines():
        rid = line.split()[0]
        for kind in ("positive", "negative"):
            if not (corpus / rid / kind).is_dir():
                failed += 1
                print(f"FAIL {rid}: missing {kind} fixture directory")
    if failed:
        print(f"{failed} fixture case(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(cases)} fixture cases passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
