#!/usr/bin/env bash
# Static-analysis driver for the Trident-SRP repo. Runs, in order:
#
#   1. trident-analyze     (tools/trident_analyze.py: full semantic rule
#                           set — determinism, layering, lock discipline,
#                           stats registration, plus the legacy lint
#                           rules — with SARIF written to
#                           build-analysis/trident_analyze.sarif)
#   2. warning gate        (full build with -Werror under the escalated
#                           -Wshadow -Wconversion -Wextra-semi set)
#   3. gcc -fanalyzer      (interprocedural path analysis over every TU;
#                           a curated suppression set keeps the known
#                           libstdc++ false-positive families out, so any
#                           remaining warning FAILs the gate)
#   4. clang-format check  (changed files only — no mass reformat; skipped
#                           with a notice when clang-format is absent)
#   5. clang-tidy          (the `tidy` preset; skipped with a notice when
#                           clang-tidy is absent — the container image
#                           ships only gcc, hence the -fanalyzer gate)
#
# Exits nonzero if any *available* gate fails; unavailable tools are
# reported as SKIPPED, never silently dropped.
#
# Usage: tools/run_static_analysis.sh [--quick] [--base REF]
#   --quick      analyzer + format check only (no compilation)
#   --base REF   diff base for the changed-file format check
#                (default: merge-base with main, else HEAD~1, else HEAD)
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

QUICK=0
BASE_REF=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --base) BASE_REF="$2"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=0
report() { # status name detail
  printf '%-8s %-16s %s\n' "$1" "$2" "$3"
  [[ "$1" == FAIL ]] && FAILURES=$((FAILURES + 1)) || true
}

echo "== trident static analysis =="

# ---- 1. trident-analyze ---------------------------------------------------
mkdir -p build-analysis
if python3 tools/trident_analyze.py \
     --sarif build-analysis/trident_analyze.sarif; then
  report OK trident-analyze "semantic rules clean (SARIF in build-analysis/)"
else
  report FAIL trident-analyze "see findings above"
fi

# ---- 2. warning gate ------------------------------------------------------
if [[ $QUICK -eq 0 ]]; then
  WARN_BUILD="$REPO_ROOT/build-warngate"
  if cmake -B "$WARN_BUILD" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTRIDENT_WERROR=ON > /dev/null \
     && cmake --build "$WARN_BUILD" -j "$(nproc)" > /dev/null; then
    report OK warnings "-Wall -Wextra -Wshadow -Wconversion -Wextra-semi -Werror"
  else
    report FAIL warnings "build with -Werror failed"
  fi
else
  report SKIP warnings "--quick"
fi

# ---- 3. gcc -fanalyzer ----------------------------------------------------
# Per-TU compile to /dev/null (no link) so the whole tree analyzes in
# well under a minute with xargs fan-out; -fsyntax-only would be faster
# still, but the analyzer is a middle-end pass and silently does nothing
# without codegen running. The suppressed checkers are
# the families gcc 12's analyzer is documented to false-positive on for
# C++ (libstdc++ iterator internals, operator-new NULL paths, std::string
# "leaks"); everything else — use-after-free, double-free, fd leaks,
# infinite recursion — stays live and any hit fails the gate.
if [[ $QUICK -eq 0 ]]; then
  FANALYZER_LOG="$(mktemp)"
  if find src tools bench -name '*.cpp' -print0 \
       | xargs -0 -P "$(nproc)" -I{} \
           g++ -std=c++20 -Isrc -O1 -fanalyzer \
               -Wno-analyzer-use-of-uninitialized-value \
               -Wno-analyzer-null-dereference \
               -Wno-analyzer-possible-null-dereference \
               -Wno-analyzer-malloc-leak \
               -c {} -o /dev/null 2>> "$FANALYZER_LOG" \
     && ! grep -q "warning:" "$FANALYZER_LOG"; then
    report OK gcc-fanalyzer "all TUs clean"
  else
    cat "$FANALYZER_LOG"
    report FAIL gcc-fanalyzer "analyzer warnings above"
  fi
  rm -f "$FANALYZER_LOG"
else
  report SKIP gcc-fanalyzer "--quick"
fi

# ---- 4. clang-format (changed files only) ---------------------------------
if command -v clang-format > /dev/null; then
  if [[ -z "$BASE_REF" ]]; then
    BASE_REF="$(git merge-base HEAD main 2> /dev/null \
                || git rev-parse --verify -q HEAD~1 \
                || git rev-parse HEAD)"
  fi
  mapfile -t CHANGED < <(
    { git diff --name-only "$BASE_REF" -- '*.cpp' '*.h'
      git diff --name-only --cached -- '*.cpp' '*.h'
      git ls-files --others --exclude-standard -- '*.cpp' '*.h'
    } | sort -u)
  if [[ ${#CHANGED[@]} -eq 0 ]]; then
    report OK clang-format "no changed C++ files vs $BASE_REF"
  else
    BAD=0
    for F in "${CHANGED[@]}"; do
      [[ -f "$F" ]] || continue
      if ! clang-format --dry-run -Werror "$F" > /dev/null 2>&1; then
        echo "needs formatting: $F"
        BAD=1
      fi
    done
    if [[ $BAD -eq 0 ]]; then
      report OK clang-format "${#CHANGED[@]} changed file(s) clean"
    else
      report FAIL clang-format "run clang-format -i on the files above"
    fi
  fi
else
  report SKIP clang-format "clang-format not on PATH"
fi

# ---- 5. clang-tidy --------------------------------------------------------
if [[ $QUICK -eq 0 ]] && command -v clang-tidy > /dev/null; then
  if cmake --preset tidy > /dev/null \
     && cmake --build --preset tidy -j "$(nproc)" > /dev/null; then
    report OK clang-tidy ".clang-tidy policy clean"
  else
    report FAIL clang-tidy "see diagnostics above"
  fi
elif [[ $QUICK -eq 1 ]]; then
  report SKIP clang-tidy "--quick"
else
  report SKIP clang-tidy "clang-tidy not on PATH"
fi

echo
if [[ $FAILURES -gt 0 ]]; then
  echo "static analysis: $FAILURES gate(s) FAILED"
  exit 1
fi
echo "static analysis: all available gates passed"
