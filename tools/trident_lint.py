#!/usr/bin/env python3
"""trident-lint: repo-specific static analysis for the Trident-SRP simulator.

Enforces invariants that generic tools (clang-tidy, compiler warnings)
cannot express because they are properties of *this* codebase's contract:

  R1 wall-clock     No wall-clock time sources in simulator code
                    (<chrono>, time(), clock(), gettimeofday, ...).
                    Simulated time is the only clock; host time anywhere in
                    the simulation path makes runs non-reproducible and
                    breaks the ExperimentRunner memo cache's assumption
                    that (workload, config) determines the result.
                    Exempt: bench/host_throughput.cpp (its entire purpose
                    is measuring host wall-clock throughput).

  R2 randomness     No unseeded/global randomness (std::random_device,
                    rand(), srand(), std::mt19937, drand48...). The one
                    sanctioned RNG is support/Random.h's SplitMix64,
                    explicitly seeded per generator, so every experiment
                    is bit-reproducible across machines and runs.

  R3 hot-path       Files annotated `trident-lint: hot-path` must not
                    use O(n) erase/scan idioms (std::erase_if, the
                    remove-erase idiom, std::remove_if). PR 1 rewrote the
                    MSHR bookkeeping from exactly such a scan into a
                    bounded min-heap; this rule keeps the regression out.

  R4 table-bounds   Every hardware-table-like class (name ending in
                    Table/Cache/Buffer/Tlb/Predictor/Profiler) must
                    declare a capacity bound (NumEntries / SizeBytes /
                    capacity()). The paper's structures are all fixed-size
                    SRAM tables (Table 2); an unbounded std::map posing as
                    hardware state is a modeling bug. Non-hardware
                    containers opt out with an explicit
                    `trident-lint: not-a-hw-table(<reason>)` annotation.

  R5 no-assert      No bare assert() outside support/Check.h (and no
                    <cassert>/<assert.h> includes). Invariants go through
                    TRIDENT_CHECK/TRIDENT_DCHECK, which carry formatted
                    context and honor the build-flavor matrix.
                    static_assert is fine.

  R6 event-names    Every enumerator of `enum class EventKind` must have a
                    matching `case EventKind::X:` in the file that defines
                    the enum — the eventKindName() string table is what the
                    trace exporter and the events.published.* stat names
                    are built from, so an unnamed kind silently exports as
                    "<bad>". Complements -Wswitch: the compiler catches a
                    missing case only until someone adds a default.

  R7 hot-path-alloc Files on the zero-alloc hot path (the per-cycle loop:
                    SmtCore.cpp, MemorySystem.cpp, Cache.cpp, EventBus.h)
                    must not heap-allocate: no `new`, no make_unique /
                    make_shared, no std::function (its capture storage
                    allocates — use StubCallback or a raw function
                    pointer), and no push_back/emplace_back on a container
                    the file never reserve()s/resize()s (growth allocates
                    mid-cycle). The alloc_count_test asserts the dynamic
                    property; this rule catches the regression at review
                    time. Setup-time allocations opt out per line with
                    `trident-lint: alloc-ok(<reason>)`.

Usage:
  tools/trident_lint.py [--root DIR] [paths...]

With no paths, lints the default scope: src/ (all rules), plus bench/,
tools/, examples/ (R1/R2 only — harness code may not add nondeterminism
either, but is not hardware modeling). Exits nonzero on any finding.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# R1 — wall-clock sources. Matched against comment/string-stripped text.
WALLCLOCK_PATTERNS = [
    (re.compile(r"#\s*include\s*<(chrono|ctime|sys/time\.h|time\.h)>"),
     "includes a wall-clock header"),
    (re.compile(r"\bstd::chrono\b"), "uses std::chrono"),
    (re.compile(r"\b(steady_clock|system_clock|high_resolution_clock)\b"),
     "uses a host clock type"),
    (re.compile(r"(?<![\w:.])(time|clock|gettimeofday|clock_gettime)\s*\("),
     "calls a wall-clock function"),
]
WALLCLOCK_EXEMPT = {"bench/host_throughput.cpp"}

# R2 — nondeterministic randomness sources.
RANDOMNESS_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "uses std::random_device"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "calls rand()/srand()"),
    (re.compile(r"\bmt19937(_64)?\b"), "uses std::mt19937 (use SplitMix64)"),
    (re.compile(r"\b(drand48|lrand48|random)\s*\(\s*\)"),
     "calls a libc RNG"),
]

# R3 — O(n) erase/scan idioms forbidden in hot-path files.
HOTPATH_MARKER = re.compile(r"trident-lint:\s*hot-path")
HOTPATH_PATTERNS = [
    (re.compile(r"\bstd::erase_if\b"), "std::erase_if is an O(n) scan"),
    (re.compile(r"\.erase\s*\(\s*std::remove"),
     "remove-erase idiom is an O(n) scan"),
    (re.compile(r"\bstd::remove_if\b"), "std::remove_if is an O(n) scan"),
    (re.compile(r"\bstd::find_if\s*\(\s*\w+\.begin\(\)"),
     "linear std::find_if scan over a container"),
]

# R4 — hardware-table-like classes must declare a capacity bound.
TABLE_CLASS = re.compile(
    r"^\s*(?:class|struct)\s+(\w*(?:Table|Cache|Buffer|Tlb|Predictor|"
    r"Profiler))\b[^;]*$")
BOUND_TOKENS = re.compile(
    r"(NumEntries|SizeBytes|MaxEntries|MaxLength|[Cc]apacity|NumStreams|"
    r"[Dd]epth\b)")
NOT_HW_TABLE = re.compile(r"trident-lint:\s*not-a-hw-table\(")

# R5 — bare assert().
ASSERT_CALL = re.compile(r"(?<![\w.])assert\s*\(")
ASSERT_INCLUDE = re.compile(r"#\s*include\s*<(cassert|assert\.h)>")
ASSERT_ALLOWED = {"src/support/Check.h"}

# R6 — EventKind enumerators need eventKindName() cases.
EVENT_ENUM = re.compile(r"\benum\s+class\s+EventKind\b[^{]*\{")
EVENT_ENUMERATOR = re.compile(r"^\s*(\w+)\s*(?:=[^,}]*)?\s*(?:,|$)")

# R7 — heap allocation on the per-cycle hot path. Scope is an explicit
# file list: these are the files the zero-alloc contract (alloc_count_test)
# covers, and widening the list is a deliberate act.
HOT_ALLOC_FILES = {
    "src/cpu/SmtCore.cpp",
    "src/mem/MemorySystem.cpp",
    "src/mem/Cache.cpp",
    "src/events/EventBus.h",
}
ALLOC_OK = re.compile(r"trident-lint:\s*alloc-ok\(")
ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b"), "operator new on the hot path"),
    (re.compile(r"\bmake_(unique|shared)\b"),
     "make_unique/make_shared on the hot path"),
    (re.compile(r"\bstd::function\b"),
     "std::function allocates capture storage; use a function pointer "
     "or StubCallback"),
]
PUSH_CALL = re.compile(r"([A-Za-z_]\w*(?:\[[^\]]*\])?(?:(?:\.|->)\w+"
                       r"(?:\[[^\]]*\])?)*)\s*\.\s*"
                       r"(push_back|emplace_back)\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Replaces comments and string/char literals with spaces, preserving
    line structure so finding line numbers still works."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def match_lines(stripped: str, patterns, rule: str, rel: str, findings):
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for pat, msg in patterns:
            if pat.search(line):
                findings.append(Finding(rel, lineno, rule, msg))


def lint_file(path: Path, rel: str, hardware_rules: bool) -> list[Finding]:
    findings: list[Finding] = []
    text = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(text)

    # R1: wall-clock (raw text for the include, stripped for the rest).
    if rel not in WALLCLOCK_EXEMPT:
        match_lines(stripped, WALLCLOCK_PATTERNS, "wall-clock", rel, findings)

    # R2: randomness.
    match_lines(stripped, RANDOMNESS_PATTERNS, "randomness", rel, findings)

    if not hardware_rules:
        return findings

    # R3: hot-path erase scans (marker searched in the raw text — it lives
    # in a comment by design).
    if HOTPATH_MARKER.search(text):
        match_lines(stripped, HOTPATH_PATTERNS, "hot-path", rel, findings)

    # R4: capacity bounds for table-like classes (headers only: that is
    # where hardware structures are declared).
    if path.suffix in {".h", ".hpp"}:
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            m = TABLE_CLASS.match(line)
            if not m:
                continue
            # Forward declarations and base-class mentions are not
            # definitions; require an opening brace on this line or the
            # next non-empty one.
            rest = stripped.splitlines()[lineno - 1:lineno + 1]
            if not any("{" in r for r in rest):
                continue
            if NOT_HW_TABLE.search(text):
                continue
            if not BOUND_TOKENS.search(stripped):
                findings.append(Finding(
                    rel, lineno, "table-bounds",
                    f"hardware table class '{m.group(1)}' declares no "
                    "capacity bound (NumEntries/SizeBytes/capacity); "
                    "annotate 'trident-lint: not-a-hw-table(<reason>)' "
                    "if it is not modeling a hardware structure"))

    # R5: bare assert().
    if rel not in ASSERT_ALLOWED:
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            if ASSERT_CALL.search(line) and "static_assert" not in line:
                findings.append(Finding(
                    rel, lineno, "no-assert",
                    "bare assert(); use TRIDENT_CHECK/TRIDENT_DCHECK "
                    "from support/Check.h"))
            if ASSERT_INCLUDE.search(line):
                findings.append(Finding(
                    rel, lineno, "no-assert",
                    "<cassert> include; use support/Check.h"))

    # R6: every EventKind enumerator has a name-table case in the defining
    # file. Works on the stripped text so commented-out enumerators don't
    # count, and line numbers point at the enum definition.
    m = EVENT_ENUM.search(stripped)
    if m:
        body_start = stripped.index("{", m.start()) + 1
        body_end = stripped.find("}", body_start)
        body = stripped[body_start:body_end if body_end >= 0 else None]
        enum_line = stripped.count("\n", 0, m.start()) + 1
        for raw in body.split(","):
            name = raw.strip()
            if "=" in name:
                name = name.split("=")[0].strip()
            if not name or not name.isidentifier():
                continue
            if not re.search(r"\bcase\s+EventKind\s*::\s*" + name + r"\s*:",
                             stripped):
                findings.append(Finding(
                    rel, enum_line, "event-names",
                    f"EventKind::{name} has no 'case EventKind::{name}:' "
                    "in eventKindName()'s switch; every event kind needs "
                    "a string-table entry"))

    # R7: heap allocation in hot-path files. The alloc-ok annotation lives
    # in a trailing comment, so the per-line exemption consults the raw
    # text; the patterns run on the stripped text as usual.
    if rel in HOT_ALLOC_FILES:
        raw_lines = text.splitlines()
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            if ALLOC_OK.search(raw):
                continue
            for pat, msg in ALLOC_PATTERNS:
                if pat.search(line):
                    findings.append(
                        Finding(rel, lineno, "hot-path-alloc", msg))
            for m in PUSH_CALL.finditer(line):
                base = re.escape(re.sub(r"\[[^\]]*\]", "", m.group(1)))
                if re.search(base + r"\s*\.\s*(reserve|resize)\s*\(",
                             stripped):
                    continue
                findings.append(Finding(
                    rel, lineno, "hot-path-alloc",
                    f"{m.group(2)} on '{m.group(1)}' which this file "
                    "never reserve()s/resize()s — growth allocates "
                    "mid-cycle; pre-size it or annotate the line "
                    "'trident-lint: alloc-ok(<reason>)'"))

    return findings


def default_scope(root: Path) -> list[tuple[Path, bool]]:
    """Returns (path, hardware_rules) pairs for the default lint scope."""
    files: list[tuple[Path, bool]] = []
    for sub, hw in (("src", True), ("bench", False), ("tools", False),
                    ("examples", False)):
        d = root / sub
        if not d.is_dir():
            continue
        for p in sorted(d.rglob("*")):
            if p.suffix in CPP_SUFFIXES and p.is_file():
                files.append((p, hw))
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("paths", nargs="*",
                    help="specific files to lint (default: full scope)")
    args = ap.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    if args.paths:
        targets = []
        for raw in args.paths:
            p = Path(raw).resolve()
            rel = p.relative_to(root).as_posix() if p.is_relative_to(root) else raw
            targets.append((p, rel.startswith("src/")))
    else:
        targets = default_scope(root)

    findings: list[Finding] = []
    checked = 0
    for path, hw in targets:
        if path.suffix not in CPP_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(path, rel, hw))
        checked += 1

    for f in findings:
        print(f)
    print(f"trident-lint: {checked} files checked, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
