#!/usr/bin/env python3
"""trident-lint: compatibility shim over tools/trident_analyze.py.

The regex linter from PR 2 was absorbed into the semantic analyzer
(PR 7); this entry point survives so existing muscle memory, docs, and
CI invocations keep working. It runs the engine with the legacy rule set
(wall-clock, randomness, hot-path, table-bounds, no-assert, event-names,
hot-path-alloc) and the same CLI surface:

  tools/trident_lint.py [--root DIR] [paths...]

Anything beyond that — the determinism/layering/lock rules, SARIF
output, --diff gating, the suppression baseline — lives on the engine:

  tools/trident_analyze.py --help
"""

import subprocess
import sys
from pathlib import Path


def main() -> int:
    engine = Path(__file__).resolve().parent / "trident_analyze.py"
    argv = [sys.executable, str(engine), "--rules", "legacy", "--no-cache"]
    argv += sys.argv[1:]
    return subprocess.run(argv).returncode


if __name__ == "__main__":
    sys.exit(main())
