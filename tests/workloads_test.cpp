//===- workloads_test.cpp - The 14 benchmark programs ----------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace trident;

TEST(Workloads, RegistryHasFourteenPaperBenchmarks) {
  const std::vector<std::string> &Names = workloadNames();
  EXPECT_EQ(Names.size(), 14u);
  std::set<std::string> S(Names.begin(), Names.end());
  for (const char *N : {"applu", "art", "dot", "equake", "facerec", "fma3d",
                        "galgel", "gap", "mcf", "mgrid", "parser", "swim",
                        "vis", "wupwise"})
    EXPECT_TRUE(S.count(N)) << N;
}

TEST(Workloads, ProgramsAvoidScratchRegisters) {
  for (const Workload &W : makeAllWorkloads()) {
    for (Addr PC = W.Prog.basePC(); PC < W.Prog.endPC(); ++PC) {
      const Instruction &I = W.Prog.at(PC);
      if (I.writesRd()) {
        EXPECT_LT(I.Rd, reg::FirstScratch)
            << W.Name << " writes a reserved scratch register at 0x"
            << std::hex << PC;
      }
    }
  }
}

TEST(Workloads, LinkedListGenerators) {
  DataMemory M;
  Addr Head = buildLinkedList(M, 0x1000, 64, 64, 0, /*Shuffled=*/false);
  EXPECT_EQ(Head, 0x1000u);
  // Sequential: every link advances by the node size; the last wraps.
  for (unsigned I = 0; I + 1 < 64; ++I)
    EXPECT_EQ(M.read64(0x1000 + I * 64), 0x1000u + (I + 1) * 64);
  EXPECT_EQ(M.read64(0x1000 + 63 * 64), 0x1000u);
}

TEST(Workloads, ShuffledListIsCircularPermutation) {
  DataMemory M;
  Addr Head = buildLinkedList(M, 0x1000, 128, 64, 0, /*Shuffled=*/true, 5);
  EXPECT_EQ(Head, 0x1000u); // rotated so Base leads
  std::set<Addr> Seen;
  Addr P = Head;
  for (unsigned I = 0; I < 128; ++I) {
    EXPECT_TRUE(Seen.insert(P).second) << "node revisited early";
    P = M.read64(P);
  }
  EXPECT_EQ(P, Head); // circular
}

TEST(Workloads, RunShuffledListHasSequentialRuns) {
  DataMemory M;
  Addr Head =
      buildRunShuffledList(M, 0x1000, 256, 64, 0, /*RunLength=*/16, 5);
  // Walk the list: at least 14 of every 16 links must be +NodeSize.
  Addr P = Head;
  unsigned Sequential = 0;
  for (unsigned I = 0; I < 256; ++I) {
    Addr N = M.read64(P);
    Sequential += (N == P + 64);
    P = N;
  }
  EXPECT_EQ(P, Head);
  EXPECT_GE(Sequential, 256u - 16u); // one jump per run
}

TEST(Workloads, PointerArrayTargets) {
  DataMemory M;
  buildPointerArray(M, 0x1000, 16, 0x8000, 64);
  for (unsigned I = 0; I < 16; ++I)
    EXPECT_EQ(M.read64(0x1000 + I * 8), 0x8000u + I * 64);
}

// Every workload must run on the raw machine without tripping asserts and
// make steady progress (parameterized over the whole suite).
class WorkloadSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSmoke, RunsOnBaseline) {
  Workload W = makeWorkload(GetParam());
  SimConfig C = SimConfig::hwBaseline();
  C.WarmupInstructions = 20'000;
  C.SimInstructions = 80'000;
  SimResult R = runSimulation(W, C);
  EXPECT_EQ(R.Instructions, 80'000u) << "program halted early";
  EXPECT_GT(R.Ipc, 0.001);
  EXPECT_LT(R.Ipc, 4.0);
}

TEST_P(WorkloadSmoke, RunsUnderSelfRepairingTrident) {
  Workload W = makeWorkload(GetParam());
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.WarmupInstructions = 20'000;
  C.SimInstructions = 150'000;
  SimResult R = runSimulation(W, C);
  EXPECT_EQ(R.Instructions, 150'000u);
  EXPECT_GT(R.Ipc, 0.001);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSmoke,
                         ::testing::ValuesIn(workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

//===----------------------------------------------------------------------===//
// Parameterized generators
//===----------------------------------------------------------------------===//

TEST(Generators, StrideLoopRunsAndMisses) {
  StrideLoopSpec S;
  S.NumStreams = 3;
  S.Stride = 128;
  Workload W = makeStrideLoopWorkload(S);
  SimConfig C = SimConfig::hwBaseline();
  C.HwPf = "none";
  C.WarmupInstructions = 5'000;
  C.SimInstructions = 60'000;
  SimResult R = runSimulation(W, C);
  EXPECT_EQ(R.Instructions, 60'000u);
  EXPECT_GT(R.Mem.demandL1Misses(), 1000u); // streams really miss
}

TEST(Generators, PointerChaseLayoutsDiffer) {
  auto run = [](PointerChaseSpec::Layout L) {
    PointerChaseSpec S;
    S.NodeLayout = L;
    S.NumNodes = 1 << 14;
    Workload W = makePointerChaseWorkload(S);
    SimConfig C = SimConfig::hwBaseline();
    C.WarmupInstructions = 20'000;
    C.SimInstructions = 150'000;
    return runSimulation(W, C);
  };
  SimResult Seq = run(PointerChaseSpec::Layout::Sequential);
  SimResult Shuf = run(PointerChaseSpec::Layout::Shuffled);
  // Sequential layout lets the stream buffers cover the chase; shuffled
  // defeats them.
  EXPECT_GT(Seq.Ipc, Shuf.Ipc * 1.5);
}

TEST(Generators, GatherBenefitsFromSelfRepair) {
  GatherSpec S;
  Workload W = makeGatherWorkload(S);
  SimConfig Base = SimConfig::hwBaseline();
  Base.WarmupInstructions = 50'000;
  Base.SimInstructions = 500'000;
  SimConfig Srp = SimConfig::withMode(PrefetchMode::SelfRepairing);
  Srp.WarmupInstructions = 50'000;
  Srp.SimInstructions = 500'000;
  SimResult RB = runSimulation(W, Base);
  SimResult RS = runSimulation(W, Srp);
  EXPECT_GT(speedup(RS, RB), 1.2);
}

TEST(Generators, SpecsAreHonoured) {
  PointerChaseSpec S;
  S.FieldOffsets = {16, 200};
  S.NodeSize = 256;
  Workload W = makePointerChaseWorkload(S, "custom");
  EXPECT_EQ(W.Name, "custom");
  // The program contains loads at the requested offsets.
  bool Saw16 = false, Saw200 = false;
  for (Addr PC = W.Prog.basePC(); PC < W.Prog.endPC(); ++PC) {
    const Instruction &I = W.Prog.at(PC);
    if (I.Op == Opcode::Load && I.Rs1 == 1) {
      Saw16 |= I.Imm == 16;
      Saw200 |= I.Imm == 200;
    }
  }
  EXPECT_TRUE(Saw16);
  EXPECT_TRUE(Saw200);
}
