#ifndef FIX_BASE_H
#define FIX_BASE_H
namespace trident {
struct Base {};
} // namespace trident
#endif
