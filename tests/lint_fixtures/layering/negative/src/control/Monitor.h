#ifndef FIX_MONITOR_H
#define FIX_MONITOR_H
#include "events/Record.h"
#include "mem/Line.h"
namespace trident {
struct Monitor {
  Record R;
  Line L;
};
} // namespace trident
#endif
