#ifndef FIX_RECORD_H
#define FIX_RECORD_H
#include "mem/Line.h"
namespace trident {
struct Record {
  Line L;
};
} // namespace trident
#endif
