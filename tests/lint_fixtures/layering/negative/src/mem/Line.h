#ifndef FIX_LINE_H
#define FIX_LINE_H
#include "support/Base.h"
namespace trident {
struct Line : Base {};
} // namespace trident
#endif
