#ifndef FIX_LINE_H
#define FIX_LINE_H
#include "control/Sel.h"
namespace trident {
struct Line {
  Sel S;
};
} // namespace trident
#endif
