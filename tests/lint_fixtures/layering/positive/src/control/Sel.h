#ifndef FIX_SEL_H
#define FIX_SEL_H
namespace trident {
struct Sel {};
} // namespace trident
#endif
