#ifndef FIX_TOP_H
#define FIX_TOP_H
namespace trident {
struct Top {};
} // namespace trident
#endif
