#ifndef FIX_HELPER_H
#define FIX_HELPER_H
#include "sim/Top.h"
namespace trident {
struct Helper {
  Top T;
};
} // namespace trident
#endif
