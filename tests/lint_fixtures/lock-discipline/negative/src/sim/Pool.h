#ifndef FIX_POOL_NEG_H
#define FIX_POOL_NEG_H
#include <mutex>
#include <vector>
namespace trident {
class Pool {
public:
  void add(int T) {
    std::lock_guard<std::mutex> L(Mu);
    Pending.push_back(T);
  }
  std::size_t size() {
    Mu.lock();
    std::size_t N = Pending.size();
    Mu.unlock();
    return N;
  }
private:
  std::mutex Mu;
  // trident-analyze: guarded-by(Mu)
  std::vector<int> Pending;
};
} // namespace trident
#endif
