#ifndef FIX_POOL_H
#define FIX_POOL_H
#include <mutex>
#include <vector>
namespace trident {
class Pool {
public:
  void add(int T) { Pending.push_back(T); }
private:
  std::mutex Mu;
  // trident-analyze: guarded-by(Mu)
  std::vector<int> Pending;
};
} // namespace trident
#endif
