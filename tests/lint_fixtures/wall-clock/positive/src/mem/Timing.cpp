#include <chrono>
namespace trident {
unsigned long hostNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
} // namespace trident
