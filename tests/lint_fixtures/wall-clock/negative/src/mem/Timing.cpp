namespace trident {
// Simulated time only: cycles advance with the core model, never the host.
unsigned long simNow(unsigned long Cycle) { return Cycle; }
} // namespace trident
