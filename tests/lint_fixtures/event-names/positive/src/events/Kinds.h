#ifndef FIX_KINDS_H
#define FIX_KINDS_H
namespace trident {
enum class EventKind {
  Commit = 0x1'000, // it's the common kind, fired per commit
  LoadOutcome,      // covers what's seen at execute
  DanglingKind,
};
inline const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Commit:
    return "commit";
  case EventKind::LoadOutcome:
    return "load_outcome";
  }
  return "?";
}
} // namespace trident
#endif
