#ifndef FIX_KINDS_NEG_H
#define FIX_KINDS_NEG_H
namespace trident {
enum class EventKind {
  Commit = 0x1'000, // it's the common kind, fired per commit
  LoadOutcome,      // covers what's seen at execute
  NumKinds,
};
inline const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Commit:
    return "commit";
  case EventKind::LoadOutcome:
    return "load_outcome";
  case EventKind::NumKinds:
    return "num_kinds";
  }
  return "?";
}
} // namespace trident
#endif
