#ifndef FIX_AVG_NEG_H
#define FIX_AVG_NEG_H
#include <algorithm>
#include <unordered_map>
#include <vector>
namespace trident {
inline double mean(const std::unordered_map<long, double> &Lat) {
  std::vector<double> Vals;
  for (const auto &KV : Lat)
    Vals.push_back(KV.second);
  std::sort(Vals.begin(), Vals.end());
  double Sum = 0.0;
  for (double V : Vals)
    Sum += V;
  return Vals.empty() ? 0.0 : Sum / static_cast<double>(Vals.size());
}
} // namespace trident
#endif
