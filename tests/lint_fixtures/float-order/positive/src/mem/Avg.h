#ifndef FIX_AVG_H
#define FIX_AVG_H
#include <unordered_map>
namespace trident {
inline double mean(const std::unordered_map<long, double> &Lat) {
  double Sum = 0.0;
  // trident-analyze: ordered-ok(claimed commutative, but FP is not)
  for (const auto &KV : Lat)
    Sum += KV.second;
  return Lat.empty() ? 0.0 : Sum / static_cast<double>(Lat.size());
}
} // namespace trident
#endif
