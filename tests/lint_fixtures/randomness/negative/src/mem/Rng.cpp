namespace trident {
// SplitMix64, the one sanctioned generator: explicitly seeded, stateless.
unsigned long splitmix(unsigned long &State) {
  unsigned long Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return Z ^ (Z >> 27);
}
} // namespace trident
