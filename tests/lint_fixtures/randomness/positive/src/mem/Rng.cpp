#include <random>
namespace trident {
int roll() {
  std::mt19937 Gen(42);
  return static_cast<int>(Gen());
}
} // namespace trident
