#include "mem/WalkStats.h"
namespace trident {
class StatRegistry {
public:
  void setCounter(const char *, uint64_t);
};
void WalkStats::registerInto(StatRegistry &R) const {
  R.setCounter("mem.walks", Walks);
  R.setCounter("mem.faults", Faults);
}
} // namespace trident
