#ifndef FIX_WALKSTATS_NEG_H
#define FIX_WALKSTATS_NEG_H
#include <cstdint>
namespace trident {
class StatRegistry;
struct WalkStats {
  uint64_t Walks = 0;
  uint64_t Faults = 0;
  // trident-analyze: unregistered-ok(debug-only scratch gauge)
  uint64_t LastWalkCycles = 0;
  void registerInto(StatRegistry &R) const;
};
} // namespace trident
#endif
