#ifndef FIX_WALKSTATS_H
#define FIX_WALKSTATS_H
#include <cstdint>
namespace trident {
class StatRegistry;
struct WalkStats {
  uint64_t Walks = 0;
  uint64_t Faults = 0;
  void registerInto(StatRegistry &R) const;
};
} // namespace trident
#endif
