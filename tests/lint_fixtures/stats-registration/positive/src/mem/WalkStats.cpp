#include "mem/WalkStats.h"
namespace trident {
class StatRegistry {
public:
  void setCounter(const char *, uint64_t);
};
void WalkStats::registerInto(StatRegistry &R) const {
  R.setCounter("mem.walks", Walks);
  // Faults is forgotten: the counter silently drops out of the JSONL.
}
} // namespace trident
