#ifndef FIX_TABLES_NEG_H
#define FIX_TABLES_NEG_H
#include <vector>
namespace trident {
struct VictimConfig {
  unsigned NumEntries = 16;
};
// Bounded one indirection away, through its config struct.
class VictimCache {
public:
  explicit VictimCache(const VictimConfig &Config);
private:
  std::vector<int> Lines;
};
// Bounded directly.
class HistoryBuffer {
  unsigned MaxLength = 64;
  std::vector<int> Ring;
};
} // namespace trident
#endif
