#ifndef FIX_BOUNDED_PF_H
#define FIX_BOUNDED_PF_H
#include <vector>
namespace trident {
struct DeltaPrefetcherConfig {
  unsigned NumEntries = 128;
};
// Bounded one indirection away, through its config struct — the arsenal
// pattern (DcptConfig -> DcptPrefetcher).
class DeltaPrefetcher {
public:
  explicit DeltaPrefetcher(const DeltaPrefetcherConfig &Config);
private:
  std::vector<int> Table;
};
// trident-analyze: not-a-hw-table(abstract interface; concrete units
// declare their own bounded tables)
class AbstractPrefetcher {
public:
  virtual ~AbstractPrefetcher();
};
} // namespace trident
#endif
