#ifndef FIX_LEAKY_PF_H
#define FIX_LEAKY_PF_H
#include <vector>
namespace trident {
// A *Prefetcher class is a hardware unit: its tables must declare a
// capacity bound. This one grows without limit and must be flagged.
class LeakyPrefetcher {
  std::vector<int> History;
};
} // namespace trident
#endif
