#ifndef FIX_TABLES_H
#define FIX_TABLES_H
#include <vector>
namespace trident {
// trident-analyze: not-a-hw-table(host-side bookkeeping, grows with input)
class AnnotatedTable {
  std::vector<int> Rows;
};
// Unbounded and unannotated: must be flagged even though the class above
// carries an annotation (the PR-2 linter matched annotations file-wide).
class LeakyTable {
  std::vector<int> Rows;
};
} // namespace trident
#endif
