#ifndef FIX_SUM_H
#define FIX_SUM_H
#include <unordered_map>
namespace trident {
inline long total(const std::unordered_map<long, long> &Counts) {
  long Total = 0;
  for (const auto &KV : Counts)
    Total += KV.second;
  return Total;
}
} // namespace trident
#endif
