#ifndef FIX_SUM_NEG_H
#define FIX_SUM_NEG_H
#include <algorithm>
#include <unordered_map>
#include <vector>
namespace trident {
// Sanctioned shape 1: the loop only feeds a vector that is then sorted.
inline std::vector<long> keys(const std::unordered_map<long, long> &Counts) {
  std::vector<long> Out;
  for (const auto &KV : Counts)
    Out.push_back(KV.first);
  std::sort(Out.begin(), Out.end());
  return Out;
}
// Sanctioned shape 2: an order-insensitive fold, annotated as such.
inline long total(const std::unordered_map<long, long> &Counts) {
  long Total = 0;
  // trident-analyze: ordered-ok(commutative integer sum)
  for (const auto &KV : Counts)
    Total += KV.second;
  return Total;
}
} // namespace trident
#endif
