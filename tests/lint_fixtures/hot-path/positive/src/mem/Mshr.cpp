// trident-lint: hot-path
#include <algorithm>
#include <vector>
namespace trident {
void retire(std::vector<int> &Pending, int Id) {
  std::erase_if(Pending, [Id](int P) { return P == Id; });
}
} // namespace trident
