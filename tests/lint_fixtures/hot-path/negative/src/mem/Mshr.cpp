// trident-lint: hot-path
#include <vector>
namespace trident {
void retire(std::vector<int> &Heap) {
  // Bounded min-heap pop: O(log n), no container scan.
  if (!Heap.empty())
    Heap.pop_back();
}
} // namespace trident
