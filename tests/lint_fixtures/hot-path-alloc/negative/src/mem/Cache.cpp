#include <vector>
namespace trident {
void fill(std::vector<int> &Out) {
  Out.reserve(8);
  for (int I = 0; I < 8; ++I)
    Out.push_back(I);
}
} // namespace trident
