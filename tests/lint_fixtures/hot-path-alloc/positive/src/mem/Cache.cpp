namespace trident {
int *leak() { return new int(7); }
} // namespace trident
