namespace trident {
static_assert(sizeof(int) == 4, "ILP32/LP64 only");
void f(int X) { (void)X; }
} // namespace trident
