#include <cassert>
namespace trident {
void f(int X) { assert(X > 0); }
} // namespace trident
