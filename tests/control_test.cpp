//===- control_test.cpp - Unit tests for src/control -----------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The control plane's contracts, in rough order of importance:
//
//  * selector off (the default) builds nothing: results carry no selector
//    state at all, so every pre-control-plane golden stays byte-identical;
//  * identical seeds reproduce identical decision traces under serial and
//    parallel runners (determinism is the framework's spine);
//  * the bandit actually adapts — nonzero swaps under a regime-shift
//    fault plan — and the oracle resolves to a real arsenal unit and then
//    never swaps;
//  * the `--selector` spec parser accepts each policy's knobs and rejects
//    everything else.
//
//===----------------------------------------------------------------------===//

#include "control/PhaseMonitor.h"
#include "control/PrefetcherSelector.h"
#include "hwpf/PrefetcherRegistry.h"
#include "sim/ExperimentRunner.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace trident;

namespace {

SimConfig budget(SimConfig C, uint64_t N = 300'000) {
  C.SimInstructions = N;
  C.WarmupInstructions = 30'000;
  return C;
}

/// A fault plan that keeps changing the memory regime, early enough that
/// a 300k-instruction run sees several shifts.
FaultPlan shiftyPlan() {
  FaultPlan P;
  Cycle At = 100'000;
  for (int I = 0; I < 8; ++I) {
    FaultAction A;
    A.Trigger = FaultTrigger::AtCycle;
    A.At = At;
    if (I % 2 == 0) {
      A.Kind = FaultKind::LatencySpike;
      A.ExtraMemLatency = 250;
      A.DurationCycles = 150'000;
    } else {
      A.Kind = FaultKind::EvictCaches;
    }
    P.Actions.push_back(A);
    At += 250'000;
  }
  return P;
}

SimConfig banditConfig(uint64_t Seed) {
  SimConfig C = budget(SimConfig::hwBaseline());
  C.Faults = shiftyPlan();
  std::string Err;
  bool Ok = SelectorConfig::parse(
      "bandit:seed=" + std::to_string(Seed) + ",epoch=4,interval=1000",
      C.Selector, &Err);
  EXPECT_TRUE(Ok) << Err;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// SelectorConfig::parse
//===----------------------------------------------------------------------===//

TEST(SelectorConfig, ParsesEveryPolicy) {
  SelectorConfig C;
  std::string Err;
  ASSERT_TRUE(SelectorConfig::parse("static", C, &Err)) << Err;
  EXPECT_FALSE(C.enabled());
  EXPECT_EQ(C.shortName(), "static");

  ASSERT_TRUE(SelectorConfig::parse(
      "bandit:seed=9,eps=250,ema=500,epoch=16,interval=500", C, &Err))
      << Err;
  EXPECT_TRUE(C.enabled());
  EXPECT_EQ(C.Policy, SelectorPolicy::Bandit);
  EXPECT_EQ(C.Seed, 9u);
  EXPECT_EQ(C.EpsilonPermille, 250u);
  EXPECT_EQ(C.EmaPermille, 500u);
  EXPECT_EQ(C.SamplesPerEpoch, 16u);
  EXPECT_EQ(C.IntervalCommits, 500u);
  EXPECT_FALSE(C.Ucb);
  EXPECT_EQ(C.shortName(), "bandit");

  ASSERT_TRUE(SelectorConfig::parse("bandit:ucb=1", C, &Err)) << Err;
  EXPECT_TRUE(C.Ucb);
  EXPECT_EQ(C.shortName(), "bandit-ucb");

  ASSERT_TRUE(SelectorConfig::parse("oracle", C, &Err)) << Err;
  EXPECT_EQ(C.Policy, SelectorPolicy::Oracle);
  EXPECT_TRUE(C.OracleUnit.empty()); // unresolved until the first pass
  EXPECT_EQ(C.shortName(), "oracle");

  // An empty spec is the CLI's "flag not given": it resets to the static
  // default rather than erroring.
  ASSERT_TRUE(SelectorConfig::parse("", C, &Err)) << Err;
  EXPECT_FALSE(C.enabled());
}

TEST(SelectorConfig, RejectsBadSpecs) {
  SelectorConfig C;
  std::string Err;
  EXPECT_FALSE(SelectorConfig::parse("greedy", C, &Err));
  EXPECT_NE(Err.find("unknown selector policy"), std::string::npos) << Err;

  // Per-policy knob allow-lists: the static policy takes none, the oracle
  // takes no bandit knobs.
  EXPECT_FALSE(SelectorConfig::parse("static:seed=3", C, &Err));
  EXPECT_FALSE(SelectorConfig::parse("oracle:seed=3", C, &Err));
  EXPECT_FALSE(SelectorConfig::parse("bandit:bogus=1", C, &Err));

  // Value validation.
  EXPECT_FALSE(SelectorConfig::parse("bandit:epoch=0", C, &Err));
  EXPECT_FALSE(SelectorConfig::parse("bandit:interval=0", C, &Err));
  EXPECT_FALSE(SelectorConfig::parse("bandit:eps=1001", C, &Err));
  EXPECT_FALSE(SelectorConfig::parse("bandit:ema=0", C, &Err));

  // The arsenal's spec hardening applies here too.
  EXPECT_FALSE(SelectorConfig::parse("bandit:seed=-1", C, &Err));
  EXPECT_FALSE(SelectorConfig::parse("bandit:seed=1,seed=2", C, &Err));
}

//===----------------------------------------------------------------------===//
// Selector off: the control plane is never built
//===----------------------------------------------------------------------===//

TEST(Selector, OffByDefaultLeavesNoTrace) {
  SimConfig C = budget(SimConfig::hwBaseline(), 100'000);
  ASSERT_FALSE(C.Selector.enabled());
  SimResult R = runSimulation(makeWorkload("mcf"), C);
  EXPECT_EQ(R.Selector.Epochs, 0u);
  EXPECT_EQ(R.Selector.Swaps, 0u);
  EXPECT_EQ(R.Selector.Samples, 0u);
  EXPECT_TRUE(R.SelectorTrace.empty());
  EXPECT_TRUE(R.SelectorFinalUnit.empty());
  EXPECT_EQ(R.ConfigName.find("bandit"), std::string::npos);
  // Exporting the run's stats produces no selector.* lines either.
  ASSERT_TRUE(R.Registry);
  EXPECT_EQ(R.Registry->toJsonl().find("selector."), std::string::npos);
}

TEST(Selector, ConfigFingerprintSeparatesPolicies) {
  SimConfig A = budget(SimConfig::hwBaseline());
  SimConfig B = A;
  std::string Err;
  ASSERT_TRUE(SelectorConfig::parse("bandit", B.Selector, &Err)) << Err;
  EXPECT_NE(configFingerprint(A), configFingerprint(B));
  SimConfig C2 = A;
  ASSERT_TRUE(SelectorConfig::parse("bandit:seed=2", C2.Selector, &Err));
  EXPECT_NE(configFingerprint(B), configFingerprint(C2));
}

//===----------------------------------------------------------------------===//
// Bandit: adapts under regime shifts, deterministically
//===----------------------------------------------------------------------===//

TEST(Selector, BanditSwapsUnderRegimeShifts) {
  SimResult R = runSimulation(makeWorkload("mcf"), banditConfig(3));
  EXPECT_GT(R.Selector.Epochs, 0u);
  EXPECT_GT(R.Selector.Swaps, 0u);
  EXPECT_GT(R.Selector.Samples, R.Selector.Epochs);
  // The trace records every epoch decision (holds included); swaps are
  // exactly the decisions that changed arms.
  EXPECT_EQ(R.Selector.Epochs, R.SelectorTrace.size());
  uint64_t Changed = 0;
  const auto Arms = PrefetcherRegistry::instance().arsenalNames();
  for (const SelectorDecisionRecord &D : R.SelectorTrace) {
    EXPECT_LT(D.ChosenArm, Arms.size());
    Changed += D.ChosenArm != D.PrevArm;
  }
  EXPECT_EQ(Changed, R.Selector.Swaps);
  EXPECT_FALSE(R.SelectorFinalUnit.empty());
  EXPECT_NE(R.ConfigName.find("+bandit"), std::string::npos) << R.ConfigName;
  // The stats export carries the control-plane counters.
  ASSERT_TRUE(R.Registry);
  EXPECT_TRUE(R.Registry->has("selector.swaps"));
  EXPECT_EQ(R.Registry->counter("selector.swaps"), R.Selector.Swaps);
}

TEST(Selector, DecisionTraceIsDeterministicSerialVsParallel) {
  // Same seed, same machine: the decision trace must be byte-identical
  // whether the batch runs on one worker or four, with the memo cache off
  // so all four copies genuinely simulate.
  const Workload W = makeWorkload("mcf");
  const SimConfig C = banditConfig(7);

  ExperimentRunnerOptions SerialOpts;
  SerialOpts.Threads = 1;
  SerialOpts.UseCache = false;
  ExperimentRunner Serial(SerialOpts);
  auto Base = Serial.run(W, C);
  ASSERT_TRUE(Base);
  ASSERT_FALSE(Base->SelectorTrace.empty());

  ExperimentRunnerOptions ParOpts;
  ParOpts.Threads = 4;
  ParOpts.UseCache = false;
  ExperimentRunner Parallel(ParOpts);
  std::vector<ExperimentJob> Jobs(4, ExperimentJob{W, C});
  auto Results = Parallel.runBatch(Jobs);
  ASSERT_EQ(Results.size(), 4u);
  for (const auto &R : Results) {
    ASSERT_TRUE(R);
    ASSERT_EQ(R->SelectorTrace.size(), Base->SelectorTrace.size());
    for (size_t I = 0; I < Base->SelectorTrace.size(); ++I)
      EXPECT_TRUE(R->SelectorTrace[I] == Base->SelectorTrace[I]) << "at " << I;
    EXPECT_EQ(R->Selector.Swaps, Base->Selector.Swaps);
    EXPECT_EQ(R->Selector.Explorations, Base->Selector.Explorations);
    EXPECT_EQ(R->SelectorFinalUnit, Base->SelectorFinalUnit);
    EXPECT_EQ(R->Ipc, Base->Ipc);
  }
}

TEST(Selector, DifferentSeedsMayDisagreeButBothReplay) {
  // Not a randomness test — a replay test: each seed's trace is stable
  // across repeated runs even when the seeds disagree with each other.
  const Workload W = makeWorkload("art");
  for (uint64_t Seed : {11ull, 12ull}) {
    SimResult A = runSimulation(W, banditConfig(Seed));
    SimResult B = runSimulation(W, banditConfig(Seed));
    ASSERT_EQ(A.SelectorTrace.size(), B.SelectorTrace.size());
    for (size_t I = 0; I < A.SelectorTrace.size(); ++I)
      EXPECT_TRUE(A.SelectorTrace[I] == B.SelectorTrace[I]);
  }
}

//===----------------------------------------------------------------------===//
// Oracle: two-pass resolution
//===----------------------------------------------------------------------===//

TEST(Selector, OracleResolvesToBestStaticAndNeverSwaps) {
  SimConfig C = budget(SimConfig::hwBaseline(), 150'000);
  C.Faults = shiftyPlan();
  std::string Err;
  ASSERT_TRUE(SelectorConfig::parse("oracle", C.Selector, &Err)) << Err;

  ExperimentRunnerOptions Opts;
  Opts.Threads = 2;
  ExperimentRunner R(Opts);
  const Workload W = makeWorkload("mcf");
  SimConfig Resolved = resolveSelectorOracle(R, W, C);
  const auto Arms = PrefetcherRegistry::instance().arsenalNames();
  ASSERT_NE(std::find(Arms.begin(), Arms.end(), Resolved.Selector.OracleUnit),
            Arms.end())
      << "'" << Resolved.Selector.OracleUnit << "' is not an arsenal unit";

  // The pinned unit is the exposed-latency argmin of the first pass.
  uint64_t Best = ~0ull;
  std::string BestName;
  for (const std::string &Arm : Arms) {
    SimConfig S = C;
    S.Selector = SelectorConfig();
    S.HwPf = Arm;
    auto Res = R.run(W, S);
    ASSERT_TRUE(Res);
    if (Res->Mem.TotalExposedLatency < Best) {
      Best = Res->Mem.TotalExposedLatency;
      BestName = Arm;
    }
  }
  EXPECT_EQ(Resolved.Selector.OracleUnit, BestName);

  // The oracle run itself holds its arm for the whole window: the trace
  // has one hold decision per epoch and no swap ever happens in the
  // measurement window (the swap to the pinned arm, if any, lands during
  // warmup).
  SimResult Run = runSimulation(W, Resolved);
  EXPECT_GT(Run.Selector.Epochs, 0u);
  EXPECT_EQ(Run.Selector.Swaps, 0u);
  EXPECT_EQ(Run.SelectorTrace.size(), Run.Selector.Epochs);
  for (const SelectorDecisionRecord &D : Run.SelectorTrace)
    EXPECT_EQ(D.ChosenArm, D.PrevArm);
  EXPECT_EQ(Run.SelectorFinalUnit, BestName);

  // Non-oracle configs pass through resolution untouched.
  SimConfig Bandit = banditConfig(1);
  EXPECT_EQ(configFingerprint(resolveSelectorOracle(R, W, Bandit)),
            configFingerprint(Bandit));
}
