//===- fault_injection_test.cpp - FaultPlan / FaultInjector tests ----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Covers the fault-injection subsystem from unit level (plan JSON schema,
// seeded generation, each fault kind's mutation hook) through the injector's
// trigger/revert machinery up to the whole-machine contracts: a plan that
// never fires leaves every simulation bit-identical across all 14 workloads,
// faults change only what they claim to change, and the ExperimentRunner
// keys its memo cache on the plan.
//
//===----------------------------------------------------------------------===//

#include "dlt/DelinquentLoadTable.h"
#include "events/EventBus.h"
#include "events/EventQueue.h"
#include "faults/FaultInjector.h"
#include "faults/FaultPlan.h"
#include "isa/ProgramBuilder.h"
#include "mem/MemorySystem.h"
#include "sim/ExperimentRunner.h"
#include "sim/Simulation.h"
#include "trident/WatchTable.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace trident;

namespace {

FaultAction spikeAt(Cycle At, unsigned ExtraMem = 300, Cycle Duration = 0) {
  FaultAction A;
  A.Trigger = FaultTrigger::AtCycle;
  A.At = At;
  A.Kind = FaultKind::LatencySpike;
  A.ExtraMemLatency = ExtraMem;
  A.DurationCycles = Duration;
  return A;
}

FaultAction kindAt(FaultKind K, Cycle At) {
  FaultAction A;
  A.Trigger = FaultTrigger::AtCycle;
  A.At = At;
  A.Kind = K;
  return A;
}

SimConfig tinyTrident() {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;
  return C;
}

//===----------------------------------------------------------------------===//
// FaultPlan: names, JSON round-trip, parser rejection, seeded generation
//===----------------------------------------------------------------------===//

TEST(FaultPlan, EveryKindHasUniqueRoundTrippableName) {
  for (unsigned I = 0; I < kNumFaultKinds; ++I) {
    FaultKind K = static_cast<FaultKind>(I);
    std::string Name = faultKindName(K);
    EXPECT_NE(Name, "<bad>") << "kind " << I;
    FaultKind Back;
    ASSERT_TRUE(faultKindFromName(Name, Back)) << Name;
    EXPECT_EQ(Back, K);
  }
  EXPECT_STREQ(faultKindName(FaultKind::NumKinds), "<bad>");
  FaultKind K;
  EXPECT_FALSE(faultKindFromName("bit-rot", K));
}

TEST(FaultPlan, JsonRoundTripIsExact) {
  FaultPlan P;
  P.Seed = 42;
  P.Actions.push_back(spikeAt(1000, 250, 500));
  FaultAction Counted;
  Counted.Trigger = FaultTrigger::AtEventCount;
  Counted.Counted = EventKind::DelinquentLoad;
  Counted.At = 3;
  Counted.Kind = FaultKind::EvictDlt;
  P.Actions.push_back(Counted);
  FaultAction Ranged = kindAt(FaultKind::EvictCaches, 77);
  Ranged.RangeLo = 0x1000'0000;
  Ranged.RangeHi = 0x1fff'ffff;
  P.Actions.push_back(Ranged);
  FaultAction Drops = kindAt(FaultKind::DropEvents, 5);
  Drops.Count = 9;
  P.Actions.push_back(Drops);

  std::string Error;
  std::optional<FaultPlan> Back = FaultPlan::parseJson(P.toJson(), &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_TRUE(Error.empty());
  EXPECT_EQ(*Back, P);
  // And a second serialization is byte-identical (canonical form).
  EXPECT_EQ(Back->toJson(), P.toJson());
}

TEST(FaultPlan, ParserRejectsMalformedInput) {
  const char *Bad[] = {
      "",                                             // no object
      "[]",                                           // wrong root
      "{\"seed\":1}x",                                // trailing garbage
      "{\"sed\":1}",                                  // unknown key
      "{\"actions\":[{\"at_cycle\":5}]}",             // action missing kind
      "{\"actions\":[{\"kind\":\"bit-rot\",\"at_cycle\":1}]}",
      "{\"actions\":[{\"kind\":\"evict-dlt\"}]}",     // no trigger
      "{\"actions\":[{\"kind\":\"evict-dlt\",\"at_cycle\":1,"
      "\"at_event\":\"commit\",\"at_count\":2}]}",    // both triggers
      "{\"actions\":[{\"kind\":\"evict-dlt\","
      "\"at_event\":\"no-such-event\",\"at_count\":1}]}",
      "{\"seed\":99999999999999999999}",              // 64-bit overflow
      "{\"seed\":-1}",                                // signed numbers
      "{\"seed\":1,\"actions\":[",                    // truncated
  };
  for (const char *Text : Bad) {
    std::string Error;
    EXPECT_FALSE(FaultPlan::parseJson(Text, &Error).has_value()) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(FaultPlan, ScatteredIsSeedDeterministic) {
  FaultPlan A = FaultPlan::scattered(7, 12, 1'000'000);
  FaultPlan B = FaultPlan::scattered(7, 12, 1'000'000);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.toJson(), B.toJson());
  EXPECT_EQ(A.Seed, 7u);
  ASSERT_EQ(A.Actions.size(), 12u);
  for (const FaultAction &Act : A.Actions) {
    EXPECT_GE(Act.At, 1u);
    EXPECT_LE(Act.At, 1'000'000u);
    EXPECT_LT(static_cast<unsigned>(Act.Kind), kNumFaultKinds);
  }
  FaultPlan C = FaultPlan::scattered(8, 12, 1'000'000);
  EXPECT_NE(A, C);
}

//===----------------------------------------------------------------------===//
// Per-fault-kind mutation hooks
//===----------------------------------------------------------------------===//

TEST(MemoryFaults, LatencySpikeIsRangedAndClearable) {
  constexpr Addr InRange = 0x1000'0000, OutOfRange = 0x7000'0000;

  // Reference cold-miss latency on a pristine machine.
  MemorySystem Ref(MemSystemConfig::baseline());
  Cycle RefLat = Ref.access(1, InRange, AccessKind::DemandLoad, 0).ReadyCycle;

  // Accesses are spaced far apart so bandwidth/MSHR contention from one
  // probe never bleeds into the next; each cold miss then costs exactly
  // the reference latency plus any injected extra.
  MemorySystem M(MemSystemConfig::baseline());
  M.injectLatencyFault(InRange, InRange + 0xFFFF, /*ExtraMem=*/123,
                       /*ExtraL2=*/0);
  EXPECT_TRUE(M.latencyFaultActive());
  // Faulted range: the cold miss pays the extra memory latency.
  EXPECT_EQ(M.access(1, InRange, AccessKind::DemandLoad, 0).ReadyCycle,
            RefLat + 123);
  // Outside the range: untouched.
  EXPECT_EQ(
      M.access(1, OutOfRange, AccessKind::DemandLoad, 10'000).ReadyCycle,
      10'000 + RefLat);
  // Cleared: back to the healthy regime (fresh line, cold miss again).
  M.clearLatencyFault();
  EXPECT_FALSE(M.latencyFaultActive());
  EXPECT_EQ(
      M.access(1, InRange + 0x4000, AccessKind::DemandLoad, 20'000)
          .ReadyCycle,
      20'000 + RefLat);
}

TEST(MemoryFaults, EvictRangeForcesRemisses) {
  constexpr Addr A = 0x2000'0000;
  MemorySystem M(MemSystemConfig::baseline());
  Cycle ColdLat = M.access(1, A, AccessKind::DemandLoad, 0).ReadyCycle;
  // Warm: a later re-access is an L1 hit.
  Cycle HitLat = M.access(1, A, AccessKind::DemandLoad, 10'000).ReadyCycle -
                 10'000;
  ASSERT_LT(HitLat, ColdLat);
  // Eviction invalidates the line in every level...
  EXPECT_GE(M.evictRange(A, A), 1u);
  // ...so the next access is a full cold miss again.
  EXPECT_EQ(M.access(1, A, AccessKind::DemandLoad, 20'000).ReadyCycle,
            20'000 + ColdLat);
  // An untouched range evicts nothing.
  EXPECT_EQ(M.evictRange(0x6000'0000, 0x6000'0040), 0u);
}

TEST(DltFaults, InvalidateAllForcesReflagging) {
  DltConfig C;
  C.NumEntries = 64;
  DelinquentLoadTable T(C);
  for (unsigned I = 0; I < 5; ++I)
    T.update(0x100 + I, 0x1000, /*Miss=*/true, 300);
  T.forceMature(0x100); // a settled load: never raises events again
  ASSERT_TRUE(T.lookup(0x100).has_value());
  ASSERT_TRUE(T.lookup(0x100)->Mature);

  uint64_t Cleared = T.invalidateAll();
  EXPECT_GE(Cleared, 5u);
  EXPECT_FALSE(T.lookup(0x100).has_value());
  EXPECT_EQ(T.invalidateAll(), 0u); // already empty

  // The re-allocated entry starts fresh: the mature flag is gone, so the
  // load can be re-flagged — the self-repair re-detection mechanism.
  T.update(0x100, 0x1000, true, 300);
  ASSERT_TRUE(T.lookup(0x100).has_value());
  EXPECT_FALSE(T.lookup(0x100)->Mature);
}

TEST(WatchFaults, InvalidateAllClearsEveryEntry) {
  WatchTable W(8);
  for (uint32_t Id = 1; Id <= 3; ++Id)
    ASSERT_TRUE(W.insert(Id, 0x100 * Id, 0x4000'0000 + 0x100 * Id, 16));
  EXPECT_EQ(W.size(), 3u);
  EXPECT_EQ(W.invalidateAll(), 3u);
  EXPECT_EQ(W.size(), 0u);
  EXPECT_EQ(W.find(1), nullptr);
  EXPECT_EQ(W.invalidateAll(), 0u);
  // The table is reusable after the upset.
  EXPECT_TRUE(W.insert(9, 0x900, 0x4000'0900, 8));
  EXPECT_EQ(W.size(), 1u);
}

TEST(QueueFaults, ForcedDropsCountSeparatelyAndSurviveClearStats) {
  EventQueue Q(4);
  Q.scheduleForcedDrops(1);
  Q.scheduleForcedDrops(1); // accumulates
  EXPECT_EQ(Q.pendingForcedDrops(), 2u);
  HardwareEvent E = HardwareEvent::delinquentLoad(0x10, 1, 5);
  EXPECT_FALSE(Q.tryPush(E));
  EXPECT_FALSE(Q.tryPush(E));
  EXPECT_TRUE(Q.tryPush(E)); // forced drops exhausted
  EXPECT_EQ(Q.pendingForcedDrops(), 0u);
  EXPECT_EQ(Q.injectedDrops(), 2u);
  EXPECT_EQ(Q.dropped(), 2u); // forced drops count as drops too
  EXPECT_EQ(Q.size(), 1u);

  // clearStats resets measurement accounting but not the fault state:
  // injected faults span measurement boundaries.
  Q.scheduleForcedDrops(1);
  Q.setStalled(true);
  Q.clearStats();
  EXPECT_EQ(Q.dropped(), 0u);
  EXPECT_EQ(Q.pendingForcedDrops(), 1u);
  EXPECT_EQ(Q.injectedDrops(), 2u);
  EXPECT_TRUE(Q.stalled());
  Q.setStalled(false);
  EXPECT_FALSE(Q.stalled());
}

//===----------------------------------------------------------------------===//
// FaultInjector trigger/revert machinery (no core: a hand-fed event bus)
//===----------------------------------------------------------------------===//

TEST(FaultInjector, AtCycleFiresOnceAndRevertsAfterDuration) {
  MemorySystem Mem(MemSystemConfig::baseline());
  FaultPlan P;
  P.Actions.push_back(spikeAt(100, 300, /*Duration=*/50));
  FaultTargets T;
  T.Mem = &Mem;
  FaultInjector Inj(P, T);
  EventBus Bus;
  Inj.attach(Bus);
  ASSERT_EQ(Inj.pendingActions(), 1u);

  Instruction Nop = makeNop();
  auto commitAt = [&](Cycle C) {
    Bus.publish(HardwareEvent::commit(0, 0x10, Nop, C));
  };

  commitAt(99); // before the trigger cycle: nothing happens
  EXPECT_FALSE(Mem.latencyFaultActive());
  EXPECT_EQ(Inj.stats().Injected, 0u);

  commitAt(103); // first event at/after the trigger cycle fires it
  EXPECT_TRUE(Mem.latencyFaultActive());
  EXPECT_EQ(Inj.stats().Injected, 1u);
  EXPECT_EQ(Inj.stats().LatencySpikes, 1u);
  EXPECT_EQ(Inj.pendingActions(), 0u);
  ASSERT_EQ(Inj.schedule().size(), 1u);
  EXPECT_EQ(Inj.schedule()[0], (std::pair<size_t, Cycle>{0, 103}));

  commitAt(120); // inside the fault window: still active, fires only once
  EXPECT_TRUE(Mem.latencyFaultActive());
  EXPECT_EQ(Inj.stats().Injected, 1u);

  commitAt(160); // 103 + 50 elapsed: reverted
  EXPECT_FALSE(Mem.latencyFaultActive());
  EXPECT_EQ(Inj.stats().Reverts, 1u);
}

TEST(FaultInjector, AtEventCountTriggersOnNthDeliveredEvent) {
  MemorySystem Mem(MemSystemConfig::baseline());
  FaultPlan P;
  FaultAction A;
  A.Trigger = FaultTrigger::AtEventCount;
  A.Counted = EventKind::DelinquentLoad;
  A.At = 3;
  A.Kind = FaultKind::LatencySpike;
  A.ExtraMemLatency = 100;
  P.Actions.push_back(A);
  FaultTargets T;
  T.Mem = &Mem;
  FaultInjector Inj(P, T);
  EventBus Bus;
  Inj.attach(Bus);

  for (Cycle C = 1; C <= 2; ++C) {
    Bus.publish(HardwareEvent::delinquentLoad(0x10, 1, C * 10));
    EXPECT_FALSE(Mem.latencyFaultActive()) << C;
  }
  Bus.publish(HardwareEvent::delinquentLoad(0x10, 1, 30)); // the 3rd
  EXPECT_TRUE(Mem.latencyFaultActive());
  ASSERT_EQ(Inj.schedule().size(), 1u);
  EXPECT_EQ(Inj.schedule()[0].second, 30u);
}

TEST(FaultInjector, RuntimeFaultsSkipWithoutRuntime) {
  // On a hardware-baseline machine (no Trident runtime) the runtime-
  // targeted kinds fire into nothing: counted skipped, never injected.
  MemorySystem Mem(MemSystemConfig::baseline());
  FaultPlan P;
  P.Actions.push_back(kindAt(FaultKind::EvictDlt, 1));
  P.Actions.push_back(kindAt(FaultKind::EvictWatchTable, 1));
  P.Actions.push_back(kindAt(FaultKind::DropEvents, 1));
  P.Actions.push_back(kindAt(FaultKind::StallQueue, 1));
  P.Actions.push_back(kindAt(FaultKind::InvalidateTraces, 1));
  FaultTargets T;
  T.Mem = &Mem;
  FaultInjector Inj(P, T);
  EventBus Bus;
  Inj.attach(Bus);

  Instruction Nop = makeNop();
  Bus.publish(HardwareEvent::commit(0, 0x10, Nop, 5));
  EXPECT_EQ(Inj.stats().Skipped, 5u);
  EXPECT_EQ(Inj.stats().Injected, 0u);
  EXPECT_TRUE(Inj.schedule().empty());
  EXPECT_EQ(Inj.pendingActions(), 0u); // skipped actions do not re-arm
}

TEST(FaultInjector, DetectionAndReconvergenceAccounting) {
  // A real (idle) runtime arms the re-convergence tracking that only
  // runtime-bearing machines get; events are hand-fed on a private bus.
  ProgramBuilder PB;
  PB.halt();
  Program Prog = PB.finish();
  DataMemory Data;
  MemorySystem Mem(MemSystemConfig::baseline());
  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreConfig::baseline(), Image, Data, Mem);
  TridentRuntime Runtime(RuntimeConfig::baseline(), Prog, Core, CC);

  FaultPlan P;
  P.Actions.push_back(spikeAt(10));
  FaultTargets T;
  T.Mem = &Mem;
  T.Runtime = &Runtime;
  FaultInjector Inj(P, T);
  EventBus Bus;
  Inj.attach(Bus);

  Instruction Nop = makeNop();
  Bus.publish(HardwareEvent::commit(0, 0x10, Nop, 10)); // fires at 10
  ASSERT_EQ(Inj.stats().Injected, 1u);

  Bus.publish(HardwareEvent::delinquentLoad(0x20, 1, 150));
  EXPECT_EQ(Inj.stats().DetectionEvents, 1u);
  EXPECT_EQ(Inj.stats().DetectionCyclesTotal, 140u);

  Bus.publish(HardwareEvent::helperDone(1, 400));
  EXPECT_EQ(Inj.stats().ReconvergenceEvents, 1u);
  EXPECT_EQ(Inj.stats().ReconvergenceCyclesTotal, 390u);

  // Only the first of each is the fault's answer; later ones are business
  // as usual.
  Bus.publish(HardwareEvent::delinquentLoad(0x20, 1, 500));
  Bus.publish(HardwareEvent::helperDone(1, 600));
  EXPECT_EQ(Inj.stats().DetectionEvents, 1u);
  EXPECT_EQ(Inj.stats().ReconvergenceEvents, 1u);
}

//===----------------------------------------------------------------------===//
// Whole-machine identity: a disabled/never-firing injector changes nothing
//===----------------------------------------------------------------------===//

TEST(FaultEndToEnd, NeverFiringPlanBitIdenticalAcrossAllWorkloads) {
  // The tentpole contract, asserted the same way the tracer's passivity
  // is: every counter in the machine flattens into the stat registry, so
  // byte-comparing the canonical JSONL compares the whole SimResult.
  FaultPlan Never;
  Never.Actions.push_back(spikeAt(~static_cast<Cycle>(0)));
  for (const std::string &Name : workloadNames()) {
    Workload W = makeWorkload(Name);
    SimConfig C = tinyTrident();
    SimResult Plain = runSimulation(W, C);
    SimConfig CF = tinyTrident();
    CF.Faults = Never;
    SimResult Faulted = runSimulation(W, CF);

    EXPECT_EQ(Plain.RegChecksum, Faulted.RegChecksum) << Name;
    EXPECT_EQ(Plain.Instructions, Faulted.Instructions) << Name;
    EXPECT_EQ(Plain.Cycles, Faulted.Cycles) << Name;
    EXPECT_EQ(Plain.Halted, Faulted.Halted) << Name;
    EXPECT_EQ(Plain.HelperBusyCycles, Faulted.HelperBusyCycles) << Name;
    EXPECT_EQ(Plain.BranchMispredicts, Faulted.BranchMispredicts) << Name;
    EXPECT_EQ(Plain.EventsPublished, Faulted.EventsPublished) << Name;
    EXPECT_EQ(Faulted.Faults.Injected, 0u) << Name;
    ASSERT_TRUE(Plain.Registry && Faulted.Registry) << Name;
    EXPECT_EQ(Plain.Registry->toJsonl(), Faulted.Registry->toJsonl()) << Name;
  }
}

TEST(FaultEndToEnd, NeverFiringPlanPassiveOnHardwareBaseline) {
  // Without Trident the injector is the machine's only Commit subscriber,
  // so (like the tracer) publish counters may differ — but timing and
  // architectural state must not.
  FaultPlan Never;
  Never.Actions.push_back(spikeAt(~static_cast<Cycle>(0)));
  SimConfig C = SimConfig::hwBaseline();
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;
  Workload W = makeWorkload("mcf");
  SimResult Plain = runSimulation(W, C);
  SimConfig CF = C;
  CF.Faults = Never;
  SimResult Faulted = runSimulation(W, CF);
  EXPECT_EQ(Plain.RegChecksum, Faulted.RegChecksum);
  EXPECT_EQ(Plain.Cycles, Faulted.Cycles);
  EXPECT_EQ(Plain.Instructions, Faulted.Instructions);
  EXPECT_EQ(Plain.BranchMispredicts, Faulted.BranchMispredicts);
}

//===----------------------------------------------------------------------===//
// Faults that do fire: observable, accounted, bounded
//===----------------------------------------------------------------------===//

TEST(FaultEndToEnd, PermanentSpikeSlowsRunAndExportsStats) {
  Workload W = makeWorkload("mcf");
  SimConfig C = tinyTrident();
  SimResult Plain = runSimulation(W, C);

  SimConfig CF = tinyTrident();
  CF.Faults.Actions.push_back(spikeAt(1, /*ExtraMem=*/400));
  SimResult Faulted = runSimulation(W, CF);

  EXPECT_EQ(Faulted.Faults.Injected, 1u);
  EXPECT_EQ(Faulted.Faults.LatencySpikes, 1u);
  EXPECT_GT(Faulted.Cycles, Plain.Cycles); // every memory fetch pays
  // The "faults." namespace appears exactly because something fired.
  ASSERT_TRUE(Faulted.Registry);
  EXPECT_TRUE(Faulted.Registry->has("faults.injected"));
  EXPECT_EQ(Faulted.Registry->counter("faults.injected"), 1u);
  ASSERT_TRUE(Plain.Registry);
  EXPECT_FALSE(Plain.Registry->has("faults.injected"));
}

TEST(FaultEndToEnd, FiringPlanIsRunToRunDeterministic) {
  Workload W = makeWorkload("equake");
  SimConfig C = tinyTrident();
  C.Faults = FaultPlan::scattered(21, 6, 200'000);
  SimResult A = runSimulation(W, C);
  SimResult B = runSimulation(W, C);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Faults.Injected, B.Faults.Injected);
  ASSERT_TRUE(A.Registry && B.Registry);
  EXPECT_EQ(A.Registry->toJsonl(), B.Registry->toJsonl());
}

namespace {

/// Finite pointer chase (the integration-test quickstart loop, bounded):
/// runs to Halt so semantics can be compared exactly.
Workload finiteChase(uint64_t Iters) {
  constexpr Addr ListBase = 0x1000'0000;
  ProgramBuilder B;
  B.loadImm(1, ListBase);
  B.loadImm(4, 0).loadImm(5, static_cast<int64_t>(Iters));
  B.label("loop");
  B.load(1, 1, 0);
  B.load(6, 1, 8).load(7, 1, 72);
  B.fadd(8, 6, 7);
  B.fadd(9, 9, 8);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  Workload W;
  W.Name = "fault-chase";
  W.Prog = B.finish();
  W.Init = [](DataMemory &M) {
    buildLinkedList(M, ListBase, 1 << 16, 128, 0, /*Shuffled=*/false);
  };
  return W;
}

SimConfig runToHalt() {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.WarmupInstructions = 0;
  C.SimInstructions = 100'000'000;
  return C;
}

} // namespace

TEST(FaultEndToEnd, TraceInvalidationPreservesSemantics) {
  // Yanking every linked trace out from under the running program must
  // never change what it computes — threads fall back to original code
  // and traces re-form.
  Workload W = finiteChase(30'000);
  SimConfig Plain = runToHalt();
  SimResult R0 = runSimulation(W, Plain);
  ASSERT_TRUE(R0.Halted);

  SimConfig CF = runToHalt();
  CF.Faults.Actions.push_back(
      kindAt(FaultKind::InvalidateTraces, R0.Cycles / 2));
  SimResult R1 = runSimulation(W, CF);
  ASSERT_TRUE(R1.Halted);
  EXPECT_EQ(R1.Faults.Injected, 1u);
  EXPECT_GE(R1.Faults.TracesInvalidated, 1u); // it really hit live traces
  EXPECT_EQ(R1.Instructions, R0.Instructions);
  EXPECT_EQ(R1.RegChecksum, R0.RegChecksum);
  // Self-repair: after losing everything the runtime re-forms and
  // re-installs traces.
  EXPECT_GT(R1.Runtime.TracesInstalled, R0.Runtime.TracesInstalled);
}

TEST(FaultEndToEnd, EvictionFaultsPreserveSemantics) {
  Workload W = finiteChase(30'000);
  SimResult R0 = runSimulation(W, runToHalt());
  ASSERT_TRUE(R0.Halted);

  SimConfig CF = runToHalt();
  CF.Faults.Actions.push_back(kindAt(FaultKind::EvictCaches, R0.Cycles / 3));
  CF.Faults.Actions.push_back(kindAt(FaultKind::EvictDlt, R0.Cycles / 3));
  CF.Faults.Actions.push_back(
      kindAt(FaultKind::EvictWatchTable, R0.Cycles / 2));
  SimResult R1 = runSimulation(W, CF);
  ASSERT_TRUE(R1.Halted);
  EXPECT_EQ(R1.Faults.Injected, 3u);
  EXPECT_GE(R1.Faults.CacheLinesEvicted, 1u);
  EXPECT_EQ(R1.Instructions, R0.Instructions);
  EXPECT_EQ(R1.RegChecksum, R0.RegChecksum);
}

TEST(FaultEndToEnd, QueueStallSuppressesOptimizationUntilReverted) {
  Workload W = finiteChase(30'000);

  // Permanent stall from cycle 1: events pile up and overflow, the helper
  // never runs, no prefetching ever happens — but the program is correct.
  SimConfig Stuck = runToHalt();
  Stuck.Faults.Actions.push_back(kindAt(FaultKind::StallQueue, 1));
  SimResult RStuck = runSimulation(W, Stuck);
  ASSERT_TRUE(RStuck.Halted);
  EXPECT_EQ(RStuck.Faults.QueueStalls, 1u);
  EXPECT_EQ(RStuck.Runtime.InsertionOptimizations, 0u);
  EXPECT_GT(RStuck.Runtime.EventsDropped, 0u); // bounded queue overflowed

  // The same stall with a duration: after the revert pumps the queue, the
  // machine optimizes after all.
  SimConfig Bounded = runToHalt();
  FaultAction Stall = kindAt(FaultKind::StallQueue, 1);
  Stall.DurationCycles = RStuck.Cycles / 4;
  Bounded.Faults.Actions.push_back(Stall);
  SimResult RBounded = runSimulation(W, Bounded);
  ASSERT_TRUE(RBounded.Halted);
  EXPECT_EQ(RBounded.Faults.Reverts, 1u);
  EXPECT_GT(RBounded.Runtime.InsertionOptimizations, 0u);

  SimResult R0 = runSimulation(W, runToHalt());
  EXPECT_EQ(RStuck.RegChecksum, R0.RegChecksum);
  EXPECT_EQ(RBounded.RegChecksum, R0.RegChecksum);
}

TEST(FaultEndToEnd, DropEventsInjectsBackpressure) {
  // Force-drop a burst of filtered events right when optimization starts:
  // the runtime's drop accounting must see them (drops clear the DLT
  // window and the opt-in-progress flag, so the machine retries later).
  Workload W = finiteChase(30'000);
  SimConfig CF = runToHalt();
  FaultAction Drops;
  Drops.Trigger = FaultTrigger::AtEventCount;
  Drops.Counted = EventKind::HotTrace;
  Drops.At = 1; // as soon as the first hot trace is detected
  Drops.Kind = FaultKind::DropEvents;
  Drops.Count = 4;
  CF.Faults.Actions.push_back(Drops);
  SimResult R = runSimulation(W, CF);
  ASSERT_TRUE(R.Halted);
  EXPECT_EQ(R.Faults.EventDropsScheduled, 4u);
  EXPECT_GE(R.Runtime.EventsDropped, 4u);
  // Correctness unaffected.
  SimResult R0 = runSimulation(W, runToHalt());
  EXPECT_EQ(R.RegChecksum, R0.RegChecksum);
  EXPECT_EQ(R.Instructions, R0.Instructions);
}

//===----------------------------------------------------------------------===//
// ExperimentRunner: memo-cache keying and parallel determinism
//===----------------------------------------------------------------------===//

TEST(FaultExperimentRunner, MemoCacheKeysOnFaultPlan) {
  ExperimentRunner::clearResultCache();
  Workload W = makeWorkload("dot");
  SimConfig A = tinyTrident();
  SimConfig B = tinyTrident();
  B.Faults.Actions.push_back(spikeAt(1, 200));
  ASSERT_FALSE(A.Faults == B.Faults);

  ExperimentRunner Runner;
  auto RA = Runner.run(W, A);
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 1u);
  auto RB = Runner.run(W, B);
  // Two configs differing only in the fault plan are distinct cache
  // entries; sharing one would hand a faulted result to a clean config.
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 2u);
  EXPECT_NE(RA->Cycles, RB->Cycles);

  // Same plan again: memoized, no third entry.
  auto RB2 = Runner.run(W, B);
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 2u);
  EXPECT_EQ(RB.get(), RB2.get());
  ExperimentRunner::clearResultCache();
}

TEST(FaultExperimentRunner, ParallelBatchMatchesDirectRun) {
  // The same seed+plan must give the identical fault schedule and the
  // byte-identical registry export whether it runs inline or through the
  // parallel batch runner.
  FaultPlan Plan = FaultPlan::scattered(33, 5, 150'000);
  std::vector<ExperimentJob> Jobs;
  for (const char *Name : {"mcf", "art", "equake"}) {
    SimConfig C = tinyTrident();
    C.Faults = Plan;
    Jobs.push_back(ExperimentJob{makeWorkload(Name), C});
  }

  ExperimentRunner::clearResultCache();
  ExperimentRunner Runner;
  auto Batch = Runner.runBatch(Jobs);
  ASSERT_EQ(Batch.size(), Jobs.size());

  for (size_t I = 0; I < Jobs.size(); ++I) {
    SimResult Direct = runSimulation(Jobs[I].W, Jobs[I].Config);
    EXPECT_EQ(Batch[I]->Cycles, Direct.Cycles) << Jobs[I].W.Name;
    EXPECT_EQ(Batch[I]->Faults.Injected, Direct.Faults.Injected)
        << Jobs[I].W.Name;
    ASSERT_TRUE(Batch[I]->Registry && Direct.Registry);
    EXPECT_EQ(Batch[I]->Registry->toJsonl(), Direct.Registry->toJsonl())
        << Jobs[I].W.Name;
  }
  ExperimentRunner::clearResultCache();
}

} // namespace
