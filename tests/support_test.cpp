//===- support_test.cpp - Unit tests for src/support ----------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "support/SaturatingCounter.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace trident;

TEST(SaturatingCounter, ClampsAtBounds) {
  FourBitCounter C;
  EXPECT_EQ(C.value(), 0);
  C.add(-5);
  EXPECT_EQ(C.value(), 0);
  C.add(100);
  EXPECT_EQ(C.value(), 15);
  EXPECT_TRUE(C.isSaturated());
  C.add(-7);
  EXPECT_EQ(C.value(), 8);
}

TEST(SaturatingCounter, DltConfidenceDiscipline) {
  // The DLT confidence counter: +1 on match, -7 on mismatch; predictable
  // at 15 (Section 3.3). One mismatch drops it far below predictable.
  FourBitCounter C;
  for (int I = 0; I < 15; ++I)
    C.add(1);
  EXPECT_TRUE(C.isSaturated());
  C.add(-7);
  EXPECT_EQ(C.value(), 8);
  EXPECT_FALSE(C.isSaturated());
}

TEST(SaturatingCounter, TwoBitTakenThreshold) {
  TwoBitCounter C(2);
  EXPECT_TRUE(C.isSet());
  C.decrement();
  EXPECT_FALSE(C.isSet());
}

TEST(Random, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, BoundsRespected) {
  SplitMix64 R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Random, ShuffleIsPermutation) {
  std::vector<int> V = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  SplitMix64 R(3);
  shuffle(V, R);
  std::vector<int> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Sorted[I], I);
}

TEST(Statistics, RunningStatBasics) {
  RunningStat S;
  S.addSample(1.0);
  S.addSample(3.0);
  S.addSample(2.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
}

TEST(Statistics, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({1.1, 1.1, 1.1}), 1.1, 1e-12);
}

TEST(Statistics, HistogramBuckets) {
  Histogram H(10.0, 5);
  H.addSample(0);
  H.addSample(9.9);
  H.addSample(10);
  H.addSample(1000); // overflow bucket
  EXPECT_EQ(H.total(), 4u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(H.numBuckets() - 1), 1u);
  EXPECT_DOUBLE_EQ(H.cdfAt(1), 0.75);
}

TEST(Table, RendersAlignedRows) {
  Table T({"bench", "ipc"});
  T.addRow({"mcf", "0.42"});
  T.addSeparator();
  T.addRow({"average", "1.00"});
  std::string S = T.render();
  EXPECT_NE(S.find("mcf"), std::string::npos);
  EXPECT_NE(S.find("0.42"), std::string::npos);
  EXPECT_NE(S.find("+--"), std::string::npos);
  EXPECT_EQ(T.numRows(), 3u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(formatPercent(0.234, 1), "23.4%");
}
