//===- mix_determinism_test.cpp - Mix runs are bit-reproducible ------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The determinism contract extended to multi-programmed mixes: the same
// primary + co-runner set + quantum must produce byte-identical registry
// exports (a) across repeated runs in one process, (b) under the serial
// and the parallel experiment runner (TRIDENT_BENCH_JOBS=1 vs =4), and
// (c) the solo path must be untouched by the mix machinery — a config
// with MixWith empty is the legacy machine, bit for bit (that last claim
// is what golden_stats_test enforces; here we pin the mix-specific parts).
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "sim/Simulation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace trident;

namespace {

/// Small-budget two-workload mix: mcf (pointer-chasing primary) against
/// art (streaming co-runner), contention-heavy enough that scheduling
/// bugs would perturb counters immediately.
SimConfig mixConfig() {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 20'000;
  C.WarmupInstructions = 5'000;
  C.MixWith = {"art"};
  return C;
}

} // namespace

TEST(MixDeterminism, RepeatedRunsAreByteIdentical) {
  Workload W = makeWorkload("mcf");
  SimConfig C = mixConfig();
  SimResult A = runSimulation(W, C);
  SimResult B = runSimulation(W, C);
  ASSERT_TRUE(A.Registry);
  ASSERT_TRUE(B.Registry);
  EXPECT_EQ(A.Registry->toJsonl(), B.Registry->toJsonl());
  EXPECT_EQ(A.RegChecksum, B.RegChecksum);
  ASSERT_EQ(A.MixLanes.size(), 1u);
  ASSERT_EQ(B.MixLanes.size(), 1u);
  EXPECT_EQ(A.MixLanes[0].Workload, B.MixLanes[0].Workload);
  EXPECT_EQ(A.MixLanes[0].Instructions, B.MixLanes[0].Instructions);
  EXPECT_EQ(A.MixLanes[0].Cycles, B.MixLanes[0].Cycles);
}

TEST(MixDeterminism, MixResultShapeAndExports) {
  SimResult R = runSimulation(makeWorkload("mcf"), mixConfig());
  // A mix result reads like a solo result plus the mix appendix.
  EXPECT_EQ(R.Workload, "mcf");
  EXPECT_EQ(R.ConfigName, "trident-self-repairing+mix(art)");
  EXPECT_EQ(R.Instructions, 20'000u);
  ASSERT_EQ(R.MixLanes.size(), 1u);
  EXPECT_EQ(R.MixLanes[0].Workload, "art");
  EXPECT_GT(R.MixLanes[0].Instructions, 0u);
  EXPECT_GT(R.MixLanes[0].Cycles, 0u);
  // mix.* registry lines are only-when-on and present on mix runs.
  ASSERT_TRUE(R.Registry);
  EXPECT_EQ(R.Registry->counter("mix.lanes"), 2u);
  EXPECT_EQ(R.Registry->counter("mix.quantum_cycles"), 1'000u);
  EXPECT_EQ(R.Registry->counter("mix.lane1.instructions"),
            R.MixLanes[0].Instructions);
  EXPECT_EQ(R.Registry->counter("mix.lane1.cycles"), R.MixLanes[0].Cycles);
}

TEST(MixDeterminism, SerialAndParallelRunnersAgree) {
  // The same four-job batch (two mixes, their two solo controls) under a
  // 1-thread and a 4-thread pool, cache off so both pools really simulate.
  std::vector<ExperimentJob> Jobs;
  {
    SimConfig C = mixConfig();
    Jobs.push_back(ExperimentJob{makeWorkload("mcf"), C});
    SimConfig C2 = C;
    C2.MixWith = {"equake", "art"};
    Jobs.push_back(ExperimentJob{makeWorkload("mcf"), C2});
    SimConfig Solo = C;
    Solo.MixWith.clear();
    Jobs.push_back(ExperimentJob{makeWorkload("mcf"), Solo});
    Jobs.push_back(ExperimentJob{makeWorkload("art"), Solo});
  }

  auto runWithJobsEnv = [&](const char *JobsEnv) {
    // Threads=0 resolves through TRIDENT_BENCH_JOBS — the exact path the
    // bench drivers use.
    ::setenv("TRIDENT_BENCH_JOBS", JobsEnv, 1);
    ExperimentRunnerOptions O;
    O.Threads = 0;
    O.UseCache = false;
    ExperimentRunner R(O);
    return R.runBatch(Jobs);
  };

  auto Serial = runWithJobsEnv("1");
  auto Parallel = runWithJobsEnv("4");
  ::unsetenv("TRIDENT_BENCH_JOBS");
  ASSERT_EQ(Serial.size(), Jobs.size());
  ASSERT_EQ(Parallel.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    ASSERT_TRUE(Serial[I] && Parallel[I]) << "job " << I;
    ASSERT_TRUE(Serial[I]->Registry && Parallel[I]->Registry) << "job " << I;
    EXPECT_EQ(Serial[I]->Registry->toJsonl(), Parallel[I]->Registry->toJsonl())
        << "job " << I << " diverged between 1-thread and 4-thread pools";
    EXPECT_EQ(Serial[I]->RegChecksum, Parallel[I]->RegChecksum) << "job " << I;
  }
  // The two mix fingerprints must not collide with each other or solo.
  EXPECT_NE(configFingerprint(Jobs[0].Config),
            configFingerprint(Jobs[1].Config));
  EXPECT_NE(configFingerprint(Jobs[0].Config),
            configFingerprint(Jobs[2].Config));
}
