//===- sim_test.cpp - Simulation wiring & configuration tests --------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "sim/Simulation.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {

Workload streamWorkload(int64_t Stride = 64) {
  ProgramBuilder B;
  B.loadImm(1, 0x1000'0000);
  B.loadImm(27, int64_t(1) << 40);
  B.label("loop");
  B.load(6, 1, 0);
  B.fadd(9, 9, 6);
  B.aluImm(Opcode::AddI, 1, 1, Stride);
  B.blt(1, 27, "loop");
  B.halt();
  return {"stream", "", B.finish(), [](DataMemory &) {}};
}

SimConfig budget(SimConfig C, uint64_t N = 300'000) {
  C.SimInstructions = N;
  C.WarmupInstructions = 30'000;
  return C;
}

} // namespace

TEST(Sim, ConfigNames) {
  EXPECT_EQ(hwPfConfigName("none"), "no-hwpf");
  EXPECT_EQ(hwPfConfigName(""), "no-hwpf");
  EXPECT_EQ(hwPfConfigName("sb4x4"), "sb4x4");
  EXPECT_EQ(hwPfConfigName("sb8x8"), "sb8x8");
  EXPECT_EQ(hwPfConfigName("dcpt:entries=64"), "dcpt:entries=64");
  EXPECT_STREQ(prefetchModeName(PrefetchMode::SelfRepairing),
               "self-repairing");

  SimResult R = runSimulation(streamWorkload(),
                              budget(SimConfig::hwBaseline(), 50'000));
  EXPECT_EQ(R.ConfigName, "sb8x8");
  SimResult R2 = runSimulation(
      streamWorkload(),
      budget(SimConfig::withMode(PrefetchMode::Basic), 50'000));
  EXPECT_EQ(R2.ConfigName, "trident-basic");
}

TEST(Sim, BaselineConfigsMatchTable1) {
  MemSystemConfig M = MemSystemConfig::baseline();
  EXPECT_EQ(M.L1.SizeBytes, 64u * 1024);
  EXPECT_EQ(M.L1.Assoc, 2u);
  EXPECT_EQ(M.L1.HitLatency, 3u);
  EXPECT_EQ(M.L2.SizeBytes, 512u * 1024);
  EXPECT_EQ(M.L2.Assoc, 8u);
  EXPECT_EQ(M.L2.HitLatency, 11u);
  EXPECT_EQ(M.L3.SizeBytes, 4u * 1024 * 1024);
  EXPECT_EQ(M.L3.Assoc, 16u);
  EXPECT_EQ(M.L3.HitLatency, 35u);
  EXPECT_EQ(M.MemoryLatency, 350u);
  EXPECT_FALSE(M.Tlb.Enable); // not part of the paper's baseline

  CoreConfig C = CoreConfig::baseline();
  EXPECT_EQ(C.IssueWidth, 4u);
  EXPECT_EQ(C.RobSize, 256u);
  EXPECT_EQ(C.FpIssueLimit, 2u);
  EXPECT_EQ(C.MemIssueLimit, 2u);
  EXPECT_EQ(C.MispredictPenalty, 20u); // 20-stage pipeline
  EXPECT_EQ(C.NumContexts, 2u);
}

TEST(Sim, HardwarePrefetchingHelpsStreams) {
  SimConfig None = budget(SimConfig::hwBaseline());
  None.HwPf = "none";
  SimResult RN = runSimulation(streamWorkload(), None);
  SimResult R8 = runSimulation(streamWorkload(),
                               budget(SimConfig::hwBaseline()));
  EXPECT_GT(speedup(R8, RN), 1.5);
  EXPECT_EQ(R8.HwPf.Prefetcher, "stream-buffers-8x8");
  EXPECT_GT(R8.HwPf.get("probe_hits"), 100u);
}

TEST(Sim, RegistrySpecEquivalentToNamedConfig) {
  // "sb8x8" and the parameterized "stream" spec with the same knobs build
  // the same unit: the full stat registries must export byte-identically.
  SimConfig Named = budget(SimConfig::hwBaseline(), 50'000);
  SimConfig Spec = Named;
  Spec.HwPf = "stream:buffers=8,depth=8";
  SimResult RN = runSimulation(streamWorkload(), Named);
  SimResult RS = runSimulation(streamWorkload(), Spec);
  ASSERT_TRUE(RN.Registry && RS.Registry);
  EXPECT_EQ(RN.Registry->toJsonl(), RS.Registry->toJsonl());
  EXPECT_EQ(RN.RegChecksum, RS.RegChecksum);
}

TEST(Sim, RobSizeLimitsMemoryParallelism) {
  // Many independent missing streams: a tiny ROB throttles overlap.
  ProgramBuilder B;
  for (unsigned K = 0; K < 8; ++K)
    B.loadImm(1 + K, 0x1000'0000 + uint64_t(K) * 0x0400'0000);
  B.loadImm(27, int64_t(1) << 40);
  B.label("loop");
  for (unsigned K = 0; K < 8; ++K) {
    B.load(11 + K, 1 + K, 0);
    B.aluImm(Opcode::AddI, 1 + K, 1 + K, 128);
  }
  B.blt(1, 27, "loop");
  B.halt();
  Workload W{"mlp", "", B.finish(), [](DataMemory &) {}};

  SimConfig Big = budget(SimConfig::hwBaseline(), 100'000);
  Big.HwPf = "none";
  SimConfig Small = Big;
  Small.Core.RobSize = 8;
  SimResult RBig = runSimulation(W, Big);
  SimResult RSmall = runSimulation(W, Small);
  EXPECT_GT(RBig.Ipc, RSmall.Ipc * 1.3);
}

TEST(Sim, IssueWidthMattersWhenComputeBound) {
  ProgramBuilder B;
  B.loadImm(27, int64_t(1) << 40).loadImm(26, 0);
  B.label("loop");
  for (unsigned I = 0; I < 12; ++I)
    B.aluImm(Opcode::AddI, 1 + (I % 8), 1 + (I % 8), 1); // independent
  B.addi(26, 26, 1);
  B.blt(26, 27, "loop");
  B.halt();
  Workload W{"alu", "", B.finish(), [](DataMemory &) {}};

  SimConfig Wide = budget(SimConfig::hwBaseline(), 100'000);
  SimConfig Narrow = Wide;
  Narrow.Core.IssueWidth = 1;
  Narrow.Core.IntIssueLimit = 1;
  SimResult RW = runSimulation(W, Wide);
  SimResult RN = runSimulation(W, Narrow);
  EXPECT_GT(RW.Ipc, 2.0);
  EXPECT_LT(RN.Ipc, 1.1);
  EXPECT_GT(RW.Ipc, RN.Ipc * 2.5);
}

TEST(Sim, TlbSlowsColdStreamsAndDropsPrefetches) {
  // Stride 4KB: every access a fresh page.
  SimConfig Plain = budget(SimConfig::hwBaseline(), 150'000);
  SimConfig WithTlb = Plain;
  WithTlb.Mem.Tlb.Enable = true;
  SimResult RP = runSimulation(streamWorkload(4096), Plain);
  SimResult RT = runSimulation(streamWorkload(4096), WithTlb);
  EXPECT_LT(RT.Ipc, RP.Ipc); // page walks cost
  EXPECT_GT(RT.Tlb.Misses, 1000u);

  // And under software prefetching, far-ahead prefetches to cold pages
  // get dropped rather than fetched.
  SimConfig Srp = budget(SimConfig::withMode(PrefetchMode::SelfRepairing),
                         400'000);
  Srp.Mem.Tlb.Enable = true;
  SimResult RS = runSimulation(streamWorkload(4096), Srp);
  EXPECT_GT(RS.Tlb.PrefetchesDropped, 0u);
}

TEST(Sim, WarmupIsExcludedFromStats) {
  SimConfig C = budget(SimConfig::hwBaseline(), 100'000);
  C.WarmupInstructions = 50'000;
  SimResult R = runSimulation(streamWorkload(), C);
  EXPECT_EQ(R.Instructions, 100'000u); // warmup not counted
}

TEST(Sim, SpeedupHelper) {
  SimResult A, B;
  A.Ipc = 1.5;
  B.Ipc = 1.0;
  EXPECT_DOUBLE_EQ(speedup(A, B), 1.5);
  B.Ipc = 0.0;
  EXPECT_DOUBLE_EQ(speedup(A, B), 0.0);
}
