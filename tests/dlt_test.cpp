//===- dlt_test.cpp - Unit tests for the Delinquent Load Table -------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "dlt/DelinquentLoadTable.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {
DltConfig smallDlt() {
  DltConfig C;
  C.NumEntries = 64;
  C.Assoc = 2;
  C.MonitorWindow = 16;
  C.MissThreshold = 4;
  C.LatencyThreshold = 12;
  return C;
}

} // namespace

TEST(Dlt, DelinquentLoadRaisesEventAtWindowBoundary) {
  DelinquentLoadTable T(smallDlt());
  bool Event = false;
  for (unsigned I = 0; I < 16; ++I)
    Event |= T.update(0x100, 0x1000 + I * 64, /*Miss=*/true, 300);
  EXPECT_TRUE(Event);
  EXPECT_EQ(T.stats().Events, 1u);
}

TEST(Dlt, EventRequiresFullWindow) {
  DelinquentLoadTable T(smallDlt());
  bool Event = false;
  for (unsigned I = 0; I < 15; ++I) // one short of the window
    Event |= T.update(0x100, 0x1000 + I * 64, true, 300);
  EXPECT_FALSE(Event);
}

TEST(Dlt, LowMissCountWindowResets) {
  DelinquentLoadTable T(smallDlt());
  bool Event = false;
  for (unsigned I = 0; I < 16; ++I)
    Event |= T.update(0x100, 0x1000 + I * 64, /*Miss=*/I < 3, 300);
  EXPECT_FALSE(Event); // 3 misses < threshold of 4
  std::optional<DltSnapshot> S = T.lookup(0x100);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Accesses, 0u); // window reset
  EXPECT_EQ(T.stats().WindowsCompleted, 1u);
}

TEST(Dlt, LowLatencyMissesDoNotQualify) {
  DelinquentLoadTable T(smallDlt());
  bool Event = false;
  for (unsigned I = 0; I < 16; ++I)
    Event |= T.update(0x100, 0x1000 + I * 64, true, /*MissLatency=*/8);
  EXPECT_FALSE(Event); // avg 8 <= threshold 12 (L2-served loads filtered)
}

TEST(Dlt, CountersFreezeAfterEventUntilCleared) {
  DelinquentLoadTable T(smallDlt());
  for (unsigned I = 0; I < 16; ++I)
    T.update(0x100, 0x1000 + I * 64, true, 300);
  std::optional<DltSnapshot> S1 = T.lookup(0x100);
  ASSERT_TRUE(S1.has_value());
  EXPECT_EQ(S1->Accesses, 16u);
  // Updates while frozen do not count (the helper has not read them yet).
  T.update(0x100, 0x9000, true, 300);
  EXPECT_EQ(T.lookup(0x100)->Accesses, 16u);
  // Clearing unfreezes and restarts the window.
  T.clearWindow(0x100);
  EXPECT_EQ(T.lookup(0x100)->Accesses, 0u);
  T.update(0x100, 0x9040, true, 300);
  EXPECT_EQ(T.lookup(0x100)->Accesses, 1u);
}

TEST(Dlt, StrideConfidenceDiscipline) {
  DelinquentLoadTable T(smallDlt());
  // 15 equal strides + the initial observation reach confidence 15.
  for (unsigned I = 0; I < 17; ++I)
    T.update(0x100, 0x1000 + I * 64, false, 0);
  std::optional<DltSnapshot> S = T.lookup(0x100);
  ASSERT_TRUE(S.has_value());
  EXPECT_TRUE(S->StridePredictable);
  EXPECT_EQ(S->Stride, 64);
  // One irregular address: -7 drops it below predictable.
  T.update(0x100, 0x999999, false, 0);
  EXPECT_FALSE(T.lookup(0x100)->StridePredictable);
}

TEST(Dlt, StrideTracksEvenWhileFrozen) {
  DelinquentLoadTable T(smallDlt());
  for (unsigned I = 0; I < 16; ++I)
    T.update(0x100, 0x1000 + I * 64, true, 300); // fires & freezes
  for (unsigned I = 16; I < 40; ++I)
    T.update(0x100, 0x1000 + I * 64, true, 300);
  EXPECT_TRUE(T.lookup(0x100)->StridePredictable);
}

TEST(Dlt, MatureSuppressesEvents) {
  DelinquentLoadTable T(smallDlt());
  for (unsigned I = 0; I < 16; ++I)
    T.update(0x100, 0x1000 + I * 64, true, 300);
  T.clearWindow(0x100);
  T.setMature(0x100, true);
  bool Event = false;
  for (unsigned I = 0; I < 64; ++I)
    Event |= T.update(0x100, 0x5000 + I * 64, true, 300);
  EXPECT_FALSE(Event);
}

TEST(Dlt, ForceMatureAllocatesEntry) {
  DelinquentLoadTable T(smallDlt());
  T.forceMature(0xABC);
  std::optional<DltSnapshot> S = T.lookup(0xABC);
  ASSERT_TRUE(S.has_value());
  EXPECT_TRUE(S->Mature);
}

TEST(Dlt, MatureFlagLostOnReplacement) {
  DltConfig C = smallDlt();
  C.NumEntries = 4; // 2 sets x 2 ways
  DelinquentLoadTable T(C);
  T.forceMature(0x100);
  // Two more PCs in the same set (set index = PC & 1) evict it.
  T.update(0x102, 0x1, true, 300);
  T.update(0x104, 0x2, true, 300);
  std::optional<DltSnapshot> S = T.lookup(0x100);
  EXPECT_FALSE(S.has_value()); // replaced: "the only way the mature flag
                               // was cleared" (Section 3.5.2)
  EXPECT_GE(T.stats().Replacements, 1u);
}

TEST(Dlt, PartialWindowClassification) {
  DelinquentLoadTable T(smallDlt());
  // Half a window of 100% misses at high latency: delinquent by the
  // partial-window rule of Section 3.4.1.
  for (unsigned I = 0; I < 8; ++I)
    T.update(0x100, 0x1000 + I * 64, true, 300);
  EXPECT_TRUE(T.isDelinquent(0x100));
  // A single access: below the minimum sample (window/8 = 2).
  T.update(0x200, 0x1000, true, 300);
  EXPECT_FALSE(T.isDelinquent(0x200));
}

TEST(Dlt, SnapshotArithmetic) {
  DltSnapshot S;
  S.Accesses = 100;
  S.Misses = 10;
  S.TotalMissLatency = 3000;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.1);
  EXPECT_DOUBLE_EQ(S.avgMissLatency(), 300.0);
  EXPECT_DOUBLE_EQ(S.avgAccessLatency(), 30.0);
}

TEST(Dlt, BaselineConfigMatchesPaper) {
  DltConfig C = DltConfig::baseline();
  EXPECT_EQ(C.NumEntries, 1024u); // Table 2
  EXPECT_EQ(C.Assoc, 2u);
  EXPECT_EQ(C.MonitorWindow, 256u);  // access counter threshold
  EXPECT_EQ(C.MissThreshold, 8u);    // ~3% miss rate
  EXPECT_EQ(C.StrideConfidentAt, 15);
}
