//===- trident_test.cpp - Unit tests for the Trident framework -------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "trident/BranchProfiler.h"
#include "trident/CodeCache.h"
#include "trident/TraceBuilder.h"
#include "trident/WatchTable.h"

#include <gtest/gtest.h>

using namespace trident;

//===----------------------------------------------------------------------===//
// BranchProfiler
//===----------------------------------------------------------------------===//

namespace {

/// Simulates committing a simple counted loop: body of \p CondBranches
/// conditional branches with fixed directions, closed by a taken backedge.
/// Returns the candidate if the profiler fires within \p MaxIters.
std::optional<HotTraceCandidate>
runLoopThroughProfiler(BranchProfiler &P, Addr Head,
                       const std::vector<bool> &Dirs, unsigned MaxIters) {
  for (unsigned It = 0; It < MaxIters; ++It) {
    if (std::optional<HotTraceCandidate> C = P.onCommit(Head))
      return C;
    Addr PC = Head + 1;
    for (bool D : Dirs) {
      P.onCommit(PC);
      P.onBranch(PC, /*Conditional=*/true, D, D ? PC + 10 : PC + 1);
      ++PC;
    }
    // Backedge (conditional, taken, backward).
    P.onCommit(PC);
    P.onBranch(PC, true, true, Head);
  }
  return std::nullopt;
}

} // namespace

TEST(BranchProfiler, DetectsStableLoop) {
  BranchProfiler P;
  std::optional<HotTraceCandidate> C =
      runLoopThroughProfiler(P, 0x100, {true, false}, 64);
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->StartPC, 0x100u);
  // Bits: body branch taken(1), body branch not-taken(0), backedge
  // taken(1) -> bitmap LSB-first: 1, 0, 1.
  EXPECT_EQ(C->NumBranches, 3u);
  EXPECT_EQ(C->Bitmap & 0x7u, 0b101u);
}

TEST(BranchProfiler, UnstableDirectionsNeverFire) {
  BranchProfiler P;
  // Alternate an inner branch every iteration: capture rounds mismatch.
  bool Dir = false;
  for (unsigned It = 0; It < 256; ++It) {
    if (P.onCommit(0x100).has_value())
      FAIL() << "unstable loop produced a candidate";
    P.onCommit(0x101);
    P.onBranch(0x101, true, Dir, Dir ? 0x110 : 0x102);
    Dir = !Dir;
    P.onCommit(0x102);
    P.onBranch(0x102, true, true, 0x100);
  }
}

TEST(BranchProfiler, TooManyBranchesAborts) {
  BranchProfilerConfig C;
  C.BitmapBits = 4;
  BranchProfiler P(C);
  std::optional<HotTraceCandidate> Cand = runLoopThroughProfiler(
      P, 0x100, {true, true, true, true, true}, 128); // 6 branches > 4 bits
  EXPECT_FALSE(Cand.has_value());
}

TEST(BranchProfiler, SuppressionSilencesALoop) {
  BranchProfiler P;
  P.suppress(0x100);
  EXPECT_FALSE(runLoopThroughProfiler(P, 0x100, {true}, 128).has_value());
  P.unsuppress(0x100);
  EXPECT_TRUE(runLoopThroughProfiler(P, 0x100, {true}, 128).has_value());
}

TEST(BranchProfiler, ForwardBranchesDoNotTrain) {
  BranchProfiler P;
  for (unsigned I = 0; I < 1000; ++I)
    P.onBranch(0x100, true, true, 0x200); // forward target
  EXPECT_FALSE(P.captureInProgress());
}

//===----------------------------------------------------------------------===//
// TraceBuilder
//===----------------------------------------------------------------------===//

namespace {

/// A loop whose body contains one in-trace-taken branch and one side exit.
Program diamondLoop() {
  ProgramBuilder B(0x100);
  B.loadImm(1, 0).loadImm(2, 1000);
  B.entryHere();
  B.label("head");
  B.addi(1, 1, 1);
  B.aluImm(Opcode::AndI, 3, 1, 0xff);
  B.bne(3, 0, "common"); // hot: taken
  B.addi(4, 4, 100);     // cold path
  B.label("common");
  B.addi(5, 5, 1);
  B.blt(1, 2, "head"); // backedge
  B.halt();
  return B.finish();
}

} // namespace

TEST(TraceBuilder, StreamlinesTakenPath) {
  Program P = diamondLoop();
  HotTraceCandidate Cand;
  Cand.StartPC = 0x102; // "head"
  Cand.Bitmap = 0b11;   // bne taken, backedge taken
  Cand.NumBranches = 2;
  TraceBuilder TB;
  std::optional<Trace> T = TB.build(P, Cand, 0);
  ASSERT_TRUE(T.has_value());
  EXPECT_TRUE(T->ClosesLoop);
  // Body: addi, andi, inverted-bne (side exit to cold path), addi(common),
  // backedge (kept, re-targeted at OrigStart by the peephole), exit jump.
  ASSERT_EQ(T->Body.size(), 6u);
  EXPECT_EQ(T->Body[2].Op, Opcode::Beq); // inverted bne -> beq
  EXPECT_EQ(static_cast<Addr>(T->Body[2].Imm), 0x105u); // cold fall-through
  // Loop-close peephole: the final conditional branch targets OrigStart...
  EXPECT_EQ(T->Body[4].Op, Opcode::Blt);
  EXPECT_EQ(static_cast<Addr>(T->Body[4].Imm), 0x102u);
  // ...and the trailing synthetic jump is the loop *exit* path.
  EXPECT_EQ(T->Body[5].Op, Opcode::Jump);
  EXPECT_TRUE(T->Body[5].Synthetic);
  EXPECT_EQ(static_cast<Addr>(T->Body[5].Imm), 0x108u); // halt
}

TEST(TraceBuilder, NotTakenPathKeepsBranchAsSideExit) {
  Program P = diamondLoop();
  HotTraceCandidate Cand;
  Cand.StartPC = 0x102;
  Cand.Bitmap = 0b10; // bne NOT taken (cold path in trace), backedge taken
  Cand.NumBranches = 2;
  TraceBuilder TB;
  std::optional<Trace> T = TB.build(P, Cand, 0);
  ASSERT_TRUE(T.has_value());
  // The bne stays un-inverted, targeting "common" as the side exit.
  EXPECT_EQ(T->Body[2].Op, Opcode::Bne);
  EXPECT_EQ(static_cast<Addr>(T->Body[2].Imm), 0x106u);
  // Cold-path addi is in the trace.
  EXPECT_EQ(T->Body[3].Op, Opcode::AddI);
  EXPECT_EQ(T->Body[3].Rd, 4);
}

TEST(TraceBuilder, OrigPCProvenancePreserved) {
  Program P = diamondLoop();
  HotTraceCandidate Cand{0x102, 0b11, 2};
  std::optional<Trace> T = TraceBuilder().build(P, Cand, 0);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->Body[0].OrigPC, 0x102u);
  EXPECT_EQ(T->Body[1].OrigPC, 0x103u);
}

TEST(TraceBuilder, LengthCapEndsTraceWithExit) {
  ProgramBuilder B(0x10);
  B.label("head");
  for (int I = 0; I < 50; ++I)
    B.addi(1, 1, 1);
  B.blt(1, 2, "head");
  B.halt();
  Program P = B.finish();
  TraceBuilderConfig C;
  C.MaxLength = 10;
  TraceBuilder TB(C);
  std::optional<Trace> T = TB.build(P, {0x10, 0b1, 1}, 0);
  ASSERT_TRUE(T.has_value());
  EXPECT_LE(T->Body.size(), 11u);
  EXPECT_EQ(T->Body.back().Op, Opcode::Jump); // exit to original code
  EXPECT_FALSE(T->ClosesLoop);
}

TEST(TraceBuilder, JumpsAreStreamlinedAway) {
  ProgramBuilder B(0x10);
  B.label("head");
  B.addi(1, 1, 1);
  B.jump("far");
  B.nop().nop(); // skipped
  B.label("far");
  B.addi(2, 2, 2);
  B.blt(1, 3, "head");
  B.halt();
  Program P = B.finish();
  std::optional<Trace> T = TraceBuilder().build(P, {0x10, 0b1, 1}, 0);
  ASSERT_TRUE(T.has_value());
  // addi, addi, branch, exit-jump: the jmp and nops are gone.
  EXPECT_EQ(T->Body.size(), 4u);
  EXPECT_EQ(T->Body[1].Rd, 2);
}

//===----------------------------------------------------------------------===//
// Classical optimizations
//===----------------------------------------------------------------------===//

TEST(ClassicalOpts, ConstantPropagationFolds) {
  std::vector<Instruction> Body = {
      makeLoadImm(1, 10),
      makeAluImm(Opcode::AddI, 2, 1, 5),  // -> ldi r2, 15
      makeAlu(Opcode::Add, 3, 1, 2),      // -> ldi r3, 25
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.ConstantsFolded, 2u);
  EXPECT_EQ(Body[1].Op, Opcode::LoadImm);
  EXPECT_EQ(Body[1].Imm, 15);
  EXPECT_EQ(Body[2].Op, Opcode::LoadImm);
  EXPECT_EQ(Body[2].Imm, 25);
}

TEST(ClassicalOpts, StrengthReduction) {
  std::vector<Instruction> Body = {makeAluImm(Opcode::MulI, 2, 1, 8)};
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.StrengthReduced, 1u);
  EXPECT_EQ(Body[0].Op, Opcode::ShlI);
  EXPECT_EQ(Body[0].Imm, 3);
}

TEST(ClassicalOpts, NonPowerOfTwoMultiplyUntouched) {
  std::vector<Instruction> Body = {makeAluImm(Opcode::MulI, 2, 1, 7)};
  TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(Body[0].Op, Opcode::MulI);
}

TEST(ClassicalOpts, RedundantLoadBecomesMove) {
  std::vector<Instruction> Body = {
      makeLoad(2, 1, 16),
      makeAlu(Opcode::Add, 3, 2, 2),
      makeLoad(4, 1, 16), // same address, nothing clobbered
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.RedundantLoadsRemoved, 1u);
  EXPECT_EQ(Body[2].Op, Opcode::Move);
  EXPECT_EQ(Body[2].Rs1, 2);
}

TEST(ClassicalOpts, StoreLoadPairBecomesMove) {
  // Trident's legacy int/FP conversion case (Section 3.2).
  std::vector<Instruction> Body = {
      makeStore(1, 8, 5),
      makeLoad(6, 1, 8),
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.StoreLoadPairsForwarded, 1u);
  EXPECT_EQ(Body[1].Op, Opcode::Move);
  EXPECT_EQ(Body[1].Rs1, 5);
}

TEST(ClassicalOpts, InterveningStoreBlocksLoadRemoval) {
  std::vector<Instruction> Body = {
      makeLoad(2, 1, 16),
      makeStore(3, 0, 4), // may alias
      makeLoad(5, 1, 16),
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.RedundantLoadsRemoved, 0u);
  EXPECT_EQ(Body[2].Op, Opcode::Load);
}

TEST(ClassicalOpts, BaseRedefinitionBlocksLoadRemoval) {
  std::vector<Instruction> Body = {
      makeLoad(2, 1, 16),
      makeAluImm(Opcode::AddI, 1, 1, 8), // base changes
      makeLoad(3, 1, 16),
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.RedundantLoadsRemoved, 0u);
}

TEST(ClassicalOpts, ValueRegisterClobberBlocksForwarding) {
  std::vector<Instruction> Body = {
      makeLoad(2, 1, 16),
      makeLoadImm(2, 7), // the holding register is overwritten
      makeLoad(3, 1, 16),
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.RedundantLoadsRemoved, 0u);
}

//===----------------------------------------------------------------------===//
// CodeCache / BinaryPatcher / WatchTable
//===----------------------------------------------------------------------===//

TEST(CodeCache, InstallAndTag) {
  CodeCache CC;
  std::vector<Instruction> Body = {makeNop(), makeHalt()};
  Addr A1 = CC.install(Body, 7);
  Addr A2 = CC.install(Body, 9);
  EXPECT_EQ(A1, CodeCache::Base);
  EXPECT_EQ(A2, CodeCache::Base + 2);
  EXPECT_TRUE(CC.contains(A1));
  EXPECT_FALSE(CC.contains(A2 + 2));
  EXPECT_EQ(CC.traceIdAt(A1 + 1), 7u);
  EXPECT_EQ(CC.traceIdAt(A2), 9u);
  CC.at(A1).Imm = 42; // patchable in place
  EXPECT_EQ(CC.at(A1).Imm, 42);
}

TEST(BinaryPatcher, PatchAndRestore) {
  ProgramBuilder B(0x10);
  B.addi(1, 1, 1).halt();
  Program P = B.finish();
  BinaryPatcher Patcher(P);
  Patcher.patchJump(0x10, 0x40000000);
  EXPECT_EQ(P.at(0x10).Op, Opcode::Jump);
  EXPECT_TRUE(P.at(0x10).Synthetic);
  EXPECT_TRUE(Patcher.isPatched(0x10));
  // Re-patching keeps the original for restore.
  Patcher.patchJump(0x10, 0x40000010);
  Patcher.restore(0x10);
  EXPECT_EQ(P.at(0x10).Op, Opcode::AddI);
}

TEST(CodeImage, FetchDispatchesBetweenProgramAndCache) {
  ProgramBuilder B(0x10);
  B.addi(1, 1, 1).halt();
  Program P = B.finish();
  CodeCache CC;
  Addr T = CC.install({makeNop()}, 0);
  CodeImage Img(P, CC);
  EXPECT_EQ(Img.fetch(0x10).Op, Opcode::AddI);
  EXPECT_EQ(Img.fetch(T).Op, Opcode::Nop);
}

TEST(WatchTable, InsertFindRemove) {
  WatchTable W(4);
  EXPECT_TRUE(W.insert(1, 0x100, 0x40000000, 10));
  EXPECT_FALSE(W.insert(1, 0x100, 0x40000000, 10)); // duplicate
  ASSERT_NE(W.find(1), nullptr);
  EXPECT_EQ(W.findByOrigStart(0x100)->TraceId, 1u);
  W.remove(1);
  EXPECT_EQ(W.find(1), nullptr);
}

TEST(WatchTable, IterationTimingTracksMinAndAvg) {
  WatchTable W(4);
  W.insert(1, 0x100, 0x40000000, 10);
  W.recordIteration(1, 50);
  W.recordIteration(1, 30);
  W.recordIteration(1, 40);
  const WatchEntry *E = W.find(1);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->MinExecTime, 30u);
  EXPECT_DOUBLE_EQ(E->avgExecTime(), 40.0);
}

TEST(WatchTable, CapacityEvictsLeastRecentlyTouched) {
  WatchTable W(2);
  W.insert(1, 0x100, 0x40000000, 10);
  W.insert(2, 0x200, 0x40000100, 10);
  W.find(1); // touch 1 so 2 is LRU
  W.insert(3, 0x300, 0x40000200, 10);
  EXPECT_NE(W.find(1), nullptr);
  EXPECT_EQ(W.find(2), nullptr);
  EXPECT_NE(W.find(3), nullptr);
}

TEST(ClassicalOpts, RedundantBranchRemoval) {
  // A side-exit branch whose condition is provably false on the trace
  // path is deleted (Section 3.2's redundant branch removal).
  std::vector<Instruction> Body = {
      makeLoadImm(1, 5),
      makeLoadImm(2, 9),
      makeBranch(Opcode::Beq, 1, 2, 0x999), // 5 == 9: never taken
      makeAlu(Opcode::Add, 3, 1, 2),
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.RedundantBranchesRemoved, 1u);
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_EQ(Body[2].Op, Opcode::LoadImm); // the Add was folded too
}

TEST(ClassicalOpts, TakenConstantBranchIsKept) {
  std::vector<Instruction> Body = {
      makeLoadImm(1, 5),
      makeBranch(Opcode::Blt, 1, 2, 0x999), // r2 unknown: kept
      makeLoadImm(2, 9),
      makeBranch(Opcode::Beq, 1, 1, 0x999), // always taken: kept (exit)
  };
  ClassicalOptStats S = TraceBuilder::runClassicalOpts(Body);
  EXPECT_EQ(S.RedundantBranchesRemoved, 0u);
  EXPECT_EQ(Body.size(), 4u);
}
