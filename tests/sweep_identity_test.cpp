//===- sweep_identity_test.cpp - Full-sweep bit-identity gate --------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The hot-path refactors (SoA cache/DLT layouts, zero-alloc cycle loop,
// batched event dispatch) are pure performance work: they must not move a
// single architectural bit. This suite pins the *entire* sweep surface —
// all 14 workloads x 4 prefetch configs, plus a faulted self-repairing
// config — to a committed fingerprint of (Cycles, RegChecksum, FNV-1a of
// the canonical stat-registry JSONL export).
//
// golden_stats_test already byte-compares the full JSONL for the
// SelfRepairing config; this suite widens the net to every config the
// figure sweeps use (hwBaseline has no Trident at all, so it exercises
// the pure-hardware path the stat goldens never see) while keeping the
// committed artifact to one small text file.
//
// To refresh after an *intentional* behaviour change:
//   TRIDENT_UPDATE_GOLDENS=1 ./sweep_identity_test
// then review the diff like any other code change.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"
#include "sim/Simulation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#ifndef TRIDENT_GOLDEN_DIR
#error "TRIDENT_GOLDEN_DIR must be defined by the build"
#endif

using namespace trident;

namespace {

/// Same snapshot budget as golden_stats_test / the fault identity tests:
/// small enough that the 70-cell sweep runs in seconds, long enough that
/// tracing, optimization, repair, and fault recovery all engage.
constexpr uint64_t kSimInstructions = 40'000;
constexpr uint64_t kWarmupInstructions = 10'000;

SimConfig budgeted(SimConfig C) {
  C.SimInstructions = kSimInstructions;
  C.WarmupInstructions = kWarmupInstructions;
  return C;
}

/// The faulted cell: a self-repairing run whose environment degrades mid-
/// flight. Cycle triggers are spread so that for typical cycle counts at
/// this budget (a few hundred thousand) every action fires on at least the
/// memory-bound workloads.
SimConfig faultedConfig() {
  SimConfig C = budgeted(SimConfig::withMode(PrefetchMode::SelfRepairing));
  FaultAction Spike;
  Spike.Trigger = FaultTrigger::AtCycle;
  Spike.At = 20'000;
  Spike.Kind = FaultKind::LatencySpike;
  Spike.ExtraMemLatency = 300;
  Spike.DurationCycles = 40'000;
  FaultAction EvictDlt;
  EvictDlt.Trigger = FaultTrigger::AtCycle;
  EvictDlt.At = 60'000;
  EvictDlt.Kind = FaultKind::EvictDlt;
  FaultAction KillTraces;
  KillTraces.Trigger = FaultTrigger::AtCycle;
  KillTraces.At = 90'000;
  KillTraces.Kind = FaultKind::InvalidateTraces;
  FaultAction EvictCaches;
  EvictCaches.Trigger = FaultTrigger::AtCycle;
  EvictCaches.At = 130'000;
  EvictCaches.Kind = FaultKind::EvictCaches;
  C.Faults.Actions = {Spike, EvictDlt, KillTraces, EvictCaches};
  return C;
}

struct SweepCell {
  const char *ConfigName;
  SimConfig Config;
};

std::vector<SweepCell> sweepCells() {
  return {
      {"hwBaseline", budgeted(SimConfig::hwBaseline())},
      {"basic", budgeted(SimConfig::withMode(PrefetchMode::Basic))},
      {"wholeObject", budgeted(SimConfig::withMode(PrefetchMode::WholeObject))},
      {"selfRepairing",
       budgeted(SimConfig::withMode(PrefetchMode::SelfRepairing))},
      {"faulted", faultedConfig()},
  };
}

/// FNV-1a over the registry export. The stat goldens already guard the
/// byte-exact JSONL for one config; here a 64-bit fingerprint per cell
/// keeps the committed file reviewable (70 lines, not 70 files).
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string goldenPath() {
  return std::string(TRIDENT_GOLDEN_DIR) + "/sweep_identity.txt";
}

std::string cellKey(const std::string &Workload, const std::string &Config) {
  return Workload + " " + Config;
}

std::string fingerprintLine(const std::string &Workload,
                            const std::string &Config, const SimResult &R,
                            const std::string &Jsonl) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "%s %s cycles=%llu checksum=%016llx "
                                  "registry=%016llx",
                Workload.c_str(), Config.c_str(),
                static_cast<unsigned long long>(R.Cycles),
                static_cast<unsigned long long>(R.RegChecksum),
                static_cast<unsigned long long>(fnv1a(Jsonl)));
  return Buf;
}

} // namespace

TEST(SweepIdentity, FullSweepMatchesCommittedFingerprints) {
  const bool Update = std::getenv("TRIDENT_UPDATE_GOLDENS") != nullptr;

  // Load the committed fingerprints (unless regenerating).
  std::map<std::string, std::string> Golden;
  if (!Update) {
    std::ifstream In(goldenPath());
    ASSERT_TRUE(In) << "missing " << goldenPath()
                    << " — run tools/update_goldens.sh and commit the result";
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty() || Line[0] == '#')
        continue;
      std::istringstream Is(Line);
      std::string Workload, Config;
      Is >> Workload >> Config;
      Golden[cellKey(Workload, Config)] = Line;
    }
  }

  std::ostringstream Out;
  Out << "# sweep_identity fingerprints: workload config cycles regchecksum "
         "fnv1a(registry jsonl)\n"
      << "# budget: sim=" << kSimInstructions
      << " warmup=" << kWarmupInstructions << "\n";

  for (const std::string &Name : workloadNames()) {
    for (const SweepCell &Cell : sweepCells()) {
      Workload W = makeWorkload(Name);
      SimResult R = runSimulation(W, Cell.Config);
      ASSERT_TRUE(R.Registry) << Name << "/" << Cell.ConfigName;
      const std::string Actual =
          fingerprintLine(Name, Cell.ConfigName, R, R.Registry->toJsonl());
      Out << Actual << "\n";
      if (Update)
        continue;
      auto It = Golden.find(cellKey(Name, Cell.ConfigName));
      ASSERT_NE(It, Golden.end())
          << "no committed fingerprint for " << Name << "/" << Cell.ConfigName;
      EXPECT_EQ(It->second, Actual)
          << Name << "/" << Cell.ConfigName
          << ": architectural state drifted from the committed sweep "
             "fingerprint (regen via tools/update_goldens.sh only if the "
             "change is intended)";
    }
  }

  if (Update) {
    std::ofstream OutFile(goldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(OutFile) << "cannot write " << goldenPath();
    OutFile << Out.str();
  }
}
