//===- isa_test.cpp - Unit tests for src/isa -------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/Instruction.h"
#include "isa/Opcode.h"
#include "isa/Program.h"
#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace trident;

TEST(Opcode, Names) {
  EXPECT_STREQ(opcodeName(Opcode::Load), "ld");
  EXPECT_STREQ(opcodeName(Opcode::NFLoad), "nfld");
  EXPECT_STREQ(opcodeName(Opcode::Prefetch), "pf");
  EXPECT_STREQ(opcodeName(Opcode::Beq), "beq");
  EXPECT_STREQ(opcodeName(Opcode::FAdd), "fadd");
}

TEST(Opcode, ExecClasses) {
  EXPECT_EQ(execClass(Opcode::Add), ExecClass::IntAlu);
  EXPECT_EQ(execClass(Opcode::FMul), ExecClass::FpAlu);
  EXPECT_EQ(execClass(Opcode::Load), ExecClass::Mem);
  EXPECT_EQ(execClass(Opcode::Store), ExecClass::Mem);
  EXPECT_EQ(execClass(Opcode::Prefetch), ExecClass::Mem);
  EXPECT_EQ(execClass(Opcode::Jump), ExecClass::Branch);
  EXPECT_EQ(execClass(Opcode::Halt), ExecClass::None);
}

TEST(Opcode, Latencies) {
  EXPECT_EQ(executionLatency(Opcode::Add), 1u);
  EXPECT_EQ(executionLatency(Opcode::Mul), 3u);
  EXPECT_EQ(executionLatency(Opcode::FAdd), 4u);
  EXPECT_EQ(executionLatency(Opcode::FDiv), 12u);
}

TEST(Opcode, RegisterUsagePredicates) {
  EXPECT_TRUE(writesRd(Opcode::Load));
  EXPECT_TRUE(writesRd(Opcode::NFLoad));
  EXPECT_FALSE(writesRd(Opcode::Store));
  EXPECT_FALSE(writesRd(Opcode::Prefetch));
  EXPECT_FALSE(writesRd(Opcode::Beq));

  EXPECT_TRUE(readsRs1(Opcode::Load));
  EXPECT_FALSE(readsRs1(Opcode::LoadImm));
  EXPECT_FALSE(readsRs1(Opcode::Jump));

  EXPECT_TRUE(readsRs2(Opcode::Store)); // the stored value
  EXPECT_TRUE(readsRs2(Opcode::Beq));
  EXPECT_FALSE(readsRs2(Opcode::AddI));
  EXPECT_FALSE(readsRs2(Opcode::Prefetch));
}

TEST(Opcode, Categories) {
  EXPECT_TRUE(isLoad(Opcode::Load));
  EXPECT_TRUE(isLoad(Opcode::NFLoad));
  EXPECT_FALSE(isLoad(Opcode::Prefetch));
  EXPECT_TRUE(isMemAccess(Opcode::Prefetch));
  EXPECT_TRUE(isConditionalBranch(Opcode::Bge));
  EXPECT_FALSE(isConditionalBranch(Opcode::Jump));
  EXPECT_TRUE(isBranch(Opcode::Jump));
}

TEST(Instruction, Factories) {
  Instruction Ld = makeLoad(5, 3, 16);
  EXPECT_EQ(Ld.Op, Opcode::Load);
  EXPECT_EQ(Ld.Rd, 5);
  EXPECT_EQ(Ld.Rs1, 3);
  EXPECT_EQ(Ld.Imm, 16);
  EXPECT_FALSE(Ld.Synthetic);

  Instruction Pf = makePrefetch(2, 128);
  EXPECT_EQ(Pf.Op, Opcode::Prefetch);
  EXPECT_EQ(Pf.Rs1, 2);
  EXPECT_EQ(Pf.Imm, 128);

  Instruction Br = makeBranch(Opcode::Blt, 1, 2, 0x42);
  EXPECT_EQ(static_cast<Addr>(Br.Imm), 0x42u);
  EXPECT_TRUE(Br.isConditionalBranch());
}

TEST(Instruction, ToStringFormats) {
  EXPECT_EQ(toString(makeLoad(5, 3, 16)), "ld r5, 16(r3)");
  EXPECT_EQ(toString(makeStore(3, -8, 7)), "st -8(r3), r7");
  EXPECT_EQ(toString(makePrefetch(1, 64)), "pf 64(r1)");
  EXPECT_EQ(toString(makeJump(0x1000)), "jmp 0x1000");
  EXPECT_EQ(toString(makeMove(2, 9)), "move r2, r9");
  Instruction Synth = makePrefetch(1, 0);
  Synth.Synthetic = true;
  EXPECT_NE(toString(Synth).find("<synthetic>"), std::string::npos);
}

TEST(ProgramBuilder, LabelsAndFixups) {
  ProgramBuilder B(0x100);
  B.loadImm(1, 0);
  B.label("top");
  B.addi(1, 1, 1);
  B.blt(1, 2, "top");     // backward reference
  B.beq(1, 2, "done");    // forward reference
  B.nop();
  B.label("done");
  B.halt();
  Program P = B.finish();

  EXPECT_EQ(P.basePC(), 0x100u);
  EXPECT_EQ(P.entryPC(), 0x100u);
  EXPECT_EQ(P.size(), 6u);
  // blt at 0x102 targets "top" = 0x101.
  EXPECT_EQ(static_cast<Addr>(P.at(0x102).Imm), 0x101u);
  // beq at 0x103 targets "done" = 0x105.
  EXPECT_EQ(static_cast<Addr>(P.at(0x103).Imm), 0x105u);
}

TEST(ProgramBuilder, EntryHere) {
  ProgramBuilder B(0x10);
  B.nop();
  B.entryHere();
  B.halt();
  Program P = B.finish();
  EXPECT_EQ(P.entryPC(), 0x11u);
}

TEST(Program, BoundsAndMutation) {
  ProgramBuilder B(0x20);
  B.nop().halt();
  Program P = B.finish();
  EXPECT_TRUE(P.contains(0x20));
  EXPECT_TRUE(P.contains(0x21));
  EXPECT_FALSE(P.contains(0x22));
  // Patching in place (what BinaryPatcher does).
  P.at(0x20) = makeJump(0x21);
  EXPECT_EQ(P.at(0x20).Op, Opcode::Jump);
}

TEST(Program, Disassemble) {
  ProgramBuilder B(0x40);
  B.load(1, 2, 8).halt();
  Program P = B.finish();
  std::string D = P.disassemble();
  EXPECT_NE(D.find("0x40: ld r1, 8(r2)"), std::string::npos);
  EXPECT_NE(D.find("0x41: halt"), std::string::npos);
}

TEST(ProgramBuilder, BuilderIsReusableAfterFinish) {
  ProgramBuilder B;
  B.nop().halt();
  Program P1 = B.finish();
  B.label("l").addi(1, 1, 1).jump("l").halt();
  Program P2 = B.finish();
  EXPECT_EQ(P1.size(), 2u);
  EXPECT_EQ(P2.size(), 3u);
}
