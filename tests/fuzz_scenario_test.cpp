//===- fuzz_scenario_test.cpp - Differential properties of fuzzed runs -----===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The property harness over the generative scenario space: for seeds drawn
// across the knob space, (1) the generator is a pure function of
// seed+knobs down to instruction encodings, (2) spec parsing accepts the
// documented grammar and rejects everything else with a message, (3) a
// scenario's registry export and selector decision trace are bit-identical
// across repeated runs and across the serial vs parallel experiment
// runner, and (4) self-repair re-converges within a bounded number of
// delinquent-load events when a fault plan shifts the latency regime
// mid-run — on programs no human wrote.
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "sim/Simulation.h"
#include "workloads/Workloads.h"
#include "workloads/fuzz/FuzzGenerator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace trident;

namespace {

/// Canonical specs spread over the knob space; reused by several suites.
const char *kScenarios[] = {
    "fuzz@11",
    "fuzz@12:wset=1024,entropy=650",
    "fuzz@13:segs=6,branch=400",
    "fuzz@14:wset=32768,phase=900,streams=8",
};

/// Byte-wise equality of two programs, not just hash equality.
bool sameProgram(const Program &A, const Program &B) {
  if (A.size() != B.size() || A.basePC() != B.basePC() ||
      A.entryPC() != B.entryPC())
    return false;
  for (Addr PC = A.basePC(); PC < A.endPC(); ++PC)
    if (A.at(PC).encode() != B.at(PC).encode())
      return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generator determinism
//===----------------------------------------------------------------------===//

TEST(FuzzScenario, GeneratorIsAPureFunctionOfSeedAndKnobs) {
  for (const char *Spec : kScenarios) {
    Workload A = makeWorkload(Spec);
    Workload B = makeWorkload(Spec);
    EXPECT_TRUE(sameProgram(A.Prog, B.Prog)) << Spec;
    EXPECT_EQ(A.ProgramHash, B.ProgramHash) << Spec;
    EXPECT_EQ(A.Name, B.Name) << Spec;
    EXPECT_NE(A.ProgramHash, 0u) << Spec;
  }
  // Different seeds and different knobs must actually change the program.
  EXPECT_NE(makeFuzzWorkload(1).ProgramHash, makeFuzzWorkload(2).ProgramHash);
  FuzzKnobs K;
  K.EntropyPermille = 900;
  EXPECT_NE(makeFuzzWorkload(1).ProgramHash, makeFuzzWorkload(1, K).ProgramHash);
}

TEST(FuzzScenario, NamesAreCanonicalAndRoundTrip) {
  // A canonical spec resolves to itself.
  for (const char *Spec : kScenarios)
    EXPECT_EQ(makeWorkload(Spec).Name, Spec);
  // Knob order is normalized: any accepted spelling of the same scenario
  // resolves to one canonical name (one memo-cache key, one golden file).
  Workload A = makeWorkload("fuzz@14:wset=32768,phase=900,streams=8");
  Workload B = makeWorkload("fuzz@14:streams=8,phase=900,wset=32768");
  EXPECT_EQ(A.Name, B.Name);
  EXPECT_EQ(A.ProgramHash, B.ProgramHash);
  // Default-valued knobs spelled out explicitly normalize away.
  Workload C = makeWorkload("fuzz@11:segs=3");
  EXPECT_EQ(C.Name, "fuzz@11");
  EXPECT_EQ(C.ProgramHash, makeWorkload("fuzz@11").ProgramHash);
}

TEST(FuzzScenario, SpecParsingRejectsMalformedInput) {
  uint64_t Seed;
  FuzzKnobs K;
  std::string Err;
  EXPECT_TRUE(parseFuzzSpec("fuzz@7", Seed, K, &Err)) << Err;
  EXPECT_EQ(Seed, 7u);
  EXPECT_TRUE(parseFuzzSpec("fuzz@7:wset=256,segs=2", Seed, K, &Err)) << Err;
  EXPECT_EQ(K.WsetKB, 256u);
  EXPECT_EQ(K.Segments, 2u);

  for (const char *Bad : {
           "fuzz@",                 // missing seed
           "fuzz@abc",              // non-numeric seed
           "fuzz@7:",               // empty knob list
           "fuzz@7:wset",           // knob without value
           "fuzz@7:wset=",          // empty value
           "fuzz@7:wset=abc",       // non-numeric value
           "fuzz@7:bogus=1",        // unknown knob
           "fuzz@7:wset=1",         // below range (min 64)
           "fuzz@7:segs=99",        // above range (max 8)
           "fuzz@7:entropy=1001",   // permille above 1000
           "fuzz@7:wset=256,,segs=2", // empty element
       }) {
    Err.clear();
    EXPECT_FALSE(parseFuzzSpec(Bad, Seed, K, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad << " rejected without a message";
  }
}

//===----------------------------------------------------------------------===//
// Execution identity
//===----------------------------------------------------------------------===//

TEST(FuzzScenario, RepeatedRunsExportByteIdenticalRegistries) {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 30'000;
  C.WarmupInstructions = 5'000;
  for (const char *Spec : kScenarios) {
    Workload W = makeWorkload(Spec);
    SimResult A = runSimulation(W, C);
    SimResult B = runSimulation(W, C);
    ASSERT_TRUE(A.Registry && B.Registry) << Spec;
    EXPECT_EQ(A.Registry->toJsonl(), B.Registry->toJsonl()) << Spec;
    EXPECT_EQ(A.RegChecksum, B.RegChecksum) << Spec;
    EXPECT_EQ(A.Registry->counter("workload.program_hash"), W.ProgramHash)
        << Spec;
  }
}

TEST(FuzzScenario, SelectorDecisionTraceIsReproducible) {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 60'000;
  C.WarmupInstructions = 10'000;
  std::string Err;
  ASSERT_TRUE(SelectorConfig::parse("bandit", C.Selector, &Err)) << Err;
  Workload W = makeWorkload("fuzz@12:wset=1024,entropy=650");
  SimResult A = runSimulation(W, C);
  SimResult B = runSimulation(W, C);
  EXPECT_FALSE(A.SelectorTrace.empty());
  EXPECT_TRUE(A.SelectorTrace == B.SelectorTrace)
      << "bandit decision sequence diverged between identical runs";
  EXPECT_EQ(A.SelectorFinalUnit, B.SelectorFinalUnit);
  ASSERT_TRUE(A.Registry && B.Registry);
  EXPECT_EQ(A.Registry->toJsonl(), B.Registry->toJsonl());
}

TEST(FuzzScenario, SerialAndParallelRunnersAgreeOnFuzzedScenarios) {
  // Every scenario under both the raw-hardware and the Trident config;
  // cache off so the 1-thread and 4-thread pools both really simulate.
  std::vector<ExperimentJob> Jobs;
  for (const char *Spec : kScenarios) {
    Workload W = makeWorkload(Spec);
    SimConfig Hw = SimConfig::hwBaseline();
    Hw.SimInstructions = 20'000;
    Hw.WarmupInstructions = 4'000;
    Jobs.push_back(ExperimentJob{W, Hw});
    SimConfig Tr = SimConfig::withMode(PrefetchMode::SelfRepairing);
    Tr.SimInstructions = 20'000;
    Tr.WarmupInstructions = 4'000;
    Jobs.push_back(ExperimentJob{W, Tr});
  }
  auto runWith = [&](unsigned Threads) {
    ExperimentRunnerOptions O;
    O.Threads = Threads;
    O.UseCache = false;
    ExperimentRunner R(O);
    return R.runBatch(Jobs);
  };
  auto Serial = runWith(1);
  auto Parallel = runWith(4);
  ASSERT_EQ(Serial.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    ASSERT_TRUE(Serial[I] && Parallel[I]) << "job " << I;
    EXPECT_EQ(Serial[I]->Registry->toJsonl(), Parallel[I]->Registry->toJsonl())
        << Jobs[I].W.Name << " under " << Jobs[I].Config.HwPf
        << " diverged between serial and parallel execution";
  }
}

//===----------------------------------------------------------------------===//
// Self-repair under faults, on generated programs
//===----------------------------------------------------------------------===//

TEST(FuzzScenario, FaultedRunsReconvergeAndStayDeterministic) {
  // A latency-regime shift mid-measurement (the self_repair_test fault
  // triple: permanent spike + DLT and cache eviction), injected into a
  // fuzzed program the repair logic has never seen.
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 120'000;
  C.WarmupInstructions = 10'000;
  {
    FaultAction Spike;
    Spike.Kind = FaultKind::LatencySpike;
    Spike.At = 400'000; // absolute cycle, safely inside the long window
    Spike.ExtraMemLatency = 900;
    C.Faults.Actions.push_back(Spike);
    FaultAction Dlt = Spike;
    Dlt.Kind = FaultKind::EvictDlt;
    C.Faults.Actions.push_back(Dlt);
    FaultAction Caches = Spike;
    Caches.Kind = FaultKind::EvictCaches;
    C.Faults.Actions.push_back(Caches);
  }
  Workload W = makeWorkload("fuzz@11");
  SimResult A = runSimulation(W, C);
  ASSERT_EQ(A.Faults.Injected, 3u)
      << "the fault plan never fired inside the run window";
  EXPECT_GE(A.Faults.DetectionEvents, 1u)
      << "no delinquent-load re-detection after the regime shift";
  // Bounded re-convergence: the monitors must re-detect within the DLT's
  // own reaction time, not eventually. The bound is generous (hundreds of
  // thousands of cycles would mean the repair path is dead, not slow).
  ASSERT_GT(A.Faults.DetectionEvents, 0u);
  EXPECT_LE(A.Faults.DetectionCyclesTotal / A.Faults.DetectionEvents,
            200'000u)
      << "mean fault-to-redetection latency is unboundedly large";
  // And the whole faulted run is reproducible, byte for byte.
  SimResult B = runSimulation(W, C);
  ASSERT_TRUE(A.Registry && B.Registry);
  EXPECT_EQ(A.Registry->toJsonl(), B.Registry->toJsonl());
}

//===----------------------------------------------------------------------===//
// Mix invariants on fuzzed scenarios
//===----------------------------------------------------------------------===//

TEST(FuzzScenario, FuzzedMixesHoldTheSoloInvariants) {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 20'000;
  C.WarmupInstructions = 4'000;
  C.MixWith = {"fuzz@13:segs=6,branch=400", "art"};
  Workload W = makeWorkload("fuzz@11");
  SimResult A = runSimulation(W, C);
  SimResult B = runSimulation(W, C);
  EXPECT_EQ(A.Instructions, C.SimInstructions);
  ASSERT_EQ(A.MixLanes.size(), 2u);
  EXPECT_EQ(A.MixLanes[0].Workload, "fuzz@13:segs=6,branch=400");
  EXPECT_EQ(A.MixLanes[1].Workload, "art");
  // Co-runners make real progress (the scheduler is not starving lanes)...
  EXPECT_GT(A.MixLanes[0].Instructions, 0u);
  EXPECT_GT(A.MixLanes[1].Instructions, 0u);
  // ...and lane clocks stay within one quantum of the primary's window
  // (the round-robin boundary contract).
  for (const SimResult::MixLane &L : A.MixLanes)
    EXPECT_LE(L.Cycles, A.Cycles + 2 * C.MixQuantumCycles) << L.Workload;
  ASSERT_TRUE(A.Registry && B.Registry);
  EXPECT_EQ(A.Registry->toJsonl(), B.Registry->toJsonl());
}
