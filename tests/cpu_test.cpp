//===- cpu_test.cpp - Unit tests for the SMT core ---------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "cpu/SmtCore.h"
#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {

/// Simple code space over a plain program (no code cache).
class ProgramSpace final : public CodeSpace {
public:
  explicit ProgramSpace(Program &Prog) : P(Prog) {}
  const Instruction &fetch(Addr PC) const override { return P.at(PC); }

private:
  Program &P;
};

struct Machine {
  Program Prog;
  DataMemory Data;
  MemorySystem Mem{MemSystemConfig::baseline()};
  std::unique_ptr<ProgramSpace> Space;
  std::unique_ptr<SmtCore> Core;

  explicit Machine(Program P, CoreConfig CC = CoreConfig::baseline())
      : Prog(std::move(P)) {
    Space = std::make_unique<ProgramSpace>(Prog);
    Core = std::make_unique<SmtCore>(CC, *Space, Data, Mem);
    Core->startContext(0, Prog.entryPC());
  }

  SmtCore::StopReason run(uint64_t N = 1'000'000) {
    return Core->run(N, /*CycleLimit=*/10'000'000);
  }
};

} // namespace

TEST(SmtCore, AluSemantics) {
  ProgramBuilder B;
  B.loadImm(1, 7).loadImm(2, 3);
  B.alu(Opcode::Add, 3, 1, 2);
  B.alu(Opcode::Sub, 4, 1, 2);
  B.alu(Opcode::Mul, 5, 1, 2);
  B.alu(Opcode::And, 6, 1, 2);
  B.alu(Opcode::Or, 7, 1, 2);
  B.alu(Opcode::Xor, 8, 1, 2);
  B.aluImm(Opcode::ShlI, 9, 1, 2);
  B.aluImm(Opcode::ShrI, 10, 1, 1);
  B.aluImm(Opcode::SubI, 11, 1, 10);
  B.halt();
  Machine M(B.finish());
  EXPECT_EQ(M.run(), SmtCore::StopReason::Halted);
  EXPECT_EQ(M.Core->getReg(0, 3), 10u);
  EXPECT_EQ(M.Core->getReg(0, 4), 4u);
  EXPECT_EQ(M.Core->getReg(0, 5), 21u);
  EXPECT_EQ(M.Core->getReg(0, 6), 3u);
  EXPECT_EQ(M.Core->getReg(0, 7), 7u);
  EXPECT_EQ(M.Core->getReg(0, 8), 4u);
  EXPECT_EQ(M.Core->getReg(0, 9), 28u);
  EXPECT_EQ(M.Core->getReg(0, 10), 3u);
  EXPECT_EQ(M.Core->getReg(0, 11), static_cast<uint64_t>(-3));
}

TEST(SmtCore, ZeroRegisterIsHardwired) {
  ProgramBuilder B;
  B.loadImm(0, 99); // write to r0 ignored
  B.move(1, 0);
  B.halt();
  Machine M(B.finish());
  M.run();
  EXPECT_EQ(M.Core->getReg(0, 1), 0u);
}

TEST(SmtCore, LoadStoreRoundTrip) {
  ProgramBuilder B;
  B.loadImm(1, 0x10000).loadImm(2, 1234);
  B.store(1, 8, 2);
  B.load(3, 1, 8);
  B.halt();
  Machine M(B.finish());
  M.run();
  EXPECT_EQ(M.Core->getReg(0, 3), 1234u);
  EXPECT_EQ(M.Data.read64(0x10008), 1234u);
}

TEST(SmtCore, LoopExecutesCorrectCount) {
  ProgramBuilder B;
  B.loadImm(1, 0).loadImm(2, 100);
  B.label("loop");
  B.addi(1, 1, 1);
  B.blt(1, 2, "loop");
  B.halt();
  Machine M(B.finish());
  EXPECT_EQ(M.run(), SmtCore::StopReason::Halted);
  EXPECT_EQ(M.Core->getReg(0, 1), 100u);
  // 2 prologue + 100 * 2 loop + 1 halt committed instructions.
  EXPECT_EQ(M.Core->stats(0).CommittedOriginal, 2u + 200u + 1u);
}

TEST(SmtCore, ColdMissStallsDependents) {
  ProgramBuilder B;
  B.loadImm(1, 0x100000);
  B.load(2, 1, 0);         // cold: ~350+ cycles
  B.alu(Opcode::Add, 3, 2, 2); // dependent
  B.halt();
  Machine M(B.finish());
  M.run();
  EXPECT_GE(M.Core->now(), 350u);
}

TEST(SmtCore, IndependentMissesOverlap) {
  ProgramBuilder B;
  B.loadImm(1, 0x100000).loadImm(2, 0x200000).loadImm(3, 0x300000);
  B.load(4, 1, 0).load(5, 2, 0).load(6, 3, 0); // three independent misses
  B.alu(Opcode::Add, 7, 4, 5);
  B.alu(Opcode::Add, 7, 7, 6);
  B.halt();
  Machine M(B.finish());
  M.run();
  // Overlapped: far less than 3 x 350.
  EXPECT_LT(M.Core->now(), 700u);
}

TEST(SmtCore, MispredictPenaltyCharged) {
  // A data-dependent unpredictable branch pattern with a predictor that
  // will mispredict: compare cycles against an always-taken loop.
  CoreConfig CC = CoreConfig::baseline();
  auto runLoop = [&](bool UseAlternating) {
    ProgramBuilder B;
    B.loadImm(1, 0).loadImm(2, 2000).loadImm(5, 2);
    B.label("loop");
    B.addi(1, 1, 1);
    if (UseAlternating) {
      // r3 = r1 & 1; branch on it (alternates, but bimodal-friendly
      // patterns differ from pure taken).
      B.aluImm(Opcode::AndI, 3, 1, 1);
      B.beq(3, 0, "skip");
      B.nop();
      B.label("skip");
    } else {
      B.aluImm(Opcode::AndI, 3, 1, 1);
      B.nop();
      B.nop();
    }
    B.blt(1, 2, "loop");
    B.halt();
    Program P = B.finish();
    Machine M(P, CC);
    MetaPredictor BP;
    M.Core->setBranchPredictor(&BP);
    M.Core->startContext(0, P.entryPC());
    M.run();
    return M.Core->now();
  };
  // Sanity only: both complete; the alternating one is not absurdly slow
  // (the meta predictor learns the pattern).
  EXPECT_GT(runLoop(true), 0u);
  EXPECT_GT(runLoop(false), 0u);
}

TEST(SmtCore, OraclePredictionWithoutPredictor) {
  ProgramBuilder B;
  B.loadImm(1, 0).loadImm(2, 100);
  B.label("loop");
  B.addi(1, 1, 1);
  B.blt(1, 2, "loop");
  B.halt();
  Machine M(B.finish());
  M.run();
  EXPECT_EQ(M.Core->stats(0).BranchMispredicts, 0u);
}

TEST(SmtCore, SyntheticInstructionsNotCommitted) {
  ProgramBuilder B;
  B.loadImm(1, 0x10000);
  Instruction Pf = makePrefetch(1, 64);
  Pf.Synthetic = true;
  B.emit(Pf);
  B.halt();
  Machine M(B.finish());
  M.run();
  EXPECT_EQ(M.Core->stats(0).CommittedOriginal, 2u); // loadImm + halt
  EXPECT_EQ(M.Core->stats(0).IssuedTotal, 3u);
}

TEST(SmtCore, SyntheticMemOpsDoNotBlockThePipeline) {
  // A synthetic nfload depending on a cold-missing load must not stall
  // younger independent instructions (it defers instead).
  auto build = [&](bool WithSynthetic) {
    ProgramBuilder B;
    B.loadImm(1, 0x100000);
    B.load(2, 1, 0); // cold miss, 350 cycles
    if (WithSynthetic) {
      Instruction Nf = makeNFLoad(reg::FirstScratch, 2, 0);
      Nf.Synthetic = true;
      B.emit(Nf);
      Instruction Pf = makePrefetch(reg::FirstScratch, 0);
      Pf.Synthetic = true;
      B.emit(Pf);
    }
    for (int I = 0; I < 50; ++I)
      B.addi(10, 10, 1); // independent work
    B.halt();
    return B.finish();
  };
  Machine MWith(build(true));
  MWith.run();
  Machine MWithout(build(false));
  MWithout.run();
  // The synthetic pair costs issue slots but not a 350-cycle stall.
  EXPECT_LT(MWith.Core->now(), MWithout.Core->now() + 30);
}

TEST(SmtCore, StubRunsAtLowPriorityAndCompletes) {
  ProgramBuilder B;
  B.loadImm(1, 0).loadImm(2, 1000);
  B.label("loop");
  B.addi(1, 1, 1);
  B.blt(1, 2, "loop");
  B.halt();
  Machine M(B.finish());

  Cycle DoneAt = 0;
  M.Core->startStub(1, /*Instructions=*/500, /*StartupDelay=*/100,
                    {[](void *P, Cycle C) { *static_cast<Cycle *>(P) = C; },
                     &DoneAt});
  EXPECT_TRUE(M.Core->stubActive(1));
  M.run();
  EXPECT_FALSE(M.Core->stubActive(1));
  EXPECT_GE(DoneAt, 100u); // startup delay observed
  EXPECT_GE(M.Core->helperBusyCycles(), 100u);
  EXPECT_EQ(M.Core->stats(1).StubInstructions, 500u);
  // The main program still completed correctly.
  EXPECT_EQ(M.Core->getReg(0, 1), 1000u);
}

TEST(SmtCore, StubChainingFromCompletionCallback) {
  ProgramBuilder B;
  B.loadImm(1, 0).loadImm(2, 4000);
  B.label("loop");
  B.addi(1, 1, 1);
  B.blt(1, 2, "loop");
  B.halt();
  Machine M(B.finish());

  struct Chain {
    SmtCore &Core;
    int Completions = 0;
    static void fire(void *P, Cycle) {
      Chain &S = *static_cast<Chain *>(P);
      if (++S.Completions < 3)
        S.Core.startStub(1, 100, 0, {&Chain::fire, P});
    }
  };
  Chain C{*M.Core};
  M.Core->startStub(1, 100, 0, {&Chain::fire, &C});
  M.run();
  EXPECT_EQ(C.Completions, 3);
}

TEST(SmtCore, BusSeesCommitsLoadsBranches) {
  struct Recorder final : EventSubscriber {
    unsigned Commits = 0, Loads = 0, Branches = 0;
    void onEvent(const HardwareEvent &E) override {
      switch (E.Kind) {
      case EventKind::Commit:
        ++Commits;
        break;
      case EventKind::LoadOutcome:
        ++Loads;
        break;
      case EventKind::Branch:
        ++Branches;
        break;
      default:
        break;
      }
    }
  };
  ProgramBuilder B;
  B.loadImm(1, 0x10000).loadImm(2, 0).loadImm(3, 5);
  B.label("loop");
  B.load(4, 1, 0);
  B.addi(2, 2, 1);
  B.blt(2, 3, "loop");
  B.halt();
  Machine M(B.finish());
  Recorder R;
  EventBus Bus;
  Bus.subscribe(&R, eventMaskOf(EventKind::Commit) |
                        eventMaskOf(EventKind::LoadOutcome) |
                        eventMaskOf(EventKind::Branch));
  M.Core->setEventBus(&Bus);
  M.run();
  EXPECT_EQ(R.Loads, 5u);
  EXPECT_EQ(R.Branches, 5u);
  EXPECT_EQ(R.Commits, 3u + 15u + 1u);
  EXPECT_EQ(Bus.published(EventKind::LoadOutcome), 5u);
  EXPECT_EQ(Bus.published(EventKind::Commit), 19u);
}

TEST(SmtCore, CycleLimitStops) {
  ProgramBuilder B;
  B.label("spin").jump("spin").halt();
  Machine M(B.finish());
  EXPECT_EQ(M.Core->run(~0ull, /*CycleLimit=*/1000),
            SmtCore::StopReason::CycleLimit);
}

TEST(SmtCore, ClearStatsKeepsMachineState) {
  ProgramBuilder B;
  B.loadImm(1, 42).halt();
  Machine M(B.finish());
  M.run();
  M.Core->clearStats();
  EXPECT_EQ(M.Core->stats(0).CommittedOriginal, 0u);
  EXPECT_EQ(M.Core->getReg(0, 1), 42u); // registers survive
}
