//===- fuzz_golden_test.cpp - Golden corpus of fuzzed scenarios ------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Pins five seeded fuzz scenarios — spread across the generator's knob
// space — to committed stat snapshots, exactly like golden_stats_test does
// for the 14 named workloads. Each snapshot includes the generator's
// workload.program_hash line, so a golden match certifies BOTH that the
// generator still emits the same program for the seed AND that the machine
// still executes it to the same statistics. Refresh intentionally via
// tools/update_goldens.sh (TRIDENT_UPDATE_GOLDENS regenerates here too).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"
#include "workloads/Workloads.h"
#include "workloads/fuzz/FuzzGenerator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef TRIDENT_GOLDEN_DIR
#error "TRIDENT_GOLDEN_DIR must be defined by the build"
#endif

using namespace trident;

namespace {

/// One corpus scenario: a canonical fuzz spec and the snapshot filename it
/// pins (spec punctuation would make awkward filenames, so snapshots are
/// keyed by seed).
struct Scenario {
  const char *Spec;
  const char *File;
};

/// The corpus spreads the knob space: defaults, a small working set, high
/// entropy + heavy branching, many segments with fast phase changes, and
/// many streams over a large working set.
constexpr Scenario kCorpus[] = {
    {"fuzz@101", "fuzz_101"},
    {"fuzz@102:wset=2048", "fuzz_102"},
    {"fuzz@103:entropy=800,branch=500", "fuzz_103"},
    {"fuzz@104:segs=5,phase=1500", "fuzz_104"},
    {"fuzz@105:wset=16384,streams=10", "fuzz_105"},
};

/// Same budget and mode as golden_stats_test, so the two corpora exercise
/// the same machine shape.
SimConfig goldenConfig() {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;
  return C;
}

std::string goldenPath(const std::string &File) {
  return std::string(TRIDENT_GOLDEN_DIR) + "/" + File + ".jsonl";
}

std::string firstDiff(const std::string &Expected, const std::string &Actual) {
  std::istringstream E(Expected), A(Actual);
  std::string LE, LA;
  for (unsigned Line = 1;; ++Line) {
    bool HaveE = static_cast<bool>(std::getline(E, LE));
    bool HaveA = static_cast<bool>(std::getline(A, LA));
    if (!HaveE && !HaveA)
      return "(no difference found line-wise; byte difference only)";
    if (LE != LA || HaveE != HaveA) {
      std::ostringstream Msg;
      Msg << "first difference at line " << Line << ":\n  golden: "
          << (HaveE ? LE : "<eof>") << "\n  actual: " << (HaveA ? LA : "<eof>");
      return Msg.str();
    }
  }
}

} // namespace

TEST(FuzzGolden, CorpusMatchesCommittedSnapshots) {
  const bool Update = std::getenv("TRIDENT_UPDATE_GOLDENS") != nullptr;
  for (const Scenario &S : kCorpus) {
    Workload W = makeWorkload(S.Spec);
    // The corpus lists canonical specs, so the resolved name round-trips;
    // a mismatch means the canonical knob order changed under the corpus.
    ASSERT_EQ(W.Name, S.Spec);
    SimResult R = runSimulation(W, goldenConfig());
    ASSERT_TRUE(R.Registry) << S.Spec;
    // The snapshot pins the generator output itself, not just its
    // execution: the hash must be exported and match the workload's.
    ASSERT_TRUE(R.Registry->has("workload.program_hash")) << S.Spec;
    ASSERT_EQ(R.Registry->counter("workload.program_hash"), W.ProgramHash)
        << S.Spec;
    const std::string Actual = R.Registry->toJsonl();

    if (Update) {
      std::ofstream Out(goldenPath(S.File),
                        std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(Out) << "cannot write " << goldenPath(S.File);
      Out << Actual;
      continue;
    }

    std::ifstream In(goldenPath(S.File), std::ios::binary);
    ASSERT_TRUE(In) << "missing golden snapshot " << goldenPath(S.File)
                    << " — run tools/update_goldens.sh and commit the result";
    std::ostringstream Buf;
    Buf << In.rdbuf();
    const std::string Expected = Buf.str();

    if (Expected != Actual) {
      std::filesystem::create_directories("golden_diff");
      std::ofstream Dump("golden_diff/" + std::string(S.File) + ".jsonl",
                         std::ios::binary | std::ios::trunc);
      Dump << Actual;
    }
    EXPECT_TRUE(Expected == Actual)
        << S.Spec << ": stat export drifted from tests/golden/" << S.File
        << ".jsonl (actual dumped to golden_diff/" << S.File << ".jsonl; "
        << "regen via tools/update_goldens.sh if the change is intended)\n"
        << firstDiff(Expected, Actual);
  }
}

// A quick sanity sweep over seeds outside the pinned corpus: every seed
// must yield a runnable program that commits its full budget (fuzzed
// programs loop forever by construction — they never halt early) and
// export its program hash.
TEST(FuzzGolden, FreshSeedsRunToBudget) {
  SimConfig C = SimConfig::hwBaseline();
  C.SimInstructions = 10'000;
  C.WarmupInstructions = 2'000;
  for (uint64_t Seed : {201ull, 202ull, 203ull}) {
    Workload W = makeFuzzWorkload(Seed);
    ASSERT_GT(W.Prog.size(), 0u) << Seed;
    ASSERT_NE(W.ProgramHash, 0u) << Seed;
    SimResult R = runSimulation(W, C);
    EXPECT_EQ(R.Instructions, C.SimInstructions) << Seed;
    EXPECT_FALSE(R.Halted) << Seed;
    ASSERT_TRUE(R.Registry) << Seed;
    EXPECT_EQ(R.Registry->counter("workload.program_hash"), W.ProgramHash)
        << Seed;
  }
}
