//===- runner_race_test.cpp - TSan stress + invariant death tests ---------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Two jobs:
//
//  * Exercise the ExperimentRunner memo cache's synchronization contract
//    (ExperimentRunner.h) under maximum contention so a TSan build of this
//    test audits every documented race: many runners on many threads
//    hammering the process-wide cache with *colliding* keys, interleaved
//    with clearResultCache()/resultCacheSize() calls. The test passes by
//    not crashing/racing and by every returned result being bit-identical
//    for a given key.
//
//  * Pin down the TRIDENT_CHECK/TRIDENT_DCHECK failure contract: a false
//    condition must abort the process (so sanitizers, ctest, and the
//    figure harness all observe the failure), and the formatted context
//    must reach stderr. DCHECK death is only expected in checked builds.
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "support/Check.h"

#include "gtest/gtest.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace trident;

namespace {

/// Tiny budget: the point is scheduling pressure, not simulated cycles.
SimConfig tinyConfig(PrefetchMode Mode, uint64_t SimInstructions = 5'000) {
  SimConfig C = SimConfig::withMode(Mode);
  C.WarmupInstructions = 1'000;
  C.SimInstructions = SimInstructions;
  return C;
}

// --------------------------------------------------------------------------
// TSan stress: colliding keys across many concurrent runners.
// --------------------------------------------------------------------------

TEST(RunnerRaceStress, CollidingKeysAcrossConcurrentRunners) {
  ExperimentRunner::clearResultCache();

  // Two distinct keys only, so every thread collides with every other
  // thread on the same cache entries nearly all the time.
  const Workload Wa = makeWorkload("mcf");
  const Workload Wb = makeWorkload("swim");
  const SimConfig Ca = tinyConfig(PrefetchMode::SelfRepairing);
  const SimConfig Cb = tinyConfig(PrefetchMode::Basic);

  const unsigned Launchers =
      std::max(4u, std::thread::hardware_concurrency());
  std::atomic<bool> Mismatch{false};

  std::vector<std::thread> Threads;
  Threads.reserve(Launchers);
  for (unsigned T = 0; T < Launchers; ++T) {
    Threads.emplace_back([&, T] {
      // Each launcher owns a pool; pools share only the memo cache.
      ExperimentRunner Runner({/*Threads=*/2, /*UseCache=*/true});
      std::vector<ExperimentJob> Jobs;
      for (int I = 0; I < 4; ++I) {
        Jobs.push_back(ExperimentJob{Wa, Ca});
        Jobs.push_back(ExperimentJob{Wb, Cb});
      }
      for (int Round = 0; Round < 3; ++Round) {
        auto Results = Runner.runBatch(Jobs);
        // Reads of a published (immutable) result must be safe while other
        // threads are still simulating/inserting the same keys.
        for (size_t I = 0; I + 2 <= Results.size(); I += 2) {
          if (Results[I]->RegChecksum != Results[0]->RegChecksum ||
              Results[I + 1]->RegChecksum != Results[1]->RegChecksum)
            Mismatch = true;
        }
        // One launcher also races the cache-management entry points, which
        // the contract says take the same mutex as every other access.
        if (T == 0)
          (void)ExperimentRunner::resultCacheSize();
        if (T == 1 && Round == 1)
          ExperimentRunner::clearResultCache();
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_FALSE(Mismatch.load())
      << "colliding-key results diverged across racing runners";
  ExperimentRunner::clearResultCache();
}

TEST(RunnerRaceStress, DuplicateHeavyBatchOnMaxThreads) {
  ExperimentRunner::clearResultCache();
  // A single runner at max width where *every* job shares one key: all
  // workers race the batch-front lookup and first-emplace-wins insertion.
  ExperimentRunner Runner({/*Threads=*/0, /*UseCache=*/true});
  const Workload W = makeWorkload("equake");
  const SimConfig C = tinyConfig(PrefetchMode::SelfRepairing);

  std::vector<ExperimentJob> Jobs(4 * Runner.threadCount(),
                                  ExperimentJob{W, C});
  auto Results = Runner.runBatch(Jobs);
  ASSERT_EQ(Results.size(), Jobs.size());
  for (const auto &R : Results) {
    ASSERT_NE(R, nullptr);
    EXPECT_EQ(R.get(), Results[0].get())
        << "duplicate keys in one batch must coalesce to one object";
  }
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 1u);
  ExperimentRunner::clearResultCache();
}

// --------------------------------------------------------------------------
// TRIDENT_CHECK failure contract.
// --------------------------------------------------------------------------

TEST(CheckDeathTest, CheckAbortsWithFormattedContext) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  int Got = 3;
  EXPECT_DEATH(TRIDENT_CHECK(Got == 4, "expected %d slots, found %d", 4, Got),
               "TRIDENT_CHECK failed: Got == 4");
  EXPECT_DEATH(TRIDENT_CHECK(Got == 4, "expected %d slots, found %d", 4, Got),
               "expected 4 slots, found 3");
}

TEST(CheckDeathTest, CheckWithoutMessageStillAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TRIDENT_CHECK(1 + 1 == 3),
               "TRIDENT_CHECK failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, UnreachableAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TRIDENT_UNREACHABLE("mode %d has no handler", 7),
               "mode 7 has no handler");
}

TEST(CheckDeathTest, DcheckMatchesBuildFlavor) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#if TRIDENT_DCHECKS_ENABLED
  EXPECT_DEATH(TRIDENT_DCHECK(false, "checked-build invariant"),
               "checked-build invariant");
#else
  // Release flavor: DCHECKs compile out; the condition must not even be
  // evaluated.
  bool Evaluated = false;
  TRIDENT_DCHECK(([&] {
                   Evaluated = true;
                   return false;
                 }()),
                 "must be compiled out");
  EXPECT_FALSE(Evaluated);
#endif
}

} // namespace
