//===- integration_test.cpp - Full-stack Trident runtime tests -------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// These run small programs through the complete system — core, memory,
// stream buffers, Trident runtime with the self-repairing prefetcher —
// and check the end-to-end behaviours the paper describes.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "sim/Simulation.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {

constexpr Addr ListBase = 0x1000'0000;
constexpr Addr ArrayBase = 0x2000'0000;

/// Sequentially allocated pointer chase with a far field (the quickstart
/// workload): DLT-stride chase + same-object far field.
Workload chaseWorkload() {
  ProgramBuilder B;
  B.loadImm(1, ListBase);
  B.loadImm(4, 0).loadImm(5, int64_t(1) << 40);
  B.label("loop");
  B.load(1, 1, 0);
  B.load(6, 1, 8).load(7, 1, 72);
  B.fadd(8, 6, 7);
  B.fadd(9, 9, 8);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  Workload W;
  W.Name = "test-chase";
  W.Prog = B.finish();
  W.Init = [](DataMemory &M) {
    buildLinkedList(M, ListBase, 1 << 16, 128, 0, /*Shuffled=*/false);
  };
  return W;
}

/// Pure stride streaming loop over one huge array.
Workload strideWorkload() {
  ProgramBuilder B;
  B.loadImm(1, ArrayBase);
  B.loadImm(27, ArrayBase + (int64_t(1) << 33));
  B.label("loop");
  B.load(6, 1, 0);
  B.fadd(9, 9, 6);
  B.addi(1, 1, 128);
  B.blt(1, 27, "loop");
  B.halt();
  Workload W;
  W.Name = "test-stride";
  W.Prog = B.finish();
  W.Init = [](DataMemory &) {};
  return W;
}

SimConfig quick(PrefetchMode Mode, uint64_t N = 600'000) {
  SimConfig C = SimConfig::withMode(Mode);
  C.WarmupInstructions = 50'000;
  C.SimInstructions = N;
  return C;
}

SimConfig quickBaseline(uint64_t N = 600'000) {
  SimConfig C = SimConfig::hwBaseline();
  C.WarmupInstructions = 50'000;
  C.SimInstructions = N;
  return C;
}

} // namespace

TEST(Integration, TraceGetsFormedAndLinked) {
  SimResult R = runSimulation(chaseWorkload(), quick(PrefetchMode::None));
  EXPECT_GE(R.Runtime.TracesInstalled, 1u);
  EXPECT_GT(R.Runtime.CommitsInTraces, R.Runtime.CommitsTotal / 2);
}

TEST(Integration, DelinquentLoadsTriggerInsertion) {
  SimResult R =
      runSimulation(chaseWorkload(), quick(PrefetchMode::SelfRepairing));
  EXPECT_GE(R.Runtime.DelinquentEvents, 1u);
  EXPECT_GE(R.Runtime.InsertionOptimizations, 1u);
  EXPECT_GE(R.Runtime.PrefetchInstructionsPlanned, 1u);
}

TEST(Integration, SelfRepairingImprovesPointerChase) {
  SimResult Base = runSimulation(chaseWorkload(), quickBaseline(1'000'000));
  SimResult Srp = runSimulation(chaseWorkload(),
                                quick(PrefetchMode::SelfRepairing, 1'000'000));
  EXPECT_GT(speedup(Srp, Base), 1.10);
  EXPECT_GE(Srp.Runtime.RepairOptimizations, 3u); // distance was adapted
  EXPECT_GT(Srp.Runtime.LastRepairDistance, 1);   // and climbed past 1
}

TEST(Integration, RepairsOnlyHappenInSelfRepairingMode) {
  SimResult Basic =
      runSimulation(chaseWorkload(), quick(PrefetchMode::Basic, 800'000));
  EXPECT_EQ(Basic.Runtime.RepairOptimizations, 0u);
  SimResult Whole = runSimulation(chaseWorkload(),
                                  quick(PrefetchMode::WholeObject, 800'000));
  EXPECT_EQ(Whole.Runtime.RepairOptimizations, 0u);
}

TEST(Integration, SemanticsUnchangedByOptimization) {
  // The optimizer must never change what the program computes: run the
  // same finite program under every mode and compare final register state
  // and committed counts.
  auto finiteChase = []() {
    ProgramBuilder B;
    B.loadImm(1, ListBase);
    B.loadImm(4, 0).loadImm(5, 30'000);
    B.label("loop");
    B.load(1, 1, 0);
    B.load(6, 1, 8).load(7, 1, 72);
    B.alu(Opcode::Add, 9, 9, 6);
    B.alu(Opcode::Add, 9, 9, 7);
    B.addi(4, 4, 1);
    B.blt(4, 5, "loop");
    B.halt();
    Workload W;
    W.Name = "finite-chase";
    W.Prog = B.finish();
    W.Init = [](DataMemory &M) {
      // Fields hold recognizable values.
      buildLinkedList(M, ListBase, 1 << 14, 128, 0, /*Shuffled=*/true, 99);
      for (uint64_t I = 0; I < (1 << 14); ++I) {
        M.write64(ListBase + I * 128 + 8, I * 3 + 1);
        M.write64(ListBase + I * 128 + 72, I * 7 + 2);
      }
    };
    return W;
  };

  // Reference: raw machine, no Trident.
  SimConfig Ref = quickBaseline(~0ull);
  Ref.WarmupInstructions = 0;
  Ref.SimInstructions = 100'000'000; // runs to Halt
  SimResult RRef = runSimulation(finiteChase(), Ref);

  for (PrefetchMode Mode :
       {PrefetchMode::None, PrefetchMode::Basic, PrefetchMode::WholeObject,
        PrefetchMode::SelfRepairing}) {
    SimConfig C = quick(Mode, 100'000'000);
    C.WarmupInstructions = 0;
    SimResult R = runSimulation(finiteChase(), C);
    EXPECT_TRUE(R.Halted);
    EXPECT_EQ(R.Instructions, RRef.Instructions)
        << "committed-instruction mismatch in mode "
        << prefetchModeName(Mode);
    EXPECT_EQ(R.RegChecksum, RRef.RegChecksum)
        << "register-state mismatch in mode " << prefetchModeName(Mode);
  }
}

TEST(Integration, OverheadModeNeverLinksTraces) {
  SimConfig C = quick(PrefetchMode::SelfRepairing);
  C.Runtime.LinkTraces = false;
  SimResult R = runSimulation(chaseWorkload(), C);
  EXPECT_GE(R.Runtime.TracesInstalled, 1u);
  EXPECT_EQ(R.Runtime.CommitsInTraces, 0u); // never executed from cache
  // The helper thread did run (that is the cost being measured, §5.1).
  EXPECT_GT(R.HelperBusyCycles, 0u);
}

TEST(Integration, OverheadIsSmall) {
  // Section 5.1: the total cost of running the optimizer without using
  // its traces is ~0.6%.
  SimResult Base = runSimulation(chaseWorkload(), quickBaseline());
  SimConfig C = quick(PrefetchMode::SelfRepairing);
  C.Runtime.LinkTraces = false;
  SimResult NoLink = runSimulation(chaseWorkload(), C);
  double Overhead = 1.0 - NoLink.Ipc / Base.Ipc;
  EXPECT_LT(Overhead, 0.03);
}

TEST(Integration, HelperActivityIsSmallFraction) {
  SimResult R =
      runSimulation(chaseWorkload(), quick(PrefetchMode::SelfRepairing));
  EXPECT_LT(R.helperActiveFraction(), 0.20);
  EXPECT_GT(R.helperActiveFraction(), 0.0);
}

TEST(Integration, StrideLoopCoverageIsHigh) {
  SimResult R = runSimulation(strideWorkload(),
                              quick(PrefetchMode::SelfRepairing, 1'000'000));
  // Practically all misses are inside the (single) hot trace.
  EXPECT_GT(R.Runtime.traceMissCoverage(), 0.9);
}

TEST(Integration, MatureFlagStopsEventStorms) {
  // A loop with unclassifiable random probes: its loads mature after the
  // first optimization attempt and stop raising events.
  ProgramBuilder B;
  B.loadImm(1, 0x3000'0000).loadImm(11, 12345);
  B.loadImm(4, 0).loadImm(5, int64_t(1) << 40);
  B.label("loop");
  B.aluImm(Opcode::MulI, 11, 11, 6364136223846793005ll);
  B.aluImm(Opcode::ShrI, 12, 11, 30);
  B.aluImm(Opcode::AndI, 12, 12, 0x00FF'FFF8);
  B.alu(Opcode::Add, 13, 1, 12);
  B.load(14, 13, 0);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  Workload W;
  W.Name = "random-probe";
  W.Prog = B.finish();
  W.Init = [](DataMemory &) {};

  SimResult R = runSimulation(W, quick(PrefetchMode::SelfRepairing));
  EXPECT_GE(R.Runtime.LoadsMatured, 1u);
  // Far fewer events than windows completed: maturing took effect.
  EXPECT_LT(R.Runtime.DelinquentEvents, 10u);
}

TEST(Integration, DeterministicAcrossRuns) {
  SimResult A =
      runSimulation(chaseWorkload(), quick(PrefetchMode::SelfRepairing));
  SimResult B =
      runSimulation(chaseWorkload(), quick(PrefetchMode::SelfRepairing));
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.Runtime.RepairOptimizations, B.Runtime.RepairOptimizations);
}

TEST(Integration, EstimateSeededRepairStillConverges) {
  // Section 5.3's "alternate strategy": seeding the distance with the
  // equation-2 estimate must behave like (not worse than) seeding with 1.
  SimConfig C1 = quick(PrefetchMode::SelfRepairing, 1'000'000);
  SimConfig CE = C1;
  CE.Runtime.SelfRepairInitialEstimate = true;
  SimResult R1 = runSimulation(chaseWorkload(), C1);
  SimResult RE = runSimulation(chaseWorkload(), CE);
  EXPECT_GT(RE.Ipc, R1.Ipc * 0.85);
  EXPECT_LT(RE.Ipc, R1.Ipc * 1.30);
}

TEST(Integration, PhaseChangeDetectionClearsMatureFlags) {
  // Two alternating hot loops, one of which contains an unclassifiable
  // probe load that matures; the trace-mix shift is a phase change.
  ProgramBuilder B;
  B.loadImm(1, 0x10000000ll).loadImm(2, 0x30000000ll);
  B.loadImm(26, 0x50000000ll);
  B.label("outer");
  B.loadImm(4, 0).loadImm(5, 20'000);
  B.label("p1");
  B.load(6, 1, 0);
  B.aluImm(Opcode::MulI, 11, 4, 2654435761ll);
  B.aluImm(Opcode::ShrI, 12, 11, 7);
  B.aluImm(Opcode::AndI, 12, 12, 0x00FF0FF8);
  B.alu(Opcode::Add, 13, 26, 12);
  B.load(14, 13, 0);
  B.aluImm(Opcode::AddI, 1, 1, 64);
  B.addi(4, 4, 1);
  B.blt(4, 5, "p1");
  B.loadImm(4, 0).loadImm(5, 20'000);
  B.label("p2");
  B.load(7, 2, 0);
  B.fadd(10, 10, 7);
  B.aluImm(Opcode::AddI, 2, 2, 4160);
  B.addi(4, 4, 1);
  B.blt(4, 5, "p2");
  B.jump("outer");
  B.halt();
  Workload W{"phased-test", "", B.finish(), [](DataMemory &) {}};

  SimConfig C = quick(PrefetchMode::SelfRepairing, 900'000);
  C.Runtime.ClearMatureOnPhaseChange = true;
  C.Runtime.PhaseIntervalCommits = 100'000;
  SimResult R = runSimulation(W, C);
  EXPECT_GE(R.Runtime.PhaseChangesDetected, 1u);
  EXPECT_GE(R.Runtime.MatureFlagsCleared, 1u);

  // And the hook defaults to off.
  SimConfig COff = quick(PrefetchMode::SelfRepairing, 900'000);
  SimResult ROff = runSimulation(W, COff);
  EXPECT_EQ(ROff.Runtime.PhaseChangesDetected, 0u);
}

TEST(Integration, RegistrationStructureTracksHelperSpawns) {
  // The Section 3.1 registration structure: initialized at runtime
  // creation, priority Low (the helper must not steal main-thread slots),
  // and counting helper invocations.
  Program Prog = chaseWorkload().Prog;
  DataMemory Data;
  chaseWorkload().Init(Data);
  MemorySystem Mem(MemSystemConfig::baseline());
  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreConfig::baseline(), Image, Data, Mem);
  EventBus Bus;
  TridentRuntime Runtime(RuntimeConfig::baseline(), Prog, Core, CC);
  Runtime.attach(Bus);
  Core.setEventBus(&Bus);
  Runtime.setEnabled(true);
  Core.startContext(0, Prog.entryPC());

  const RegistrationStructure &Reg = Runtime.registration();
  EXPECT_EQ(Reg.ThreadPriority, RegistrationStructure::Priority::Low);
  EXPECT_EQ(Reg.CodeCachePointer, CodeCache::Base);
  EXPECT_EQ(Reg.Invocations, 0u);

  Core.run(400'000, ~0ull);
  EXPECT_GE(Reg.Invocations, 2u); // trace formation + >=1 optimization
}

TEST(Integration, EventQueueOverflowDropsCleanly) {
  SimConfig C = quick(PrefetchMode::SelfRepairing, 800'000);
  C.Runtime.MaxPendingEvents = 0; // pathological: every event drops
  SimResult R = runSimulation(chaseWorkload(), C);
  // Events fire and are all dropped, monitoring keeps running, nothing
  // wedges, and no prefetching ever happens.
  EXPECT_GT(R.Runtime.EventsDropped, 0u);
  EXPECT_EQ(R.Runtime.InsertionOptimizations, 0u);
  EXPECT_EQ(R.Instructions, 800'000u);
}

TEST(Integration, TrampolineMigratesOldTraceGenerations) {
  // After a re-optimization installs generation 2, a thread spinning in
  // generation 1 must migrate: from then on commits come from the newest
  // region only. We check it indirectly: reinstalls happen and the final
  // IPC reflects prefetching (generation 2) rather than the bare trace.
  SimResult R = runSimulation(chaseWorkload(),
                              quick(PrefetchMode::SelfRepairing, 1'000'000));
  EXPECT_GE(R.Runtime.TraceReinstalls, 1u);
  EXPECT_GT(R.Runtime.LdHitPrefetched + R.Runtime.LdPartial, 0u);
}
