//===- core_test.cpp - Unit tests for the prefetch planner -----------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchPlanner.h"
#include "dlt/DelinquentLoadTable.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {

DltConfig testDlt() {
  DltConfig C;
  C.NumEntries = 64;
  C.Assoc = 2;
  C.MonitorWindow = 16;
  C.MissThreshold = 4;
  C.LatencyThreshold = 12;
  return C;
}

/// Makes PC's entry delinquent (full window, 100% misses at latency 300)
/// with the given address stride so classification sees it.
void makeDelinquent(DelinquentLoadTable &T, Addr PC, int64_t Stride = 64,
                    Addr Base = 0x100000) {
  for (unsigned I = 0; I < 16; ++I)
    T.update(PC, Base + I * Stride, true, 300);
}

/// Installed PC for base-body index I (identity mapping at base 0x40000000).
std::vector<Addr> identityPCs(size_t N) {
  std::vector<Addr> P(N);
  for (size_t I = 0; I < N; ++I)
    P[I] = 0x40000000 + I;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Classification (Section 3.4.1)
//===----------------------------------------------------------------------===//

TEST(Classifier, StrideViaTraceRecurrence) {
  // ld r5, 0(r2); addi r2, r2, 64 — classic stride loop.
  std::vector<Instruction> Body = {
      makeLoad(5, 2, 0),
      makeAluImm(Opcode::AddI, 2, 2, 64),
      makeBranch(Opcode::Blt, 2, 3, 0x10),
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  DL.PC = 0x40000000;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Stride);
  EXPECT_EQ(DL.Stride, 64);
  EXPECT_FALSE(DL.StrideFromDlt);
}

TEST(Classifier, SubIRecurrenceGivesNegativeStride) {
  std::vector<Instruction> Body = {
      makeLoad(5, 2, 0),
      makeAluImm(Opcode::SubI, 2, 2, 8),
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Stride);
  EXPECT_EQ(DL.Stride, -8);
}

TEST(Classifier, MultipleWritersBlockRecurrence) {
  std::vector<Instruction> Body = {
      makeLoad(5, 2, 0),
      makeAluImm(Opcode::AddI, 2, 2, 64),
      makeAluImm(Opcode::AddI, 2, 2, 8), // second writer
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  DL.PC = 0x40000000;
  P.classify(Body, DL, T);
  EXPECT_NE(DL.Class, LoadClass::Stride);
}

TEST(Classifier, StrideViaDltObservation) {
  // Pointer-looking code whose addresses the DLT saw striding (regular
  // allocation): hardware observation wins (Section 3.3).
  std::vector<Instruction> Body = {
      makeLoad(2, 2, 0), // self-chase
  };
  DelinquentLoadTable T(testDlt());
  makeDelinquent(T, 0x40000000, /*Stride=*/128);
  // Confidence needs 15 consecutive equal strides; add more updates.
  for (unsigned I = 16; I < 40; ++I)
    T.update(0x40000000, 0x100000 + I * 128, true, 300);
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  DL.PC = 0x40000000;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Stride);
  EXPECT_EQ(DL.Stride, 128);
  EXPECT_TRUE(DL.StrideFromDlt);
}

TEST(Classifier, SelfChasingPointer) {
  std::vector<Instruction> Body = {
      makeLoad(2, 2, 0), // p = p->next
      makeAlu(Opcode::FAdd, 5, 6, 7),
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  DL.PC = 0x40000000;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Pointer);
}

TEST(Classifier, PointerViaLaterUseAsBase) {
  std::vector<Instruction> Body = {
      makeLoad(3, 2, 0),  // rd=r3 ...
      makeLoad(5, 3, 16), // ... used as base here
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  DL.PC = 0x40000000;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Pointer);
}

TEST(Classifier, RedefinitionBeforeUseBlocksPointer) {
  std::vector<Instruction> Body = {
      makeLoad(3, 2, 0),
      makeLoadImm(3, 0), // r3 overwritten before any base use
      makeLoad(5, 3, 16),
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 0;
  DL.PC = 0x40000000;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Unclassified);
}

TEST(Classifier, WraparoundUseInNextIteration) {
  // The dest feeds a load earlier in the (looping) body. The base r2 has
  // no recurrence, so the stride rules do not pre-empt the pointer rule.
  std::vector<Instruction> Body = {
      makeLoad(5, 3, 8),  // uses r3 from the previous iteration
      makeLoad(3, 2, 0),  // defines r3 (pointer, used after wrap)
      makeAluImm(Opcode::AddI, 4, 4, 1),
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 1;
  DL.PC = 0x40000001;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Pointer);
}

TEST(Classifier, StridePreemptsPointerWhenBaseStrides) {
  // Same shape, but the base register recurs: the paper classifies the
  // load as Stride first (Section 3.4.1 checks Stride before Pointer).
  std::vector<Instruction> Body = {
      makeLoad(5, 3, 8),
      makeLoad(3, 2, 0),
      makeAluImm(Opcode::AddI, 2, 2, 8),
  };
  DelinquentLoadTable T(testDlt());
  PrefetchPlanner P;
  DelinquentLoad DL;
  DL.BodyIdx = 1;
  DL.PC = 0x40000001;
  P.classify(Body, DL, T);
  EXPECT_EQ(DL.Class, LoadClass::Stride);
  EXPECT_EQ(DL.Stride, 8);
}

//===----------------------------------------------------------------------===//
// Identification
//===----------------------------------------------------------------------===//

TEST(Planner, IdentifiesOnlyDelinquentLoads) {
  std::vector<Instruction> Body = {
      makeLoad(5, 2, 0),                  // delinquent
      makeLoad(6, 2, 8),                  // healthy
      makeAluImm(Opcode::AddI, 2, 2, 64),
  };
  DelinquentLoadTable T(testDlt());
  makeDelinquent(T, 0x40000000);
  PrefetchPlanner P;
  std::vector<DelinquentLoad> L =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  ASSERT_EQ(L.size(), 1u);
  EXPECT_EQ(L[0].BodyIdx, 0u);
  EXPECT_EQ(L[0].Class, LoadClass::Stride);
}

//===----------------------------------------------------------------------===//
// Same-object planning (Section 3.4.2)
//===----------------------------------------------------------------------===//

namespace {
/// fma3d-style object walk: loads at several offsets of one striding base.
std::vector<Instruction> objectWalkBody() {
  return {
      makeLoad(5, 2, 0),   // 0: line 0
      makeLoad(6, 2, 8),   // 1: line 0 (skipped)
      makeLoad(7, 2, 72),  // 2: line 1
      makeLoad(8, 2, 96),  // 3: line 1 (skipped)
      makeAluImm(Opcode::AddI, 2, 2, 128),
      makeBranch(Opcode::Blt, 2, 3, 0x10),
  };
}
} // namespace

TEST(Planner, SameObjectGroupWithLineSkipping) {
  std::vector<Instruction> Body = objectWalkBody();
  DelinquentLoadTable T(testDlt());
  for (unsigned I = 0; I < 4; ++I)
    makeDelinquent(T, 0x40000000 + I, 128, 0x100000 + Body[I].Imm);
  PrefetchPlanner P;
  std::vector<DelinquentLoad> L =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  ASSERT_EQ(L.size(), 4u);
  PrefetchPlan Plan;
  unsigned Covered = P.plan(Body, L, Plan, /*InitialDistance=*/1);
  EXPECT_EQ(Covered, 4u);
  ASSERT_EQ(Plan.Groups.size(), 1u); // one same-object group
  const PrefetchGroup &G = Plan.Groups[0];
  EXPECT_TRUE(G.Repairable);
  EXPECT_EQ(G.CoveredLoadIdxs.size(), 4u);
  // Prefetches: min offset 0, then 72 (>= line away), then one extra block
  // at 136 because loads were skipped (Section 3.4.2).
  ASSERT_EQ(Plan.Prefetches.size(), 3u);
  EXPECT_EQ(Plan.Prefetches[0].BaseComponent, 0);
  EXPECT_EQ(Plan.Prefetches[1].BaseComponent, 72);
  EXPECT_EQ(Plan.Prefetches[2].BaseComponent, 136);
  for (const PlannedPrefetch &Pf : Plan.Prefetches) {
    EXPECT_EQ(Pf.Stride, 128);
    EXPECT_EQ(Pf.K, PlannedPrefetch::Kind::StridePf);
  }
}

TEST(Planner, BasicModeDoesNotGroup) {
  std::vector<Instruction> Body = objectWalkBody();
  DelinquentLoadTable T(testDlt());
  for (unsigned I = 0; I < 4; ++I)
    makeDelinquent(T, 0x40000000 + I, 128, 0x100000 + Body[I].Imm);
  PlannerConfig C;
  C.WholeObject = false;
  PrefetchPlanner P(C);
  std::vector<DelinquentLoad> L =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  PrefetchPlan Plan;
  P.plan(Body, L, Plan, 1);
  EXPECT_EQ(Plan.Groups.size(), 4u); // one group per load
  EXPECT_EQ(Plan.Prefetches.size(), 4u);
}

TEST(Planner, DistanceScalesImmediate) {
  PlannedPrefetch P;
  P.BaseComponent = 16;
  P.Stride = 128;
  EXPECT_EQ(PrefetchPlanner::immediateFor(P, 1), 144);
  EXPECT_EQ(PrefetchPlanner::immediateFor(P, 10), 1296);
}

TEST(Planner, UnclassifiableLoadsAreUncoverable) {
  std::vector<Instruction> Body = {
      makeLoad(5, 2, 0), // base r2 never written, random addresses
  };
  DelinquentLoadTable T(testDlt());
  // Random addresses: no stride confidence.
  uint64_t A = 0x1000;
  for (unsigned I = 0; I < 16; ++I) {
    A = A * 6364136223846793005ull + 1;
    T.update(0x40000000, A & 0xFFFFF8, true, 300);
  }
  PrefetchPlanner P;
  std::vector<DelinquentLoad> L =
      P.identifyDelinquentLoads(Body, identityPCs(1), T);
  ASSERT_EQ(L.size(), 1u);
  PrefetchPlan Plan;
  unsigned Covered = P.plan(Body, L, Plan, 1);
  EXPECT_EQ(Covered, 0u);
  ASSERT_EQ(Plan.UncoverableLoadIdxs.size(), 1u);
  EXPECT_TRUE(Plan.covers(0)); // "covered" in the sense of resolved
  EXPECT_EQ(Plan.groupCovering(0), nullptr);
}

TEST(Planner, PlanExtensionIsIncremental) {
  std::vector<Instruction> Body = objectWalkBody();
  DelinquentLoadTable T(testDlt());
  makeDelinquent(T, 0x40000000, 128, 0x100000);
  PrefetchPlanner P;
  PrefetchPlan Plan;
  std::vector<DelinquentLoad> L1 =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  P.plan(Body, L1, Plan, 1);
  size_t GroupsAfterFirst = Plan.Groups.size();
  // A second planning pass over the same loads adds nothing.
  unsigned Covered = P.plan(Body, L1, Plan, 1);
  EXPECT_EQ(Covered, 0u);
  EXPECT_EQ(Plan.Groups.size(), GroupsAfterFirst);
  // A new delinquent load extends the plan without disturbing group 0.
  makeDelinquent(T, 0x40000002, 128, 0x100048);
  std::vector<DelinquentLoad> L2 =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  unsigned Covered2 = P.plan(Body, L2, Plan, 1);
  EXPECT_GE(Covered2, 1u);
}

//===----------------------------------------------------------------------===//
// Pointer prefetching (Section 3.4.3)
//===----------------------------------------------------------------------===//

TEST(Planner, PurePointerChaseGetsDerefPair) {
  std::vector<Instruction> Body = {
      makeLoad(2, 2, 0),  // p = p->next (shuffled: no stride)
      makeLoad(5, 2, 8),  // field, line 0
      makeLoad(6, 2, 72), // field, line 1
  };
  DelinquentLoadTable T(testDlt());
  // Random addresses so nothing is stride-predictable.
  uint64_t A = 0x100000;
  for (unsigned I = 0; I < 16; ++I) {
    A = A * 2862933555777941757ull + 3037000493ull;
    T.update(0x40000001, (A & 0xFFFF80) + 8, true, 300);
    T.update(0x40000002, (A & 0xFFFF80) + 72, true, 300);
  }
  PrefetchPlanner P;
  std::vector<DelinquentLoad> L =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  ASSERT_EQ(L.size(), 2u); // the two fields (the chase itself hits)
  PrefetchPlan Plan;
  unsigned Covered = P.plan(Body, L, Plan, 1);
  EXPECT_EQ(Covered, 2u);
  ASSERT_EQ(Plan.Groups.size(), 1u);
  EXPECT_FALSE(Plan.Groups[0].Repairable);
  ASSERT_EQ(Plan.Prefetches.size(), 1u);
  const PlannedPrefetch &Pf = Plan.Prefetches[0];
  EXPECT_EQ(Pf.K, PlannedPrefetch::Kind::PointerDeref);
  EXPECT_EQ(Pf.InsertBeforeIdx, 1u); // right after the chasing load
  EXPECT_EQ(Pf.BaseReg, 2u);
  EXPECT_EQ(Pf.BaseComponent, 0); // the link offset
  // Deref offsets line-cover {0(link), 8, 72}: line 0 plus 72.
  ASSERT_GE(Pf.DerefOffsets.size(), 2u);
  EXPECT_EQ(Pf.DerefOffsets[0], 0);
  EXPECT_EQ(Pf.DerefOffsets[1], 72);
}

TEST(Planner, EmissionInsertsSyntheticInstructions) {
  std::vector<Instruction> Body = objectWalkBody();
  DelinquentLoadTable T(testDlt());
  for (unsigned I = 0; I < 4; ++I)
    makeDelinquent(T, 0x40000000 + I, 128, 0x100000 + Body[I].Imm);
  PrefetchPlanner P;
  std::vector<DelinquentLoad> L =
      P.identifyDelinquentLoads(Body, identityPCs(Body.size()), T);
  PrefetchPlan Plan;
  P.plan(Body, L, Plan, /*InitialDistance=*/2);
  PlanEmission E = P.emit(Body, Plan);

  EXPECT_EQ(E.NewBody.size(), Body.size() + Plan.Prefetches.size());
  // Original instructions preserved in order.
  for (size_t I = 0; I < Body.size(); ++I)
    EXPECT_EQ(E.NewBody[E.OldToNew[I]].Op, Body[I].Op);
  // Patch slots point at synthetic prefetches with distance-2 immediates.
  ASSERT_EQ(E.PatchSlots.size(), Plan.Prefetches.size());
  for (size_t PI = 0; PI < Plan.Prefetches.size(); ++PI) {
    const Instruction &Ins = E.NewBody[E.PatchSlots[PI]];
    EXPECT_TRUE(Ins.Synthetic);
    EXPECT_EQ(Ins.Op, Opcode::Prefetch);
    EXPECT_EQ(Ins.Imm,
              PrefetchPlanner::immediateFor(Plan.Prefetches[PI], 2));
    EXPECT_EQ(Ins.Rs1, 2); // the group's base register
  }
}

TEST(Planner, DerefPairEmission) {
  std::vector<Instruction> Body = {
      makeLoad(2, 2, 0),
      makeLoad(5, 2, 8),
  };
  PrefetchPlan Plan;
  PrefetchGroup G;
  G.Id = 0;
  G.CoveredLoadIdxs = {1};
  G.PerLoad.resize(1);
  PlannedPrefetch Pf;
  Pf.K = PlannedPrefetch::Kind::PointerDeref;
  Pf.InsertBeforeIdx = 1;
  Pf.BaseReg = 2;
  Pf.BaseComponent = 0;
  Pf.DerefOffsets = {0, 72};
  G.PrefetchIdxs = {0};
  Plan.Prefetches.push_back(Pf);
  Plan.Groups.push_back(G);

  PrefetchPlanner P;
  PlanEmission E = P.emit(Body, Plan);
  // Body: [chase, nfld, pf, pf, field].
  ASSERT_EQ(E.NewBody.size(), 5u);
  EXPECT_EQ(E.NewBody[1].Op, Opcode::NFLoad);
  EXPECT_EQ(E.NewBody[1].Rd, reg::FirstScratch);
  EXPECT_EQ(E.NewBody[2].Op, Opcode::Prefetch);
  EXPECT_EQ(E.NewBody[2].Rs1, reg::FirstScratch);
  EXPECT_EQ(E.NewBody[2].Imm, 0);
  EXPECT_EQ(E.NewBody[3].Imm, 72);
  EXPECT_EQ(E.PatchSlots[0], 1u); // the nfload carries the distance
}

TEST(Planner, GroupStateHelpers) {
  PrefetchGroup G;
  G.CoveredLoadIdxs = {3, 7};
  G.PerLoad.resize(2);
  ASSERT_NE(G.stateFor(3), nullptr);
  ASSERT_NE(G.stateFor(7), nullptr);
  EXPECT_EQ(G.stateFor(5), nullptr);
  EXPECT_FALSE(G.exhausted());
  G.PerLoad[0].Mature = true;
  EXPECT_FALSE(G.exhausted());
  G.PerLoad[1].Mature = true;
  EXPECT_TRUE(G.exhausted());
}
