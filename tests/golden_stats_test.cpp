//===- golden_stats_test.cpp - Golden stat-registry regression corpus ------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Byte-compares the canonical StatRegistry JSONL export of every workload
// (at a small fixed budget) against committed snapshots in tests/golden/.
// Any unintended behaviour change anywhere in the machine shows up here as
// a counter drift long before it grows into a headline-figure regression.
//
// To refresh after an *intentional* change: tools/update_goldens.sh, then
// review the diff like any other code change. The test regenerates (rather
// than compares) when TRIDENT_UPDATE_GOLDENS is set; on mismatch it dumps
// the actual export to golden_diff/ in the working directory so CI can
// upload it as an artifact.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef TRIDENT_GOLDEN_DIR
#error "TRIDENT_GOLDEN_DIR must be defined by the build"
#endif

using namespace trident;

namespace {

/// The snapshot budget: small enough that all 14 workloads run in seconds,
/// long enough that tracing, optimization, and repair all engage. Matches
/// the fault-injection identity tests so the two suites cross-check.
SimConfig goldenConfig() {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;
  return C;
}

std::string goldenPath(const std::string &Name) {
  return std::string(TRIDENT_GOLDEN_DIR) + "/" + Name + ".jsonl";
}

/// First line where the two exports differ, for a readable failure message
/// (the full JSONL is hundreds of lines; gtest would print all of them).
std::string firstDiff(const std::string &Expected, const std::string &Actual) {
  std::istringstream E(Expected), A(Actual);
  std::string LE, LA;
  for (unsigned Line = 1;; ++Line) {
    bool HaveE = static_cast<bool>(std::getline(E, LE));
    bool HaveA = static_cast<bool>(std::getline(A, LA));
    if (!HaveE && !HaveA)
      return "(no difference found line-wise; byte difference only)";
    if (LE != LA || HaveE != HaveA) {
      std::ostringstream Msg;
      Msg << "first difference at line " << Line << ":\n  golden: "
          << (HaveE ? LE : "<eof>") << "\n  actual: "
          << (HaveA ? LA : "<eof>");
      return Msg.str();
    }
  }
}

} // namespace

TEST(GoldenStats, AllWorkloadsMatchCommittedSnapshots) {
  const bool Update = std::getenv("TRIDENT_UPDATE_GOLDENS") != nullptr;
  for (const std::string &Name : workloadNames()) {
    Workload W = makeWorkload(Name);
    SimResult R = runSimulation(W, goldenConfig());
    ASSERT_TRUE(R.Registry) << Name;
    const std::string Actual = R.Registry->toJsonl();

    if (Update) {
      std::ofstream Out(goldenPath(Name), std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(Out) << "cannot write " << goldenPath(Name);
      Out << Actual;
      continue;
    }

    std::ifstream In(goldenPath(Name), std::ios::binary);
    ASSERT_TRUE(In) << "missing golden snapshot " << goldenPath(Name)
                    << " — run tools/update_goldens.sh and commit the result";
    std::ostringstream Buf;
    Buf << In.rdbuf();
    const std::string Expected = Buf.str();

    if (Expected != Actual) {
      std::filesystem::create_directories("golden_diff");
      std::ofstream Dump("golden_diff/" + Name + ".jsonl",
                         std::ios::binary | std::ios::trunc);
      Dump << Actual;
    }
    EXPECT_TRUE(Expected == Actual)
        << Name << ": stat export drifted from tests/golden/" << Name
        << ".jsonl (actual dumped to golden_diff/" << Name << ".jsonl; "
        << "regen via tools/update_goldens.sh if the change is intended)\n"
        << firstDiff(Expected, Actual);
  }
}
