//===- self_repair_test.cpp - Bounded re-convergence after faults ----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The paper's central claim, validated end to end under fault injection:
// when the memory latency regime shifts underneath a converged prefetcher,
// the DLT re-flags the load, the helper re-patches the prefetch distance
// within a *bounded* number of delinquent-load events (the bound is
// asserted, not logged), and when the latency spike ends the distance
// comes back down. The machine is driven in explicit phases so each
// transition can be observed at a known point.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultInjector.h"
#include "isa/ProgramBuilder.h"
#include "sim/Simulation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {

constexpr Addr ListBase = 0x1000'0000;

/// The quickstart pointer chase (an endless loop: phases are delimited by
/// instruction budgets, not program exits). Returns the loop-head PC so
/// the test can query the trace's current prefetch distance.
struct ChaseProgram {
  Program Prog;
  Addr LoopHead = 0;
};

ChaseProgram chaseProgram() {
  ChaseProgram CP;
  ProgramBuilder B;
  B.loadImm(1, ListBase);
  B.loadImm(4, 0).loadImm(5, int64_t(1) << 40);
  CP.LoopHead = B.here();
  B.label("loop");
  B.load(1, 1, 0);
  B.load(6, 1, 8).load(7, 1, 72);
  B.fadd(8, 6, 7);
  B.fadd(9, 9, 8);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  CP.Prog = B.finish();
  return CP;
}

/// A hand-assembled machine (the integration-test idiom) whose phases the
/// test controls: run a bounded chunk, inspect, perturb, run again.
struct Machine {
  ChaseProgram CP;
  DataMemory Data;
  MemorySystem Mem;
  CodeCache CC;
  CodeImage Image;
  SmtCore Core;
  EventBus Bus;
  TridentRuntime Runtime;

  Machine()
      : CP(chaseProgram()), Mem(MemSystemConfig::baseline()),
        Image(CP.Prog, CC),
        Core(CoreConfig::baseline(), Image, Data, Mem),
        Runtime(RuntimeConfig::baseline(), CP.Prog, Core, CC) {
    buildLinkedList(Data, ListBase, 1 << 16, 128, 0, /*Shuffled=*/false);
    Runtime.attach(Bus);
    Core.setEventBus(&Bus);
    Runtime.setEnabled(true);
    Core.startContext(0, CP.Prog.entryPC());
  }

  /// Runs in small chunks until \p Done or the instruction budget is
  /// spent; returns the instructions actually consumed.
  template <typename Pred>
  uint64_t runUntil(uint64_t Budget, uint64_t Chunk, Pred Done) {
    uint64_t Spent = 0;
    while (Spent < Budget && !Done()) {
      Core.run(Chunk, ~static_cast<Cycle>(0));
      Spent += Chunk;
    }
    return Spent;
  }

  int distance() const { return Runtime.currentDistanceFor(CP.LoopHead); }
};

} // namespace

TEST(SelfRepair, BoundedReconvergenceAcrossALatencyRegimeShift) {
  Machine M;

  //--- Phase A: converge and settle under the healthy latency regime. -----
  // Run until the self-repairing optimizer has climbed the distance,
  // spent the repair budget, and settled (matured) both covered loads.
  // A settled prefetcher is the interesting starting point: phase B then
  // shows that a settled load is *re-opened* — not permanently frozen —
  // when the latency regime shifts underneath it.
  M.runUntil(4'000'000, 20'000, [&] {
    return M.Runtime.stats().LoadsMatured >= 2;
  });
  ASSERT_GE(M.Runtime.stats().RepairOptimizations, 2u)
      << "the prefetcher never started repairing under the healthy regime";
  ASSERT_GE(M.Runtime.stats().LoadsMatured, 2u)
      << "the repair budget never settled under the healthy regime";
  const uint64_t PreMatured = M.Runtime.stats().LoadsMatured;
  const int DPre = M.distance();
  ASSERT_GT(DPre, 0) << "no repairable prefetch group on the hot trace";

  //--- Phase B: latency regime shift (the fault). -------------------------
  // A fault injector delivers the shift the way the full simulator would:
  // a permanent global latency spike, plus cache and DLT eviction so the
  // warmed state (including the DLT's settled window counters) is gone.
  // DLT eviction is what allows re-flagging; the spike is what makes the
  // re-flagged load delinquent again.
  FaultPlan Shift;
  {
    FaultAction Spike;
    Spike.Kind = FaultKind::LatencySpike;
    Spike.At = M.Core.now() + 1;
    Spike.ExtraMemLatency = 1200;
    Shift.Actions.push_back(Spike);
    FaultAction Dlt = Spike;
    Dlt.Kind = FaultKind::EvictDlt;
    Shift.Actions.push_back(Dlt);
    FaultAction Caches = Spike;
    Caches.Kind = FaultKind::EvictCaches;
    Shift.Actions.push_back(Caches);
  }
  FaultTargets Targets;
  Targets.Mem = &M.Mem;
  Targets.Runtime = &M.Runtime;
  FaultInjector Injector(Shift, Targets);
  Injector.attach(M.Bus);

  const uint64_t EventsAtShift = M.Runtime.stats().DelinquentEvents;
  const uint64_t RepairsAtShift = M.Runtime.stats().RepairOptimizations;

  // The self-repair latency bound, in delinquent-load events: the monitors
  // re-flag the load and the helper re-patches the distance within this
  // many events after the shift. One event would be ideal (the first
  // re-flag starts repair work immediately); the bound leaves room for
  // events racing a busy helper thread.
  constexpr uint64_t kRepairEventBound = 8;

  M.runUntil(4'000'000, 2'000, [&] {
    return M.Runtime.stats().RepairOptimizations > RepairsAtShift;
  });
  ASSERT_EQ(Injector.stats().Injected, 3u); // the shift actually happened
  ASSERT_GT(M.Runtime.stats().DelinquentEvents, EventsAtShift)
      << "the DLT never re-flagged the load after the shift";
  ASSERT_GT(M.Runtime.stats().RepairOptimizations, RepairsAtShift)
      << "the planner never re-patched the distance after the shift";
  EXPECT_GE(M.Runtime.stats().RepairsReopened, 1u)
      << "the settled load was never re-opened for repair";
  EXPECT_LE(M.Runtime.stats().DelinquentEvents - EventsAtShift,
            kRepairEventBound)
      << "re-convergence took more delinquent-load events than the bound";
  // The injector's own accounting observed the same re-convergence.
  EXPECT_GE(Injector.stats().DetectionEvents, 1u);

  // Let the climb take a few more steps into the spiked regime: with
  // memory 1200 cycles further away, covering the latency needs a larger
  // distance. The chunk is small so the loop stops *near* the target
  // instead of letting the climb run all the way to the distance clamp —
  // phase C wants the climb parked mid-ascent, with the spiked-regime
  // latency it last observed still on record.
  M.runUntil(6'000'000, 2'000, [&] {
    return M.Runtime.stats().RepairOptimizations >= RepairsAtShift + 6;
  });
  const int DSpike = M.distance();
  EXPECT_GT(DSpike, DPre)
      << "the repaired distance did not climb to cover the spiked latency";
  ASSERT_EQ(M.Runtime.stats().LoadsMatured, PreMatured)
      << "the repair target matured mid-test; phase C would be inert";

  //--- Phase C: the spike ends. -------------------------------------------
  // Clear the latency fault through the public hook and deliver a DLT
  // eviction so monitoring restarts under the healthy regime. The caches
  // stay warm on purpose: the first post-spike DLT window then observes
  // the *regime's* latency, not a cold-refill transient, and the hill
  // climb — still parked mid-ascent with a ~500-cycle spiked observation
  // on record — sees the collapse and restarts from the seed.
  M.Mem.clearLatencyFault();
  FaultPlan Recover;
  {
    FaultAction Dlt;
    Dlt.Kind = FaultKind::EvictDlt;
    Dlt.At = M.Core.now() + 1;
    Recover.Actions.push_back(Dlt);
  }
  FaultInjector Recovery(Recover, Targets);
  Recovery.attach(M.Bus);

  const uint64_t RepairsAtRecovery = M.Runtime.stats().RepairOptimizations;
  M.runUntil(8'000'000, 2'000, [&] {
    return M.Runtime.stats().RepairOptimizations > RepairsAtRecovery &&
           M.distance() < DSpike;
  });
  EXPECT_EQ(Recovery.stats().Injected, 1u);
  EXPECT_GT(M.Runtime.stats().RepairOptimizations, RepairsAtRecovery)
      << "repair never resumed after the spike ended";
  EXPECT_GE(M.Runtime.stats().RegimeShiftsDetected, 1u)
      << "the hill climb never noticed the latency regime relaxing";
  EXPECT_LT(M.distance(), DSpike)
      << "the distance did not come back down after the spike ended";
}
