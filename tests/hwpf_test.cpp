//===- hwpf_test.cpp - Unit tests for src/hwpf -----------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/StreamBuffer.h"
#include "hwpf/StridePredictor.h"
#include "mem/MemorySystem.h"

#include <gtest/gtest.h>

using namespace trident;

//===----------------------------------------------------------------------===//
// StridePredictor
//===----------------------------------------------------------------------===//

TEST(StridePredictor, LearnsConstantStride) {
  StridePredictor P(64);
  for (int I = 0; I < 5; ++I)
    P.train(0x100, 0x1000 + I * 64);
  ASSERT_TRUE(P.predict(0x100).has_value());
  EXPECT_EQ(*P.predict(0x100), 64);
  EXPECT_EQ(*P.lastAddress(0x100), 0x1000u + 4 * 64);
}

TEST(StridePredictor, NoConfidenceNoPrediction) {
  StridePredictor P(64);
  P.train(0x100, 0x1000);
  P.train(0x100, 0x1040);
  // One observed stride is not confidence.
  EXPECT_FALSE(P.predict(0x100).has_value());
}

TEST(StridePredictor, RandomAddressesNeverPredict) {
  StridePredictor P(64);
  uint64_t A = 0x1000;
  for (int I = 0; I < 50; ++I) {
    A = A * 6364136223846793005ull + 1442695040888963407ull;
    P.train(0x100, A & 0xFFFFF8);
  }
  EXPECT_FALSE(P.predict(0x100).has_value());
}

TEST(StridePredictor, ZeroStrideNeverPredicts) {
  StridePredictor P(64);
  for (int I = 0; I < 10; ++I)
    P.train(0x100, 0x1000);
  EXPECT_FALSE(P.predict(0x100).has_value());
}

TEST(StridePredictor, AliasingStealsEntries) {
  StridePredictor P(16);
  for (int I = 0; I < 5; ++I)
    P.train(0x100, 0x1000 + I * 64);
  EXPECT_TRUE(P.predict(0x100).has_value());
  // PC 0x110 maps to the same index (0x100 & 15 == 0x110 & 15 == 0).
  P.train(0x110, 0x9000);
  EXPECT_FALSE(P.predict(0x100).has_value()); // entry stolen
}

TEST(StridePredictor, NegativeStride) {
  StridePredictor P(64);
  for (int I = 0; I < 5; ++I)
    P.train(0x100, 0x10000 - I * 128);
  ASSERT_TRUE(P.predict(0x100).has_value());
  EXPECT_EQ(*P.predict(0x100), -128);
}

//===----------------------------------------------------------------------===//
// StreamBufferUnit (through a real MemorySystem backend)
//===----------------------------------------------------------------------===//

namespace {
MemSystemConfig sbBackendConfig() {
  MemSystemConfig C;
  C.L1 = {"L1", 1024, 2, 64, 3};
  C.L2 = {"L2", 8192, 4, 64, 11};
  C.L3 = {"L3", 65536, 4, 64, 35};
  C.MemoryLatency = 350;
  C.BusOccupancy = 6;
  return C;
}

/// Trains the unit with a miss sequence at the given stride until the
/// predictor gains confidence and a buffer allocates.
void primeStream(StreamBufferUnit &U, MemorySystem &M, Addr PC, Addr Base,
                 int64_t Stride, unsigned N) {
  for (unsigned I = 0; I < N; ++I)
    U.trainOnMiss(PC, Base + I * Stride, /*Now=*/I * 10, M);
}
} // namespace

TEST(StreamBuffer, AllocatesAfterConfidence) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config4x4());
  EXPECT_EQ(U.numActiveBuffers(), 0u);
  primeStream(U, M, 0x100, 0x10000, 64, 2);
  EXPECT_EQ(U.numActiveBuffers(), 0u); // not confident yet
  primeStream(U, M, 0x100, 0x10080, 64, 3);
  EXPECT_EQ(U.numActiveBuffers(), 1u);
  EXPECT_GE(U.stats().LinesPrefetched, 1u);
}

TEST(StreamBuffer, ProbeHitConsumesAndRunsAhead) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  // Allocation happens at the 4th miss (2-bit confidence); the buffer then
  // holds the next two lines (gradual ramp).
  primeStream(U, M, 0x100, 0x10000, 64, 4);
  uint64_t Before = U.stats().LinesPrefetched;
  std::optional<Cycle> R = U.probe(0x10000 + 4 * 64, 1000, M);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(U.stats().ProbeHits, 1u);
  EXPECT_GT(U.stats().LinesPrefetched, Before); // refilled after consume
  // Successive probes keep hitting as the stream runs ahead.
  EXPECT_TRUE(U.probe(0x10000 + 5 * 64, 1010, M).has_value());
  EXPECT_TRUE(U.probe(0x10000 + 6 * 64, 1020, M).has_value());
}

TEST(StreamBuffer, ProbeMissOnUnrelatedLine) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x10000, 64, 6);
  EXPECT_FALSE(U.probe(0x90000, 1000, M).has_value());
  EXPECT_GE(U.stats().ProbeMisses, 1u);
}

TEST(StreamBuffer, LruStealWhenOverSubscribed) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config4x4());
  // Six concurrent streams onto four buffers.
  for (unsigned S = 0; S < 6; ++S)
    primeStream(U, M, 0x100 + S, 0x100000 * (S + 1), 64, 5);
  EXPECT_EQ(U.numActiveBuffers(), 4u);
  EXPECT_GE(U.stats().Allocations, 6u);
}

TEST(StreamBuffer, TrackingPreventsReallocStorm) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x10000, 64, 5);
  uint64_t AllocsAfterPrime = U.stats().Allocations;
  // A consuming stream (probe + trailing in-flight misses, as demand
  // produces them) keeps the buffer tracking without reallocation.
  for (unsigned I = 4; I < 12; ++I) {
    U.probe(0x10000 + I * 64, 1000 + I * 10, M);
    U.trainOnMiss(0x100, 0x10000 + I * 64, 1000 + I * 10, M);
  }
  EXPECT_EQ(U.stats().Allocations, AllocsAfterPrime);
}

TEST(StreamBuffer, StreamJumpRePrimes) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x10000, 64, 5);
  uint64_t Allocs = U.stats().Allocations;
  // Same PC, same stride, far-away address: the stream jumped.
  U.trainOnMiss(0x100, 0x80000, 500, M);
  U.trainOnMiss(0x100, 0x80040, 510, M);
  EXPECT_GT(U.stats().Allocations, Allocs);
}

TEST(StreamBuffer, LargeStrideFetchesDistinctLines) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x100000, 4096, 5);
  // Probe several successive stream lines: all should be present over
  // consecutive probes (refilled as consumed).
  unsigned Hits = 0;
  for (unsigned I = 5; I < 9; ++I)
    Hits += U.probe(0x100000 + I * 4096, 2000 + I, M).has_value();
  EXPECT_GE(Hits, 2u);
}

TEST(StreamBuffer, NamesAndConfigs) {
  StreamBufferUnit U4(StreamBufferConfig::config4x4());
  StreamBufferUnit U8(StreamBufferConfig::config8x8());
  EXPECT_EQ(U4.name(), "stream-buffers-4x4");
  EXPECT_EQ(U8.name(), "stream-buffers-8x8");
  EXPECT_EQ(U8.config().HistoryEntries, 1024u); // Table 1
}

TEST(StreamBuffer, PageBoundaryStopWhenConfigured) {
  MemorySystem M(sbBackendConfig());
  StreamBufferConfig C = StreamBufferConfig::config8x8();
  C.StopAtPageBoundary = true;
  StreamBufferUnit U(C);
  // Prime near the end of a page with a large stride: the stream may not
  // run into the next page.
  Addr Base = 0x10000 + 4096 - 3 * 1024;
  for (unsigned I = 0; I < 4; ++I)
    U.trainOnMiss(0x100, Base + I * 1024, I * 10, M);
  // Entries must all be within the priming page.
  unsigned HitsInPage = 0, HitsBeyond = 0;
  for (unsigned I = 4; I < 12; ++I) {
    Addr A = Base + I * 1024;
    bool Hit = U.probe(A & ~63ull, 1000 + I, M).has_value();
    if ((A >> 12) == ((Base + 3 * 1024) >> 12))
      HitsInPage += Hit;
    else
      HitsBeyond += Hit;
  }
  EXPECT_EQ(HitsBeyond, 0u);
}
