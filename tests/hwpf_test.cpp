//===- hwpf_test.cpp - Unit tests for src/hwpf -----------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/Dcpt.h"
#include "hwpf/EnhancedStream.h"
#include "hwpf/PrefetcherRegistry.h"
#include "hwpf/StreamBuffer.h"
#include "hwpf/StridePredictor.h"
#include "hwpf/Tskid.h"
#include "mem/MemorySystem.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace trident;

//===----------------------------------------------------------------------===//
// StridePredictor
//===----------------------------------------------------------------------===//

TEST(StridePredictor, LearnsConstantStride) {
  StridePredictor P(64);
  for (int I = 0; I < 5; ++I)
    P.train(0x100, 0x1000 + I * 64);
  ASSERT_TRUE(P.predict(0x100).has_value());
  EXPECT_EQ(*P.predict(0x100), 64);
  EXPECT_EQ(*P.lastAddress(0x100), 0x1000u + 4 * 64);
}

TEST(StridePredictor, NoConfidenceNoPrediction) {
  StridePredictor P(64);
  P.train(0x100, 0x1000);
  P.train(0x100, 0x1040);
  // One observed stride is not confidence.
  EXPECT_FALSE(P.predict(0x100).has_value());
}

TEST(StridePredictor, RandomAddressesNeverPredict) {
  StridePredictor P(64);
  uint64_t A = 0x1000;
  for (int I = 0; I < 50; ++I) {
    A = A * 6364136223846793005ull + 1442695040888963407ull;
    P.train(0x100, A & 0xFFFFF8);
  }
  EXPECT_FALSE(P.predict(0x100).has_value());
}

TEST(StridePredictor, ZeroStrideNeverPredicts) {
  StridePredictor P(64);
  for (int I = 0; I < 10; ++I)
    P.train(0x100, 0x1000);
  EXPECT_FALSE(P.predict(0x100).has_value());
}

TEST(StridePredictor, AliasingStealsEntries) {
  StridePredictor P(16);
  for (int I = 0; I < 5; ++I)
    P.train(0x100, 0x1000 + I * 64);
  EXPECT_TRUE(P.predict(0x100).has_value());
  // PC 0x110 maps to the same index (0x100 & 15 == 0x110 & 15 == 0).
  P.train(0x110, 0x9000);
  EXPECT_FALSE(P.predict(0x100).has_value()); // entry stolen
}

TEST(StridePredictor, NegativeStride) {
  StridePredictor P(64);
  for (int I = 0; I < 5; ++I)
    P.train(0x100, 0x10000 - I * 128);
  ASSERT_TRUE(P.predict(0x100).has_value());
  EXPECT_EQ(*P.predict(0x100), -128);
}

//===----------------------------------------------------------------------===//
// StreamBufferUnit (through a real MemorySystem backend)
//===----------------------------------------------------------------------===//

namespace {
MemSystemConfig sbBackendConfig() {
  MemSystemConfig C;
  C.L1 = {"L1", 1024, 2, 64, 3};
  C.L2 = {"L2", 8192, 4, 64, 11};
  C.L3 = {"L3", 65536, 4, 64, 35};
  C.MemoryLatency = 350;
  C.BusOccupancy = 6;
  return C;
}

/// Trains the unit with a miss sequence at the given stride until the
/// predictor gains confidence and a buffer allocates.
void primeStream(StreamBufferUnit &U, MemorySystem &M, Addr PC, Addr Base,
                 int64_t Stride, unsigned N) {
  for (unsigned I = 0; I < N; ++I)
    U.trainOnMiss(PC, Base + I * Stride, /*Now=*/I * 10, M);
}
} // namespace

TEST(StreamBuffer, AllocatesAfterConfidence) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config4x4());
  EXPECT_EQ(U.numActiveBuffers(), 0u);
  primeStream(U, M, 0x100, 0x10000, 64, 2);
  EXPECT_EQ(U.numActiveBuffers(), 0u); // not confident yet
  primeStream(U, M, 0x100, 0x10080, 64, 3);
  EXPECT_EQ(U.numActiveBuffers(), 1u);
  EXPECT_GE(U.stats().LinesPrefetched, 1u);
}

TEST(StreamBuffer, ProbeHitConsumesAndRunsAhead) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  // Allocation happens at the 4th miss (2-bit confidence); the buffer then
  // holds the next two lines (gradual ramp).
  primeStream(U, M, 0x100, 0x10000, 64, 4);
  uint64_t Before = U.stats().LinesPrefetched;
  std::optional<Cycle> R = U.probe(0x10000 + 4 * 64, 1000, M);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(U.stats().ProbeHits, 1u);
  EXPECT_GT(U.stats().LinesPrefetched, Before); // refilled after consume
  // Successive probes keep hitting as the stream runs ahead.
  EXPECT_TRUE(U.probe(0x10000 + 5 * 64, 1010, M).has_value());
  EXPECT_TRUE(U.probe(0x10000 + 6 * 64, 1020, M).has_value());
}

TEST(StreamBuffer, ProbeMissOnUnrelatedLine) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x10000, 64, 6);
  EXPECT_FALSE(U.probe(0x90000, 1000, M).has_value());
  EXPECT_GE(U.stats().ProbeMisses, 1u);
}

TEST(StreamBuffer, LruStealWhenOverSubscribed) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config4x4());
  // Six concurrent streams onto four buffers.
  for (unsigned S = 0; S < 6; ++S)
    primeStream(U, M, 0x100 + S, 0x100000 * (S + 1), 64, 5);
  EXPECT_EQ(U.numActiveBuffers(), 4u);
  EXPECT_GE(U.stats().Allocations, 6u);
}

TEST(StreamBuffer, TrackingPreventsReallocStorm) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x10000, 64, 5);
  uint64_t AllocsAfterPrime = U.stats().Allocations;
  // A consuming stream (probe + trailing in-flight misses, as demand
  // produces them) keeps the buffer tracking without reallocation.
  for (unsigned I = 4; I < 12; ++I) {
    U.probe(0x10000 + I * 64, 1000 + I * 10, M);
    U.trainOnMiss(0x100, 0x10000 + I * 64, 1000 + I * 10, M);
  }
  EXPECT_EQ(U.stats().Allocations, AllocsAfterPrime);
}

TEST(StreamBuffer, StreamJumpRePrimes) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x10000, 64, 5);
  uint64_t Allocs = U.stats().Allocations;
  // Same PC, same stride, far-away address: the stream jumped.
  U.trainOnMiss(0x100, 0x80000, 500, M);
  U.trainOnMiss(0x100, 0x80040, 510, M);
  EXPECT_GT(U.stats().Allocations, Allocs);
}

TEST(StreamBuffer, LargeStrideFetchesDistinctLines) {
  MemorySystem M(sbBackendConfig());
  StreamBufferUnit U(StreamBufferConfig::config8x8());
  primeStream(U, M, 0x100, 0x100000, 4096, 5);
  // Probe several successive stream lines: all should be present over
  // consecutive probes (refilled as consumed).
  unsigned Hits = 0;
  for (unsigned I = 5; I < 9; ++I)
    Hits += U.probe(0x100000 + I * 4096, 2000 + I, M).has_value();
  EXPECT_GE(Hits, 2u);
}

TEST(StreamBuffer, NamesAndConfigs) {
  StreamBufferUnit U4(StreamBufferConfig::config4x4());
  StreamBufferUnit U8(StreamBufferConfig::config8x8());
  EXPECT_EQ(U4.name(), "stream-buffers-4x4");
  EXPECT_EQ(U8.name(), "stream-buffers-8x8");
  EXPECT_EQ(U8.config().HistoryEntries, 1024u); // Table 1
}

TEST(StreamBuffer, PageBoundaryStopWhenConfigured) {
  MemorySystem M(sbBackendConfig());
  StreamBufferConfig C = StreamBufferConfig::config8x8();
  C.StopAtPageBoundary = true;
  StreamBufferUnit U(C);
  // Prime near the end of a page with a large stride: the stream may not
  // run into the next page.
  Addr Base = 0x10000 + 4096 - 3 * 1024;
  for (unsigned I = 0; I < 4; ++I)
    U.trainOnMiss(0x100, Base + I * 1024, I * 10, M);
  // Entries must all be within the priming page.
  unsigned HitsInPage = 0, HitsBeyond = 0;
  for (unsigned I = 4; I < 12; ++I) {
    Addr A = Base + I * 1024;
    bool Hit = U.probe(A & ~63ull, 1000 + I, M).has_value();
    if ((A >> 12) == ((Base + 3 * 1024) >> 12))
      HitsInPage += Hit;
    else
      HitsBeyond += Hit;
  }
  EXPECT_EQ(HitsBeyond, 0u);
}

//===----------------------------------------------------------------------===//
// EnhancedStreamPrefetcher
//===----------------------------------------------------------------------===//

namespace {
/// Block-granularity training helper (line size is 64 in the backend).
void missAtBlock(HwPrefetcher &U, MemorySystem &M, uint64_t Block, Cycle Now,
                 Addr PC = 0x100) {
  U.trainOnMiss(PC, Block * 64, Now, M);
}
} // namespace

TEST(EnhancedStream, ConfirmsAfterThreeConsistentMisses) {
  MemorySystem M(sbBackendConfig());
  EnhancedStreamPrefetcher U(EnhancedStreamConfig::baseline());
  missAtBlock(U, M, 1000, 10);
  missAtBlock(U, M, 1001, 20);
  EXPECT_EQ(U.numActiveStreams(), 0u); // two misses: not confirmed yet
  missAtBlock(U, M, 1002, 30);
  EXPECT_EQ(U.numActiveStreams(), 1u);
  EXPECT_GE(U.snapshotStats().get("lines_prefetched"), 2u); // degree-2 ramp
  // The stream runs upward from the confirmation point.
  EXPECT_TRUE(U.probe(1003 * 64, 100, M).has_value());
}

TEST(EnhancedStream, NoiseTolerantTraining) {
  MemorySystem M(sbBackendConfig());
  EnhancedStreamPrefetcher U(EnhancedStreamConfig::baseline());
  missAtBlock(U, M, 1000, 10);
  missAtBlock(U, M, 1001, 20);
  // A stray miss inside the region that breaks the stride: ignored, the
  // trainer keeps its state instead of resetting.
  missAtBlock(U, M, 1010, 30);
  EXPECT_EQ(U.snapshotStats().get("noise_rejected"), 1u);
  EXPECT_EQ(U.numActiveStreams(), 0u);
  // The real stream continues and still confirms.
  missAtBlock(U, M, 1002, 40);
  EXPECT_EQ(U.numActiveStreams(), 1u);
}

TEST(EnhancedStream, TrainsOnRegionsNotPCs) {
  MemorySystem M(sbBackendConfig());
  EnhancedStreamPrefetcher U(EnhancedStreamConfig::baseline());
  // Three different PCs walking one region still confirm one stream:
  // identification is by region, not by instruction.
  missAtBlock(U, M, 2000, 10, /*PC=*/0x100);
  missAtBlock(U, M, 2001, 20, /*PC=*/0x200);
  missAtBlock(U, M, 2002, 30, /*PC=*/0x300);
  EXPECT_EQ(U.numActiveStreams(), 1u);
}

TEST(EnhancedStream, DeadStreamRemoval) {
  MemorySystem M(sbBackendConfig());
  EnhancedStreamConfig Cfg = EnhancedStreamConfig::baseline();
  Cfg.NumStreams = 2;
  EnhancedStreamPrefetcher U(Cfg);
  // Fill both stream slots (each confirmed stream has ramped only
  // Degree=2 lines — below DeadMinLength=4).
  for (uint64_t B : {1000ull, 5000ull})
    for (unsigned I = 0; I < 3; ++I)
      missAtBlock(U, M, B + I, 10 * I);
  EXPECT_EQ(U.numActiveStreams(), 2u);
  // Idle both streams past DeadIdleEvents with unrelated one-shot misses
  // (distinct regions, so nothing confirms or touches the streams).
  for (unsigned I = 0; I < 70; ++I)
    missAtBlock(U, M, 100000 + uint64_t(I) * 200, 1000 + I);
  // A third stream confirms: the victim is a dead stream, not plain LRU.
  for (unsigned I = 0; I < 3; ++I)
    missAtBlock(U, M, 9000 + I, 2000 + 10 * I);
  EXPECT_EQ(U.numActiveStreams(), 2u);
  EXPECT_GE(U.snapshotStats().get("dead_streams_removed"), 1u);
}

//===----------------------------------------------------------------------===//
// DcptPrefetcher
//===----------------------------------------------------------------------===//

TEST(Dcpt, ReplaysCompositeDeltaPattern) {
  MemorySystem M(sbBackendConfig());
  DcptPrefetcher U(DcptConfig::baseline());
  // Row-walk pattern +1,+1,+62 — the composite stride a single-stride
  // predictor cannot learn.
  const uint64_t Blocks[] = {10, 11, 12, 74, 75, 76};
  Cycle Now = 0;
  for (uint64_t B : Blocks)
    U.trainOnMiss(0x100, B * 64, Now += 10, M);
  // The newest pair (+1,+1) recurs in history; the replay predicts
  // +62,+1,+1 from block 76: blocks 138, 139, 140.
  EXPECT_GE(U.snapshotStats().get("pattern_matches"), 1u);
  EXPECT_GE(U.snapshotStats().get("lines_prefetched"), 3u);
  EXPECT_TRUE(U.probe(138 * 64, 1000, M).has_value());
  EXPECT_TRUE(U.probe(139 * 64, 1010, M).has_value());
  EXPECT_FALSE(U.probe(137 * 64, 1020, M).has_value()); // not predicted
}

TEST(Dcpt, NoMatchNoPrefetch) {
  MemorySystem M(sbBackendConfig());
  DcptPrefetcher U(DcptConfig::baseline());
  // Strictly novel deltas: no pair ever recurs.
  const uint64_t Blocks[] = {10, 11, 13, 17, 25, 41};
  Cycle Now = 0;
  for (uint64_t B : Blocks)
    U.trainOnMiss(0x100, B * 64, Now += 10, M);
  EXPECT_EQ(U.snapshotStats().get("pattern_matches"), 0u);
  EXPECT_EQ(U.snapshotStats().get("lines_prefetched"), 0u);
}

TEST(Dcpt, PcAliasingResetsEntry) {
  MemorySystem M(sbBackendConfig());
  DcptConfig Cfg = DcptConfig::baseline();
  Cfg.NumEntries = 16;
  DcptPrefetcher U(Cfg);
  const uint64_t Blocks[] = {10, 11, 12, 74, 75};
  Cycle Now = 0;
  for (uint64_t B : Blocks)
    U.trainOnMiss(0x100, B * 64, Now += 10, M);
  // PC 0x110 maps to the same direct-mapped slot: the entry retags and
  // the earlier history is gone, so the pattern never completes.
  U.trainOnMiss(0x110, 5000 * 64, Now += 10, M);
  U.trainOnMiss(0x100, 76 * 64, Now += 10, M);
  EXPECT_EQ(U.snapshotStats().get("pattern_matches"), 0u);
}

//===----------------------------------------------------------------------===//
// TskidPrefetcher
//===----------------------------------------------------------------------===//

TEST(Tskid, DelaysPrefetchUntilLearnedSkid) {
  MemorySystem M(sbBackendConfig());
  TskidPrefetcher U(TskidConfig::baseline()); // lead 400, minskid 64
  // Learn: trigger PC 0xA's miss precedes target PC 0xB's by 500 cycles
  // at a +100-block delta.
  U.trainOnMiss(0xA, 100 * 64, 1000, M);
  U.trainOnMiss(0xB, 200 * 64, 1500, M);
  // The trigger fires again: the target's line is predicted but NOT
  // issued — it waits for (skid - lead) = 100 cycles.
  U.trainOnMiss(0xA, 300 * 64, 3000, M);
  EXPECT_EQ(U.numPending(), 1u);
  EXPECT_EQ(U.snapshotStats().get("delayed_issues"), 1u);
  EXPECT_EQ(U.snapshotStats().get("lines_prefetched"), 0u);
  // Probing before the issue time finds nothing...
  EXPECT_FALSE(U.probe(400 * 64, 3050, M).has_value());
  // ...and after it (3000 + 500 - 400 = 3100) the line is in flight.
  EXPECT_TRUE(U.probe(400 * 64, 3200, M).has_value());
  EXPECT_EQ(U.numPending(), 0u);
  EXPECT_EQ(U.snapshotStats().get("lines_prefetched"), 1u);
}

TEST(Tskid, ShortSkidIssuesImmediately) {
  MemorySystem M(sbBackendConfig());
  TskidPrefetcher U(TskidConfig::baseline());
  // Skid 20 < minskid 64: timing is noise, issue right away.
  U.trainOnMiss(0xA, 100 * 64, 1000, M);
  U.trainOnMiss(0xB, 200 * 64, 1020, M);
  U.trainOnMiss(0xA, 300 * 64, 2000, M);
  EXPECT_EQ(U.numPending(), 0u);
  EXPECT_EQ(U.snapshotStats().get("lines_prefetched"), 1u);
  EXPECT_TRUE(U.probe(400 * 64, 2001, M).has_value());
}

TEST(Tskid, LearnsTriggerAssociations) {
  MemorySystem M(sbBackendConfig());
  TskidPrefetcher U(TskidConfig::baseline());
  U.trainOnMiss(0xA, 100 * 64, 1000, M);
  U.trainOnMiss(0xB, 200 * 64, 1500, M);
  EXPECT_GE(U.snapshotStats().get("triggers_learned"), 1u);
}

//===----------------------------------------------------------------------===//
// PrefetcherRegistry
//===----------------------------------------------------------------------===//

TEST(PrefetcherRegistry, ArsenalIsRegistered) {
  std::vector<std::string> Names = PrefetcherRegistry::instance().names();
  for (const char *N :
       {"sb4x4", "sb8x8", "stream", "enhanced-stream", "dcpt", "tskid"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), N), Names.end())
        << "missing registry entry: " << N;
  // The fig9 sweep set excludes the parameterized "stream" alias (it
  // would duplicate sb8x8's row) and includes the four real units.
  std::vector<std::string> Arsenal =
      PrefetcherRegistry::instance().arsenalNames();
  EXPECT_EQ(std::find(Arsenal.begin(), Arsenal.end(), "stream"),
            Arsenal.end());
  EXPECT_GE(Arsenal.size(), 5u); // sb4x4, sb8x8, enhanced-stream, dcpt, tskid
}

TEST(PrefetcherRegistry, CreateRoundTripsEveryArsenalName) {
  for (const std::string &N :
       PrefetcherRegistry::instance().arsenalNames()) {
    std::string Error;
    auto U = PrefetcherRegistry::instance().create(N, PrefetcherEnv{}, &Error);
    ASSERT_TRUE(U) << N << ": " << Error;
    EXPECT_FALSE(U->name().empty());
    EXPECT_EQ(U->snapshotStats().Prefetcher, U->name());
  }
}

TEST(PrefetcherRegistry, NoneIsNotAnError) {
  for (const char *Spec : {"none", ""}) {
    std::string Error = "untouched";
    auto U =
        PrefetcherRegistry::instance().create(Spec, PrefetcherEnv{}, &Error);
    EXPECT_EQ(U, nullptr);
    EXPECT_EQ(Error, "untouched");
    EXPECT_TRUE(PrefetcherRegistry::isNone(Spec));
  }
  EXPECT_FALSE(PrefetcherRegistry::isNone("sb8x8"));
}

TEST(PrefetcherRegistry, UnknownNameSetsError) {
  std::string Error;
  auto U = PrefetcherRegistry::instance().create("bogus", PrefetcherEnv{},
                                                 &Error);
  EXPECT_EQ(U, nullptr);
  EXPECT_NE(Error.find("unknown prefetcher 'bogus'"), std::string::npos);
  EXPECT_NE(Error.find("sb8x8"), std::string::npos); // lists what exists
}

TEST(PrefetcherRegistry, KnobsReachTheUnit) {
  std::string Error;
  auto U = PrefetcherRegistry::instance().create("dcpt:entries=64,degree=2",
                                                 PrefetcherEnv{}, &Error);
  ASSERT_TRUE(U) << Error;
  auto *D = dynamic_cast<DcptPrefetcher *>(U.get());
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->config().NumEntries, 64u);
  EXPECT_EQ(D->config().Degree, 2u);
  EXPECT_EQ(D->config().NumDeltas, 8u); // untouched knob keeps its default

  auto S = PrefetcherRegistry::instance().create("stream:buffers=4,depth=4",
                                                 PrefetcherEnv{}, &Error);
  ASSERT_TRUE(S) << Error;
  auto *SB = dynamic_cast<StreamBufferUnit *>(S.get());
  ASSERT_NE(SB, nullptr);
  EXPECT_EQ(SB->config().NumBuffers, 4u);
  EXPECT_EQ(SB->config().Depth, 4u);
}

TEST(PrefetcherRegistry, BadKnobsAreRejected) {
  std::string Error;
  EXPECT_EQ(PrefetcherRegistry::instance().create("dcpt:bogus=3",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown knob 'bogus'"), std::string::npos);
  EXPECT_EQ(PrefetcherRegistry::instance().create("dcpt:entries=abc",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("non-integer"), std::string::npos);
  EXPECT_EQ(PrefetcherRegistry::instance().create("dcpt:entries",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("malformed knob"), std::string::npos);
}

TEST(PrefetcherRegistry, SignedKnobValuesAreRejected) {
  // strtoull would happily wrap "-1" to 2^64-1 and the factory would then
  // truncate it to a huge unsigned depth; the parser owns this rejection.
  std::string Error;
  EXPECT_EQ(PrefetcherRegistry::instance().create("sb8x8:depth=-1",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("knobs are unsigned"), std::string::npos) << Error;
  EXPECT_EQ(PrefetcherRegistry::instance().create("dcpt:entries=+4",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("knobs are unsigned"), std::string::npos) << Error;
}

TEST(PrefetcherRegistry, OutOfRangeKnobValuesAreRejected) {
  std::string Error;
  // 2^33: fits in uint64 but would truncate when narrowed to unsigned.
  EXPECT_EQ(PrefetcherRegistry::instance().create("sb8x8:depth=8589934592",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
  // Past 2^64: strtoull saturates and sets ERANGE.
  EXPECT_EQ(PrefetcherRegistry::instance().create(
                "sb8x8:depth=99999999999999999999999", PrefetcherEnv{},
                &Error),
            nullptr);
  EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
  // The boundary itself is fine.
  PrefetcherSpec S;
  EXPECT_TRUE(PrefetcherSpec::parse("sb8x8:depth=4294967295", S, &Error));
  EXPECT_EQ(S.knobOr("depth", 0), 4294967295ull);
}

TEST(PrefetcherRegistry, DuplicateKnobsAreRejected) {
  // knobOr is first-wins, so "depth=4,depth=16" used to silently mean
  // depth=4 while fingerprinting as a distinct config.
  std::string Error;
  EXPECT_EQ(PrefetcherRegistry::instance().create("sb8x8:depth=4,depth=16",
                                                  PrefetcherEnv{}, &Error),
            nullptr);
  EXPECT_NE(Error.find("duplicate knob 'depth'"), std::string::npos) << Error;
  // Distinct knobs still parse.
  PrefetcherSpec S;
  EXPECT_TRUE(
      PrefetcherSpec::parse("stream:buffers=4,depth=4", S, &Error));
}

TEST(PrefetcherRegistryDeathTest, ReRegisteringANameAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PrefetcherRegistry::Info I;
  I.Name = "sb8x8"; // collides with the built-in arsenal
  I.Make = [](const PrefetcherSpec &, const PrefetcherEnv &,
              std::string *) -> std::unique_ptr<HwPrefetcher> {
    return nullptr;
  };
  EXPECT_DEATH(PrefetcherRegistry::instance().add(std::move(I)),
               "duplicate prefetcher registration 'sb8x8'");
}

TEST(PrefetcherRegistry, PageBoundedEnvConfiguresStreamBuffers) {
  PrefetcherEnv Env;
  Env.PageBounded = true;
  Env.PageBits = 13;
  std::string Error;
  auto U = PrefetcherRegistry::instance().create("sb8x8", Env, &Error);
  ASSERT_TRUE(U) << Error;
  auto *SB = dynamic_cast<StreamBufferUnit *>(U.get());
  ASSERT_NE(SB, nullptr);
  EXPECT_TRUE(SB->config().StopAtPageBoundary);
  EXPECT_EQ(SB->config().PageBits, 13u);
}

//===----------------------------------------------------------------------===//
// Train/issue/feedback contract through a real MemorySystem
//===----------------------------------------------------------------------===//

namespace {

/// Counting stub exercising every optional hook of the contract.
class HookCountingPrefetcher final : public HwPrefetcher {
public:
  uint64_t Misses = 0, Accesses = 0, Fills = 0, Probes = 0;

  void trainOnMiss(Addr, Addr, Cycle, MemoryBackend &) override { ++Misses; }
  std::optional<Cycle> probe(Addr, Cycle, MemoryBackend &) override {
    ++Probes;
    return std::nullopt;
  }
  bool wantsAccessTraining() const override { return true; }
  void trainOnAccess(Addr, Addr, Cycle) override { ++Accesses; }
  bool wantsFillTraining() const override { return true; }
  void trainOnFill(Addr, Cycle, AccessKind) override { ++Fills; }
  std::string name() const override { return "hook-counter"; }
};

} // namespace

TEST(HwPfContract, HooksFireFromMemorySystemAccess) {
  MemorySystem M(sbBackendConfig());
  auto Owned = std::make_unique<HookCountingPrefetcher>();
  HookCountingPrefetcher *Pf = Owned.get();
  M.attachPrefetcher(std::move(Owned));

  // Cold demand load: probe + miss training + a fill.
  M.access(0x100, 0x10000, AccessKind::DemandLoad, 0);
  EXPECT_EQ(Pf->Probes, 1u);
  EXPECT_EQ(Pf->Misses, 1u);
  EXPECT_EQ(Pf->Fills, 1u);
  EXPECT_EQ(Pf->Accesses, 0u);

  // Same line once the fill has landed: a data-present L1 hit trains the
  // access hook and nothing else.
  M.access(0x100, 0x10000, AccessKind::DemandLoad, 10'000);
  EXPECT_EQ(Pf->Accesses, 1u);
  EXPECT_EQ(Pf->Misses, 1u);
  EXPECT_EQ(Pf->Fills, 1u);

  // Hardware-prefetch traffic never trains the access hook.
  M.access(0x100, 0x20000, AccessKind::DemandLoad, 20'000);
  uint64_t AccessesBefore = Pf->Accesses;
  M.access(0x100, 0x20000, AccessKind::HardwarePrefetch, 30'000);
  EXPECT_EQ(Pf->Accesses, AccessesBefore);
}

TEST(HwPfContract, TskidFillHookFiresEndToEnd) {
  MemorySystem M(sbBackendConfig());
  std::string Error;
  auto U = PrefetcherRegistry::instance().create("tskid", PrefetcherEnv{},
                                                 &Error);
  ASSERT_TRUE(U) << Error;
  M.attachPrefetcher(std::move(U));
  for (unsigned I = 0; I < 8; ++I)
    M.access(0x100, 0x10000 + I * 0x1000, AccessKind::DemandLoad,
             Cycle(I) * 1000);
  const HwPrefetcher *Pf = M.prefetcher();
  ASSERT_NE(Pf, nullptr);
  EXPECT_GT(Pf->snapshotStats().get("fills_observed"), 0u);
}

TEST(HwPfContract, FeedbackCountersTrackStreamBufferActivity) {
  MemorySystem M(sbBackendConfig());
  std::string Error;
  auto U =
      PrefetcherRegistry::instance().create("sb8x8", PrefetcherEnv{}, &Error);
  ASSERT_TRUE(U) << Error;
  M.attachPrefetcher(std::move(U));

  // A long stride-64 demand stream: buffers allocate, run ahead, and the
  // demand consumes their lines.
  Cycle Now = 0;
  for (unsigned I = 0; I < 200; ++I) {
    AccessResult R =
        M.access(0x100, 0x100000 + uint64_t(I) * 64, AccessKind::DemandLoad,
                 Now);
    Now = R.ReadyCycle + 1;
  }
  const HwPfFeedback &Fb = M.feedback();
  EXPECT_GT(Fb.Issued, 0u);
  EXPECT_GT(Fb.Useful + Fb.Late, 0u);
  EXPECT_GT(Fb.DemandMisses, 0u); // the cold misses before confidence
  EXPECT_GE(Fb.accuracy(), 0.0);
  EXPECT_LE(Fb.coverage(), 1.0);
  EXPECT_GT(Fb.coverage(), 0.0);

  // clearStats resets the feedback channel with the rest.
  M.clearStats();
  EXPECT_EQ(M.feedback().Issued, 0u);
  EXPECT_EQ(M.feedback().Useful + M.feedback().Late, 0u);
}

TEST(HwPfContract, MidRunSwapKeepsMemorySystemConsistent) {
  // The control plane swaps units at epoch boundaries mid-run; the
  // referee counters (feedback channel), the MSHR fill heap, and the bus
  // schedule all live in MemorySystem, so they must survive the swap.
  MemorySystem M(sbBackendConfig());
  std::string Error;
  auto U =
      PrefetcherRegistry::instance().create("sb8x8", PrefetcherEnv{}, &Error);
  ASSERT_TRUE(U) << Error;
  M.attachPrefetcher(std::move(U));

  Cycle Now = 0;
  for (unsigned I = 0; I < 120; ++I) {
    AccessResult R = M.access(0x100, 0x100000 + uint64_t(I) * 64,
                              AccessKind::DemandLoad, Now);
    EXPECT_GE(R.ReadyCycle, Now);
    Now = R.ReadyCycle + 1;
  }
  const HwPfFeedback FbBefore = M.feedback();
  EXPECT_GT(FbBefore.Issued, 0u);
  const uint64_t LoadsBefore = M.stats().DemandLoads;

  // Swap to a different unit with fills still conceptually in flight
  // (the access above just scheduled one).
  auto Next =
      PrefetcherRegistry::instance().create("dcpt", PrefetcherEnv{}, &Error);
  ASSERT_TRUE(Next) << Error;
  M.attachPrefetcher(std::move(Next));
  ASSERT_NE(M.prefetcher(), nullptr);
  EXPECT_EQ(M.prefetcher()->name(), "dcpt");

  // Referee counters are monotone across the swap, not reset.
  const HwPfFeedback &FbAfter = M.feedback();
  EXPECT_GE(FbAfter.Issued, FbBefore.Issued);
  EXPECT_GE(FbAfter.Useful + FbAfter.Late, FbBefore.Useful + FbBefore.Late);

  // The memory system keeps serving demand with sane timing, and demand
  // accounting continues from where it was.
  for (unsigned I = 0; I < 60; ++I) {
    AccessResult R = M.access(0x200, 0x400000 + uint64_t(I) * 64,
                              AccessKind::DemandLoad, Now);
    EXPECT_GE(R.ReadyCycle, Now);
    Now = R.ReadyCycle + 1;
  }
  EXPECT_EQ(M.stats().DemandLoads, LoadsBefore + 60);
  // The new unit trains on the post-swap miss stream.
  EXPECT_GT(M.prefetcher()->snapshotStats().get("misses_observed") +
                M.prefetcher()->snapshotStats().get("pattern_matches") +
                M.feedback().DemandMisses,
            FbBefore.DemandMisses);

  // Detaching entirely is also a legal mid-run transition.
  M.attachPrefetcher(nullptr);
  EXPECT_EQ(M.prefetcher(), nullptr);
  AccessResult R = M.access(0x300, 0x800000, AccessKind::DemandLoad, Now);
  EXPECT_GE(R.ReadyCycle, Now);
}
