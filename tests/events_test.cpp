//===- events_test.cpp - Event bus / queue / observability tests ----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Covers the event subsystem from unit level (queue drop semantics, bus
// dispatch contract, name table, registry determinism, tracer ring) up to
// the whole-machine invariant the refactor promised: subscribing a passive
// tracer to the bus changes nothing about a simulation's result, across
// all 14 workloads.
//
//===----------------------------------------------------------------------===//

#include "events/EventBus.h"
#include "events/EventQueue.h"
#include "events/EventTracer.h"
#include "support/StatRegistry.h"
#include "sim/Simulation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace trident;

namespace {

HardwareEvent markAt(Addr PC) {
  return HardwareEvent::traceMark(EventKind::TraceEntry, /*TraceId=*/7, PC,
                                  /*Now=*/PC);
}

//===----------------------------------------------------------------------===//
// EventQueue
//===----------------------------------------------------------------------===//

TEST(EventQueue, FifoOrderPreserved) {
  EventQueue Q(8);
  for (Addr PC = 100; PC < 105; ++PC)
    EXPECT_TRUE(Q.tryPush(markAt(PC)));
  EXPECT_EQ(Q.size(), 5u);
  for (Addr PC = 100; PC < 105; ++PC)
    EXPECT_EQ(Q.pop().PC, PC);
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.dropped(), 0u);
}

TEST(EventQueue, OverflowDropsIncomingDeterministically) {
  // Drop policy: the *incoming* event drops; queued work is never
  // cancelled. So after overflow the survivors are exactly the oldest
  // Capacity pushes, in push order.
  EventQueue Q(2);
  EXPECT_TRUE(Q.tryPush(markAt(1)));
  EXPECT_TRUE(Q.tryPush(markAt(2)));
  EXPECT_FALSE(Q.tryPush(markAt(3)));
  EXPECT_FALSE(Q.tryPush(markAt(4)));
  EXPECT_EQ(Q.dropped(), 2u);
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.pop().PC, 1u);
  // A slot freed up: the next push is admitted again.
  EXPECT_TRUE(Q.tryPush(markAt(5)));
  EXPECT_EQ(Q.pop().PC, 2u);
  EXPECT_EQ(Q.pop().PC, 5u);
  EXPECT_EQ(Q.dropped(), 2u);
  EXPECT_EQ(Q.peakOccupancy(), 2u);
}

TEST(EventQueue, ZeroCapacityDropsEverything) {
  EventQueue Q(0);
  for (int I = 0; I < 3; ++I)
    EXPECT_FALSE(Q.tryPush(markAt(I)));
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.dropped(), 3u);
  EXPECT_EQ(Q.peakOccupancy(), 0u);
}

TEST(EventQueue, OccupancySampledPrePush) {
  EventQueue Q(4);
  Q.tryPush(markAt(1)); // sampled at occupancy 0
  Q.tryPush(markAt(2)); // sampled at occupancy 1
  Q.tryPush(markAt(3)); // sampled at occupancy 2
  const Histogram &H = Q.occupancyHistogram();
  EXPECT_EQ(H.total(), 3u);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
}

TEST(EventQueue, ClearStatsKeepsQueuedEvents) {
  EventQueue Q(1);
  Q.tryPush(markAt(9));
  Q.tryPush(markAt(10)); // dropped
  EXPECT_EQ(Q.dropped(), 1u);
  Q.clearStats();
  EXPECT_EQ(Q.dropped(), 0u);
  EXPECT_EQ(Q.occupancyHistogram().total(), 0u);
  // Peak restarts at the current occupancy, and the queued event survives.
  EXPECT_EQ(Q.peakOccupancy(), 1u);
  EXPECT_EQ(Q.pop().PC, 9u);
}

//===----------------------------------------------------------------------===//
// EventBus
//===----------------------------------------------------------------------===//

struct OrderRecorder final : EventSubscriber {
  int Id;
  std::vector<int> &Log;
  OrderRecorder(int WhoId, std::vector<int> &SharedLog)
      : Id(WhoId), Log(SharedLog) {}
  void onEvent(const HardwareEvent &) override { Log.push_back(Id); }
};

TEST(EventBus, DispatchOrderEqualsSubscriptionOrder) {
  EventBus Bus;
  std::vector<int> Log;
  OrderRecorder A(1, Log), B(2, Log), C(3, Log);
  Bus.subscribe(&A, eventMaskOf(EventKind::TraceEntry));
  Bus.subscribe(&B, eventMaskOf(EventKind::TraceEntry));
  Bus.subscribe(&C, eventMaskOf(EventKind::TraceExit));
  Bus.publish(markAt(1));
  EXPECT_EQ(Log, (std::vector<int>{1, 2}));
  Log.clear();
  Bus.publish(HardwareEvent::traceMark(EventKind::TraceExit, 7, 1, 1));
  EXPECT_EQ(Log, (std::vector<int>{3}));
}

TEST(EventBus, MaskFilteringAndActiveUnion) {
  EventBus Bus;
  EXPECT_EQ(Bus.activeMask(), 0u);
  std::vector<int> Log;
  OrderRecorder A(1, Log);
  Bus.subscribe(&A, eventMaskOf(EventKind::Commit) |
                        eventMaskOf(EventKind::HelperDone));
  EXPECT_EQ(Bus.activeMask(), eventMaskOf(EventKind::Commit) |
                                  eventMaskOf(EventKind::HelperDone));
  EXPECT_TRUE(Bus.anyFor(EventKind::Commit));
  EXPECT_FALSE(Bus.anyFor(EventKind::Branch));
  // Publishing an unsubscribed kind still counts, but delivers nowhere.
  Bus.publish(markAt(1));
  EXPECT_TRUE(Log.empty());
  EXPECT_EQ(Bus.published(EventKind::TraceEntry), 1u);
  Bus.publish(HardwareEvent::helperDone(0, 5));
  EXPECT_EQ(Log.size(), 1u);
  Bus.clearCounts();
  EXPECT_EQ(Bus.published(EventKind::TraceEntry), 0u);
  EXPECT_EQ(Bus.numSubscribers(EventKind::Commit), 1u);
  EXPECT_EQ(Bus.numSubscribers(EventKind::Branch), 0u);
}

//===----------------------------------------------------------------------===//
// Event name table
//===----------------------------------------------------------------------===//

TEST(EventNames, EveryKindHasUniqueName) {
  std::set<std::string> Seen;
  for (unsigned K = 0; K < kNumEventKinds; ++K) {
    std::string Name = eventKindName(static_cast<EventKind>(K));
    EXPECT_FALSE(Name.empty());
    EXPECT_NE(Name, "<bad>") << "kind " << K << " missing a name";
    EXPECT_TRUE(Seen.insert(Name).second) << "duplicate name " << Name;
  }
  EXPECT_STREQ(eventKindName(EventKind::NumKinds), "<bad>");
}

//===----------------------------------------------------------------------===//
// StatRegistry
//===----------------------------------------------------------------------===//

TEST(StatRegistry, LookupAndOverwrite) {
  StatRegistry R;
  R.setCounter("a.count", 5);
  R.setReal("a.ipc", 1.25);
  EXPECT_TRUE(R.has("a.count"));
  EXPECT_FALSE(R.has("missing"));
  EXPECT_EQ(R.counter("a.count"), 5u);
  EXPECT_DOUBLE_EQ(R.real("a.ipc"), 1.25);
  R.setCounter("a.count", 9);
  EXPECT_EQ(R.counter("a.count"), 9u);
  EXPECT_EQ(R.size(), 2u);
  // Type-mismatched lookups return the zero of the asked-for type.
  EXPECT_EQ(R.counter("a.ipc"), 0u);
  EXPECT_DOUBLE_EQ(R.real("a.count"), 0.0);
}

TEST(StatRegistry, JsonlByteIdenticalAcrossInsertionOrder) {
  Histogram H(1.0, 3);
  H.addSample(0);
  H.addSample(2);

  StatRegistry A;
  A.setCounter("zeta", 1);
  A.setReal("alpha.x", 0.1);
  A.setHistogram("mid.h", H);
  A.setCounter("alpha.a", 42);

  StatRegistry B;
  B.setCounter("alpha.a", 42);
  B.setHistogram("mid.h", H);
  B.setCounter("zeta", 1);
  B.setReal("alpha.x", 0.1);

  EXPECT_EQ(A.toJsonl(), B.toJsonl());

  auto Sorted = A.sortedEntries();
  ASSERT_EQ(Sorted.size(), 4u);
  EXPECT_EQ(Sorted[0]->Name, "alpha.a");
  EXPECT_EQ(Sorted[1]->Name, "alpha.x");
  EXPECT_EQ(Sorted[2]->Name, "mid.h");
  EXPECT_EQ(Sorted[3]->Name, "zeta");
}

TEST(StatRegistry, JsonlLineShapes) {
  StatRegistry R;
  R.setCounter("c", 7);
  R.setReal("r", 0.5);
  std::string J = R.toJsonl();
  EXPECT_NE(J.find("{\"name\":\"c\",\"type\":\"counter\",\"value\":7}"),
            std::string::npos);
  EXPECT_NE(J.find("{\"name\":\"r\",\"type\":\"real\",\"value\":0.5}"),
            std::string::npos);
  // One object per line, every line brace-delimited.
  size_t Lines = 0;
  for (size_t Pos = 0; (Pos = J.find('\n', Pos)) != std::string::npos; ++Pos)
    ++Lines;
  EXPECT_EQ(Lines, 2u);
}

//===----------------------------------------------------------------------===//
// Deferred (batched) dispatch
//===----------------------------------------------------------------------===//

/// Records (Kind, PC) pairs so batch ordering is observable.
struct KindPcRecorder final : EventSubscriber {
  std::vector<std::pair<EventKind, Addr>> Log;
  void onEvent(const HardwareEvent &E) override {
    Log.emplace_back(E.Kind, E.PC);
  }
};

TEST(EventBusDeferred, NothingDeliveredUntilFlush) {
  EventBus Bus;
  KindPcRecorder R;
  Bus.subscribeDeferred(&R, kAllEventsMask);
  // Deferred-only subscription still raises the active mask (publishers
  // gate event construction on it).
  EXPECT_EQ(Bus.activeMask(), kAllEventsMask);
  Bus.publish(markAt(1));
  Bus.publish(markAt(2));
  EXPECT_TRUE(R.Log.empty());
  EXPECT_EQ(Bus.staged(), 2u);
  // Counted at publish entry, before any delivery happens.
  EXPECT_EQ(Bus.published(EventKind::TraceEntry), 2u);
  Bus.flush();
  ASSERT_EQ(R.Log.size(), 2u);
  EXPECT_EQ(Bus.staged(), 0u);
  EXPECT_EQ(R.Log[0].second, 1u);
  EXPECT_EQ(R.Log[1].second, 2u);
}

TEST(EventBusDeferred, FlushDeliversKindOrderBatchesArrivalOrderWithin) {
  EventBus Bus;
  KindPcRecorder R;
  Bus.subscribeDeferred(&R, kAllEventsMask);
  // Interleave two kinds; Commit enumerates before TraceEntry.
  Instruction I;
  Bus.publish(HardwareEvent::traceMark(EventKind::TraceEntry, 7, 10, 10));
  Bus.publish(HardwareEvent::commit(0, 20, I, 20));
  Bus.publish(HardwareEvent::traceMark(EventKind::TraceEntry, 7, 11, 11));
  Bus.publish(HardwareEvent::commit(0, 21, I, 21));
  Bus.flush();
  ASSERT_EQ(R.Log.size(), 4u);
  EXPECT_EQ(R.Log[0], (std::pair<EventKind, Addr>{EventKind::Commit, 20}));
  EXPECT_EQ(R.Log[1], (std::pair<EventKind, Addr>{EventKind::Commit, 21}));
  EXPECT_EQ(R.Log[2],
            (std::pair<EventKind, Addr>{EventKind::TraceEntry, 10}));
  EXPECT_EQ(R.Log[3],
            (std::pair<EventKind, Addr>{EventKind::TraceEntry, 11}));
}

TEST(EventBusDeferred, BlockFillTriggersAutomaticFlush) {
  EventBus Bus;
  KindPcRecorder R;
  Bus.subscribeDeferred(&R, kAllEventsMask);
  for (size_t I = 0; I < EventBus::kStagingBlock - 1; ++I)
    Bus.publish(markAt(static_cast<Addr>(I)));
  EXPECT_TRUE(R.Log.empty());
  Bus.publish(markAt(999)); // fills the block
  EXPECT_EQ(R.Log.size(), EventBus::kStagingBlock);
  EXPECT_EQ(Bus.staged(), 0u);
}

TEST(EventBusDeferred, StagedEventsDeepCopyInsnAndAccess) {
  // The publisher's Instruction/AccessResult live on its stack; a staged
  // event must survive their death and mutation.
  EventBus Bus;
  struct Checker final : EventSubscriber {
    unsigned Seen = 0;
    void onEvent(const HardwareEvent &E) override {
      ++Seen;
      ASSERT_NE(E.Insn, nullptr);
      EXPECT_EQ(E.Insn->Op, Opcode::Load);
      EXPECT_EQ(E.Insn->Imm, 40);
      ASSERT_NE(E.Access, nullptr);
      EXPECT_EQ(E.Access->ReadyCycle, 123u);
    }
  } C;
  Bus.subscribeDeferred(&C, eventMaskOf(EventKind::LoadOutcome));
  {
    Instruction I;
    I.Op = Opcode::Load;
    I.Imm = 40;
    AccessResult A;
    A.ReadyCycle = 123;
    Bus.publish(HardwareEvent::loadOutcome(0, 5, I, 0x1000, A, 50));
    // Clobber the publisher storage before the flush.
    I.Imm = -1;
    A.ReadyCycle = 0;
  }
  Bus.flush();
  EXPECT_EQ(C.Seen, 1u);
}

TEST(EventBusDeferred, SyncSubscribersUnaffectedByDeferredPeers) {
  EventBus Bus;
  KindPcRecorder Sync, Deferred;
  Bus.subscribe(&Sync, kAllEventsMask);
  Bus.subscribeDeferred(&Deferred, kAllEventsMask);
  Bus.publish(markAt(3));
  EXPECT_EQ(Sync.Log.size(), 1u); // immediate, as ever
  EXPECT_TRUE(Deferred.Log.empty());
  Bus.flush();
  EXPECT_EQ(Deferred.Log.size(), 1u);
  EXPECT_EQ(Bus.published(EventKind::TraceEntry), 1u); // one publish, not two
}

//===----------------------------------------------------------------------===//
// EventTracer
//===----------------------------------------------------------------------===//

TEST(EventTracer, RingKeepsNewestOldestFirst) {
  EventTracer T(/*Capacity=*/4);
  EventBus Bus;
  Bus.subscribe(&T, T.mask());
  for (Addr PC = 0; PC < 10; ++PC)
    Bus.publish(markAt(PC));
  EXPECT_EQ(T.recorded(), 10u);
  EXPECT_EQ(T.overwritten(), 6u);
  EXPECT_EQ(T.size(), 4u);
  auto Snap = T.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Snap[I].PC, 6u + I); // oldest survivor first
    EXPECT_EQ(Snap[I].Extra, 7u);  // the trace id rode along
  }
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.recorded(), 0u);
}

TEST(EventTracer, MaskLimitsWhatIsRecorded) {
  EventTracer T(8, eventMaskOf(EventKind::TraceExit));
  EventBus Bus;
  Bus.subscribe(&T, T.mask());
  Bus.publish(markAt(1)); // TraceEntry: filtered out by subscription
  Bus.publish(HardwareEvent::traceMark(EventKind::TraceExit, 3, 2, 9));
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T.snapshot()[0].Kind, EventKind::TraceExit);
}

TEST(EventTracer, ChromeTraceJsonWellFormed) {
  EventTracer T(4);
  EventBus Bus;
  Bus.subscribe(&T, T.mask());
  Bus.publish(markAt(1));
  std::string J = T.chromeTraceJson();
  EXPECT_EQ(J.front(), '{');
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"trace-entry\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
  // Braces and brackets balance (cheap structural sanity; the CI smoke
  // step runs a real JSON parser over an exported file).
  long Brace = 0, Bracket = 0;
  for (char C : J) {
    Brace += C == '{' ? 1 : C == '}' ? -1 : 0;
    Bracket += C == '[' ? 1 : C == ']' ? -1 : 0;
    EXPECT_GE(Brace, 0);
    EXPECT_GE(Bracket, 0);
  }
  EXPECT_EQ(Brace, 0);
  EXPECT_EQ(Bracket, 0);
}

//===----------------------------------------------------------------------===//
// Whole-machine invariant: the tracer is strictly passive
//===----------------------------------------------------------------------===//

SimConfig tinyTrident() {
  SimConfig C = SimConfig::withMode(PrefetchMode::SelfRepairing);
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;
  return C;
}

TEST(EventBusEndToEnd, TracerOnVsOffBitIdenticalAcrossAllWorkloads) {
  // The tentpole contract: re-seating the monitors as bus subscribers (and
  // riding a tracer behind them) must not change what the machine does.
  // The stat registry flattens every counter in the system, so comparing
  // its canonical JSONL export compares the whole SimResult at once.
  for (const std::string &Name : workloadNames()) {
    Workload W = makeWorkload(Name);
    SimConfig C = tinyTrident();
    SimResult Plain = runSimulation(W, C);
    EventTracer Tracer(1 << 12);
    SimResult Traced = runSimulation(W, C, &Tracer);

    EXPECT_EQ(Plain.RegChecksum, Traced.RegChecksum) << Name;
    EXPECT_EQ(Plain.Instructions, Traced.Instructions) << Name;
    EXPECT_EQ(Plain.Cycles, Traced.Cycles) << Name;
    EXPECT_EQ(Plain.Halted, Traced.Halted) << Name;
    EXPECT_EQ(Plain.HelperBusyCycles, Traced.HelperBusyCycles) << Name;
    EXPECT_EQ(Plain.BranchMispredicts, Traced.BranchMispredicts) << Name;
    // With Trident attached the hot-path kinds are already live, and the
    // filtered kinds publish unconditionally, so even the publish counts
    // must agree per kind.
    EXPECT_EQ(Plain.EventsPublished, Traced.EventsPublished) << Name;
    ASSERT_TRUE(Plain.Registry && Traced.Registry) << Name;
    EXPECT_EQ(Plain.Registry->toJsonl(), Traced.Registry->toJsonl()) << Name;
    EXPECT_GT(Tracer.recorded(), 0u) << Name;
  }
}

TEST(EventBusEndToEnd, HwPfFeedbackPublishesOnlyWhenIntervalSet) {
  // The feedback channel is opt-in: with the interval at its default of 0
  // no HwPfFeedback event is ever published (even with a subscribed
  // tracer), so existing event streams and stat exports stay identical.
  Workload W = makeWorkload("mcf");
  SimConfig C = SimConfig::hwBaseline();
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;

  EventTracer Off(1 << 12);
  SimResult ROff = runSimulation(W, C, &Off);
  EXPECT_EQ(ROff.EventsPublished[size_t(EventKind::HwPfFeedback)], 0u);

  C.Core.HwPfFeedbackIntervalCommits = 1'000;
  EventTracer On(1 << 12);
  SimResult ROn = runSimulation(W, C, &On);
  EXPECT_GT(ROn.EventsPublished[size_t(EventKind::HwPfFeedback)], 0u);
  // Roughly one event per interval of committed instructions.
  EXPECT_LE(ROn.EventsPublished[size_t(EventKind::HwPfFeedback)],
            ROn.Instructions / 1'000 + 1);
  // The tracer recorded them with the issued-count payload.
  unsigned Seen = 0;
  for (const auto &Rec : On.snapshot())
    if (Rec.Kind == EventKind::HwPfFeedback)
      ++Seen;
  EXPECT_GT(Seen, 0u);
  // And the opt-in stat block appears only on the configured run.
  ASSERT_TRUE(ROff.Registry && ROn.Registry);
  EXPECT_EQ(ROff.Registry->toJsonl().find("hwpf.feedback."),
            std::string::npos);
  EXPECT_NE(ROn.Registry->toJsonl().find("hwpf.feedback."),
            std::string::npos);
  // The cumulative counters the events carry come from the same channel
  // the result snapshot reports.
  EXPECT_GT(ROn.PfFeedback.Issued, 0u);
}

TEST(EventBusEndToEnd, TracerPassiveOnHardwareBaseline) {
  // Without Trident no one subscribes to the hot-path kinds, so a tracer
  // is the machine's only observer; the run itself must still be
  // untouched. (events.published.* legitimately differs here — the
  // hot-path kinds only get constructed once somebody listens — so the
  // comparison excludes that namespace.)
  SimConfig C = SimConfig::hwBaseline();
  C.SimInstructions = 40'000;
  C.WarmupInstructions = 10'000;
  Workload W = makeWorkload("mcf");
  SimResult Plain = runSimulation(W, C);
  EventTracer Tracer(1 << 12);
  SimResult Traced = runSimulation(W, C, &Tracer);
  EXPECT_EQ(Plain.RegChecksum, Traced.RegChecksum);
  EXPECT_EQ(Plain.Cycles, Traced.Cycles);
  EXPECT_EQ(Plain.Instructions, Traced.Instructions);
  EXPECT_EQ(Plain.BranchMispredicts, Traced.BranchMispredicts);
  EXPECT_GT(Traced.EventsPublished[size_t(EventKind::Commit)], 0u);
  EXPECT_EQ(Plain.EventsPublished[size_t(EventKind::Commit)], 0u);
}

} // namespace
