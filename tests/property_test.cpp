//===- property_test.cpp - Property-based / parameterized suites -----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// Parameterized sweeps over random seeds checking the system's load-bearing
// invariants:
//   * the timing core computes exactly what a plain interpreter computes,
//   * dynamic trace optimization (all prefetch modes) never changes program
//     semantics,
//   * the memory system's timing answers are sane for arbitrary streams.
//
//===----------------------------------------------------------------------===//

#include "dlt/DelinquentLoadTable.h"
#include "isa/ProgramBuilder.h"
#include "mem/Cache.h"
#include "sim/Simulation.h"
#include "support/Random.h"
#include "trident/WatchTable.h"
#include "workloads/fuzz/FuzzGenerator.h"

#include <gtest/gtest.h>

using namespace trident;

//===----------------------------------------------------------------------===//
// Random program generation
//===----------------------------------------------------------------------===//

namespace {

constexpr Addr DataBase = 0x5000'0000;

/// Generates a random but well-formed program: a prologue, a counted loop
/// whose body mixes ALU ops, strided loads/stores, and an occasional inner
/// branch with a *stable* direction (so hot traces can form), then Halt.
/// Registers: r1 loop counter, r2 limit, r3 striding base, r10..r20 data.
Program randomLoopProgram(uint64_t Seed, unsigned TripCount) {
  SplitMix64 Rng(Seed);
  ProgramBuilder B;
  B.loadImm(1, 0).loadImm(2, TripCount);
  B.loadImm(3, DataBase);
  for (unsigned R = 10; R <= 20; ++R)
    B.loadImm(R, Rng.next() & 0xFFFF);
  B.label("loop");
  unsigned BodyLen = 4 + static_cast<unsigned>(Rng.nextBelow(12));
  for (unsigned I = 0; I < BodyLen; ++I) {
    unsigned Rd = 10 + static_cast<unsigned>(Rng.nextBelow(11));
    unsigned Ra = 10 + static_cast<unsigned>(Rng.nextBelow(11));
    unsigned Rb = 10 + static_cast<unsigned>(Rng.nextBelow(11));
    switch (Rng.nextBelow(8)) {
    case 0:
      B.alu(Opcode::Add, Rd, Ra, Rb);
      break;
    case 1:
      B.alu(Opcode::Sub, Rd, Ra, Rb);
      break;
    case 2:
      B.alu(Opcode::Xor, Rd, Ra, Rb);
      break;
    case 3:
      B.aluImm(Opcode::AddI, Rd, Ra,
               static_cast<int64_t>(Rng.nextBelow(1000)));
      break;
    case 4:
      B.aluImm(Opcode::ShrI, Rd, Ra, 1 + Rng.nextBelow(8));
      break;
    case 5:
      B.load(Rd, 3, static_cast<int64_t>(Rng.nextBelow(16)) * 8);
      break;
    case 6:
      B.store(3, static_cast<int64_t>(Rng.nextBelow(16)) * 8, Ra);
      break;
    case 7: {
      // Stable inner branch: direction depends on a loop-invariant bit.
      std::string Skip = std::to_string(B.here());
      Skip.insert(0, 1, 's');
      B.beq(0, 0, Skip); // always taken
      B.alu(Opcode::Add, Rd, Ra, Rb);
      B.label(Skip);
      break;
    }
    }
  }
  B.addi(3, 3, 64); // striding base: loads become prefetchable
  B.addi(1, 1, 1);
  B.blt(1, 2, "loop");
  B.halt();
  return B.finish();
}

/// Reference interpreter: plain sequential semantics, no timing.
struct Interp {
  std::array<uint64_t, reg::NumRegs> Regs{};
  DataMemory Mem;
  uint64_t Committed = 0;

  void run(const Program &P) {
    Addr PC = P.entryPC();
    while (true) {
      const Instruction &I = P.at(PC);
      Addr Next = PC + 1;
      auto rd = [&](unsigned R) { return R == 0 ? 0 : Regs[R]; };
      auto wr = [&](unsigned R, uint64_t V) {
        if (R != 0)
          Regs[R] = V;
      };
      ++Committed;
      switch (I.Op) {
      case Opcode::Halt:
        return;
      case Opcode::Nop:
        break;
      case Opcode::Add:
        wr(I.Rd, rd(I.Rs1) + rd(I.Rs2));
        break;
      case Opcode::Sub:
        wr(I.Rd, rd(I.Rs1) - rd(I.Rs2));
        break;
      case Opcode::Xor:
        wr(I.Rd, rd(I.Rs1) ^ rd(I.Rs2));
        break;
      case Opcode::AddI:
        wr(I.Rd, rd(I.Rs1) + static_cast<uint64_t>(I.Imm));
        break;
      case Opcode::ShrI:
        wr(I.Rd, rd(I.Rs1) >> (I.Imm & 63));
        break;
      case Opcode::LoadImm:
        wr(I.Rd, static_cast<uint64_t>(I.Imm));
        break;
      case Opcode::Load:
      case Opcode::NFLoad:
        wr(I.Rd, Mem.read64(rd(I.Rs1) + static_cast<uint64_t>(I.Imm)));
        break;
      case Opcode::Store:
        Mem.write64(rd(I.Rs1) + static_cast<uint64_t>(I.Imm), rd(I.Rs2));
        break;
      case Opcode::Blt:
        if (static_cast<int64_t>(rd(I.Rs1)) <
            static_cast<int64_t>(rd(I.Rs2)))
          Next = static_cast<Addr>(I.Imm);
        break;
      case Opcode::Beq:
        if (rd(I.Rs1) == rd(I.Rs2))
          Next = static_cast<Addr>(I.Imm);
        break;
      case Opcode::Jump:
        Next = static_cast<Addr>(I.Imm);
        break;
      default:
        FAIL() << "interpreter: unexpected opcode "
               << opcodeName(I.Op);
      }
      PC = Next;
    }
  }
};

uint64_t regHash(const std::array<uint64_t, reg::NumRegs> &Regs) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned R = 0; R < reg::FirstScratch; ++R)
    H = (H ^ Regs[R]) * 1099511628211ull;
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// Property 1: the timing core is functionally a plain interpreter.
//===----------------------------------------------------------------------===//

class CoreVsInterpreter : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoreVsInterpreter, IdenticalArchitecturalResults) {
  Program P = randomLoopProgram(GetParam(), /*TripCount=*/400);

  Interp Ref;
  Ref.run(P);

  Workload W{"prop", "", P, [](DataMemory &) {}};
  SimConfig C = SimConfig::hwBaseline();
  C.WarmupInstructions = 0;
  C.SimInstructions = 100'000'000;
  SimResult R = runSimulation(W, C);

  EXPECT_TRUE(R.Halted);
  EXPECT_EQ(R.Instructions, Ref.Committed);
  EXPECT_EQ(R.RegChecksum, regHash(Ref.Regs)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreVsInterpreter,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Property 2: dynamic optimization preserves semantics in every mode.
//===----------------------------------------------------------------------===//

struct ModeSeed {
  uint64_t Seed;
  PrefetchMode Mode;
};

class OptimizationPreservesSemantics
    : public ::testing::TestWithParam<ModeSeed> {};

TEST_P(OptimizationPreservesSemantics, RegistersAndCommitsMatch) {
  // Enough iterations that traces form, get prefetch-optimized, and run.
  Program P = randomLoopProgram(GetParam().Seed, /*TripCount=*/30'000);
  Workload W{"prop-opt", "", P, [](DataMemory &) {}};

  SimConfig Ref = SimConfig::hwBaseline();
  Ref.WarmupInstructions = 0;
  Ref.SimInstructions = 100'000'000;
  SimResult RRef = runSimulation(W, Ref);
  ASSERT_TRUE(RRef.Halted);

  SimConfig C = SimConfig::withMode(GetParam().Mode);
  C.WarmupInstructions = 0;
  C.SimInstructions = 100'000'000;
  SimResult R = runSimulation(W, C);

  EXPECT_TRUE(R.Halted);
  EXPECT_EQ(R.Instructions, RRef.Instructions);
  EXPECT_EQ(R.RegChecksum, RRef.RegChecksum)
      << "seed " << GetParam().Seed << " mode "
      << prefetchModeName(GetParam().Mode);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, OptimizationPreservesSemantics,
    ::testing::Values(ModeSeed{11, PrefetchMode::None},
                      ModeSeed{11, PrefetchMode::Basic},
                      ModeSeed{11, PrefetchMode::WholeObject},
                      ModeSeed{11, PrefetchMode::SelfRepairing},
                      ModeSeed{12, PrefetchMode::SelfRepairing},
                      ModeSeed{13, PrefetchMode::SelfRepairing},
                      ModeSeed{14, PrefetchMode::SelfRepairing},
                      ModeSeed{15, PrefetchMode::Basic},
                      ModeSeed{16, PrefetchMode::WholeObject},
                      ModeSeed{17, PrefetchMode::SelfRepairing}),
    [](const ::testing::TestParamInfo<ModeSeed> &I) {
      std::string Name = std::string(prefetchModeName(I.param.Mode)) + "_s" +
                         std::to_string(I.param.Seed);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Property 3: memory-system timing sanity over random access streams.
//===----------------------------------------------------------------------===//

class MemTimingSanity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemTimingSanity, ReadyCyclesAreSane) {
  MemorySystem M(MemSystemConfig::baseline());
  SplitMix64 Rng(GetParam());
  Cycle Now = 0;
  for (int I = 0; I < 3000; ++I) {
    Addr A = (Rng.next() & 0x3FFFFF8); // 64MB region
    AccessKind K = Rng.nextBelow(4) == 0 ? AccessKind::SoftwarePrefetch
                                         : AccessKind::DemandLoad;
    AccessResult R = M.access(/*PC=*/Rng.nextBelow(4096), A, K, Now);
    // Data can never be ready before the L1 hit time or absurdly late.
    ASSERT_GE(R.ReadyCycle, Now + 3);
    ASSERT_LE(R.ReadyCycle, Now + 350 + 35 + 3 + 6 * 3000);
    Now += Rng.nextBelow(20);
  }
  const MemStats &S = M.stats();
  EXPECT_EQ(S.HitsNone + S.HitsPrefetched + S.PartialHits + S.Misses +
                S.MissesDueToPrefetch,
            S.DemandLoads);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemTimingSanity,
                         ::testing::Values(1, 2, 3, 4, 5));

//===----------------------------------------------------------------------===//
// Property 4: DLT configurations never fire events below their criteria.
//===----------------------------------------------------------------------===//

struct DltParams {
  unsigned Window;
  unsigned MissThreshold;
};

class DltCriteria : public ::testing::TestWithParam<DltParams> {};

TEST_P(DltCriteria, EventsRespectConfiguredThresholds) {
  DltConfig C;
  C.NumEntries = 64;
  C.Assoc = 2;
  C.MonitorWindow = GetParam().Window;
  C.MissThreshold = GetParam().MissThreshold;
  C.LatencyThreshold = 12;
  DelinquentLoadTable T(C);

  // Exactly (MissThreshold - 1) misses per window: never delinquent.
  bool Event = false;
  for (unsigned W = 0; W < 4; ++W)
    for (unsigned I = 0; I < C.MonitorWindow; ++I)
      Event |= T.update(0x100, 0x1000 + I * 64,
                        /*Miss=*/I < C.MissThreshold - 1, 300);
  EXPECT_FALSE(Event);

  // Exactly MissThreshold misses per window at high latency: delinquent.
  for (unsigned I = 0; I < C.MonitorWindow && !Event; ++I)
    Event |= T.update(0x200, 0x1000 + I * 64, I < C.MissThreshold, 300);
  EXPECT_TRUE(Event);
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndThresholds, DltCriteria,
    ::testing::Values(DltParams{128, 4}, DltParams{128, 8},
                      DltParams{256, 8}, DltParams{256, 16},
                      DltParams{512, 8}, DltParams{512, 61}),
    [](const ::testing::TestParamInfo<DltParams> &I) {
      std::string Name = "w";
      Name += std::to_string(I.param.Window);
      Name += "_m";
      Name += std::to_string(I.param.MissThreshold);
      return Name;
    });

//===----------------------------------------------------------------------===//
// Property 5: Instruction encode/decode is an exact round trip.
//===----------------------------------------------------------------------===//

class EncodeDecodeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodeDecodeRoundTrip, RandomInstructionsSurviveExactly) {
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 20'000; ++I) {
    Instruction In;
    In.Op = static_cast<Opcode>(
        Rng.nextBelow(static_cast<uint64_t>(Opcode::NumOpcodes)));
    In.Rd = static_cast<uint8_t>(Rng.next());
    In.Rs1 = static_cast<uint8_t>(Rng.next());
    In.Rs2 = static_cast<uint8_t>(Rng.next());
    In.Imm = static_cast<int64_t>(Rng.next());
    In.Synthetic = Rng.nextBelow(2) != 0;
    In.ExtraCommits = static_cast<uint8_t>(Rng.next());
    In.OrigPC = Rng.next();
    ASSERT_EQ(Instruction::decode(In.encode()), In);
  }
}

TEST_P(EncodeDecodeRoundTrip, BuilderProgramsSurviveExactly) {
  // Realistic encodings: every instruction a random builder program emits
  // (resolved branch targets, signed displacements, halts) round-trips.
  Program P = randomLoopProgram(GetParam() * 77 + 5, /*TripCount=*/50);
  for (Addr PC = P.basePC(); PC < P.endPC(); ++PC) {
    const Instruction &In = P.at(PC);
    ASSERT_EQ(Instruction::decode(In.encode()), In)
        << "at PC 0x" << std::hex << PC;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecodeRoundTrip,
                         ::testing::Values(11, 12, 13, 14, 15));

//===----------------------------------------------------------------------===//
// Property 6: bounded tables stay bounded under random churn, and the
// fault-injection eviction hooks empty exactly what they claim to.
//===----------------------------------------------------------------------===//

class TableEviction : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableEviction, WatchTableOccupancyBoundedAndInvalidateAllEmpties) {
  WatchTable T(16);
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 2'000; ++I) {
    uint32_t Id = static_cast<uint32_t>(Rng.nextBelow(500));
    T.insert(Id, 0x1000 + Id, 0x9000 + Id, 8);
    ASSERT_LE(T.size(), T.capacity());
    if (Rng.nextBelow(8) == 0)
      T.remove(static_cast<uint32_t>(Rng.nextBelow(500)));
    if (Rng.nextBelow(4) == 0)
      T.recordIteration(Id, 10 + Rng.nextBelow(100));
  }
  unsigned Occupied = T.size();
  EXPECT_GT(Occupied, 0u);
  EXPECT_EQ(T.invalidateAll(), Occupied);
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.invalidateAll(), 0u);
}

TEST_P(TableEviction, DltOccupancyBoundedAndInvalidateAllEmpties) {
  DltConfig C;
  C.NumEntries = 64;
  C.Assoc = 2;
  DelinquentLoadTable T(C);
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 5'000; ++I)
    T.update(/*LoadPC=*/Rng.nextBelow(1 << 14),
             /*EffectiveAddr=*/Rng.next() & ~static_cast<Addr>(7),
             /*Miss=*/Rng.nextBelow(2) != 0,
             /*Latency=*/static_cast<unsigned>(Rng.nextBelow(400)));
  uint64_t Valid = T.invalidateAll();
  EXPECT_GT(Valid, 0u);
  EXPECT_LE(Valid, C.NumEntries); // set-associative eviction kept it bounded
  EXPECT_EQ(T.invalidateAll(), 0u);
}

TEST_P(TableEviction, CacheInvalidateRangeEvictsExactlyTheRange) {
  CacheConfig CC;
  CC.SizeBytes = 8 * 1024;
  CC.Assoc = 4;
  CC.LineSize = 64;
  Cache C(CC);
  SplitMix64 Rng(GetParam());
  constexpr Addr Span = 1 << 20;
  for (int I = 0; I < 600; ++I)
    C.insert(C.lineAddr(Rng.nextBelow(Span)), /*FillReady=*/0,
             /*Prefetched=*/Rng.nextBelow(4) == 0);

  constexpr Addr Lo = 0x4'0000, Hi = 0x7'FFFF;
  auto countPresent = [&](Addr From, Addr To) {
    uint64_t N = 0;
    for (Addr A = 0; A < Span; A += CC.LineSize)
      if (A + CC.LineSize - 1 >= From && A <= To &&
          C.peek(A) != Cache::NoLine)
        ++N;
    return N;
  };
  uint64_t InRange = countPresent(Lo, Hi);
  uint64_t Outside = countPresent(0, Lo - 1) + countPresent(Hi + 1, Span - 1);
  EXPECT_GT(InRange, 0u);

  EXPECT_EQ(C.invalidateRange(Lo, Hi), InRange);
  EXPECT_EQ(countPresent(Lo, Hi), 0u); // the range is gone...
  EXPECT_EQ(countPresent(0, Lo - 1) + countPresent(Hi + 1, Span - 1),
            Outside); // ...and nothing else was touched
  EXPECT_EQ(C.invalidateRange(Lo, Hi), 0u);

  uint64_t Rest = C.invalidateRange(0, ~static_cast<Addr>(0));
  EXPECT_EQ(Rest, Outside);
  EXPECT_EQ(C.invalidateRange(0, ~static_cast<Addr>(0)), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableEviction,
                         ::testing::Values(21, 22, 23, 24, 25));

//===----------------------------------------------------------------------===//
// Property 7: the same invariants hold for programs drawn from the
// workload fuzzer — access patterns and register pressure no hand-written
// generator above produces.
//===----------------------------------------------------------------------===//

namespace {

/// A finite variant of a fuzzed scenario: fuzz programs loop forever by
/// construction (their outer back-edge re-enters the phase schedule), so
/// for run-to-Halt differential tests the back-edge is replaced by the
/// Halt that already follows it. One full pass over every segment still
/// executes.
Workload finiteFuzzWorkload(uint64_t Seed, const FuzzKnobs &K) {
  Workload W = makeFuzzWorkload(Seed, K);
  Addr BackEdge = W.Prog.endPC() - 2;
  EXPECT_EQ(W.Prog.at(BackEdge).Op, Opcode::Jump)
      << "fuzz program shape changed; expected the outer back-edge here";
  Instruction Halt;
  Halt.Op = Opcode::Halt;
  W.Prog.at(BackEdge) = Halt;
  return W;
}

} // namespace

class FuzzedPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzedPrograms, EncodingsSurviveExactly) {
  Workload W = makeFuzzWorkload(GetParam());
  for (Addr PC = W.Prog.basePC(); PC < W.Prog.endPC(); ++PC) {
    const Instruction &In = W.Prog.at(PC);
    ASSERT_EQ(Instruction::decode(In.encode()), In)
        << "at PC 0x" << std::hex << PC;
  }
}

TEST_P(FuzzedPrograms, OptimizationPreservesSemanticsToHalt) {
  // Small working set and short phases keep one full pass cheap; the
  // segments still cover the whole generator kind space across seeds.
  FuzzKnobs K;
  K.WsetKB = 256;
  K.PhaseIters = 512;
  Workload W = finiteFuzzWorkload(GetParam(), K);

  SimConfig Ref = SimConfig::hwBaseline();
  Ref.WarmupInstructions = 0;
  Ref.SimInstructions = 100'000'000;
  SimResult RRef = runSimulation(W, Ref);
  ASSERT_TRUE(RRef.Halted) << "finite fuzz variant did not halt";

  for (PrefetchMode M :
       {PrefetchMode::Basic, PrefetchMode::SelfRepairing}) {
    SimConfig C = SimConfig::withMode(M);
    C.WarmupInstructions = 0;
    C.SimInstructions = 100'000'000;
    SimResult R = runSimulation(W, C);
    EXPECT_TRUE(R.Halted) << prefetchModeName(M);
    EXPECT_EQ(R.Instructions, RRef.Instructions)
        << "seed " << GetParam() << " mode " << prefetchModeName(M);
    EXPECT_EQ(R.RegChecksum, RRef.RegChecksum)
        << "seed " << GetParam() << " mode " << prefetchModeName(M);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedPrograms,
                         ::testing::Range<uint64_t>(31, 39));
