//===- alloc_count_test.cpp - Heap-allocation regression harness -----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The zero-alloc cycle-loop contract: once the machine is warmed up, the
// pure-hardware simulation path (SmtCore::run + MemorySystem + stream
// buffers + branch predictor) performs ZERO heap allocations per simulated
// cycle inside the measurement window. Every hardware structure is a
// fixed-capacity table reserved at construction; steady-state simulation
// is pointer arithmetic over those tables.
//
// With the Trident runtime attached the optimizer itself may allocate
// (trace bodies, prefetch plans, code-cache installs) — that is software,
// not hardware — but those allocations must be *bounded by optimizer
// activity*, never per-cycle or per-instruction.
//
// The harness overrides global operator new/delete in this translation
// unit (which covers the whole test binary) and counts allocations only
// between enable()/disable() around the measured run.
//
//===----------------------------------------------------------------------===//

#include "branch/BranchPredictor.h"
#include "core/TridentRuntime.h"
#include "events/EventBus.h"
#include "hwpf/StreamBuffer.h"
#include "mem/MemorySystem.h"
#include "sim/Simulation.h"
#include "trident/CodeCache.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

//===----------------------------------------------------------------------===//
// Counting global allocator
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> GCounting{false};
std::atomic<uint64_t> GAllocs{0};

void *countedAlloc(std::size_t N) {
  if (GCounting.load(std::memory_order_relaxed))
    GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
} // namespace

void *operator new(std::size_t N) { return countedAlloc(N); }
void *operator new[](std::size_t N) { return countedAlloc(N); }
void *operator new(std::size_t N, const std::nothrow_t &) noexcept {
  if (GCounting.load(std::memory_order_relaxed))
    GAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(N ? N : 1);
}
void *operator new[](std::size_t N, const std::nothrow_t &) noexcept {
  if (GCounting.load(std::memory_order_relaxed))
    GAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(N ? N : 1);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept { std::free(P); }
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

using namespace trident;

namespace {

uint64_t countedRun(SmtCore &Core, uint64_t Instructions) {
  GAllocs.store(0, std::memory_order_relaxed);
  GCounting.store(true, std::memory_order_relaxed);
  Core.run(Instructions);
  GCounting.store(false, std::memory_order_relaxed);
  return GAllocs.load(std::memory_order_relaxed);
}

/// Replicates runSimulation's machine wiring (Simulation.cpp) with the
/// seams exposed, so the counting window can wrap exactly the measured
/// Core.run and nothing else.
struct Machine {
  Program Prog;
  DataMemory Data;
  MemorySystem Mem;
  CodeCache CC;
  CodeImage Image;
  SmtCore Core;
  MetaPredictor Predictor;
  EventBus Bus;
  std::unique_ptr<TridentRuntime> Runtime;

  explicit Machine(const Workload &W, const SimConfig &Config)
      : Prog(W.Prog), Mem(Config.Mem), Image(Prog, CC),
        Core(Config.Core, Image, Data, Mem) {
    W.Init(Data);
    std::string PfError;
    std::unique_ptr<HwPrefetcher> Unit = PrefetcherRegistry::instance().create(
        Config.HwPf, PrefetcherEnv{}, &PfError);
    EXPECT_TRUE(Unit || PrefetcherRegistry::isNone(Config.HwPf)) << PfError;
    if (Unit)
      Mem.attachPrefetcher(std::move(Unit));
    Core.setBranchPredictor(&Predictor);
    Core.setEventBus(&Bus);
    if (Config.EnableTrident) {
      RuntimeConfig RC = Config.Runtime;
      RC.MemoryLatency = Config.Mem.MemoryLatency;
      RC.L1HitLatency = Config.Mem.L1.HitLatency;
      Runtime = std::make_unique<TridentRuntime>(RC, Prog, Core, CC);
      Runtime->attach(Bus);
    }
    Core.startContext(0, Prog.entryPC());
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Hardware baseline: zero allocations per cycle in steady state
//===----------------------------------------------------------------------===//

TEST(AllocCount, HardwareBaselineSteadyStateIsAllocFree) {
  // A memory-bound and a compute-bound workload cover both ends of the
  // hardware path (stream-buffer churn vs issue-limited ALU work).
  for (const char *Name : {"mcf", "dot", "equake", "swim"}) {
    Machine M(makeWorkload(Name), SimConfig::hwBaseline());
    // Warmup long enough that the working set's pages, the stream-buffer
    // rings, and the ROB heap all reach their steady-state footprint.
    M.Core.run(150'000);
    M.Core.clearStats();
    M.Mem.clearStats();
    uint64_t Allocs = countedRun(M.Core, 40'000);
    EXPECT_EQ(Allocs, 0u)
        << Name << ": the pure-hardware measurement window heap-allocated "
        << Allocs << " time(s); the cycle loop must be allocation-free";
  }
}

//===----------------------------------------------------------------------===//
// Trident attached: allocations bounded by optimizer activity
//===----------------------------------------------------------------------===//

TEST(AllocCount, TridentAllocationsScaleWithOptimizerEventsNotCycles) {
  Machine M(makeWorkload("mcf"),
            SimConfig::withMode(PrefetchMode::SelfRepairing));
  M.Core.run(100'000);
  M.Runtime->setEnabled(true);
  M.Core.clearStats();
  M.Mem.clearStats();
  M.Bus.clearCounts();
  M.Runtime->clearStats();
  uint64_t Allocs = countedRun(M.Core, 40'000);

  // Everything the optimizer did in the window, at event granularity.
  uint64_t Activity = M.Bus.published(EventKind::HotTrace) +
                      M.Bus.published(EventKind::DelinquentLoad) +
                      M.Bus.published(EventKind::HelperDone) +
                      M.Bus.published(EventKind::TraceEntry) +
                      M.Bus.published(EventKind::TraceExit);
  // Generous per-event constant (a trace formation allocates a body, a
  // plan, emission bookkeeping...), but strictly event-proportional: a
  // per-cycle or per-instruction leak blows through this immediately
  // (40k instructions >> 512 * optimizer events on this budget).
  uint64_t Bound = 512 * (Activity + 1);
  EXPECT_LE(Allocs, Bound)
      << "optimizer-side allocations (" << Allocs
      << ") exceed the activity-proportional budget (" << Bound << " for "
      << Activity << " optimizer events)";

  uint64_t Commits = M.Core.stats(0).CommittedOriginal;
  EXPECT_LT(Allocs, Commits / 4)
      << "allocation count looks per-instruction, not per-optimizer-event";
}
