//===- mem_test.cpp - Unit tests for src/mem -------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "mem/Cache.h"
#include "mem/DataMemory.h"
#include "mem/MemorySystem.h"

#include <gtest/gtest.h>

using namespace trident;

//===----------------------------------------------------------------------===//
// DataMemory
//===----------------------------------------------------------------------===//

TEST(DataMemory, ReadsZeroWhenUntouched) {
  DataMemory M;
  EXPECT_EQ(M.read64(0x12345678), 0u);
  EXPECT_EQ(M.numPages(), 0u); // reads never materialize pages
}

TEST(DataMemory, WriteReadRoundTrip) {
  DataMemory M;
  M.write64(0x1000, 0xdeadbeefcafebabeull);
  EXPECT_EQ(M.read64(0x1000), 0xdeadbeefcafebabeull);
  EXPECT_EQ(M.numPages(), 1u);
}

TEST(DataMemory, PageStraddlingAccess) {
  DataMemory M;
  Addr A = DataMemory::PageSize - 4; // straddles two pages
  M.write64(A, 0x1122334455667788ull);
  EXPECT_EQ(M.read64(A), 0x1122334455667788ull);
  EXPECT_EQ(M.numPages(), 2u);
  // Byte-level split is little-endian consistent.
  EXPECT_EQ(M.read64(A + 1) & 0xff, 0x77u);
}

TEST(DataMemory, UnalignedWithinPage) {
  DataMemory M;
  M.write64(0x1003, 42);
  EXPECT_EQ(M.read64(0x1003), 42u);
}

//===----------------------------------------------------------------------===//
// Cache
//===----------------------------------------------------------------------===//

namespace {
CacheConfig tinyCache() {
  // 4 sets x 2 ways x 64B = 512B.
  return {"tiny", 512, 2, 64, 3};
}
} // namespace

TEST(Cache, GeometryDerivation) {
  Cache C(tinyCache());
  EXPECT_EQ(C.numSets(), 4u);
  EXPECT_EQ(C.lineAddr(0x12345), 0x12340u & ~0x3Fu);
}

TEST(Cache, MissThenHit) {
  Cache C(tinyCache());
  EXPECT_FALSE(C.lookup(0x1000));
  C.insert(0x1000, /*FillReady=*/10, /*Prefetched=*/false);
  Cache::LookupResult R = C.lookup(0x1000);
  ASSERT_TRUE(R);
  EXPECT_EQ(C.fillReady(R.Idx), 10u);
  EXPECT_FALSE(C.prefetched(R.Idx));
}

TEST(Cache, LruEviction) {
  Cache C(tinyCache());
  // Three lines in the same set (set stride = 4 * 64 = 256).
  C.insert(0x0000, 0, false);
  C.insert(0x0100, 0, false);
  C.lookup(0x0000); // touch A so B becomes LRU
  C.insert(0x0200, 0, false);
  EXPECT_TRUE(C.lookup(0x0000));
  EXPECT_FALSE(C.lookup(0x0100)); // evicted
  EXPECT_TRUE(C.lookup(0x0200));
}

TEST(Cache, PrefetchVictimTagTracking) {
  Cache C(tinyCache());
  C.insert(0x0000, 0, false);
  C.lookup(0x0000); // demand-touched
  C.insert(0x0100, 0, false);
  C.lookup(0x0100);
  C.lookup(0x0000);
  // A prefetch displaces 0x0100 (LRU).
  C.insert(0x0200, 0, /*Prefetched=*/true);
  // The subsequent miss on 0x0100 is attributable to prefetching.
  Cache::LookupResult R = C.lookup(0x0100);
  EXPECT_FALSE(R);
  EXPECT_TRUE(R.VictimOfPrefetch);
  // The victim record is consumed: a second miss is ordinary.
  EXPECT_FALSE(C.lookup(0x0100).VictimOfPrefetch);
}

TEST(Cache, UntouchedBitSemantics) {
  Cache C(tinyCache());
  C.insert(0x1000, 0, /*Prefetched=*/true);
  Cache::LineIdx L = C.peek(0x1000);
  ASSERT_NE(L, Cache::NoLine);
  EXPECT_TRUE(C.prefetched(L));
  EXPECT_TRUE(C.untouched(L));
}

TEST(Cache, ResetInvalidatesEverything) {
  Cache C(tinyCache());
  C.insert(0x1000, 0, false);
  C.reset();
  EXPECT_FALSE(C.lookup(0x1000));
}

TEST(Cache, RefillOfPresentLineKeepsIt) {
  Cache C(tinyCache());
  C.insert(0x1000, 5, false);
  C.insert(0x1000, 99, true); // refresh, not duplicate
  Cache::LookupResult R = C.lookup(0x1000);
  ASSERT_TRUE(R);
  EXPECT_EQ(C.fillReady(R.Idx), 5u); // original fill time retained
}

//===----------------------------------------------------------------------===//
// MemorySystem (no hardware prefetcher)
//===----------------------------------------------------------------------===//

namespace {
MemSystemConfig smallConfig() {
  MemSystemConfig C;
  C.L1 = {"L1", 1024, 2, 64, 3};
  C.L2 = {"L2", 4096, 4, 64, 11};
  C.L3 = {"L3", 16384, 4, 64, 35};
  C.MemoryLatency = 350;
  C.BusOccupancy = 6;
  C.NumMSHRs = 4;
  return C;
}
} // namespace

TEST(MemorySystem, ColdMissPaysMemoryLatency) {
  MemorySystem M(smallConfig());
  AccessResult R = M.access(0x1, 0x10000, AccessKind::DemandLoad, 100);
  EXPECT_EQ(R.Outcome, LoadOutcome::Miss);
  EXPECT_EQ(R.Level, 4u);
  EXPECT_GE(R.ReadyCycle, 100u + 350u);
}

TEST(MemorySystem, SecondAccessHitsL1) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  AccessResult R = M.access(0x1, 0x10000, AccessKind::DemandLoad, 1000);
  EXPECT_EQ(R.Outcome, LoadOutcome::HitNone);
  EXPECT_EQ(R.ReadyCycle, 1000u + 3u);
}

TEST(MemorySystem, InFlightLineIsPartialOrMergedMiss) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  // Ten cycles later the fill (ready ~350) is still in flight.
  AccessResult R = M.access(0x2, 0x10008, AccessKind::DemandLoad, 10);
  EXPECT_EQ(R.Outcome, LoadOutcome::Miss); // demand-initiated: merged miss
  EXPECT_GT(R.ReadyCycle, 300u);
}

TEST(MemorySystem, PrefetchedLineFirstTouchIsHitPrefetched) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::SoftwarePrefetch, 0);
  AccessResult R1 = M.access(0x2, 0x10000, AccessKind::DemandLoad, 1000);
  EXPECT_EQ(R1.Outcome, LoadOutcome::HitPrefetched);
  AccessResult R2 = M.access(0x2, 0x10000, AccessKind::DemandLoad, 1001);
  EXPECT_EQ(R2.Outcome, LoadOutcome::HitNone); // only the first touch counts
}

TEST(MemorySystem, InFlightPrefetchGivesPartialHit) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::SoftwarePrefetch, 0);
  AccessResult R = M.access(0x2, 0x10000, AccessKind::DemandLoad, 100);
  EXPECT_EQ(R.Outcome, LoadOutcome::PartialHit);
  EXPECT_LT(R.ReadyCycle, 100u + 350u); // part of the latency is hidden
  EXPECT_GT(R.ReadyCycle, 100u + 3u);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  // L1 is 1KB/2-way/64B = 8 sets; lines 8*64=512 apart share a set. Fill
  // the set with two more lines to evict 0x10000 from L1 (still in L2).
  M.access(0x1, 0x10000 + 512, AccessKind::DemandLoad, 1000);
  M.access(0x1, 0x10000 + 1024, AccessKind::DemandLoad, 2000);
  AccessResult R = M.access(0x1, 0x10000, AccessKind::DemandLoad, 3000);
  EXPECT_EQ(R.Outcome, LoadOutcome::Miss);
  EXPECT_EQ(R.ReadyCycle, 3000u + 3u + 11u); // issue after L1 lookup, L2 hit
}

TEST(MemorySystem, BusSerializesMemoryFetches) {
  MemorySystem M(smallConfig());
  AccessResult R1 = M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  AccessResult R2 = M.access(0x2, 0x20000, AccessKind::DemandLoad, 0);
  AccessResult R3 = M.access(0x3, 0x30000, AccessKind::DemandLoad, 0);
  // Each later fetch queues behind the previous one's bus occupancy (6cy).
  EXPECT_GE(R2.ReadyCycle, R1.ReadyCycle + 6);
  EXPECT_GE(R3.ReadyCycle, R2.ReadyCycle + 6);
}

TEST(MemorySystem, MshrExhaustionDelaysFills) {
  MemSystemConfig C = smallConfig();
  C.NumMSHRs = 2;
  MemorySystem M(C);
  AccessResult R1 = M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  M.access(0x2, 0x20000, AccessKind::DemandLoad, 0);
  // Third outstanding fill must wait for an MSHR to free.
  AccessResult R3 = M.access(0x3, 0x30000, AccessKind::DemandLoad, 0);
  EXPECT_GE(R3.ReadyCycle, R1.ReadyCycle + 350);
}

TEST(MemorySystem, StatsClassifyDemandLoads) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);       // miss
  M.access(0x1, 0x10000, AccessKind::DemandLoad, 1000);    // hit
  M.access(0x1, 0x20000, AccessKind::SoftwarePrefetch, 0); // pf
  M.access(0x1, 0x20000, AccessKind::DemandLoad, 2000);    // hit-prefetched
  const MemStats &S = M.stats();
  EXPECT_EQ(S.DemandLoads, 3u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.HitsNone, 1u);
  EXPECT_EQ(S.HitsPrefetched, 1u);
  EXPECT_EQ(S.SoftwarePrefetches, 1u);
  EXPECT_EQ(S.MemoryFetches, 2u);
}

TEST(MemorySystem, PrefetchOfResidentLineIsCheap) {
  MemorySystem M(smallConfig());
  M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  uint64_t FetchesBefore = M.stats().MemoryFetches;
  M.access(0x1, 0x10000, AccessKind::SoftwarePrefetch, 1000);
  EXPECT_EQ(M.stats().MemoryFetches, FetchesBefore); // no duplicate fetch
}

//===----------------------------------------------------------------------===//
// TLB
//===----------------------------------------------------------------------===//

TEST(Tlb, HitAfterInstall) {
  TlbConfig C;
  C.Enable = true;
  C.NumEntries = 16;
  C.Assoc = 4;
  Tlb T(C);
  EXPECT_FALSE(T.access(0x1234)); // cold miss installs
  EXPECT_TRUE(T.access(0x1FF8));  // same 4KB page
  EXPECT_FALSE(T.access(0x2000)); // next page
  EXPECT_EQ(T.stats().Misses, 2u);
  EXPECT_EQ(T.stats().Lookups, 3u);
}

TEST(Tlb, LruReplacementWithinSet) {
  TlbConfig C;
  C.Enable = true;
  C.NumEntries = 4;
  C.Assoc = 2; // 2 sets
  Tlb T(C);
  // Pages 0, 2, 4 share set 0 (vpn & 1 == 0).
  T.access(0x0000);
  T.access(0x2000);
  T.access(0x0000); // touch page 0 so page 2 is LRU
  T.access(0x4000); // evicts page 2
  EXPECT_TRUE(T.present(0x0000));
  EXPECT_FALSE(T.present(0x2000));
  EXPECT_TRUE(T.present(0x4000));
}

TEST(Tlb, MemorySystemWalkPenalty) {
  MemSystemConfig C = smallConfig();
  C.Tlb.Enable = true;
  C.Tlb.WalkLatency = 30;
  MemorySystem M(C);
  // First access: TLB miss (30) + memory miss.
  AccessResult R1 = M.access(0x1, 0x10000, AccessKind::DemandLoad, 0);
  EXPECT_GE(R1.ReadyCycle, 30u + 350u);
  // Same page, line resident: pure L1 hit now.
  AccessResult R2 = M.access(0x1, 0x10000, AccessKind::DemandLoad, 1000);
  EXPECT_EQ(R2.ReadyCycle, 1003u);
}

TEST(Tlb, SoftwarePrefetchToColdPageIsDropped) {
  MemSystemConfig C = smallConfig();
  C.Tlb.Enable = true;
  MemorySystem M(C);
  uint64_t Before = M.stats().MemoryFetches;
  M.access(0x1, 0x50000, AccessKind::SoftwarePrefetch, 0);
  EXPECT_EQ(M.stats().MemoryFetches, Before); // dropped, no fetch
  ASSERT_NE(M.dtlb(), nullptr);
  EXPECT_EQ(M.dtlb()->stats().PrefetchesDropped, 1u);
  // After a demand access maps the page, prefetches flow.
  M.access(0x1, 0x50000, AccessKind::DemandLoad, 10);
  M.access(0x1, 0x50040, AccessKind::SoftwarePrefetch, 2000);
  EXPECT_GT(M.stats().MemoryFetches, Before);
}

TEST(Tlb, DisabledByDefault) {
  MemorySystem M(smallConfig());
  EXPECT_EQ(M.dtlb(), nullptr);
}
