//===- branch_test.cpp - Unit tests for src/branch -------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "branch/BranchPredictor.h"

#include <gtest/gtest.h>

using namespace trident;

namespace {
/// Runs a direction pattern through a predictor and returns its accuracy.
double accuracy(BranchPredictor &P, Addr PC,
                const std::vector<bool> &Pattern, unsigned Reps) {
  unsigned Correct = 0, Total = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    for (bool Taken : Pattern) {
      Correct += P.predict(PC) == Taken;
      P.update(PC, Taken);
      ++Total;
    }
  }
  return double(Correct) / Total;
}
} // namespace

TEST(Bimodal, LearnsBiasedBranch) {
  BimodalPredictor P(1024);
  EXPECT_GT(accuracy(P, 0x100, {true}, 100), 0.98);
}

TEST(Bimodal, LoopExitCostsOneMiss) {
  BimodalPredictor P(1024);
  // 9 taken, 1 not-taken (loop backedge with trip count 10).
  std::vector<bool> Pattern(10, true);
  Pattern[9] = false;
  double A = accuracy(P, 0x100, Pattern, 50);
  EXPECT_GT(A, 0.85);
  EXPECT_LT(A, 0.95); // the exit itself mispredicts
}

TEST(GShare, LearnsAlternatingWithHistory) {
  GSharePredictor P(4096, 8);
  // Strictly alternating T/N: history-based prediction learns it.
  double A = accuracy(P, 0x100, {true, false}, 200);
  EXPECT_GT(A, 0.9);
}

TEST(Meta, PicksTheBetterComponent) {
  MetaPredictor P(4096, 4096, 1024);
  // Pattern a bimodal can't learn but gshare can.
  double A = accuracy(P, 0x200, {true, true, false, false}, 300);
  EXPECT_GT(A, 0.85);
}

TEST(Meta, BiasedBranchesStayAccurate) {
  MetaPredictor P;
  EXPECT_GT(accuracy(P, 0x300, {true}, 200), 0.98);
  EXPECT_GT(accuracy(P, 0x304, {false}, 200), 0.95);
}

TEST(Meta, IndependentBranchesDoNotDestroyEachOther) {
  MetaPredictor P;
  double ATaken = 0, ANot = 0;
  for (int R = 0; R < 200; ++R) {
    ATaken += P.predict(0x1000) == true;
    P.update(0x1000, true);
    ANot += P.predict(0x2000) == false;
    P.update(0x2000, false);
  }
  EXPECT_GT(ATaken / 200, 0.95);
  EXPECT_GT(ANot / 200, 0.9);
}
