//===- experiment_runner_test.cpp - Parallel runner determinism -----------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
// The contract of the parallel experiment runner: scheduling must never
// change a result. For every workload, a batch run across many worker
// threads must produce bit-identical SimResults to serial execution, the
// memo cache must hand back the same object for a repeated (workload,
// config fingerprint) key, and results must come back in submission order.
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"

#include "gtest/gtest.h"

using namespace trident;

namespace {

/// Short-budget config so the full-suite comparisons stay fast.
SimConfig quickConfig(PrefetchMode Mode) {
  SimConfig C = SimConfig::withMode(Mode);
  C.WarmupInstructions = 5'000;
  C.SimInstructions = 30'000;
  return C;
}

void expectBitIdentical(const SimResult &A, const SimResult &B) {
  EXPECT_EQ(A.Workload, B.Workload);
  EXPECT_EQ(A.ConfigName, B.ConfigName);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Ipc, B.Ipc);
  EXPECT_EQ(A.RegChecksum, B.RegChecksum);
  EXPECT_EQ(A.Halted, B.Halted);
  EXPECT_EQ(A.HelperBusyCycles, B.HelperBusyCycles);
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts);
  // Memory statistics, field by field.
  EXPECT_EQ(A.Mem.DemandLoads, B.Mem.DemandLoads);
  EXPECT_EQ(A.Mem.HitsNone, B.Mem.HitsNone);
  EXPECT_EQ(A.Mem.HitsPrefetched, B.Mem.HitsPrefetched);
  EXPECT_EQ(A.Mem.PartialHits, B.Mem.PartialHits);
  EXPECT_EQ(A.Mem.Misses, B.Mem.Misses);
  EXPECT_EQ(A.Mem.MissesDueToPrefetch, B.Mem.MissesDueToPrefetch);
  EXPECT_EQ(A.Mem.StreamBufferHits, B.Mem.StreamBufferHits);
  EXPECT_EQ(A.Mem.SoftwarePrefetches, B.Mem.SoftwarePrefetches);
  EXPECT_EQ(A.Mem.HardwarePrefetches, B.Mem.HardwarePrefetches);
  EXPECT_EQ(A.Mem.MemoryFetches, B.Mem.MemoryFetches);
  EXPECT_EQ(A.Mem.TotalExposedLatency, B.Mem.TotalExposedLatency);
  // Runtime statistics that feed the figures.
  EXPECT_EQ(A.Runtime.TracesInstalled, B.Runtime.TracesInstalled);
  EXPECT_EQ(A.Runtime.InsertionOptimizations, B.Runtime.InsertionOptimizations);
  EXPECT_EQ(A.Runtime.RepairOptimizations, B.Runtime.RepairOptimizations);
  EXPECT_EQ(A.Runtime.LoadMissesTotal, B.Runtime.LoadMissesTotal);
  EXPECT_EQ(A.Runtime.LoadMissesCovered, B.Runtime.LoadMissesCovered);
}

std::vector<ExperimentJob> fullSuiteJobs() {
  std::vector<ExperimentJob> Jobs;
  for (const std::string &Name : workloadNames()) {
    Jobs.push_back(ExperimentJob{makeWorkload(Name), quickConfig(
                                     PrefetchMode::SelfRepairing)});
  }
  return Jobs;
}

TEST(ExperimentRunner, ParallelMatchesSerialForEveryWorkload) {
  std::vector<ExperimentJob> Jobs = fullSuiteJobs();

  ExperimentRunner Serial({/*Threads=*/1, /*UseCache=*/false});
  ExperimentRunner Parallel({/*Threads=*/4, /*UseCache=*/false});
  auto SerialResults = Serial.runBatch(Jobs);
  auto ParallelResults = Parallel.runBatch(Jobs);

  ASSERT_EQ(SerialResults.size(), Jobs.size());
  ASSERT_EQ(ParallelResults.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    SCOPED_TRACE(Jobs[I].W.Name);
    expectBitIdentical(*SerialResults[I], *ParallelResults[I]);
  }
}

TEST(ExperimentRunner, ResultsComeBackInSubmissionOrder) {
  std::vector<ExperimentJob> Jobs = fullSuiteJobs();
  ExperimentRunner Runner({/*Threads=*/4, /*UseCache=*/false});
  auto Results = Runner.runBatch(Jobs);
  ASSERT_EQ(Results.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    EXPECT_EQ(Results[I]->Workload, Jobs[I].W.Name);
}

TEST(ExperimentRunner, CacheReturnsSameObjectForRepeatedKey) {
  ExperimentRunner::clearResultCache();
  ExperimentRunner Runner({/*Threads=*/2, /*UseCache=*/true});
  Workload W = makeWorkload("mcf");
  SimConfig C = quickConfig(PrefetchMode::SelfRepairing);

  // Duplicates inside one batch coalesce to one simulation and one object.
  auto Results =
      Runner.runBatch({ExperimentJob{W, C}, ExperimentJob{W, C}});
  EXPECT_EQ(Results[0].get(), Results[1].get());
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 1u);

  // A later batch with the same key returns the identical object.
  auto Again = Runner.run(W, C);
  EXPECT_EQ(Again.get(), Results[0].get());
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 1u);

  // The cache is process-wide: a different runner sees the same entry.
  ExperimentRunner Other({/*Threads=*/1, /*UseCache=*/true});
  EXPECT_EQ(Other.run(W, C).get(), Results[0].get());
  ExperimentRunner::clearResultCache();
}

TEST(ExperimentRunner, CacheDistinguishesConfigs) {
  ExperimentRunner::clearResultCache();
  ExperimentRunner Runner({/*Threads=*/2, /*UseCache=*/true});
  Workload W = makeWorkload("swim");
  SimConfig A = quickConfig(PrefetchMode::SelfRepairing);
  SimConfig B = A;
  B.Runtime.Dlt.MonitorWindow = 128;

  auto Results = Runner.runBatch({ExperimentJob{W, A}, ExperimentJob{W, B}});
  EXPECT_NE(Results[0].get(), Results[1].get());
  EXPECT_EQ(ExperimentRunner::resultCacheSize(), 2u);
  ExperimentRunner::clearResultCache();
}

TEST(ConfigFingerprint, SensitiveToEveryLayerOfTheConfig) {
  SimConfig Base = SimConfig::hwBaseline();
  uint64_t H = configFingerprint(Base);
  EXPECT_EQ(H, configFingerprint(SimConfig::hwBaseline()));

  SimConfig C = Base;
  C.SimInstructions += 1;
  EXPECT_NE(configFingerprint(C), H);

  C = Base;
  C.Mem.NumMSHRs = 16;
  EXPECT_NE(configFingerprint(C), H);

  C = Base;
  C.Core.IssueWidth = 2;
  EXPECT_NE(configFingerprint(C), H);

  C = Base;
  C.HwPf = "sb4x4";
  EXPECT_NE(configFingerprint(C), H);

  C = Base;
  C.HwPf = "sb8x8:depth=8"; // same unit, distinct spec string
  EXPECT_NE(configFingerprint(C), H);

  C = Base;
  C.Core.HwPfFeedbackIntervalCommits = 1000;
  EXPECT_NE(configFingerprint(C), H);

  C = Base;
  C.Mem.Tlb.Enable = true;
  EXPECT_NE(configFingerprint(C), H);

  SimConfig T = SimConfig::withMode(PrefetchMode::SelfRepairing);
  uint64_t HT = configFingerprint(T);
  EXPECT_NE(HT, H);

  SimConfig T2 = T;
  T2.Runtime.Dlt.MissThreshold = 4;
  EXPECT_NE(configFingerprint(T2), HT);

  T2 = T;
  T2.Runtime.LinkTraces = false;
  EXPECT_NE(configFingerprint(T2), HT);

  T2 = T;
  T2.Runtime.Mode = PrefetchMode::Basic;
  EXPECT_NE(configFingerprint(T2), HT);
}

TEST(ExperimentRunner, DefaultThreadCountIsPositive) {
  EXPECT_GE(ExperimentRunner::defaultThreadCount(), 1u);
}

TEST(ExperimentRunner, EmptyBatchReturnsEmpty) {
  ExperimentRunner Runner({/*Threads=*/2, /*UseCache=*/true});
  EXPECT_TRUE(Runner.runBatch({}).empty());
}

} // namespace
