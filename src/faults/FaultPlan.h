//===- FaultPlan.h - Deterministic fault-injection schedules ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan is a deterministic, seeded schedule of machine perturbations
/// used to validate the paper's self-repair claim: the prefetcher should
/// keep re-converging even as memory behaviour shifts underneath it. Each
/// FaultAction names a trigger (an absolute cycle, or the N-th published
/// event of some kind), a fault kind (latency spike, cache / DLT / watch
/// eviction, event drop or stall, trace invalidation), and the fault's
/// parameters. Plans are plain data: value-comparable, JSON round-trippable
/// (the `--faults <plan.json>` flag on trident_sim), fingerprintable by the
/// ExperimentRunner memo cache, and generatable from a seed (scattered())
/// so determinism tests can sweep many schedules.
///
/// Determinism contract: a plan contains no randomness at execution time —
/// the same plan against the same machine produces the same injection
/// schedule, cycle for cycle. scattered() is the only RNG consumer and it
/// runs at plan *construction*, seeded explicitly (SplitMix64, per
/// trident-lint rules).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_FAULTS_FAULTPLAN_H
#define TRIDENT_FAULTS_FAULTPLAN_H

#include "events/HardwareEvent.h"
#include "support/Types.h"

#include <optional>
#include <string>
#include <vector>

namespace trident {

/// What a FaultAction does to the machine when it fires.
enum class FaultKind : uint8_t {
  /// Extra L2/L3-hit and memory-fetch latency for accesses whose line
  /// address falls in [RangeLo, RangeHi]. Reverted after DurationCycles
  /// (0 = permanent).
  LatencySpike,
  /// Invalidate every cache line (all levels) overlapping the range.
  EvictCaches,
  /// Invalidate every Delinquent Load Table entry.
  EvictDlt,
  /// Invalidate every watch-table entry.
  EvictWatchTable,
  /// Force the next Count enqueue attempts at the EventQueue to drop.
  DropEvents,
  /// Stall EventQueue dispatch (events delay, overflow drops) for
  /// DurationCycles (0 = permanent).
  StallQueue,
  /// Unlink every installed code-cache trace (restore the entry patches,
  /// retarget back edges at original code, evict the watch entries).
  InvalidateTraces,
  NumKinds, ///< Sentinel; not a real fault.
};

inline constexpr unsigned kNumFaultKinds =
    static_cast<unsigned>(FaultKind::NumKinds);

/// Stable export/JSON name of a fault kind.
const char *faultKindName(FaultKind K);

/// Inverse of faultKindName(); false when \p Name matches no kind.
bool faultKindFromName(const std::string &Name, FaultKind &K);

/// When a FaultAction fires.
enum class FaultTrigger : uint8_t {
  /// First observed event with Time >= At (absolute cycle, warmup
  /// included — the injector has no clock of its own).
  AtCycle,
  /// The At-th delivered event of kind Counted (1-based).
  AtEventCount,
};

/// One scheduled perturbation.
struct FaultAction {
  FaultTrigger Trigger = FaultTrigger::AtCycle;
  /// Trigger cycle (AtCycle) or 1-based event ordinal (AtEventCount).
  uint64_t At = 0;
  /// Event kind counted by AtEventCount triggers.
  EventKind Counted = EventKind::Commit;

  FaultKind Kind = FaultKind::LatencySpike;
  /// Byte-address range the fault applies to (LatencySpike, EvictCaches);
  /// inclusive. Defaults cover the whole address space.
  Addr RangeLo = 0;
  Addr RangeHi = ~static_cast<Addr>(0);
  /// LatencySpike: extra cycles on memory fetches / on L2+L3 hits.
  unsigned ExtraMemLatency = 0;
  unsigned ExtraL2Latency = 0;
  /// LatencySpike / StallQueue: cycles until the fault reverts (0 = never).
  Cycle DurationCycles = 0;
  /// DropEvents: number of enqueue attempts to force-drop.
  uint64_t Count = 1;

  bool operator==(const FaultAction &) const = default;
};

/// A full, ordered fault schedule.
struct FaultPlan {
  /// Identifies the plan (scattered() generation seed; 0 for hand-written
  /// plans). Folded into the ExperimentRunner config fingerprint.
  uint64_t Seed = 0;
  std::vector<FaultAction> Actions;

  bool empty() const { return Actions.empty(); }
  bool operator==(const FaultPlan &) const = default;

  /// Serializes the plan to the canonical JSON schema (see DESIGN.md §11).
  std::string toJson() const;

  /// Parses a plan from JSON. Returns nullopt on malformed input and, when
  /// \p Error is non-null, stores a one-line diagnostic.
  static std::optional<FaultPlan> parseJson(const std::string &Text,
                                            std::string *Error = nullptr);

  /// Deterministically generates \p NumActions pseudo-random actions with
  /// trigger cycles in [1, MaxCycle]. Same seed => same plan, bit for bit.
  static FaultPlan scattered(uint64_t Seed, unsigned NumActions,
                             Cycle MaxCycle);
};

} // namespace trident

#endif // TRIDENT_FAULTS_FAULTPLAN_H
