//===- FaultInjector.cpp --------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "faults/FaultInjector.h"

#include "core/TridentRuntime.h"
#include "support/StatRegistry.h"
#include "mem/MemorySystem.h"
#include "support/Check.h"

using namespace trident;

void FaultStats::registerInto(StatRegistry &R,
                              const std::string &Prefix) const {
  R.setCounter(Prefix + "injected", Injected);
  R.setCounter(Prefix + "reverts", Reverts);
  R.setCounter(Prefix + "skipped", Skipped);
  R.setCounter(Prefix + "latency_spikes", LatencySpikes);
  R.setCounter(Prefix + "cache_lines_evicted", CacheLinesEvicted);
  R.setCounter(Prefix + "dlt_entries_evicted", DltEntriesEvicted);
  R.setCounter(Prefix + "watch_entries_evicted", WatchEntriesEvicted);
  R.setCounter(Prefix + "event_drops_scheduled", EventDropsScheduled);
  R.setCounter(Prefix + "queue_stalls", QueueStalls);
  R.setCounter(Prefix + "traces_invalidated", TracesInvalidated);
  R.setCounter(Prefix + "detection_events", DetectionEvents);
  R.setCounter(Prefix + "detection_cycles_total", DetectionCyclesTotal);
  R.setCounter(Prefix + "reconvergence_events", ReconvergenceEvents);
  R.setCounter(Prefix + "reconvergence_cycles_total",
               ReconvergenceCyclesTotal);
}

FaultInjector::FaultInjector(const FaultPlan &Plan, FaultTargets T)
    : Targets(T) {
  TRIDENT_CHECK(Targets.Mem != nullptr,
                "fault injector needs a memory system target");
  Actions.reserve(Plan.Actions.size());
  for (const FaultAction &A : Plan.Actions)
    Actions.push_back(ActionState{A, false, false, 0, false, false});
}

void FaultInjector::attach(EventBus &B) {
  EventKindMask Mask = eventMaskOf(EventKind::Commit) |
                       eventMaskOf(EventKind::DelinquentLoad) |
                       eventMaskOf(EventKind::HelperDone);
  for (const ActionState &S : Actions)
    if (S.A.Trigger == FaultTrigger::AtEventCount)
      Mask |= eventMaskOf(S.A.Counted);
  B.subscribe(this, Mask);
}

size_t FaultInjector::pendingActions() const {
  size_t N = 0;
  for (const ActionState &S : Actions)
    N += !S.Fired;
  return N;
}

void FaultInjector::onEvent(const HardwareEvent &E) {
  ++Seen[static_cast<size_t>(E.Kind)];

  // Reverts first: an action whose duration elapsed comes back to the
  // healthy regime before anything new fires this event.
  for (ActionState &S : Actions)
    if (S.Fired && !S.Reverted && S.A.DurationCycles > 0 &&
        E.Time >= S.FiredAt + S.A.DurationCycles)
      revert(S);

  // Trigger checks, in plan order.
  for (ActionState &S : Actions) {
    if (S.Fired)
      continue;
    bool Due =
        S.A.Trigger == FaultTrigger::AtCycle
            ? E.Time >= S.A.At
            : Seen[static_cast<size_t>(S.A.Counted)] >= S.A.At &&
                  E.Kind == S.A.Counted;
    if (Due)
      fire(S, E);
  }

  // Re-convergence accounting: the first DelinquentLoad after a fault is
  // the monitors re-flagging ("detection"); the first HelperDone is a
  // completed re-optimization ("re-convergence").
  if (E.Kind == EventKind::DelinquentLoad) {
    for (ActionState &S : Actions)
      if (S.AwaitDetection) {
        S.AwaitDetection = false;
        ++Stats.DetectionEvents;
        Stats.DetectionCyclesTotal += E.Time - S.FiredAt;
      }
  } else if (E.Kind == EventKind::HelperDone) {
    for (ActionState &S : Actions)
      if (S.AwaitReconvergence) {
        S.AwaitReconvergence = false;
        ++Stats.ReconvergenceEvents;
        Stats.ReconvergenceCyclesTotal += E.Time - S.FiredAt;
      }
  }
}

void FaultInjector::fire(ActionState &S, const HardwareEvent &E) {
  S.Fired = true;
  S.FiredAt = E.Time;
  TridentRuntime *RT = Targets.Runtime;

  switch (S.A.Kind) {
  case FaultKind::LatencySpike:
    Targets.Mem->injectLatencyFault(S.A.RangeLo, S.A.RangeHi,
                                    S.A.ExtraMemLatency, S.A.ExtraL2Latency);
    ++Stats.LatencySpikes;
    break;
  case FaultKind::EvictCaches:
    Stats.CacheLinesEvicted += Targets.Mem->evictRange(S.A.RangeLo,
                                                       S.A.RangeHi);
    break;
  case FaultKind::EvictDlt:
    if (!RT) {
      ++Stats.Skipped;
      return;
    }
    Stats.DltEntriesEvicted += RT->Dlt.invalidateAll();
    break;
  case FaultKind::EvictWatchTable:
    if (!RT) {
      ++Stats.Skipped;
      return;
    }
    Stats.WatchEntriesEvicted += RT->Watch.invalidateAll();
    break;
  case FaultKind::DropEvents:
    if (!RT) {
      ++Stats.Skipped;
      return;
    }
    RT->Queue.scheduleForcedDrops(S.A.Count);
    Stats.EventDropsScheduled += S.A.Count;
    break;
  case FaultKind::StallQueue:
    if (!RT) {
      ++Stats.Skipped;
      return;
    }
    RT->Queue.setStalled(true);
    ++Stats.QueueStalls;
    break;
  case FaultKind::InvalidateTraces:
    if (!RT) {
      ++Stats.Skipped;
      return;
    }
    Stats.TracesInvalidated += RT->invalidateAllTraces();
    break;
  case FaultKind::NumKinds:
    TRIDENT_CHECK(false, "plan contains the sentinel fault kind");
  }

  ++Stats.Injected;
  Schedule.emplace_back(static_cast<size_t>(&S - Actions.data()), E.Time);
  if (RT) {
    S.AwaitDetection = true;
    S.AwaitReconvergence = true;
  }
}

void FaultInjector::revert(ActionState &S) {
  S.Reverted = true;
  switch (S.A.Kind) {
  case FaultKind::LatencySpike:
    Targets.Mem->clearLatencyFault();
    ++Stats.Reverts;
    break;
  case FaultKind::StallQueue:
    if (TridentRuntime *RT = Targets.Runtime) {
      RT->Queue.setStalled(false);
      RT->pumpEvents(); // drain what queued up during the stall
      ++Stats.Reverts;
    }
    break;
  case FaultKind::EvictCaches:
  case FaultKind::EvictDlt:
  case FaultKind::EvictWatchTable:
  case FaultKind::DropEvents:
  case FaultKind::InvalidateTraces:
    break; // one-shot kinds: nothing to revert
  case FaultKind::NumKinds:
    TRIDENT_CHECK(false, "plan contains the sentinel fault kind");
  }
}
