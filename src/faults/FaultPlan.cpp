//===- FaultPlan.cpp ------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"
#include "support/Check.h"
#include "support/Random.h"

#include <cctype>
#include <cstdio>

using namespace trident;

const char *trident::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::LatencySpike:
    return "latency-spike";
  case FaultKind::EvictCaches:
    return "evict-caches";
  case FaultKind::EvictDlt:
    return "evict-dlt";
  case FaultKind::EvictWatchTable:
    return "evict-watch-table";
  case FaultKind::DropEvents:
    return "drop-events";
  case FaultKind::StallQueue:
    return "stall-queue";
  case FaultKind::InvalidateTraces:
    return "invalidate-traces";
  case FaultKind::NumKinds:
    break;
  }
  return "<bad>";
}

bool trident::faultKindFromName(const std::string &Name, FaultKind &K) {
  for (unsigned I = 0; I < kNumFaultKinds; ++I)
    if (Name == faultKindName(static_cast<FaultKind>(I))) {
      K = static_cast<FaultKind>(I);
      return true;
    }
  return false;
}

static bool eventKindFromName(const std::string &Name, EventKind &K) {
  for (unsigned I = 0; I < kNumEventKinds; ++I)
    if (Name == eventKindName(static_cast<EventKind>(I))) {
      K = static_cast<EventKind>(I);
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

static void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
}

std::string FaultPlan::toJson() const {
  std::string Out = "{\"seed\":";
  appendU64(Out, Seed);
  Out += ",\"actions\":[";
  for (size_t I = 0; I < Actions.size(); ++I) {
    const FaultAction &A = Actions[I];
    if (I > 0)
      Out += ',';
    Out += "{\"kind\":\"";
    Out += faultKindName(A.Kind);
    Out += '"';
    if (A.Trigger == FaultTrigger::AtCycle) {
      Out += ",\"at_cycle\":";
      appendU64(Out, A.At);
    } else {
      Out += ",\"at_event\":\"";
      Out += eventKindName(A.Counted);
      Out += "\",\"at_count\":";
      appendU64(Out, A.At);
    }
    Out += ",\"range_lo\":";
    appendU64(Out, A.RangeLo);
    Out += ",\"range_hi\":";
    appendU64(Out, A.RangeHi);
    Out += ",\"extra_mem\":";
    appendU64(Out, A.ExtraMemLatency);
    Out += ",\"extra_l2\":";
    appendU64(Out, A.ExtraL2Latency);
    Out += ",\"duration\":";
    appendU64(Out, A.DurationCycles);
    Out += ",\"count\":";
    appendU64(Out, A.Count);
    Out += '}';
  }
  Out += "]}";
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON parsing (minimal recursive-descent over the plan schema: objects,
// arrays, strings, and unsigned decimal numbers — nothing else appears in
// a plan file, and unknown keys are rejected loudly rather than ignored).
//===----------------------------------------------------------------------===//

namespace {

class PlanParser {
public:
  PlanParser(const std::string &Text, std::string *Error)
      : S(Text), Err(Error) {}

  std::optional<FaultPlan> parse() {
    FaultPlan Plan;
    if (!expect('{'))
      return std::nullopt;
    bool First = true;
    while (!peekIs('}')) {
      if (!First && !expect(','))
        return std::nullopt;
      First = false;
      std::string Key;
      if (!parseString(Key) || !expect(':'))
        return std::nullopt;
      if (Key == "seed") {
        if (!parseU64(Plan.Seed))
          return std::nullopt;
      } else if (Key == "actions") {
        if (!parseActions(Plan.Actions))
          return std::nullopt;
      } else {
        return fail("unknown top-level key '" + Key + "'");
      }
    }
    if (!expect('}'))
      return std::nullopt;
    skipWs();
    if (Pos != S.size())
      return fail("trailing garbage after the plan object");
    return Plan;
  }

private:
  std::optional<FaultPlan> fail(const std::string &Msg) {
    if (Err && Err->empty())
      *Err = Msg;
    return std::nullopt;
  }

  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool peekIs(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= S.size() || S[Pos] != C) {
      fail(std::string("expected '") + C + "' at offset " +
           std::to_string(Pos));
      return false;
    }
    ++Pos;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        fail("escape sequences are not part of the plan schema");
        return false;
      }
      Out += S[Pos++];
    }
    if (Pos >= S.size()) {
      fail("unterminated string");
      return false;
    }
    ++Pos; // closing quote
    return true;
  }

  bool parseU64(uint64_t &Out) {
    skipWs();
    if (Pos >= S.size() ||
        !std::isdigit(static_cast<unsigned char>(S[Pos]))) {
      fail("expected an unsigned number at offset " + std::to_string(Pos));
      return false;
    }
    Out = 0;
    while (Pos < S.size() &&
           std::isdigit(static_cast<unsigned char>(S[Pos]))) {
      uint64_t Digit = static_cast<uint64_t>(S[Pos] - '0');
      if (Out > (~static_cast<uint64_t>(0) - Digit) / 10) {
        fail("number overflows 64 bits at offset " + std::to_string(Pos));
        return false;
      }
      Out = Out * 10 + Digit;
      ++Pos;
    }
    return true;
  }

  bool parseActions(std::vector<FaultAction> &Out) {
    if (!expect('['))
      return false;
    while (!peekIs(']')) {
      if (!Out.empty() && !expect(','))
        return false;
      FaultAction A;
      if (!parseAction(A))
        return false;
      Out.push_back(A);
    }
    return expect(']');
  }

  bool parseAction(FaultAction &A) {
    if (!expect('{'))
      return false;
    bool HaveKind = false, HaveCycle = false, HaveCount = false;
    bool First = true;
    while (!peekIs('}')) {
      if (!First && !expect(','))
        return false;
      First = false;
      std::string Key;
      if (!parseString(Key) || !expect(':'))
        return false;
      if (Key == "kind") {
        std::string Name;
        if (!parseString(Name))
          return false;
        if (!faultKindFromName(Name, A.Kind)) {
          fail("unknown fault kind '" + Name + "'");
          return false;
        }
        HaveKind = true;
      } else if (Key == "at_cycle") {
        A.Trigger = FaultTrigger::AtCycle;
        if (!parseU64(A.At))
          return false;
        HaveCycle = true;
      } else if (Key == "at_event") {
        std::string Name;
        if (!parseString(Name))
          return false;
        if (!eventKindFromName(Name, A.Counted)) {
          fail("unknown event kind '" + Name + "'");
          return false;
        }
        A.Trigger = FaultTrigger::AtEventCount;
        HaveCount = true;
      } else if (Key == "at_count") {
        A.Trigger = FaultTrigger::AtEventCount;
        if (!parseU64(A.At))
          return false;
      } else if (Key == "range_lo") {
        if (!parseU64(A.RangeLo))
          return false;
      } else if (Key == "range_hi") {
        if (!parseU64(A.RangeHi))
          return false;
      } else if (Key == "extra_mem") {
        uint64_t V;
        if (!parseU64(V))
          return false;
        A.ExtraMemLatency = static_cast<unsigned>(V);
      } else if (Key == "extra_l2") {
        uint64_t V;
        if (!parseU64(V))
          return false;
        A.ExtraL2Latency = static_cast<unsigned>(V);
      } else if (Key == "duration") {
        if (!parseU64(A.DurationCycles))
          return false;
      } else if (Key == "count") {
        if (!parseU64(A.Count))
          return false;
      } else {
        fail("unknown action key '" + Key + "'");
        return false;
      }
    }
    if (!expect('}'))
      return false;
    if (!HaveKind) {
      fail("action is missing its \"kind\"");
      return false;
    }
    if (HaveCycle && HaveCount) {
      fail("action names both at_cycle and at_event triggers");
      return false;
    }
    if (!HaveCycle && !HaveCount) {
      fail("action needs an at_cycle or at_event trigger");
      return false;
    }
    return true;
  }

  const std::string &S;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

std::optional<FaultPlan> FaultPlan::parseJson(const std::string &Text,
                                              std::string *Error) {
  if (Error)
    Error->clear();
  return PlanParser(Text, Error).parse();
}

//===----------------------------------------------------------------------===//
// Seeded generation
//===----------------------------------------------------------------------===//

FaultPlan FaultPlan::scattered(uint64_t Seed, unsigned NumActions,
                               Cycle MaxCycle) {
  TRIDENT_CHECK(MaxCycle > 0, "scattered() needs a nonzero cycle horizon");
  FaultPlan Plan;
  Plan.Seed = Seed;
  SplitMix64 Rng(Seed);
  Plan.Actions.reserve(NumActions);
  for (unsigned I = 0; I < NumActions; ++I) {
    FaultAction A;
    A.Kind = static_cast<FaultKind>(Rng.nextBelow(kNumFaultKinds));
    A.Trigger = FaultTrigger::AtCycle;
    A.At = 1 + Rng.nextBelow(MaxCycle);
    A.DurationCycles = 1 + Rng.nextBelow(std::max<Cycle>(MaxCycle / 4, 1));
    A.ExtraMemLatency = 50 + static_cast<unsigned>(Rng.nextBelow(951));
    A.ExtraL2Latency = static_cast<unsigned>(Rng.nextBelow(51));
    A.Count = 1 + Rng.nextBelow(16);
    Plan.Actions.push_back(A);
  }
  return Plan;
}
