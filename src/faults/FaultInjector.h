//===- FaultInjector.h - Event-driven fault injection ----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a FaultPlan against a running machine. The injector is an
/// ordinary EventBus subscriber — injection points are subscribers, not
/// hot-path hacks: it watches the event stream for its trigger conditions
/// (time passing, event counts) and, when one fires, perturbs the machine
/// through narrow mutation hooks (MemorySystem latency faults and range
/// eviction, EventQueue forced drops and stalls, DLT / watch-table /
/// trace invalidation on the Trident runtime).
///
/// Identity contract (asserted by tests/fault_injection_test.cpp, same
/// methodology as the tracer): constructing no injector, or an injector
/// whose plan never fires, leaves the simulation bit-identical — every
/// mutation hook is guarded so the zero-fault path executes exactly the
/// pre-fault-injection code. Like the tracer, subscribing does make the
/// core construct hot-path events that nothing else may have asked for, so
/// publish *counters* on an otherwise subscriber-less machine can change;
/// timing and architectural state never do.
///
/// Re-convergence accounting: for every injected fault the injector
/// records the delay until the next DelinquentLoad event (the monitors
/// re-flagging a load — "detection") and until the next HelperDone event
/// (a completed re-optimization — "re-convergence"), surfacing the
/// paper's self-repair latency as statistics.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_FAULTS_FAULTINJECTOR_H
#define TRIDENT_FAULTS_FAULTINJECTOR_H

#include "events/EventBus.h"
#include "faults/FaultPlan.h"

#include <string>
#include <vector>

namespace trident {

class MemorySystem;
class TridentRuntime;
class StatRegistry;

/// The machine surfaces a FaultInjector may perturb. Runtime may be null
/// (hardware-baseline machines): runtime-targeted faults are then counted
/// as skipped instead of injected.
struct FaultTargets {
  MemorySystem *Mem = nullptr;
  TridentRuntime *Runtime = nullptr;
};

/// Injection and re-convergence accounting. Registered under "faults."
/// only when at least one fault fired, so a never-firing plan leaves the
/// StatRegistry export byte-identical to a fault-free run.
struct FaultStats {
  uint64_t Injected = 0;         ///< Actions fired (any kind).
  uint64_t Reverts = 0;          ///< Duration-bounded actions reverted.
  uint64_t Skipped = 0;          ///< Fired but target absent (no runtime).
  uint64_t LatencySpikes = 0;
  uint64_t CacheLinesEvicted = 0;
  uint64_t DltEntriesEvicted = 0;
  uint64_t WatchEntriesEvicted = 0;
  uint64_t EventDropsScheduled = 0;
  uint64_t QueueStalls = 0;
  uint64_t TracesInvalidated = 0;

  /// Faults followed by a DelinquentLoad event, and the summed delay.
  uint64_t DetectionEvents = 0;
  uint64_t DetectionCyclesTotal = 0;
  /// Faults followed by a HelperDone event, and the summed delay.
  uint64_t ReconvergenceEvents = 0;
  uint64_t ReconvergenceCyclesTotal = 0;

  /// Registers every field under \p Prefix (e.g. "faults.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

class FaultInjector final : public EventSubscriber {
public:
  FaultInjector(const FaultPlan &Plan, FaultTargets Targets);

  /// Subscribes to exactly the kinds the plan needs: Commit (time base),
  /// DelinquentLoad / HelperDone (re-convergence tracking), plus any kind
  /// an AtEventCount trigger counts.
  void attach(EventBus &B);

  void onEvent(const HardwareEvent &E) override;

  const FaultStats &stats() const { return Stats; }

  /// The realized schedule: (action index, fire cycle) in fire order.
  /// Determinism tests compare this across runs.
  const std::vector<std::pair<size_t, Cycle>> &schedule() const {
    return Schedule;
  }

  /// Actions that have not fired yet.
  size_t pendingActions() const;

private:
  struct ActionState {
    FaultAction A;
    bool Fired = false;
    bool Reverted = false;
    Cycle FiredAt = 0;
    bool AwaitDetection = false;
    bool AwaitReconvergence = false;
  };

  void fire(ActionState &S, const HardwareEvent &E);
  void revert(ActionState &S);

  FaultTargets Targets;
  std::vector<ActionState> Actions;
  /// Delivered-event counts per kind, for AtEventCount triggers.
  std::array<uint64_t, kNumEventKinds> Seen{};
  std::vector<std::pair<size_t, Cycle>> Schedule;
  FaultStats Stats;
};

} // namespace trident

#endif // TRIDENT_FAULTS_FAULTINJECTOR_H
