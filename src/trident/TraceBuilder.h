//===- TraceBuilder.h - Streamline blocks into a hot trace -----*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a hot trace from a start PC and a branch-direction bitmap: walks
/// the original program along the indicated path, streamlining
/// "typically non-contiguous instruction blocks ... to form a trace"
/// (Section 3.2). In-trace branch directions are rewritten so the hot path
/// falls through; the other direction becomes a side exit to original
/// code. Unconditional jumps are elided. The classical base optimizations
/// (redundant load removal, constant propagation, strength reduction,
/// store/load-pair-to-MOVE conversion) run over the streamlined body.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_TRACEBUILDER_H
#define TRIDENT_TRIDENT_TRACEBUILDER_H

#include "isa/Program.h"
#include "trident/BranchProfiler.h"
#include "trident/Trace.h"

#include <optional>

namespace trident {

struct TraceBuilderConfig {
  /// Trace length cap; generous so that applu-class (>1000 instruction)
  /// inner loops still fit in one trace.
  unsigned MaxLength = 2048;
  bool RunClassicalOpts = true;
};

/// Statistics for one optimization pass over a trace body.
/// trident-analyze: unregistered-ok(per-trace scratch; the runtime folds
/// total() into runtime.* counters rather than exporting each field)
struct ClassicalOptStats {
  unsigned RedundantLoadsRemoved = 0;
  unsigned StoreLoadPairsForwarded = 0;
  unsigned ConstantsFolded = 0;
  unsigned StrengthReduced = 0;
  unsigned RedundantBranchesRemoved = 0;

  unsigned total() const {
    return RedundantLoadsRemoved + StoreLoadPairsForwarded + ConstantsFolded +
           StrengthReduced + RedundantBranchesRemoved;
  }
};

class TraceBuilder {
public:
  explicit TraceBuilder(const TraceBuilderConfig &Cfg = {}) : Config(Cfg) {}

  /// Builds a trace for \p Candidate over \p Prog. Returns nullopt when
  /// the path immediately leaves the program or is degenerate. \p Id tags
  /// the resulting trace.
  std::optional<Trace> build(const Program &Prog,
                             const HotTraceCandidate &Candidate,
                             uint32_t Id) const;

  /// Runs the base (classical) optimizations over \p Body in place;
  /// exposed separately for unit testing.
  static ClassicalOptStats runClassicalOpts(std::vector<Instruction> &Body);

  const ClassicalOptStats &lastOptStats() const { return LastOptStats; }

private:
  TraceBuilderConfig Config;
  mutable ClassicalOptStats LastOptStats;
};

} // namespace trident

#endif // TRIDENT_TRIDENT_TRACEBUILDER_H
