//===- CostModel.h - Helper-thread work costing ----------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime optimizer executes as a helper thread on the spare SMT
/// context. We model its cost as a stream of single-cycle instructions
/// issued at low priority (see SmtCore::startStub); this model supplies
/// the instruction counts, calibrated so that the helper thread is active
/// for the ~2.2% of program cycles the paper reports (Figure 3) and so
/// that a repair is "much quicker than generating a new prefetch-optimized
/// hot trace" (Section 3.5.1).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_COSTMODEL_H
#define TRIDENT_TRIDENT_COSTMODEL_H

#include <cstdint>

namespace trident {

struct OptimizerCostModel {
  /// Helper-thread startup latency in cycles (Section 4.3: "we simulate
  /// the startup of the thread, with a 2000 cycle latency").
  uint64_t StartupCycles = 2000;

  /// Streamlining + classical optimization of a hot trace.
  uint64_t traceFormation(unsigned TraceLength) const {
    return 500 + 45ull * TraceLength;
  }

  /// Re-optimizing a trace to insert prefetches: identify and classify the
  /// delinquent loads, plan groups, regenerate the body.
  uint64_t prefetchInsertion(unsigned TraceLength,
                             unsigned NumDelinquentLoads) const {
    return 700 + 50ull * TraceLength + 200ull * NumDelinquentLoads;
  }

  /// Repairing existing prefetch instructions in place (patch distance
  /// bits, update bookkeeping) — no trace regeneration.
  uint64_t repair(unsigned NumLoadsRepaired) const {
    return 150 + 80ull * NumLoadsRepaired;
  }
};

} // namespace trident

#endif // TRIDENT_TRIDENT_COSTMODEL_H
