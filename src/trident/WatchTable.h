//===- WatchTable.h - Hot-trace performance monitor ------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trident's watch table (Table 2: 256 entries) monitors the hot traces
/// currently linked into execution. Per the paper it records the trace
/// starting PC, length, the *minimal* execution time observed for the
/// trace (used to compute a load's maximal prefetch distance, Section
/// 3.5.2), and the trace optimization flag that suppresses duplicate
/// re-optimization events while the helper thread works on the trace.
/// We additionally keep the running average iteration time, which the
/// "basic" (non-adaptive) distance estimator divides into the average
/// miss latency (Section 3.5, equation 2).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_WATCHTABLE_H
#define TRIDENT_TRIDENT_WATCHTABLE_H

#include "isa/Instruction.h"
#include "support/Types.h"

#include <cstdint>
#include <vector>

namespace trident {

struct WatchEntry {
  bool Valid = false;
  uint32_t TraceId = 0;
  Addr OrigStart = 0;  ///< Loop-head PC in the original binary.
  Addr TraceStart = 0; ///< Code-cache address of the trace body.
  unsigned Length = 0;
  /// Minimal observed head-to-head iteration time (best case: all hits).
  Cycle MinExecTime = ~static_cast<Cycle>(0);
  /// Running average iteration time (for the basic distance estimate).
  uint64_t IterTimeSum = 0;
  uint64_t IterCount = 0;
  /// Set while the helper thread is re-optimizing this trace.
  bool OptInProgress = false;

  bool hasTiming() const { return IterCount > 0; }
  double avgExecTime() const {
    return IterCount == 0 ? 0.0
                          : static_cast<double>(IterTimeSum) /
                                static_cast<double>(IterCount);
  }
};

class WatchTable {
public:
  explicit WatchTable(unsigned NumEntries = 256);

  /// Registers a linked trace; evicts the least-recently-updated entry if
  /// full. Returns false if an entry for the same TraceId already exists.
  bool insert(uint32_t TraceId, Addr OrigStart, Addr TraceStart,
              unsigned Length);

  /// Removes the entry for \p TraceId (trace unlinked/replaced).
  void remove(uint32_t TraceId);

  WatchEntry *find(uint32_t TraceId);
  const WatchEntry *find(uint32_t TraceId) const;

  /// Finds the entry whose *original* start PC is \p OrigStart.
  WatchEntry *findByOrigStart(Addr OrigStart);

  /// Records one observed head-to-head iteration of \p TraceId.
  void recordIteration(uint32_t TraceId, Cycle IterTime);

  unsigned size() const;
  unsigned capacity() const { return static_cast<unsigned>(Entries.size()); }

  /// Invalidates every entry (fault-injection hook, src/faults). The
  /// runtime tolerates missing watch entries everywhere — timing simply
  /// re-accumulates — so eviction models an SRAM upset safely. Returns
  /// the number of valid entries cleared.
  unsigned invalidateAll();

  /// Total SRAM bits this structure would occupy (the Section 5.4
  /// "spend it on a bigger L1 instead" comparison).
  static uint64_t estimatedBits(unsigned NumEntries);

private:
  std::vector<WatchEntry> Entries;
  // Packed lookup keys mirroring Entries: find()/findByOrigStart() run a
  // linear scan per monitored commit, so the keys live in contiguous
  // arrays instead of striding over the fat WatchEntry records. Only
  // insert/remove/invalidateAll mutate validity or keys, which keeps the
  // mirrors in sync (callers mutate payload fields through find()'s
  // pointer but never the keys).
  std::vector<uint8_t> ValidKeys;
  std::vector<uint32_t> TraceIdKeys;
  std::vector<Addr> OrigStartKeys;
  std::vector<uint64_t> LastTouch;
  uint64_t TouchClock = 0;
};

} // namespace trident

#endif // TRIDENT_TRIDENT_WATCHTABLE_H
