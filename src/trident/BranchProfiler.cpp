//===- BranchProfiler.cpp -------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trident/BranchProfiler.h"
#include "support/Check.h"

#include <cstring>

using namespace trident;

BranchProfiler::BranchProfiler(const BranchProfilerConfig &Cfg)
    : Config(Cfg) {
  TRIDENT_CHECK(Config.NumEntries % Config.Assoc == 0,
                "%u entries must divide evenly into %u-way sets",
                Config.NumEntries, Config.Assoc);
  TRIDENT_CHECK(Config.Rounds >= 1 && Config.Rounds <= 8,
                "%u capture rounds outside 1..8", Config.Rounds);
  TRIDENT_CHECK(Config.BitmapBits <= 16,
                "bitmaps are 16 bits wide (asked for %u)", Config.BitmapBits);
  Entries.resize(Config.NumEntries);
}

uint64_t BranchProfiler::estimatedBits(const BranchProfilerConfig &Config) {
  // Tag (48b) + 4-bit counter per entry, plus the capture unit's three
  // 16-bit bitmaps and a start-PC register.
  return static_cast<uint64_t>(Config.NumEntries) * (48 + 4) + 3 * 16 + 48;
}

BranchProfiler::Entry *BranchProfiler::findOrAllocate(Addr PC) {
  size_t NumSets = Entries.size() / Config.Assoc;
  size_t Base = (PC % NumSets) * Config.Assoc;
  Entry *Victim = &Entries[Base];
  for (unsigned W = 0; W < Config.Assoc; ++W) {
    Entry &E = Entries[Base + W];
    if (E.Valid && E.Tag == PC) {
      E.LastUse = ++UseClock;
      return &E;
    }
    if (!E.Valid)
      Victim = &E;
    else if (Victim->Valid && E.LastUse < Victim->LastUse)
      Victim = &E;
  }
  *Victim = Entry();
  Victim->Valid = true;
  Victim->Tag = PC;
  Victim->LastUse = ++UseClock;
  return Victim;
}

void BranchProfiler::abortCapture() {
  // Let the loop retry later: decay the counter rather than zeroing it.
  Entry *E = findOrAllocate(Cap.StartPC);
  E->Count.reset(E->Count.max() / 2);
  Cap = CaptureState();
}

std::optional<HotTraceCandidate> BranchProfiler::onCommit(Addr PC) {
  if (!Cap.Armed && !Cap.Recording)
    return std::nullopt;

  if (Cap.Armed) {
    if (PC != Cap.StartPC)
      return std::nullopt;
    // Start the first recording round.
    Cap.Armed = false;
    Cap.Recording = true;
    Cap.Bits = 0;
    Cap.NumBits = 0;
    Cap.Commits = 0;
    Cap.Round = 0;
    return std::nullopt;
  }

  // Recording.
  if (++Cap.Commits > Config.MaxCaptureCommits) {
    abortCapture();
    return std::nullopt;
  }
  if (PC != Cap.StartPC)
    return std::nullopt;

  // Loop closed: one round complete.
  Cap.RoundBits[Cap.Round] = Cap.Bits;
  Cap.RoundLens[Cap.Round] = Cap.NumBits;
  ++Cap.Round;

  // Rounds must agree with the first one.
  if (Cap.RoundBits[Cap.Round - 1] != Cap.RoundBits[0] ||
      Cap.RoundLens[Cap.Round - 1] != Cap.RoundLens[0]) {
    abortCapture();
    return std::nullopt;
  }

  if (Cap.Round >= Config.Rounds) {
    HotTraceCandidate C;
    C.StartPC = Cap.StartPC;
    C.Bitmap = Cap.RoundBits[0];
    C.NumBranches = Cap.RoundLens[0];
    Entry *E = findOrAllocate(Cap.StartPC);
    E->Count.reset();
    Cap = CaptureState();
    return C;
  }

  // Next round.
  Cap.Bits = 0;
  Cap.NumBits = 0;
  Cap.Commits = 0;
  return std::nullopt;
}

void BranchProfiler::onBranch(Addr PC, bool Conditional, bool Taken,
                              Addr Target) {
  // Record directions while capturing.
  if (Cap.Recording && Conditional) {
    if (Cap.NumBits >= Config.BitmapBits) {
      // Path too long for the capture hardware: give up on this loop.
      Entry *E = findOrAllocate(Cap.StartPC);
      E->Count.reset();
      Cap = CaptureState();
    } else {
      if (Taken)
        Cap.Bits = static_cast<uint16_t>(Cap.Bits | (1u << Cap.NumBits));
      ++Cap.NumBits;
    }
  }

  // Backward taken edges identify loop heads.
  if (!Taken || Target > PC)
    return;
  if (Suppressed.count(Target))
    return;
  Entry *E = findOrAllocate(Target);
  E->Count.increment();
  if (E->Count.isSaturated() && !Cap.Armed && !Cap.Recording) {
    Cap.Armed = true;
    Cap.StartPC = Target;
  }
}
