//===- CodeCache.h - Trace memory + binary patching ------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Code Cache holds optimized hot traces at high instruction addresses;
/// Trident "inserts the trace into a memory buffer, called the Code Cache,
/// and patches the original binary to redirect execution to use the hot
/// trace" (Section 3.2). Re-optimized traces are installed fresh and the
/// entry patch is redirected, so a thread automatically starts using the
/// new trace at its next loop-head visit. Self-repair patches prefetch
/// instruction bits in place via at().
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_CODECACHE_H
#define TRIDENT_TRIDENT_CODECACHE_H

#include "cpu/CodeSpace.h"
#include "isa/Program.h"
#include "support/Check.h"

#include <unordered_map>
#include <vector>

namespace trident {

// trident-lint: not-a-hw-table(the Code Cache is a software memory buffer
// in the optimizer's address space, not a fixed SRAM; Section 3.2)
class CodeCache {
public:
  /// Traces live at and above this address; anything below is the original
  /// program image.
  static constexpr Addr Base = 0x4000'0000;

  /// Copies \p Body into the cache and returns its start address.
  /// \p TraceId tags every slot for O(1) commit-stream attribution.
  Addr install(const std::vector<Instruction> &Body, uint32_t TraceId);

  bool contains(Addr PC) const {
    return PC >= Base && PC < Base + Slots.size();
  }

  const Instruction &at(Addr PC) const {
    TRIDENT_DCHECK(contains(PC), "PC 0x%llx outside code cache",
                   (unsigned long long)PC);
    return Slots[PC - Base];
  }

  /// Mutable access — this is how the self-repairing optimizer rewrites a
  /// prefetch instruction's distance without regenerating the trace.
  Instruction &at(Addr PC) {
    TRIDENT_DCHECK(contains(PC), "PC 0x%llx outside code cache",
                   (unsigned long long)PC);
    return Slots[PC - Base];
  }

  /// TraceId owning the slot at \p PC.
  uint32_t traceIdAt(Addr PC) const {
    TRIDENT_DCHECK(contains(PC), "PC 0x%llx outside code cache",
                   (unsigned long long)PC);
    return SlotTraceIds[PC - Base];
  }

  size_t sizeInstructions() const { return Slots.size(); }

private:
  std::vector<Instruction> Slots;
  std::vector<uint32_t> SlotTraceIds;
};

/// Saves-and-patches instructions in the original binary. Used to link a
/// hot trace (replace the loop-head instruction with a jump into the code
/// cache) and to back out of traces.
class BinaryPatcher {
public:
  explicit BinaryPatcher(Program &P) : Prog(P) {}

  /// Replaces the instruction at \p At with a jump to \p Target, saving the
  /// original for restore(). Re-patching an already patched address keeps
  /// the *original* saved instruction.
  void patchJump(Addr At, Addr Target);

  /// Restores the saved original instruction at \p At.
  void restore(Addr At);

  bool isPatched(Addr At) const { return Saved.count(At) != 0; }

private:
  Program &Prog;
  std::unordered_map<Addr, Instruction> Saved;
};

/// Unified instruction fetch over (patched) program + code cache.
class CodeImage final : public CodeSpace {
public:
  CodeImage(Program &P, CodeCache &CCRef) : Prog(P), CC(CCRef) {}

  const Instruction &fetch(Addr PC) const override {
    if (CC.contains(PC))
      return CC.at(PC);
    return Prog.at(PC);
  }

private:
  Program &Prog;
  CodeCache &CC;
};

} // namespace trident

#endif // TRIDENT_TRIDENT_CODECACHE_H
