//===- Registration.h - Helper-thread registration structure ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trident's registration structure (Section 3.1): a record in the
/// program's address space holding everything needed to spawn the
/// optimization helper thread quickly — "a pointer to the starting code
/// of the helper thread, as well as the stack pointer, global data
/// pointer, pointer to the code cache structure, and thread priority...
/// it provides a fast mechanism for spawning an optimization thread, and
/// an efficient mechanism to keep track of state across context switches
/// and helper thread invocations."
///
/// In this reproduction the helper thread's *work* is modeled by a costed
/// stub (see SmtCore::startStub), so the registration structure's role is
/// bookkeeping: the runtime initializes it once, the 2000-cycle startup
/// latency represents loading it into the spare context, and its fields
/// anchor the addresses the optimizer operates on.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_REGISTRATION_H
#define TRIDENT_TRIDENT_REGISTRATION_H

#include "isa/Instruction.h"

#include <cstdint>

namespace trident {

struct RegistrationStructure {
  /// Starting PC of the helper thread's runtime-optimizer code.
  Addr HelperStartPC = 0;
  /// Helper thread's private stack.
  Addr StackPointer = 0;
  /// Global data pointer of the runtime system.
  Addr GlobalDataPointer = 0;
  /// The code cache structure the optimizer writes traces into.
  Addr CodeCachePointer = 0;
  /// Hardware priority: the helper runs below the main thread so
  /// optimization steals only spare issue slots (Section 5.1).
  enum class Priority : uint8_t { Low, Normal, High } ThreadPriority =
      Priority::Low;
  /// Set while a helper invocation is outstanding (state kept across
  /// context switches).
  bool HelperActive = false;
  /// Number of helper invocations spawned through this structure.
  uint64_t Invocations = 0;
};

} // namespace trident

#endif // TRIDENT_TRIDENT_REGISTRATION_H
