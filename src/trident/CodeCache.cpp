//===- CodeCache.cpp ------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trident/CodeCache.h"
#include "support/Check.h"

using namespace trident;

Addr CodeCache::install(const std::vector<Instruction> &Body,
                        uint32_t TraceId) {
  TRIDENT_CHECK(!Body.empty(), "installing an empty trace");
  Addr Start = Base + Slots.size();
  Slots.insert(Slots.end(), Body.begin(), Body.end());
  SlotTraceIds.insert(SlotTraceIds.end(), Body.size(), TraceId);
  return Start;
}

void BinaryPatcher::patchJump(Addr At, Addr Target) {
  auto It = Saved.find(At);
  if (It == Saved.end())
    Saved.emplace(At, Prog.at(At));
  Instruction J = makeJump(Target);
  J.OrigPC = At;
  // The entry jump is runtime-added glue: the instruction it replaced
  // lives on as the first instruction of the trace, so the jump itself
  // must not count toward original-program IPC.
  J.Synthetic = true;
  Prog.at(At) = J;
}

void BinaryPatcher::restore(Addr At) {
  auto It = Saved.find(At);
  TRIDENT_CHECK(It != Saved.end(), "restoring an unpatched address");
  Prog.at(At) = It->second;
  Saved.erase(It);
}
