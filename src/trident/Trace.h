//===- Trace.h - A streamlined hot trace -----------------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hot trace: frequently executed basic blocks streamlined into a single
/// straight-line body with side exits (Section 3.2). A looping trace ends
/// with a jump back to the original loop-head PC; because that address is
/// patched with a jump into the (latest) trace, every iteration
/// automatically picks up re-optimized versions.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_TRACE_H
#define TRIDENT_TRIDENT_TRACE_H

#include "isa/Instruction.h"

#include <vector>

namespace trident {

struct Trace {
  uint32_t Id = 0;
  /// Loop-head PC in the original binary.
  Addr OrigStart = 0;
  /// Code-cache placement (0 until installed).
  Addr CacheAddr = 0;
  /// The trace body. Conditional branches are side exits into original
  /// code; a looping trace's final instruction jumps to OrigStart.
  std::vector<Instruction> Body;
  /// True when the trace closes back on its own head (a loop).
  bool ClosesLoop = false;
  /// Provenance: the profiler bitmap this trace was formed from.
  uint16_t Bitmap = 0;
  uint8_t NumBranches = 0;

  size_t size() const { return Body.size(); }
};

} // namespace trident

#endif // TRIDENT_TRIDENT_TRACE_H
