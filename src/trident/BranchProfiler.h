//===- BranchProfiler.h - Hardware hot-trace detection ---------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trident's generic branch profiler (Table 2: 256 entries, 4-way
/// associative, a 4-bit counter per entry, and three standalone 16-bit
/// direction bitmaps). It counts visits to backward-branch targets (loop
/// heads); when a counter saturates, a capture unit records the directions
/// of the next conditional branches until execution returns to the start
/// PC — three times. Three identical captures identify a stable hot path,
/// and the profiler raises a hot-trace event carrying "a starting PC
/// followed by a branch direction bitmap" (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_TRIDENT_BRANCHPROFILER_H
#define TRIDENT_TRIDENT_BRANCHPROFILER_H

#include "events/HardwareEvent.h"
#include "isa/Instruction.h"
#include "support/SaturatingCounter.h"

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

namespace trident {

struct BranchProfilerConfig {
  unsigned NumEntries = 256;
  unsigned Assoc = 4;
  /// Bits per direction bitmap ("three standalone 16-bit bitmaps").
  unsigned BitmapBits = 16;
  /// Identical capture rounds required before an event fires.
  unsigned Rounds = 3;
  /// Abandon a capture that runs longer than this many committed
  /// instructions without closing the loop.
  unsigned MaxCaptureCommits = 4096;
};

// HotTraceCandidate — the payload of the profiler's hot-trace event —
// lives in events/HardwareEvent.h with the rest of the event vocabulary.

class BranchProfiler {
public:
  explicit BranchProfiler(const BranchProfilerConfig &Config = {});

  /// Feed every committed instruction of the *original* program region
  /// (the runtime excludes code-cache commits). May complete a capture
  /// round and return a hot-trace candidate.
  std::optional<HotTraceCandidate> onCommit(Addr PC);

  /// Feed committed control transfers. \p Conditional distinguishes
  /// conditional branches (whose directions the capture records) from
  /// unconditional jumps (which only contribute backward-edge detection).
  void onBranch(Addr PC, bool Conditional, bool Taken, Addr Target);

  /// Suppresses future events for \p StartPC (the runtime calls this once
  /// a trace is linked for it).
  void suppress(Addr StartPC) { Suppressed.insert(StartPC); }
  void unsuppress(Addr StartPC) { Suppressed.erase(StartPC); }

  const BranchProfilerConfig &config() const { return Config; }
  bool captureInProgress() const { return Cap.Armed || Cap.Recording; }

  /// SRAM estimate for the Section 5.4 comparison.
  static uint64_t estimatedBits(const BranchProfilerConfig &Config);

private:
  struct Entry {
    bool Valid = false;
    Addr Tag = 0;
    FourBitCounter Count;
    uint64_t LastUse = 0;
  };

  struct CaptureState {
    bool Armed = false;     ///< Waiting for StartPC to commit.
    bool Recording = false; ///< Between StartPC commits.
    Addr StartPC = 0;
    uint16_t Bits = 0;
    uint8_t NumBits = 0;
    unsigned Commits = 0;
    unsigned Round = 0;
    uint16_t RoundBits[8] = {};
    uint8_t RoundLens[8] = {};
  };

  Entry *findOrAllocate(Addr PC);
  void abortCapture();

  BranchProfilerConfig Config;
  std::vector<Entry> Entries;
  CaptureState Cap;
  std::unordered_set<Addr> Suppressed;
  uint64_t UseClock = 0;
};

} // namespace trident

#endif // TRIDENT_TRIDENT_BRANCHPROFILER_H
