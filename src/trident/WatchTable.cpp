//===- WatchTable.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trident/WatchTable.h"
#include "support/Check.h"


using namespace trident;

WatchTable::WatchTable(unsigned NumEntries) {
  TRIDENT_CHECK(NumEntries > 0, "watch table needs at least one entry");
  TRIDENT_CHECK(NumEntries <= 1u << 20,
                "watch table size %u is implausible for an SRAM structure",
                NumEntries);
  Entries.resize(NumEntries);
  ValidKeys.assign(NumEntries, 0);
  TraceIdKeys.assign(NumEntries, 0);
  OrigStartKeys.assign(NumEntries, 0);
  LastTouch.assign(NumEntries, 0);
}

bool WatchTable::insert(uint32_t TraceId, Addr OrigStart, Addr TraceStart,
                        unsigned Length) {
  if (find(TraceId))
    return false;
  size_t VictimIdx = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (!ValidKeys[I]) {
      VictimIdx = I;
      break;
    }
    if (LastTouch[I] < LastTouch[VictimIdx])
      VictimIdx = I;
  }
  // Capacity bound: replacement always lands inside the fixed-size table;
  // occupancy can never exceed the configured entry count.
  TRIDENT_DCHECK(VictimIdx < Entries.size(),
                 "watch-table victim slot %zu outside table of %zu",
                 VictimIdx, Entries.size());
  WatchEntry &E = Entries[VictimIdx];
  E = WatchEntry();
  E.Valid = true;
  E.TraceId = TraceId;
  E.OrigStart = OrigStart;
  E.TraceStart = TraceStart;
  E.Length = Length;
  ValidKeys[VictimIdx] = 1;
  TraceIdKeys[VictimIdx] = TraceId;
  OrigStartKeys[VictimIdx] = OrigStart;
  LastTouch[VictimIdx] = ++TouchClock;
  return true;
}

void WatchTable::remove(uint32_t TraceId) {
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (ValidKeys[I] && TraceIdKeys[I] == TraceId) {
      ValidKeys[I] = 0;
      Entries[I].Valid = false;
    }
  }
}

WatchEntry *WatchTable::find(uint32_t TraceId) {
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (ValidKeys[I] && TraceIdKeys[I] == TraceId) {
      LastTouch[I] = ++TouchClock;
      return &Entries[I];
    }
  }
  return nullptr;
}

const WatchEntry *WatchTable::find(uint32_t TraceId) const {
  return const_cast<WatchTable *>(this)->find(TraceId);
}

WatchEntry *WatchTable::findByOrigStart(Addr OrigStart) {
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (ValidKeys[I] && OrigStartKeys[I] == OrigStart) {
      LastTouch[I] = ++TouchClock;
      return &Entries[I];
    }
  }
  return nullptr;
}

void WatchTable::recordIteration(uint32_t TraceId, Cycle IterTime) {
  WatchEntry *E = find(TraceId);
  if (!E)
    return;
  if (IterTime < E->MinExecTime)
    E->MinExecTime = IterTime;
  E->IterTimeSum += IterTime;
  ++E->IterCount;
  // The minimum can only fall and stays consistent with the running sum:
  // the Section 3.5.2 distance estimate divides by these numbers.
  TRIDENT_DCHECK(E->MinExecTime * E->IterCount <= E->IterTimeSum,
                 "watch entry %u: min iter time %llu inconsistent with "
                 "sum %llu over %llu iterations",
                 TraceId, (unsigned long long)E->MinExecTime,
                 (unsigned long long)E->IterTimeSum,
                 (unsigned long long)E->IterCount);
}

unsigned WatchTable::invalidateAll() {
  unsigned N = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (ValidKeys[I]) {
      ValidKeys[I] = 0;
      Entries[I].Valid = false;
      ++N;
    }
  }
  return N;
}

unsigned WatchTable::size() const {
  unsigned N = 0;
  for (uint8_t V : ValidKeys)
    N += V;
  return N;
}

uint64_t WatchTable::estimatedBits(unsigned NumEntries) {
  // Start PC (48b) + length (12b) + min exec time (24b) + flags (2b).
  return static_cast<uint64_t>(NumEntries) * (48 + 12 + 24 + 2);
}
