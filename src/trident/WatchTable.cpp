//===- WatchTable.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trident/WatchTable.h"

#include <cassert>

using namespace trident;

WatchTable::WatchTable(unsigned NumEntries) {
  assert(NumEntries > 0 && "watch table needs at least one entry");
  Entries.resize(NumEntries);
  LastTouch.assign(NumEntries, 0);
}

bool WatchTable::insert(uint32_t TraceId, Addr OrigStart, Addr TraceStart,
                        unsigned Length) {
  if (find(TraceId))
    return false;
  size_t VictimIdx = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (!Entries[I].Valid) {
      VictimIdx = I;
      break;
    }
    if (LastTouch[I] < LastTouch[VictimIdx])
      VictimIdx = I;
  }
  WatchEntry &E = Entries[VictimIdx];
  E = WatchEntry();
  E.Valid = true;
  E.TraceId = TraceId;
  E.OrigStart = OrigStart;
  E.TraceStart = TraceStart;
  E.Length = Length;
  LastTouch[VictimIdx] = ++TouchClock;
  return true;
}

void WatchTable::remove(uint32_t TraceId) {
  for (WatchEntry &E : Entries)
    if (E.Valid && E.TraceId == TraceId)
      E.Valid = false;
}

WatchEntry *WatchTable::find(uint32_t TraceId) {
  for (size_t I = 0; I < Entries.size(); ++I) {
    WatchEntry &E = Entries[I];
    if (E.Valid && E.TraceId == TraceId) {
      LastTouch[I] = ++TouchClock;
      return &E;
    }
  }
  return nullptr;
}

const WatchEntry *WatchTable::find(uint32_t TraceId) const {
  return const_cast<WatchTable *>(this)->find(TraceId);
}

WatchEntry *WatchTable::findByOrigStart(Addr OrigStart) {
  for (size_t I = 0; I < Entries.size(); ++I) {
    WatchEntry &E = Entries[I];
    if (E.Valid && E.OrigStart == OrigStart) {
      LastTouch[I] = ++TouchClock;
      return &E;
    }
  }
  return nullptr;
}

void WatchTable::recordIteration(uint32_t TraceId, Cycle IterTime) {
  WatchEntry *E = find(TraceId);
  if (!E)
    return;
  if (IterTime < E->MinExecTime)
    E->MinExecTime = IterTime;
  E->IterTimeSum += IterTime;
  ++E->IterCount;
}

unsigned WatchTable::size() const {
  unsigned N = 0;
  for (const WatchEntry &E : Entries)
    N += E.Valid;
  return N;
}

uint64_t WatchTable::estimatedBits(unsigned NumEntries) {
  // Start PC (48b) + length (12b) + min exec time (24b) + flags (2b).
  return static_cast<uint64_t>(NumEntries) * (48 + 12 + 24 + 2);
}
