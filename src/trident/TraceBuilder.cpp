//===- TraceBuilder.cpp ---------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trident/TraceBuilder.h"
#include "support/Check.h"

#include <algorithm>
#include <array>
#include <optional>

using namespace trident;

static Opcode invertBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return Opcode::Bne;
  case Opcode::Bne:
    return Opcode::Beq;
  case Opcode::Blt:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Blt;
  default:
    TRIDENT_UNREACHABLE("not a conditional branch");
    return Op;
  }
}

std::optional<Trace> TraceBuilder::build(const Program &Prog,
                                         const HotTraceCandidate &Candidate,
                                         uint32_t Id) const {
  if (!Prog.contains(Candidate.StartPC))
    return std::nullopt;

  Trace T;
  T.Id = Id;
  T.OrigStart = Candidate.StartPC;
  T.Bitmap = Candidate.Bitmap;
  T.NumBranches = Candidate.NumBranches;

  Addr PC = Candidate.StartPC;
  unsigned BitsUsed = 0;
  unsigned JumpChain = 0;
  unsigned PendingCredit = 0; // commit credit from streamlined-away jumps

  auto push = [&](Instruction Ins) {
    if (!Ins.Synthetic && PendingCredit) {
      Ins.ExtraCommits =
          static_cast<uint8_t>(std::min(250u, PendingCredit));
      PendingCredit -= Ins.ExtraCommits;
    }
    T.Body.push_back(Ins);
  };

  while (true) {
    if (!T.Body.empty() && PC == Candidate.StartPC) {
      // The hot path closed back on the loop head. Jump to the *original*
      // start PC: it is patched to enter the (latest) trace, so
      // re-optimized versions take over automatically.
      Instruction J = makeJump(Candidate.StartPC);
      J.Synthetic = true;
      T.Body.push_back(J);
      T.ClosesLoop = true;
      break;
    }
    if (!Prog.contains(PC)) {
      // Path left the program image; cannot happen for well-formed
      // programs, bail out defensively.
      return std::nullopt;
    }

    const Instruction &I = Prog.at(PC);

    if (I.Op == Opcode::Jump) {
      Addr Target = static_cast<Addr>(I.Imm);
      if (Target == PC || ++JumpChain > 64)
        return std::nullopt; // Degenerate self-loop.
      PC = Target;     // Streamlined away...
      ++PendingCredit; // ...but it still counts as committed.
      continue;
    }
    JumpChain = 0;

    if (I.isConditionalBranch()) {
      if (BitsUsed >= Candidate.NumBranches) {
        // No more path information: end the trace with an exit to the
        // branch itself in original code.
        Instruction J = makeJump(PC);
        J.Synthetic = true;
        T.Body.push_back(J);
        break;
      }
      bool Taken = (Candidate.Bitmap >> BitsUsed) & 1;
      ++BitsUsed;
      Instruction B = I;
      B.OrigPC = PC;
      if (Taken) {
        // Hot path takes the branch: invert it so the trace falls through
        // and the side exit goes to the original fall-through.
        B.Op = invertBranch(I.Op);
        B.Imm = static_cast<int64_t>(PC + 1);
        push(B);
        PC = static_cast<Addr>(I.Imm);
      } else {
        // Hot path falls through; the branch target is the side exit.
        push(B);
        PC = PC + 1;
      }
    } else if (I.Op == Opcode::Halt) {
      Instruction H = I;
      H.OrigPC = PC;
      push(H);
      break;
    } else {
      Instruction C = I;
      C.OrigPC = PC;
      push(C);
      PC = PC + 1;
    }

    if (T.Body.size() >= Config.MaxLength) {
      Instruction J = makeJump(PC);
      J.Synthetic = true;
      T.Body.push_back(J);
      break;
    }
  }

  if (T.Body.size() < 2)
    return std::nullopt;

  // Peephole: a loop that closes via [inverted-branch -> side exit;
  // jump OrigStart] re-forms as [original-branch -> OrigStart; jump side
  // exit], so the common (looping) path takes one branch and the jump only
  // executes on loop exit. The install step retargets the OrigStart
  // reference at the trace's own head.
  if (T.ClosesLoop && T.Body.size() >= 2) {
    Instruction &J = T.Body.back();
    Instruction &Br = T.Body[T.Body.size() - 2];
    if (J.Op == Opcode::Jump && J.Synthetic &&
        static_cast<Addr>(J.Imm) == T.OrigStart &&
        Br.isConditionalBranch()) {
      Addr SideExit = static_cast<Addr>(Br.Imm);
      Br.Op = invertBranch(Br.Op);
      Br.Imm = static_cast<int64_t>(T.OrigStart);
      J.Imm = static_cast<int64_t>(SideExit);
    }
  }

  if (Config.RunClassicalOpts)
    LastOptStats = runClassicalOpts(T.Body);
  return T;
}

namespace {

/// Forward dataflow state for the classical optimizations. Register and
/// memory version counters make "no intervening redefinition / store"
/// checks O(1), and everything is conservative: we only rewrite an
/// instruction into one computing the identical register result, so side
/// exits observe unchanged machine state.
struct OptState {
  struct RegInfo {
    uint64_t Version = 0;
    bool IsConst = false;
    int64_t ConstVal = 0;
  };
  struct AvailValue {
    unsigned Base = 0;
    uint64_t BaseVersion = 0;
    int64_t Offset = 0;
    uint64_t MemVersion = 0;
    unsigned ValueReg = 0;
    uint64_t ValueVersion = 0;
    bool FromStore = false;
  };

  std::array<RegInfo, reg::NumRegs> Regs;
  std::vector<AvailValue> Avail;
  uint64_t MemVersion = 0;

  void killReg(unsigned R, bool Const = false, int64_t CV = 0) {
    if (R == reg::Zero)
      return;
    ++Regs[R].Version;
    Regs[R].IsConst = Const;
    Regs[R].ConstVal = CV;
  }

  bool isConst(unsigned R, int64_t &V) const {
    if (R == reg::Zero) {
      V = 0;
      return true;
    }
    if (!Regs[R].IsConst)
      return false;
    V = Regs[R].ConstVal;
    return true;
  }

  /// Finds a register still holding the value of memory[Base+Offset].
  const AvailValue *findAvail(unsigned Base, int64_t Offset) const {
    for (const AvailValue &A : Avail) {
      if (A.Base != Base || A.Offset != Offset)
        continue;
      if (A.BaseVersion != Regs[A.Base].Version)
        continue;
      if (A.MemVersion != MemVersion)
        continue;
      if (A.ValueVersion != Regs[A.ValueReg].Version)
        continue;
      return &A;
    }
    return nullptr;
  }

  void addAvail(unsigned Base, int64_t Offset, unsigned ValueReg,
                bool FromStore) {
    if (ValueReg == reg::Zero)
      return;
    Avail.push_back({Base, Regs[Base].Version, Offset, MemVersion, ValueReg,
                     Regs[ValueReg].Version, FromStore});
  }
};

bool isPow2(int64_t V) { return V > 0 && (V & (V - 1)) == 0; }

int64_t log2of(int64_t V) {
  int64_t L = 0;
  while ((int64_t(1) << L) < V)
    ++L;
  return L;
}

} // namespace

ClassicalOptStats
TraceBuilder::runClassicalOpts(std::vector<Instruction> &Body) {
  ClassicalOptStats Stats;
  OptState S;

  for (Instruction &I : Body) {
    switch (I.Op) {
    case Opcode::LoadImm:
      S.killReg(I.Rd, /*Const=*/true, I.Imm);
      continue;

    case Opcode::Move: {
      int64_t CV;
      if (S.isConst(I.Rs1, CV)) {
        Instruction NewI = makeLoadImm(I.Rd, CV);
        NewI.OrigPC = I.OrigPC;
        NewI.Synthetic = I.Synthetic;
        I = NewI;
        ++Stats.ConstantsFolded;
        S.killReg(I.Rd, true, CV);
      } else {
        S.killReg(I.Rd);
      }
      continue;
    }

    case Opcode::AddI:
    case Opcode::SubI:
    case Opcode::MulI:
    case Opcode::AndI:
    case Opcode::OrI:
    case Opcode::XorI:
    case Opcode::ShlI:
    case Opcode::ShrI: {
      // Strength reduction: multiply by a power of two becomes a shift.
      if (I.Op == Opcode::MulI && isPow2(I.Imm)) {
        I.Op = Opcode::ShlI;
        I.Imm = log2of(I.Imm);
        ++Stats.StrengthReduced;
      }
      int64_t CV;
      if (S.isConst(I.Rs1, CV)) {
        int64_t R = 0;
        bool Fold = true;
        switch (I.Op) {
        case Opcode::AddI:
          R = CV + I.Imm;
          break;
        case Opcode::SubI:
          R = CV - I.Imm;
          break;
        case Opcode::MulI:
          R = CV * I.Imm;
          break;
        case Opcode::AndI:
          R = CV & I.Imm;
          break;
        case Opcode::OrI:
          R = CV | I.Imm;
          break;
        case Opcode::XorI:
          R = CV ^ I.Imm;
          break;
        case Opcode::ShlI:
          R = static_cast<int64_t>(static_cast<uint64_t>(CV)
                                   << (I.Imm & 63));
          break;
        case Opcode::ShrI:
          R = static_cast<int64_t>(static_cast<uint64_t>(CV) >>
                                   (I.Imm & 63));
          break;
        default:
          Fold = false;
          break;
        }
        if (Fold) {
          Instruction NewI = makeLoadImm(I.Rd, R);
          NewI.OrigPC = I.OrigPC;
          NewI.Synthetic = I.Synthetic;
          I = NewI;
          ++Stats.ConstantsFolded;
          S.killReg(I.Rd, true, R);
          continue;
        }
      }
      S.killReg(I.Rd);
      continue;
    }

    case Opcode::Load:
    case Opcode::NFLoad: {
      // Redundant load removal / store-to-load forwarding: if a register
      // provably still holds this memory value, convert to a MOVE. This is
      // also how Trident's "store/load pair to MOVE" legacy optimization
      // falls out (Section 3.2).
      if (const OptState::AvailValue *A = S.findAvail(I.Rs1, I.Imm)) {
        unsigned Src = A->ValueReg;
        if (A->FromStore)
          ++Stats.StoreLoadPairsForwarded;
        else
          ++Stats.RedundantLoadsRemoved;
        Instruction NewI = makeMove(I.Rd, Src);
        NewI.OrigPC = I.OrigPC;
        NewI.Synthetic = I.Synthetic;
        I = NewI;
        int64_t CV;
        if (S.isConst(Src, CV))
          S.killReg(I.Rd, true, CV);
        else
          S.killReg(I.Rd);
        continue;
      }
      unsigned Base = I.Rs1;
      int64_t Off = I.Imm;
      S.killReg(I.Rd);
      S.addAvail(Base, Off, I.Rd, /*FromStore=*/false);
      continue;
    }

    case Opcode::Store:
      ++S.MemVersion; // Conservative: a store may alias anything.
      S.addAvail(I.Rs1, I.Imm, I.Rs2, /*FromStore=*/true);
      continue;

    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge: {
      // Redundant branch removal (Section 3.2): a side-exit branch whose
      // condition is provably false on the trace path never fires and can
      // be deleted. (A provably-true branch would mean the trace path is
      // impossible; keep it — the trace will simply always exit.)
      int64_t A, Cv;
      if (S.isConst(I.Rs1, A) && S.isConst(I.Rs2, Cv)) {
        bool Taken = false;
        switch (I.Op) {
        case Opcode::Beq:
          Taken = A == Cv;
          break;
        case Opcode::Bne:
          Taken = A != Cv;
          break;
        case Opcode::Blt:
          Taken = A < Cv;
          break;
        default:
          Taken = A >= Cv;
          break;
        }
        if (!Taken) {
          I.Op = Opcode::Nop; // erased below
          ++Stats.RedundantBranchesRemoved;
        }
      }
      continue;
    }

    case Opcode::Prefetch:
    case Opcode::Nop:
    case Opcode::Halt:
    case Opcode::Jump:
      continue; // No register effects.

    default:
      // Reg-reg ALU / FP: fold when both operands constant.
      int64_t A, B;
      if (execClass(I.Op) == ExecClass::IntAlu && S.isConst(I.Rs1, A) &&
          S.isConst(I.Rs2, B)) {
        int64_t R = 0;
        bool Fold = true;
        switch (I.Op) {
        case Opcode::Add:
          R = A + B;
          break;
        case Opcode::Sub:
          R = A - B;
          break;
        case Opcode::And:
          R = A & B;
          break;
        case Opcode::Or:
          R = A | B;
          break;
        case Opcode::Xor:
          R = A ^ B;
          break;
        case Opcode::Mul:
          R = A * B;
          break;
        default:
          Fold = false;
          break;
        }
        if (Fold) {
          Instruction NewI = makeLoadImm(I.Rd, R);
          NewI.OrigPC = I.OrigPC;
          NewI.Synthetic = I.Synthetic;
          I = NewI;
          ++Stats.ConstantsFolded;
          S.killReg(I.Rd, true, R);
          continue;
        }
      }
      if (I.writesRd())
        S.killReg(I.Rd);
      continue;
    }
  }

  // Erase the branches nulled out above (nop removal is itself a legal
  // trace optimization). The removed instructions' commit credit moves to
  // a surviving non-synthetic neighbour so original-IPC accounting holds.
  if (Stats.RedundantBranchesRemoved > 0) {
    std::vector<Instruction> Kept;
    Kept.reserve(Body.size());
    unsigned Credit = 0;
    for (const Instruction &I : Body) {
      if (I.Op == Opcode::Nop) {
        Credit += 1u + I.ExtraCommits;
        continue;
      }
      Kept.push_back(I);
      Instruction &K = Kept.back();
      if (!K.Synthetic && Credit) {
        unsigned Take = std::min(250u - K.ExtraCommits, Credit);
        K.ExtraCommits = static_cast<uint8_t>(K.ExtraCommits + Take);
        Credit -= Take;
      }
    }
    // Any residual credit (pathological all-synthetic tail) lands on the
    // last surviving non-synthetic instruction.
    if (Credit)
      for (auto It = Kept.rbegin(); It != Kept.rend(); ++It)
        if (!It->Synthetic) {
          It->ExtraCommits = static_cast<uint8_t>(
              std::min<unsigned>(250, It->ExtraCommits + Credit));
          break;
        }
    Body = std::move(Kept);
  }
  return Stats;
}
