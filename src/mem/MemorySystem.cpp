//===- MemorySystem.cpp ---------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// trident-lint: hot-path (per-access simulation inner loop; no O(n) erase
// scans)
//
//===----------------------------------------------------------------------===//

#include "mem/MemorySystem.h"
#include "support/StatRegistry.h"
#include "support/Check.h"

#include <algorithm>
#include <functional>

using namespace trident;

void MemStats::registerInto(StatRegistry &R, const std::string &Prefix) const {
  R.setCounter(Prefix + "demand_loads", DemandLoads);
  R.setCounter(Prefix + "hits_none", HitsNone);
  R.setCounter(Prefix + "hits_prefetched", HitsPrefetched);
  R.setCounter(Prefix + "partial_hits", PartialHits);
  R.setCounter(Prefix + "misses", Misses);
  R.setCounter(Prefix + "misses_due_to_prefetch", MissesDueToPrefetch);
  R.setCounter(Prefix + "stream_buffer_hits", StreamBufferHits);
  R.setCounter(Prefix + "software_prefetches", SoftwarePrefetches);
  R.setCounter(Prefix + "hardware_prefetches", HardwarePrefetches);
  R.setCounter(Prefix + "memory_fetches", MemoryFetches);
  R.setCounter(Prefix + "total_exposed_latency", TotalExposedLatency);
}

void HwPfStats::registerInto(StatRegistry &R,
                             const std::string &Prefix) const {
  for (const auto &C : Counters)
    R.setCounter(Prefix + C.first, C.second);
}

uint64_t HwPfStats::get(const std::string &Name) const {
  for (const auto &C : Counters)
    if (C.first == Name)
      return C.second;
  return 0;
}

MemoryBackend::~MemoryBackend() = default;
HwPrefetcher::~HwPrefetcher() = default;

void HwPrefetcher::trainOnAccess(Addr, Addr, Cycle) {}
void HwPrefetcher::trainOnFill(Addr, Cycle, AccessKind) {}

HwPfStats HwPrefetcher::snapshotStats() const {
  HwPfStats S;
  S.Prefetcher = name();
  return S;
}

MemorySystem::MemorySystem(const MemSystemConfig &Cfg)
    : Config(Cfg), L1(Config.L1), L2(Config.L2), L3(Config.L3) {
  TRIDENT_CHECK(Config.L1.LineSize == Config.L2.LineSize &&
                    Config.L2.LineSize == Config.L3.LineSize,
                "hierarchy levels must share a line size (L1 %u, L2 %u, L3 %u)",
                Config.L1.LineSize, Config.L2.LineSize, Config.L3.LineSize);
  if (Config.Tlb.Enable)
    Dtlb = std::make_unique<Tlb>(Config.Tlb); // trident-lint: alloc-ok(construction)
  // The MSHR heap never outgrows the configured hardware bound; reserving
  // it here keeps the per-miss push/pop allocation-free.
  OutstandingFills.reserve(Config.NumMSHRs);
}

void MemorySystem::attachPrefetcher(std::unique_ptr<HwPrefetcher> NewPf) {
  // Mid-run swaps (the control plane's selector) are legal *between*
  // accesses only: replacing the unit here destroys the object whose
  // trainOnMiss/probe frame would still be on the stack inside access().
  // MSHR state (OutstandingFills) and the bus horizon (BusNextFree) live
  // in MemorySystem, not in the unit, so in-flight fills issued by the
  // outgoing prefetcher keep their timing across the swap; only the
  // unit's private buffers (untransferred prefetched lines) are dropped,
  // exactly as if real hardware power-gated the old engine.
  TRIDENT_DCHECK(!InAccess,
                 "attachPrefetcher called from inside MemorySystem::access");
  Pf = std::move(NewPf);
  PfTrainsOnAccess = Pf && Pf->wantsAccessTraining();
  PfTrainsOnFill = Pf && Pf->wantsFillTraining();
}

Cycle MemorySystem::allocateMshr(Cycle IssueCycle, Cycle Ready) {
  // OutstandingFills is a min-heap on ready cycle: the root is always the
  // earliest completion, so purging finished fills and waiting for a free
  // MSHR both touch only the heap root.
  auto Greater = std::greater<Cycle>();
  while (!OutstandingFills.empty() && OutstandingFills.front() <= IssueCycle) {
    std::pop_heap(OutstandingFills.begin(), OutstandingFills.end(), Greater);
    OutstandingFills.pop_back();
  }
  if (OutstandingFills.size() >= Config.NumMSHRs) {
    // All MSHRs busy: the new fill waits for the earliest completion.
    TRIDENT_DCHECK(OutstandingFills.front() > IssueCycle,
                   "stale fill survived the purge (root %llu <= issue %llu)",
                   (unsigned long long)OutstandingFills.front(),
                   (unsigned long long)IssueCycle);
    Cycle Delay = OutstandingFills.front() - IssueCycle;
    std::pop_heap(OutstandingFills.begin(), OutstandingFills.end(), Greater);
    OutstandingFills.pop_back();
    Ready += Delay;
  }
  OutstandingFills.push_back(Ready);
  std::push_heap(OutstandingFills.begin(), OutstandingFills.end(), Greater);
  // MSHR-heap bound: the structure models a fixed hardware resource; one
  // slot was freed above whenever the table was full, so occupancy can
  // never exceed the configured MSHR count.
  TRIDENT_DCHECK(OutstandingFills.size() <= Config.NumMSHRs,
                 "MSHR heap holds %zu fills but only %u MSHRs exist",
                 OutstandingFills.size(), Config.NumMSHRs);
  TRIDENT_DCHECK(Ready >= IssueCycle,
                 "fill ready %llu before its issue cycle %llu",
                 (unsigned long long)Ready, (unsigned long long)IssueCycle);
  return Ready;
}

Cycle MemorySystem::fetchBeyondL1(Addr LineAddr, Cycle Now, AccessKind Kind) {
  if (Kind == AccessKind::HardwarePrefetch) {
    ++Stats.HardwarePrefetches;
    ++Fb.Issued;
  }
  // Injected latency fault (inactive on the zero-fault path: one
  // predictable branch, timing otherwise untouched).
  const bool Faulted = FaultActive && LineAddr <= FaultHi &&
                       LineAddr + Config.L1.LineSize - 1 >= FaultLo;
  // L2.
  if (Cache::LookupResult LR = L2.lookup(LineAddr)) {
    Cycle Ready =
        std::max<Cycle>(L2.fillReady(LR.Idx), Now + Config.L2.HitLatency);
    if (Faulted)
      Ready += FaultExtraL2;
    if (!isPrefetchKind(Kind))
      L2.clearUntouched(LR.Idx);
    return Ready;
  }
  // L3.
  if (Cache::LookupResult LR = L3.lookup(LineAddr)) {
    Cycle Ready =
        std::max<Cycle>(L3.fillReady(LR.Idx), Now + Config.L3.HitLatency);
    if (Faulted)
      Ready += FaultExtraL2;
    if (!isPrefetchKind(Kind))
      L3.clearUntouched(LR.Idx);
    bool Prefetched = isPrefetchKind(Kind);
    L2.insert(LineAddr, Ready, Prefetched);
    return Ready;
  }
  // Memory: serialize on the shared bus, then pay the full latency.
  ++Stats.MemoryFetches;
  Cycle BusStart = std::max(Now, BusNextFree);
  // Bus hand-off monotonicity: each transfer occupies the bus strictly
  // after the previous one; a rewind would let two fills overlap and
  // under-report memory contention.
  TRIDENT_DCHECK(BusStart + Config.BusOccupancy >= BusNextFree,
                 "bus schedule rewound (start %llu, next-free %llu)",
                 (unsigned long long)BusStart,
                 (unsigned long long)BusNextFree);
  BusNextFree = BusStart + Config.BusOccupancy;
  Cycle Ready = BusStart + Config.MemoryLatency;
  if (Faulted)
    Ready += FaultExtraMem;
  bool Prefetched = isPrefetchKind(Kind);
  L3.insert(LineAddr, Ready, Prefetched);
  L2.insert(LineAddr, Ready, Prefetched);
  return Ready;
}

AccessResult MemorySystem::access(Addr PC, Addr ByteAddr, AccessKind Kind,
                                  Cycle Now) {
#if TRIDENT_DCHECKS_ENABLED
  // Marks the window in which attachPrefetcher must not run (see there);
  // scoped so every early return clears it.
  struct AccessScope {
    bool &Flag;
    explicit AccessScope(bool &F) : Flag(F) { Flag = true; }
    ~AccessScope() { Flag = false; }
  } Scope(InAccess);
#endif
  const bool DemandLoad = Kind == AccessKind::DemandLoad;
  if (DemandLoad)
    ++Stats.DemandLoads;
  else if (Kind == AccessKind::SoftwarePrefetch)
    ++Stats.SoftwarePrefetches;
  else if (Kind == AccessKind::HardwarePrefetch)
    ++Stats.HardwarePrefetches;

  // Optional TLB: demand accesses that miss pay a page walk; software
  // prefetches to untranslated pages are dropped (non-faulting prefetch
  // semantics on real machines).
  if (Dtlb) {
    if (Kind == AccessKind::SoftwarePrefetch) {
      if (!Dtlb->present(ByteAddr)) {
        Dtlb->noteDroppedPrefetch();
        AccessResult Dropped;
        Dropped.ReadyCycle = Now + 1;
        Dropped.Level = 1;
        return Dropped;
      }
    } else if (Kind != AccessKind::HardwarePrefetch &&
               !Dtlb->access(ByteAddr)) {
      Now += Config.Tlb.WalkLatency; // serialize the walk before the access
    }
  }

  Addr LineAddr = L1.lineAddr(ByteAddr);
  AccessResult R;

  auto finishDemand = [&](AccessResult &Res) {
    if (!DemandLoad)
      return;
    // The per-outcome MemStats tally doubles as the uniform prefetcher
    // feedback channel: fully-hidden outcomes are Useful, in-flight ones
    // Late, uncovered ones DemandMisses (see HwPfFeedback).
    switch (Res.Outcome) {
    case LoadOutcome::HitNone:
      ++Stats.HitsNone;
      break;
    case LoadOutcome::HitPrefetched:
      ++Stats.HitsPrefetched;
      ++Fb.Useful;
      break;
    case LoadOutcome::PartialHit:
      ++Stats.PartialHits;
      ++Fb.Late;
      break;
    case LoadOutcome::Miss:
      ++Stats.Misses;
      ++Fb.DemandMisses;
      break;
    case LoadOutcome::MissDueToPrefetch:
      ++Stats.MissesDueToPrefetch;
      ++Fb.DemandMisses;
      break;
    }
    Cycle BestCase = Now + Config.L1.HitLatency;
    if (Res.ReadyCycle > BestCase)
      Stats.TotalExposedLatency += Res.ReadyCycle - BestCase;
  };

  // L1 lookup.
  Cache::LookupResult L1Hit = L1.lookup(LineAddr);
  const bool VictimOfPrefetch = L1Hit.VictimOfPrefetch;
  if (L1Hit) {
    const Cache::LineIdx Line = L1Hit.Idx;
    Cycle HitReady = Now + Config.L1.HitLatency;
    if (L1.fillReady(Line) <= HitReady) {
      // Data present.
      R.ReadyCycle = HitReady;
      R.Level = 1;
      R.Outcome = LoadOutcome::HitNone;
      if (DemandLoad && L1.untouched(Line)) {
        R.Outcome = LoadOutcome::HitPrefetched;
        L1.clearUntouched(Line);
      } else if (!isPrefetchKind(Kind)) {
        L1.clearUntouched(Line);
      }
      // Opt-in hit-side training (the complement of trainOnMiss); a plain
      // bool test for the default arsenal, which trains on misses only.
      if (PfTrainsOnAccess && !isPrefetchKind(Kind))
        Pf->trainOnAccess(PC, ByteAddr, Now);
    } else {
      // Fill still in flight: a partial hit when prefetch-initiated,
      // otherwise an ordinary merged demand miss.
      R.ReadyCycle = L1.fillReady(Line);
      R.Level = 1;
      R.Outcome =
          L1.prefetched(Line) ? LoadOutcome::PartialHit : LoadOutcome::Miss;
      if (!isPrefetchKind(Kind)) {
        L1.clearUntouched(Line);
        // A partial hit is still an L1 miss: it trains the hardware
        // prefetcher (otherwise software prefetching would starve the
        // stream buffers of training and silently disable them).
        if (Pf && (DemandLoad || Kind == AccessKind::DemandStore))
          Pf->trainOnMiss(PC, ByteAddr, Now, *this);
      }
    }
    finishDemand(R);
    return R;
  }

  // L1 miss. Probe the hardware prefetcher's buffers first (demand and
  // software-prefetch accesses both benefit; hardware fills skip the probe).
  if (Pf && Kind != AccessKind::HardwarePrefetch) {
    if (std::optional<Cycle> BufReady = Pf->probe(LineAddr, Now, *this)) {
      Cycle Ready =
          std::max(*BufReady, Now + Config.StreamBufferTransferLatency);
      L1.insert(LineAddr, Ready, /*Prefetched=*/true);
      if (DemandLoad) {
        Cache::LookupResult LR = L1.lookup(LineAddr);
        TRIDENT_DCHECK(LR.Idx != Cache::NoLine,
                       "line 0x%llx we just inserted must be present",
                       (unsigned long long)LineAddr);
        L1.clearUntouched(LR.Idx);
      }
      R.ReadyCycle = Ready;
      R.Level = 0;
      R.StreamBufferHit = true;
      ++Stats.StreamBufferHits;
      R.Outcome = Ready <= Now + Config.StreamBufferTransferLatency
                      ? LoadOutcome::HitPrefetched
                      : LoadOutcome::PartialHit;
      finishDemand(R);
      return R;
    }
  }

  // Full miss: fetch through L2/L3/memory, bounded by MSHR availability.
  Cycle IssueCycle = Now + Config.L1.HitLatency;
  Cycle Ready = fetchBeyondL1(LineAddr, IssueCycle, Kind);
  Ready = allocateMshr(IssueCycle, Ready);
  L1.insert(LineAddr, Ready, isPrefetchKind(Kind));
  if (PfTrainsOnFill)
    Pf->trainOnFill(LineAddr, Ready, Kind);
  if (!isPrefetchKind(Kind)) {
    Cache::LookupResult LR = L1.lookup(LineAddr);
    TRIDENT_DCHECK(LR.Idx != Cache::NoLine,
                   "line 0x%llx we just inserted must be present",
                   (unsigned long long)LineAddr);
    L1.clearUntouched(LR.Idx);
  }

  R.ReadyCycle = Ready;
  R.Level = Ready - Now <= Config.L2.HitLatency + 1   ? 2
            : Ready - Now <= Config.L3.HitLatency + 1 ? 3
                                                      : 4;
  R.Outcome = VictimOfPrefetch ? LoadOutcome::MissDueToPrefetch
                               : LoadOutcome::Miss;
  finishDemand(R);

  // Train the hardware prefetcher on misses. Software prefetches train it
  // too — they go through the ordinary miss path, so a software prefetch
  // stream re-primes a stream buffer ahead of itself and the two
  // prefetchers cooperate rather than starve each other (the paper's
  // observation that the combination minimizes software prefetching cost).
  if (Pf && Kind != AccessKind::HardwarePrefetch)
    Pf->trainOnMiss(PC, ByteAddr, Now, *this);

  // Causality: no access completes before it starts.
  TRIDENT_DCHECK(R.ReadyCycle >= Now,
                 "access to 0x%llx ready at %llu, before issue at %llu",
                 (unsigned long long)ByteAddr,
                 (unsigned long long)R.ReadyCycle, (unsigned long long)Now);
  return R;
}

void MemorySystem::injectLatencyFault(Addr Lo, Addr Hi, unsigned ExtraMem,
                                      unsigned ExtraL2) {
  FaultActive = true;
  FaultLo = Lo;
  FaultHi = Hi;
  FaultExtraMem = ExtraMem;
  FaultExtraL2 = ExtraL2;
}

void MemorySystem::clearLatencyFault() {
  FaultActive = false;
  FaultLo = 0;
  FaultHi = 0;
  FaultExtraMem = 0;
  FaultExtraL2 = 0;
}

uint64_t MemorySystem::evictRange(Addr Lo, Addr Hi) {
  return L1.invalidateRange(Lo, Hi) + L2.invalidateRange(Lo, Hi) +
         L3.invalidateRange(Lo, Hi);
}

void MemorySystem::resetCaches() {
  L1.reset();
  L2.reset();
  L3.reset();
  if (Dtlb)
    Dtlb->reset();
  OutstandingFills.clear();
  BusNextFree = 0;
}
