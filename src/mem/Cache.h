//===- Cache.h - One set-associative cache level ---------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timing-aware set-associative cache. Lines carry a fill-completion cycle
/// (so hits on in-flight fills become *partial* hits), a prefetched bit with
/// a first-touch marker (Figure 6's "Hit-prefetched"), and each set keeps a
/// tiny victim-tag buffer of lines displaced by prefetch fills so a later
/// miss on the same tag can be attributed to prefetch pollution ("Miss due
/// to prefetching").
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_CACHE_H
#define TRIDENT_MEM_CACHE_H

#include "mem/CacheTypes.h"

#include <vector>

namespace trident {

class Cache {
public:
  struct Line {
    bool Valid = false;
    uint64_t Tag = 0;
    /// Cycle the fill completes; a "present" line may still be in flight.
    Cycle FillReady = 0;
    /// Brought in by a (software or hardware) prefetch.
    bool Prefetched = false;
    /// Prefetched and not yet demand-touched.
    bool Untouched = false;
    /// LRU timestamp.
    uint64_t LastUse = 0;
  };

  /// Result of looking up one line.
  struct LookupResult {
    Line *L = nullptr;           ///< nullptr on miss.
    bool VictimOfPrefetch = false; ///< miss tag matched a prefetch victim.
  };

  explicit Cache(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }

  /// Looks up \p LineAddr (must be line-aligned). On hit, bumps LRU. On
  /// miss, reports whether this tag was recently displaced by a prefetch
  /// fill (and consumes that victim record).
  LookupResult lookup(Addr LineAddr);

  /// Looks up without changing LRU or victim-buffer state.
  const Line *peek(Addr LineAddr) const;

  /// Inserts \p LineAddr, evicting the LRU way. \p FillReady is when the
  /// data arrives; \p Prefetched tags prefetch-initiated fills. If the
  /// insertion displaces a valid demand-touched line *because of a
  /// prefetch*, the victim tag is remembered for pollution attribution.
  void insert(Addr LineAddr, Cycle FillReady, bool Prefetched);

  /// Invalidates every line (used between experiment phases).
  void reset();

  /// Invalidates every valid line whose byte range overlaps [\p Lo, \p Hi]
  /// (inclusive). Returns the number of lines evicted. Fault-injection
  /// hook (src/faults); victim-tag pollution state is untouched.
  uint64_t invalidateRange(Addr Lo, Addr Hi);

  /// Aligns \p A down to the containing line address.
  Addr lineAddr(Addr A) const { return A & ~static_cast<Addr>(Config.LineSize - 1); }

  uint64_t numSets() const { return Sets; }

private:
  struct SetState {
    std::vector<Line> Ways;
    /// Small FIFO of tags displaced by prefetch fills (pollution tracking).
    static constexpr unsigned VictimDepth = 4;
    uint64_t VictimTags[VictimDepth] = {};
    bool VictimValid[VictimDepth] = {};
    unsigned VictimNext = 0;

    void recordVictim(uint64_t Tag);
    bool consumeVictim(uint64_t Tag);
  };

  uint64_t setIndex(Addr LineAddr) const {
    return (LineAddr / Config.LineSize) & (Sets - 1);
  }
  uint64_t tagOf(Addr LineAddr) const { return LineAddr / Config.LineSize; }

  CacheConfig Config;
  uint64_t Sets;
  std::vector<SetState> SetArray;
  uint64_t UseClock = 0;
};

} // namespace trident

#endif // TRIDENT_MEM_CACHE_H
