//===- Cache.h - One set-associative cache level ---------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timing-aware set-associative cache. Lines carry a fill-completion cycle
/// (so hits on in-flight fills become *partial* hits), a prefetched bit with
/// a first-touch marker (Figure 6's "Hit-prefetched"), and each set keeps a
/// tiny victim-tag buffer of lines displaced by prefetch fills so a later
/// miss on the same tag can be attributed to prefetch pollution ("Miss due
/// to prefetching").
///
/// Storage is a set-major structure-of-arrays: tags, fill cycles, LRU
/// stamps, and the per-line flag bits each live in one contiguous array
/// indexed by set*Assoc+way, so the per-access way scan walks packed tags
/// instead of striding over fat Line records. Callers address lines through
/// opaque indices (\c LineIdx) plus accessors rather than pointers.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_CACHE_H
#define TRIDENT_MEM_CACHE_H

#include "mem/CacheTypes.h"

#include <cstdint>
#include <vector>

namespace trident {

class Cache {
public:
  /// Opaque dense line handle (set * Assoc + way).
  using LineIdx = uint32_t;
  static constexpr LineIdx NoLine = ~static_cast<LineIdx>(0);

  /// Result of looking up one line.
  struct LookupResult {
    LineIdx Idx = NoLine;          ///< NoLine on miss.
    bool VictimOfPrefetch = false; ///< miss tag matched a prefetch victim.
    explicit operator bool() const { return Idx != NoLine; }
  };

  explicit Cache(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }

  /// Looks up \p LineAddr (must be line-aligned). On hit, bumps LRU. On
  /// miss, reports whether this tag was recently displaced by a prefetch
  /// fill (and consumes that victim record).
  LookupResult lookup(Addr LineAddr);

  /// Looks up without changing LRU or victim-buffer state. NoLine on miss.
  LineIdx peek(Addr LineAddr) const;

  /// Inserts \p LineAddr, evicting the LRU way. \p FillReady is when the
  /// data arrives; \p Prefetched tags prefetch-initiated fills. If the
  /// insertion displaces a valid demand-touched line *because of a
  /// prefetch*, the victim tag is remembered for pollution attribution.
  void insert(Addr LineAddr, Cycle FillReady, bool Prefetched);

  /// Per-line state accessors for a handle returned by lookup()/peek().
  Cycle fillReady(LineIdx I) const { return FillReadyArr[I]; }
  bool prefetched(LineIdx I) const { return (FlagsArr[I] & kPrefetched) != 0; }
  bool untouched(LineIdx I) const { return (FlagsArr[I] & kUntouched) != 0; }
  void clearUntouched(LineIdx I) {
    FlagsArr[I] &= static_cast<uint8_t>(~kUntouched);
  }

  /// Invalidates every line (used between experiment phases).
  void reset();

  /// Invalidates every valid line whose byte range overlaps [\p Lo, \p Hi]
  /// (inclusive). Returns the number of lines evicted. Fault-injection
  /// hook (src/faults); victim-tag pollution state is untouched.
  uint64_t invalidateRange(Addr Lo, Addr Hi);

  /// Aligns \p A down to the containing line address.
  Addr lineAddr(Addr A) const { return A & ~static_cast<Addr>(Config.LineSize - 1); }

  uint64_t numSets() const { return Sets; }

private:
  /// Tag value marking an invalid line. Validity lives in the tag array
  /// itself so the per-access way scan touches one array instead of two;
  /// the sentinel is unreachable for real lines (it would need a byte
  /// address at the very top of the 64-bit space).
  static constexpr uint64_t kNoTag = ~static_cast<uint64_t>(0);

  /// Per-line flag bits (packed into FlagsArr).
  static constexpr uint8_t kPrefetched = 1u << 1;
  static constexpr uint8_t kUntouched = 1u << 2;

  /// Small per-set FIFO of tags displaced by prefetch fills (pollution
  /// tracking); stored as flat arrays parallel to the set index.
  static constexpr unsigned VictimDepth = 4;

  void recordVictim(uint64_t Set, uint64_t Tag);
  bool consumeVictim(uint64_t Set, uint64_t Tag);

  // LineSize is a checked power of two: shift instead of dividing (the
  // compiler cannot strength-reduce a division by a runtime config field,
  // and setIndex/tagOf run twice per access).
  uint64_t setIndex(Addr LineAddr) const {
    return (LineAddr >> LineShift) & (Sets - 1);
  }
  uint64_t tagOf(Addr LineAddr) const { return LineAddr >> LineShift; }

  CacheConfig Config;
  uint64_t Sets;
  unsigned LineShift;
  // Set-major SoA line state: index = set * Assoc + way.
  std::vector<uint64_t> TagsArr;
  std::vector<Cycle> FillReadyArr;
  std::vector<uint64_t> LastUseArr;
  std::vector<uint8_t> FlagsArr;
  // Victim-tag FIFOs: index = set * VictimDepth + slot.
  std::vector<uint64_t> VictimTags;
  std::vector<uint8_t> VictimValid;
  std::vector<uint8_t> VictimNext; ///< per-set FIFO cursor.
  uint64_t UseClock = 0;
};

} // namespace trident

#endif // TRIDENT_MEM_CACHE_H
