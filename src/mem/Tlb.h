//===- Tlb.h - Data TLB model ----------------------------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An optional data-TLB model (off in the Table 1 baseline, which —
/// like the paper — does not discuss translation). When enabled it adds
/// two effects real machines have and the baseline model omits:
///
///  * demand accesses that miss the TLB pay a page-walk latency;
///  * software prefetches that miss the TLB are *dropped* (the common
///    non-faulting prefetch semantics), and the hardware stream buffers
///    stop at page boundaries — which is precisely what makes
///    large-stride streams (galgel-like column walks) hard for
///    hardware prefetching on real machines.
///
/// Exposed as `MemSystemConfig::Tlb` and exercised by the
/// ablation_adaptivity bench and the mem tests.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_TLB_H
#define TRIDENT_MEM_TLB_H

#include "isa/Instruction.h"
#include "support/Types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace trident {

class StatRegistry;

struct TlbConfig {
  bool Enable = false;
  unsigned NumEntries = 64;
  unsigned Assoc = 4;
  unsigned PageBits = 12; ///< 4KB pages.
  unsigned WalkLatency = 30;
};

struct TlbStats {
  uint64_t Lookups = 0;
  uint64_t Misses = 0;
  uint64_t PrefetchesDropped = 0;

  /// Registers every field under \p Prefix (e.g. "tlb.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

/// Set-associative TLB with LRU replacement. Translation itself is an
/// identity map (the simulator is physically addressed); only the timing
/// and the prefetch-drop policy matter.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config);

  /// Looks up the page of \p ByteAddr; on a miss, installs the entry.
  /// Returns true on a hit (no walk needed).
  bool access(Addr ByteAddr);

  /// Probe without side effects.
  bool present(Addr ByteAddr) const;

  const TlbConfig &config() const { return Config; }
  const TlbStats &stats() const { return Stats; }
  void noteDroppedPrefetch() { ++Stats.PrefetchesDropped; }

  void reset();

private:
  struct Entry {
    bool Valid = false;
    uint64_t Vpn = 0;
    uint64_t LastUse = 0;
  };

  uint64_t vpnOf(Addr A) const { return A >> Config.PageBits; }
  size_t setIndex(uint64_t Vpn) const { return Vpn & (NumSets - 1); }

  TlbConfig Config;
  size_t NumSets;
  std::vector<Entry> Entries;
  TlbStats Stats;
  uint64_t UseClock = 0;
};

} // namespace trident

#endif // TRIDENT_MEM_TLB_H
