//===- CacheTypes.h - Shared memory-system types ---------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration records and access descriptors shared across the memory
/// subsystem. The load-outcome classification mirrors Figure 6 of the paper:
/// hits, first-touch hits on prefetched lines, partial hits on in-flight
/// prefetches, ordinary misses, and misses caused by prefetch displacement.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_CACHETYPES_H
#define TRIDENT_MEM_CACHETYPES_H

#include "isa/Instruction.h"
#include "support/Types.h"

#include <cstdint>
#include <string>

namespace trident {

/// Geometry and latency of one cache level.
struct CacheConfig {
  std::string Name = "cache";
  uint64_t SizeBytes = 64 * 1024;
  unsigned Assoc = 2;
  unsigned LineSize = 64;
  unsigned HitLatency = 3;

  uint64_t numSets() const { return SizeBytes / (uint64_t(Assoc) * LineSize); }
};

/// Who initiated a memory access; determines training, stat accounting, and
/// whether a register is waiting on the result.
enum class AccessKind : uint8_t {
  DemandLoad,
  DemandStore,
  SoftwarePrefetch, ///< Optimizer-inserted Prefetch instruction.
  HardwarePrefetch, ///< Stream-buffer initiated fill.
};

inline bool isPrefetchKind(AccessKind K) {
  return K == AccessKind::SoftwarePrefetch || K == AccessKind::HardwarePrefetch;
}

/// Figure-6 style classification of one demand load.
enum class LoadOutcome : uint8_t {
  HitNone,          ///< Plain cache hit (incl. later touches of pf lines).
  HitPrefetched,    ///< First demand touch of a line a prefetch brought in.
  PartialHit,       ///< Data still in flight from a prefetch; partly hidden.
  Miss,             ///< Ordinary miss.
  MissDueToPrefetch ///< Missed because a prefetch displaced the line.
};

/// Result of a timed memory access.
struct AccessResult {
  /// Cycle at which the loaded data is available to dependents.
  Cycle ReadyCycle = 0;
  /// Level that served the access: 1..3 = cache level, 4 = memory,
  /// 0 = stream buffer.
  unsigned Level = 1;
  LoadOutcome Outcome = LoadOutcome::HitNone;
  bool StreamBufferHit = false;

  unsigned latency(Cycle Now) const {
    return static_cast<unsigned>(ReadyCycle - Now);
  }
};

} // namespace trident

#endif // TRIDENT_MEM_CACHETYPES_H
