//===- CacheTypes.h - Shared memory-system types ---------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration records and access descriptors shared across the memory
/// subsystem. The load-outcome classification mirrors Figure 6 of the paper:
/// hits, first-touch hits on prefetched lines, partial hits on in-flight
/// prefetches, ordinary misses, and misses caused by prefetch displacement.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_CACHETYPES_H
#define TRIDENT_MEM_CACHETYPES_H

#include "isa/Instruction.h"
#include "support/Types.h"

#include <cstdint>
#include <string>

namespace trident {

/// Geometry and latency of one cache level.
struct CacheConfig {
  std::string Name = "cache";
  uint64_t SizeBytes = 64 * 1024;
  unsigned Assoc = 2;
  unsigned LineSize = 64;
  unsigned HitLatency = 3;

  uint64_t numSets() const { return SizeBytes / (uint64_t(Assoc) * LineSize); }
};

/// Who initiated a memory access; determines training, stat accounting, and
/// whether a register is waiting on the result.
enum class AccessKind : uint8_t {
  DemandLoad,
  DemandStore,
  SoftwarePrefetch, ///< Optimizer-inserted Prefetch instruction.
  HardwarePrefetch, ///< Stream-buffer initiated fill.
};

inline bool isPrefetchKind(AccessKind K) {
  return K == AccessKind::SoftwarePrefetch || K == AccessKind::HardwarePrefetch;
}

/// Figure-6 style classification of one demand load.
enum class LoadOutcome : uint8_t {
  HitNone,          ///< Plain cache hit (incl. later touches of pf lines).
  HitPrefetched,    ///< First demand touch of a line a prefetch brought in.
  PartialHit,       ///< Data still in flight from a prefetch; partly hidden.
  Miss,             ///< Ordinary miss.
  MissDueToPrefetch ///< Missed because a prefetch displaced the line.
};

/// Aggregate effectiveness counters for the attached hardware prefetcher,
/// maintained uniformly by MemorySystem (not by the prefetcher itself) so
/// every arsenal member is measured with identical semantics:
///
///  * Issued — hardware-prefetch line fills sent down the L2/L3/memory path;
///  * Useful — demand accesses whose data a prefetch had fully hidden
///    (first-touch hits on prefetched lines, timely buffer hits);
///  * Late — demand accesses that found their prefetch still in flight
///    (partially hidden latency);
///  * DemandMisses — demand L1 misses no prefetch covered at all.
///
/// accuracy() and coverage() are the standard derived metrics. The struct
/// is also the payload of EventKind::HwPfFeedback (copied by value).
struct HwPfFeedback {
  uint64_t Issued = 0;
  uint64_t Useful = 0;
  uint64_t Late = 0;
  uint64_t DemandMisses = 0;

  /// Fraction of issued prefetches a demand access consumed (fully or
  /// partially). Can exceed 1 transiently if a line is re-touched after
  /// re-prefetch; in practice bounded by issue accounting.
  double accuracy() const {
    return Issued == 0 ? 0.0
                       : static_cast<double>(Useful + Late) /
                             static_cast<double>(Issued);
  }

  /// Fraction of would-be demand misses a prefetch covered.
  double coverage() const {
    uint64_t Covered = Useful + Late;
    uint64_t Total = Covered + DemandMisses;
    return Total == 0 ? 0.0
                      : static_cast<double>(Covered) /
                            static_cast<double>(Total);
  }
};

/// Result of a timed memory access.
struct AccessResult {
  /// Cycle at which the loaded data is available to dependents.
  Cycle ReadyCycle = 0;
  /// Level that served the access: 1..3 = cache level, 4 = memory,
  /// 0 = stream buffer.
  unsigned Level = 1;
  LoadOutcome Outcome = LoadOutcome::HitNone;
  bool StreamBufferHit = false;

  unsigned latency(Cycle Now) const {
    return static_cast<unsigned>(ReadyCycle - Now);
  }
};

} // namespace trident

#endif // TRIDENT_MEM_CACHETYPES_H
