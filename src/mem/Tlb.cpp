//===- Tlb.cpp ------------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "mem/Tlb.h"
#include "support/StatRegistry.h"
#include "support/Check.h"


using namespace trident;

void TlbStats::registerInto(StatRegistry &R, const std::string &Prefix) const {
  R.setCounter(Prefix + "lookups", Lookups);
  R.setCounter(Prefix + "misses", Misses);
  R.setCounter(Prefix + "prefetches_dropped", PrefetchesDropped);
}

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

Tlb::Tlb(const TlbConfig &Cfg)
    : Config(Cfg), NumSets(Config.NumEntries / Config.Assoc) {
  TRIDENT_CHECK(Config.Assoc >= 1 && Config.NumEntries % Config.Assoc == 0,
                "%u entries must divide evenly into %u-way sets",
                Config.NumEntries, Config.Assoc);
  TRIDENT_CHECK(isPowerOfTwo(NumSets), "set count %zu must be a power of two",
                NumSets);
  Entries.resize(Config.NumEntries);
}

bool Tlb::access(Addr ByteAddr) {
  ++Stats.Lookups;
  uint64_t Vpn = vpnOf(ByteAddr);
  size_t Base = setIndex(Vpn) * Config.Assoc;
  Entry *Victim = &Entries[Base];
  for (unsigned W = 0; W < Config.Assoc; ++W) {
    Entry &E = Entries[Base + W];
    if (E.Valid && E.Vpn == Vpn) {
      E.LastUse = ++UseClock;
      return true;
    }
    if (!E.Valid)
      Victim = &E;
    else if (Victim->Valid && E.LastUse < Victim->LastUse)
      Victim = &E;
  }
  ++Stats.Misses;
  Victim->Valid = true;
  Victim->Vpn = Vpn;
  Victim->LastUse = ++UseClock;
  return false;
}

bool Tlb::present(Addr ByteAddr) const {
  uint64_t Vpn = vpnOf(ByteAddr);
  size_t Base = setIndex(Vpn) * Config.Assoc;
  for (unsigned W = 0; W < Config.Assoc; ++W) {
    const Entry &E = Entries[Base + W];
    if (E.Valid && E.Vpn == Vpn)
      return true;
  }
  return false;
}

void Tlb::reset() {
  for (Entry &E : Entries)
    E = Entry();
  UseClock = 0;
  Stats = TlbStats();
}
