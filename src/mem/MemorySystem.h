//===- MemorySystem.h - Timed 3-level hierarchy + prefetcher ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timed memory subsystem of the baseline processor (Table 1):
/// L1 64KB/2-way/3cy, L2 512KB/8-way/11cy, L3 4MB/16-way/35cy, 350-cycle
/// memory, a shared memory bus with per-line occupancy, and MSHRs bounding
/// outstanding misses. A pluggable hardware prefetcher (the stream-buffer
/// unit from src/hwpf) is probed on L1 misses and trained on demand misses,
/// mirroring the paper's baseline "hardware stream buffer prefetching
/// guided by a stride predictor".
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_MEMORYSYSTEM_H
#define TRIDENT_MEM_MEMORYSYSTEM_H

#include "mem/Cache.h"
#include "mem/CacheTypes.h"
#include "mem/Tlb.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace trident {

class StatRegistry;

/// Interface the hardware prefetcher uses to fetch lines through the L2/L3/
/// memory path with correct timing and bus occupancy.
class MemoryBackend {
public:
  virtual ~MemoryBackend();

  /// Fetches \p LineAddr from beyond the L1 (checking L2, then L3, then
  /// memory; filling the levels it passes) and returns the cycle the data
  /// is ready.
  virtual Cycle fetchBeyondL1(Addr LineAddr, Cycle Now, AccessKind Kind) = 0;

  /// Line size of the hierarchy in bytes.
  virtual unsigned lineSize() const = 0;
};

/// Generic named-counter snapshot of one hardware prefetcher. Every
/// arsenal member reports its internals through this one shape so
/// SimResult and the stat registry stay prefetcher-agnostic: the unit
/// picks its own counter names, the sim layer just prefixes and exports
/// them. Counters are registered via registerInto (sorted by the registry
/// itself), so insertion order here is not load-bearing.
struct HwPfStats {
  /// The reporting unit's name() (empty = no prefetcher attached).
  std::string Prefetcher;
  std::vector<std::pair<std::string, uint64_t>> Counters;

  /// Registers every counter under \p Prefix (e.g. "hwpf.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;

  /// Value of counter \p Name, or 0 when the unit does not report it.
  uint64_t get(const std::string &Name) const;
};

/// Abstract hardware prefetcher — the arsenal contract (see
/// src/hwpf/PrefetcherRegistry.h for the name -> factory registry).
///
/// Training hooks, from hottest to coldest:
///  * trainOnAccess — every demand access that HIT in the L1 with data
///    present. Opt-in via wantsAccessTraining() so the default arsenal
///    pays nothing on the hit path.
///  * trainOnMiss — every demand access that missed in the L1 (including
///    partial hits on in-flight fills), after the probe failed or was
///    skipped. The main allocation/training point; the prefetcher may
///    issue fills via \p BE.
///  * trainOnFill — a demand (or software-prefetch) miss allocated an L1
///    line fill. Opt-in via wantsFillTraining(); lets timing-aware units
///    observe when lines actually arrive.
///
/// Issue path: probe() is consulted on every L1 miss before the fill goes
/// to L2. Feedback: MemorySystem maintains HwPfFeedback uniformly for any
/// attached unit; per-unit internals are reported via snapshotStats().
// trident-analyze: not-a-hw-table(abstract interface; concrete units
// declare their own bounded tables)
class HwPrefetcher {
public:
  virtual ~HwPrefetcher();

  /// Called for every demand access that missed in the L1, after the probe
  /// failed; the prefetcher may allocate streams and issue fills via \p BE.
  virtual void trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                           MemoryBackend &BE) = 0;

  /// Asks whether the prefetcher holds (or is fetching) \p LineAddr. On a
  /// hit the prefetcher consumes the entry, advances the stream (issuing
  /// further fills via \p BE), and returns the cycle the line's data is
  /// available.
  virtual std::optional<Cycle> probe(Addr LineAddr, Cycle Now,
                                     MemoryBackend &BE) = 0;

  /// Opt-in for trainOnAccess. Sampled once at attach time — must be a
  /// constant property of the unit, not a mode that changes mid-run.
  virtual bool wantsAccessTraining() const { return false; }

  /// Demand access that hit in the L1 with data present (the complement
  /// of trainOnMiss). Only invoked when wantsAccessTraining().
  virtual void trainOnAccess(Addr PC, Addr ByteAddr, Cycle Now);

  /// Opt-in for trainOnFill. Sampled once at attach time.
  virtual bool wantsFillTraining() const { return false; }

  /// A demand or software-prefetch miss allocated an L1 fill for
  /// \p LineAddr completing at \p Ready. Only invoked when
  /// wantsFillTraining().
  virtual void trainOnFill(Addr LineAddr, Cycle Ready, AccessKind Kind);

  /// Named-counter snapshot of the unit's internals. Default: name only,
  /// no counters.
  virtual HwPfStats snapshotStats() const;

  virtual std::string name() const = 0;
};

/// Aggregate configuration of the memory subsystem.
struct MemSystemConfig {
  CacheConfig L1{"L1", 64 * 1024, 2, 64, 3};
  CacheConfig L2{"L2", 512 * 1024, 8, 64, 11};
  CacheConfig L3{"L3", 4 * 1024 * 1024, 16, 64, 35};
  unsigned MemoryLatency = 350;
  /// Cycles one line transfer occupies the memory bus (bandwidth model).
  unsigned BusOccupancy = 6;
  /// Maximum outstanding line fills (demand + prefetch combined).
  unsigned NumMSHRs = 32;
  /// Latency to move a line from a stream buffer into the L1.
  unsigned StreamBufferTransferLatency = 11;
  /// Optional data-TLB model (off in the Table 1 baseline).
  TlbConfig Tlb;

  /// The paper's Table 1 baseline.
  static MemSystemConfig baseline() { return MemSystemConfig(); }
};

/// Demand/prefetch traffic statistics (feeds Figures 2, 6, 9).
struct MemStats {
  uint64_t DemandLoads = 0;
  uint64_t HitsNone = 0;
  uint64_t HitsPrefetched = 0;
  uint64_t PartialHits = 0;
  uint64_t Misses = 0;
  uint64_t MissesDueToPrefetch = 0;
  uint64_t StreamBufferHits = 0;
  uint64_t SoftwarePrefetches = 0;
  uint64_t HardwarePrefetches = 0;
  uint64_t MemoryFetches = 0;
  /// Sum over demand loads of (ReadyCycle - issue cycle) beyond the L1 hit
  /// latency; the aggregate exposed-latency metric.
  uint64_t TotalExposedLatency = 0;

  uint64_t demandL1Misses() const {
    return PartialHits + Misses + MissesDueToPrefetch;
  }

  /// Registers every field under \p Prefix (e.g. "mem.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

/// The full timed memory system.
class MemorySystem final : public MemoryBackend {
public:
  explicit MemorySystem(const MemSystemConfig &Config);

  /// Installs (or clears) the hardware prefetcher. Ownership transfers.
  /// Safe mid-run between accesses: MSHR/bus state and the HwPfFeedback
  /// referee counters are owned here and survive the swap; only the
  /// outgoing unit's private buffers are dropped. Must not be called from
  /// inside access() (checked).
  void attachPrefetcher(std::unique_ptr<HwPrefetcher> Pf);
  HwPrefetcher *prefetcher() { return Pf.get(); }

  /// Performs one timed access. \p PC is the accessing instruction's
  /// address (used for prefetcher training), \p ByteAddr the data address.
  AccessResult access(Addr PC, Addr ByteAddr, AccessKind Kind, Cycle Now);

  // MemoryBackend interface.
  Cycle fetchBeyondL1(Addr LineAddr, Cycle Now, AccessKind Kind) override;
  unsigned lineSize() const override { return Config.L1.LineSize; }

  const MemSystemConfig &config() const { return Config; }
  const MemStats &stats() const { return Stats; }
  /// Uniform prefetcher-effectiveness counters (all zero when no
  /// prefetcher is attached; see HwPfFeedback).
  const HwPfFeedback &feedback() const { return Fb; }
  void clearStats() {
    Stats = MemStats();
    Fb = HwPfFeedback();
  }

  /// Invalidates all cache state (not the stats).
  void resetCaches();

  // Fault-injection hooks (src/faults). Guarded by one flag so the
  // zero-fault timing path is bit-identical to a system without them. ----

  /// Adds \p ExtraMem cycles to memory fetches and \p ExtraL2 cycles to
  /// L2/L3 hits for line addresses overlapping [\p Lo, \p Hi] (inclusive
  /// byte range). A second call replaces the active fault.
  void injectLatencyFault(Addr Lo, Addr Hi, unsigned ExtraMem,
                          unsigned ExtraL2);
  void clearLatencyFault();
  bool latencyFaultActive() const { return FaultActive; }

  /// Invalidates every line overlapping [\p Lo, \p Hi] in all three
  /// levels; returns the number of lines evicted.
  uint64_t evictRange(Addr Lo, Addr Hi);

  Cache &l1() { return L1; }
  Cache &l2() { return L2; }
  Cache &l3() { return L3; }
  /// The data TLB, or nullptr when disabled.
  const Tlb *dtlb() const { return Dtlb.get(); }

private:
  /// Delays \p IssueCycle until an MSHR is free and registers the fill.
  Cycle allocateMshr(Cycle IssueCycle, Cycle Ready);

  MemSystemConfig Config;
  Cache L1;
  Cache L2;
  Cache L3;
  std::unique_ptr<Tlb> Dtlb;
  std::unique_ptr<HwPrefetcher> Pf;
  /// wants*Training() sampled once at attach time so the hot paths pay a
  /// plain bool test instead of a virtual call per access.
  bool PfTrainsOnAccess = false;
  bool PfTrainsOnFill = false;
  /// True while access() is on the stack; attachPrefetcher checks it so a
  /// mid-run swap can never destroy the unit currently being trained
  /// (checked builds only — no hot-path cost in release).
  bool InAccess = false;
  MemStats Stats;
  HwPfFeedback Fb;

  /// Injected latency fault (see injectLatencyFault); inactive by default
  /// so the hot path pays one predictable-not-taken branch.
  bool FaultActive = false;
  Addr FaultLo = 0;
  Addr FaultHi = 0;
  unsigned FaultExtraMem = 0;
  unsigned FaultExtraL2 = 0;

  /// Cycle the memory bus frees up.
  Cycle BusNextFree = 0;
  /// Ready cycles of outstanding fills (bounded by NumMSHRs), kept as a
  /// binary min-heap so the hot path retires completed fills and finds
  /// the earliest completion in O(log MSHRs) instead of scanning.
  std::vector<Cycle> OutstandingFills;
};

} // namespace trident

#endif // TRIDENT_MEM_MEMORYSYSTEM_H
