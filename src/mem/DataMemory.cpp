//===- DataMemory.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "mem/DataMemory.h"

using namespace trident;

static size_t hashKey(uint64_t Key) {
  Key *= 0x9E3779B97F4A7C15ull; // Fibonacci hashing; VPNs are near-sequential
  return static_cast<size_t>(Key ^ (Key >> 29));
}

DataMemory::DataMemory() {
  Keys.assign(1024, 0);
  Slots.assign(1024, nullptr);
}

const DataMemory::Page *DataMemory::findPage(Addr A) const {
  const uint64_t Key = (A >> PageBits) + 1;
  const size_t Mask = Keys.size() - 1;
  for (size_t I = hashKey(Key) & Mask;; I = (I + 1) & Mask) {
    if (Keys[I] == Key)
      return Slots[I];
    if (Keys[I] == 0)
      return nullptr;
  }
}

uint64_t DataMemory::read64(Addr A) const {
  // Fast path: the access stays within one page.
  size_t Off = A & (PageSize - 1);
  if (Off + 8 <= PageSize) {
    const Page *P = findPage(A);
    if (!P)
      return 0;
    uint64_t V;
    std::memcpy(&V, P->data() + Off, 8);
    return V;
  }
  // Page-straddling access: assemble byte by byte.
  uint64_t V = 0;
  for (unsigned I = 0; I < 8; ++I) {
    const Page *P = findPage(A + I);
    uint8_t B = P ? (*P)[(A + I) & (PageSize - 1)] : 0;
    V |= static_cast<uint64_t>(B) << (8 * I);
  }
  return V;
}

void DataMemory::write64(Addr A, uint64_t Value) {
  size_t Off = A & (PageSize - 1);
  if (Off + 8 <= PageSize) {
    Page &P = getOrCreatePage(A);
    std::memcpy(P.data() + Off, &Value, 8);
    return;
  }
  for (unsigned I = 0; I < 8; ++I) {
    Page &P = getOrCreatePage(A + I);
    P[(A + I) & (PageSize - 1)] = static_cast<uint8_t>(Value >> (8 * I));
  }
}

DataMemory::Page *DataMemory::allocPage() {
  if (SlabUsed == SlabPages) {
    // make_unique value-initializes the slab, so every page reads as zero.
    Slabs.push_back(std::make_unique<Page[]>(SlabPages));
    SlabUsed = 0;
  }
  return &Slabs.back()[SlabUsed++];
}

void DataMemory::grow() {
  std::vector<uint64_t> OldKeys(Keys.size() * 2, 0);
  std::vector<Page *> OldSlots(Slots.size() * 2, nullptr);
  OldKeys.swap(Keys);
  OldSlots.swap(Slots);
  const size_t Mask = Keys.size() - 1;
  for (size_t From = 0; From < OldKeys.size(); ++From) {
    if (OldKeys[From] == 0)
      continue;
    size_t I = hashKey(OldKeys[From]) & Mask;
    while (Keys[I] != 0)
      I = (I + 1) & Mask;
    Keys[I] = OldKeys[From];
    Slots[I] = OldSlots[From];
  }
}

DataMemory::Page &DataMemory::getOrCreatePage(Addr A) {
  const uint64_t Key = (A >> PageBits) + 1;
  size_t Mask = Keys.size() - 1;
  size_t I = hashKey(Key) & Mask;
  while (Keys[I] != 0) {
    if (Keys[I] == Key)
      return *Slots[I];
    I = (I + 1) & Mask;
  }
  // Keep the load factor under 3/4 so probe chains stay short.
  if ((NumPages + 1) * 4 > Keys.size() * 3) {
    grow();
    Mask = Keys.size() - 1;
    I = hashKey(Key) & Mask;
    while (Keys[I] != 0)
      I = (I + 1) & Mask;
  }
  Page *P = allocPage();
  Keys[I] = Key;
  Slots[I] = P;
  ++NumPages;
  return *P;
}
