//===- DataMemory.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "mem/DataMemory.h"

using namespace trident;

uint64_t DataMemory::read64(Addr A) const {
  // Fast path: the access stays within one page.
  size_t Off = A & (PageSize - 1);
  if (Off + 8 <= PageSize) {
    const Page *P = findPage(A);
    if (!P)
      return 0;
    uint64_t V;
    std::memcpy(&V, P->data() + Off, 8);
    return V;
  }
  // Page-straddling access: assemble byte by byte.
  uint64_t V = 0;
  for (unsigned I = 0; I < 8; ++I) {
    const Page *P = findPage(A + I);
    uint8_t B = P ? (*P)[(A + I) & (PageSize - 1)] : 0;
    V |= static_cast<uint64_t>(B) << (8 * I);
  }
  return V;
}

void DataMemory::write64(Addr A, uint64_t Value) {
  size_t Off = A & (PageSize - 1);
  if (Off + 8 <= PageSize) {
    Page &P = getOrCreatePage(A);
    std::memcpy(P.data() + Off, &Value, 8);
    return;
  }
  for (unsigned I = 0; I < 8; ++I) {
    Page &P = getOrCreatePage(A + I);
    P[(A + I) & (PageSize - 1)] = static_cast<uint8_t>(Value >> (8 * I));
  }
}

DataMemory::Page &DataMemory::getOrCreatePage(Addr A) {
  auto &Slot = Pages[A >> PageBits];
  if (!Slot) {
    Slot = std::make_unique<Page>();
    Slot->fill(0);
  }
  return *Slot;
}
