//===- DataMemory.h - Sparse functional data memory ------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-addressable sparse memory backing the functional execution of
/// workloads. Pages materialize zero-filled on first touch, which also gives
/// non-faulting loads (Section 3.4.3) their "never traps" semantics for
/// free: any address reads as zero until written.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_DATAMEMORY_H
#define TRIDENT_MEM_DATAMEMORY_H

#include "isa/Instruction.h"

#include <array>
#include <cstring>
#include <memory>
#include <vector>

namespace trident {

class DataMemory {
public:
  static constexpr size_t PageBits = 12;
  static constexpr size_t PageSize = size_t(1) << PageBits;

  DataMemory();

  /// Reads a 64-bit little-endian value; unwritten memory reads as zero.
  uint64_t read64(Addr A) const;

  /// Writes a 64-bit little-endian value, materializing pages as needed.
  void write64(Addr A, uint64_t Value);

  /// Number of materialized 4KB pages (footprint introspection for tests).
  size_t numPages() const { return NumPages; }

private:
  using Page = std::array<uint8_t, PageSize>;
  /// Pages per allocation slab (1 MB of data memory).
  static constexpr size_t SlabPages = 256;

  const Page *findPage(Addr A) const;
  Page &getOrCreatePage(Addr A);
  Page *allocPage();
  void grow();

  // Open-addressing VPN -> page table with slab-allocated page storage:
  // a streaming workload materializes pages steadily, and per-page
  // unordered_map nodes would make the cycle loop allocate. The flat
  // table probes linearly over packed keys; the allocator is touched
  // only on a table doubling or a fresh 1 MB slab (both amortized far
  // below once per measurement window).
  std::vector<uint64_t> Keys; ///< VPN + 1; 0 marks an empty slot
  std::vector<Page *> Slots;
  size_t NumPages = 0;
  std::vector<std::unique_ptr<Page[]>> Slabs;
  size_t SlabUsed = SlabPages; ///< forces a slab on first materialization
};

} // namespace trident

#endif // TRIDENT_MEM_DATAMEMORY_H
