//===- DataMemory.h - Sparse functional data memory ------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-addressable sparse memory backing the functional execution of
/// workloads. Pages materialize zero-filled on first touch, which also gives
/// non-faulting loads (Section 3.4.3) their "never traps" semantics for
/// free: any address reads as zero until written.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_MEM_DATAMEMORY_H
#define TRIDENT_MEM_DATAMEMORY_H

#include "isa/Instruction.h"

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace trident {

class DataMemory {
public:
  static constexpr size_t PageBits = 12;
  static constexpr size_t PageSize = size_t(1) << PageBits;

  /// Reads a 64-bit little-endian value; unwritten memory reads as zero.
  uint64_t read64(Addr A) const;

  /// Writes a 64-bit little-endian value, materializing pages as needed.
  void write64(Addr A, uint64_t Value);

  /// Number of materialized 4KB pages (footprint introspection for tests).
  size_t numPages() const { return Pages.size(); }

private:
  using Page = std::array<uint8_t, PageSize>;

  const Page *findPage(Addr A) const {
    auto It = Pages.find(A >> PageBits);
    return It == Pages.end() ? nullptr : It->second.get();
  }

  Page &getOrCreatePage(Addr A);

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
};

} // namespace trident

#endif // TRIDENT_MEM_DATAMEMORY_H
