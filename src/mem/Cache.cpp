//===- Cache.cpp ----------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// trident-lint: hot-path (per-access lookup/insert; no O(n) erase scans)
//
//===----------------------------------------------------------------------===//

#include "mem/Cache.h"
#include "support/Check.h"

using namespace trident;

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

Cache::Cache(const CacheConfig &Cfg) : Config(Cfg), Sets(Config.numSets()) {
  TRIDENT_CHECK(isPowerOfTwo(Sets),
                "%s set count %llu must be a power of two",
                Config.Name.c_str(), (unsigned long long)Sets);
  TRIDENT_CHECK(isPowerOfTwo(Config.LineSize),
                "%s line size %u must be a power of two", Config.Name.c_str(),
                Config.LineSize);
  SetArray.resize(Sets);
  for (auto &S : SetArray)
    S.Ways.resize(Config.Assoc);
}

void Cache::SetState::recordVictim(uint64_t Tag) {
  VictimTags[VictimNext] = Tag;
  VictimValid[VictimNext] = true;
  VictimNext = (VictimNext + 1) % VictimDepth;
}

bool Cache::SetState::consumeVictim(uint64_t Tag) {
  for (unsigned I = 0; I < VictimDepth; ++I) {
    if (VictimValid[I] && VictimTags[I] == Tag) {
      VictimValid[I] = false;
      return true;
    }
  }
  return false;
}

Cache::LookupResult Cache::lookup(Addr LineAddr) {
  TRIDENT_DCHECK((LineAddr & (Config.LineSize - 1)) == 0,
                 "unaligned %s line address 0x%llx (line size %u)",
                 Config.Name.c_str(), (unsigned long long)LineAddr,
                 Config.LineSize);
  SetState &S = SetArray[setIndex(LineAddr)];
  uint64_t Tag = tagOf(LineAddr);
  for (Line &L : S.Ways) {
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = ++UseClock;
      return {&L, false};
    }
  }
  return {nullptr, S.consumeVictim(Tag)};
}

const Cache::Line *Cache::peek(Addr LineAddr) const {
  const SetState &S = SetArray[setIndex(LineAddr)];
  uint64_t Tag = tagOf(LineAddr);
  for (const Line &L : S.Ways)
    if (L.Valid && L.Tag == Tag)
      return &L;
  return nullptr;
}

void Cache::insert(Addr LineAddr, Cycle FillReady, bool Prefetched) {
  TRIDENT_DCHECK((LineAddr & (Config.LineSize - 1)) == 0,
                 "unaligned %s line address 0x%llx (line size %u)",
                 Config.Name.c_str(), (unsigned long long)LineAddr,
                 Config.LineSize);
  SetState &S = SetArray[setIndex(LineAddr)];
  uint64_t Tag = tagOf(LineAddr);

  // Refill of a present line (e.g. prefetch of a resident line): refresh.
  for (Line &L : S.Ways) {
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = ++UseClock;
      return;
    }
  }

  // Pick victim: an invalid way, else LRU.
  Line *Victim = &S.Ways[0];
  for (Line &L : S.Ways) {
    if (!L.Valid) {
      Victim = &L;
      break;
    }
    if (L.LastUse < Victim->LastUse)
      Victim = &L;
  }

  if (Victim->Valid && Prefetched && !Victim->Untouched) {
    // A prefetch displaced a line the program had actually used: remember
    // the tag so a subsequent miss can be blamed on prefetching (Fig. 6).
    S.recordVictim(Victim->Tag);
  }

  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->FillReady = FillReady;
  Victim->Prefetched = Prefetched;
  Victim->Untouched = Prefetched;
  Victim->LastUse = ++UseClock;
}

uint64_t Cache::invalidateRange(Addr Lo, Addr Hi) {
  uint64_t Evicted = 0;
  for (SetState &S : SetArray) {
    for (Line &L : S.Ways) {
      if (!L.Valid)
        continue;
      Addr First = L.Tag * Config.LineSize;
      Addr Last = First + Config.LineSize - 1;
      if (First <= Hi && Last >= Lo) {
        L.Valid = false;
        ++Evicted;
      }
    }
  }
  return Evicted;
}

void Cache::reset() {
  for (auto &S : SetArray) {
    for (Line &L : S.Ways)
      L = Line();
    for (unsigned I = 0; I < SetState::VictimDepth; ++I)
      S.VictimValid[I] = false;
    S.VictimNext = 0;
  }
  UseClock = 0;
}
