//===- Cache.cpp ----------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// trident-lint: hot-path (per-access lookup/insert; no O(n) erase scans)
//
//===----------------------------------------------------------------------===//

#include "mem/Cache.h"
#include "support/Check.h"

using namespace trident;

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

static unsigned log2OfPow2(uint64_t X) {
  unsigned S = 0;
  while ((uint64_t{1} << S) < X)
    ++S;
  return S;
}

Cache::Cache(const CacheConfig &Cfg)
    : Config(Cfg), Sets(Config.numSets()),
      LineShift(log2OfPow2(Config.LineSize)) {
  TRIDENT_CHECK(isPowerOfTwo(Sets),
                "%s set count %llu must be a power of two",
                Config.Name.c_str(), (unsigned long long)Sets);
  TRIDENT_CHECK(isPowerOfTwo(Config.LineSize),
                "%s line size %u must be a power of two", Config.Name.c_str(),
                Config.LineSize);
  const size_t NumLines = Sets * Config.Assoc;
  TagsArr.resize(NumLines, kNoTag);
  FillReadyArr.resize(NumLines, 0);
  LastUseArr.resize(NumLines, 0);
  FlagsArr.resize(NumLines, 0);
  VictimTags.resize(Sets * VictimDepth, 0);
  VictimValid.resize(Sets * VictimDepth, 0);
  VictimNext.resize(Sets, 0);
}

void Cache::recordVictim(uint64_t Set, uint64_t Tag) {
  const uint64_t Base = Set * VictimDepth;
  const unsigned Slot = VictimNext[Set];
  VictimTags[Base + Slot] = Tag;
  VictimValid[Base + Slot] = 1;
  VictimNext[Set] = static_cast<uint8_t>((Slot + 1) % VictimDepth);
}

bool Cache::consumeVictim(uint64_t Set, uint64_t Tag) {
  const uint64_t Base = Set * VictimDepth;
  for (unsigned I = 0; I < VictimDepth; ++I) {
    if (VictimValid[Base + I] && VictimTags[Base + I] == Tag) {
      VictimValid[Base + I] = 0;
      return true;
    }
  }
  return false;
}

Cache::LookupResult Cache::lookup(Addr LineAddr) {
  TRIDENT_DCHECK((LineAddr & (Config.LineSize - 1)) == 0,
                 "unaligned %s line address 0x%llx (line size %u)",
                 Config.Name.c_str(), (unsigned long long)LineAddr,
                 Config.LineSize);
  const uint64_t Set = setIndex(LineAddr);
  const uint64_t Tag = tagOf(LineAddr);
  const LineIdx Base = static_cast<LineIdx>(Set * Config.Assoc);
  const LineIdx End = Base + Config.Assoc;
  for (LineIdx I = Base; I < End; ++I) {
    if (TagsArr[I] == Tag) {
      LastUseArr[I] = ++UseClock;
      return {I, false};
    }
  }
  return {NoLine, consumeVictim(Set, Tag)};
}

Cache::LineIdx Cache::peek(Addr LineAddr) const {
  const uint64_t Set = setIndex(LineAddr);
  const uint64_t Tag = tagOf(LineAddr);
  const LineIdx Base = static_cast<LineIdx>(Set * Config.Assoc);
  for (LineIdx I = Base; I < Base + Config.Assoc; ++I)
    if (TagsArr[I] == Tag)
      return I;
  return NoLine;
}

void Cache::insert(Addr LineAddr, Cycle FillReady, bool Prefetched) {
  TRIDENT_DCHECK((LineAddr & (Config.LineSize - 1)) == 0,
                 "unaligned %s line address 0x%llx (line size %u)",
                 Config.Name.c_str(), (unsigned long long)LineAddr,
                 Config.LineSize);
  const uint64_t Set = setIndex(LineAddr);
  const uint64_t Tag = tagOf(LineAddr);
  TRIDENT_DCHECK(Tag != kNoTag, "line address 0x%llx maps to the sentinel tag",
                 (unsigned long long)LineAddr);
  const LineIdx Base = static_cast<LineIdx>(Set * Config.Assoc);
  const LineIdx End = Base + Config.Assoc;

  // One pass over the ways: a refill of a present line (e.g. prefetch of a
  // resident line) only refreshes LRU; otherwise pick the victim — the
  // first invalid way, else LRU (earliest index breaks LastUse ties).
  LineIdx Victim = Base;
  bool HaveInvalid = false;
  for (LineIdx I = Base; I < End; ++I) {
    const uint64_t T = TagsArr[I];
    if (T == kNoTag) {
      if (!HaveInvalid) {
        Victim = I;
        HaveInvalid = true;
      }
      continue;
    }
    if (T == Tag) {
      LastUseArr[I] = ++UseClock;
      return;
    }
    if (!HaveInvalid && LastUseArr[I] < LastUseArr[Victim])
      Victim = I;
  }

  if (TagsArr[Victim] != kNoTag && Prefetched &&
      !(FlagsArr[Victim] & kUntouched)) {
    // A prefetch displaced a line the program had actually used: remember
    // the tag so a subsequent miss can be blamed on prefetching (Fig. 6).
    recordVictim(Set, TagsArr[Victim]);
  }

  TagsArr[Victim] = Tag;
  FillReadyArr[Victim] = FillReady;
  FlagsArr[Victim] =
      static_cast<uint8_t>(Prefetched ? kPrefetched | kUntouched : 0);
  LastUseArr[Victim] = ++UseClock;
}

uint64_t Cache::invalidateRange(Addr Lo, Addr Hi) {
  uint64_t Evicted = 0;
  const size_t NumLines = TagsArr.size();
  for (size_t I = 0; I < NumLines; ++I) {
    if (TagsArr[I] == kNoTag)
      continue;
    Addr First = TagsArr[I] * Config.LineSize;
    Addr Last = First + Config.LineSize - 1;
    if (First <= Hi && Last >= Lo) {
      TagsArr[I] = kNoTag;
      ++Evicted;
    }
  }
  return Evicted;
}

void Cache::reset() {
  std::fill(TagsArr.begin(), TagsArr.end(), kNoTag);
  std::fill(FillReadyArr.begin(), FillReadyArr.end(), 0);
  std::fill(LastUseArr.begin(), LastUseArr.end(), 0);
  std::fill(FlagsArr.begin(), FlagsArr.end(), 0);
  std::fill(VictimTags.begin(), VictimTags.end(), 0);
  std::fill(VictimValid.begin(), VictimValid.end(), 0);
  std::fill(VictimNext.begin(), VictimNext.end(), 0);
  UseClock = 0;
}
