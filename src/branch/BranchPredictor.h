//===- BranchPredictor.h - Direction predictors ----------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch direction predictors for the baseline core. Table 1 specifies a
/// 2bcgskew-class predictor with a 64K-entry meta and gshare plus a
/// 16K-entry bimodal table; we implement exactly that meta/gshare/bimodal
/// combination (the e-gskew bank is approximated by the gshare component,
/// which is the part that matters for loop-dominated workloads).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_BRANCH_BRANCHPREDICTOR_H
#define TRIDENT_BRANCH_BRANCHPREDICTOR_H

#include "isa/Instruction.h"
#include "support/SaturatingCounter.h"

#include <cstdint>
#include <vector>

namespace trident {

/// Common interface so the core can swap predictors.
/// trident-analyze: not-a-hw-table(abstract interface; the concrete
/// predictors below own the bounded counter tables)
class BranchPredictor {
public:
  virtual ~BranchPredictor();

  /// Predicts the direction of the conditional branch at \p PC.
  virtual bool predict(Addr PC) const = 0;

  /// Updates state with the resolved direction.
  virtual void update(Addr PC, bool Taken) = 0;
};

/// PC-indexed 2-bit counters.
class BimodalPredictor final : public BranchPredictor {
public:
  explicit BimodalPredictor(unsigned NumEntries = 16 * 1024);

  bool predict(Addr PC) const override;
  void update(Addr PC, bool Taken) override;

private:
  size_t indexOf(Addr PC) const { return PC & (Table.size() - 1); }
  std::vector<TwoBitCounter> Table;
};

/// Global-history XOR PC indexed 2-bit counters.
class GSharePredictor final : public BranchPredictor {
public:
  explicit GSharePredictor(unsigned NumEntries = 64 * 1024,
                           unsigned HistoryBits = 14);

  bool predict(Addr PC) const override;
  void update(Addr PC, bool Taken) override;

private:
  size_t indexOf(Addr PC) const {
    return (PC ^ History) & (Table.size() - 1);
  }
  std::vector<TwoBitCounter> Table;
  uint64_t History = 0;
  uint64_t HistoryMask;
};

/// Meta-chooser combining bimodal and gshare (the Table 1 configuration).
class MetaPredictor final : public BranchPredictor {
public:
  MetaPredictor(unsigned MetaEntries = 64 * 1024,
                unsigned GshareEntries = 64 * 1024,
                unsigned BimodalEntries = 16 * 1024);

  bool predict(Addr PC) const override;
  void update(Addr PC, bool Taken) override;

private:
  size_t metaIndex(Addr PC) const { return PC & (Meta.size() - 1); }
  std::vector<TwoBitCounter> Meta; ///< Set => trust gshare.
  GSharePredictor Gshare;
  BimodalPredictor Bimodal;
};

} // namespace trident

#endif // TRIDENT_BRANCH_BRANCHPREDICTOR_H
