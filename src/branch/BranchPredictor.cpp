//===- BranchPredictor.cpp ------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "branch/BranchPredictor.h"
#include "support/Check.h"


using namespace trident;

BranchPredictor::~BranchPredictor() = default;

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

BimodalPredictor::BimodalPredictor(unsigned NumEntries) {
  TRIDENT_CHECK(isPowerOfTwo(NumEntries), "table size must be a power of two");
  Table.assign(NumEntries, TwoBitCounter(2)); // weakly taken
}

bool BimodalPredictor::predict(Addr PC) const {
  return Table[indexOf(PC)].isSet();
}

void BimodalPredictor::update(Addr PC, bool Taken) {
  Table[indexOf(PC)].add(Taken ? 1 : -1);
}

GSharePredictor::GSharePredictor(unsigned NumEntries, unsigned HistoryBits)
    : HistoryMask((uint64_t(1) << HistoryBits) - 1) {
  TRIDENT_CHECK(isPowerOfTwo(NumEntries), "table size must be a power of two");
  Table.assign(NumEntries, TwoBitCounter(2));
}

bool GSharePredictor::predict(Addr PC) const {
  return Table[indexOf(PC)].isSet();
}

void GSharePredictor::update(Addr PC, bool Taken) {
  Table[indexOf(PC)].add(Taken ? 1 : -1);
  History = ((History << 1) | (Taken ? 1 : 0)) & HistoryMask;
}

MetaPredictor::MetaPredictor(unsigned MetaEntries, unsigned GshareEntries,
                             unsigned BimodalEntries)
    : Gshare(GshareEntries), Bimodal(BimodalEntries) {
  TRIDENT_CHECK(isPowerOfTwo(MetaEntries), "table size must be a power of two");
  Meta.assign(MetaEntries, TwoBitCounter(2));
}

bool MetaPredictor::predict(Addr PC) const {
  bool UseGshare = Meta[metaIndex(PC)].isSet();
  return UseGshare ? Gshare.predict(PC) : Bimodal.predict(PC);
}

void MetaPredictor::update(Addr PC, bool Taken) {
  bool G = Gshare.predict(PC);
  bool B = Bimodal.predict(PC);
  if (G != B)
    Meta[metaIndex(PC)].add(G == Taken ? 1 : -1);
  Gshare.update(PC, Taken);
  Bimodal.update(PC, Taken);
}
