//===- EventTracer.h - Ring-buffered event trace sink ----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An observability sink on the event bus: records the most recent N
/// events into a fixed ring buffer and exports them as Chrome trace JSON
/// (load chrome://tracing or https://ui.perfetto.dev and drop the file).
/// Timestamps are simulated cycles, contexts map to trace "threads".
///
/// The tracer is strictly passive — it copies scalars out of each event
/// and mutates nothing — so attaching it cannot perturb a run. A ctest
/// suite asserts exactly that (bit-identical SimResult with and without a
/// tracer) across all 14 workloads.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_EVENTS_EVENTTRACER_H
#define TRIDENT_EVENTS_EVENTTRACER_H

#include "events/EventBus.h"

#include <string>
#include <vector>

namespace trident {

class EventTracer final : public EventSubscriber {
public:
  /// One recorded event: the scalar projection of a HardwareEvent (the
  /// Insn/Access pointers are only valid during publish, so the ring
  /// keeps what the exporter needs and nothing more).
  struct Record {
    EventKind Kind = EventKind::Commit;
    uint8_t Ctx = 0;
    Addr PC = 0;
    Addr Arg = 0;    ///< EA / branch target / candidate start PC.
    Cycle Time = 0;
    uint64_t Extra = 0; ///< Outcome / taken / trace id / bitmap (by kind).
  };

  /// Ring of \p Capacity records; when full, the oldest record is
  /// overwritten (a trace of the *end* of the run, like a flight
  /// recorder). \p Mask selects the kinds recorded.
  explicit EventTracer(size_t Capacity = 1 << 16,
                       EventKindMask Mask = kAllEventsMask);

  EventKindMask mask() const { return Mask; }
  size_t capacity() const { return Cap; }
  /// Records currently held (<= capacity).
  size_t size() const;
  /// Total events offered to the ring.
  uint64_t recorded() const { return NumRecorded; }
  /// Records lost to ring wrap-around.
  uint64_t overwritten() const;

  // EventSubscriber.
  void onEvent(const HardwareEvent &E) override;

  /// Held records, oldest first.
  std::vector<Record> snapshot() const;

  /// The full Chrome-trace JSON document (one instant event per record).
  std::string chromeTraceJson() const;
  /// Writes chromeTraceJson() to \p Path; returns false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  void clear();

private:
  size_t Cap;
  EventKindMask Mask;
  std::vector<Record> Ring; ///< Grows to Cap, then wraps at Head.
  size_t Head = 0;          ///< Next slot to write once the ring is full.
  uint64_t NumRecorded = 0;
};

} // namespace trident

#endif // TRIDENT_EVENTS_EVENTTRACER_H
