//===- EventBus.h - Multi-subscriber hardware-event dispatch ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bus that replaces the old single hard-wired CoreListener hook.
/// SmtCore publishes typed HardwareEvents into the bus; any number of
/// subscribers — the Trident runtime's monitor structures (branch
/// profiler, watch table, DLT), the ring-buffered event tracer, future
/// prefetch backends — receive exactly the kinds they asked for.
///
/// Dispatch contract (load-bearing for bit-identical reproduction):
///
///  * Per kind, subscribers are invoked in subscription order. The
///    Trident runtime relies on this to preserve the exact intra-commit
///    ordering the old monolithic listener had (watch-table excursion
///    tracking before profiler training).
///  * publish() is synchronous and reentrant: a subscriber may publish
///    further events (the runtime turns a Commit into a HotTrace event),
///    but must not subscribe/unsubscribe during a dispatch.
///  * The bus itself adds no timing: events describe the machine, they
///    never advance it.
///
/// Hot-path note: publishers should gate event construction on
/// activeMask() (one branch per potential event) so a bus with no
/// subscribers for a kind costs a single predictable-not-taken branch.
/// SmtCore caches the mask at run() entry for exactly this reason.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_EVENTS_EVENTBUS_H
#define TRIDENT_EVENTS_EVENTBUS_H

#include "events/HardwareEvent.h"
#include "support/Check.h"

#include <array>
#include <cstdint>
#include <vector>

namespace trident {

/// A sink on the bus. Implementations dispatch on E.Kind (they only ever
/// see kinds they subscribed to).
class EventSubscriber {
public:
  virtual ~EventSubscriber();
  virtual void onEvent(const HardwareEvent &E) = 0;
};

class EventBus {
public:
  /// Registers \p S for every kind set in \p Mask. Per kind, dispatch
  /// order equals subscription order. Must not be called from inside a
  /// publish() dispatch.
  void subscribe(EventSubscriber *S, EventKindMask Mask) {
    TRIDENT_CHECK(S != nullptr, "null subscriber");
    for (unsigned K = 0; K < kNumEventKinds; ++K)
      if (Mask & (EventKindMask{1} << K))
        ByKind[K].push_back(S);
    Active |= Mask & kAllEventsMask;
  }

  /// Union of every subscriber's kind mask. Publishers test this before
  /// constructing an event.
  EventKindMask activeMask() const { return Active; }
  bool anyFor(EventKind K) const { return (Active & eventMaskOf(K)) != 0; }

  /// Synchronously delivers \p E to every subscriber of its kind, in
  /// subscription order, and counts the publish.
  void publish(const HardwareEvent &E) {
    const auto K = static_cast<size_t>(E.Kind);
    TRIDENT_DCHECK(K < kNumEventKinds, "publishing a bad event kind %zu", K);
    ++Published[K];
    for (EventSubscriber *S : ByKind[K])
      S->onEvent(E);
  }

  /// Publishes counted since construction or the last clearCounts().
  const std::array<uint64_t, kNumEventKinds> &publishedCounts() const {
    return Published;
  }
  uint64_t published(EventKind K) const {
    return Published[static_cast<size_t>(K)];
  }

  /// Resets the publish counters (measurement-window boundary); the
  /// subscriber lists are untouched.
  void clearCounts() { Published.fill(0); }

  size_t numSubscribers(EventKind K) const {
    return ByKind[static_cast<size_t>(K)].size();
  }

private:
  std::array<std::vector<EventSubscriber *>, kNumEventKinds> ByKind;
  std::array<uint64_t, kNumEventKinds> Published{};
  EventKindMask Active = 0;
};

} // namespace trident

#endif // TRIDENT_EVENTS_EVENTBUS_H
