//===- EventBus.h - Multi-subscriber hardware-event dispatch ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bus that replaces the old single hard-wired CoreListener hook.
/// SmtCore publishes typed HardwareEvents into the bus; any number of
/// subscribers — the Trident runtime's monitor structures (branch
/// profiler, watch table, DLT), the ring-buffered event tracer, future
/// prefetch backends — receive exactly the kinds they asked for.
///
/// Dispatch contract (load-bearing for bit-identical reproduction):
///
///  * Per kind, subscribers are invoked in subscription order. The
///    Trident runtime relies on this to preserve the exact intra-commit
///    ordering the old monolithic listener had (watch-table excursion
///    tracking before profiler training).
///  * publish() is synchronous and reentrant: a subscriber may publish
///    further events (the runtime turns a Commit into a HotTrace event),
///    but must not subscribe/unsubscribe during a dispatch.
///  * The bus itself adds no timing: events describe the machine, they
///    never advance it.
///
/// Hot-path note: publishers should gate event construction on
/// activeMask() (one branch per potential event) so a bus with no
/// subscribers for a kind costs a single predictable-not-taken branch.
/// SmtCore caches the mask at run() entry for exactly this reason.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_EVENTS_EVENTBUS_H
#define TRIDENT_EVENTS_EVENTBUS_H

#include "events/HardwareEvent.h"
#include "support/Check.h"

#include <array>
#include <cstdint>
#include <vector>

namespace trident {

/// A sink on the bus. Implementations dispatch on E.Kind (they only ever
/// see kinds they subscribed to).
class EventSubscriber {
public:
  virtual ~EventSubscriber();
  virtual void onEvent(const HardwareEvent &E) = 0;
};

class EventBus {
public:
  /// Staged events per deferred-dispatch block. Sized so a block spans a
  /// few hundred commits: the flush loop then tests each kind's
  /// subscriber list once per block instead of once per event.
  static constexpr size_t kStagingBlock = 256;

  /// Registers \p S for every kind set in \p Mask. Per kind, dispatch
  /// order equals subscription order. Must not be called from inside a
  /// publish() dispatch.
  void subscribe(EventSubscriber *S, EventKindMask Mask) {
    TRIDENT_CHECK(S != nullptr, "null subscriber");
    for (unsigned K = 0; K < kNumEventKinds; ++K)
      if (Mask & (EventKindMask{1} << K))
        ByKind[K].push_back(S); // trident-lint: alloc-ok(subscription setup)
    Active |= Mask & kAllEventsMask;
  }

  /// Registers \p S for *deferred* batched dispatch of the kinds in
  /// \p Mask. Staged events are deep copies (Insn/Access snapshotted by
  /// value) delivered at the next flush() — when the staging block fills
  /// or the owner flushes explicitly — in kind-order batches: for each
  /// kind in EventKind order, every staged event of that kind in arrival
  /// order, to each deferred subscriber in subscription order. Strictly
  /// for passive sinks (tracing/observability): deferred subscribers see
  /// events after the machine has moved on and must not mutate anything.
  void subscribeDeferred(EventSubscriber *S, EventKindMask Mask) {
    TRIDENT_CHECK(S != nullptr, "null subscriber");
    for (unsigned K = 0; K < kNumEventKinds; ++K)
      if (Mask & (EventKindMask{1} << K))
        DeferredByKind[K].push_back(S); // trident-lint: alloc-ok(setup)
    DeferredMask |= Mask & kAllEventsMask;
    Active |= Mask & kAllEventsMask;
    if (Staged.capacity() < kStagingBlock)
      Staged.reserve(kStagingBlock); // trident-lint: alloc-ok(setup)
  }

  /// Union of every subscriber's kind mask. Publishers test this before
  /// constructing an event.
  EventKindMask activeMask() const { return Active; }
  bool anyFor(EventKind K) const { return (Active & eventMaskOf(K)) != 0; }

  /// Synchronously delivers \p E to every subscriber of its kind, in
  /// subscription order, and counts the publish. Deferred subscribers of
  /// the kind get a staged copy instead; the count covers both.
  void publish(const HardwareEvent &E) {
    const auto K = static_cast<size_t>(E.Kind);
    TRIDENT_DCHECK(K < kNumEventKinds, "publishing a bad event kind %zu", K);
    ++Published[K];
    for (EventSubscriber *S : ByKind[K])
      S->onEvent(E);
    if (DeferredMask & (EventKindMask{1} << K))
      stage(E);
  }

  /// Delivers every staged event to the deferred subscribers (kind-order
  /// batches, see subscribeDeferred) and empties the staging block. The
  /// owner must flush before reading a deferred sink's state (e.g. the
  /// tracer ring at snapshot time).
  void flush() {
    if (Staged.empty())
      return;
    TRIDENT_DCHECK(!Flushing, "reentrant EventBus flush");
    Flushing = true;
    for (unsigned K = 0; K < kNumEventKinds; ++K) {
      const std::vector<EventSubscriber *> &Subs = DeferredByKind[K];
      if (Subs.empty())
        continue;
      for (StagedEvent &SE : Staged) {
        if (static_cast<unsigned>(SE.E.Kind) != K)
          continue;
        HardwareEvent E = SE.E;
        if (SE.HasInsn)
          E.Insn = &SE.Insn;
        if (SE.HasAccess)
          E.Access = &SE.Access;
        for (EventSubscriber *S : Subs)
          S->onEvent(E);
      }
    }
    Staged.clear();
    Flushing = false;
  }

  /// Staged-but-undelivered events (introspection for tests).
  size_t staged() const { return Staged.size(); }

  /// Publishes counted since construction or the last clearCounts().
  const std::array<uint64_t, kNumEventKinds> &publishedCounts() const {
    return Published;
  }
  uint64_t published(EventKind K) const {
    return Published[static_cast<size_t>(K)];
  }

  /// Resets the publish counters (measurement-window boundary); the
  /// subscriber lists are untouched.
  void clearCounts() { Published.fill(0); }

  size_t numSubscribers(EventKind K) const {
    return ByKind[static_cast<size_t>(K)].size();
  }

private:
  /// A staged event for deferred dispatch. HardwareEvent's Insn/Access
  /// pointers alias publisher stack storage valid only during publish(),
  /// so the stage snapshots the pointees by value and flush() re-points
  /// a local copy of the event at them.
  struct StagedEvent {
    HardwareEvent E;
    Instruction Insn;
    AccessResult Access;
    bool HasInsn = false;
    bool HasAccess = false;
  };

  void stage(const HardwareEvent &E) {
    StagedEvent &SE = Staged.emplace_back(); // reserved: never reallocates
    SE.E = E;
    if (E.Insn) {
      SE.Insn = *E.Insn;
      SE.E.Insn = nullptr;
      SE.HasInsn = true;
    }
    if (E.Access) {
      SE.Access = *E.Access;
      SE.E.Access = nullptr;
      SE.HasAccess = true;
    }
    if (Staged.size() >= kStagingBlock)
      flush();
  }

  std::array<std::vector<EventSubscriber *>, kNumEventKinds> ByKind;
  std::array<std::vector<EventSubscriber *>, kNumEventKinds> DeferredByKind;
  std::array<uint64_t, kNumEventKinds> Published{};
  std::vector<StagedEvent> Staged;
  EventKindMask Active = 0;
  EventKindMask DeferredMask = 0;
  bool Flushing = false;
};

} // namespace trident

#endif // TRIDENT_EVENTS_EVENTBUS_H
