//===- EventQueue.h - Bounded filtered-event queue -------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded hardware queue between the monitor filters and the helper
/// thread. The paper's monitors deliberately over-filter so that "only a
/// few events" reach the software; this queue models the finite buffer
/// that holds them until the helper thread is free, with the drop policy
/// real hardware would have: when the queue is full the *incoming* event
/// is dropped (the oldest pending work is never cancelled), which keeps
/// drop order deterministic.
///
/// Absorbs what used to be TridentRuntime's private Event/Pending/
/// MaxPendingEvents machinery, and adds the drop accounting the old code
/// could not export: drop count, peak occupancy, and an occupancy
/// histogram sampled at every enqueue attempt.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_EVENTS_EVENTQUEUE_H
#define TRIDENT_EVENTS_EVENTQUEUE_H

#include "events/HardwareEvent.h"
#include "support/Check.h"
#include "support/Statistics.h"

#include <algorithm>
#include <deque>

namespace trident {

// trident-lint: not-a-hw-table(bounded by MaxPending, checked below; the
// deque is the modeling substrate, not an unbounded software map)
class EventQueue {
public:
  /// \p MaxPending may be 0: every event drops (the pathological
  /// configuration integration tests exercise).
  explicit EventQueue(size_t MaxPending)
      : Max(MaxPending),
        Occupancy(/*BucketWidth=*/1.0,
                  /*NumBuckets=*/static_cast<unsigned>(
                      std::max<size_t>(MaxPending, 1))) {}

  /// Enqueues \p E unless the queue is full or a fault-injected forced
  /// drop is pending. Returns false on a drop (the event is discarded and
  /// the drop counter advances). Samples occupancy (pre-push) either way.
  bool tryPush(const HardwareEvent &E) {
    Occupancy.addSample(static_cast<double>(Q.size()));
    if (ForcedDrops > 0) {
      --ForcedDrops;
      ++NumInjectedDrops;
      ++NumDropped;
      return false;
    }
    if (Q.size() >= Max) {
      ++NumDropped;
      return false;
    }
    Q.push_back(E);
    Peak = std::max(Peak, Q.size());
    return true;
  }

  bool empty() const { return Q.empty(); }
  size_t size() const { return Q.size(); }
  size_t capacity() const { return Max; }

  /// Removes and returns the oldest pending event (FIFO).
  HardwareEvent pop() {
    TRIDENT_CHECK(!Q.empty(), "pop from an empty event queue");
    HardwareEvent E = Q.front();
    Q.pop_front();
    return E;
  }

  uint64_t dropped() const { return NumDropped; }
  size_t peakOccupancy() const { return Peak; }

  // Fault-injection hooks (src/faults). Both default off; the zero-fault
  // path is bit-identical to a queue without them. -----------------------

  /// Forces the next \p N enqueue attempts to drop (injected backpressure,
  /// accumulating across calls). Forced drops count in both dropped() and
  /// injectedDrops().
  void scheduleForcedDrops(uint64_t N) { ForcedDrops += N; }
  uint64_t pendingForcedDrops() const { return ForcedDrops; }
  uint64_t injectedDrops() const { return NumInjectedDrops; }

  /// Stalls (or resumes) dispatch: while stalled the owner must not pop,
  /// so events delay in place and overflow drops normally. A fault
  /// condition, not accounting — clearStats() leaves it alone.
  void setStalled(bool S) { Stalled = S; }
  bool stalled() const { return Stalled; }

  /// Occupancy distribution, sampled at each enqueue attempt (bucket
  /// width 1, one bucket per slot plus overflow).
  const Histogram &occupancyHistogram() const { return Occupancy; }

  /// Resets the accounting (drop count, peak, histogram) without touching
  /// queued events — the measurement-window boundary. Peak restarts at
  /// the current occupancy. Fault conditions (pending forced drops, the
  /// stall flag) and fault accounting survive: injected faults span
  /// measurement boundaries.
  void clearStats() {
    NumDropped = 0;
    Peak = Q.size();
    Occupancy = Histogram(
        1.0, static_cast<unsigned>(std::max<size_t>(Max, 1)));
  }

private:
  size_t Max;
  std::deque<HardwareEvent> Q;
  uint64_t NumDropped = 0;
  size_t Peak = 0;
  Histogram Occupancy;
  uint64_t ForcedDrops = 0;
  uint64_t NumInjectedDrops = 0;
  bool Stalled = false;
};

} // namespace trident

#endif // TRIDENT_EVENTS_EVENTQUEUE_H
