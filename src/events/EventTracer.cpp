//===- EventTracer.cpp ----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "events/EventTracer.h"
#include "support/Check.h"

#include <cstdio>

using namespace trident;

EventSubscriber::~EventSubscriber() = default;

EventTracer::EventTracer(size_t Capacity, EventKindMask M)
    : Cap(Capacity), Mask(M & kAllEventsMask) {
  TRIDENT_CHECK(Capacity > 0, "tracer ring needs at least one slot");
  Ring.reserve(Capacity);
}

size_t EventTracer::size() const { return Ring.size(); }

uint64_t EventTracer::overwritten() const {
  return NumRecorded - Ring.size();
}

void EventTracer::onEvent(const HardwareEvent &E) {
  if (!(Mask & eventMaskOf(E.Kind)))
    return;
  Record R;
  R.Kind = E.Kind;
  R.Ctx = E.Ctx;
  R.PC = E.PC;
  R.Time = E.Time;
  switch (E.Kind) {
  case EventKind::LoadOutcome:
    R.Arg = E.EA;
    R.Extra = E.Access ? static_cast<uint64_t>(E.Access->Outcome) : 0;
    break;
  case EventKind::Branch:
    R.Arg = E.EA;
    R.Extra = E.Taken ? 1 : 0;
    break;
  case EventKind::TraceEntry:
  case EventKind::TraceExit:
  case EventKind::DelinquentLoad:
    R.Extra = E.TraceId;
    break;
  case EventKind::HotTrace:
    R.Arg = E.Cand.StartPC;
    R.Extra = (static_cast<uint64_t>(E.Cand.NumBranches) << 16) |
              E.Cand.Bitmap;
    break;
  case EventKind::HwPfFeedback:
    R.Arg = E.PfFb.Issued;
    R.Extra = E.PfFb.Useful + E.PfFb.Late;
    break;
  case EventKind::SelectorDecision:
    R.Arg = E.Decision.Epoch;
    R.Extra = (static_cast<uint64_t>(E.Decision.PrevArm) << 16) |
              E.Decision.ChosenArm;
    break;
  case EventKind::Commit:
  case EventKind::HelperDone:
  case EventKind::NumKinds:
    break;
  }
  ++NumRecorded;
  if (Ring.size() < Cap) {
    Ring.push_back(R);
    return;
  }
  Ring[Head] = R;
  Head = (Head + 1) % Cap;
}

std::vector<EventTracer::Record> EventTracer::snapshot() const {
  std::vector<Record> Out;
  Out.reserve(Ring.size());
  // Once wrapped, Head is the oldest record; before that, index 0 is.
  for (size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(Ring[(Head + I) % Ring.size()]);
  return Out;
}

void EventTracer::clear() {
  Ring.clear();
  Head = 0;
  NumRecorded = 0;
}

std::string EventTracer::chromeTraceJson() const {
  std::string Out;
  Out.reserve(Ring.size() * 192 + 256); // one ~190-byte line per record
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  char Buf[192];
  for (const Record &R : snapshot()) {
    if (!First)
      Out.push_back(',');
    First = false;
    // Instant events; ts = simulated cycle, tid = hardware context.
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                  "\"tid\":%u,\"ts\":%llu,\"args\":{\"pc\":\"0x%llx\","
                  "\"arg\":\"0x%llx\",\"extra\":%llu}}",
                  eventKindName(R.Kind), static_cast<unsigned>(R.Ctx),
                  static_cast<unsigned long long>(R.Time),
                  static_cast<unsigned long long>(R.PC),
                  static_cast<unsigned long long>(R.Arg),
                  static_cast<unsigned long long>(R.Extra));
    Out += Buf;
  }
  Out += "],\"otherData\":{\"tool\":\"trident-srp\",\"recorded\":";
  std::snprintf(Buf, sizeof(Buf), "%llu,\"overwritten\":%llu}}",
                static_cast<unsigned long long>(NumRecorded),
                static_cast<unsigned long long>(overwritten()));
  Out += Buf;
  Out += "\n";
  return Out;
}

bool EventTracer::writeChromeTrace(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = chromeTraceJson();
  size_t Written = std::fwrite(S.data(), 1, S.size(), F);
  bool Ok = Written == S.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}
