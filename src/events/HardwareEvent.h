//===- HardwareEvent.h - Typed hardware-event records ----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary of the machine. The paper's whole framework is
/// event-driven: hardware monitors filter the commit stream down to a
/// handful of delinquent-load / hot-trace events that the helper thread
/// consumes. This header gives every such signal a typed record so the
/// rest of the system — the EventBus that fans them out, the EventQueue
/// that buffers the filtered ones, and the observability sinks (tracer,
/// stat registry) — can speak one language.
///
/// Kinds fall into two tiers:
///
///  * fine-grained monitor feed, published by SmtCore every time the
///    corresponding microarchitectural thing happens: Commit, LoadOutcome,
///    Branch, HelperDone;
///  * filtered optimization events, published by the Trident runtime when
///    a monitor's filter fires: HotTrace, DelinquentLoad, plus the
///    TraceEntry/TraceExit excursion markers derived from the watch
///    table's trace tracking.
///
/// Every kind MUST have an entry in eventKindName()'s switch — the
/// trident-lint `event-names` rule enforces this at CI time, and the
/// compiler's -Wswitch enforces it at build time.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_EVENTS_HARDWAREEVENT_H
#define TRIDENT_EVENTS_HARDWAREEVENT_H

#include "isa/Instruction.h"
#include "mem/CacheTypes.h"
#include "support/Types.h"

#include <cstdint>

namespace trident {

enum class EventKind : uint8_t {
  Commit,         ///< A committed instruction (any context).
  LoadOutcome,    ///< A committed demand load with its timed cache outcome.
  Branch,         ///< A committed control transfer with resolved direction.
  TraceEntry,     ///< Main context entered a code-cache trace body.
  TraceExit,      ///< Main context left a trace for original code.
  HotTrace,       ///< Profiler filter fired: a stable hot path was captured.
  DelinquentLoad, ///< DLT filter fired: a hot-trace load keeps missing.
  HelperDone,     ///< The helper-thread work stub ran to completion.
  HwPfFeedback,   ///< Periodic hardware-prefetcher effectiveness sample.
  SelectorDecision, ///< Control plane picked a prefetcher for the next epoch.
  NumKinds,       ///< Sentinel; not a real event.
};

inline constexpr unsigned kNumEventKinds =
    static_cast<unsigned>(EventKind::NumKinds);

/// The original eight kinds whose events.published.* stat lines are
/// exported unconditionally (the golden corpus pins them). Kinds added
/// after the corpus was frozen export their line only when nonzero, so
/// configurations that never publish them stay bit-identical to older
/// builds. Append-only: new kinds go after this boundary.
inline constexpr unsigned kNumCoreEventKinds =
    static_cast<unsigned>(EventKind::HwPfFeedback);

/// Human/export name of an event kind. Keep in sync with EventKind: the
/// trident-lint `event-names` rule requires a `case EventKind::X:` here
/// for every enumerator.
inline const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Commit:
    return "commit";
  case EventKind::LoadOutcome:
    return "load-outcome";
  case EventKind::Branch:
    return "branch";
  case EventKind::TraceEntry:
    return "trace-entry";
  case EventKind::TraceExit:
    return "trace-exit";
  case EventKind::HotTrace:
    return "hot-trace";
  case EventKind::DelinquentLoad:
    return "delinquent-load";
  case EventKind::HelperDone:
    return "helper-done";
  case EventKind::HwPfFeedback:
    return "hwpf-feedback";
  case EventKind::SelectorDecision:
    return "selector-decision";
  case EventKind::NumKinds:
    break;
  }
  return "<bad>";
}

/// Bitmask over event kinds; subscribers use it to select what they see.
using EventKindMask = uint32_t;

inline constexpr EventKindMask eventMaskOf(EventKind K) {
  return EventKindMask{1} << static_cast<unsigned>(K);
}

inline constexpr EventKindMask kAllEventsMask =
    (EventKindMask{1} << kNumEventKinds) - 1;

/// A detected hot trace: start PC plus the conditional-branch direction
/// bitmap along the hot path (bit i = direction of the i-th conditional
/// branch after the start PC; 1 = taken). The payload of a HotTrace event
/// (Section 3.2: "a starting PC followed by a branch direction bitmap").
struct HotTraceCandidate {
  Addr StartPC = 0;
  uint16_t Bitmap = 0;
  uint8_t NumBranches = 0;
};

/// Compact by-value payload of a HwPfFeedback event: the four HwPfFeedback
/// counters saturated to 32 bits. Sized to fit the HotTraceCandidate union
/// slot so adding the feedback channel left sizeof(HardwareEvent) alone —
/// the bus, the bounded queue, and the tracer ring all copy events by
/// value on the per-commit hot path, and the stat-registry export reads
/// the full 64-bit counters from MemorySystem directly, so nothing wider
/// is ever needed here. Saturation only matters past 4.3e9 of one counter
/// within a single run, two orders of magnitude beyond the largest
/// configured instruction budget.
/// Members carry no initializers (the factory always assigns all four)
/// so the type stays trivially default-constructible — a requirement for
/// sharing the union slot below.
struct HwPfFeedbackSample {
  uint32_t Issued;
  uint32_t Useful;
  uint32_t Late;
  uint32_t DemandMisses;

  static uint32_t saturate(uint64_t V) {
    return V > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(V);
  }
};

/// Payload of a SelectorDecision event: one epoch-boundary decision of the
/// phase-aware control plane (src/control). Arm indices refer to the
/// selector's sorted arsenal list; kNoArm marks "no arsenal unit attached"
/// (the state before the first decision when the run started without one).
/// Like HwPfFeedbackSample it shares the union slot below, so members
/// carry no initializers (the factory assigns all three) to stay trivially
/// default-constructible.
struct SelectorDecisionRecord {
  uint32_t Epoch;
  uint16_t ChosenArm;
  uint16_t PrevArm;

  static constexpr uint16_t kNoArm = 0xFFFF;

  friend bool operator==(const SelectorDecisionRecord &A,
                         const SelectorDecisionRecord &B) {
    return A.Epoch == B.Epoch && A.ChosenArm == B.ChosenArm &&
           A.PrevArm == B.PrevArm;
  }
};

/// One hardware event. A tagged record rather than a class hierarchy: the
/// hot path constructs these on the stack per commit, so the layout is
/// flat and the kind-specific fields simply go unused for other kinds.
///
/// Pointer fields (Insn, Access) alias the publisher's storage and are
/// valid only for the duration of the publish; sinks that retain events
/// (the tracer's ring, the runtime's pending queue) must copy out the
/// scalars they need. The queued kinds (HotTrace, DelinquentLoad) use no
/// pointer fields, so queueing them is safe by construction.
struct HardwareEvent {
  EventKind Kind = EventKind::Commit;
  uint8_t Ctx = 0;
  Addr PC = 0;
  Cycle Time = 0;

  const Instruction *Insn = nullptr;   ///< Commit / LoadOutcome / Branch.
  const AccessResult *Access = nullptr; ///< LoadOutcome only.
  Addr EA = 0;           ///< LoadOutcome: effective addr; Branch: target.
  bool Taken = false;    ///< Branch only.
  uint32_t TraceId = 0;  ///< TraceEntry/Exit, DelinquentLoad.
  /// Kind-exclusive payloads share one slot: a HotTrace event never
  /// carries feedback and vice versa, and both variants are trivially
  /// copyable, so the union keeps the event at its pre-arsenal size.
  union {
    HotTraceCandidate Cand{}; ///< HotTrace only.
    HwPfFeedbackSample PfFb;  ///< HwPfFeedback only (by value: queue-safe).
    SelectorDecisionRecord Decision; ///< SelectorDecision only (by value).
  };

  static HardwareEvent commit(unsigned Ctx, Addr PC, const Instruction &I,
                              Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::Commit;
    E.Ctx = static_cast<uint8_t>(Ctx);
    E.PC = PC;
    E.Time = Now;
    E.Insn = &I;
    return E;
  }

  static HardwareEvent loadOutcome(unsigned Ctx, Addr PC,
                                   const Instruction &I, Addr EA,
                                   const AccessResult &R, Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::LoadOutcome;
    E.Ctx = static_cast<uint8_t>(Ctx);
    E.PC = PC;
    E.Time = Now;
    E.Insn = &I;
    E.Access = &R;
    E.EA = EA;
    return E;
  }

  static HardwareEvent branch(unsigned Ctx, Addr PC, const Instruction &I,
                              bool Taken, Addr Target, Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::Branch;
    E.Ctx = static_cast<uint8_t>(Ctx);
    E.PC = PC;
    E.Time = Now;
    E.Insn = &I;
    E.Taken = Taken;
    E.EA = Target;
    return E;
  }

  static HardwareEvent traceMark(EventKind K, uint32_t TraceId, Addr PC,
                                 Cycle Now) {
    HardwareEvent E;
    E.Kind = K;
    E.PC = PC;
    E.Time = Now;
    E.TraceId = TraceId;
    return E;
  }

  static HardwareEvent hotTrace(const HotTraceCandidate &C, Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::HotTrace;
    E.PC = C.StartPC;
    E.Time = Now;
    E.Cand = C;
    return E;
  }

  static HardwareEvent delinquentLoad(Addr LoadPC, uint32_t TraceId,
                                      Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::DelinquentLoad;
    E.PC = LoadPC;
    E.Time = Now;
    E.TraceId = TraceId;
    return E;
  }

  static HardwareEvent helperDone(unsigned Ctx, Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::HelperDone;
    E.Ctx = static_cast<uint8_t>(Ctx);
    E.Time = Now;
    return E;
  }

  static HardwareEvent selectorDecision(const SelectorDecisionRecord &D,
                                        Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::SelectorDecision;
    E.Time = Now;
    E.Decision = D;
    return E;
  }

  static HardwareEvent hwPfFeedback(const HwPfFeedback &Fb, Cycle Now) {
    HardwareEvent E;
    E.Kind = EventKind::HwPfFeedback;
    E.Time = Now;
    E.PfFb = {HwPfFeedbackSample::saturate(Fb.Issued),
              HwPfFeedbackSample::saturate(Fb.Useful),
              HwPfFeedbackSample::saturate(Fb.Late),
              HwPfFeedbackSample::saturate(Fb.DemandMisses)};
    return E;
  }
};

} // namespace trident

#endif // TRIDENT_EVENTS_HARDWAREEVENT_H
