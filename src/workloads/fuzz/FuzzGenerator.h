//===- FuzzGenerator.h - Seeded generative workload fuzzer -----*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generative workload fuzzer: from one 64-bit seed (plus a small
/// knob vector) it emits a multi-phase program built from the same memory
/// idioms the 14 hand-written benchmarks use — strided scans, pointer
/// chases, indexed gathers, same-object walks, and unclassifiable random
/// probes — with controllable working-set size, stride entropy, branch mix,
/// and phase-change schedule.
///
/// Determinism is the load-bearing contract: every draw comes from one
/// SplitMix64 seeded by (Seed, knobs), there is no global RNG state, and the
/// canonical workload name encodes the seed and every non-default knob.
/// The ExperimentRunner memo cache keys on (workload name, config
/// fingerprint), so two fuzz scenarios share a cache entry exactly when they
/// are the same program — which the name guarantees.
///
/// Spec grammar (the `trident_sim --fuzz` argument and the makeWorkload
/// name after the "fuzz@" prefix):
///
///   SEED[:knob=value,...]
///
/// with knobs (see FuzzKnobs for ranges and defaults):
///   wset     working-set size per phase segment, in KB
///   segs     number of phase segments (the phase-change schedule)
///   entropy  stride entropy, permille: probability a stream draws an
///            irregular (possibly negative) stride / a shuffled layout
///   branch   branch mix, permille: probability a loop body carries a
///            data-dependent conditional branch
///   phase    iterations per segment before the program moves to the next
///            phase (capped so the footprint respects wset)
///   streams  maximum concurrent stride streams per scan segment
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_WORKLOADS_FUZZ_FUZZGENERATOR_H
#define TRIDENT_WORKLOADS_FUZZ_FUZZGENERATOR_H

#include "workloads/Workloads.h"

#include <cstdint>
#include <string>

namespace trident {

/// Generation knobs. Defaults are mid-range; every field is validated by
/// parseFuzzSpec and folded into the canonical workload name when it
/// differs from the default.
struct FuzzKnobs {
  /// Working set per phase segment, KB. Range 64..131072 (a segment's data
  /// must fit its 256MB region).
  uint64_t WsetKB = 8192;
  /// Number of phase segments the program cycles through. Range 1..8.
  unsigned Segments = 3;
  /// Stride-entropy permille (0 = only regular strides and layouts,
  /// 1000 = always irregular). Range 0..1000.
  unsigned EntropyPermille = 300;
  /// Branch-mix permille: chance a segment body carries a data-dependent
  /// branch. Range 0..1000.
  unsigned BranchPermille = 250;
  /// Iterations per segment visit before the phase change. Range
  /// 64..1000000; per-segment footprint caps may lower it further.
  uint64_t PhaseIters = 2000;
  /// Maximum concurrent stride streams in a scan segment. Range 1..10.
  unsigned Streams = 6;

  bool operator==(const FuzzKnobs &) const = default;
};

/// True when \p Name is a fuzz workload spec ("fuzz@..." prefix).
bool isFuzzSpec(const std::string &Name);

/// Parses \p Spec ("SEED[:knob=v,...]", without the "fuzz@" prefix).
/// Rejects non-numeric seeds, unknown or duplicate knobs, and out-of-range
/// values with a registry-style message in \p Error. \p Knobs starts from
/// defaults; only listed knobs are overwritten.
bool parseFuzzSpec(const std::string &Spec, uint64_t &Seed, FuzzKnobs &Knobs,
                   std::string *Error);

/// The canonical workload name: "fuzz@SEED" plus each non-default knob in
/// fixed order. Two (Seed, Knobs) pairs map to the same name iff they
/// generate the same workload, so the memo cache's trust in names holds.
std::string fuzzWorkloadName(uint64_t Seed, const FuzzKnobs &Knobs);

/// Generates the fuzz workload for (Seed, Knobs). Deterministic: the same
/// arguments produce a bit-identical program, data image, and ProgramHash.
Workload makeFuzzWorkload(uint64_t Seed, const FuzzKnobs &Knobs = FuzzKnobs());

/// Resolves a full fuzz name ("fuzz@SEED[:...]"); asserts on parse errors
/// (drivers validate first with parseFuzzSpec). Used by makeWorkload so
/// every driver that resolves workloads by name gets fuzz scenarios for
/// free.
Workload makeFuzzWorkloadFromSpec(const std::string &Name);

} // namespace trident

#endif // TRIDENT_WORKLOADS_FUZZ_FUZZGENERATOR_H
