//===- FuzzGenerator.cpp --------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "workloads/fuzz/FuzzGenerator.h"

#include "isa/ProgramBuilder.h"
#include "support/Check.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace trident;

namespace {

//===----------------------------------------------------------------------===//
// Spec parsing and the canonical name
//===----------------------------------------------------------------------===//

constexpr char kFuzzPrefix[] = "fuzz@";

/// Knob metadata: name, range, and accessor — one row per FuzzKnobs field,
/// shared by the parser (validation) and the name builder (canonical
/// order), so the two can never disagree about what a knob is called.
struct KnobInfo {
  const char *Name;
  uint64_t Min;
  uint64_t Max;
  uint64_t (*Get)(const FuzzKnobs &);
  void (*Set)(FuzzKnobs &, uint64_t);
};

constexpr KnobInfo kKnobs[] = {
    {"wset", 64, 131072, [](const FuzzKnobs &K) { return K.WsetKB; },
     [](FuzzKnobs &K, uint64_t V) { K.WsetKB = V; }},
    {"segs", 1, 8,
     [](const FuzzKnobs &K) { return uint64_t(K.Segments); },
     [](FuzzKnobs &K, uint64_t V) { K.Segments = unsigned(V); }},
    {"entropy", 0, 1000,
     [](const FuzzKnobs &K) { return uint64_t(K.EntropyPermille); },
     [](FuzzKnobs &K, uint64_t V) { K.EntropyPermille = unsigned(V); }},
    {"branch", 0, 1000,
     [](const FuzzKnobs &K) { return uint64_t(K.BranchPermille); },
     [](FuzzKnobs &K, uint64_t V) { K.BranchPermille = unsigned(V); }},
    {"phase", 64, 1'000'000,
     [](const FuzzKnobs &K) { return K.PhaseIters; },
     [](FuzzKnobs &K, uint64_t V) { K.PhaseIters = V; }},
    {"streams", 1, 10,
     [](const FuzzKnobs &K) { return uint64_t(K.Streams); },
     [](FuzzKnobs &K, uint64_t V) { K.Streams = unsigned(V); }},
};
constexpr size_t kNumKnobs = sizeof(kKnobs) / sizeof(kKnobs[0]);

bool parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 20)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Next = V * 10 + uint64_t(C - '0');
    if (Next < V) // overflow
      return false;
    V = Next;
  }
  Out = V;
  return true;
}

void setError(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
}

//===----------------------------------------------------------------------===//
// Segment planning
//===----------------------------------------------------------------------===//

// Memory map: each phase segment owns one 256MB region, so segments never
// alias each other's data; gather targets live in the region's upper half.
constexpr Addr kRegionBytes = 0x1000'0000;
constexpr Addr kFirstRegion = 0x1000'0000;

enum class SegKind : unsigned {
  StrideScan,   // N concurrent strided scans
  PointerChase, // chase over a (possibly shuffled) circular list
  Gather,       // indexed gather through a pointer array
  ObjectWalk,   // multi-field array-of-structs walk
  RandomProbe,  // LCG-driven unclassifiable probes
  NumKinds
};

const char *segKindName(SegKind K) {
  switch (K) {
  case SegKind::StrideScan:
    return "scan";
  case SegKind::PointerChase:
    return "chase";
  case SegKind::Gather:
    return "gather";
  case SegKind::ObjectWalk:
    return "walk";
  case SegKind::RandomProbe:
    return "probe";
  case SegKind::NumKinds:
    break;
  }
  TRIDENT_UNREACHABLE("bad segment kind");
  return "?";
}

/// One phase segment's generation plan. Plain values only: the workload's
/// Init lambda captures the vector by value, so building the data image is
/// as deterministic as emitting the code.
struct SegPlan {
  SegKind Kind = SegKind::StrideScan;
  Addr Base = 0;
  uint64_t Iters = 0;
  bool Branchy = false;
  // StrideScan
  unsigned NumStreams = 0;
  int64_t Strides[10] = {};
  Addr StreamStart[10] = {};
  // PointerChase / ObjectWalk
  uint64_t NumNodes = 0;
  unsigned NodeSize = 0;
  unsigned Layout = 0; // 0 sequential, 1 run-shuffled, 2 shuffled
  unsigned RunLength = 32;
  uint64_t ListSeed = 1;
  unsigned NumFields = 0;
  int64_t Fields[5] = {};
  bool HasStore = false;
  // Gather
  Addr TargetBase = 0;
  uint64_t Entries = 0;
  uint64_t TargetStride = 0;
  // RandomProbe
  uint64_t Mask = 0;
};

uint64_t pow2Floor(uint64_t V) {
  uint64_t P = 1;
  while (P * 2 <= V)
    P *= 2;
  return P;
}

bool roll(SplitMix64 &Rng, unsigned Permille) {
  return Rng.nextBelow(1000) < Permille;
}

/// Draws one stride: regular (from the set the 14 workloads use) or, with
/// the entropy probability, an irregular multiple of 8 in [-4096, 4096].
int64_t drawStride(SplitMix64 &Rng, unsigned EntropyPermille) {
  if (roll(Rng, EntropyPermille)) {
    int64_t S = 8 * int64_t(1 + Rng.nextBelow(512));
    if (Rng.nextBelow(4) == 0)
      S = -S;
    return S;
  }
  static constexpr int64_t kRegular[] = {8, 16, 64, 128, 256};
  return kRegular[Rng.nextBelow(5)];
}

/// Plans segment \p Idx. All draws come from \p Rng in a fixed order, so
/// the plan — and everything downstream of it — is a pure function of the
/// seed and knobs.
SegPlan planSegment(SplitMix64 &Rng, unsigned Idx, const FuzzKnobs &K) {
  SegPlan P;
  P.Kind = SegKind(Rng.nextBelow(unsigned(SegKind::NumKinds)));
  P.Base = kFirstRegion + Addr(Idx) * kRegionBytes;
  P.Branchy = roll(Rng, K.BranchPermille);
  const uint64_t WsetBytes = K.WsetKB * 1024;
  // Jitter the phase length ±25% so segments do not change phase in
  // lockstep; per-kind footprint caps below may lower it further.
  uint64_t Iters = std::max<uint64_t>(64, K.PhaseIters * (75 + Rng.nextBelow(51)) / 100);

  switch (P.Kind) {
  case SegKind::StrideScan: {
    P.NumStreams = 1 + unsigned(Rng.nextBelow(K.Streams));
    uint64_t Span = std::max<uint64_t>(4096, WsetBytes / P.NumStreams) & ~uint64_t(63);
    int64_t MaxAbs = 8;
    for (unsigned S = 0; S < P.NumStreams; ++S) {
      P.Strides[S] = drawStride(Rng, K.EntropyPermille);
      MaxAbs = std::max<int64_t>(MaxAbs, std::abs(P.Strides[S]));
      Addr StreamBase = P.Base + Addr(S) * Span + Addr(S) * 6400 % 4096;
      P.StreamStart[S] =
          P.Strides[S] > 0 ? StreamBase : StreamBase + Span - 64;
    }
    Iters = std::max<uint64_t>(
        64, std::min(Iters, Span / uint64_t(MaxAbs)));
    break;
  }
  case SegKind::PointerChase: {
    static constexpr unsigned kNodeSizes[] = {64, 128, 192, 256};
    P.NodeSize = kNodeSizes[Rng.nextBelow(4)];
    P.RunLength = 16u << Rng.nextBelow(3); // 16, 32, or 64
    P.NumNodes = std::clamp<uint64_t>(WsetBytes / P.NodeSize,
                                      std::max<uint64_t>(256, 2 * P.RunLength),
                                      uint64_t(1) << 17);
    P.Layout = roll(Rng, K.EntropyPermille) ? 2u : unsigned(Rng.nextBelow(2));
    P.ListSeed = Rng.next() | 1;
    P.NumFields = unsigned(Rng.nextBelow(4)); // 0..3 field loads
    for (unsigned F = 0; F < P.NumFields; ++F)
      P.Fields[F] = 8 * int64_t(1 + Rng.nextBelow(P.NodeSize / 8 - 1));
    break;
  }
  case SegKind::Gather: {
    if (roll(Rng, K.EntropyPermille))
      P.TargetStride = 8 * (1 + Rng.nextBelow(64));
    else {
      static constexpr uint64_t kRegular[] = {32, 64, 128};
      P.TargetStride = kRegular[Rng.nextBelow(3)];
    }
    P.TargetBase = P.Base + kRegionBytes / 2;
    // Array and targets must each fit their half region.
    P.Entries = std::clamp<uint64_t>(
        std::min(WsetBytes / 8, (kRegionBytes / 2) / P.TargetStride), 1024,
        uint64_t(1) << 21);
    P.NumFields = 1 + unsigned(Rng.nextBelow(3)); // 1..3 dereference loads
    for (unsigned F = 0; F < P.NumFields; ++F)
      P.Fields[F] = 8 * int64_t(Rng.nextBelow(16));
    Iters = std::max<uint64_t>(64, std::min(Iters, P.Entries));
    break;
  }
  case SegKind::ObjectWalk: {
    static constexpr unsigned kNodeSizes[] = {128, 192, 256};
    P.NodeSize = kNodeSizes[Rng.nextBelow(3)];
    P.NumFields = 2 + unsigned(Rng.nextBelow(4)); // 2..5 field loads
    for (unsigned F = 0; F < P.NumFields; ++F)
      P.Fields[F] = 8 * int64_t(Rng.nextBelow(P.NodeSize / 8));
    P.HasStore = Rng.nextBelow(2) == 0;
    Iters = std::max<uint64_t>(
        64, std::min(Iters, WsetBytes / P.NodeSize));
    break;
  }
  case SegKind::RandomProbe: {
    P.Mask = pow2Floor(std::max<uint64_t>(4096, WsetBytes)) - 8;
    break;
  }
  case SegKind::NumKinds:
    TRIDENT_UNREACHABLE("bad segment kind");
  }
  P.Iters = Iters;
  return P;
}

//===----------------------------------------------------------------------===//
// Code emission
//===----------------------------------------------------------------------===//

// Register map (shared by all segments; cursors are reloaded at each
// segment entry, so reuse across phases is safe):
//   r1..r10   cursors / stream bases
//   r11, r12  probe address and branch scratch
//   r13..r20  loaded data
//   r21..r23  FP accumulators
//   r26       LCG state (global: probes stay unpredictable across visits)
//   r27, r28  segment iteration counter / limit
// r29+ are optimizer scratch and must never be touched (isa/Opcode.h).

void emitBody(ProgramBuilder &B, const SegPlan &P, unsigned Idx) {
  const std::string Tag = std::to_string(Idx);
  switch (P.Kind) {
  case SegKind::StrideScan:
    for (unsigned S = 0; S < P.NumStreams; ++S) {
      B.load(13 + (S % 8), 1 + S, 0);
      B.aluImm(Opcode::AddI, 1 + S, 1 + S, P.Strides[S]);
    }
    if (P.Branchy) {
      B.aluImm(Opcode::AndI, 12, 13, 1);
      B.beq(12, 0, "skip" + Tag);
      B.fadd(22, 22, 13);
      B.label("skip" + Tag);
    }
    B.fadd(21, 21, 13 + ((P.NumStreams - 1) % 8));
    break;

  case SegKind::PointerChase:
    B.load(1, 1, 0); // p = p->next
    for (unsigned F = 0; F < P.NumFields; ++F)
      B.load(13 + F, 1, P.Fields[F]);
    if (P.Branchy) {
      B.aluImm(Opcode::AndI, 12, P.NumFields ? 13 : 1, 1);
      B.beq(12, 0, "skip" + Tag);
      B.fadd(22, 22, 1);
      B.label("skip" + Tag);
    }
    for (unsigned F = 0; F < P.NumFields; ++F)
      B.fadd(21, 21, 13 + F);
    break;

  case SegKind::Gather:
    B.load(2, 1, 0); // the gathered pointer
    for (unsigned F = 0; F < P.NumFields; ++F)
      B.load(13 + F, 2, P.Fields[F]);
    for (unsigned F = 0; F < P.NumFields; ++F)
      B.fadd(21, 21, 13 + F);
    if (P.Branchy) {
      B.aluImm(Opcode::AndI, 12, 13, 1);
      B.beq(12, 0, "skip" + Tag);
      B.fadd(22, 22, 13);
      B.label("skip" + Tag);
    }
    B.addi(1, 1, 8);
    break;

  case SegKind::ObjectWalk:
    for (unsigned F = 0; F < P.NumFields; ++F)
      B.load(13 + F, 1, P.Fields[F]);
    for (unsigned F = 0; F < P.NumFields; ++F)
      B.fadd(21, 21, 13 + F);
    if (P.Branchy) {
      B.aluImm(Opcode::AndI, 12, 13, 1);
      B.beq(12, 0, "skip" + Tag);
      B.fadd(22, 22, 13);
      B.label("skip" + Tag);
    }
    if (P.HasStore)
      B.store(1, int64_t(P.NodeSize) - 8, 21);
    B.addi(1, 1, int64_t(P.NodeSize));
    break;

  case SegKind::RandomProbe:
    B.aluImm(Opcode::MulI, 26, 26, 6364136223846793005ll);
    B.addi(26, 26, 1442695040888963407ll);
    B.aluImm(Opcode::ShrI, 11, 26, 33);
    B.aluImm(Opcode::AndI, 11, 11, int64_t(P.Mask) & ~int64_t(7));
    B.alu(Opcode::Add, 11, 10, 11); // r10 = region base
    if (P.Branchy) {
      B.aluImm(Opcode::ShrI, 12, 26, 5);
      B.aluImm(Opcode::AndI, 12, 12, 1);
      B.beq(12, 0, "skip" + Tag);
      B.load(13, 11, 0);
      B.fadd(22, 22, 13);
      B.label("skip" + Tag);
      B.load(14, 11, 8);
    } else {
      B.load(13, 11, 0);
      B.fadd(21, 21, 13);
    }
    break;

  case SegKind::NumKinds:
    TRIDENT_UNREACHABLE("bad segment kind");
  }
}

void emitSegmentEntry(ProgramBuilder &B, const SegPlan &P) {
  switch (P.Kind) {
  case SegKind::StrideScan:
    for (unsigned S = 0; S < P.NumStreams; ++S)
      B.loadImm(1 + S, int64_t(P.StreamStart[S]));
    break;
  case SegKind::PointerChase:
  case SegKind::Gather:
  case SegKind::ObjectWalk:
    B.loadImm(1, int64_t(P.Base));
    break;
  case SegKind::RandomProbe:
    B.loadImm(10, int64_t(P.Base));
    break;
  case SegKind::NumKinds:
    TRIDENT_UNREACHABLE("bad segment kind");
  }
  B.loadImm(27, 0);
  B.loadImm(28, int64_t(P.Iters));
}

} // namespace

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

bool trident::isFuzzSpec(const std::string &Name) {
  return Name.rfind(kFuzzPrefix, 0) == 0;
}

bool trident::parseFuzzSpec(const std::string &Spec, uint64_t &Seed,
                            FuzzKnobs &Knobs, std::string *Error) {
  std::string Body = Spec;
  if (isFuzzSpec(Body))
    Body = Body.substr(std::strlen(kFuzzPrefix));
  const size_t Colon = Body.find(':');
  const std::string SeedStr = Body.substr(0, Colon);
  if (!parseUint(SeedStr, Seed)) {
    setError(Error, "seed '" + SeedStr + "' is not a decimal uint64");
    return false;
  }
  Knobs = FuzzKnobs();
  if (Colon == std::string::npos)
    return true;

  bool Seen[kNumKnobs] = {};
  std::string Rest = Body.substr(Colon + 1);
  size_t Pos = 0;
  while (Pos <= Rest.size()) {
    size_t Comma = Rest.find(',', Pos);
    std::string Item = Rest.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Rest.size() + 1 : Comma + 1;
    const size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      setError(Error, "knob '" + Item + "' is not name=value");
      return false;
    }
    const std::string Key = Item.substr(0, Eq);
    uint64_t Value = 0;
    if (!parseUint(Item.substr(Eq + 1), Value)) {
      setError(Error, "knob '" + Key + "' value '" + Item.substr(Eq + 1) +
                          "' is not a decimal integer");
      return false;
    }
    size_t K = 0;
    for (; K < kNumKnobs; ++K)
      if (Key == kKnobs[K].Name)
        break;
    if (K == kNumKnobs) {
      setError(Error, "unknown knob '" + Key +
                          "' (have wset, segs, entropy, branch, phase, "
                          "streams)");
      return false;
    }
    if (Seen[K]) {
      setError(Error, "duplicate knob '" + Key + "'");
      return false;
    }
    Seen[K] = true;
    if (Value < kKnobs[K].Min || Value > kKnobs[K].Max) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "knob '%s' value %llu out of range [%llu, %llu]",
                    kKnobs[K].Name, (unsigned long long)Value,
                    (unsigned long long)kKnobs[K].Min,
                    (unsigned long long)kKnobs[K].Max);
      setError(Error, Buf);
      return false;
    }
    kKnobs[K].Set(Knobs, Value);
  }
  return true;
}

std::string trident::fuzzWorkloadName(uint64_t Seed, const FuzzKnobs &Knobs) {
  std::string Name = kFuzzPrefix + std::to_string(Seed);
  const FuzzKnobs Defaults;
  char Sep = ':';
  for (const KnobInfo &K : kKnobs) {
    if (K.Get(Knobs) == K.Get(Defaults))
      continue;
    Name += Sep;
    Sep = ',';
    Name += K.Name;
    Name += '=';
    Name += std::to_string(K.Get(Knobs));
  }
  return Name;
}

Workload trident::makeFuzzWorkload(uint64_t Seed, const FuzzKnobs &Knobs) {
  // Fold the knob vector into the RNG seed so scenarios that share a seed
  // but differ in one knob diverge completely, not just where the knob is
  // consulted.
  SplitMix64 Salt(Seed);
  uint64_t State = Salt.next();
  const FuzzKnobs Defaults;
  for (const KnobInfo &K : kKnobs)
    if (K.Get(Knobs) != K.Get(Defaults))
      State = (State ^ K.Get(Knobs)) * 0x100000001b3ull;
  SplitMix64 Rng(State);

  std::vector<SegPlan> Plans;
  Plans.reserve(Knobs.Segments);
  for (unsigned I = 0; I < Knobs.Segments; ++I)
    Plans.push_back(planSegment(Rng, I, Knobs));

  ProgramBuilder B;
  B.loadImm(26, 88172645463325252ll); // LCG state for probe segments
  B.loadImm(21, 0).loadImm(22, 0).loadImm(23, 0);
  B.label("outer");
  std::string Kinds;
  for (unsigned I = 0; I < Knobs.Segments; ++I) {
    const SegPlan &P = Plans[I];
    if (!Kinds.empty())
      Kinds += '+';
    Kinds += segKindName(P.Kind);
    emitSegmentEntry(B, P);
    B.label("seg" + std::to_string(I));
    emitBody(B, P, I);
    B.addi(27, 27, 1);
    B.blt(27, 28, "seg" + std::to_string(I));
  }
  B.jump("outer");
  B.halt();

  Workload W;
  W.Name = fuzzWorkloadName(Seed, Knobs);
  W.Description = "fuzzed (" + Kinds + ")";
  W.Prog = B.finish();
  W.Init = [Plans = std::move(Plans)](DataMemory &M) {
    for (const SegPlan &P : Plans) {
      switch (P.Kind) {
      case SegKind::PointerChase:
        if (P.Layout == 0)
          buildLinkedList(M, P.Base, P.NumNodes, P.NodeSize, 0,
                          /*Shuffled=*/false, P.ListSeed);
        else if (P.Layout == 1)
          buildRunShuffledList(M, P.Base, P.NumNodes, P.NodeSize, 0,
                               P.RunLength, P.ListSeed);
        else
          buildLinkedList(M, P.Base, P.NumNodes, P.NodeSize, 0,
                          /*Shuffled=*/true, P.ListSeed);
        break;
      case SegKind::Gather:
        buildPointerArray(M, P.Base, P.Entries, P.TargetBase, P.TargetStride);
        break;
      case SegKind::StrideScan:
      case SegKind::ObjectWalk:
      case SegKind::RandomProbe:
        break; // no data image: values are irrelevant, only addresses
      case SegKind::NumKinds:
        TRIDENT_UNREACHABLE("bad segment kind");
      }
    }
  };
  W.ProgramHash = programHash(W.Prog);
  return W;
}

Workload trident::makeFuzzWorkloadFromSpec(const std::string &Name) {
  uint64_t Seed = 0;
  FuzzKnobs Knobs;
  std::string Error;
  TRIDENT_CHECK(parseFuzzSpec(Name, Seed, Knobs, &Error),
                "bad fuzz spec '%s': %s", Name.c_str(), Error.c_str());
  return makeFuzzWorkload(Seed, Knobs);
}
