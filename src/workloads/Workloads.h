//===- Workloads.h - The 14 synthetic benchmark programs -------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's 14 evaluated benchmarks (SPEC 2000
/// subset + pointer-intensive applications). We cannot run the original
/// Alpha binaries, so each program here is engineered to the memory
/// behaviour the paper attributes to its namesake — stride streams,
/// pointer chases over sequentially or randomly allocated nodes,
/// multi-field object walks, low-trace-coverage irregular code — with
/// working sets that exceed the 4MB L3. See DESIGN.md §6 for the map.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_WORKLOADS_WORKLOADS_H
#define TRIDENT_WORKLOADS_WORKLOADS_H

#include "isa/Program.h"
#include "mem/DataMemory.h"

#include <functional>
#include <string>
#include <vector>

namespace trident {

struct Workload {
  std::string Name;
  std::string Description;
  Program Prog;
  /// Initializes data memory (linked lists, pointer arrays, ...).
  std::function<void(DataMemory &)> Init;
  /// FNV-1a over the program's entry PC and every instruction's packed
  /// encoding — a stable identity for generated programs. Filled by every
  /// registration path (named, spec-based, and fuzzed builders all share
  /// finalizeWorkload), but only exported into the stat registry for fuzz
  /// scenarios, so the solo golden corpus is byte-identical to older
  /// builds.
  uint64_t ProgramHash = 0;
};

/// FNV-1a hash of a program image (entry PC + packed instruction words).
uint64_t programHash(const Program &P);

/// Names of all 14 benchmarks, in the paper's order.
const std::vector<std::string> &workloadNames();

/// Builds the named workload: one of the 14 benchmarks, or a fuzz spec
/// ("fuzz@SEED[:knob=v,...]" — see workloads/fuzz/FuzzGenerator.h). All
/// drivers, benches, and the mix scheduler resolve workloads through this
/// single entry point, so fuzz scenarios inherit stats, memoization, and
/// fingerprint coverage for free. Asserts on unknown names.
Workload makeWorkload(const std::string &Name);

/// Builds every named workload (the fixed 14; fuzz scenarios are an
/// unbounded family and are built by spec).
std::vector<Workload> makeAllWorkloads();

// Reusable generators, exposed for tests and custom examples. -----------

/// Builds a circular singly linked list of \p NumNodes nodes of
/// \p NodeSize bytes starting at \p Base. The link pointer lives at
/// \p LinkOffset within the node. When \p Shuffled, the traversal order is
/// a random permutation (destroying the allocation-order stride);
/// otherwise nodes link in address order (so the chasing load is
/// stride-predictable, as the paper observes for regularly allocated
/// structures). Returns the address of the first node in traversal order.
Addr buildLinkedList(DataMemory &Mem, Addr Base, uint64_t NumNodes,
                     unsigned NodeSize, unsigned LinkOffset, bool Shuffled,
                     uint64_t Seed = 1);

/// Like buildLinkedList, but shuffles *runs* of \p RunLength nodes: links
/// are sequential within a run and jump randomly between runs — the
/// allocation pattern of a heap after some churn. The chasing load stays
/// mostly stride-predictable while the hardware prefetcher loses its
/// stream at every run boundary.
Addr buildRunShuffledList(DataMemory &Mem, Addr Base, uint64_t NumNodes,
                          unsigned NodeSize, unsigned LinkOffset,
                          unsigned RunLength, uint64_t Seed = 1);

/// Fills ptr[0..Count) at \p ArrayBase with pointers Target + i*Stride
/// (an equake-style indirection array over regularly allocated data).
void buildPointerArray(DataMemory &Mem, Addr ArrayBase, uint64_t Count,
                       Addr Target, uint64_t Stride);

// Parameterized whole-workload generators: build your own benchmark from
// the same building blocks the 14 named ones use. ----------------------

/// A loop of \p NumStreams concurrent strided scans.
struct StrideLoopSpec {
  unsigned NumStreams = 4;
  int64_t Stride = 64;
  /// Dependent FP operations per iteration (lengthens the iteration).
  unsigned ComputeChain = 4;
  /// Base address of stream 0; streams are placed 64MB apart, staggered
  /// across cache sets.
  Addr Base = 0x1000'0000;
  /// Include a store stream (write-allocate traffic).
  bool StoreStream = false;
};
Workload makeStrideLoopWorkload(const StrideLoopSpec &Spec,
                                const std::string &Name = "stride-loop");

/// A pointer chase over a circular list, with optional field loads.
struct PointerChaseSpec {
  uint64_t NumNodes = 1 << 16;
  unsigned NodeSize = 128;
  /// Offsets (within the node) of additional field loads; offsets past
  /// the first cache line create same-object prefetch opportunities.
  std::vector<int64_t> FieldOffsets = {8, 72};
  /// Layout: Sequential (DLT-stride-predictable), RunShuffled (runs of
  /// RunLength sequential nodes), or Shuffled (fully random).
  enum class Layout { Sequential, RunShuffled, Shuffled } NodeLayout =
      Layout::RunShuffled;
  unsigned RunLength = 32;
  Addr Base = 0x1000'0000;
  uint64_t Seed = 1;
};
Workload makePointerChaseWorkload(const PointerChaseSpec &Spec,
                                  const std::string &Name = "chase");

/// An indexed gather: ld p, (idx); ld x, off(p) over a pointer array.
struct GatherSpec {
  uint64_t Entries = 1 << 21;
  /// Stride between the pointed-to objects (regular allocation).
  uint64_t TargetStride = 64;
  /// Field offsets dereferenced off each gathered pointer.
  std::vector<int64_t> FieldOffsets = {0, 8};
  Addr ArrayBase = 0x1000'0000;
  Addr TargetBase = 0x2000'0000;
};
Workload makeGatherWorkload(const GatherSpec &Spec,
                            const std::string &Name = "gather");

} // namespace trident

#endif // TRIDENT_WORKLOADS_WORKLOADS_H
