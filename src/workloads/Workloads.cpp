//===- Workloads.cpp ------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "isa/ProgramBuilder.h"
#include "support/Random.h"
#include "support/Check.h"
#include "workloads/fuzz/FuzzGenerator.h"

#include <algorithm>

using namespace trident;

uint64_t trident::programHash(const Program &P) {
  uint64_t H = 1469598103934665603ull;
  auto fold = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I)
      H = (H ^ ((V >> (8 * I)) & 0xFF)) * 1099511628211ull;
  };
  fold(P.entryPC());
  for (Addr PC = P.basePC(); PC < P.endPC(); ++PC)
    for (uint64_t Word : P.at(PC).encode())
      fold(Word);
  return H;
}

//===----------------------------------------------------------------------===//
// Data-image generators
//===----------------------------------------------------------------------===//

Addr trident::buildLinkedList(DataMemory &Mem, Addr Base, uint64_t NumNodes,
                              unsigned NodeSize, unsigned LinkOffset,
                              bool Shuffled, uint64_t Seed) {
  TRIDENT_CHECK(NumNodes >= 2, "list needs at least two nodes");
  std::vector<uint64_t> Order(NumNodes);
  for (uint64_t I = 0; I < NumNodes; ++I)
    Order[I] = I;
  if (Shuffled) {
    SplitMix64 Rng(Seed);
    shuffle(Order, Rng);
    // Rotate so node 0 (at Base) leads the traversal: callers can start
    // chasing at Base without searching for the head.
    for (uint64_t I = 0; I < NumNodes; ++I) {
      if (Order[I] == 0) {
        std::rotate(Order.begin(), Order.begin() + I, Order.end());
        break;
      }
    }
  }
  auto nodeAddr = [&](uint64_t Idx) { return Base + Idx * NodeSize; };
  for (uint64_t I = 0; I < NumNodes; ++I) {
    Addr Cur = nodeAddr(Order[I]);
    Addr Next = nodeAddr(Order[(I + 1) % NumNodes]);
    Mem.write64(Cur + LinkOffset, Next);
  }
  return nodeAddr(Order[0]);
}

Addr trident::buildRunShuffledList(DataMemory &Mem, Addr Base,
                                   uint64_t NumNodes, unsigned NodeSize,
                                   unsigned LinkOffset, unsigned RunLength,
                                   uint64_t Seed) {
  TRIDENT_CHECK(RunLength >= 1 && NumNodes >= 2 * RunLength, "need at least two runs");
  uint64_t NumRuns = NumNodes / RunLength;
  std::vector<uint64_t> RunOrder(NumRuns);
  for (uint64_t I = 0; I < NumRuns; ++I)
    RunOrder[I] = I;
  SplitMix64 Rng(Seed);
  shuffle(RunOrder, Rng);
  for (uint64_t I = 0; I < NumRuns; ++I) {
    if (RunOrder[I] == 0) {
      std::rotate(RunOrder.begin(), RunOrder.begin() + I, RunOrder.end());
      break;
    }
  }
  auto nodeAddr = [&](uint64_t Run, uint64_t K) {
    return Base + (Run * RunLength + K) * NodeSize;
  };
  for (uint64_t I = 0; I < NumRuns; ++I) {
    uint64_t Run = RunOrder[I];
    for (unsigned K = 0; K + 1 < RunLength; ++K)
      Mem.write64(nodeAddr(Run, K) + LinkOffset, nodeAddr(Run, K + 1));
    uint64_t NextRun = RunOrder[(I + 1) % NumRuns];
    Mem.write64(nodeAddr(Run, RunLength - 1) + LinkOffset,
                nodeAddr(NextRun, 0));
  }
  return nodeAddr(RunOrder[0], 0);
}

void trident::buildPointerArray(DataMemory &Mem, Addr ArrayBase,
                                uint64_t Count, Addr Target,
                                uint64_t Stride) {
  for (uint64_t I = 0; I < Count; ++I)
    Mem.write64(ArrayBase + I * 8, Target + I * Stride);
}

//===----------------------------------------------------------------------===//
// Shared emission helpers
//===----------------------------------------------------------------------===//

namespace {

// Memory map: one 256MB region per role, far apart so streams never alias.
constexpr Addr RegionA = 0x1000'0000;
constexpr Addr RegionB = 0x2000'0000;
constexpr Addr RegionC = 0x3000'0000;
constexpr Addr RegionD = 0x4000'0000;
constexpr Addr RegionE = 0x5000'0000;
constexpr int64_t FarLimit = int64_t(1) << 40; // "never" reached

/// Dependent FP chain: lengthens the loop iteration (each FAdd is 4 cy).
void emitFpChain(ProgramBuilder &B, unsigned N, unsigned Acc, unsigned Src) {
  for (unsigned I = 0; I < N; ++I)
    B.fadd(Acc, Acc, Src);
}

/// Independent-ish FP filler across three accumulators (ILP-friendly).
void emitFpFiller(ProgramBuilder &B, unsigned N, unsigned Src) {
  static const unsigned Accs[3] = {21, 22, 23};
  for (unsigned I = 0; I < N; ++I)
    B.fadd(Accs[I % 3], Accs[I % 3], Src);
}

} // namespace

//===----------------------------------------------------------------------===//
// The 14 benchmarks
//===----------------------------------------------------------------------===//

namespace {

/// swim: pure unit-stride streaming over huge arrays. The hardware stream
/// buffers already cover it; software prefetching adds little (Fig. 9).
Workload makeSwim() {
  ProgramBuilder B;
  B.loadImm(1, RegionA).loadImm(2, RegionB).loadImm(3, RegionC);
  B.loadImm(27, RegionA + (64ull << 20)); // reset point far away
  B.label("outer");
  B.label("loop");
  B.load(6, 1, 0).load(7, 2, 0);
  B.fadd(8, 6, 7);
  B.store(3, 0, 8);
  B.addi(1, 1, 8).addi(2, 2, 8).addi(3, 3, 8);
  B.blt(1, 27, "loop");
  B.loadImm(1, RegionA).loadImm(2, RegionB).loadImm(3, RegionC);
  B.jump("outer");
  B.halt();
  return {"swim", "unit-stride streaming (HW-prefetch friendly)",
          B.finish(), [](DataMemory &) {}};
}

/// equake: indexed sparse gather — a pointer-array load feeding
/// dereference loads over regularly allocated data (short strides).
Workload makeEquake() {
  constexpr uint64_t Entries = 2'000'000;
  ProgramBuilder B;
  B.loadImm(1, RegionA);
  B.loadImm(27, RegionA + Entries * 8);
  B.label("outer");
  B.label("loop");
  B.load(2, 1, 0);  // pointer load, stride-8 base
  B.load(6, 2, 0);  // gathered data (pointer class; targets stride 64)
  B.load(7, 2, 8);  // second field of the same object
  B.fadd(8, 6, 7);
  B.fadd(9, 9, 8);
  B.addi(1, 1, 8);
  B.blt(1, 27, "loop");
  B.loadImm(1, RegionA);
  B.jump("outer");
  B.halt();
  return {"equake", "indexed gather over regular data", B.finish(),
          [](DataMemory &M) {
            buildPointerArray(M, RegionA, Entries, RegionB, 64);
          }};
}

/// applu: a >1000-instruction unit-stride FP inner loop. Iteration time
/// exceeds the memory latency, so a prefetch distance of 1 is already
/// optimal — self-repairing adds nothing here (Fig. 5 discussion).
Workload makeApplu() {
  constexpr unsigned Unroll = 48;
  ProgramBuilder B;
  B.loadImm(1, RegionA).loadImm(2, RegionB).loadImm(3, RegionC);
  B.loadImm(27, RegionA + (256ull << 20));
  B.label("loop");
  for (unsigned K = 0; K < Unroll; ++K) {
    int64_t Off = int64_t(K) * 8;
    B.load(6, 1, Off).load(7, 2, Off);
    B.fadd(8, 6, 7);
    B.store(3, Off, 8);
    emitFpChain(B, 6, 9, 8); // dependent chain: long iteration
  }
  B.addi(1, 1, Unroll * 8).addi(2, 2, Unroll * 8).addi(3, 3, Unroll * 8);
  B.blt(1, 27, "loop");
  B.loadImm(1, RegionA).loadImm(2, RegionB).loadImm(3, RegionC);
  B.jump("loop");
  B.halt();
  return {"applu", ">1000-instr inner loop; distance 1 optimal", B.finish(),
          [](DataMemory &) {}};
}

/// art: strided scans of large matrices with a little reuse arithmetic.
Workload makeArt() {
  ProgramBuilder B;
  // Ten stride-128 scans (a fresh line per stream per iteration): more
  // streams than the 8 stream buffers can hold, so the baseline misses
  // hard — which is also what makes the basic distance estimate see real
  // miss latencies and land on a sensible distance.
  for (unsigned K = 0; K < 10; ++K)
    B.loadImm(1 + K, RegionA + uint64_t(K) * 0x0400'0000 +
                         uint64_t(K) * 6400); // stagger L1 sets
  B.loadImm(26, 0).loadImm(27, FarLimit);
  B.label("loop");
  for (unsigned K = 0; K < 10; ++K) {
    B.load(11 + K, 1 + K, 0);
    B.aluImm(Opcode::AddI, 1 + K, 1 + K, 128);
  }
  B.fmul(21, 11, 12);
  B.fadd(22, 13, 14);
  B.fadd(22, 22, 15);
  B.fadd(23, 16, 17);
  B.fadd(23, 23, 18);
  B.fadd(24, 19, 20);
  B.fadd(25, 21, 22);
  B.fadd(25, 25, 23);
  B.fadd(25, 25, 24);
  B.addi(26, 26, 1);
  B.blt(26, 27, "loop");
  B.halt();
  return {"art", "ten stride-128 scans (stream-buffer overflow)", B.finish(),
          [](DataMemory &) {}};
}

/// facerec: medium strided loop whose iteration time makes the naive
/// distance estimate land on the right answer.
Workload makeFacerec() {
  ProgramBuilder B;
  // Ten concurrent line streams: more than the 8 stream buffers track, so
  // hardware prefetching leaves latency on the table that the naive
  // software estimate already recovers.
  for (unsigned K = 0; K < 10; ++K)
    B.loadImm(1 + K, RegionA + uint64_t(K) * 0x0200'0000 +
                         uint64_t(K) * 6400); // stagger L1 sets
  B.loadImm(26, 0).loadImm(27, FarLimit);
  B.label("loop");
  for (unsigned K = 0; K < 10; ++K) {
    B.load(11 + K, 1 + K, 0);
    B.aluImm(Opcode::AddI, 1 + K, 1 + K, 64);
  }
  B.fadd(21, 11, 12);
  B.fadd(21, 21, 13);
  B.fadd(22, 14, 15);
  B.fadd(22, 22, 16);
  emitFpChain(B, 4, 23, 21);
  B.addi(26, 26, 1);
  B.blt(26, 27, "loop");
  B.halt();
  return {"facerec", "ten line streams; naive estimate sufficient",
          B.finish(), [](DataMemory &) {}};
}

/// fma3d: array-of-structs walk touching many fields per 128-byte object;
/// same-object grouping covers the whole object with few prefetches.
Workload makeFma3d() {
  ProgramBuilder B;
  B.loadImm(1, RegionA);
  B.loadImm(27, RegionA + (192ull << 20));
  B.label("loop");
  B.load(6, 1, 0).load(7, 1, 8).load(8, 1, 16);
  B.load(9, 1, 72).load(10, 1, 96);
  B.fadd(11, 6, 7);
  B.fadd(11, 11, 8);
  B.fadd(12, 9, 10);
  B.fadd(13, 13, 12);
  emitFpFiller(B, 5, 11);
  B.store(1, 24, 11);
  B.addi(1, 1, 128);
  B.blt(1, 27, "loop");
  B.loadImm(1, RegionA);
  B.jump("loop");
  B.halt();
  return {"fma3d", "array-of-structs, multi-field objects", B.finish(),
          [](DataMemory &) {}};
}

/// galgel: twelve concurrent large-stride (column-major) streams — more
/// streams than the 8 stream buffers can track, but trivial for per-PC
/// software prefetches.
Workload makeGalgel() {
  ProgramBuilder B;
  // Padded rows (4096+64) so columns do not camp on a few L1 sets, and
  // staggered bases so the twelve streams spread over the cache.
  for (unsigned K = 0; K < 12; ++K)
    B.loadImm(1 + K, RegionA + uint64_t(K) * 0x0400'0000 + uint64_t(K) * 320);
  B.loadImm(26, 0);
  B.loadImm(27, FarLimit);
  B.label("loop");
  for (unsigned K = 0; K < 12; ++K) {
    B.load(13 + K, 1 + K, 0);
    B.aluImm(Opcode::AddI, 1 + K, 1 + K, 4160);
  }
  B.fadd(25, 25, 13);
  B.fadd(25, 25, 14);
  B.fadd(25, 25, 15);
  B.fadd(25, 25, 16);
  B.addi(26, 26, 1);
  B.blt(26, 27, "loop");
  B.halt();
  return {"galgel", "12 large-stride column streams (buffer thrash)",
          B.finish(), [](DataMemory &) {}};
}

/// mcf: pointer chasing over sequentially allocated 128-byte nodes with
/// several fields per node — the showcase for DLT stride detection on
/// pointer loads, whole-object prefetching, and adaptive distance.
Workload makeMcf() {
  constexpr uint64_t Nodes = 131072; // 16MB circular list
  ProgramBuilder B;
  B.loadImm(1, RegionA);
  B.loadImm(4, 0).loadImm(5, FarLimit);
  B.label("loop");
  B.load(1, 1, 0); // chase (self-pointer; DLT sees stride 128)
  B.load(6, 1, 8).load(7, 1, 16);
  B.load(8, 1, 72).load(9, 1, 96);
  B.fadd(10, 6, 7);
  B.fadd(10, 10, 8);
  B.fadd(11, 10, 9);
  B.fadd(12, 12, 11);
  B.store(1, 24, 10);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  return {"mcf", "pointer chase + wide nodes (adaptive showcase)",
          B.finish(), [](DataMemory &M) {
            // Mostly sequential allocation with churn: runs of 32 nodes.
            buildRunShuffledList(M, RegionA, Nodes, 128, 0, /*RunLength=*/32,
                                 /*Seed=*/3);
          }};
}

/// mgrid: 3D stencil — nine far-apart offsets off one walking base; more
/// concurrent line streams than the hardware buffers track.
Workload makeMgrid() {
  ProgramBuilder B;
  B.loadImm(1, RegionA + (8ull << 20)); // start away from region edge
  B.loadImm(2, RegionB);
  B.loadImm(3, RegionC);
  B.loadImm(27, RegionA + (192ull << 20));
  B.label("loop");
  // Stencil offsets use padded row/plane sizes (not multiples of the L1
  // way size) so the nine streams spread across cache sets.
  B.load(6, 1, 0).load(7, 1, 8).load(8, 1, -8);
  B.load(9, 1, 4160).load(10, 1, -4160);
  B.load(11, 1, 2125760).load(12, 1, -2125760);
  B.load(13, 1, 8320).load(14, 1, -8320);
  B.load(15, 2, 0).load(16, 2, 4160);
  B.fadd(17, 6, 7);
  B.fadd(17, 17, 8);
  B.fadd(18, 9, 10);
  B.fadd(18, 18, 11);
  B.fadd(19, 12, 13);
  B.fadd(19, 19, 14);
  B.fadd(20, 15, 16);
  B.fadd(21, 17, 18);
  B.fadd(21, 21, 19);
  B.fadd(21, 21, 20);
  B.store(3, 0, 21);
  B.addi(1, 1, 8).addi(2, 2, 8320).addi(3, 3, 8); // r2: fast column walk
  B.blt(1, 27, "loop");
  B.loadImm(1, RegionA + (4ull << 20)).loadImm(2, RegionB).loadImm(3, RegionC);
  B.jump("loop");
  B.halt();
  return {"mgrid", "3D stencil, eleven concurrent streams", B.finish(),
          [](DataMemory &) {}};
}

/// dot: pointer-intensive with *randomized* layout plus an unstable-branch
/// probe phase — low hot-trace coverage; jump-pointer (whole-object)
/// prefetching is what helps (Figs. 4, 5).
Workload makeDot() {
  constexpr uint64_t Nodes = 131072; // 16MB shuffled circular list
  ProgramBuilder B;
  B.loadImm(1, 0);           // chase cursor, loaded by Init via r1 seed below
  B.loadImm(26, RegionB);    // probe region
  B.loadImm(11, 88172645463325252ull); // LCG state
  B.loadImm(1, RegionA);     // head (Init links node 0 first in order)
  B.label("outer");
  // Phase 1: stable chase over the shuffled list.
  B.loadImm(4, 0).loadImm(5, 3000);
  B.label("p1");
  B.load(1, 1, 0);
  B.load(6, 1, 8).load(7, 1, 16);
  B.fadd(8, 6, 7); // consume near fields before touching the far line
  B.load(2, 1, 72).load(10, 1, 104); // far fields: second node line
  B.fadd(8, 8, 2);
  B.fadd(8, 8, 10);
  B.fadd(9, 9, 8);
  B.addi(4, 4, 1);
  B.blt(4, 5, "p1");
  // Phase 2: unstable random probes (never forms a stable trace).
  B.loadImm(4, 0).loadImm(18, 2500);
  B.label("p2");
  B.aluImm(Opcode::MulI, 11, 11, 6364136223846793005ll);
  B.addi(11, 11, 1442695040888963407ll);
  B.aluImm(Opcode::ShrI, 12, 11, 33);
  B.aluImm(Opcode::AndI, 12, 12, 0x00FF'FFC0);
  B.alu(Opcode::Add, 13, 26, 12);
  B.aluImm(Opcode::ShrI, 14, 11, 5);
  B.aluImm(Opcode::AndI, 14, 14, 1);
  B.beq(14, 0, "p2skip");
  B.load(15, 13, 0);
  B.fadd(16, 16, 15);
  B.label("p2skip");
  B.load(17, 13, 8);
  B.addi(4, 4, 1);
  B.blt(4, 18, "p2");
  B.jump("outer");
  B.halt();
  return {"dot", "random-layout chase + unstable probes (low coverage)",
          B.finish(), [](DataMemory &M) {
            [[maybe_unused]] Addr Head = buildLinkedList(
                M, RegionA, Nodes, 128, 0, /*Shuffled=*/true, /*Seed=*/7);
            TRIDENT_CHECK(Head == RegionA, "rotated list must lead at Base");
          }};
}

/// parser: 48 small hot loops — 36 doing unclassifiable hash probes (they
/// mature without prefetches and pressure the DLT) and 12 doing short
/// pointer chases that only get prefetched when the DLT is big enough to
/// keep their entries live (the Fig. 8 story).
Workload makeParser() {
  constexpr uint64_t ChaseNodes = 65536; // 4MB shuffled list
  ProgramBuilder B;
  B.loadImm(27, RegionB); // probe region base
  B.loadImm(3, 1);        // global probe counter
  B.loadImm(1, RegionA);  // chase cursor
  B.label("block0");
  for (unsigned Blk = 0; Blk < 48; ++Blk) {
    if (Blk != 0)
      B.label("block" + std::to_string(Blk));
    B.loadImm(4, 0).loadImm(5, 256);
    B.label("loop" + std::to_string(Blk));
    if (Blk % 4 == 3) {
      // Chase block: short pointer-chasing burst.
      B.load(1, 1, 0);
      B.load(6, 1, 8).load(7, 1, 16).load(8, 1, 24);
      B.fadd(9, 6, 7);
      B.fadd(9, 9, 8);
      B.fadd(10, 10, 9);
    } else {
      // Probe block: 12 pseudo-random hash probes, unclassifiable.
      for (unsigned P = 0; P < 12; ++P) {
        int64_t K = 0x9E3779B1 + int64_t(Blk * 131 + P * 2654435761ull);
        B.aluImm(Opcode::MulI, 12, 3, K);
        B.aluImm(Opcode::ShrI, 12, 12, 16);
        B.aluImm(Opcode::AndI, 12, 12, 0x00FF'FFF8);
        B.alu(Opcode::Add, 13, 27, 12);
        B.load(14 + (P % 8), 13, 0);
      }
      B.addi(3, 3, 1);
    }
    B.addi(4, 4, 1);
    B.blt(4, 5, "loop" + std::to_string(Blk));
    if (Blk + 1 < 48)
      B.jump("block" + std::to_string(Blk + 1));
  }
  B.jump("block0");
  B.halt();
  return {"parser", "48 loops: hash probes + short chases (DLT pressure)",
          B.finish(), [](DataMemory &M) {
            [[maybe_unused]] Addr Head = buildLinkedList(
                M, RegionA, ChaseNodes, 64, 0, /*Shuffled=*/true,
                /*Seed=*/13);
            TRIDENT_CHECK(Head == RegionA, "rotated list must lead at Base");
          }};
}

/// gap: one hot chase loop that covers most of its misses, plus a cold
/// loop with 18 data-dependent branches per iteration — uncapturable, so
/// its misses stay outside hot traces (low trace coverage, Fig. 4).
Workload makeGap() {
  constexpr uint64_t Nodes = 131072; // 8MB sequential circular list
  ProgramBuilder B;
  B.loadImm(1, RegionA);
  B.loadImm(2, RegionB);
  B.loadImm(26, RegionB + (128ull << 20));
  B.label("outer");
  B.loadImm(4, 0).loadImm(5, 4096);
  B.label("hot");
  B.load(1, 1, 0);
  B.load(6, 1, 8).load(7, 1, 16);
  B.fadd(8, 6, 7);
  B.fadd(9, 9, 8);
  B.addi(4, 4, 1);
  B.blt(4, 5, "hot");
  B.loadImm(4, 0).loadImm(5, 2800);
  B.label("cold");
  B.load(10, 2, 0);
  B.addi(2, 2, 64);
  for (unsigned K = 0; K < 18; ++K) {
    B.aluImm(Opcode::AndI, 11, 4, int64_t(1) << (K % 10));
    B.beq(11, 0, "skip" + std::to_string(K));
    B.fadd(12, 12, 10);
    B.label("skip" + std::to_string(K));
  }
  B.addi(4, 4, 1);
  B.blt(4, 5, "cold");
  B.blt(2, 26, "outer");
  B.loadImm(2, RegionB);
  B.jump("outer");
  B.halt();
  return {"gap", "hot chase + uncapturable cold loop", B.finish(),
          [](DataMemory &M) {
            buildLinkedList(M, RegionA, Nodes, 64, 0, /*Shuffled=*/false);
          }};
}

/// vis: mixed pointer chase (sequentially allocated 96-byte nodes) and a
/// unit-stride stream in the same loop.
Workload makeVis() {
  constexpr uint64_t Nodes = 87040; // ~8MB circular list
  ProgramBuilder B;
  B.loadImm(1, RegionA);
  B.loadImm(2, RegionB);
  B.loadImm(27, RegionB + (128ull << 20));
  B.loadImm(4, 0).loadImm(5, FarLimit);
  B.label("loop");
  B.load(1, 1, 0); // chase; DLT sees stride 96
  B.load(6, 1, 8).load(7, 1, 40);
  B.load(8, 2, 0);
  B.addi(2, 2, 8);
  B.fadd(9, 6, 7);
  B.fadd(9, 9, 8);
  B.fadd(10, 10, 9);
  B.store(1, 16, 9);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();
  return {"vis", "pointer chase + stream mix", B.finish(),
          [](DataMemory &M) {
            buildLinkedList(M, RegionA, Nodes, 96, 0, /*Shuffled=*/false);
          }};
}

/// wupwise: strided complex arithmetic over two arrays, moderate body.
Workload makeWupwise() {
  ProgramBuilder B;
  B.loadImm(1, RegionA).loadImm(2, RegionB).loadImm(3, RegionC);
  B.loadImm(27, RegionA + (128ull << 20));
  B.label("loop");
  B.load(6, 1, 0).load(7, 1, 8);
  B.load(8, 2, 0).load(9, 2, 8);
  B.fmul(10, 6, 8);
  B.fmul(11, 7, 9);
  B.fmul(12, 6, 9);
  B.fmul(13, 7, 8);
  B.alu(Opcode::FAdd, 14, 10, 11);
  B.alu(Opcode::FAdd, 15, 12, 13);
  emitFpFiller(B, 4, 14);
  B.store(3, 0, 14);
  B.store(3, 8, 15);
  B.addi(1, 1, 16).addi(2, 2, 16).addi(3, 3, 16);
  B.blt(1, 27, "loop");
  B.loadImm(1, RegionA).loadImm(2, RegionB).loadImm(3, RegionC);
  B.jump("loop");
  B.halt();
  return {"wupwise", "strided complex arithmetic", B.finish(),
          [](DataMemory &) {}};
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// The one registration table: every named workload appears here exactly
/// once, and workloadNames() / makeWorkload() / makeAllWorkloads() are all
/// projections of it — name bookkeeping cannot drift between them.
struct RegisteredWorkload {
  const char *Name;
  Workload (*Make)();
};

constexpr RegisteredWorkload kRegistry[] = {
    {"applu", makeApplu},   {"art", makeArt},         {"dot", makeDot},
    {"equake", makeEquake}, {"facerec", makeFacerec}, {"fma3d", makeFma3d},
    {"galgel", makeGalgel}, {"gap", makeGap},         {"mcf", makeMcf},
    {"mgrid", makeMgrid},   {"parser", makeParser},   {"swim", makeSwim},
    {"vis", makeVis},       {"wupwise", makeWupwise},
};

/// The shared tail of every registration path (named, spec-based, fuzzed):
/// stamps the program-identity hash so any caller of makeWorkload or the
/// make*Workload builders can key goldens and memo entries off it.
Workload finalizeWorkload(Workload W) {
  W.ProgramHash = programHash(W.Prog);
  return W;
}

} // namespace

const std::vector<std::string> &trident::workloadNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const RegisteredWorkload &R : kRegistry)
      N.push_back(R.Name);
    return N;
  }();
  return Names;
}

Workload trident::makeWorkload(const std::string &Name) {
  // Fuzz scenarios resolve through the same entry point as the named 14,
  // so the memo cache, benches, and the mix scheduler need no special
  // casing — a fuzz name is just a workload whose program is derived from
  // its seed (the fuzzer stamps ProgramHash itself).
  if (isFuzzSpec(Name))
    return makeFuzzWorkloadFromSpec(Name);
  for (const RegisteredWorkload &R : kRegistry)
    if (Name == R.Name) {
      Workload W = finalizeWorkload(R.Make());
      TRIDENT_CHECK(W.Name == Name,
                    "registry name '%s' disagrees with workload name '%s'",
                    Name.c_str(), W.Name.c_str());
      return W;
    }
  TRIDENT_UNREACHABLE("unknown workload name");
  return finalizeWorkload(makeSwim());
}

std::vector<Workload> trident::makeAllWorkloads() {
  std::vector<Workload> Out;
  for (const RegisteredWorkload &R : kRegistry)
    Out.push_back(makeWorkload(R.Name));
  return Out;
}

//===----------------------------------------------------------------------===//
// Parameterized generators
//===----------------------------------------------------------------------===//

Workload trident::makeStrideLoopWorkload(const StrideLoopSpec &Spec,
                                         const std::string &Name) {
  TRIDENT_CHECK(Spec.NumStreams >= 1 && Spec.NumStreams <= 12, "1..12 streams supported (register budget)");
  TRIDENT_CHECK(Spec.Stride != 0, "stride must be nonzero");
  ProgramBuilder B;
  for (unsigned K = 0; K < Spec.NumStreams; ++K)
    B.loadImm(1 + K, Spec.Base + uint64_t(K) * 0x0400'0000 +
                         uint64_t(K) * 6400); // stagger cache sets
  if (Spec.StoreStream)
    B.loadImm(25, Spec.Base + 12ull * 0x0400'0000);
  B.loadImm(26, 0).loadImm(27, FarLimit);
  B.label("loop");
  for (unsigned K = 0; K < Spec.NumStreams; ++K) {
    B.load(13 + (K % 12), 1 + K, 0);
    B.aluImm(Opcode::AddI, 1 + K, 1 + K, Spec.Stride);
  }
  for (unsigned I = 0; I < Spec.ComputeChain; ++I)
    B.fadd(24, 24, 13 + (I % Spec.NumStreams % 12));
  if (Spec.StoreStream) {
    B.store(25, 0, 24);
    B.addi(25, 25, 8);
  }
  B.addi(26, 26, 1);
  B.blt(26, 27, "loop");
  B.halt();
  return finalizeWorkload({Name,
                           std::to_string(Spec.NumStreams) +
                               " streams, stride " +
                               std::to_string(Spec.Stride),
                           B.finish(), [](DataMemory &) {}});
}

Workload trident::makePointerChaseWorkload(const PointerChaseSpec &Spec,
                                           const std::string &Name) {
  TRIDENT_CHECK(Spec.FieldOffsets.size() <= 8, "at most 8 field loads");
  TRIDENT_CHECK(Spec.NodeSize >= 8, "node must hold the link pointer");
  ProgramBuilder B;
  B.loadImm(1, Spec.Base);
  B.loadImm(4, 0).loadImm(5, FarLimit);
  B.label("loop");
  B.load(1, 1, 0); // p = p->next
  unsigned Rd = 6;
  for (int64_t Off : Spec.FieldOffsets)
    B.load(Rd++, 1, Off);
  for (unsigned I = 6; I < Rd; ++I)
    B.fadd(20, 20, I);
  B.addi(4, 4, 1);
  B.blt(4, 5, "loop");
  B.halt();

  PointerChaseSpec S = Spec; // captured by the init lambda
  return finalizeWorkload(
      {Name,
       "chase over " + std::to_string(Spec.NumNodes) + " nodes of " +
           std::to_string(Spec.NodeSize) + "B",
       B.finish(), [S](DataMemory &M) {
            switch (S.NodeLayout) {
            case PointerChaseSpec::Layout::Sequential:
              buildLinkedList(M, S.Base, S.NumNodes, S.NodeSize, 0,
                              /*Shuffled=*/false, S.Seed);
              break;
            case PointerChaseSpec::Layout::RunShuffled:
              buildRunShuffledList(M, S.Base, S.NumNodes, S.NodeSize, 0,
                                   S.RunLength, S.Seed);
              break;
            case PointerChaseSpec::Layout::Shuffled:
              buildLinkedList(M, S.Base, S.NumNodes, S.NodeSize, 0,
                              /*Shuffled=*/true, S.Seed);
              break;
            }
       }});
}

Workload trident::makeGatherWorkload(const GatherSpec &Spec,
                                     const std::string &Name) {
  TRIDENT_CHECK(Spec.FieldOffsets.size() >= 1 && Spec.FieldOffsets.size() <= 8, "1..8 dereference loads");
  ProgramBuilder B;
  B.loadImm(1, Spec.ArrayBase);
  B.loadImm(27, Spec.ArrayBase + Spec.Entries * 8);
  B.label("outer");
  B.label("loop");
  B.load(2, 1, 0); // the gathered pointer
  unsigned Rd = 6;
  for (int64_t Off : Spec.FieldOffsets)
    B.load(Rd++, 2, Off);
  for (unsigned I = 6; I < Rd; ++I)
    B.fadd(20, 20, I);
  B.addi(1, 1, 8);
  B.blt(1, 27, "loop");
  B.loadImm(1, Spec.ArrayBase);
  B.jump("outer");
  B.halt();

  GatherSpec S = Spec;
  return finalizeWorkload(
      {Name,
       "indexed gather over " + std::to_string(Spec.Entries) + " pointers",
       B.finish(), [S](DataMemory &M) {
         buildPointerArray(M, S.ArrayBase, S.Entries, S.TargetBase,
                           S.TargetStride);
       }});
}
