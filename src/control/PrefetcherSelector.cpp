//===- PrefetcherSelector.cpp ---------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "control/PrefetcherSelector.h"

#include "hwpf/PrefetcherRegistry.h"
#include "support/Check.h"
#include "support/Random.h"
#include "support/StatRegistry.h"

#include <cmath>
#include <vector>

using namespace trident;

const char *trident::selectorPolicyName(SelectorPolicy P) {
  switch (P) {
  case SelectorPolicy::Static:
    return "static";
  case SelectorPolicy::Bandit:
    return "bandit";
  case SelectorPolicy::Oracle:
    return "oracle";
  }
  return "<bad>";
}

bool SelectorConfig::parse(const std::string &Spec, SelectorConfig &Out,
                           std::string *Error) {
  Out = SelectorConfig();
  if (Spec.empty())
    return true;
  PrefetcherSpec S;
  if (!PrefetcherSpec::parse(Spec, S, Error))
    return false;
  if (S.Name == "static")
    Out.Policy = SelectorPolicy::Static;
  else if (S.Name == "bandit")
    Out.Policy = SelectorPolicy::Bandit;
  else if (S.Name == "oracle")
    Out.Policy = SelectorPolicy::Oracle;
  else {
    if (Error)
      *Error = "unknown selector policy '" + S.Name +
               "' (policies: static, bandit, oracle)";
    return false;
  }
  // Per-policy knob vocabulary: the bandit owns the learning knobs; the
  // oracle only shapes the epoch clock; static takes nothing.
  auto KnobAllowed = [&](const std::string &K) {
    if (Out.Policy == SelectorPolicy::Static)
      return false;
    if (K == "epoch" || K == "interval")
      return true;
    return Out.Policy == SelectorPolicy::Bandit &&
           (K == "seed" || K == "eps" || K == "ucb" || K == "ema");
  };
  for (const auto &K : S.Knobs) {
    if (!KnobAllowed(K.first)) {
      if (Error)
        *Error = "unknown knob '" + K.first + "' for selector policy '" +
                 S.Name +
                 "' (bandit: epoch, interval, seed, eps, ucb, ema; "
                 "oracle: epoch, interval; static: none)";
      return false;
    }
  }
  Out.SamplesPerEpoch = S.knobOr("epoch", Out.SamplesPerEpoch);
  Out.IntervalCommits = S.knobOr("interval", Out.IntervalCommits);
  Out.Seed = S.knobOr("seed", Out.Seed);
  Out.EpsilonPermille = S.knobOr("eps", Out.EpsilonPermille);
  Out.Ucb = S.knobOr("ucb", Out.Ucb ? 1 : 0) != 0;
  Out.EmaPermille = S.knobOr("ema", Out.EmaPermille);
  if (Out.enabled() && (Out.SamplesPerEpoch == 0 || Out.IntervalCommits == 0)) {
    if (Error)
      *Error = "selector knobs epoch/interval must be nonzero in spec '" +
               Spec + "'";
    return false;
  }
  if (Out.EpsilonPermille > 1000 || Out.EmaPermille == 0 ||
      Out.EmaPermille > 1000) {
    if (Error)
      *Error = "selector knob out of range in spec '" + Spec +
               "' (eps: 0..1000, ema: 1..1000)";
    return false;
  }
  return true;
}

std::string SelectorConfig::shortName() const {
  if (Policy == SelectorPolicy::Bandit && Ucb)
    return "bandit-ucb";
  return selectorPolicyName(Policy);
}

PrefetcherSelector::~PrefetcherSelector() = default;

namespace {

/// Seeded epsilon-greedy / UCB1 over the arsenal. Rewards are EMAs of
/// -ExposedPerLoad so the value estimates track the current phase rather
/// than the whole history; a round-robin warm start gives every arm one
/// epoch before any exploitation. All tie-breaks go to the lowest arm
/// index, and the only randomness is the private SplitMix64, so the
/// decision sequence is a pure function of (seed, reward sequence).
class BanditSelector final : public PrefetcherSelector {
public:
  BanditSelector(const SelectorConfig &C, unsigned NumArms)
      : Eps(C.EpsilonPermille), EmaPermille(C.EmaPermille), Ucb(C.Ucb),
        Rng(C.Seed), Value(NumArms, 0.0), Pulls(NumArms, 0) {}

  unsigned decide(const PhaseSignature &Sig, unsigned CurrentArm) override {
    const unsigned N = static_cast<unsigned>(Value.size());
    if (CurrentArm < N) {
      const double R = -Sig.ExposedPerLoad;
      double &V = Value[CurrentArm];
      if (Pulls[CurrentArm] == 0)
        V = R;
      else {
        const double W = static_cast<double>(EmaPermille) / 1000.0;
        V = (1.0 - W) * V + W * R;
      }
      ++Pulls[CurrentArm];
      ++TotalPulls;
    }
    // Warm start: unpulled arms first, in index order.
    for (unsigned A = 0; A < N; ++A)
      if (Pulls[A] == 0)
        return A;
    if (Ucb) {
      unsigned Pick = ucbPick();
      if (Pick != greedyPick())
        ++Explored;
      return Pick;
    }
    // One epsilon draw per epoch; an exploration epoch draws the arm from
    // the same stream.
    if (Rng.nextBelow(1000) < Eps) {
      ++Explored;
      return static_cast<unsigned>(Rng.nextBelow(Value.size()));
    }
    return greedyPick();
  }

  uint64_t explorations() const override { return Explored; }

private:
  unsigned greedyPick() const {
    unsigned Best = 0;
    for (unsigned A = 1; A < Value.size(); ++A)
      if (Value[A] > Value[Best]) // strict: ties keep the lowest index
        Best = A;
    return Best;
  }

  unsigned ucbPick() const {
    // UCB1 with the bonus scaled to the observed value spread: rewards are
    // latencies (arbitrary magnitude), not [0,1], so a fixed constant
    // would either never or always explore.
    double Spread = 0.0;
    for (unsigned A = 0; A < Value.size(); ++A)
      for (unsigned B = A + 1; B < Value.size(); ++B)
        Spread = std::max(Spread, std::abs(Value[A] - Value[B]));
    const double Scale = Spread > 0.0 ? Spread : 1.0;
    unsigned Best = 0;
    double BestScore = 0.0;
    for (unsigned A = 0; A < Value.size(); ++A) {
      const double Bonus =
          Scale * std::sqrt(2.0 * std::log(static_cast<double>(TotalPulls)) /
                            static_cast<double>(Pulls[A]));
      const double Score = Value[A] + Bonus;
      if (A == 0 || Score > BestScore) {
        Best = A;
        BestScore = Score;
      }
    }
    return Best;
  }

  uint64_t Eps;
  uint64_t EmaPermille;
  bool Ucb;
  SplitMix64 Rng;
  std::vector<double> Value;
  std::vector<uint64_t> Pulls;
  uint64_t TotalPulls = 0;
  uint64_t Explored = 0;
};

/// Holds the arm resolveSelectorOracle() pinned. The first decision swaps
/// to it (if the run started elsewhere); every later epoch keeps it.
class OracleSelector final : public PrefetcherSelector {
public:
  explicit OracleSelector(unsigned A) : Arm(A) {}
  unsigned decide(const PhaseSignature &, unsigned) override { return Arm; }

private:
  unsigned Arm;
};

} // namespace

std::unique_ptr<PrefetcherSelector>
PrefetcherSelector::create(const SelectorConfig &C, unsigned NumArms,
                           unsigned OracleArm) {
  TRIDENT_CHECK(NumArms > 0, "selector needs a nonempty arsenal");
  switch (C.Policy) {
  case SelectorPolicy::Static:
    break;
  case SelectorPolicy::Bandit:
    return std::make_unique<BanditSelector>(C, NumArms);
  case SelectorPolicy::Oracle:
    TRIDENT_CHECK(OracleArm < NumArms,
                  "oracle selector not resolved (arm %u of %u); call "
                  "resolveSelectorOracle before running",
                  OracleArm, NumArms);
    return std::make_unique<OracleSelector>(OracleArm);
  }
  TRIDENT_CHECK(false, "static selector policy has no object form");
  return nullptr;
}

void SelectorStats::registerInto(StatRegistry &R,
                                 const std::string &Prefix) const {
  R.setCounter(Prefix + "epochs", Epochs);
  R.setCounter(Prefix + "swaps", Swaps);
  R.setCounter(Prefix + "explorations", Explorations);
  R.setCounter(Prefix + "samples", Samples);
  R.setCounter(Prefix + "final_arm", FinalArm);
}
