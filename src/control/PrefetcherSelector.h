//===- PrefetcherSelector.h - Phase-aware prefetcher selection -*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision half of the control plane: given a per-epoch phase
/// signature (folded from the HwPfFeedback referee stream by the
/// PhaseMonitor), a selector policy picks which arsenal unit runs the
/// next epoch. Three policies behind one interface:
///
///  * static — today's behavior; the selector machinery is never built.
///  * bandit — a seeded epsilon-greedy / UCB1 multi-armed bandit over
///    PrefetcherRegistry::arsenalNames(), rewarding low exposed latency
///    per demand load with an EMA so regime shifts age old phases out.
///  * oracle — a two-pass replay upper bound: the memoized
///    ExperimentRunner runs every static unit first, the best one is
///    pinned here (resolveSelectorOracle in src/sim), and the policy just
///    holds that arm.
///
/// Determinism is the contract: a decision trace is a pure function of
/// (config seed, reward sequence). The bandit owns a private SplitMix64 —
/// no global RNG, no wall clock — so identical seeds reproduce identical
/// traces under serial and parallel runners alike.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CONTROL_PREFETCHERSELECTOR_H
#define TRIDENT_CONTROL_PREFETCHERSELECTOR_H

#include <cstdint>
#include <memory>
#include <string>

namespace trident {

class StatRegistry;

enum class SelectorPolicy : uint8_t { Static, Bandit, Oracle };

/// Export/display name of a policy ("static", "bandit", "oracle").
const char *selectorPolicyName(SelectorPolicy P);

/// Parsed `policy[:knob=value,...]` selector configuration (the
/// `--selector` CLI spec). Defaults are the Static policy, i.e. the
/// control plane stays entirely unbuilt and runs are byte-identical to a
/// pre-control-plane tree.
struct SelectorConfig {
  SelectorPolicy Policy = SelectorPolicy::Static;
  /// HwPfFeedback samples folded into one epoch (knob `epoch`).
  uint64_t SamplesPerEpoch = 8;
  /// Commits between feedback samples when the core's own
  /// HwPfFeedbackIntervalCommits is 0: the selector needs a heartbeat, so
  /// the sim layer applies this as the effective interval (knob
  /// `interval`). A nonzero core interval always wins.
  uint64_t IntervalCommits = 2000;
  /// Bandit RNG seed (knob `seed`).
  uint64_t Seed = 1;
  /// Epsilon-greedy exploration rate in permille (knob `eps`).
  uint64_t EpsilonPermille = 100;
  /// Use UCB1 instead of epsilon-greedy (knob `ucb`, 0/1).
  bool Ucb = false;
  /// EMA weight of the newest reward in permille (knob `ema`; higher
  /// adapts faster to regime shifts).
  uint64_t EmaPermille = 400;
  /// Oracle policy only: the pinned arsenal unit, filled in by
  /// resolveSelectorOracle() before the run (empty until resolved).
  std::string OracleUnit;

  /// True when the control plane is built at all.
  bool enabled() const { return Policy != SelectorPolicy::Static; }

  /// Parses \p Spec (`static`, `bandit[:knobs]`, `oracle[:knobs]`; knobs
  /// epoch, interval, seed, eps, ucb, ema). Splitting and value
  /// validation ride on PrefetcherSpec::parse, so the arsenal's knob
  /// hardening (no signs, 32-bit range, no duplicates) applies here too.
  /// On failure returns false and sets \p Error.
  static bool parse(const std::string &Spec, SelectorConfig &Out,
                    std::string *Error);

  /// Display name for configs/figures: "static", "bandit", "bandit-ucb",
  /// "oracle".
  std::string shortName() const;
};

/// What one epoch looked like, computed by the PhaseMonitor from the
/// memory system's referee counters as deltas against the previous epoch
/// boundary. This is the selector's entire view of the machine.
struct PhaseSignature {
  uint64_t Epoch = 0;
  uint64_t DemandLoads = 0;
  uint64_t DemandMisses = 0;
  /// Epoch-delta prefetch accuracy / coverage (see HwPfFeedback).
  double Accuracy = 0.0;
  double Coverage = 0.0;
  /// Demand misses per demand load within the epoch.
  double MissRate = 0.0;
  /// Exposed latency per demand load within the epoch — the reward metric
  /// (negated: the whole framework minimizes exposed latency).
  double ExposedPerLoad = 0.0;
};

/// Control-plane accounting for one run (measurement window).
struct SelectorStats {
  uint64_t Epochs = 0;
  uint64_t Swaps = 0;
  /// Non-greedy (exploration) decisions taken by the bandit.
  uint64_t Explorations = 0;
  /// HwPfFeedback samples consumed.
  uint64_t Samples = 0;
  /// Arm index attached at the end (SelectorDecisionRecord::kNoArm when
  /// the run ended with no arsenal unit).
  uint64_t FinalArm = 0;

  /// Registers every field under \p Prefix (e.g. "selector.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

/// A selection policy. Arms index the PhaseMonitor's sorted arsenal list.
class PrefetcherSelector {
public:
  virtual ~PrefetcherSelector();

  /// Folds the finished epoch's signature — credit goes to \p CurrentArm,
  /// the unit that ran it — and returns the arm for the next epoch.
  /// \p CurrentArm past the arm count means "no arsenal unit attached"
  /// (possible only before the first decision).
  virtual unsigned decide(const PhaseSignature &Sig, unsigned CurrentArm) = 0;

  /// Cumulative exploration decisions (bandit policies; 0 otherwise).
  virtual uint64_t explorations() const { return 0; }

  /// Builds the configured policy over \p NumArms arms (> 0 required).
  /// \p OracleArm is the pinned arm for the oracle policy (ignored by
  /// others). The static policy has no object form — callers never build
  /// a selector for it (checked).
  static std::unique_ptr<PrefetcherSelector>
  create(const SelectorConfig &C, unsigned NumArms, unsigned OracleArm);
};

} // namespace trident

#endif // TRIDENT_CONTROL_PREFETCHERSELECTOR_H
