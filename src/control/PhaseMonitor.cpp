//===- PhaseMonitor.cpp ---------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "control/PhaseMonitor.h"

#include "support/Check.h"

using namespace trident;

namespace {

/// Arm index of \p Spec's base name in \p Arms, or kNoArm.
unsigned armOf(const std::vector<std::string> &Arms, const std::string &Spec) {
  const std::string Name = Spec.substr(0, Spec.find(':'));
  for (unsigned A = 0; A < Arms.size(); ++A)
    if (Arms[A] == Name)
      return A;
  return SelectorDecisionRecord::kNoArm;
}

} // namespace

PhaseMonitor::PhaseMonitor(const SelectorConfig &C, MemorySystem &M,
                           const PrefetcherEnv &E,
                           const std::string &InitialSpec)
    : Cfg(C), Mem(M), Env(E),
      Arms(PrefetcherRegistry::instance().arsenalNames()) {
  TRIDENT_CHECK(Cfg.enabled(), "PhaseMonitor built for the static policy");
  TRIDENT_CHECK(!Arms.empty(), "selector needs a nonempty arsenal");
  CurrentArm = armOf(Arms, InitialSpec);
  Stats.FinalArm = CurrentArm;
  const unsigned OracleArm = armOf(Arms, Cfg.OracleUnit);
  Policy = PrefetcherSelector::create(
      Cfg, static_cast<unsigned>(Arms.size()), OracleArm);
}

void PhaseMonitor::attach(EventBus &B) {
  Bus = &B;
  B.subscribe(this, eventMaskOf(EventKind::HwPfFeedback));
}

void PhaseMonitor::onEvent(const HardwareEvent &E) {
  TRIDENT_DCHECK(E.Kind == EventKind::HwPfFeedback,
                 "PhaseMonitor subscribed to an unexpected kind");
  ++Stats.Samples;
  if (++SamplesInEpoch >= Cfg.SamplesPerEpoch) {
    SamplesInEpoch = 0;
    closeEpoch(E.Time);
  }
}

void PhaseMonitor::closeEpoch(Cycle Now) {
  const MemStats &MS = Mem.stats();
  const HwPfFeedback &Fb = Mem.feedback();
  // All counters are monotone within a window and the baselines re-zero
  // with them at the boundary, so the deltas can never underflow.
  TRIDENT_DCHECK(MS.DemandLoads >= BaseDemandLoads &&
                     MS.TotalExposedLatency >= BaseExposed,
                 "epoch baselines are ahead of the memory system (missing "
                 "onMeasurementStart after clearStats?)");
  const uint64_t Loads = MS.DemandLoads - BaseDemandLoads;
  const uint64_t Exposed = MS.TotalExposedLatency - BaseExposed;
  HwPfFeedback Delta;
  Delta.Issued = Fb.Issued - BaseIssued;
  Delta.Useful = Fb.Useful - BaseUseful;
  Delta.Late = Fb.Late - BaseLate;
  Delta.DemandMisses = Fb.DemandMisses - BaseDemandMisses;

  PhaseSignature Sig;
  Sig.Epoch = EpochIndex;
  Sig.DemandLoads = Loads;
  Sig.DemandMisses = Delta.DemandMisses;
  Sig.Accuracy = Delta.accuracy();
  Sig.Coverage = Delta.coverage();
  Sig.MissRate = Loads == 0 ? 0.0
                            : static_cast<double>(Delta.DemandMisses) /
                                  static_cast<double>(Loads);
  Sig.ExposedPerLoad = Loads == 0 ? 0.0
                                  : static_cast<double>(Exposed) /
                                        static_cast<double>(Loads);

  BaseDemandLoads = MS.DemandLoads;
  BaseExposed = MS.TotalExposedLatency;
  BaseIssued = Fb.Issued;
  BaseUseful = Fb.Useful;
  BaseLate = Fb.Late;
  BaseDemandMisses = Fb.DemandMisses;

  const unsigned Next = Policy->decide(Sig, CurrentArm);
  TRIDENT_CHECK(Next < Arms.size(), "selector chose arm %u of %zu", Next,
                Arms.size());
  ++Stats.Epochs;
  if (Next != CurrentArm) {
    std::string Err;
    std::unique_ptr<HwPrefetcher> Unit =
        PrefetcherRegistry::instance().create(Arms[Next], Env, &Err);
    TRIDENT_CHECK(Unit != nullptr, "selector failed to build unit '%s': %s",
                  Arms[Next].c_str(), Err.c_str());
    Mem.attachPrefetcher(std::move(Unit));
    ++Stats.Swaps;
  }

  SelectorDecisionRecord D;
  D.Epoch = EpochIndex > UINT32_MAX ? UINT32_MAX
                                    : static_cast<uint32_t>(EpochIndex);
  D.ChosenArm = static_cast<uint16_t>(Next);
  D.PrevArm = static_cast<uint16_t>(CurrentArm);
  Trace.push_back(D);
  CurrentArm = Next;
  ++EpochIndex;
  Stats.FinalArm = CurrentArm;
  Stats.Explorations = Policy->explorations() - ExplorationBase;
  // Published after the machine state is consistent: subscribers (the
  // tracer, fault injectors) see the post-swap world. publish() is
  // reentrant by contract, so publishing from inside the HwPfFeedback
  // dispatch is legal.
  if (Bus)
    Bus->publish(HardwareEvent::selectorDecision(D, Now));
}

void PhaseMonitor::onMeasurementStart() {
  BaseDemandLoads = 0;
  BaseExposed = 0;
  BaseIssued = 0;
  BaseUseful = 0;
  BaseLate = 0;
  BaseDemandMisses = 0;
  SamplesInEpoch = 0;
  EpochIndex = 0;
  ExplorationBase = Policy->explorations();
  Stats = SelectorStats();
  Stats.FinalArm = CurrentArm;
  Trace.clear();
}

std::string PhaseMonitor::currentUnitName() const {
  return CurrentArm < Arms.size() ? Arms[CurrentArm] : std::string();
}
