//===- PhaseMonitor.h - Epoch clock + prefetcher swap actuator -*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sensing/actuating half of the control plane. The monitor rides the
/// event bus as a HwPfFeedback subscriber: every configured number of
/// feedback samples closes an *epoch*, at which point it folds the memory
/// system's referee counters (accuracy, coverage, miss rate, exposed
/// latency per load — all as deltas against the previous boundary) into a
/// PhaseSignature, asks the PrefetcherSelector policy for the next arm,
/// and — when the decision changes — swaps the arsenal unit in place via
/// MemorySystem::attachPrefetcher. Each decision is published as a
/// SelectorDecision event and appended to the decision trace, the
/// determinism artifact the tests compare byte-for-byte across serial and
/// parallel runs.
///
/// The monitor is active during warmup so the bandit warm-starts; at the
/// measurement-window boundary the sim layer calls onMeasurementStart()
/// (right after MemorySystem::clearStats()) to re-zero the delta
/// baselines and the windowed stats/trace while the policy keeps its
/// learned state — mirroring how warmup trains caches and predictors.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CONTROL_PHASEMONITOR_H
#define TRIDENT_CONTROL_PHASEMONITOR_H

#include "control/PrefetcherSelector.h"
#include "events/EventBus.h"
#include "hwpf/PrefetcherRegistry.h"
#include "mem/MemorySystem.h"

#include <string>
#include <vector>

namespace trident {

class PhaseMonitor final : public EventSubscriber {
public:
  /// \p InitialSpec is the run's --hwpf spec; when its unit is an arsenal
  /// member the monitor starts crediting it, otherwise the first epoch
  /// starts from "no arm" and the first decision swaps a unit in.
  PhaseMonitor(const SelectorConfig &C, MemorySystem &M,
               const PrefetcherEnv &E, const std::string &InitialSpec);

  /// Subscribes to the HwPfFeedback channel and keeps \p Bus for
  /// publishing SelectorDecision events. Call before the core runs.
  void attach(EventBus &Bus);

  void onEvent(const HardwareEvent &E) override;

  /// Measurement-window boundary: the sim layer just cleared the memory
  /// system's stats, so the epoch baselines re-zero with them; windowed
  /// stats and the decision trace reset, the policy's learning survives.
  void onMeasurementStart();

  const SelectorStats &stats() const { return Stats; }
  const std::vector<SelectorDecisionRecord> &trace() const { return Trace; }
  /// Sorted arsenal list the arm indices refer to.
  const std::vector<std::string> &arms() const { return Arms; }
  /// Name of the currently attached arsenal unit ("" before any arm).
  std::string currentUnitName() const;

private:
  void closeEpoch(Cycle Now);

  SelectorConfig Cfg;
  MemorySystem &Mem;
  PrefetcherEnv Env;
  EventBus *Bus = nullptr;
  std::vector<std::string> Arms;
  std::unique_ptr<PrefetcherSelector> Policy;
  unsigned CurrentArm = SelectorDecisionRecord::kNoArm;

  uint64_t SamplesInEpoch = 0;
  uint64_t EpochIndex = 0;
  /// Referee-counter baselines at the last epoch boundary (deltas against
  /// these form the phase signature). Reset with the memory system's
  /// stats at the measurement boundary.
  uint64_t BaseDemandLoads = 0;
  uint64_t BaseExposed = 0;
  uint64_t BaseIssued = 0;
  uint64_t BaseUseful = 0;
  uint64_t BaseLate = 0;
  uint64_t BaseDemandMisses = 0;
  /// Policy explorations() at the last window boundary, so Stats reports
  /// the windowed count while the policy keeps its cumulative one.
  uint64_t ExplorationBase = 0;

  SelectorStats Stats;
  std::vector<SelectorDecisionRecord> Trace;
};

} // namespace trident

#endif // TRIDENT_CONTROL_PHASEMONITOR_H
