//===- CodeSpace.h - Instruction fetch abstraction -------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core fetches decoded instructions through this interface. The
/// Trident runtime implements it by overlaying the code cache (and its
/// patched entry jumps) on the original program image, which is how
/// hot-trace linking becomes visible to the executing thread.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CPU_CODESPACE_H
#define TRIDENT_CPU_CODESPACE_H

#include "isa/Instruction.h"

namespace trident {

class CodeSpace {
public:
  virtual ~CodeSpace();

  /// Returns the instruction at \p PC. \p PC must be mapped.
  virtual const Instruction &fetch(Addr PC) const = 0;
};

} // namespace trident

#endif // TRIDENT_CPU_CODESPACE_H
