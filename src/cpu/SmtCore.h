//===- SmtCore.h - Two-context SMT timing model ----------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline processor of Table 1: a 4-wide SMT core with two hardware
/// contexts, a 256-entry ROB, per-class issue limits (4 int / 2 FP / 2
/// mem), a 20-stage pipeline (modeled as the branch misprediction redirect
/// penalty), and non-blocking caches.
///
/// Timing model (documented substitution, see DESIGN.md): per-context
/// in-order issue gated by a register scoreboard; loads do not block until
/// a dependent instruction needs the value, so independent misses overlap
/// up to the MSHR and ROB limits. Context 0 (the main program) has issue
/// priority; context 1 runs the Trident helper thread, modeled as a
/// *work stub* — a stream of single-cycle instructions whose length comes
/// from the optimizer cost model — so optimization steals real issue
/// bandwidth and shows up in overhead measurements (Fig. 3, Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CPU_SMTCORE_H
#define TRIDENT_CPU_SMTCORE_H

#include "branch/BranchPredictor.h"
#include "cpu/CodeSpace.h"
#include "events/EventBus.h"
#include "mem/DataMemory.h"
#include "mem/MemorySystem.h"

#include <array>
#include <string>
#include <vector>

namespace trident {

class StatRegistry;

struct CoreConfig {
  unsigned IssueWidth = 4;
  unsigned RobSize = 256;
  unsigned IntIssueLimit = 4;
  unsigned FpIssueLimit = 2;
  unsigned MemIssueLimit = 2;
  /// Redirect penalty on a branch misprediction (20-stage pipeline).
  unsigned MispredictPenalty = 20;
  unsigned NumContexts = 2;
  /// When nonzero, publish an EventKind::HwPfFeedback sample of the
  /// memory system's prefetcher-effectiveness counters every this many
  /// committed main-context instructions. 0 (default) disables the
  /// channel entirely, keeping event streams and stat exports
  /// bit-identical to builds that predate it.
  uint64_t HwPfFeedbackIntervalCommits = 0;
  /// Address bias applied to every PC and data address this core presents
  /// to the *shared* memory system (cache tags, MSHRs, prefetcher
  /// training) — never to DataMemory, whose contents stay unbiased. The
  /// mix scheduler gives each co-scheduled lane a disjoint bias so two
  /// programs built on the same nominal memory map contend for cache
  /// capacity and bandwidth without aliasing each other's lines. 0 (the
  /// default, and always lane 0) adds nothing, so solo runs are
  /// bit-identical to builds that predate the field.
  Addr MemBias = 0;

  static CoreConfig baseline() { return CoreConfig(); }
};

/// Non-allocating completion callback for helper stubs: a plain function
/// pointer plus an opaque context, so launching a stub on the hot path
/// never constructs a heap-backed closure (the runtime's captures exceed
/// any std::function small-buffer optimization).
struct StubCallback {
  void (*Fn)(void *, Cycle) = nullptr;
  void *Ctx = nullptr;

  explicit operator bool() const { return Fn != nullptr; }
  void operator()(Cycle C) const { Fn(Ctx, C); }
};

/// Per-context execution statistics.
struct ContextStats {
  /// Committed instructions of the *original* program (Synthetic excluded),
  /// the numerator of reported IPC (Section 4.1).
  uint64_t CommittedOriginal = 0;
  /// All issued instructions, including optimizer-inserted ones.
  uint64_t IssuedTotal = 0;
  uint64_t BranchesExecuted = 0;
  uint64_t BranchMispredicts = 0;
  uint64_t StubInstructions = 0;

  /// Registers every field under \p Prefix (e.g. "cpu.ctx0.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

class SmtCore {
public:
  /// Why a run() call returned.
  enum class StopReason { CommitTarget, Halted, CycleLimit };

  SmtCore(const CoreConfig &Config, CodeSpace &Code, DataMemory &Data,
          MemorySystem &Mem);

  /// Optional branch predictor; without one, branches are oracle-predicted.
  void setBranchPredictor(BranchPredictor *BP) { Predictor = BP; }
  /// Optional event bus the core publishes its commit/load/branch stream
  /// into. The bus's active mask is cached at run() entry, so subscribe
  /// everything before calling run().
  void setEventBus(EventBus *B) { Bus = B; }

  /// Begins executing the program context \p Ctx at \p PC.
  void startContext(unsigned Ctx, Addr PC);

  /// Writes a register of context \p Ctx (workload setup).
  void setReg(unsigned Ctx, unsigned Reg, uint64_t Value);
  uint64_t getReg(unsigned Ctx, unsigned Reg) const;

  /// Runs the helper-thread stub on \p Ctx: after \p StartupDelay cycles
  /// (the paper charges 2000 cycles to spawn the helper thread,
  /// Section 4.3), \p Instructions single-cycle operations issue at lower
  /// priority; \p OnDone fires at the cycle the stub finishes. Only one
  /// stub may be active per context.
  void startStub(unsigned Ctx, uint64_t Instructions, Cycle StartupDelay,
                 StubCallback OnDone);
  bool stubActive(unsigned Ctx) const;

  /// Advances simulation until context 0 has committed \p TargetCommits
  /// more original instructions, halts, or \p CycleLimit elapses.
  StopReason run(uint64_t TargetCommits,
                 Cycle CycleLimit = ~static_cast<Cycle>(0));

  Cycle now() const { return Now; }
  bool halted(unsigned Ctx) const { return Ctxs[Ctx].Halted; }
  Addr pc(unsigned Ctx) const { return Ctxs[Ctx].PC; }
  const ContextStats &stats(unsigned Ctx) const { return Ctxs[Ctx].Stats; }
  /// Cycles during which the helper context had stub work outstanding.
  Cycle helperBusyCycles() const { return HelperBusy; }

  /// Clears statistics (after warmup) without touching machine state.
  void clearStats();

private:
  struct Context {
    bool Active = false;
    bool Halted = false;
    Addr PC = 0;
    std::array<uint64_t, reg::NumRegs> Regs{};
    std::array<Cycle, reg::NumRegs> RegReady{};
    Cycle FetchStallUntil = 0;
    // Helper-stub state.
    bool StubMode = false;
    uint64_t StubRemaining = 0;
    StubCallback StubDone;
    ContextStats Stats;
  };

  /// Per-cycle issue budgets.
  struct IssueBudget {
    unsigned Total;
    unsigned Int;
    unsigned Fp;
    unsigned Mem;
  };

  /// Attempts to issue the next instruction of \p C; returns true if one
  /// issued. On a structural/data stall, records the wake-up time in
  /// \p Wake (the earliest cycle the context could progress).
  bool tryIssue(unsigned CtxIdx, Context &C, IssueBudget &B, Cycle &Wake);

  /// Executes \p I functionally and computes timing; returns completion.
  /// \p EffNow is the cycle the instruction's effects take place — equal to
  /// the issue cycle except for deferred synthetic prefetch code.
  Cycle executeInstruction(unsigned CtxIdx, Context &C, const Instruction &I,
                           Addr PC, Cycle EffNow);

  uint64_t readReg(const Context &C, unsigned R) const {
    return R == reg::Zero ? 0 : C.Regs[R];
  }
  void writeReg(Context &C, unsigned R, uint64_t V, Cycle Ready);

  /// Drops matured completion times from the ROB heap. The no-op case
  /// (nothing matured — the overwhelmingly common one) stays inline; the
  /// popping loop lives out of line in purgeRobSlow().
  void purgeRob() {
    if (!Rob.empty() && Rob.front() <= Now)
      purgeRobSlow();
  }
  void purgeRobSlow();
  bool robFull() const { return Rob.size() >= Config.RobSize; }
  Cycle robEarliest() const { return Rob.front(); }

  CoreConfig Config;
  CodeSpace &Code;
  DataMemory &Data;
  MemorySystem &Mem;
  BranchPredictor *Predictor = nullptr;
  EventBus *Bus = nullptr;
  /// Bus->activeMask() cached at run() entry. Every publish site in the
  /// issue loop tests one bit of this mask — a single well-predicted
  /// branch per potential event — instead of chasing the Bus pointer and
  /// its subscriber lists when nobody is listening.
  EventKindMask PubMask = 0;
  /// HwPfFeedback sampling, resolved at run() entry: 0 unless the config
  /// interval is set AND someone subscribed to the kind, so the commit
  /// path pays one predictable branch when the channel is off.
  uint64_t FeedbackEvery = 0;
  uint64_t FeedbackCountdown = 0;

  std::vector<Context> Ctxs;
  Cycle Now = 0;
  Cycle HelperBusy = 0;
  // Completion times of in-flight instructions: a flat binary min-heap
  // (std::push_heap/pop_heap over a vector reserved to RobSize at
  // construction), so ROB pressure never regrows storage mid-run.
  std::vector<Cycle> Rob;
  // Stub completions to fire after the current cycle's issue loop; the
  // context index rides along so the completion can publish a HelperDone
  // event attributed to the right hardware context.
  struct StubCompletion {
    uint8_t Ctx;
    StubCallback Fn;
  };
  std::vector<StubCompletion> PendingStubDone;
  /// Scratch the run loop swaps PendingStubDone into before firing, so a
  /// completion can start a new stub without invalidating the iteration
  /// and no fresh vector is constructed per completion cycle.
  std::vector<StubCompletion> FiringStubDone;
};

} // namespace trident

#endif // TRIDENT_CPU_SMTCORE_H
