//===- CoreListener.h - Commit-stream observation hooks --------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation interface the Trident runtime uses to model its hardware
/// monitoring structures: the branch profiler sees branch commits, the
/// watch table sees every commit (trace entry/exit timing), and the DLT
/// sees load commits with their cache outcome.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CPU_CORELISTENER_H
#define TRIDENT_CPU_CORELISTENER_H

#include "isa/Instruction.h"
#include "mem/CacheTypes.h"

namespace trident {

class CoreListener {
public:
  virtual ~CoreListener();

  /// Every committed instruction on context \p Ctx.
  virtual void onCommit(unsigned Ctx, Addr PC, const Instruction &I,
                        Cycle Now) {}

  /// Committed demand loads (Load/NFLoad), after the memory access.
  /// \p EA is the effective address, \p R the timed access outcome.
  virtual void onLoad(unsigned Ctx, Addr PC, const Instruction &I, Addr EA,
                      const AccessResult &R, Cycle Now) {}

  /// Committed control transfers with the resolved direction.
  virtual void onBranch(unsigned Ctx, Addr PC, const Instruction &I,
                        bool Taken, Addr Target, Cycle Now) {}
};

} // namespace trident

#endif // TRIDENT_CPU_CORELISTENER_H
