//===- SmtCore.cpp --------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// trident-lint: hot-path (per-access simulation inner loop; no O(n) erase
// scans)
//
//===----------------------------------------------------------------------===//

#include "cpu/SmtCore.h"
#include "support/StatRegistry.h"
#include "support/Check.h"

#include <algorithm>
#include <functional>


using namespace trident;

CodeSpace::~CodeSpace() = default;

void ContextStats::registerInto(StatRegistry &R,
                                const std::string &Prefix) const {
  R.setCounter(Prefix + "committed_original", CommittedOriginal);
  R.setCounter(Prefix + "issued_total", IssuedTotal);
  R.setCounter(Prefix + "branches_executed", BranchesExecuted);
  R.setCounter(Prefix + "branch_mispredicts", BranchMispredicts);
  R.setCounter(Prefix + "stub_instructions", StubInstructions);
}

SmtCore::SmtCore(const CoreConfig &Cfg, CodeSpace &CodeSp, DataMemory &DataMem,
                 MemorySystem &MemSys)
    : Config(Cfg), Code(CodeSp), Data(DataMem), Mem(MemSys) {
  TRIDENT_CHECK(Config.NumContexts >= 1, "need at least one context");
  Ctxs.resize(Config.NumContexts);
  // Pre-size every hot-path container once: the cycle loop must not touch
  // the allocator (asserted by alloc_count_test).
  Rob.reserve(Config.RobSize);
  PendingStubDone.reserve(2 * Config.NumContexts);
  FiringStubDone.reserve(2 * Config.NumContexts);
}

void SmtCore::startContext(unsigned Ctx, Addr PC) {
  TRIDENT_CHECK(Ctx < Ctxs.size(), "context index out of range");
  Context &C = Ctxs[Ctx];
  TRIDENT_CHECK(!C.StubMode, "context is running a helper stub");
  C.Active = true;
  C.Halted = false;
  C.PC = PC;
  C.RegReady.fill(0);
}

void SmtCore::setReg(unsigned Ctx, unsigned Reg, uint64_t Value) {
  TRIDENT_DCHECK(Ctx < Ctxs.size() && Reg < reg::NumRegs,
                 "bad register write: ctx %u reg %u (have %zu ctxs, %u regs)",
                 Ctx, Reg, Ctxs.size(), reg::NumRegs);
  if (Reg != reg::Zero)
    Ctxs[Ctx].Regs[Reg] = Value;
}

uint64_t SmtCore::getReg(unsigned Ctx, unsigned Reg) const {
  TRIDENT_DCHECK(Ctx < Ctxs.size() && Reg < reg::NumRegs,
                 "bad register read: ctx %u reg %u (have %zu ctxs, %u regs)",
                 Ctx, Reg, Ctxs.size(), reg::NumRegs);
  return Reg == reg::Zero ? 0 : Ctxs[Ctx].Regs[Reg];
}

void SmtCore::startStub(unsigned Ctx, uint64_t Instructions,
                        Cycle StartupDelay, StubCallback OnDone) {
  TRIDENT_CHECK(Ctx < Ctxs.size(), "context index out of range");
  Context &C = Ctxs[Ctx];
  TRIDENT_CHECK(!C.StubMode, "stub already active on this context");
  TRIDENT_CHECK(!C.Active, "context is running a program");
  C.StubMode = true;
  C.StubRemaining = Instructions;
  C.StubDone = OnDone;
  C.FetchStallUntil = Now + StartupDelay;
  if (Instructions == 0 && StartupDelay == 0) {
    // Degenerate: completes at the current cycle.
    C.StubMode = false;
    if (C.StubDone)
      PendingStubDone.push_back({static_cast<uint8_t>(Ctx), C.StubDone});
    C.StubDone = {};
  }
}

bool SmtCore::stubActive(unsigned Ctx) const {
  TRIDENT_CHECK(Ctx < Ctxs.size(), "context index out of range");
  return Ctxs[Ctx].StubMode;
}

void SmtCore::clearStats() {
  for (Context &C : Ctxs)
    C.Stats = ContextStats();
  HelperBusy = 0;
}

void SmtCore::writeReg(Context &C, unsigned R, uint64_t V, Cycle Ready) {
  if (R == reg::Zero)
    return;
  C.Regs[R] = V;
  C.RegReady[R] = Ready;
}

void SmtCore::purgeRobSlow() {
  while (!Rob.empty() && Rob.front() <= Now) {
    std::pop_heap(Rob.begin(), Rob.end(), std::greater<Cycle>());
    Rob.pop_back();
  }
}

Cycle SmtCore::executeInstruction(unsigned CtxIdx, Context &C,
                                  const Instruction &I, Addr PC,
                                  Cycle EffNow) {
  Cycle Done = EffNow + executionLatency(I.Op);
  Addr NextPC = PC + 1;

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    C.Halted = true;
    C.Active = false;
    break;

  case Opcode::Add:
    writeReg(C, I.Rd, readReg(C, I.Rs1) + readReg(C, I.Rs2), Done);
    break;
  case Opcode::Sub:
    writeReg(C, I.Rd, readReg(C, I.Rs1) - readReg(C, I.Rs2), Done);
    break;
  case Opcode::And:
    writeReg(C, I.Rd, readReg(C, I.Rs1) & readReg(C, I.Rs2), Done);
    break;
  case Opcode::Or:
    writeReg(C, I.Rd, readReg(C, I.Rs1) | readReg(C, I.Rs2), Done);
    break;
  case Opcode::Xor:
    writeReg(C, I.Rd, readReg(C, I.Rs1) ^ readReg(C, I.Rs2), Done);
    break;
  case Opcode::Shl:
    writeReg(C, I.Rd, readReg(C, I.Rs1) << (readReg(C, I.Rs2) & 63), Done);
    break;
  case Opcode::Shr:
    writeReg(C, I.Rd, readReg(C, I.Rs1) >> (readReg(C, I.Rs2) & 63), Done);
    break;
  case Opcode::Mul:
    writeReg(C, I.Rd, readReg(C, I.Rs1) * readReg(C, I.Rs2), Done);
    break;

  case Opcode::AddI:
    writeReg(C, I.Rd,
             readReg(C, I.Rs1) + static_cast<uint64_t>(I.Imm), Done);
    break;
  case Opcode::SubI:
    writeReg(C, I.Rd,
             readReg(C, I.Rs1) - static_cast<uint64_t>(I.Imm), Done);
    break;
  case Opcode::AndI:
    writeReg(C, I.Rd, readReg(C, I.Rs1) & static_cast<uint64_t>(I.Imm), Done);
    break;
  case Opcode::OrI:
    writeReg(C, I.Rd, readReg(C, I.Rs1) | static_cast<uint64_t>(I.Imm), Done);
    break;
  case Opcode::XorI:
    writeReg(C, I.Rd, readReg(C, I.Rs1) ^ static_cast<uint64_t>(I.Imm), Done);
    break;
  case Opcode::ShlI:
    writeReg(C, I.Rd, readReg(C, I.Rs1) << (I.Imm & 63), Done);
    break;
  case Opcode::ShrI:
    writeReg(C, I.Rd, readReg(C, I.Rs1) >> (I.Imm & 63), Done);
    break;
  case Opcode::MulI:
    writeReg(C, I.Rd,
             readReg(C, I.Rs1) * static_cast<uint64_t>(I.Imm), Done);
    break;

  case Opcode::LoadImm:
    writeReg(C, I.Rd, static_cast<uint64_t>(I.Imm), Done);
    break;
  case Opcode::Move:
    writeReg(C, I.Rd, readReg(C, I.Rs1), Done);
    break;

  // FP ops are modeled as integer adds with FP latency: the experiments
  // depend on timing, not on FP values.
  case Opcode::FAdd:
  case Opcode::FMul:
  case Opcode::FDiv:
    writeReg(C, I.Rd, readReg(C, I.Rs1) + readReg(C, I.Rs2), Done);
    break;

  case Opcode::Load:
  case Opcode::NFLoad: {
    Addr EA = readReg(C, I.Rs1) + static_cast<uint64_t>(I.Imm);
    uint64_t V = Data.read64(EA);
    // Synthetic dereference loads access the cache as prefetches: they
    // warm the hierarchy but are not demand loads of the program.
    AccessKind Kind =
        I.Synthetic ? AccessKind::SoftwarePrefetch : AccessKind::DemandLoad;
    AccessResult R =
        Mem.access(PC + Config.MemBias, EA + Config.MemBias, Kind, EffNow);
    Done = R.ReadyCycle;
    writeReg(C, I.Rd, V, Done);
    if ((PubMask & eventMaskOf(EventKind::LoadOutcome)) && !I.Synthetic)
      Bus->publish(HardwareEvent::loadOutcome(CtxIdx, PC, I, EA, R, EffNow));
    break;
  }
  case Opcode::Store: {
    Addr EA = readReg(C, I.Rs1) + static_cast<uint64_t>(I.Imm);
    Data.write64(EA, readReg(C, I.Rs2));
    // Stores retire through the store buffer; the pipeline does not wait
    // for the fill, but the fill still consumes MSHRs/bus bandwidth.
    AccessResult R = Mem.access(PC + Config.MemBias, EA + Config.MemBias,
                                AccessKind::DemandStore, EffNow);
    (void)R;
    Done = EffNow + 1;
    break;
  }
  case Opcode::Prefetch: {
    Addr EA = readReg(C, I.Rs1) + static_cast<uint64_t>(I.Imm);
    Mem.access(PC + Config.MemBias, EA + Config.MemBias,
               AccessKind::SoftwarePrefetch, EffNow);
    Done = EffNow + 1;
    break;
  }

  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge: {
    int64_t A = static_cast<int64_t>(readReg(C, I.Rs1));
    int64_t B = static_cast<int64_t>(readReg(C, I.Rs2));
    bool Taken = false;
    switch (I.Op) {
    case Opcode::Beq:
      Taken = A == B;
      break;
    case Opcode::Bne:
      Taken = A != B;
      break;
    case Opcode::Blt:
      Taken = A < B;
      break;
    default:
      Taken = A >= B;
      break;
    }
    ++C.Stats.BranchesExecuted;
    bool Predicted = Taken;
    if (Predictor) {
      Predicted = Predictor->predict(PC);
      Predictor->update(PC, Taken);
    }
    if (Predicted != Taken) {
      ++C.Stats.BranchMispredicts;
      C.FetchStallUntil = Now + Config.MispredictPenalty;
    }
    if (Taken)
      NextPC = static_cast<Addr>(I.Imm);
    if (PubMask & eventMaskOf(EventKind::Branch))
      Bus->publish(HardwareEvent::branch(CtxIdx, PC, I, Taken, NextPC, Now));
    break;
  }
  case Opcode::Jump:
    NextPC = static_cast<Addr>(I.Imm);
    ++C.Stats.BranchesExecuted;
    if (PubMask & eventMaskOf(EventKind::Branch))
      Bus->publish(
          HardwareEvent::branch(CtxIdx, PC, I, /*Taken=*/true, NextPC, Now));
    break;

  case Opcode::NumOpcodes:
    TRIDENT_UNREACHABLE("invalid opcode");
    break;
  }

  C.PC = NextPC;
  return Done;
}

bool SmtCore::tryIssue(unsigned CtxIdx, Context &C, IssueBudget &B,
                       Cycle &Wake) {
  auto noteWake = [&](Cycle W) {
    if (W > Now && W < Wake)
      Wake = W;
  };

  if (B.Total == 0)
    return false;

  // Helper stub: dependency-free single-cycle work.
  if (C.StubMode) {
    if (C.FetchStallUntil > Now) {
      noteWake(C.FetchStallUntil);
      return false;
    }
    if (B.Int == 0)
      return false;
    --B.Total;
    --B.Int;
    if (C.StubRemaining == 0) {
      // Startup-only stub: nothing left to issue.
      C.StubMode = false;
      if (C.StubDone)
        PendingStubDone.push_back({static_cast<uint8_t>(CtxIdx), C.StubDone});
      C.StubDone = {};
      return false;
    }
    --C.StubRemaining;
    ++C.Stats.StubInstructions;
    ++C.Stats.IssuedTotal;
    if (C.StubRemaining == 0) {
      C.StubMode = false;
      if (C.StubDone)
        PendingStubDone.push_back({static_cast<uint8_t>(CtxIdx), C.StubDone});
      C.StubDone = {};
    }
    return true;
  }

  if (!C.Active || C.Halted)
    return false;
  if (C.FetchStallUntil > Now) {
    noteWake(C.FetchStallUntil);
    return false;
  }

  const Instruction &I = Code.fetch(C.PC);

  // Structural: per-class issue port.
  ExecClass EC = execClass(I.Op);
  unsigned *ClassBudget = nullptr;
  switch (EC) {
  case ExecClass::IntAlu:
  case ExecClass::Branch: // branches share integer issue ports
  case ExecClass::None:
    ClassBudget = &B.Int;
    break;
  case ExecClass::FpAlu:
    ClassBudget = &B.Fp;
    break;
  case ExecClass::Mem:
    ClassBudget = &B.Mem;
    break;
  }
  if (*ClassBudget == 0)
    return false;

  // Data: operands must be ready (in-order issue past this point would
  // reorder the dependence graph). Exception: *synthetic* instructions
  // (optimizer-inserted prefetch code) never block the pipeline — an OoO
  // core lets them wait in the scheduler while younger program
  // instructions proceed. They issue now and take effect when their
  // operands arrive (DeferUntil).
  Cycle OperandReady = 0;
  if (I.readsRs1())
    OperandReady = std::max(OperandReady, C.RegReady[I.Rs1]);
  if (I.readsRs2())
    OperandReady = std::max(OperandReady, C.RegReady[I.Rs2]);
  Cycle DeferUntil = Now;
  if (OperandReady > Now) {
    if (!I.Synthetic) {
      noteWake(OperandReady);
      return false;
    }
    DeferUntil = OperandReady;
  }

  // Capacity: ROB occupancy. Eager purging keeps the heap shallow, so
  // the pops that do happen sift through a handful of entries instead of
  // a full 128-deep heap; the common nothing-matured case is the inline
  // two-load check in purgeRob().
  purgeRob();
  if (robFull()) {
    noteWake(robEarliest());
    return false;
  }

  --B.Total;
  --*ClassBudget;

  Addr PC = C.PC;
  Cycle Done = executeInstruction(CtxIdx, C, I, PC, DeferUntil);
  TRIDENT_DCHECK(Done >= DeferUntil,
                 "instruction completes before it issues (done %llu < issue "
                 "%llu, pc 0x%llx)",
                 (unsigned long long)Done, (unsigned long long)DeferUntil,
                 (unsigned long long)PC);
  Rob.push_back(Done);
  std::push_heap(Rob.begin(), Rob.end(), std::greater<Cycle>());
  TRIDENT_DCHECK(Rob.size() <= Config.RobSize,
                 "ROB occupancy %zu exceeds capacity %u", Rob.size(),
                 Config.RobSize);

  ++C.Stats.IssuedTotal;
  if (!I.Synthetic) {
    C.Stats.CommittedOriginal += 1 + I.ExtraCommits;
    // Periodic prefetcher-effectiveness sample (off unless configured AND
    // subscribed; see FeedbackEvery). Main context only, so the sampling
    // clock is the reported instruction count.
    if (FeedbackEvery != 0 && CtxIdx == 0) {
      if (FeedbackCountdown <= 1u + I.ExtraCommits) {
        Bus->publish(HardwareEvent::hwPfFeedback(Mem.feedback(), Now));
        FeedbackCountdown = FeedbackEvery;
      } else {
        FeedbackCountdown -= 1u + I.ExtraCommits;
      }
    }
  }
  if (PubMask & eventMaskOf(EventKind::Commit))
    Bus->publish(HardwareEvent::commit(CtxIdx, PC, I, Now));
  return true;
}

SmtCore::StopReason SmtCore::run(uint64_t TargetCommits, Cycle CycleLimit) {
  Context &Main = Ctxs[0];
  const uint64_t Goal = Main.Stats.CommittedOriginal + TargetCommits;

  // Hoist the bus null-check out of the per-commit hot path: sample the
  // subscriber mask once, so each publish site below is one bit-test.
  PubMask = Bus ? Bus->activeMask() : 0;
  FeedbackEvery = (PubMask & eventMaskOf(EventKind::HwPfFeedback))
                      ? Config.HwPfFeedbackIntervalCommits
                      : 0;
  if (FeedbackEvery != 0 && FeedbackCountdown == 0)
    FeedbackCountdown = FeedbackEvery;

  while (true) {
    if (Main.Stats.CommittedOriginal >= Goal)
      return StopReason::CommitTarget;
    if (Main.Halted)
      return StopReason::Halted;
    if (Now >= CycleLimit)
      return StopReason::CycleLimit;

    IssueBudget B{Config.IssueWidth, Config.IntIssueLimit, Config.FpIssueLimit,
                  Config.MemIssueLimit};
    Cycle Wake = ~static_cast<Cycle>(0);
    bool AnyIssued = false;
    bool AnyStub = false;

    // Context 0 (the program) has priority; helper contexts take leftovers.
    for (unsigned CtxIdx = 0; CtxIdx < Ctxs.size(); ++CtxIdx) {
      Context &C = Ctxs[CtxIdx];
      AnyStub |= C.StubMode;
      while (tryIssue(CtxIdx, C, B, Wake)) {
        AnyIssued = true;
        if (CtxIdx == 0 && Main.Stats.CommittedOriginal >= Goal)
          break;
      }
      AnyStub |= C.StubMode;
    }

    // Fire stub completions outside the issue loop (they may patch code or
    // start new stubs).
    if (!PendingStubDone.empty()) {
      // Swap into the member scratch (both keep their capacity): firing a
      // completion may start a new stub, which pushes onto the — now
      // empty — pending list without invalidating this iteration.
      FiringStubDone.clear();
      FiringStubDone.swap(PendingStubDone);
      // Published unconditionally (stub completions are rare, and this
      // keeps the publish counters independent of which sinks subscribe).
      for (StubCompletion &SC : FiringStubDone) {
        if (Bus)
          Bus->publish(HardwareEvent::helperDone(SC.Ctx, Now));
        SC.Fn(Now);
      }
      AnyStub = true; // completion cycle counts as helper activity
    }

    // Advance time. When nothing could issue, skip directly to the next
    // wake-up point (long miss stalls simulate in O(1)).
    Cycle Prev = Now;
    if (AnyIssued) {
      ++Now;
    } else {
      if (Wake == ~static_cast<Cycle>(0)) {
        // Nothing will ever wake this machine up (e.g. all contexts
        // halted); report a halt to the caller.
        return StopReason::Halted;
      }
      // Cycle-counter monotonicity: noteWake only records strictly-future
      // cycles, so a skip-ahead must move time forward. A violation here
      // means some unit reported an event in the past and the whole
      // timing feedback loop (trace timing vs. miss latency) is suspect.
      TRIDENT_CHECK(Wake > Now,
                    "time skip is not monotonic: wake %llu <= now %llu",
                    (unsigned long long)Wake, (unsigned long long)Now);
      Now = Wake;
    }
    if (AnyStub)
      HelperBusy += Now - Prev;
  }
}
