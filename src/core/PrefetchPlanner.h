//===- PrefetchPlanner.h - Classify loads & plan prefetches ----*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis half of the paper's dynamic prefetch optimizer
/// (Section 3.4):
///
///  * identify every delinquent load in a hot trace via the DLT (including
///    partial-window classification),
///  * classify each as Stride (single simple arithmetic recurrence of the
///    base register in the trace, or DLT-stride-predictable), Pointer
///    (destination register used as a base register before modification),
///    or neither,
///  * group loads sharing a live base register into Same-Object groups,
///  * plan prefetch instructions: per stride group one prefetch at the
///    minimum offset plus additional prefetches for members more than a
///    cache line away (skipped members trigger one extra block), with
///    the distance folded into the immediate as
///    `prefetch (offset + stride*distance)(base)`;
///    pointer members get a non-faulting dereference pair.
///
/// The plan is the durable artifact: re-optimization re-emits the trace
/// body from the base body plus the (extended) plan, and self-repair
/// patches the planned instructions' immediates in place.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CORE_PREFETCHPLANNER_H
#define TRIDENT_CORE_PREFETCHPLANNER_H

#include "dlt/DelinquentLoadTable.h"
#include "isa/Instruction.h"

#include <cstdint>
#include <vector>

namespace trident {

enum class LoadClass : uint8_t { Unclassified, Stride, Pointer };

/// One delinquent load found in a trace, with classification inputs.
struct DelinquentLoad {
  unsigned BodyIdx = 0; ///< Index into the trace base body.
  Addr PC = 0;          ///< Code-cache PC it was monitored under.
  LoadClass Class = LoadClass::Unclassified;
  int64_t Stride = 0;        ///< Valid when Class == Stride.
  bool StrideFromDlt = false;
  unsigned BaseReg = 0;
  uint64_t BaseVersion = 0; ///< SSA-ish version of the base at the use.
  int64_t Offset = 0;
  double AvgMissLatency = 0.0;
};

/// One planned insertion: a prefetch instruction, or a non-faulting
/// dereference load followed by one or more prefetches off its result.
struct PlannedPrefetch {
  enum class Kind : uint8_t {
    StridePf,     ///< prefetch (BaseComponent + Stride*D)(BaseReg)
    PointerDeref, ///< nfload rt,(BaseComponent + Stride*D)(BaseReg);
                  ///< prefetch (o)(rt) for each o in DerefOffsets
  };
  Kind K = Kind::StridePf;
  unsigned InsertBeforeIdx = 0; ///< Base-body index to insert before.
  unsigned BaseReg = 0;
  int64_t BaseComponent = 0; ///< Offset component of the immediate.
  int64_t Stride = 0;        ///< Per-iteration stride (0 = not distance-scaled).
  /// PointerDeref: second-level prefetch offsets (the next object's lines).
  std::vector<int64_t> DerefOffsets;
  unsigned GroupId = 0;
};

/// Per-covered-load repair bookkeeping ("the optimizer always maintains
/// relevant information from all delinquent loads, such as the number of
/// repairs left ... and the average access latency history", Section
/// 3.5.2). Kept per load: triggers from different loads of one group must
/// not be compared against each other's latency history.
struct LoadRepairState {
  int RepairsLeft = 0;
  double LastAvgAccessLatency = -1.0;
  /// Direction of the previous distance adjustment (+1/-1). Repair is a
  /// 1-D hill climb: keep moving while the latency improves, reverse when
  /// it clearly worsens. (A naive "decrement whenever latency rose"
  /// cascades to distance 1: each decrement worsens latency, which the
  /// rule reads as another decrement.)
  int LastMove = +1;
  /// Best observation so far; restored when the repair budget expires.
  double BestAvgAccessLatency = -1.0;
  int BestDistance = 1;
  bool Mature = false;
};

/// A same-object group sharing one repairable distance (repairing "all
/// the object prefetch distances as a group", Section 3.4.1).
struct PrefetchGroup {
  unsigned Id = 0;
  bool Repairable = false; ///< Stride groups only.
  int Distance = 1;
  int MaxDistance = 1;
  std::vector<unsigned> CoveredLoadIdxs; ///< Base-body indices covered.
  std::vector<LoadRepairState> PerLoad;  ///< Parallel to CoveredLoadIdxs.
  std::vector<size_t> PrefetchIdxs;      ///< Into PrefetchPlan::Prefetches.

  /// True once every covered load has spent its repair budget.
  bool exhausted() const {
    for (const LoadRepairState &S : PerLoad)
      if (!S.Mature)
        return false;
    return true;
  }

  LoadRepairState *stateFor(unsigned BodyIdx) {
    for (size_t I = 0; I < CoveredLoadIdxs.size(); ++I)
      if (CoveredLoadIdxs[I] == BodyIdx)
        return &PerLoad[I];
    return nullptr;
  }
};

struct PrefetchPlan {
  std::vector<PlannedPrefetch> Prefetches;
  std::vector<PrefetchGroup> Groups;
  /// Base-body indices of delinquent loads the planner could not cover;
  /// the runtime matures them.
  std::vector<unsigned> UncoverableLoadIdxs;

  bool covers(unsigned BodyIdx) const;
  PrefetchGroup *groupCovering(unsigned BodyIdx);
};

/// Result of emitting a base body + plan into an installable trace body.
struct PlanEmission {
  std::vector<Instruction> NewBody;
  /// Base-body index -> new-body index (for every base instruction).
  std::vector<unsigned> OldToNew;
  /// Per planned prefetch: new-body index of its *patchable* instruction
  /// (the prefetch itself, or the nfload of a deref pair).
  std::vector<unsigned> PatchSlots;
};

struct PlannerConfig {
  unsigned LineSize = 64;
  /// Scratch register for pointer dereference pairs (reserved for the
  /// optimizer; see isa/Opcode.h).
  unsigned ScratchReg = reg::FirstScratch;
  /// Upper bound on any prefetch distance.
  int DistanceCap = 64;
  /// Enable same-object grouping & pointer dereference prefetching
  /// (off for the paper's "basic" scheme).
  bool WholeObject = true;
};

class PrefetchPlanner {
public:
  explicit PrefetchPlanner(const PlannerConfig &Cfg = {}) : Config(Cfg) {}

  /// Finds and classifies all delinquent loads of a trace. Analysis runs
  /// over the *base* body (no synthetic instructions); \p InstalledPCs
  /// maps each base-body index to the code-cache PC the instruction is
  /// currently installed at (where the DLT monitored it).
  std::vector<DelinquentLoad>
  identifyDelinquentLoads(const std::vector<Instruction> &BaseBody,
                          const std::vector<Addr> &InstalledPCs,
                          const DelinquentLoadTable &Dlt) const;

  /// Classification only (exposed for tests): fills Class/Stride/Base
  /// fields of \p DL given the base trace body.
  void classify(const std::vector<Instruction> &BaseBody, DelinquentLoad &DL,
                const DelinquentLoadTable &Dlt) const;

  /// Extends \p Plan with directives for the loads in \p Loads that are
  /// not covered yet. \p InitialDistance seeds new groups. Returns the
  /// number of newly covered loads.
  unsigned plan(const std::vector<Instruction> &BaseBody,
                const std::vector<DelinquentLoad> &Loads, PrefetchPlan &Plan,
                int InitialDistance) const;

  /// Materializes BaseBody + Plan into an installable body. All inserted
  /// instructions are Synthetic.
  PlanEmission emit(const std::vector<Instruction> &BaseBody,
                    const PrefetchPlan &Plan) const;

  /// The immediate a planned prefetch carries at distance \p D.
  static int64_t immediateFor(const PlannedPrefetch &P, int D) {
    return P.BaseComponent + P.Stride * D;
  }

  const PlannerConfig &config() const { return Config; }

private:
  /// Computes, for every body index, the version of each register before
  /// that instruction executes (version = number of prior writes).
  static std::vector<uint8_t> regWriteCounts(
      const std::vector<Instruction> &Body, unsigned Reg);

  PlannerConfig Config;
};

} // namespace trident

#endif // TRIDENT_CORE_PREFETCHPLANNER_H
