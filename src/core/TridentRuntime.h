//===- TridentRuntime.h - Event-driven optimization runtime ----*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Trident runtime extended with the self-repairing prefetcher — the
/// orchestrator of the whole paper:
///
///  * observes the commit stream of the main thread (its monitors are
///    independent EventBus subscribers; see attach()),
///  * detects hot traces (branch profiler), forms and links them
///    (trace builder, code cache, binary patcher, watch table),
///  * monitors hot-trace loads in the DLT; delinquent-load events spawn
///    the helper thread (modeled as a costed work stub on the spare SMT
///    context, with the paper's 2000-cycle startup latency),
///  * the helper inserts prefetches (PrefetchPlanner) or repairs existing
///    ones by patching distance immediates in the code cache, following
///    the adaptive algorithm of Sections 3.5.1-3.5.2 (distance 1 upward,
///    back off when average access latency rises, 2x-max-distance repair
///    budget, prefetch maturing).
///
/// PrefetchMode selects the paper's three evaluated schemes (Figure 5):
/// Basic (estimated fixed distance, no grouping), WholeObject (same-object
/// + pointer prefetching, estimated fixed distance), SelfRepairing (whole
/// object + adaptive repair).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_CORE_TRIDENTRUNTIME_H
#define TRIDENT_CORE_TRIDENTRUNTIME_H

#include "core/PrefetchPlanner.h"
#include "cpu/SmtCore.h"
#include "dlt/DelinquentLoadTable.h"
#include "events/EventBus.h"
#include "events/EventQueue.h"
#include "trident/BranchProfiler.h"
#include "trident/CodeCache.h"
#include "trident/CostModel.h"
#include "trident/Registration.h"
#include "trident/TraceBuilder.h"
#include "trident/WatchTable.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace trident {

class StatRegistry;

enum class PrefetchMode : uint8_t {
  None,          ///< Trident traces only, no software prefetching.
  Basic,         ///< Prior-work style: per-load stride pf, estimated dist.
  WholeObject,   ///< + same-object groups and pointer deref, fixed dist.
  SelfRepairing, ///< + adaptive distance repair (the contribution).
};

const char *prefetchModeName(PrefetchMode M);

struct RuntimeConfig {
  PrefetchMode Mode = PrefetchMode::SelfRepairing;
  /// When false, traces are formed and optimized but never linked — the
  /// Section 5.1 overhead experiment.
  bool LinkTraces = true;
  DltConfig Dlt = DltConfig::baseline();
  BranchProfilerConfig Profiler;
  TraceBuilderConfig Builder;
  OptimizerCostModel Cost;
  unsigned WatchEntries = 256;
  /// Hardware context the helper thread runs on.
  unsigned HelperCtx = 1;
  /// Memory latency (max-distance numerator, Section 3.5.2).
  unsigned MemoryLatency = 350;
  /// L1 hit latency (to derive exposed miss latency for DLT updates).
  unsigned L1HitLatency = 3;
  int DistanceCap = 64;
  unsigned MaxPendingEvents = 16;

  /// Ablation (Section 5.3's "alternate strategy"): seed self-repairing
  /// groups with the equation-2 estimate instead of distance 1. The paper
  /// found performance "almost identical" because repair converges fast.
  bool SelfRepairInitialEstimate = false;

  /// Future-work feature (Section 3.5.2): clear prefetch-mature flags when
  /// a program phase change is detected (the executing-trace mix shifts),
  /// so loads whose behaviour changed can be re-optimized.
  bool ClearMatureOnPhaseChange = false;
  /// Commits per phase-detection interval.
  uint64_t PhaseIntervalCommits = 200'000;
  /// Manhattan distance between successive trace-mix signatures above
  /// which an interval counts as a phase change (0..2).
  double PhaseChangeThreshold = 0.5;

  static RuntimeConfig baseline() { return RuntimeConfig(); }
};

struct RuntimeStats {
  uint64_t HotTraceEvents = 0;
  uint64_t TracesInstalled = 0;
  uint64_t TraceReinstalls = 0;
  uint64_t DelinquentEvents = 0;
  uint64_t InsertionOptimizations = 0;
  uint64_t RepairOptimizations = 0;
  uint64_t LoadsMatured = 0;
  /// Settled loads whose repair state was re-opened after their DLT entry
  /// was lost and they re-crossed the delinquency threshold.
  uint64_t RepairsReopened = 0;
  /// Hill-climb restarts triggered by a load's observed latency jumping
  /// far outside the band the climb was operating in.
  uint64_t RegimeShiftsDetected = 0;
  uint64_t EventsDropped = 0;
  uint64_t PrefetchInstructionsPlanned = 0;
  /// Distance set by the most recent repair (diagnostic).
  /// trident-analyze: unregistered-ok(last-value gauge, not a counter;
  /// exporting it would churn the golden JSONL on every repair)
  int LastRepairDistance = 0;

  // Figure 4: load-miss coverage.
  uint64_t LoadMissesTotal = 0;
  uint64_t LoadMissesInTraces = 0;
  uint64_t LoadMissesCovered = 0;

  // Figure 6: dynamic-load breakdown (main thread, original loads only).
  uint64_t LdTotal = 0;
  uint64_t LdHitNone = 0;
  uint64_t LdHitPrefetched = 0;
  uint64_t LdPartial = 0;
  uint64_t LdMiss = 0;
  uint64_t LdMissDueToPf = 0;

  uint64_t CommitsTotal = 0;
  uint64_t CommitsInTraces = 0;
  uint64_t PhaseChangesDetected = 0;
  uint64_t MatureFlagsCleared = 0;
  /// Highest event-queue occupancy observed in the measurement window.
  uint64_t PeakPendingEvents = 0;

  double traceMissCoverage() const {
    return LoadMissesTotal == 0
               ? 0.0
               : double(LoadMissesInTraces) / double(LoadMissesTotal);
  }
  double prefetchMissCoverage() const {
    return LoadMissesTotal == 0
               ? 0.0
               : double(LoadMissesCovered) / double(LoadMissesTotal);
  }

  /// Registers every field under \p Prefix (e.g. "trident.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

class TridentRuntime final {
public:
  TridentRuntime(const RuntimeConfig &Config, Program &Prog, SmtCore &Core,
                 CodeCache &CC);

  /// Monitoring and optimization are disabled during warmup (Section 4.2).
  void setEnabled(bool E) { Enabled = E; }
  bool enabled() const { return Enabled; }

  /// Subscribes the runtime's hardware monitors to \p B, each as an
  /// independent subscriber: the watch table (Commit), the branch
  /// profiler (Commit + Branch), and the DLT (LoadOutcome). Subscription
  /// order is load-bearing: the watch table's excursion tracking ran
  /// before profiler training inside the old monolithic listener, and
  /// the bus dispatches Commit subscribers in exactly this order.
  ///
  /// The runtime also publishes its filtered events (HotTrace,
  /// DelinquentLoad) and the TraceEntry/TraceExit excursion markers back
  /// into \p B for observability sinks.
  void attach(EventBus &B);

  const RuntimeStats &stats() const { return Stats; }
  void clearStats() {
    Stats = RuntimeStats();
    Queue.clearStats();
  }

  /// The bounded hardware queue between the monitor filters and the
  /// helper thread (drop accounting lives here).
  const EventQueue &eventQueue() const { return Queue; }

  const RuntimeConfig &config() const { return Config; }
  /// The helper-thread registration structure (Section 3.1).
  const RegistrationStructure &registration() const { return Registration; }
  const DelinquentLoadTable &dlt() const { return Dlt; }
  const WatchTable &watchTable() const { return Watch; }
  const BranchProfiler &profiler() const { return Profiler; }
  size_t numTraces() const { return Traces.size(); }

  /// Introspection for tests/examples: the plan of the trace rooted at
  /// \p OrigStart, or nullptr.
  const PrefetchPlan *planFor(Addr OrigStart) const;
  /// Current distance of the first repairable group of that trace, or 0.
  int currentDistanceFor(Addr OrigStart) const;

  /// Fault-injection hook (src/faults): unlinks every installed trace —
  /// restores the entry patches, retargets all code-cache back edges at
  /// original code (threads inside a dead body exit at their next
  /// loop-back), evicts the watch entries, and un-suppresses the profiler
  /// so traces can re-form. Returns the number of traces invalidated.
  unsigned invalidateAllTraces();

  /// Re-attempts event dispatch (e.g. after a fault-injected queue stall
  /// clears — nothing else would drain events queued during the stall).
  void pumpEvents() { dispatchNext(); }

private:
  friend class FaultInjector; // perturbs Dlt / Watch / Queue directly

  struct TraceMeta {
    uint32_t Id = 0;
    Addr OrigStart = 0;
    std::vector<Instruction> BaseBody;
    PrefetchPlan Plan;
    Addr CacheAddr = 0;
    std::vector<unsigned> OldToNew;      ///< base idx -> installed offset
    std::vector<Addr> PrefetchSlotAddrs; ///< per Plan.Prefetches entry
    /// All code-cache regions ever installed for this trace (start, len);
    /// old regions' closing jumps are re-targeted at the newest head.
    std::vector<std::pair<Addr, size_t>> Installs;
    /// Installed load PC -> base-body index (accumulates across installs
    /// so stale in-flight events still resolve).
    std::unordered_map<Addr, unsigned> LoadPCToBaseIdx;
    bool Linked = false;
    /// Unlinked by a fault injection; stays in Traces (ids are dense) but
    /// introspection skips it and a fresh trace may form at OrigStart.
    bool Invalidated = false;
  };

  // Subscriber adapters: each monitor appears on the bus as its own
  // subscriber, forwarding into the runtime that owns the shared state.
  struct WatchSubscriber final : EventSubscriber {
    TridentRuntime &R;
    explicit WatchSubscriber(TridentRuntime &Rt) : R(Rt) {}
    void onEvent(const HardwareEvent &E) override { R.handleWatchCommit(E); }
  };
  struct ProfilerSubscriber final : EventSubscriber {
    TridentRuntime &R;
    explicit ProfilerSubscriber(TridentRuntime &Rt) : R(Rt) {}
    void onEvent(const HardwareEvent &E) override {
      if (E.Kind == EventKind::Branch)
        R.handleProfilerBranch(E);
      else
        R.handleProfilerCommit(E);
    }
  };
  struct DltSubscriber final : EventSubscriber {
    TridentRuntime &R;
    explicit DltSubscriber(TridentRuntime &Rt) : R(Rt) {}
    void onEvent(const HardwareEvent &E) override { R.handleLoad(E); }
  };

  void handleWatchCommit(const HardwareEvent &E);
  void handleProfilerCommit(const HardwareEvent &E);
  void handleProfilerBranch(const HardwareEvent &E);
  void handleLoad(const HardwareEvent &E);

  void raiseEvent(const HardwareEvent &E);
  void dispatchNext();
  void startHotTraceWork(const HotTraceCandidate &Cand);
  void startDelinquentWork(Addr LoadPC, uint32_t TraceId);

  /// Parks the arguments of the helper-thread work whose costed stub is
  /// currently running on the spare context; the stub-completion
  /// trampoline consumes it. One slot suffices because dispatchNext gates
  /// new work on Core.stubActive, so at most one helper stub is in flight
  /// — and a plain struct keeps stub launch free of heap-allocating
  /// closures (the SmtCore callback is a bare function pointer).
  struct PendingWork {
    enum class Kind : uint8_t { None, Formation, Insertion, Repair, Mature };
    Kind WorkKind = Kind::None;
    Trace FormedTrace;          ///< Formation
    PrefetchPlan Plan;          ///< Insertion
    PlanEmission Emission;      ///< Insertion
    std::vector<Addr> ClearPCs; ///< Insertion
    uint32_t TraceId = 0;       ///< Insertion / Repair / Mature
    unsigned BaseIdx = 0;       ///< Repair
    Addr LoadPC = 0;            ///< Repair / Mature
  };

  /// SmtCore stub-completion trampoline (Ctx is the TridentRuntime).
  static void onStubDone(void *Self, Cycle C);
  void finishPendingWork();
  /// Claims the (empty) pending slot for work of kind \p K.
  PendingWork &parkWork(PendingWork::Kind K);

  void finishTraceFormation(Trace T);
  void beginInsertion(TraceMeta &M, Addr TriggerPC);
  void finishInsertion(uint32_t TraceId, PrefetchPlan NewPlan,
                       PlanEmission Emission,
                       std::vector<Addr> ClearPCs);
  void finishRepair(uint32_t TraceId, unsigned BaseIdx, Addr LoadPC);
  void finishMature(uint32_t TraceId, Addr LoadPC);

  /// Installs \p Body for \p M (allocating code cache space, repatching the
  /// entry jump, refreshing the watch table and PC maps).
  void installBody(TraceMeta &M, const std::vector<Instruction> &Body,
                   const std::vector<unsigned> &OldToNew,
                   const std::vector<unsigned> &PatchSlots);

  int estimateDistance(const TraceMeta &M, Addr TriggerPC) const;
  int maxDistanceFor(const TraceMeta &M) const;
  void clearOptFlag(uint32_t TraceId);

  /// Phase detection over the executing-trace mix; on a phase change,
  /// clears mature flags so changed loads can be re-optimized.
  void accountPhase(Addr PC);
  void onPhaseChange();

  RuntimeConfig Config;
  Program &Prog;
  SmtCore &Core;
  CodeCache &CC;
  RegistrationStructure Registration;
  BinaryPatcher Patcher;
  BranchProfiler Profiler;
  TraceBuilder Builder;
  WatchTable Watch;
  DelinquentLoadTable Dlt;
  PrefetchPlanner Planner;

  std::vector<TraceMeta> Traces;
  EventQueue Queue;
  RuntimeStats Stats;
  PendingWork Pending;
  bool Enabled = false;

  EventBus *Bus = nullptr;
  WatchSubscriber WatchSub{*this};
  ProfilerSubscriber ProfilerSub{*this};
  DltSubscriber DltSub{*this};

  // Per-main-context trace excursion tracking (iteration timing).
  uint32_t CurTraceId = ~0u;
  Addr CurHeadAddr = 0;
  Cycle LastHeadCycle = 0;
  bool LastHeadValid = false;

  // Phase detection state: commits per trace id this interval vs last.
  std::vector<uint64_t> PhaseCounts;
  std::vector<double> PrevPhaseSignature;
  uint64_t PhaseCommits = 0;
  uint64_t PhaseOtherCommits = 0;
};

} // namespace trident

#endif // TRIDENT_CORE_TRIDENTRUNTIME_H
