//===- PrefetchPlanner.cpp ------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchPlanner.h"
#include "support/Check.h"

#include <algorithm>
#include <map>

using namespace trident;

bool PrefetchPlan::covers(unsigned BodyIdx) const {
  for (const PrefetchGroup &G : Groups)
    for (unsigned Idx : G.CoveredLoadIdxs)
      if (Idx == BodyIdx)
        return true;
  for (unsigned Idx : UncoverableLoadIdxs)
    if (Idx == BodyIdx)
      return true;
  return false;
}

PrefetchGroup *PrefetchPlan::groupCovering(unsigned BodyIdx) {
  for (PrefetchGroup &G : Groups)
    for (unsigned Idx : G.CoveredLoadIdxs)
      if (Idx == BodyIdx)
        return &G;
  return nullptr;
}

std::vector<uint8_t>
PrefetchPlanner::regWriteCounts(const std::vector<Instruction> &Body,
                                unsigned Reg) {
  std::vector<uint8_t> Versions(Body.size(), 0);
  uint8_t V = 0;
  for (size_t I = 0; I < Body.size(); ++I) {
    Versions[I] = V; // version *before* instruction I executes
    const Instruction &Ins = Body[I];
    if (Ins.writesRd() && Ins.Rd == Reg) {
      // A self-chasing pointer load (p = p->next) advances to the next
      // object of the *same* traversal; for same-object grouping the loads
      // before and after it belong together (the paper groups the chasing
      // load with the field loads it feeds). Do not split the group there.
      bool SelfChase = Ins.isLoad() && Ins.Rs1 == Reg;
      if (!SelfChase)
        ++V;
    }
  }
  return Versions;
}

void PrefetchPlanner::classify(const std::vector<Instruction> &BaseBody,
                               DelinquentLoad &DL,
                               const DelinquentLoadTable &Dlt) const {
  const Instruction &L = BaseBody[DL.BodyIdx];
  TRIDENT_CHECK(L.isLoad(), "classifying a non-load");
  DL.BaseReg = L.Rs1;
  DL.Offset = L.Imm;

  // -- Stride via trace recurrence: the base register must be updated by
  // exactly one simple arithmetic instruction over itself and a constant
  // (Section 3.4.1).
  unsigned Writers = 0;
  int64_t RecurrenceStride = 0;
  bool SimpleRecurrence = false;
  for (const Instruction &I : BaseBody) {
    if (!I.writesRd() || I.Rd != DL.BaseReg)
      continue;
    ++Writers;
    if (I.Op == Opcode::AddI && I.Rs1 == DL.BaseReg) {
      RecurrenceStride = I.Imm;
      SimpleRecurrence = true;
    } else if (I.Op == Opcode::SubI && I.Rs1 == DL.BaseReg) {
      RecurrenceStride = -I.Imm;
      SimpleRecurrence = true;
    } else {
      SimpleRecurrence = false;
    }
  }
  if (Writers == 1 && SimpleRecurrence && RecurrenceStride != 0) {
    DL.Class = LoadClass::Stride;
    DL.Stride = RecurrenceStride;
    DL.StrideFromDlt = false;
    return;
  }

  // -- Stride via DLT hardware observation: "we also mark any load the DLT
  // found stride-predictable (which picks up more complex recurrences)",
  // including pointer loads over regularly allocated structures.
  if (std::optional<DltSnapshot> S = Dlt.lookup(DL.PC)) {
    if (S->StridePredictable && S->Stride != 0) {
      DL.Class = LoadClass::Stride;
      DL.Stride = S->Stride;
      DL.StrideFromDlt = true;
      return;
    }
  }

  // -- Pointer: destination used (before modification) as the base of
  // another load. The scan wraps around the loop body once, since the use
  // is often in the next iteration (p = p->next).
  unsigned Rd = L.Rd;
  if (Rd != reg::Zero) {
    size_t N = BaseBody.size();
    bool IsPointer = (L.Rs1 == Rd); // self-chasing: ld r, (r)
    for (size_t Step = 1; Step < N && !IsPointer; ++Step) {
      const Instruction &I = BaseBody[(DL.BodyIdx + Step) % N];
      if (I.isLoad() && I.Rs1 == Rd) {
        IsPointer = true;
        break;
      }
      if (I.writesRd() && I.Rd == Rd)
        break;
    }
    if (IsPointer) {
      DL.Class = LoadClass::Pointer;
      return;
    }
  }

  DL.Class = LoadClass::Unclassified;
}

std::vector<DelinquentLoad> PrefetchPlanner::identifyDelinquentLoads(
    const std::vector<Instruction> &BaseBody,
    const std::vector<Addr> &InstalledPCs,
    const DelinquentLoadTable &Dlt) const {
  TRIDENT_CHECK(InstalledPCs.size() == BaseBody.size(), "PC map must cover the body");
  std::vector<DelinquentLoad> Out;
  for (size_t I = 0; I < BaseBody.size(); ++I) {
    const Instruction &Ins = BaseBody[I];
    if (!Ins.isLoad() || Ins.Synthetic)
      continue;
    Addr PC = InstalledPCs[I];
    if (!Dlt.isDelinquent(PC))
      continue;
    DelinquentLoad DL;
    DL.BodyIdx = static_cast<unsigned>(I);
    DL.PC = PC;
    if (std::optional<DltSnapshot> S = Dlt.lookup(PC))
      DL.AvgMissLatency = S->avgMissLatency();
    classify(BaseBody, DL, Dlt);
    Out.push_back(DL);
  }
  return Out;
}

unsigned PrefetchPlanner::plan(const std::vector<Instruction> &BaseBody,
                               const std::vector<DelinquentLoad> &Loads,
                               PrefetchPlan &Plan,
                               int InitialDistance) const {
  InitialDistance = std::clamp(InitialDistance, 1, Config.DistanceCap);

  // Work over loads not already covered by the existing plan.
  std::vector<DelinquentLoad> Fresh;
  for (const DelinquentLoad &DL : Loads)
    if (!Plan.covers(DL.BodyIdx))
      Fresh.push_back(DL);
  if (Fresh.empty())
    return 0;

  unsigned Covered = 0;
  unsigned NextGroupId = static_cast<unsigned>(Plan.Groups.size());

  // --- Same-object grouping: key = (base register, base version at use).
  // Every group keyed here contains at least one delinquent load; the
  // degenerate single-load group is explicitly allowed (Section 3.4.1).
  std::map<std::pair<unsigned, uint64_t>, std::vector<size_t>> GroupMap;
  for (size_t I = 0; I < Fresh.size(); ++I) {
    const DelinquentLoad &DL = Fresh[I];
    std::vector<uint8_t> Vers = regWriteCounts(BaseBody, DL.BaseReg);
    uint64_t Version = Vers[DL.BodyIdx];
    if (!Config.WholeObject) {
      // Basic scheme: no grouping — unique key per load.
      GroupMap[{DL.BaseReg, (uint64_t(1) << 32) + I}].push_back(I);
      (void)Version;
    } else {
      GroupMap[{DL.BaseReg, Version}].push_back(I);
    }
  }

  for (auto &[Key, MemberIdxs] : GroupMap) {
    // A group is stride address predictable when any member is Stride.
    const DelinquentLoad *StrideRep = nullptr;
    for (size_t MI : MemberIdxs)
      if (Fresh[MI].Class == LoadClass::Stride &&
          (!StrideRep || Fresh[MI].AvgMissLatency > StrideRep->AvgMissLatency))
        StrideRep = &Fresh[MI];

    if (StrideRep) {
      // ---- Stride-based same-object prefetching (Section 3.4.2).
      PrefetchGroup G;
      G.Id = NextGroupId++;
      G.Repairable = true;
      G.Distance = InitialDistance;
      int64_t Stride = StrideRep->Stride;

      // Sort member offsets ascending.
      std::vector<size_t> ByOffset(MemberIdxs);
      std::sort(ByOffset.begin(), ByOffset.end(), [&](size_t A, size_t B) {
        return Fresh[A].Offset < Fresh[B].Offset;
      });
      unsigned FirstBodyIdx = ~0u;
      for (size_t MI : MemberIdxs)
        FirstBodyIdx = std::min(FirstBodyIdx, Fresh[MI].BodyIdx);

      const int64_t Line = static_cast<int64_t>(Config.LineSize);
      int64_t MinOff = Fresh[ByOffset.front()].Offset;
      int64_t CoveredEnd = MinOff + Line;
      bool AnySkipped = false;

      auto emitStridePf = [&](int64_t Off) {
        PlannedPrefetch P;
        P.K = PlannedPrefetch::Kind::StridePf;
        P.InsertBeforeIdx = FirstBodyIdx;
        P.BaseReg = Key.first;
        P.BaseComponent = Off;
        P.Stride = Stride;
        P.GroupId = G.Id;
        G.PrefetchIdxs.push_back(Plan.Prefetches.size());
        Plan.Prefetches.push_back(P);
      };

      emitStridePf(MinOff);
      for (size_t K = 1; K < ByOffset.size(); ++K) {
        int64_t Off = Fresh[ByOffset[K]].Offset;
        if (Off < CoveredEnd) {
          // Within the cache line of the previous prefetch: skip, but the
          // unknown base alignment may push it into the next block.
          if (Off != MinOff)
            AnySkipped = true;
          continue;
        }
        emitStridePf(Off);
        CoveredEnd = Off + Line;
      }
      if (AnySkipped)
        emitStridePf(CoveredEnd); // one additional block after skips

      // Pointer members: also dereference right after the stride prefetch
      // (Section 3.4.3, last paragraph). The nfload's immediate carries
      // the distance so repair rescales it together with the prefetches.
      for (size_t MI : MemberIdxs) {
        const DelinquentLoad &DL = Fresh[MI];
        if (DL.Class != LoadClass::Pointer &&
            !(DL.Class == LoadClass::Stride && DL.StrideFromDlt &&
              BaseBody[DL.BodyIdx].Rd == BaseBody[DL.BodyIdx].Rs1))
          continue;
        if (!Config.WholeObject)
          continue;
        PlannedPrefetch P;
        P.K = PlannedPrefetch::Kind::PointerDeref;
        P.InsertBeforeIdx = DL.BodyIdx;
        P.BaseReg = DL.BaseReg;
        P.BaseComponent = DL.Offset;
        P.Stride = Stride;
        P.DerefOffsets = {0};
        P.GroupId = G.Id;
        G.PrefetchIdxs.push_back(Plan.Prefetches.size());
        Plan.Prefetches.push_back(P);
      }

      for (size_t MI : MemberIdxs) {
        G.CoveredLoadIdxs.push_back(Fresh[MI].BodyIdx);
        G.PerLoad.emplace_back();
        ++Covered;
      }
      Plan.Groups.push_back(std::move(G));
      continue;
    }

    // ---- Pure pointer group (no stride member).
    if (Config.WholeObject) {
      // Find the chasing representative: a pointer member, or — common in
      // `p = p->next; ...use p->f...` loops, where the chase itself always
      // hits the line its field loads just fetched and so never becomes
      // delinquent — the unique load *defining* the group's base register.
      // Either way, dereferencing it once reaches the next object.
      unsigned BaseReg = Key.first;
      int64_t LinkOffset = 0;
      unsigned ChaseIdx = ~0u;
      for (size_t MI : MemberIdxs) {
        const DelinquentLoad &DL = Fresh[MI];
        if (DL.Class != LoadClass::Pointer)
          continue;
        const Instruction &L = BaseBody[DL.BodyIdx];
        if (ChaseIdx == ~0u || L.Rs1 == L.Rd) {
          ChaseIdx = DL.BodyIdx;
          LinkOffset = DL.Offset;
        }
      }
      if (ChaseIdx == ~0u) {
        // No delinquent pointer member; look for a unique self-chasing
        // load defining the base register in the trace.
        unsigned Writers = 0;
        for (unsigned I = 0; I < BaseBody.size(); ++I) {
          const Instruction &W = BaseBody[I];
          if (!W.writesRd() || W.Rd != BaseReg)
            continue;
          ++Writers;
          if (W.isLoad() && W.Rs1 == BaseReg) {
            ChaseIdx = I;
            LinkOffset = W.Imm;
          } else {
            ChaseIdx = ~0u; // non-load writer: not a chased pointer
          }
        }
        if (Writers != 1)
          ChaseIdx = ~0u;
      }
      if (ChaseIdx != ~0u) {
        PrefetchGroup G;
        G.Id = NextGroupId++;
        G.Repairable = false; // no stride to rescale
        G.Distance = 1;

        // Inserted *after* the chasing load, as in the paper's example:
        //   ld   rd, off(rb)        ; the original chasing load
        //   nfld rt, off(rd)        ; loads the *next* object's link...
        //   pf   o_k(rt)            ; ...and prefetches the next object's
        //                           ; lines for every member offset o_k
        // (Section 3.4.3 combined with the same-object rule: the whole
        // next object is covered with one dereference). The pair's base
        // is the chasing load's *destination* register.
        const Instruction &L = BaseBody[ChaseIdx];
        PlannedPrefetch P;
        P.K = PlannedPrefetch::Kind::PointerDeref;
        P.InsertBeforeIdx = ChaseIdx + 1;
        P.BaseReg = L.Rd;
        P.BaseComponent = LinkOffset;
        P.Stride = 0;
        P.GroupId = G.Id;

        // Line-cover the member offsets of the (next) object, with the
        // usual skip + one-extra-block rule.
        std::vector<int64_t> Offs;
        Offs.push_back(LinkOffset); // the link line itself
        for (size_t MI : MemberIdxs)
          Offs.push_back(Fresh[MI].Offset);
        std::sort(Offs.begin(), Offs.end());
        const int64_t Line = static_cast<int64_t>(Config.LineSize);
        int64_t CoveredEnd = Offs.front() + Line;
        bool AnySkipped = false;
        P.DerefOffsets.push_back(Offs.front());
        for (size_t K = 1; K < Offs.size(); ++K) {
          if (Offs[K] < CoveredEnd) {
            if (Offs[K] != Offs.front())
              AnySkipped = true;
            continue;
          }
          P.DerefOffsets.push_back(Offs[K]);
          CoveredEnd = Offs[K] + Line;
        }
        if (AnySkipped)
          P.DerefOffsets.push_back(CoveredEnd);

        G.PrefetchIdxs.push_back(Plan.Prefetches.size());
        Plan.Prefetches.push_back(P);

        for (size_t MI : MemberIdxs) {
          G.CoveredLoadIdxs.push_back(Fresh[MI].BodyIdx);
          G.PerLoad.emplace_back();
          ++Covered;
        }
        Plan.Groups.push_back(std::move(G));
        continue;
      }
    }

    // ---- Not prefetchable in this framework: the runtime matures these.
    for (size_t MI : MemberIdxs)
      Plan.UncoverableLoadIdxs.push_back(Fresh[MI].BodyIdx);
  }

  return Covered;
}

PlanEmission
PrefetchPlanner::emit(const std::vector<Instruction> &BaseBody,
                      const PrefetchPlan &Plan) const {
  PlanEmission E;
  E.OldToNew.resize(BaseBody.size());
  E.PatchSlots.assign(Plan.Prefetches.size(), 0);

  // Bucket planned prefetches by insertion point.
  std::vector<std::vector<size_t>> AtIdx(BaseBody.size() + 1);
  for (size_t PI = 0; PI < Plan.Prefetches.size(); ++PI) {
    unsigned At = std::min<unsigned>(Plan.Prefetches[PI].InsertBeforeIdx,
                                     static_cast<unsigned>(BaseBody.size()));
    AtIdx[At].push_back(PI);
  }

  for (size_t I = 0; I <= BaseBody.size(); ++I) {
    for (size_t PI : AtIdx[I]) {
      const PlannedPrefetch &P = Plan.Prefetches[PI];
      // Find the group's current distance.
      int D = 1;
      for (const PrefetchGroup &G : Plan.Groups)
        if (G.Id == P.GroupId)
          D = G.Distance;
      int64_t Imm = immediateFor(P, D);
      if (P.K == PlannedPrefetch::Kind::StridePf) {
        Instruction Pf = makePrefetch(P.BaseReg, Imm);
        Pf.Synthetic = true;
        E.PatchSlots[PI] = static_cast<unsigned>(E.NewBody.size());
        E.NewBody.push_back(Pf);
      } else {
        Instruction Nf = makeNFLoad(Config.ScratchReg, P.BaseReg, Imm);
        Nf.Synthetic = true;
        E.PatchSlots[PI] = static_cast<unsigned>(E.NewBody.size());
        E.NewBody.push_back(Nf);
        for (int64_t Off : P.DerefOffsets) {
          Instruction Pf = makePrefetch(Config.ScratchReg, Off);
          Pf.Synthetic = true;
          E.NewBody.push_back(Pf);
        }
      }
    }
    if (I < BaseBody.size()) {
      E.OldToNew[I] = static_cast<unsigned>(E.NewBody.size());
      E.NewBody.push_back(BaseBody[I]);
    }
  }
  return E;
}
