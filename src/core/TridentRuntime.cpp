//===- TridentRuntime.cpp -------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/TridentRuntime.h"
#include "support/StatRegistry.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace trident;

/// Env-gated diagnostics: set TRIDENT_DEBUG=1 to trace optimizer activity.
static bool debugEnabled() {
  static const bool E = [] {
    const char *V = std::getenv("TRIDENT_DEBUG");
    return V && *V && *V != '0';
  }();
  return E;
}

#define TRIDENT_DBG(...)                                                       \
  do {                                                                         \
    if (debugEnabled())                                                        \
      std::fprintf(stderr, __VA_ARGS__);                                       \
  } while (0)

const char *trident::prefetchModeName(PrefetchMode M) {
  switch (M) {
  case PrefetchMode::None:
    return "none";
  case PrefetchMode::Basic:
    return "basic";
  case PrefetchMode::WholeObject:
    return "whole-object";
  case PrefetchMode::SelfRepairing:
    return "self-repairing";
  }
  return "<bad>";
}

void RuntimeStats::registerInto(StatRegistry &R,
                                const std::string &Prefix) const {
  R.setCounter(Prefix + "hot_trace_events", HotTraceEvents);
  R.setCounter(Prefix + "traces_installed", TracesInstalled);
  R.setCounter(Prefix + "trace_reinstalls", TraceReinstalls);
  R.setCounter(Prefix + "delinquent_events", DelinquentEvents);
  R.setCounter(Prefix + "insertion_optimizations", InsertionOptimizations);
  R.setCounter(Prefix + "repair_optimizations", RepairOptimizations);
  R.setCounter(Prefix + "loads_matured", LoadsMatured);
  R.setCounter(Prefix + "repairs_reopened", RepairsReopened);
  R.setCounter(Prefix + "regime_shifts_detected", RegimeShiftsDetected);
  R.setCounter(Prefix + "events_dropped", EventsDropped);
  R.setCounter(Prefix + "peak_pending_events", PeakPendingEvents);
  R.setCounter(Prefix + "prefetch_instructions_planned",
               PrefetchInstructionsPlanned);
  R.setCounter(Prefix + "load_misses_total", LoadMissesTotal);
  R.setCounter(Prefix + "load_misses_in_traces", LoadMissesInTraces);
  R.setCounter(Prefix + "load_misses_covered", LoadMissesCovered);
  R.setCounter(Prefix + "ld_total", LdTotal);
  R.setCounter(Prefix + "ld_hit_none", LdHitNone);
  R.setCounter(Prefix + "ld_hit_prefetched", LdHitPrefetched);
  R.setCounter(Prefix + "ld_partial", LdPartial);
  R.setCounter(Prefix + "ld_miss", LdMiss);
  R.setCounter(Prefix + "ld_miss_due_to_pf", LdMissDueToPf);
  R.setCounter(Prefix + "commits_total", CommitsTotal);
  R.setCounter(Prefix + "commits_in_traces", CommitsInTraces);
  R.setCounter(Prefix + "phase_changes_detected", PhaseChangesDetected);
  R.setCounter(Prefix + "mature_flags_cleared", MatureFlagsCleared);
  R.setReal(Prefix + "trace_miss_coverage", traceMissCoverage());
  R.setReal(Prefix + "prefetch_miss_coverage", prefetchMissCoverage());
}

TridentRuntime::TridentRuntime(const RuntimeConfig &Cfg, Program &P,
                               SmtCore &CoreRef, CodeCache &CCRef)
    : Config(Cfg), Prog(P), Core(CoreRef), CC(CCRef), Patcher(P),
      Profiler(Config.Profiler), Builder(Config.Builder),
      Watch(Config.WatchEntries), Dlt(Config.Dlt),
      Planner(PlannerConfig{
          /*LineSize=*/64, /*ScratchReg=*/reg::FirstScratch,
          /*DistanceCap=*/Config.DistanceCap,
          /*WholeObject=*/Config.Mode == PrefetchMode::WholeObject ||
              Config.Mode == PrefetchMode::SelfRepairing}),
      Queue(Config.MaxPendingEvents) {
  // Initialize the Section 3.1 registration structure: the record the
  // hardware uses to spawn the helper thread onto the spare context.
  Registration.HelperStartPC = 0xF000'0000; // runtime-optimizer entry
  Registration.StackPointer = 0xEFFF'F000;  // helper's private stack
  Registration.GlobalDataPointer = 0xE000'0000;
  Registration.CodeCachePointer = CodeCache::Base;
  Registration.ThreadPriority = RegistrationStructure::Priority::Low;
}

const PrefetchPlan *TridentRuntime::planFor(Addr OrigStart) const {
  for (const TraceMeta &M : Traces)
    if (M.OrigStart == OrigStart && !M.Invalidated)
      return &M.Plan;
  return nullptr;
}

int TridentRuntime::currentDistanceFor(Addr OrigStart) const {
  const PrefetchPlan *P = planFor(OrigStart);
  if (!P)
    return 0;
  for (const PrefetchGroup &G : P->Groups)
    if (G.Repairable)
      return G.Distance;
  return 0;
}

//===----------------------------------------------------------------------===//
// Commit-stream observation
//===----------------------------------------------------------------------===//

void TridentRuntime::accountPhase(Addr PC) {
  if (CC.contains(PC)) {
    uint32_t Tid = CC.traceIdAt(PC);
    if (Tid >= PhaseCounts.size())
      PhaseCounts.resize(Tid + 1, 0);
    ++PhaseCounts[Tid];
  } else {
    ++PhaseOtherCommits;
  }
  if (++PhaseCommits < Config.PhaseIntervalCommits)
    return;

  // Build the interval's trace-mix signature (fractions per trace id,
  // plus a bucket for non-trace code) and compare with the previous one.
  size_t N = std::max(PhaseCounts.size(), PrevPhaseSignature.empty()
                                              ? size_t(0)
                                              : PrevPhaseSignature.size() - 1);
  std::vector<double> Sig(N + 1, 0.0);
  double Total = static_cast<double>(PhaseCommits);
  for (size_t I = 0; I < PhaseCounts.size(); ++I)
    Sig[I] = static_cast<double>(PhaseCounts[I]) / Total;
  Sig[N] = static_cast<double>(PhaseOtherCommits) / Total;

  if (!PrevPhaseSignature.empty()) {
    double Dist = 0.0;
    for (size_t I = 0; I < Sig.size(); ++I) {
      double Prev = 0.0;
      if (I + 1 < PrevPhaseSignature.size())
        Prev = PrevPhaseSignature[I];
      else if (I + 1 == Sig.size() && !PrevPhaseSignature.empty())
        Prev = PrevPhaseSignature.back();
      Dist += std::abs(Sig[I] - Prev);
    }
    if (Dist > Config.PhaseChangeThreshold) {
      ++Stats.PhaseChangesDetected;
      onPhaseChange();
    }
  }
  PrevPhaseSignature = std::move(Sig);
  std::fill(PhaseCounts.begin(), PhaseCounts.end(), 0);
  PhaseCommits = 0;
  PhaseOtherCommits = 0;
}

void TridentRuntime::onPhaseChange() {
  TRIDENT_DBG("[trident] phase change: clearing mature flags\n");
  uint64_t Cleared = Dlt.clearAllMature();
  Stats.MatureFlagsCleared += Cleared;
  for (TraceMeta &M : Traces) {
    // Loads the planner could not classify before may classify now (e.g.
    // an index stream that turned regular): let them be re-identified.
    Stats.MatureFlagsCleared += M.Plan.UncoverableLoadIdxs.size();
    M.Plan.UncoverableLoadIdxs.clear();
    for (PrefetchGroup &G : M.Plan.Groups) {
      for (LoadRepairState &LS : G.PerLoad) {
        if (!LS.Mature)
          continue;
        LS.Mature = false;
        // A fresh (smaller) budget: enough to re-adapt, not to thrash.
        LS.RepairsLeft = std::max(LS.RepairsLeft, G.MaxDistance);
        LS.LastAvgAccessLatency = -1.0;
      }
    }
  }
}

void TridentRuntime::attach(EventBus &B) {
  TRIDENT_CHECK(Bus == nullptr, "runtime already attached to a bus");
  Bus = &B;
  // Commit subscriber order is load-bearing: the watch table's excursion
  // tracking ran before profiler training inside the old monolithic
  // listener, and per-kind dispatch order equals subscription order.
  B.subscribe(&WatchSub, eventMaskOf(EventKind::Commit));
  B.subscribe(&ProfilerSub,
              eventMaskOf(EventKind::Commit) | eventMaskOf(EventKind::Branch));
  B.subscribe(&DltSub, eventMaskOf(EventKind::LoadOutcome));
}

void TridentRuntime::handleWatchCommit(const HardwareEvent &Ev) {
  if (Ev.Ctx != 0)
    return;
  const Addr PC = Ev.PC;
  const Cycle Now = Ev.Time;
  ++Stats.CommitsTotal;
  if (Config.ClearMatureOnPhaseChange && Enabled)
    accountPhase(PC);

  if (CC.contains(PC)) {
    ++Stats.CommitsInTraces;
    // Trace excursion tracking for the watch table's iteration timing.
    uint32_t Tid = CC.traceIdAt(PC);
    const TraceMeta &M = Traces[Tid];
    if (CurTraceId != Tid || CurHeadAddr != M.CacheAddr) {
      if (CurTraceId != ~0u)
        Bus->publish(
            HardwareEvent::traceMark(EventKind::TraceExit, CurTraceId, PC, Now));
      Bus->publish(HardwareEvent::traceMark(EventKind::TraceEntry, Tid, PC, Now));
      CurTraceId = Tid;
      CurHeadAddr = M.CacheAddr;
      LastHeadValid = false;
    }
    if (PC == M.CacheAddr) {
      if (LastHeadValid)
        Watch.recordIteration(Tid, Now - LastHeadCycle);
      LastHeadCycle = Now;
      LastHeadValid = true;
    }
    return;
  }

  // The patched entry jump at a trace's original start PC is part of the
  // trace's loop (closing jump -> OrigStart -> entry jump -> trace head);
  // it must not end the excursion or iteration timing never accumulates.
  const Instruction &I = *Ev.Insn;
  bool IsEntryGlue = I.Op == Opcode::Jump && I.Synthetic &&
                     CC.contains(static_cast<Addr>(I.Imm));
  if (!IsEntryGlue) {
    // Genuine original-code commit: ends any trace excursion.
    if (CurTraceId != ~0u)
      Bus->publish(
          HardwareEvent::traceMark(EventKind::TraceExit, CurTraceId, PC, Now));
    CurTraceId = ~0u;
    LastHeadValid = false;
  }
}

void TridentRuntime::handleProfilerCommit(const HardwareEvent &Ev) {
  if (Ev.Ctx != 0 || !Enabled)
    return;
  if (CC.contains(Ev.PC))
    return; // Trace-internal commits never train the profiler.
  if (std::optional<HotTraceCandidate> Cand = Profiler.onCommit(Ev.PC)) {
    ++Stats.HotTraceEvents;
    raiseEvent(HardwareEvent::hotTrace(*Cand, Ev.Time));
  }
}

void TridentRuntime::handleProfilerBranch(const HardwareEvent &Ev) {
  if (Ev.Ctx != 0 || !Enabled)
    return;
  if (CC.contains(Ev.PC))
    return; // Trace-internal control flow never trains the profiler.
  if (CC.contains(Ev.EA))
    return; // Entry jumps into the code cache are runtime glue.
  Profiler.onBranch(Ev.PC, Ev.Insn->isConditionalBranch(), Ev.Taken, Ev.EA);
}

void TridentRuntime::handleLoad(const HardwareEvent &Ev) {
  if (Ev.Ctx != 0 || Ev.Insn->Synthetic)
    return;
  const Addr PC = Ev.PC;
  const Addr EA = Ev.EA;
  const AccessResult &R = *Ev.Access;
  const Cycle Now = Ev.Time;

  bool InTrace = CC.contains(PC);
  bool Miss = R.Outcome != LoadOutcome::HitNone &&
              R.Outcome != LoadOutcome::HitPrefetched;
  Cycle BestCase = Now + Config.L1HitLatency;
  unsigned ExposedLatency =
      R.ReadyCycle > BestCase ? static_cast<unsigned>(R.ReadyCycle - BestCase)
                              : 0;

  // Figure 6 breakdown.
  ++Stats.LdTotal;
  switch (R.Outcome) {
  case LoadOutcome::HitNone:
    ++Stats.LdHitNone;
    break;
  case LoadOutcome::HitPrefetched:
    ++Stats.LdHitPrefetched;
    break;
  case LoadOutcome::PartialHit:
    ++Stats.LdPartial;
    break;
  case LoadOutcome::Miss:
    ++Stats.LdMiss;
    break;
  case LoadOutcome::MissDueToPrefetch:
    ++Stats.LdMissDueToPf;
    break;
  }

  // Figure 4 coverage.
  if (Miss) {
    ++Stats.LoadMissesTotal;
    if (InTrace) {
      ++Stats.LoadMissesInTraces;
      uint32_t Tid = CC.traceIdAt(PC);
      if (Traces[Tid].LoadPCToBaseIdx.count(PC) &&
          Traces[Tid].Plan.groupCovering(Traces[Tid].LoadPCToBaseIdx[PC]))
        ++Stats.LoadMissesCovered;
    }
  }

  if (!Enabled || !InTrace || Config.Mode == PrefetchMode::None)
    return;

  // DLT monitoring of hot-trace loads.
  if (Dlt.update(PC, EA, Miss, ExposedLatency)) {
    ++Stats.DelinquentEvents;
    uint32_t Tid = CC.traceIdAt(PC);
    WatchEntry *W = Watch.find(Tid);
    TRIDENT_DBG("[trident] event pc=0x%llx trace=%u optflag=%d\n",
                (unsigned long long)PC, Tid, W && W->OptInProgress);
    if (W && W->OptInProgress) {
      // Trace already being re-optimized; unfreeze and keep monitoring.
      Dlt.clearWindow(PC);
      return;
    }
    if (W)
      W->OptInProgress = true;
    raiseEvent(HardwareEvent::delinquentLoad(PC, Tid, Now));
  }
}

//===----------------------------------------------------------------------===//
// Event dispatch / helper-thread scheduling
//===----------------------------------------------------------------------===//

void TridentRuntime::raiseEvent(const HardwareEvent &E) {
  // Observability fan-out first: the bus sees every raised event, dropped
  // or not (the queue models the hardware buffer, the bus models wires).
  Bus->publish(E);
  if (!Queue.tryPush(E)) {
    ++Stats.EventsDropped;
    if (E.Kind == EventKind::DelinquentLoad) {
      Dlt.clearWindow(E.PC);
      clearOptFlag(E.TraceId);
    }
    return;
  }
  Stats.PeakPendingEvents =
      std::max<uint64_t>(Stats.PeakPendingEvents, Queue.size());
  dispatchNext();
}

void TridentRuntime::dispatchNext() {
  if (Queue.stalled())
    return; // fault-injected stall: events delay in place
  if (Core.stubActive(Config.HelperCtx))
    return;
  if (Pending.WorkKind != PendingWork::Kind::None)
    return; // zero-cost stub completed, but its work has not fired yet
  Registration.HelperActive = false;
  while (!Queue.empty()) {
    HardwareEvent E = Queue.pop();
    if (E.Kind == EventKind::HotTrace) {
      if (Watch.findByOrigStart(E.Cand.StartPC))
        continue; // Already traced.
      startHotTraceWork(E.Cand);
      return;
    }
    startDelinquentWork(E.PC, E.TraceId);
    return;
  }
}

void TridentRuntime::clearOptFlag(uint32_t TraceId) {
  if (WatchEntry *W = Watch.find(TraceId))
    W->OptInProgress = false;
}

void TridentRuntime::onStubDone(void *Self, Cycle) {
  static_cast<TridentRuntime *>(Self)->finishPendingWork();
}

TridentRuntime::PendingWork &TridentRuntime::parkWork(PendingWork::Kind K) {
  TRIDENT_DCHECK(Pending.WorkKind == PendingWork::Kind::None,
                 "helper work parked while another unit is in flight");
  Pending.WorkKind = K;
  return Pending;
}

void TridentRuntime::finishPendingWork() {
  // Consume the slot before running the finisher: finishers call
  // dispatchNext, which may park the next unit of work in Pending.
  PendingWork W = std::move(Pending);
  Pending = PendingWork();
  switch (W.WorkKind) {
  case PendingWork::Kind::None:
    TRIDENT_UNREACHABLE("stub completed with no parked work");
    break;
  case PendingWork::Kind::Formation:
    finishTraceFormation(std::move(W.FormedTrace));
    break;
  case PendingWork::Kind::Insertion:
    finishInsertion(W.TraceId, std::move(W.Plan), std::move(W.Emission),
                    std::move(W.ClearPCs));
    break;
  case PendingWork::Kind::Repair:
    finishRepair(W.TraceId, W.BaseIdx, W.LoadPC);
    break;
  case PendingWork::Kind::Mature:
    finishMature(W.TraceId, W.LoadPC);
    break;
  }
  dispatchNext();
}

/// Marks a helper invocation in the registration structure (all stub
/// launches funnel through the two start*Work paths and beginInsertion).
#define TRIDENT_NOTE_HELPER_SPAWN()                                             do {                                                                            Registration.HelperActive = true;                                             ++Registration.Invocations;                                                 } while (0)

void TridentRuntime::startHotTraceWork(const HotTraceCandidate &Cand) {
  std::optional<Trace> T =
      Builder.build(Prog, Cand, static_cast<uint32_t>(Traces.size()));
  if (!T) {
    dispatchNext();
    return;
  }
  uint64_t Work = Config.Cost.traceFormation(static_cast<unsigned>(T->size()));
  Registration.HelperActive = true;
  ++Registration.Invocations;
  parkWork(PendingWork::Kind::Formation).FormedTrace = std::move(*T);
  Core.startStub(Config.HelperCtx, Work, Config.Cost.StartupCycles,
                 {&TridentRuntime::onStubDone, this});
}

void TridentRuntime::finishTraceFormation(Trace T) {
  TraceMeta M;
  M.Id = T.Id;
  M.OrigStart = T.OrigStart;
  M.BaseBody = std::move(T.Body);
  TRIDENT_CHECK(M.Id == Traces.size(), "trace ids must be dense");
  Traces.push_back(std::move(M));
  TraceMeta &Meta = Traces.back();

  std::vector<unsigned> Identity(Meta.BaseBody.size());
  for (unsigned I = 0; I < Identity.size(); ++I)
    Identity[I] = I;
  installBody(Meta, Meta.BaseBody, Identity, {});
  ++Stats.TracesInstalled;
  // One formation per loop head; suppress further profiling either way
  // (in no-link mode this mirrors Trident marking the trace as formed).
  Profiler.suppress(Meta.OrigStart);
}

void TridentRuntime::installBody(TraceMeta &M,
                                 const std::vector<Instruction> &Body,
                                 const std::vector<unsigned> &OldToNew,
                                 const std::vector<unsigned> &PatchSlots) {
  bool Reinstall = M.CacheAddr != 0;
  Addr PrevHead = M.CacheAddr;
  M.CacheAddr = CC.install(Body, M.Id);
  M.Installs.emplace_back(M.CacheAddr, Body.size());

  // A looping trace closes on its own head: retarget the builder's
  // OrigStart-marked back edge (a branch or jump) into the code cache.
  // Bouncing through the original entry every iteration would cost two
  // extra jumps per loop. Targeting OrigStart and targeting the head are
  // semantically identical — OrigStart holds a jump to the head.
  auto retarget = [&](Addr Start, size_t Len, Addr OldHead) {
    for (size_t I = 0; I < Len; ++I) {
      Instruction &Ins = CC.at(Start + I);
      if (!Ins.isBranch())
        continue;
      Addr Tgt = static_cast<Addr>(Ins.Imm);
      if (Tgt == M.OrigStart || (OldHead != 0 && Tgt == OldHead))
        Ins.Imm = static_cast<int64_t>(M.CacheAddr);
    }
  };
  retarget(M.CacheAddr, Body.size(), /*OldHead=*/0);
  // Unlink older generations: their back edges trampoline to the new
  // head, so a thread spinning inside an old body migrates at its next
  // loop-back ("a thread's execution will then automatically start using
  // the new hot trace", Section 3.2).
  if (Reinstall)
    for (size_t R = 0; R + 1 < M.Installs.size(); ++R)
      retarget(M.Installs[R].first, M.Installs[R].second,
               /*OldHead=*/M.Installs[R].first);
  (void)PrevHead;

  M.OldToNew = OldToNew;
  M.PrefetchSlotAddrs.assign(PatchSlots.size(), 0);
  for (size_t I = 0; I < PatchSlots.size(); ++I)
    M.PrefetchSlotAddrs[I] = M.CacheAddr + PatchSlots[I];
  for (unsigned BaseIdx = 0; BaseIdx < M.BaseBody.size(); ++BaseIdx)
    if (M.BaseBody[BaseIdx].isLoad())
      M.LoadPCToBaseIdx[M.CacheAddr + M.OldToNew[BaseIdx]] = BaseIdx;

  if (Config.LinkTraces) {
    Patcher.patchJump(M.OrigStart, M.CacheAddr);
    M.Linked = true;
  }

  if (Reinstall) {
    // Trident "removes the old hot trace from the hardware watch table"
    // and tracks the new one.
    if (WatchEntry *W = Watch.find(M.Id)) {
      W->TraceStart = M.CacheAddr;
      W->Length = static_cast<unsigned>(Body.size());
    }
    ++Stats.TraceReinstalls;
  } else {
    Watch.insert(M.Id, M.OrigStart, M.CacheAddr,
                 static_cast<unsigned>(Body.size()));
  }
}

unsigned TridentRuntime::invalidateAllTraces() {
  unsigned N = 0;
  for (TraceMeta &M : Traces) {
    if (M.Invalidated || M.CacheAddr == 0)
      continue;
    // Reverse the install-time retargeting: any back edge aimed at a
    // generation head goes back to the original loop head, so a thread
    // inside any dead body migrates to original code at its next
    // loop-back. Side exits already target original code and are left
    // alone — mid-iteration control flow is untouched, so semantics are
    // preserved.
    auto IsGenerationHead = [&M](Addr T) {
      for (const auto &[Start, Len] : M.Installs) {
        (void)Len;
        if (T == Start)
          return true;
      }
      return false;
    };
    for (const auto &[Start, Len] : M.Installs)
      for (size_t I = 0; I < Len; ++I) {
        Instruction &Ins = CC.at(Start + I);
        if (Ins.isBranch() && IsGenerationHead(static_cast<Addr>(Ins.Imm)))
          Ins.Imm = static_cast<int64_t>(M.OrigStart);
      }
    if (M.Linked) {
      Patcher.restore(M.OrigStart);
      M.Linked = false;
    }
    Watch.remove(M.Id);
    Profiler.unsuppress(M.OrigStart);
    M.Invalidated = true;
    ++N;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Delinquent-load optimization: insertion, repair, maturing
//===----------------------------------------------------------------------===//

int TridentRuntime::maxDistanceFor(const TraceMeta &M) const {
  const WatchEntry *W = Watch.find(M.Id);
  Cycle MinT = W && W->MinExecTime != ~static_cast<Cycle>(0)
                   ? std::max<Cycle>(W->MinExecTime, 1)
                   : 32;
  int Max = static_cast<int>(Config.MemoryLatency / MinT);
  return std::clamp(Max, 1, Config.DistanceCap);
}

int TridentRuntime::estimateDistance(const TraceMeta &M,
                                     Addr TriggerPC) const {
  // Experimentation hook (benches/tests): force the fixed-mode distance.
  if (const char *F = std::getenv("TRIDENT_FORCE_DISTANCE"))
    return std::clamp(std::atoi(F), 1, Config.DistanceCap);
  // Equation 2: distance = avg load miss latency / cycles per iteration
  // (the basic, non-adaptive estimator). We divide by the watch table's
  // *minimal* execution time — the quantity the hardware actually tracks —
  // which usefully biases the distance upward: once prefetching starts
  // working, iterations approach the minimum, so an average-time estimate
  // systematically undershoots (the instability Section 3.5.1 describes).
  const WatchEntry *W = Watch.find(M.Id);
  double IterTime = 0.0;
  if (W && W->MinExecTime != ~static_cast<Cycle>(0))
    IterTime = static_cast<double>(W->MinExecTime);
  else if (W && W->hasTiming())
    IterTime = W->avgExecTime();
  double MissLat = 0.0;
  if (std::optional<DltSnapshot> S = Dlt.lookup(TriggerPC))
    MissLat = S->avgMissLatency();
  if (IterTime <= 0.0 || MissLat <= 0.0)
    return 1;
  int D = static_cast<int>(MissLat / IterTime + 0.5);
  return std::clamp(D, 1, Config.DistanceCap);
}

void TridentRuntime::startDelinquentWork(Addr LoadPC, uint32_t TraceId) {
  TRIDENT_CHECK(TraceId < Traces.size(), "event for unknown trace");
  TraceMeta &M = Traces[TraceId];

  auto It = M.LoadPCToBaseIdx.find(LoadPC);
  PrefetchGroup *G = It == M.LoadPCToBaseIdx.end()
                         ? nullptr
                         : M.Plan.groupCovering(It->second);

  if (G) {
    LoadRepairState *LS = G->stateFor(It->second);
    // A settled load only re-raises a DelinquentLoad event after its DLT
    // entry was lost (capacity or fault eviction) *and* it re-crossed the
    // delinquency threshold: the memory behaviour its distance settled
    // against is gone. Self-repair re-opens the load with a fresh budget;
    // the first re-opened load of a fully settled group also re-seeds the
    // shared distance so the hill climb restarts from the mode's seed
    // instead of a distance tuned for the old regime (Section 3.5.2).
    if (G->Repairable && LS && LS->Mature &&
        Config.Mode == PrefetchMode::SelfRepairing) {
      bool GroupSettled = true;
      for (const LoadRepairState &Other : G->PerLoad)
        if (!Other.Mature)
          GroupSettled = false;
      if (GroupSettled)
        G->Distance = Config.SelfRepairInitialEstimate
                          ? estimateDistance(M, LoadPC)
                          : 1;
      LS->Mature = false;
      LS->RepairsLeft = 2 * G->MaxDistance;
      LS->LastAvgAccessLatency = -1.0;
      LS->BestAvgAccessLatency = -1.0;
      LS->BestDistance = G->Distance;
      LS->LastMove = +1;
      ++Stats.RepairsReopened;
      TRIDENT_DBG("[trident] reopen trace=%u load=0x%llx dist=%d "
                  "(budget %d)\n",
                  TraceId, (unsigned long long)LoadPC, G->Distance,
                  LS->RepairsLeft);
    }
    bool CanRepair = G->Repairable && LS && !LS->Mature &&
                     Config.Mode == PrefetchMode::SelfRepairing;
    if (CanRepair) {
      unsigned N = static_cast<unsigned>(G->CoveredLoadIdxs.size());
      uint64_t Work = Config.Cost.repair(N);
      unsigned BaseIdx = It->second;
      TRIDENT_NOTE_HELPER_SPAWN();
      PendingWork &W = parkWork(PendingWork::Kind::Repair);
      W.TraceId = TraceId;
      W.BaseIdx = BaseIdx;
      W.LoadPC = LoadPC;
      Core.startStub(Config.HelperCtx, Work, Config.Cost.StartupCycles,
                     {&TridentRuntime::onStubDone, this});
      return;
    }
    // Covered but not repairable (pointer-only group, or a fixed-distance
    // mode): mark mature so it stops raising events (Section 3.5.2).
    uint64_t Work = Config.Cost.repair(1);
    TRIDENT_NOTE_HELPER_SPAWN();
    PendingWork &W = parkWork(PendingWork::Kind::Mature);
    W.TraceId = TraceId;
    W.LoadPC = LoadPC;
    Core.startStub(Config.HelperCtx, Work, Config.Cost.StartupCycles,
                   {&TridentRuntime::onStubDone, this});
    return;
  }

  // Not covered yet: plan prefetches for every delinquent load in the
  // trace and regenerate the trace body.
  beginInsertion(M, LoadPC);
}

void TridentRuntime::beginInsertion(TraceMeta &M, Addr TriggerPC) {
  // Map base-body indices to the PCs they are currently installed at.
  std::vector<Addr> InstalledPCs(M.BaseBody.size(), 0);
  for (unsigned I = 0; I < M.BaseBody.size(); ++I)
    InstalledPCs[I] = M.CacheAddr + M.OldToNew[I];

  std::vector<DelinquentLoad> Loads =
      Planner.identifyDelinquentLoads(M.BaseBody, InstalledPCs, Dlt);
  if (debugEnabled())
    for (const DelinquentLoad &DL : Loads)
      TRIDENT_DBG("[trident]   delinquent idx=%u pc=0x%llx class=%d "
                  "stride=%lld dlt=%d off=%lld avgmiss=%.0f\n",
                  DL.BodyIdx, (unsigned long long)DL.PC, int(DL.Class),
                  (long long)DL.Stride, DL.StrideFromDlt,
                  (long long)DL.Offset, DL.AvgMissLatency);

  // Seed distance by mode (Section 3.5.1: adaptive starts at 1, unless
  // the Section 5.3 "alternate strategy" ablation is enabled).
  int InitialDistance =
      Config.Mode == PrefetchMode::SelfRepairing &&
              !Config.SelfRepairInitialEstimate
          ? 1
          : estimateDistance(M, TriggerPC);

  TRIDENT_DBG("[trident] plan trace=%u trigger=0x%llx initial distance=%d "
              "(mode %s)\n",
              M.Id, (unsigned long long)TriggerPC, InitialDistance,
              prefetchModeName(Config.Mode));
  PrefetchPlan NewPlan = M.Plan;
  size_t PrevGroups = NewPlan.Groups.size();
  size_t PrevUncoverable = NewPlan.UncoverableLoadIdxs.size();
  unsigned Covered = Planner.plan(M.BaseBody, Loads, NewPlan,
                                  InitialDistance);

  // Initialize repair budgets: "when a load is first optimized, we set a
  // repair counter for the load to [twice the maximal distance]".
  int MaxD = maxDistanceFor(M);
  for (size_t GI = PrevGroups; GI < NewPlan.Groups.size(); ++GI) {
    PrefetchGroup &G = NewPlan.Groups[GI];
    G.MaxDistance = MaxD;
    for (LoadRepairState &LS : G.PerLoad)
      LS.RepairsLeft = 2 * MaxD;
  }

  std::vector<Addr> ClearPCs;
  for (const DelinquentLoad &DL : Loads)
    ClearPCs.push_back(DL.PC);
  ClearPCs.push_back(TriggerPC);

  if (Covered == 0 && NewPlan.UncoverableLoadIdxs.size() == PrevUncoverable) {
    // Nothing new to do (e.g. the trigger load's window cleared between
    // event and dispatch): mature the trigger so it stops firing.
    uint32_t TraceId = M.Id;
    TRIDENT_NOTE_HELPER_SPAWN();
    PendingWork &W = parkWork(PendingWork::Kind::Mature);
    W.TraceId = TraceId;
    W.LoadPC = TriggerPC;
    Core.startStub(Config.HelperCtx, Config.Cost.repair(1),
                   Config.Cost.StartupCycles,
                   {&TridentRuntime::onStubDone, this});
    return;
  }

  PlanEmission Emission = Planner.emit(M.BaseBody, NewPlan);
  uint64_t Work = Config.Cost.prefetchInsertion(
      static_cast<unsigned>(M.BaseBody.size()),
      static_cast<unsigned>(Loads.size()));
  uint32_t TraceId = M.Id;
  TRIDENT_NOTE_HELPER_SPAWN();
  PendingWork &W = parkWork(PendingWork::Kind::Insertion);
  W.TraceId = TraceId;
  W.Plan = std::move(NewPlan);
  W.Emission = std::move(Emission);
  W.ClearPCs = std::move(ClearPCs);
  Core.startStub(Config.HelperCtx, Work, Config.Cost.StartupCycles,
                 {&TridentRuntime::onStubDone, this});
}

void TridentRuntime::finishInsertion(uint32_t TraceId, PrefetchPlan NewPlan,
                                     PlanEmission Emission,
                                     std::vector<Addr> ClearPCs) {
  TraceMeta &M = Traces[TraceId];
  M.Plan = std::move(NewPlan);
  Stats.PrefetchInstructionsPlanned = 0;
  for (const TraceMeta &T : Traces)
    Stats.PrefetchInstructionsPlanned += T.Plan.Prefetches.size();

  installBody(M, Emission.NewBody, Emission.OldToNew, Emission.PatchSlots);
  ++Stats.InsertionOptimizations;
  TRIDENT_DBG("[trident] insert trace=%u: %zu groups, %zu prefetches, %zu "
              "uncoverable; body %zu -> %zu @0x%llx\n",
              TraceId, M.Plan.Groups.size(), M.Plan.Prefetches.size(),
              M.Plan.UncoverableLoadIdxs.size(), M.BaseBody.size(),
              Emission.NewBody.size(), (unsigned long long)M.CacheAddr);

  // Mature the loads the planner could not cover, at their new addresses.
  for (unsigned BaseIdx : M.Plan.UncoverableLoadIdxs) {
    Dlt.forceMature(M.CacheAddr + M.OldToNew[BaseIdx]);
    ++Stats.LoadsMatured;
  }
  // The helper thread clears the processed loads' window counters.
  for (Addr PC : ClearPCs)
    Dlt.clearWindow(PC);

  clearOptFlag(TraceId);
}

void TridentRuntime::finishRepair(uint32_t TraceId, unsigned BaseIdx,
                                  Addr LoadPC) {
  TraceMeta &M = Traces[TraceId];
  PrefetchGroup *G = M.Plan.groupCovering(BaseIdx);
  LoadRepairState *LS = G ? G->stateFor(BaseIdx) : nullptr;
  if (!G || !LS || LS->Mature) {
    Dlt.clearWindow(LoadPC);
    clearOptFlag(TraceId);
    return;
  }

  // Re-calculate the maximal prefetch distance from the trace's minimal
  // execution time (Section 3.5.2).
  G->MaxDistance = maxDistanceFor(M);

  // Hill climb on the *triggering load's* average access latency: keep
  // moving the distance in the direction that has been improving it;
  // reverse when the latency clearly starts to increase (Section 3.5.2).
  // The latency history is per load, not per group.
  double CurAvg = 0.0;
  if (std::optional<DltSnapshot> S = Dlt.lookup(LoadPC))
    CurAvg = S->avgAccessLatency();
  int OldDistance = G->Distance;

  // A downward latency regime shift: the observation collapsed to under a
  // quarter of the previous one (with an absolute floor so cache-hit-level
  // noise cannot trigger it). The climb is deliberately biased upward, so
  // without this it can never descend from a distance tuned for a regime
  // that no longer exists; restart from the mode's seed with a fresh
  // budget instead. Only the downward direction restarts: an upward jump
  // needs a *larger* distance, which the ordinary +1 climb already
  // delivers from the current operating point — and one successful climb
  // step can itself halve the observation, so a looser threshold would
  // read the climb's own progress as a shift.
  if (LS->LastAvgAccessLatency >= 0.0 && CurAvg > 0.0 &&
      (CurAvg + 25.0) * 4.0 < LS->LastAvgAccessLatency) {
    ++Stats.RegimeShiftsDetected;
    G->Distance = Config.SelfRepairInitialEstimate
                      ? estimateDistance(M, LoadPC)
                      : 1;
    LS->RepairsLeft = std::max(LS->RepairsLeft, 2 * G->MaxDistance);
    LS->LastAvgAccessLatency = -1.0;
    LS->BestAvgAccessLatency = -1.0;
    LS->BestDistance = G->Distance;
    LS->LastMove = +1;
    for (size_t PI : G->PrefetchIdxs) {
      Addr Slot = M.PrefetchSlotAddrs[PI];
      if (Slot != 0)
        CC.at(Slot).Imm =
            PrefetchPlanner::immediateFor(M.Plan.Prefetches[PI], G->Distance);
    }
    ++Stats.RepairOptimizations;
    Stats.LastRepairDistance = G->Distance;
    TRIDENT_DBG("[trident] regime shift trace=%u load=0x%llx avg=%.1f "
                "dist %d -> %d\n",
                TraceId, (unsigned long long)LoadPC, CurAvg, OldDistance,
                G->Distance);
    Dlt.clearWindow(LoadPC);
    clearOptFlag(TraceId);
    return;
  }

  // CurAvg was observed while running at the current distance.
  if (LS->BestAvgAccessLatency < 0.0 || CurAvg < LS->BestAvgAccessLatency) {
    LS->BestAvgAccessLatency = CurAvg;
    LS->BestDistance = G->Distance;
  }

  // Per the paper the distance is biased upward ("increases the load's
  // prefetch distance by 1 up to its maximal distance") and backs off when
  // the latency is observed to increase. To stay stable on noisy plateaus:
  // a decrement is only *repeated* while it clearly keeps helping;
  // otherwise the bias returns to +1.
  bool HaveHistory = LS->LastAvgAccessLatency >= 0.0;
  bool ClearlyWorse =
      HaveHistory && CurAvg > LS->LastAvgAccessLatency * 1.05 + 1.0;
  bool ClearlyBetter =
      HaveHistory && CurAvg < LS->LastAvgAccessLatency * 0.95 - 1.0;
  int Move = LS->LastMove < 0 ? (ClearlyBetter ? -1 : +1)
                              : (ClearlyWorse ? -1 : +1);
  G->Distance = std::clamp(G->Distance + Move, 1, G->MaxDistance);
  LS->LastMove = Move;
  LS->LastAvgAccessLatency = CurAvg;

  // Patch the prefetch instruction bits in place — no trace regeneration.
  for (size_t PI : G->PrefetchIdxs) {
    Addr Slot = M.PrefetchSlotAddrs[PI];
    if (Slot == 0)
      continue;
    CC.at(Slot).Imm =
        PrefetchPlanner::immediateFor(M.Plan.Prefetches[PI], G->Distance);
  }
  ++Stats.RepairOptimizations;
  Stats.LastRepairDistance = G->Distance;
  TRIDENT_DBG("[trident] repair trace=%u load=0x%llx avg=%.1f dist %d -> %d "
              "(max %d, repairs left %d)\n",
              TraceId, (unsigned long long)LoadPC, CurAvg, OldDistance,
              G->Distance, G->MaxDistance, LS->RepairsLeft - 1);

  if (--LS->RepairsLeft <= 0) {
    // Budget spent: settle on the best distance this load observed, then
    // stop raising events for it.
    LS->Mature = true;
    if (LS->BestDistance != G->Distance) {
      G->Distance = LS->BestDistance;
      for (size_t PI : G->PrefetchIdxs) {
        Addr Slot = M.PrefetchSlotAddrs[PI];
        if (Slot != 0)
          CC.at(Slot).Imm = PrefetchPlanner::immediateFor(
              M.Plan.Prefetches[PI], G->Distance);
      }
    }
    Dlt.forceMature(LoadPC);
    ++Stats.LoadsMatured;
    TRIDENT_DBG("[trident] matured load=0x%llx (budget spent; settled at "
                "distance %d)\n",
                (unsigned long long)LoadPC, G->Distance);
  }

  Dlt.clearWindow(LoadPC);
  clearOptFlag(TraceId);
}

void TridentRuntime::finishMature(uint32_t TraceId, Addr LoadPC) {
  TRIDENT_DBG("[trident] mature trace=%u load=0x%llx (not repairable)\n",
              TraceId, (unsigned long long)LoadPC);
  Dlt.forceMature(LoadPC);
  // Keep the plan's view consistent so repeated events stay cheap.
  TraceMeta &M = Traces[TraceId];
  auto It = M.LoadPCToBaseIdx.find(LoadPC);
  if (It != M.LoadPCToBaseIdx.end())
    if (PrefetchGroup *G = M.Plan.groupCovering(It->second))
      if (LoadRepairState *LS = G->stateFor(It->second))
        LS->Mature = true;
  ++Stats.LoadsMatured;
  clearOptFlag(TraceId);
}
