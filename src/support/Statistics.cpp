//===- Statistics.cpp -----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include "support/Check.h"

using namespace trident;

double trident::arithmeticMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double trident::geometricMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs) {
    TRIDENT_CHECK(X > 0, "geometric mean requires positive values");
    LogSum += std::log(X);
  }
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

double Histogram::cdfAt(size_t Idx) const {
  if (Total == 0)
    return 0.0;
  uint64_t Acc = 0;
  for (size_t I = 0; I <= Idx && I < Counts.size(); ++I)
    Acc += Counts[I];
  return static_cast<double>(Acc) / static_cast<double>(Total);
}
