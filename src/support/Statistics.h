//===- Statistics.h - Counters, means, and histograms ----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics helpers shared by the simulator and the benchmark
/// harnesses: running means, geometric means (the paper reports average
/// speedups), and simple bucketed histograms.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_STATISTICS_H
#define TRIDENT_SUPPORT_STATISTICS_H

#include "support/Check.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace trident {

/// Incremental mean / min / max over a stream of samples.
class RunningStat {
public:
  void addSample(double X) {
    ++Count;
    Sum += X;
    Min = Count == 1 ? X : std::min(Min, X);
    Max = Count == 1 ? X : std::max(Max, X);
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count == 0 ? 0.0 : Sum / static_cast<double>(Count); }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }

  void reset() { *this = RunningStat(); }

private:
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Arithmetic mean of a vector; returns 0 for an empty vector.
double arithmeticMean(const std::vector<double> &Xs);

/// Geometric mean of a vector of positive values; returns 0 for empty input.
/// Used for "average speedup" rows in the reproduced figures.
double geometricMean(const std::vector<double> &Xs);

/// A fixed-bucket histogram over [0, BucketWidth * NumBuckets), with an
/// overflow bucket. Used e.g. for load-latency distributions.
class Histogram {
public:
  Histogram(double BucketWidth, unsigned NumBuckets)
      : Width(BucketWidth), Counts(NumBuckets + 1, 0) {
    TRIDENT_CHECK(BucketWidth > 0 && NumBuckets > 0, "degenerate histogram");
  }

  void addSample(double X) {
    ++Total;
    if (X < 0)
      X = 0;
    size_t Idx = static_cast<size_t>(X / Width);
    if (Idx >= Counts.size() - 1)
      Idx = Counts.size() - 1; // overflow bucket
    ++Counts[Idx];
  }

  uint64_t total() const { return Total; }
  uint64_t bucketCount(size_t Idx) const { return Counts[Idx]; }
  size_t numBuckets() const { return Counts.size(); }
  double bucketWidth() const { return Width; }

  /// Fraction of samples at or below bucket \p Idx (inclusive CDF).
  double cdfAt(size_t Idx) const;

private:
  double Width;
  std::vector<uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace trident

#endif // TRIDENT_SUPPORT_STATISTICS_H
