//===- Table.cpp ----------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "support/Check.h"

#include <cstdio>

using namespace trident;

Table::Table(std::vector<std::string> Columns) : Header(std::move(Columns)) {
  TRIDENT_CHECK(!Header.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  TRIDENT_CHECK(Row.size() == Header.size(), "row arity mismatch");
  Rows.push_back(std::move(Row));
}

void Table::addSeparator() { Rows.emplace_back(); }

static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  bool SawDigit = false;
  for (char C : S) {
    if (C >= '0' && C <= '9') {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == '-' || C == '+' || C == '%' || C == 'x' || C == 'e')
      continue;
    return false;
  }
  return SawDigit;
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows) {
    if (Row.empty())
      continue;
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  }

  auto renderRule = [&](std::string &Out) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      Out += '+';
      Out.append(Widths[I] + 2, '-');
    }
    Out += "+\n";
  };

  auto renderCells = [&](std::string &Out,
                         const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out += "| ";
      const std::string &Cell = Cells[I];
      size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
      Out += ' ';
    }
    Out += "|\n";
  };

  std::string Out;
  renderRule(Out);
  renderCells(Out, Header);
  renderRule(Out);
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      renderRule(Out);
      continue;
    }
    renderCells(Out, Row);
  }
  renderRule(Out);
  return Out;
}

std::string trident::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string trident::formatPercent(double Fraction, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Fraction * 100.0);
  return Buf;
}
