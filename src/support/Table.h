//===- Table.h - ASCII table rendering for experiment output ---*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal ASCII table builder used by the benchmark harnesses to print the
/// rows/series the paper's figures and tables report. Avoids <iostream> in
/// library code per the LLVM guidelines; rendering produces a std::string the
/// caller prints.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_TABLE_H
#define TRIDENT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace trident {

/// Column-aligned ASCII table. Add a header once, then rows of equal arity.
// trident-lint: not-a-hw-table(render-time report builder, rows are
// bounded by the workload list, not a modeled SRAM)
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; must have the same number of cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Inserts a horizontal rule before the next appended row.
  void addSeparator();

  /// Renders the table with column alignment; numeric-looking cells are
  /// right-aligned, everything else left-aligned.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows; // empty row == separator
};

/// Formats \p Value with \p Decimals fractional digits ("%.*f").
std::string formatDouble(double Value, int Decimals = 2);

/// Formats \p Fraction (0..1) as a percentage string like "23.4%".
std::string formatPercent(double Fraction, int Decimals = 1);

} // namespace trident

#endif // TRIDENT_SUPPORT_TABLE_H
