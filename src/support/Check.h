//===- Check.h - Simulator invariant checking macros -----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TRIDENT_CHECK / TRIDENT_DCHECK: the simulator's invariant layer.
///
/// A cycle-accurate simulator is only as trustworthy as its invariants —
/// a silently corrupted MSHR heap or a non-monotonic cycle counter does
/// not crash, it just produces wrong numbers that look plausible. These
/// macros replace bare assert() everywhere in src/ (enforced by
/// tools/trident_lint.py) and add printf-style formatted context so a
/// failure report carries the actual values, not just the expression:
///
///   TRIDENT_CHECK(Ctx < Ctxs.size(),
///                 "context %u out of range (have %zu)", Ctx, Ctxs.size());
///
/// Two severities:
///
///  * TRIDENT_CHECK — structural/configuration invariants checked in every
///    build flavor, including Release. Use on cold paths (constructors,
///    per-batch setup, mode switches) where the cost is irrelevant.
///
///  * TRIDENT_DCHECK — per-access invariants on simulator hot paths
///    (register file indexing, cache line alignment, heap bounds). Active
///    in checked builds (TRIDENT_DCHECKS_ENABLED=1, the default for the
///    `checked`, `asan`, and `tsan` presets and the plain RelWithDebInfo
///    build); compiled out — condition unevaluated — in the `release`
///    preset. A DCHECK must therefore never carry side effects.
///
/// Failures print the expression, location, and formatted message to
/// stderr and abort(), so death tests and sanitizers both see them.
/// Checks never alter simulated timing: they observe state, they do not
/// advance it (the figure-harness bit-identity test in
/// tools/run_all_figures.sh relies on this).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_CHECK_H
#define TRIDENT_SUPPORT_CHECK_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace trident {
namespace detail {

/// Prints the failure report and aborts. Out-of-line so the hot-path
/// callers only carry a compare + branch; the cold tail lives here.
[[noreturn]] inline void checkFailV(const char *CondStr, const char *File,
                                    int Line, const char *Func,
                                    const char *Fmt, va_list Args) {
  std::fprintf(stderr, "TRIDENT_CHECK failed: %s\n  at %s:%d in %s\n", CondStr,
               File, Line, Func);
  if (Fmt && *Fmt) {
    std::fprintf(stderr, "  ");
    std::vfprintf(stderr, Fmt, Args);
    std::fprintf(stderr, "\n");
  }
  std::fflush(stderr);
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 5, 6)))
#endif
[[noreturn]] inline void
checkFail(const char *CondStr, const char *File, int Line, const char *Func,
          const char *Fmt = nullptr, ...) {
  va_list Args;
  va_start(Args, Fmt);
  checkFailV(CondStr, File, Line, Func, Fmt, Args);
  // checkFailV aborts; va_end is unreachable but keeps analyzers happy.
}

} // namespace detail
} // namespace trident

/// Always-on invariant. Evaluates \p Cond exactly once; on failure prints
/// the condition, source location, and the optional printf-style message,
/// then aborts.
#define TRIDENT_CHECK(Cond, ...)                                               \
  do {                                                                         \
    if (!(Cond)) [[unlikely]]                                                  \
      ::trident::detail::checkFail(#Cond, __FILE__, __LINE__,                  \
                                   static_cast<const char *>(__func__)         \
                                       __VA_OPT__(, ) __VA_ARGS__);            \
  } while (0)

/// Marks a statically unreachable path (invalid opcode, exhausted switch).
#define TRIDENT_UNREACHABLE(...)                                               \
  ::trident::detail::checkFail("unreachable", __FILE__, __LINE__,              \
                               static_cast<const char *>(__func__)             \
                                   __VA_OPT__(, ) __VA_ARGS__)

#ifndef TRIDENT_DCHECKS_ENABLED
/// Default to checked semantics when the build system says nothing —
/// matches the repo's historical "assertions on in every build type".
#define TRIDENT_DCHECKS_ENABLED 1
#endif

#if TRIDENT_DCHECKS_ENABLED
#define TRIDENT_DCHECK(Cond, ...) TRIDENT_CHECK(Cond __VA_OPT__(, ) __VA_ARGS__)
#else
/// Compiled out: the `if (false)` keeps the expression type-checked (so a
/// DCHECK cannot rot in Release-only code) while the optimizer removes the
/// evaluation entirely.
#define TRIDENT_DCHECK(Cond, ...)                                              \
  do {                                                                         \
    if (false)                                                                 \
      TRIDENT_CHECK(Cond __VA_OPT__(, ) __VA_ARGS__);                          \
  } while (0)
#endif

#endif // TRIDENT_SUPPORT_CHECK_H
