//===- StatRegistry.cpp ---------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/StatRegistry.h"

#include <algorithm>
#include <cstdio>

using namespace trident;

StatRegistry::Entry &StatRegistry::upsert(const std::string &Name,
                                          StatType T) {
  Entry &E = Map[Name];
  E.Name = Name;
  E.Type = T;
  E.U = 0;
  E.D = 0.0;
  E.Buckets.clear();
  return E;
}

void StatRegistry::setCounter(const std::string &Name, uint64_t Value) {
  upsert(Name, StatType::Counter).U = Value;
}

void StatRegistry::setReal(const std::string &Name, double Value) {
  upsert(Name, StatType::Real).D = Value;
}

void StatRegistry::setHistogram(const std::string &Name, const Histogram &H) {
  Entry &E = upsert(Name, StatType::Histogram);
  // Recover the bucket width from the class invariant: bucket i covers
  // [i*Width, (i+1)*Width). Histogram does not expose Width directly, so
  // the registry snapshot carries counts plus the width passed here.
  E.Buckets.resize(H.numBuckets());
  for (size_t I = 0; I < H.numBuckets(); ++I)
    E.Buckets[I] = H.bucketCount(I);
  E.D = H.bucketWidth();
}

const StatRegistry::Entry *StatRegistry::find(const std::string &Name) const {
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}

bool StatRegistry::has(const std::string &Name) const {
  return Map.count(Name) != 0;
}

uint64_t StatRegistry::counter(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->Type == StatType::Counter ? E->U : 0;
}

double StatRegistry::real(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->Type == StatType::Real ? E->D : 0.0;
}

std::vector<const StatRegistry::Entry *> StatRegistry::sortedEntries() const {
  std::vector<const Entry *> Out;
  Out.reserve(Map.size());
  for (const auto &KV : Map)
    Out.push_back(&KV.second);
  // Byte-wise std::string operator<: no locale, identical on every
  // platform, so export order — and therefore export bytes — is stable.
  std::sort(Out.begin(), Out.end(),
            [](const Entry *A, const Entry *B) { return A->Name < B->Name; });
  return Out;
}

namespace {

/// JSON string escaping for stat names (ASCII identifiers in practice,
/// but never emit malformed JSON even for a hostile name).
void appendJsonString(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

void appendReal(std::string &Out, double V) {
  char Buf[64];
  // %.17g round-trips any double and formats identically wherever the C
  // locale is in effect (the simulator never changes locale).
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

std::string StatRegistry::toJsonl() const {
  std::string Out;
  // Pre-size to an upper bound of the export so appending never regrows:
  // per entry, the JSON scaffolding + name + a 20-digit value, plus up to
  // 21 bytes per histogram bucket.
  size_t Est = 0;
  // trident-analyze: ordered-ok(commutative integer sum; only the total
  // matters, and the export below iterates sortedEntries())
  for (const auto &KV : Map)
    Est += KV.second.Name.size() + 72 + KV.second.Buckets.size() * 21;
  Out.reserve(Est);
  for (const Entry *E : sortedEntries()) {
    Out += "{\"name\":";
    appendJsonString(Out, E->Name);
    switch (E->Type) {
    case StatType::Counter: {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(E->U));
      Out += ",\"type\":\"counter\",\"value\":";
      Out += Buf;
      break;
    }
    case StatType::Real:
      Out += ",\"type\":\"real\",\"value\":";
      appendReal(Out, E->D);
      break;
    case StatType::Histogram: {
      Out += ",\"type\":\"histogram\",\"bucket_width\":";
      appendReal(Out, E->D);
      Out += ",\"buckets\":[";
      for (size_t I = 0; I < E->Buckets.size(); ++I) {
        if (I)
          Out.push_back(',');
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%llu",
                      static_cast<unsigned long long>(E->Buckets[I]));
        Out += Buf;
      }
      Out.push_back(']');
      break;
    }
    }
    Out += "}\n";
  }
  return Out;
}

bool StatRegistry::writeJsonl(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = toJsonl();
  size_t Written = std::fwrite(S.data(), 1, S.size(), F);
  bool Ok = Written == S.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}
