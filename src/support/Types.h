//===- Types.h - Shared scalar type aliases --------------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_TYPES_H
#define TRIDENT_SUPPORT_TYPES_H

#include <cstdint>

namespace trident {

/// Absolute simulation time in processor cycles.
using Cycle = uint64_t;

} // namespace trident

#endif // TRIDENT_SUPPORT_TYPES_H
