//===- StatRegistry.h - Central named-statistics registry ------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry of named counters, gauges, and histograms for the whole
/// machine. Every component (cpu, mem, hwpf, dlt, trident, core) registers
/// its statistics under a dotted prefix at the end of a run, replacing the
/// per-binary hand-flattening of MemStats/RuntimeStats/DltStats that each
/// bench used to do. The registry is a measurement snapshot, not a live
/// counter bank: registration happens once, after the measurement window,
/// so it adds zero cost to the simulation hot path.
///
/// Export determinism (load-bearing): sortedEntries() orders names with a
/// plain byte-wise std::string comparison — no locale, no case folding —
/// and the JSONL writer formats integers as decimal and reals with %.17g,
/// so a given simulation produces byte-identical exports on every run and
/// platform.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_STATREGISTRY_H
#define TRIDENT_SUPPORT_STATREGISTRY_H

#include "support/Statistics.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace trident {

class StatRegistry {
public:
  enum class StatType : uint8_t { Counter, Real, Histogram };

  struct Entry {
    std::string Name;
    StatType Type = StatType::Counter;
    uint64_t U = 0;                ///< Counter value.
    double D = 0.0;                ///< Real value; histogram bucket width.
    std::vector<uint64_t> Buckets; ///< Histogram counts (last = overflow).
  };

  /// Registers (or overwrites) a monotonic counter.
  void setCounter(const std::string &Name, uint64_t Value);
  /// Registers (or overwrites) a real-valued gauge (e.g. an IPC).
  void setReal(const std::string &Name, double Value);
  /// Registers (or overwrites) a histogram snapshot.
  void setHistogram(const std::string &Name, const Histogram &H);

  bool has(const std::string &Name) const;
  /// Value of a counter, or 0 if absent / not a counter.
  uint64_t counter(const std::string &Name) const;
  /// Value of a real gauge, or 0.0 if absent / not a real.
  double real(const std::string &Name) const;
  const Entry *find(const std::string &Name) const;

  size_t size() const { return Map.size(); }

  /// Every entry, sorted by name with byte-wise comparison. The stable
  /// order is what makes the exports reproducible across runs, platforms,
  /// and registration order.
  std::vector<const Entry *> sortedEntries() const;

  /// One JSON object per line, sorted by name:
  ///   {"name":"mem.demand_loads","type":"counter","value":12345}
  ///   {"name":"core.ipc","type":"real","value":1.2345}
  ///   {"name":"...","type":"histogram","bucket_width":1,"buckets":[...]}
  std::string toJsonl() const;

  /// Writes toJsonl() to \p Path; returns false on I/O failure.
  bool writeJsonl(const std::string &Path) const;

private:
  Entry &upsert(const std::string &Name, StatType T);

  std::unordered_map<std::string, Entry> Map;
};

} // namespace trident

#endif // TRIDENT_SUPPORT_STATREGISTRY_H
