//===- Random.h - Deterministic pseudo-random numbers ----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (SplitMix64) used by workload generators
/// so experiments are exactly reproducible across runs and machines.
///
/// Thread-safety: there is deliberately no global RNG state anywhere in the
/// simulator — every generator seeds its own SplitMix64 instance, so
/// concurrent simulations (see sim/ExperimentRunner.h) never share or race
/// on random state. Keep it that way: construct an instance where you need
/// one instead of adding a shared generator.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_RANDOM_H
#define TRIDENT_SUPPORT_RANDOM_H

#include "support/Check.h"

#include <cstddef>
#include <cstdint>
#include <utility>

namespace trident {

/// SplitMix64: tiny, statistically solid, and deterministic by construction.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    TRIDENT_DCHECK(Bound != 0, "nextBelow requires a nonzero bound");
    // Multiply-shift trick; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

/// Fisher-Yates shuffle over an indexable container.
template <typename Container>
void shuffle(Container &C, SplitMix64 &Rng) {
  for (size_t I = C.size(); I > 1; --I) {
    size_t J = Rng.nextBelow(I);
    using std::swap;
    swap(C[I - 1], C[J]);
  }
}

} // namespace trident

#endif // TRIDENT_SUPPORT_RANDOM_H
