//===- SaturatingCounter.h - Bounded up/down counters ----------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction of Zhang, Calder, Tullsen,
// "A Self-Repairing Prefetcher in an Event-Driven Dynamic Optimization
// Framework", CGO 2006.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small saturating counters used by branch predictors, the branch profiler,
/// and the DLT stride-confidence field (which increments by 1 and decrements
/// by 7, per Section 3.3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SUPPORT_SATURATINGCOUNTER_H
#define TRIDENT_SUPPORT_SATURATINGCOUNTER_H

#include <algorithm>
#include <cstdint>

namespace trident {

/// An integer counter clamped to [0, Max].
///
/// \tparam Max inclusive upper bound (e.g. 15 for a 4-bit counter).
template <int Max> class SaturatingCounter {
public:
  SaturatingCounter() = default;
  explicit SaturatingCounter(int Initial) : Value(clamp(Initial)) {}

  /// Adds \p Delta (may be negative), clamping to [0, Max].
  void add(int Delta) { Value = clamp(Value + Delta); }

  void increment() { add(1); }
  void decrement() { add(-1); }

  /// Resets the counter to \p NewValue (default 0).
  void reset(int NewValue = 0) { Value = clamp(NewValue); }

  int value() const { return Value; }
  bool isSaturated() const { return Value == Max; }
  bool isZero() const { return Value == 0; }

  /// True in the "upper half" of the range; the usual taken/strong test for
  /// 2-bit predictor counters.
  bool isSet() const { return Value > Max / 2; }

  static constexpr int max() { return Max; }

private:
  static int clamp(int V) { return std::min(Max, std::max(0, V)); }

  int Value = 0;
};

/// 2-bit predictor counter (states 0..3, predict-taken when >= 2).
using TwoBitCounter = SaturatingCounter<3>;

/// 4-bit counter (0..15) used by the DLT stride confidence and the branch
/// profiler's per-entry execution counter (Table 2).
using FourBitCounter = SaturatingCounter<15>;

} // namespace trident

#endif // TRIDENT_SUPPORT_SATURATINGCOUNTER_H
