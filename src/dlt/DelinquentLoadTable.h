//===- DelinquentLoadTable.h - The DLT monitoring structure ----*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Delinquent Load Table of Section 3.3 / Table 2: a 2-way associative,
/// LRU-replaced table tagged by load PC that tracks, per load within a hot
/// trace: an access counter, an L1 miss counter, the total miss latency,
/// the last effective address, the last stride with a 4-bit confidence
/// counter (+1 on matching stride, -7 otherwise; stride-predictable at 15),
/// and a prefetch-mature flag.
///
/// Within each monitoring window of N accesses (default 256) a load is
/// delinquent iff its miss counter reaches the miss threshold (default 8,
/// i.e. a 3% miss rate) and its average miss latency exceeds half the L2
/// miss latency. A delinquent verdict at the window boundary raises a
/// delinquent-load event; otherwise the window counters reset and
/// monitoring continues. After an event the counters freeze until the
/// helper thread clears them during optimization.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_DLT_DELINQUENTLOADTABLE_H
#define TRIDENT_DLT_DELINQUENTLOADTABLE_H

#include "isa/Instruction.h"
#include "support/SaturatingCounter.h"
#include "support/Types.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace trident {

class StatRegistry;

struct DltConfig {
  unsigned NumEntries = 1024;
  unsigned Assoc = 2;
  /// N: the load monitoring window, in accesses.
  unsigned MonitorWindow = 256;
  /// Misses within a window needed for delinquency (8/256 ~ 3%).
  unsigned MissThreshold = 8;
  /// Average miss latency must exceed "half of the L2 miss latency"
  /// (Section 3.3) — the cost of missing in the L2 is the L3 hit latency
  /// (35 cycles, Table 1), so the threshold filters out loads that are
  /// effectively served by the L2/L3 and keeps those that stall the
  /// pipeline for longer.
  unsigned LatencyThreshold = 12;
  /// Stride confidence value at which a load is stride-predictable.
  int StrideConfidentAt = 15;

  static DltConfig baseline() { return DltConfig(); }
};

/// Read-only view of one DLT entry for the optimizer.
struct DltSnapshot {
  Addr LoadPC = 0;
  uint32_t Accesses = 0;
  uint32_t Misses = 0;
  uint64_t TotalMissLatency = 0;
  int64_t Stride = 0;
  bool StridePredictable = false;
  bool Mature = false;

  double missRate() const {
    return Accesses == 0 ? 0.0
                         : static_cast<double>(Misses) / Accesses;
  }
  double avgMissLatency() const {
    return Misses == 0 ? 0.0
                       : static_cast<double>(TotalMissLatency) / Misses;
  }
  /// Average per-access latency penalty; the quantity the self-repairing
  /// optimizer tracks to decide whether a distance bump helped
  /// (Section 3.5.2).
  double avgAccessLatency() const {
    return Accesses == 0 ? 0.0
                         : static_cast<double>(TotalMissLatency) / Accesses;
  }
};

struct DltStats {
  uint64_t Updates = 0;
  uint64_t Events = 0;
  uint64_t WindowsCompleted = 0;
  uint64_t Replacements = 0;

  /// Registers every field under \p Prefix (e.g. "dlt.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

class DelinquentLoadTable {
public:
  explicit DelinquentLoadTable(const DltConfig &Config);

  /// Records one committed hot-trace load. \p Miss is true for any access
  /// the L1 could not serve at hit latency; \p MissLatency is the exposed
  /// latency beyond the L1 hit time. Returns true when the update raises a
  /// delinquent-load event.
  bool update(Addr LoadPC, Addr EffectiveAddr, bool Miss,
              unsigned MissLatency);

  /// Optimizer-side lookup; returns current (possibly partial-window)
  /// counters, or nullopt when the load is not resident.
  std::optional<DltSnapshot> lookup(Addr LoadPC) const;

  /// The Section 3.4.1 test the optimizer applies to *other* loads in the
  /// trace: delinquent by current counters, scaled for a partial window.
  bool isDelinquent(Addr LoadPC) const;

  /// Clears the window counters of \p LoadPC (the helper thread does this
  /// as part of optimization) and unfreezes monitoring.
  void clearWindow(Addr LoadPC);

  /// Sets or clears the prefetch-mature flag. A mature load never raises
  /// events until its entry is replaced.
  void setMature(Addr LoadPC, bool Mature);

  /// Like setMature(true), but allocates the entry if absent. The
  /// optimizer uses this to pre-mature loads it cannot prefetch at
  /// addresses that have not been monitored yet (e.g. in a freshly
  /// installed trace).
  void forceMature(Addr LoadPC);

  /// Clears every mature flag (the Section 3.5.2 future-work hook: invoked
  /// on a detected working-set/phase change). Returns how many were set.
  uint64_t clearAllMature();

  /// Invalidates every entry (fault-injection hook, src/faults): the
  /// monitoring state a context switch or SRAM upset would destroy. Loads
  /// re-allocate fresh entries — mature flags included — so eviction is
  /// what forces the DLT to re-flag a previously-settled load. Returns
  /// the number of valid entries cleared. Stats are untouched.
  uint64_t invalidateAll();

  const DltConfig &config() const { return Config; }
  const DltStats &stats() const { return Stats; }

private:
  /// Per-entry monitoring state minus the lookup key. The key (tag +
  /// valid bit) lives in packed parallel arrays so the per-commit find()
  /// scans contiguous tags instead of striding over this fat record.
  struct Payload {
    uint32_t Accesses = 0;
    uint32_t Misses = 0;
    uint64_t TotalMissLatency = 0;
    Addr LastAddr = 0;
    bool HaveLastAddr = false;
    int64_t Stride = 0;
    FourBitCounter StrideConf;
    bool Mature = false;
    /// Event fired; counters frozen until the helper clears them.
    bool Frozen = false;
    uint64_t LastUse = 0;
  };

  static constexpr size_t NoEntry = ~static_cast<size_t>(0);

  bool meetsDelinquencyCriteria(const Payload &P) const;

  size_t setIndex(Addr PC) const { return PC & (NumSets - 1); }
  size_t find(Addr PC) const;
  size_t findOrAllocate(Addr PC);

  DltConfig Config;
  size_t NumSets;
  // Set-major SoA entry state: index = set * Assoc + way.
  std::vector<Addr> TagsArr;
  std::vector<uint8_t> ValidArr;
  std::vector<Payload> Payloads;
  DltStats Stats;
  uint64_t UseClock = 0;
};

} // namespace trident

#endif // TRIDENT_DLT_DELINQUENTLOADTABLE_H
