//===- DelinquentLoadTable.cpp --------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// trident-lint: hot-path (per-access simulation inner loop; no O(n) erase
// scans)
//
//===----------------------------------------------------------------------===//

#include "dlt/DelinquentLoadTable.h"
#include "events/StatRegistry.h"
#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace trident;

void DltStats::registerInto(StatRegistry &R, const std::string &Prefix) const {
  R.setCounter(Prefix + "updates", Updates);
  R.setCounter(Prefix + "events", Events);
  R.setCounter(Prefix + "windows_completed", WindowsCompleted);
  R.setCounter(Prefix + "replacements", Replacements);
}

static bool dltDebugEnabled() {
  static const bool E = [] {
    const char *V = std::getenv("TRIDENT_DEBUG_DLT");
    return V && *V && *V != '0';
  }();
  return E;
}

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

DelinquentLoadTable::DelinquentLoadTable(const DltConfig &Cfg)
    : Config(Cfg), NumSets(Config.NumEntries / Config.Assoc) {
  TRIDENT_CHECK(Config.Assoc >= 1 && Config.NumEntries % Config.Assoc == 0,
                "%u entries must divide evenly into %u-way sets",
                Config.NumEntries, Config.Assoc);
  TRIDENT_CHECK(isPowerOfTwo(NumSets), "set count %zu must be a power of two",
                NumSets);
  TRIDENT_CHECK(Config.MissThreshold <= Config.MonitorWindow,
                "miss threshold %u cannot exceed the %u-access window",
                Config.MissThreshold, Config.MonitorWindow);
  Entries.resize(Config.NumEntries);
}

DelinquentLoadTable::Entry *DelinquentLoadTable::find(Addr PC) {
  size_t Base = setIndex(PC) * Config.Assoc;
  for (unsigned W = 0; W < Config.Assoc; ++W) {
    Entry &E = Entries[Base + W];
    if (E.Valid && E.Tag == PC)
      return &E;
  }
  return nullptr;
}

const DelinquentLoadTable::Entry *DelinquentLoadTable::find(Addr PC) const {
  return const_cast<DelinquentLoadTable *>(this)->find(PC);
}

DelinquentLoadTable::Entry &DelinquentLoadTable::findOrAllocate(Addr PC) {
  if (Entry *E = find(PC)) {
    E->LastUse = ++UseClock;
    return *E;
  }
  size_t Base = setIndex(PC) * Config.Assoc;
  // Size bound: the DLT is a fixed SRAM structure (Table 2); every set
  // must lie inside the backing array or replacement state is corrupt.
  TRIDENT_DCHECK(Base + Config.Assoc <= Entries.size(),
                 "DLT set for pc 0x%llx overruns the table (base %zu + %u > "
                 "%zu entries)",
                 (unsigned long long)PC, Base, Config.Assoc, Entries.size());
  Entry *Victim = &Entries[Base];
  for (unsigned W = 0; W < Config.Assoc; ++W) {
    Entry &E = Entries[Base + W];
    if (!E.Valid) {
      Victim = &E;
      break;
    }
    if (E.LastUse < Victim->LastUse)
      Victim = &E;
  }
  if (Victim->Valid)
    ++Stats.Replacements;
  *Victim = Entry();
  Victim->Valid = true;
  Victim->Tag = PC;
  Victim->LastUse = ++UseClock;
  return *Victim;
}

bool DelinquentLoadTable::meetsDelinquencyCriteria(const Entry &E) const {
  if (E.Misses < Config.MissThreshold)
    return false;
  double AvgMissLat = static_cast<double>(E.TotalMissLatency) / E.Misses;
  return AvgMissLat > static_cast<double>(Config.LatencyThreshold);
}

bool DelinquentLoadTable::update(Addr LoadPC, Addr EffectiveAddr, bool Miss,
                                 unsigned MissLatency) {
  ++Stats.Updates;
  Entry &E = findOrAllocate(LoadPC);

  // Stride prediction state updates on *every* committed instance of the
  // load, independent of the window counters (Section 3.3).
  if (E.HaveLastAddr) {
    int64_t NewStride = static_cast<int64_t>(EffectiveAddr) -
                        static_cast<int64_t>(E.LastAddr);
    if (NewStride == E.Stride)
      E.StrideConf.add(1);
    else
      E.StrideConf.add(-7);
    E.Stride = NewStride;
  }
  E.LastAddr = EffectiveAddr;
  E.HaveLastAddr = true;

  if (E.Frozen)
    return false; // Waiting for the helper thread to clear the window.

  ++E.Accesses;
  // Window-counter sanity: counters reset at every window boundary, so an
  // unfrozen entry can never run past the window, and a window can never
  // see more misses than accesses.
  TRIDENT_DCHECK(E.Accesses <= Config.MonitorWindow,
                 "DLT window overran: %u accesses in a %u-access window "
                 "(pc 0x%llx)",
                 E.Accesses, Config.MonitorWindow,
                 (unsigned long long)LoadPC);
  TRIDENT_DCHECK(E.Misses < E.Accesses,
                 "DLT entry for pc 0x%llx counts %u misses in %u accesses",
                 (unsigned long long)LoadPC, E.Misses, E.Accesses);
  if (Miss) {
    ++E.Misses;
    E.TotalMissLatency += MissLatency;
  }

  // Early exit inside the window: the miss counter can only be judged at
  // the window boundary (miss *rate* needs the full denominator).
  if (E.Accesses < Config.MonitorWindow)
    return false;

  ++Stats.WindowsCompleted;
  if (dltDebugEnabled())
    std::fprintf(stderr,
                 "[dlt] window pc=0x%llx misses=%u avg=%.1f mature=%d -> %s\n",
                 (unsigned long long)LoadPC, E.Misses,
                 E.Misses ? double(E.TotalMissLatency) / E.Misses : 0.0,
                 E.Mature,
                 (!E.Mature && meetsDelinquencyCriteria(E)) ? "EVENT" : "reset");
  if (!E.Mature && meetsDelinquencyCriteria(E)) {
    // Delinquent: freeze the counters (the helper thread reads and then
    // clears them) and raise the event.
    E.Frozen = true;
    ++Stats.Events;
    return true;
  }

  // Not delinquent (or mature): reset and keep monitoring.
  E.Accesses = 0;
  E.Misses = 0;
  E.TotalMissLatency = 0;
  return false;
}

std::optional<DltSnapshot> DelinquentLoadTable::lookup(Addr LoadPC) const {
  const Entry *E = find(LoadPC);
  if (!E)
    return std::nullopt;
  DltSnapshot S;
  S.LoadPC = LoadPC;
  S.Accesses = E->Accesses;
  S.Misses = E->Misses;
  S.TotalMissLatency = E->TotalMissLatency;
  S.Stride = E->Stride;
  S.StridePredictable = E->StrideConf.value() >= Config.StrideConfidentAt;
  S.Mature = E->Mature;
  return S;
}

bool DelinquentLoadTable::isDelinquent(Addr LoadPC) const {
  const Entry *E = find(LoadPC);
  if (!E || E->Mature)
    return false;
  if (E->Misses == 0)
    return false;
  double AvgMissLat = static_cast<double>(E->TotalMissLatency) / E->Misses;
  if (AvgMissLat <= static_cast<double>(Config.LatencyThreshold))
    return false;
  // Partial-window scaling (Section 3.4.1): judge the miss *rate* using
  // the accesses seen so far rather than the full window.
  if (E->Accesses >= Config.MonitorWindow)
    return E->Misses >= Config.MissThreshold;
  double RateThreshold = static_cast<double>(Config.MissThreshold) /
                         static_cast<double>(Config.MonitorWindow);
  // Require a minimum sample so one early miss does not classify.
  if (E->Accesses < Config.MonitorWindow / 8)
    return false;
  return static_cast<double>(E->Misses) / E->Accesses >= RateThreshold;
}

void DelinquentLoadTable::clearWindow(Addr LoadPC) {
  Entry *E = find(LoadPC);
  if (!E)
    return;
  E->Accesses = 0;
  E->Misses = 0;
  E->TotalMissLatency = 0;
  E->Frozen = false;
}

void DelinquentLoadTable::forceMature(Addr LoadPC) {
  Entry &E = findOrAllocate(LoadPC);
  E.Mature = true;
  E.Accesses = 0;
  E.Misses = 0;
  E.TotalMissLatency = 0;
  E.Frozen = false;
}

uint64_t DelinquentLoadTable::clearAllMature() {
  uint64_t N = 0;
  for (Entry &E : Entries) {
    if (E.Valid && E.Mature) {
      E.Mature = false;
      ++N;
    }
  }
  return N;
}

uint64_t DelinquentLoadTable::invalidateAll() {
  uint64_t N = 0;
  for (Entry &E : Entries) {
    if (E.Valid) {
      E = Entry();
      ++N;
    }
  }
  return N;
}

void DelinquentLoadTable::setMature(Addr LoadPC, bool Mature) {
  Entry *E = find(LoadPC);
  if (!E)
    return;
  E->Mature = Mature;
  if (Mature) {
    E->Accesses = 0;
    E->Misses = 0;
    E->TotalMissLatency = 0;
    E->Frozen = false;
  }
}
