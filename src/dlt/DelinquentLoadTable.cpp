//===- DelinquentLoadTable.cpp --------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// trident-lint: hot-path (per-access simulation inner loop; no O(n) erase
// scans)
//
//===----------------------------------------------------------------------===//

#include "dlt/DelinquentLoadTable.h"
#include "support/StatRegistry.h"
#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace trident;

void DltStats::registerInto(StatRegistry &R, const std::string &Prefix) const {
  R.setCounter(Prefix + "updates", Updates);
  R.setCounter(Prefix + "events", Events);
  R.setCounter(Prefix + "windows_completed", WindowsCompleted);
  R.setCounter(Prefix + "replacements", Replacements);
}

static bool dltDebugEnabled() {
  static const bool E = [] {
    const char *V = std::getenv("TRIDENT_DEBUG_DLT");
    return V && *V && *V != '0';
  }();
  return E;
}

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

DelinquentLoadTable::DelinquentLoadTable(const DltConfig &Cfg)
    : Config(Cfg), NumSets(Config.NumEntries / Config.Assoc) {
  TRIDENT_CHECK(Config.Assoc >= 1 && Config.NumEntries % Config.Assoc == 0,
                "%u entries must divide evenly into %u-way sets",
                Config.NumEntries, Config.Assoc);
  TRIDENT_CHECK(isPowerOfTwo(NumSets), "set count %zu must be a power of two",
                NumSets);
  TRIDENT_CHECK(Config.MissThreshold <= Config.MonitorWindow,
                "miss threshold %u cannot exceed the %u-access window",
                Config.MissThreshold, Config.MonitorWindow);
  TagsArr.resize(Config.NumEntries, 0);
  ValidArr.resize(Config.NumEntries, 0);
  Payloads.resize(Config.NumEntries);
}

size_t DelinquentLoadTable::find(Addr PC) const {
  size_t Base = setIndex(PC) * Config.Assoc;
  for (unsigned W = 0; W < Config.Assoc; ++W)
    if (ValidArr[Base + W] && TagsArr[Base + W] == PC)
      return Base + W;
  return NoEntry;
}

size_t DelinquentLoadTable::findOrAllocate(Addr PC) {
  if (size_t I = find(PC); I != NoEntry) {
    Payloads[I].LastUse = ++UseClock;
    return I;
  }
  size_t Base = setIndex(PC) * Config.Assoc;
  // Size bound: the DLT is a fixed SRAM structure (Table 2); every set
  // must lie inside the backing array or replacement state is corrupt.
  TRIDENT_DCHECK(Base + Config.Assoc <= TagsArr.size(),
                 "DLT set for pc 0x%llx overruns the table (base %zu + %u > "
                 "%zu entries)",
                 (unsigned long long)PC, Base, Config.Assoc, TagsArr.size());
  size_t Victim = Base;
  for (unsigned W = 0; W < Config.Assoc; ++W) {
    size_t I = Base + W;
    if (!ValidArr[I]) {
      Victim = I;
      break;
    }
    if (Payloads[I].LastUse < Payloads[Victim].LastUse)
      Victim = I;
  }
  if (ValidArr[Victim])
    ++Stats.Replacements;
  Payloads[Victim] = Payload();
  ValidArr[Victim] = 1;
  TagsArr[Victim] = PC;
  Payloads[Victim].LastUse = ++UseClock;
  return Victim;
}

bool DelinquentLoadTable::meetsDelinquencyCriteria(const Payload &P) const {
  if (P.Misses < Config.MissThreshold)
    return false;
  double AvgMissLat = static_cast<double>(P.TotalMissLatency) / P.Misses;
  return AvgMissLat > static_cast<double>(Config.LatencyThreshold);
}

bool DelinquentLoadTable::update(Addr LoadPC, Addr EffectiveAddr, bool Miss,
                                 unsigned MissLatency) {
  ++Stats.Updates;
  Payload &E = Payloads[findOrAllocate(LoadPC)];

  // Stride prediction state updates on *every* committed instance of the
  // load, independent of the window counters (Section 3.3).
  if (E.HaveLastAddr) {
    int64_t NewStride = static_cast<int64_t>(EffectiveAddr) -
                        static_cast<int64_t>(E.LastAddr);
    if (NewStride == E.Stride)
      E.StrideConf.add(1);
    else
      E.StrideConf.add(-7);
    E.Stride = NewStride;
  }
  E.LastAddr = EffectiveAddr;
  E.HaveLastAddr = true;

  if (E.Frozen)
    return false; // Waiting for the helper thread to clear the window.

  ++E.Accesses;
  // Window-counter sanity: counters reset at every window boundary, so an
  // unfrozen entry can never run past the window, and a window can never
  // see more misses than accesses.
  TRIDENT_DCHECK(E.Accesses <= Config.MonitorWindow,
                 "DLT window overran: %u accesses in a %u-access window "
                 "(pc 0x%llx)",
                 E.Accesses, Config.MonitorWindow,
                 (unsigned long long)LoadPC);
  TRIDENT_DCHECK(E.Misses < E.Accesses,
                 "DLT entry for pc 0x%llx counts %u misses in %u accesses",
                 (unsigned long long)LoadPC, E.Misses, E.Accesses);
  if (Miss) {
    ++E.Misses;
    E.TotalMissLatency += MissLatency;
  }

  // Early exit inside the window: the miss counter can only be judged at
  // the window boundary (miss *rate* needs the full denominator).
  if (E.Accesses < Config.MonitorWindow)
    return false;

  ++Stats.WindowsCompleted;
  if (dltDebugEnabled())
    std::fprintf(stderr,
                 "[dlt] window pc=0x%llx misses=%u avg=%.1f mature=%d -> %s\n",
                 (unsigned long long)LoadPC, E.Misses,
                 E.Misses ? double(E.TotalMissLatency) / E.Misses : 0.0,
                 E.Mature,
                 (!E.Mature && meetsDelinquencyCriteria(E)) ? "EVENT" : "reset");
  if (!E.Mature && meetsDelinquencyCriteria(E)) {
    // Delinquent: freeze the counters (the helper thread reads and then
    // clears them) and raise the event.
    E.Frozen = true;
    ++Stats.Events;
    return true;
  }

  // Not delinquent (or mature): reset and keep monitoring.
  E.Accesses = 0;
  E.Misses = 0;
  E.TotalMissLatency = 0;
  return false;
}

std::optional<DltSnapshot> DelinquentLoadTable::lookup(Addr LoadPC) const {
  size_t I = find(LoadPC);
  if (I == NoEntry)
    return std::nullopt;
  const Payload &P = Payloads[I];
  DltSnapshot S;
  S.LoadPC = LoadPC;
  S.Accesses = P.Accesses;
  S.Misses = P.Misses;
  S.TotalMissLatency = P.TotalMissLatency;
  S.Stride = P.Stride;
  S.StridePredictable = P.StrideConf.value() >= Config.StrideConfidentAt;
  S.Mature = P.Mature;
  return S;
}

bool DelinquentLoadTable::isDelinquent(Addr LoadPC) const {
  size_t I = find(LoadPC);
  if (I == NoEntry || Payloads[I].Mature)
    return false;
  const Payload &P = Payloads[I];
  if (P.Misses == 0)
    return false;
  double AvgMissLat = static_cast<double>(P.TotalMissLatency) / P.Misses;
  if (AvgMissLat <= static_cast<double>(Config.LatencyThreshold))
    return false;
  // Partial-window scaling (Section 3.4.1): judge the miss *rate* using
  // the accesses seen so far rather than the full window.
  if (P.Accesses >= Config.MonitorWindow)
    return P.Misses >= Config.MissThreshold;
  double RateThreshold = static_cast<double>(Config.MissThreshold) /
                         static_cast<double>(Config.MonitorWindow);
  // Require a minimum sample so one early miss does not classify.
  if (P.Accesses < Config.MonitorWindow / 8)
    return false;
  return static_cast<double>(P.Misses) / P.Accesses >= RateThreshold;
}

void DelinquentLoadTable::clearWindow(Addr LoadPC) {
  size_t I = find(LoadPC);
  if (I == NoEntry)
    return;
  Payload &P = Payloads[I];
  P.Accesses = 0;
  P.Misses = 0;
  P.TotalMissLatency = 0;
  P.Frozen = false;
}

void DelinquentLoadTable::forceMature(Addr LoadPC) {
  Payload &P = Payloads[findOrAllocate(LoadPC)];
  P.Mature = true;
  P.Accesses = 0;
  P.Misses = 0;
  P.TotalMissLatency = 0;
  P.Frozen = false;
}

uint64_t DelinquentLoadTable::clearAllMature() {
  uint64_t N = 0;
  for (size_t I = 0; I < Payloads.size(); ++I) {
    if (ValidArr[I] && Payloads[I].Mature) {
      Payloads[I].Mature = false;
      ++N;
    }
  }
  return N;
}

uint64_t DelinquentLoadTable::invalidateAll() {
  uint64_t N = 0;
  for (size_t I = 0; I < Payloads.size(); ++I) {
    if (ValidArr[I]) {
      ValidArr[I] = 0;
      TagsArr[I] = 0;
      Payloads[I] = Payload();
      ++N;
    }
  }
  return N;
}

void DelinquentLoadTable::setMature(Addr LoadPC, bool Mature) {
  size_t I = find(LoadPC);
  if (I == NoEntry)
    return;
  Payload &P = Payloads[I];
  P.Mature = Mature;
  if (Mature) {
    P.Accesses = 0;
    P.Misses = 0;
    P.TotalMissLatency = 0;
    P.Frozen = false;
  }
}
