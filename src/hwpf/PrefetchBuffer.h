//===- PrefetchBuffer.h - Shared prefetched-line store ---------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fully-associative store of prefetched lines shared by the
/// arsenal prefetchers (enhanced-stream, DCPT, T-SKID). Models the
/// prefetch buffer real units drain demand hits from: insert() records a
/// line the unit fetched via the MemoryBackend, take() consumes it on a
/// probe hit. Replacement is FIFO over a fixed ring, so the per-miss path
/// never touches the allocator and occupancy never exceeds Capacity.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_PREFETCHBUFFER_H
#define TRIDENT_HWPF_PREFETCHBUFFER_H

#include "isa/Instruction.h"
#include "support/Types.h"

#include <optional>
#include <vector>

namespace trident {

class PrefetchBuffer {
public:
  /// \p Capacity slots, allocated once; the ring never regrows.
  explicit PrefetchBuffer(unsigned Capacity)
      : Slots(Capacity == 0 ? 1 : Capacity) {}

  bool contains(Addr LineAddr) const {
    for (const Slot &S : Slots)
      if (S.Valid && S.LineAddr == LineAddr)
        return true;
    return false;
  }

  /// Consumes \p LineAddr if present, returning its data-ready cycle.
  std::optional<Cycle> take(Addr LineAddr) {
    for (Slot &S : Slots)
      if (S.Valid && S.LineAddr == LineAddr) {
        S.Valid = false;
        return S.Ready;
      }
    return std::nullopt;
  }

  /// Records a prefetched line; evicts the oldest entry when full. A
  /// duplicate insert refreshes the existing slot in place.
  void insert(Addr LineAddr, Cycle Ready) {
    for (Slot &S : Slots)
      if (S.Valid && S.LineAddr == LineAddr) {
        S.Ready = Ready;
        return;
      }
    Slots[Hand] = {true, LineAddr, Ready};
    Hand = (Hand + 1) % static_cast<unsigned>(Slots.size());
  }

  void clear() {
    for (Slot &S : Slots)
      S.Valid = false;
    Hand = 0;
  }

  unsigned capacity() const { return static_cast<unsigned>(Slots.size()); }

private:
  struct Slot {
    bool Valid = false;
    Addr LineAddr = 0;
    Cycle Ready = 0;
  };

  /// Fixed Capacity slots; Hand is the FIFO replacement cursor.
  std::vector<Slot> Slots;
  unsigned Hand = 0;
};

} // namespace trident

#endif // TRIDENT_HWPF_PREFETCHBUFFER_H
