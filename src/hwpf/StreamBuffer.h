//===- StreamBuffer.h - Predictor-directed stream buffers ------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline hardware prefetcher: N stream buffers of D entries each,
/// allocated on confident stride-predictor entries and advanced by the
/// predicted stride (Sherwood et al., "Predictor-Directed Stream Buffers",
/// MICRO 2000 — the paper's reference [27]). The paper evaluates 4x4 and
/// 8x8 configurations and adopts 8x8 as the baseline (Figure 2).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_STREAMBUFFER_H
#define TRIDENT_HWPF_STREAMBUFFER_H

#include "hwpf/StridePredictor.h"
#include "mem/MemorySystem.h"

#include <vector>

namespace trident {

class StatRegistry;

struct StreamBufferConfig {
  unsigned NumBuffers = 8;
  unsigned Depth = 8;
  unsigned HistoryEntries = 1024;
  /// Minimum accesses with a stable stride before a buffer is allocated
  /// (confidence-based allocation).
  bool RequireConfidence = true;
  /// Stop prefetching at page boundaries (classic stream-buffer
  /// behaviour; enabled together with the TLB model).
  bool StopAtPageBoundary = false;
  unsigned PageBits = 12;

  static StreamBufferConfig config4x4() { return {4, 4, 1024, true}; }
  static StreamBufferConfig config8x8() { return {8, 8, 1024, true}; }
};

/// Statistics for the stream-buffer unit.
struct StreamBufferStats {
  uint64_t Allocations = 0;
  uint64_t ProbeHits = 0;
  uint64_t ProbeMisses = 0;
  uint64_t LinesPrefetched = 0;

  /// Registers every field under \p Prefix (e.g. "hwpf.").
  void registerInto(StatRegistry &R, const std::string &Prefix) const;
};

class StreamBufferUnit final : public HwPrefetcher {
public:
  explicit StreamBufferUnit(const StreamBufferConfig &Config);

  // HwPrefetcher interface.
  void trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                   MemoryBackend &BE) override;
  std::optional<Cycle> probe(Addr LineAddr, Cycle Now,
                             MemoryBackend &BE) override;
  /// Reports exactly the four legacy counters under their historical
  /// names, so the default configuration's "hwpf." registry lines stay
  /// byte-identical to the golden corpus.
  HwPfStats snapshotStats() const override;
  std::string name() const override;

  const StreamBufferConfig &config() const { return Config; }
  const StreamBufferStats &stats() const { return Stats; }
  const StridePredictor &predictor() const { return Predictor; }

  /// Number of currently allocated (valid) buffers — for tests.
  unsigned numActiveBuffers() const;

private:
  /// Fills a buffer may launch per refill call (gradual ramp).
  static constexpr unsigned MaxFetchesPerRefill = 2;

  struct Entry {
    Addr LineAddr = 0;
    Cycle Ready = 0;
  };

  // trident-analyze: not-a-hw-table(per-stream record; Ring is sized to
  // the config Depth once at construction and never regrows)
  struct Buffer {
    bool Valid = false;
    /// Page the stream was (re)primed in, for the page-boundary stop.
    uint64_t PrimeVpn = 0;
    /// Next byte address the stream will prefetch.
    Addr NextAddr = 0;
    int64_t Stride = 0;
    Addr AllocPC = 0;
    uint64_t LastUse = 0;
    /// FIFO of prefetched lines: a fixed ring of Depth slots allocated at
    /// construction, so probe/refill on the per-miss path never touch the
    /// allocator (a deque reallocates blocks as the window slides).
    std::vector<Entry> Ring;
    uint32_t Head = 0;  ///< slot of the oldest entry
    uint32_t Count = 0; ///< live entries
    /// Conservative bounding box over every line pushed since the last
    /// clearEntries(): pops leave it stale-wide, which only costs a
    /// needless scan, never a wrong answer. Lets the per-miss probe and
    /// coverage checks reject a whole buffer with two compares instead
    /// of walking its entries (strides may be negative or skip lines, so
    /// an exact range test is not available).
    Addr LoLine = ~static_cast<Addr>(0);
    Addr HiLine = 0;

    uint32_t slot(uint32_t I) const {
      uint32_t S = Head + I; // Head < cap and I <= Count <= cap
      return S >= Ring.size() ? S - static_cast<uint32_t>(Ring.size()) : S;
    }
    const Entry &at(uint32_t I) const { return Ring[slot(I)]; }
    const Entry &backEntry() const { return Ring[slot(Count - 1)]; }
    void push(const Entry &E) {
      Ring[slot(Count)] = E;
      ++Count;
      if (E.LineAddr < LoLine)
        LoLine = E.LineAddr;
      if (E.LineAddr > HiLine)
        HiLine = E.LineAddr;
    }
    bool mayContain(Addr LineAddr) const {
      return LineAddr >= LoLine && LineAddr <= HiLine;
    }
    /// Drops the oldest \p N entries.
    void popFront(uint32_t N) {
      Head = slot(N);
      Count -= N;
    }
    void clearEntries() {
      Head = 0;
      Count = 0;
      LoLine = ~static_cast<Addr>(0);
      HiLine = 0;
    }
  };

  /// Tops \p B up to Depth entries, issuing fills through \p BE.
  void refill(Buffer &B, Cycle Now, MemoryBackend &BE);

  /// True if some buffer already streams over \p LineAddr with \p Stride.
  bool coveredByExistingStream(Addr LineAddr) const;

  StreamBufferConfig Config;
  StridePredictor Predictor;
  std::vector<Buffer> Buffers;
  StreamBufferStats Stats;
  uint64_t UseClock = 0;
};

} // namespace trident

#endif // TRIDENT_HWPF_STREAMBUFFER_H
