//===- EnhancedStream.h - Noise-tolerant region stream prefetcher -*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enhanced stream prefetcher after Liu et al., "Enhancements for Accurate
/// and Timely Streaming Prefetcher" (JILP 2011): region-based (not
/// PC-based) stream identification, training on misses only with a
/// three-miss confirmation, noise-tolerant training (a miss that breaks
/// the stream's direction is ignored rather than resetting the trainer),
/// unidirectional streams with block-granularity strides, and dead-stream
/// removal (short, inactive streams are evicted first so one-shot regions
/// cannot pollute the stream table). Timestamps are a monotonic training
/// counter, never wall-clock cycles.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_ENHANCEDSTREAM_H
#define TRIDENT_HWPF_ENHANCEDSTREAM_H

#include "hwpf/PrefetchBuffer.h"
#include "mem/MemorySystem.h"

#include <vector>

namespace trident {

struct EnhancedStreamConfig {
  /// Trainer entries (one per region being watched for a stream).
  unsigned NumTrainingEntries = 16;
  /// Confirmed streams tracked at once.
  unsigned NumStreams = 8;
  /// Lines fetched ahead of the stream head per advance.
  unsigned Degree = 2;
  /// Prefetched lines buffered per stream (total buffer capacity is
  /// NumStreams * Depth).
  unsigned Depth = 4;
  /// Region size in lines for stream identification (power of two).
  unsigned RegionLines = 64;
  /// Consistent misses before a stream is confirmed.
  unsigned ConfirmMisses = 3;
  /// A stream idle for this many training events with fewer than
  /// DeadMinLength prefetched lines is dead and evicted first.
  unsigned DeadIdleEvents = 64;
  unsigned DeadMinLength = 4;

  static EnhancedStreamConfig baseline() { return EnhancedStreamConfig(); }
};

class EnhancedStreamPrefetcher final : public HwPrefetcher {
public:
  explicit EnhancedStreamPrefetcher(const EnhancedStreamConfig &Config);

  // HwPrefetcher interface.
  void trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                   MemoryBackend &BE) override;
  std::optional<Cycle> probe(Addr LineAddr, Cycle Now,
                             MemoryBackend &BE) override;
  HwPfStats snapshotStats() const override;
  std::string name() const override;

  const EnhancedStreamConfig &config() const { return Config; }
  /// Number of live confirmed streams — for tests.
  unsigned numActiveStreams() const;

private:
  /// Trainer state for one region (pre-confirmation).
  struct TrainingEntry {
    bool Valid = false;
    uint64_t RegionBase = 0; ///< region-aligned block number
    uint64_t LastBlock = 0;
    unsigned MissCount = 0;
    int Direction = 0;   ///< 0 = unknown, +1 / -1 once observed
    int64_t Stride = 0;  ///< blocks, magnitude >= 1
    uint64_t LastUse = 0;
  };

  /// One confirmed, unidirectional stream.
  struct StreamEntry {
    bool Valid = false;
    uint64_t NextBlock = 0; ///< next block to prefetch
    int64_t Stride = 0;     ///< signed blocks per advance
    uint64_t LastUse = 0;   ///< monotonic training timestamp
    unsigned Length = 0;    ///< lines prefetched so far
  };

  void trainRegion(uint64_t Block, Cycle Now, MemoryBackend &BE);
  void confirmStream(const TrainingEntry &T, Cycle Now, MemoryBackend &BE);
  void advance(StreamEntry &S, unsigned Lines, Cycle Now, MemoryBackend &BE);
  StreamEntry *streamVictim();

  EnhancedStreamConfig Config;
  /// Both tables are sized once from the config and never regrow.
  std::vector<TrainingEntry> Trainers;
  std::vector<StreamEntry> Streams;
  PrefetchBuffer Buffer;
  /// Monotonic training-event counter (the paper's timestamp source).
  uint64_t TrainClock = 0;

  uint64_t Allocations = 0;
  uint64_t ProbeHits = 0;
  uint64_t ProbeMisses = 0;
  uint64_t LinesPrefetched = 0;
  uint64_t NoiseRejected = 0;
  uint64_t DeadStreamsRemoved = 0;
};

} // namespace trident

#endif // TRIDENT_HWPF_ENHANCEDSTREAM_H
