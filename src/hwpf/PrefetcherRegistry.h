//===- PrefetcherRegistry.h - Name -> prefetcher factory -------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arsenal registry: every hardware prefetcher the simulator ships is
/// registered here by name with a factory and a knob parser, so the sim
/// layer, the CLI (`trident_sim --hwpf <spec>`), and the benches resolve
/// prefetchers from one string instead of hardcoding types. A spec is
///
///     name                      e.g.  "sb8x8", "dcpt", "none"
///     name:knob=value,...       e.g.  "dcpt:entries=64,degree=2"
///
/// with integer-valued knobs. "none" (or an empty spec) means no
/// prefetcher and resolves to a null unit, successfully. Built-in entries
/// are registered lazily inside instance(), so there is no static-init
/// ordering to get wrong; phase-aware selectors (ROADMAP) can add their
/// own entries at startup via add().
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_PREFETCHERREGISTRY_H
#define TRIDENT_HWPF_PREFETCHERREGISTRY_H

#include "mem/MemorySystem.h"

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace trident {

/// Wiring facts the factory needs from the surrounding machine.
struct PrefetcherEnv {
  /// A TLB is being modeled: prefetchers that can should stop streams at
  /// page boundaries.
  bool PageBounded = false;
  unsigned PageBits = 12;
};

/// A parsed `name[:knob=value,...]` spec.
struct PrefetcherSpec {
  std::string Name;
  std::vector<std::pair<std::string, uint64_t>> Knobs;

  /// Parses \p Spec; on failure returns false and sets \p Error.
  static bool parse(const std::string &Spec, PrefetcherSpec &Out,
                    std::string *Error);

  /// Value of \p Knob when given, else \p Default.
  uint64_t knobOr(const std::string &Knob, uint64_t Default) const;

  /// Verifies every provided knob is one of \p Allowed (comma-separated);
  /// on failure returns false and sets \p Error.
  bool checkKnobs(std::initializer_list<const char *> Allowed,
                  std::string *Error) const;
};

class PrefetcherRegistry {
public:
  using Factory = std::function<std::unique_ptr<HwPrefetcher>(
      const PrefetcherSpec &, const PrefetcherEnv &, std::string *Error)>;

  struct Info {
    std::string Name;
    /// One-line description for --hwpf list.
    std::string Summary;
    /// Human-readable knob list, e.g. "entries, deltas, degree".
    std::string Knobs;
    /// Include in arsenal sweeps (fig9 matrix). Parameterized aliases of
    /// another entry opt out so the matrix has no duplicate rows.
    bool InArsenal = true;
    Factory Make;
  };

  /// The process-wide registry, with the built-in arsenal registered.
  static PrefetcherRegistry &instance();

  /// Registers an entry. Re-registering a name is a programming error
  /// (TRIDENT_CHECK): silent replacement would make spec resolution depend
  /// on registration order.
  void add(Info I);

  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// Names with InArsenal set, sorted — the fig9 sweep set.
  std::vector<std::string> arsenalNames() const;
  const Info *lookup(const std::string &Name) const;

  /// Resolves \p Spec to a unit. "none"/"" yields nullptr with no error;
  /// an unknown name or bad knob yields nullptr with \p Error set.
  std::unique_ptr<HwPrefetcher> create(const std::string &Spec,
                                       const PrefetcherEnv &Env,
                                       std::string *Error) const;

  /// True when \p Spec names the explicit no-prefetcher configuration.
  static bool isNone(const std::string &Spec) {
    return Spec.empty() || Spec == "none";
  }

private:
  PrefetcherRegistry();

  /// Ordered by name so names() and list output are deterministic.
  std::map<std::string, Info> Entries;
};

} // namespace trident

#endif // TRIDENT_HWPF_PREFETCHERREGISTRY_H
