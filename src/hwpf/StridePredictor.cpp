//===- StridePredictor.cpp ------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/StridePredictor.h"
#include "support/Check.h"


using namespace trident;

static bool isPowerOfTwo(uint64_t X) { return X && (X & (X - 1)) == 0; }

StridePredictor::StridePredictor(unsigned NumEntries) {
  TRIDENT_CHECK(isPowerOfTwo(NumEntries), "table size must be a power of two");
  Table.resize(NumEntries);
}

void StridePredictor::train(Addr PC, Addr ByteAddr) {
  Entry &E = Table[indexOf(PC)];
  if (!E.Valid || E.Tag != PC) {
    // Allocate / steal the entry.
    E.Valid = true;
    E.Tag = PC;
    E.LastAddr = ByteAddr;
    E.Stride = 0;
    E.Confidence.reset();
    return;
  }
  int64_t NewStride =
      static_cast<int64_t>(ByteAddr) - static_cast<int64_t>(E.LastAddr);
  if (NewStride == E.Stride) {
    E.Confidence.increment();
  } else {
    E.Confidence.decrement();
    if (E.Confidence.isZero())
      E.Stride = NewStride;
  }
  E.LastAddr = ByteAddr;
}

const StridePredictor::Entry *StridePredictor::find(Addr PC) const {
  const Entry &E = Table[indexOf(PC)];
  if (!E.Valid || E.Tag != PC)
    return nullptr;
  return &E;
}

std::optional<int64_t> StridePredictor::predict(Addr PC) const {
  const Entry *E = find(PC);
  if (!E || !E->Confidence.isSet() || E->Stride == 0)
    return std::nullopt;
  return E->Stride;
}

std::optional<Addr> StridePredictor::lastAddress(Addr PC) const {
  const Entry *E = find(PC);
  if (!E)
    return std::nullopt;
  return E->LastAddr;
}
