//===- Dcpt.h - Delta-correlating prediction table prefetcher --*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DCPT — Delta-Correlating Prediction Tables (Grannaes, Jahre & Natvig,
/// JILP 2011 / DPC-1). Each load PC owns a table entry holding a ring of
/// the most recent line-address deltas. On a miss the newest delta pair is
/// matched against the entry's earlier history; on a match the deltas that
/// followed the earlier occurrence are replayed from the current address
/// to predict the next lines, and up to Degree of them are prefetched.
/// Correlating on delta *pairs* lets one entry capture composite patterns
/// (e.g. +1,+1,+62 row walks) that defeat single-stride predictors.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_DCPT_H
#define TRIDENT_HWPF_DCPT_H

#include "hwpf/PrefetchBuffer.h"
#include "mem/MemorySystem.h"

#include <vector>

namespace trident {

struct DcptConfig {
  /// PC-indexed table entries (direct-mapped with tag).
  unsigned NumEntries = 128;
  /// Deltas of history per entry.
  unsigned NumDeltas = 8;
  /// Maximum lines prefetched per replayed match.
  unsigned Degree = 4;
  /// Prefetched-line buffer capacity.
  unsigned BufferCapacity = 32;

  static DcptConfig baseline() { return DcptConfig(); }
};

class DcptPrefetcher final : public HwPrefetcher {
public:
  explicit DcptPrefetcher(const DcptConfig &Config);

  // HwPrefetcher interface.
  void trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                   MemoryBackend &BE) override;
  std::optional<Cycle> probe(Addr LineAddr, Cycle Now,
                             MemoryBackend &BE) override;
  HwPfStats snapshotStats() const override;
  std::string name() const override;

  const DcptConfig &config() const { return Config; }

private:
  /// Per-PC delta history: a fixed ring of NumDeltas signed line deltas.
  struct Entry {
    bool Valid = false;
    Addr Tag = 0;          ///< full PC (tag for the direct-mapped slot)
    uint64_t LastBlock = 0;
    uint64_t LastPrefetchBlock = 0; ///< dedup: newest block already issued
    std::vector<int32_t> Deltas;    ///< ring, sized NumDeltas at reset
    unsigned Head = 0;              ///< slot the next delta goes into
    unsigned Count = 0;

    int32_t at(unsigned AgeFromOldest) const {
      return Deltas[(Head + Deltas.size() - Count + AgeFromOldest) %
                    Deltas.size()];
    }
    void push(int32_t D) {
      Deltas[Head] = D;
      Head = (Head + 1) % static_cast<unsigned>(Deltas.size());
      if (Count < Deltas.size())
        ++Count;
    }
  };

  void reset(Entry &E, Addr PC, uint64_t Block);

  DcptConfig Config;
  /// Fixed NumEntries slots, allocated at construction.
  std::vector<Entry> Table;
  PrefetchBuffer Buffer;

  uint64_t ProbeHits = 0;
  uint64_t ProbeMisses = 0;
  uint64_t LinesPrefetched = 0;
  uint64_t PatternMatches = 0;
};

} // namespace trident

#endif // TRIDENT_HWPF_DCPT_H
