//===- Tskid.h - Trigger/target timing-aware prefetcher --------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// T-SKID-style timing prefetcher (Sakamoto et al., DPC-3): the unit
/// learns, per *target* load PC, which earlier *trigger* PC's miss
/// reliably precedes it — and by how many cycles (the skid). On a later
/// trigger miss it predicts the target's line (trigger line + learned
/// delta) but does NOT issue immediately: the prefetch sits in a small
/// in-flight pending table until the learned skid has elapsed (minus a
/// lead time to cover the fetch latency), so the line arrives neither
/// early enough to be evicted nor late enough to expose latency. Pending
/// prefetches drain opportunistically on the next training or probe call
/// whose cycle passes their issue time — the event-driven analogue of the
/// original's per-cycle scan, and fully deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_TSKID_H
#define TRIDENT_HWPF_TSKID_H

#include "hwpf/PrefetchBuffer.h"
#include "mem/MemorySystem.h"

#include <vector>

namespace trident {

struct TskidConfig {
  /// Trigger-table entries (direct-mapped by trigger PC).
  unsigned NumEntries = 64;
  /// Ring of recent misses scanned for trigger candidates.
  unsigned RecentMissDepth = 8;
  /// Pending (timed, not yet issued) prefetches.
  unsigned PendingDepth = 16;
  /// Prefetched-line buffer capacity.
  unsigned BufferCapacity = 32;
  /// Cycles of fetch latency the issue time is moved up by.
  unsigned LeadCycles = 400;
  /// Skids shorter than this issue immediately (no timing value).
  unsigned MinSkidCycles = 64;

  static TskidConfig baseline() { return TskidConfig(); }
};

class TskidPrefetcher final : public HwPrefetcher {
public:
  explicit TskidPrefetcher(const TskidConfig &Config);

  // HwPrefetcher interface.
  void trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                   MemoryBackend &BE) override;
  std::optional<Cycle> probe(Addr LineAddr, Cycle Now,
                             MemoryBackend &BE) override;
  bool wantsFillTraining() const override { return true; }
  void trainOnFill(Addr LineAddr, Cycle Ready, AccessKind Kind) override;
  HwPfStats snapshotStats() const override;
  std::string name() const override;

  const TskidConfig &config() const { return Config; }
  /// Pending (scheduled, unissued) prefetches — for tests.
  unsigned numPending() const;

private:
  /// One learned trigger -> target association.
  struct TriggerEntry {
    bool Valid = false;
    Addr TriggerPC = 0;   ///< tag for the direct-mapped slot
    int64_t BlockDelta = 0; ///< target line - trigger line, in blocks
    Cycle Skid = 0;       ///< observed trigger-miss -> target-miss gap
  };

  /// Recent demand misses, scanned to discover trigger candidates.
  struct RecentMiss {
    bool Valid = false;
    Addr PC = 0;
    uint64_t Block = 0;
    Cycle At = 0;
  };

  /// A predicted prefetch waiting for its learned issue time.
  struct PendingPrefetch {
    bool Valid = false;
    Addr LineAddr = 0;
    Cycle IssueAt = 0;
  };

  void drainPending(Cycle Now, MemoryBackend &BE);
  void schedule(Addr LineAddr, Cycle IssueAt, Cycle Now, MemoryBackend &BE);

  TskidConfig Config;
  /// All three tables are fixed-size rings/arrays allocated at
  /// construction from the config bounds.
  std::vector<TriggerEntry> Triggers;
  std::vector<RecentMiss> Recent;
  std::vector<PendingPrefetch> Pending;
  unsigned RecentHand = 0;
  PrefetchBuffer Buffer;

  uint64_t ProbeHits = 0;
  uint64_t ProbeMisses = 0;
  uint64_t LinesPrefetched = 0;
  uint64_t TriggersLearned = 0;
  uint64_t DelayedIssues = 0;
  uint64_t FillsObserved = 0;
};

} // namespace trident

#endif // TRIDENT_HWPF_TSKID_H
