//===- StridePredictor.h - PC-indexed stride predictor ---------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-load-PC stride predictor in the style of Farkas et al. (ISCA'97),
/// used to guide stream-buffer allocation and prefetch address generation
/// (Sherwood et al.'s predictor-directed stream buffers, the paper's
/// baseline hardware prefetcher). The paper's Table 1 gives it a 1024-entry
/// history table.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_HWPF_STRIDEPREDICTOR_H
#define TRIDENT_HWPF_STRIDEPREDICTOR_H

#include "isa/Instruction.h"
#include "support/SaturatingCounter.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace trident {

class StridePredictor {
public:
  explicit StridePredictor(unsigned NumEntries = 1024);

  /// Records an observed access by the load at \p PC to \p ByteAddr.
  void train(Addr PC, Addr ByteAddr);

  /// Returns the predicted stride for \p PC when confident, nullopt
  /// otherwise. A zero stride never predicts (nothing to stream).
  std::optional<int64_t> predict(Addr PC) const;

  /// Last address observed for \p PC (for stream priming); nullopt when the
  /// entry has never been trained.
  std::optional<Addr> lastAddress(Addr PC) const;

  unsigned numEntries() const { return static_cast<unsigned>(Table.size()); }

private:
  struct Entry {
    bool Valid = false;
    uint64_t Tag = 0;
    Addr LastAddr = 0;
    int64_t Stride = 0;
    TwoBitCounter Confidence;
  };

  const Entry *find(Addr PC) const;
  size_t indexOf(Addr PC) const { return PC & (Table.size() - 1); }

  std::vector<Entry> Table;
};

} // namespace trident

#endif // TRIDENT_HWPF_STRIDEPREDICTOR_H
