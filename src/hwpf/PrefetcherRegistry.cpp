//===- PrefetcherRegistry.cpp ---------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/PrefetcherRegistry.h"

#include "hwpf/Dcpt.h"
#include "hwpf/EnhancedStream.h"
#include "hwpf/StreamBuffer.h"
#include "hwpf/Tskid.h"
#include "support/Check.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

using namespace trident;

bool PrefetcherSpec::parse(const std::string &Spec, PrefetcherSpec &Out,
                           std::string *Error) {
  Out.Name.clear();
  Out.Knobs.clear();
  size_t Colon = Spec.find(':');
  Out.Name = Spec.substr(0, Colon);
  if (Out.Name.empty()) {
    if (Error)
      *Error = "empty prefetcher name in spec '" + Spec + "'";
    return false;
  }
  if (Colon == std::string::npos)
    return true;
  std::string Rest = Spec.substr(Colon + 1);
  size_t Pos = 0;
  while (Pos < Rest.size()) {
    size_t Comma = Rest.find(',', Pos);
    std::string Pair = Rest.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Pair.size()) {
      if (Error)
        *Error = "malformed knob '" + Pair + "' in spec '" + Spec +
                 "' (want knob=value)";
      return false;
    }
    std::string Key = Pair.substr(0, Eq);
    std::string Val = Pair.substr(Eq + 1);
    // Signs are rejected up front: strtoull silently *accepts* "-1" and
    // wraps it to 2^64-1, which would then truncate to a huge unsigned in
    // every factory. Knobs are unsigned quantities; make that explicit.
    if (Val[0] == '-' || Val[0] == '+') {
      if (Error)
        *Error = "knob '" + Key + "' has signed value '" + Val +
                 "' in spec '" + Spec + "' (knobs are unsigned)";
      return false;
    }
    char *End = nullptr;
    errno = 0;
    unsigned long long V = std::strtoull(Val.c_str(), &End, 0);
    if (End == Val.c_str() || *End != '\0') {
      if (Error)
        *Error = "knob '" + Key + "' has non-integer value '" + Val +
                 "' in spec '" + Spec + "'";
      return false;
    }
    // Every consumer narrows knobs to unsigned (32-bit); values past that
    // would truncate silently, so the parser owns the range check.
    if (errno == ERANGE || V > std::numeric_limits<unsigned>::max()) {
      if (Error)
        *Error = "knob '" + Key + "' value '" + Val + "' in spec '" + Spec +
                 "' is out of range (max " +
                 std::to_string(std::numeric_limits<unsigned>::max()) + ")";
      return false;
    }
    // Duplicate knobs would alias two different-looking specs to one
    // config (knobOr is first-wins), corrupting campaign fingerprints.
    for (const auto &K : Out.Knobs) {
      if (K.first == Key) {
        if (Error)
          *Error = "duplicate knob '" + Key + "' in spec '" + Spec + "'";
        return false;
      }
    }
    Out.Knobs.emplace_back(Key, static_cast<uint64_t>(V));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

uint64_t PrefetcherSpec::knobOr(const std::string &Knob,
                                uint64_t Default) const {
  for (const auto &K : Knobs)
    if (K.first == Knob)
      return K.second;
  return Default;
}

bool PrefetcherSpec::checkKnobs(std::initializer_list<const char *> Allowed,
                                std::string *Error) const {
  for (const auto &K : Knobs) {
    bool Ok = false;
    for (const char *A : Allowed)
      Ok |= K.first == A;
    if (!Ok) {
      if (Error) {
        std::string List;
        for (const char *A : Allowed) {
          if (!List.empty())
            List += ", ";
          List += A;
        }
        *Error = "unknown knob '" + K.first + "' for prefetcher '" + Name +
                 "' (knobs: " + (List.empty() ? "none" : List) + ")";
      }
      return false;
    }
  }
  return true;
}

namespace {

/// Shared factory body for the stream-buffer entries; \p Buffers/\p Depth
/// are the entry's defaults, overridable via knobs.
std::unique_ptr<HwPrefetcher>
makeStreamBuffers(const PrefetcherSpec &Spec, const PrefetcherEnv &Env,
                  unsigned Buffers, unsigned Depth, std::string *Error) {
  if (!Spec.checkKnobs({"buffers", "depth", "history"}, Error))
    return nullptr;
  StreamBufferConfig Cfg;
  Cfg.NumBuffers = static_cast<unsigned>(Spec.knobOr("buffers", Buffers));
  Cfg.Depth = static_cast<unsigned>(Spec.knobOr("depth", Depth));
  Cfg.HistoryEntries =
      static_cast<unsigned>(Spec.knobOr("history", Cfg.HistoryEntries));
  if (Env.PageBounded) {
    Cfg.StopAtPageBoundary = true;
    Cfg.PageBits = Env.PageBits;
  }
  return std::make_unique<StreamBufferUnit>(Cfg);
}

} // namespace

PrefetcherRegistry::PrefetcherRegistry() {
  add({"sb4x4", "predictor-directed stream buffers, 4 buffers x 4 deep",
       "buffers, depth, history", true,
       [](const PrefetcherSpec &S, const PrefetcherEnv &E, std::string *Err) {
         return makeStreamBuffers(S, E, 4, 4, Err);
       }});
  add({"sb8x8",
       "predictor-directed stream buffers, 8 buffers x 8 deep (the paper's "
       "baseline)",
       "buffers, depth, history", true,
       [](const PrefetcherSpec &S, const PrefetcherEnv &E, std::string *Err) {
         return makeStreamBuffers(S, E, 8, 8, Err);
       }});
  add({"stream",
       "parameterized stream buffers (alias of sb8x8 defaults; set "
       "buffers/depth)",
       "buffers, depth, history", /*InArsenal=*/false,
       [](const PrefetcherSpec &S, const PrefetcherEnv &E, std::string *Err) {
         return makeStreamBuffers(S, E, 8, 8, Err);
       }});
  add({"enhanced-stream",
       "region-based streams with noise-tolerant training and dead-stream "
       "removal (Liu et al., JILP 2011)",
       "trainers, streams, degree, depth, region, confirm", true,
       [](const PrefetcherSpec &S, const PrefetcherEnv &,
          std::string *Err) -> std::unique_ptr<HwPrefetcher> {
         if (!S.checkKnobs(
                 {"trainers", "streams", "degree", "depth", "region",
                  "confirm"},
                 Err))
           return nullptr;
         EnhancedStreamConfig Cfg = EnhancedStreamConfig::baseline();
         Cfg.NumTrainingEntries =
             static_cast<unsigned>(S.knobOr("trainers", Cfg.NumTrainingEntries));
         Cfg.NumStreams =
             static_cast<unsigned>(S.knobOr("streams", Cfg.NumStreams));
         Cfg.Degree = static_cast<unsigned>(S.knobOr("degree", Cfg.Degree));
         Cfg.Depth = static_cast<unsigned>(S.knobOr("depth", Cfg.Depth));
         Cfg.RegionLines =
             static_cast<unsigned>(S.knobOr("region", Cfg.RegionLines));
         Cfg.ConfirmMisses =
             static_cast<unsigned>(S.knobOr("confirm", Cfg.ConfirmMisses));
         return std::make_unique<EnhancedStreamPrefetcher>(Cfg);
       }});
  add({"dcpt",
       "delta-correlating prediction tables (Grannaes et al., DPC-1)",
       "entries, deltas, degree, buffer", true,
       [](const PrefetcherSpec &S, const PrefetcherEnv &,
          std::string *Err) -> std::unique_ptr<HwPrefetcher> {
         if (!S.checkKnobs({"entries", "deltas", "degree", "buffer"}, Err))
           return nullptr;
         DcptConfig Cfg = DcptConfig::baseline();
         Cfg.NumEntries =
             static_cast<unsigned>(S.knobOr("entries", Cfg.NumEntries));
         Cfg.NumDeltas =
             static_cast<unsigned>(S.knobOr("deltas", Cfg.NumDeltas));
         Cfg.Degree = static_cast<unsigned>(S.knobOr("degree", Cfg.Degree));
         Cfg.BufferCapacity =
             static_cast<unsigned>(S.knobOr("buffer", Cfg.BufferCapacity));
         return std::make_unique<DcptPrefetcher>(Cfg);
       }});
  add({"tskid",
       "trigger/target timing prefetcher with learned issue skid "
       "(T-SKID, DPC-3)",
       "entries, recent, pending, buffer, lead, minskid", true,
       [](const PrefetcherSpec &S, const PrefetcherEnv &,
          std::string *Err) -> std::unique_ptr<HwPrefetcher> {
         if (!S.checkKnobs(
                 {"entries", "recent", "pending", "buffer", "lead",
                  "minskid"},
                 Err))
           return nullptr;
         TskidConfig Cfg = TskidConfig::baseline();
         Cfg.NumEntries =
             static_cast<unsigned>(S.knobOr("entries", Cfg.NumEntries));
         Cfg.RecentMissDepth =
             static_cast<unsigned>(S.knobOr("recent", Cfg.RecentMissDepth));
         Cfg.PendingDepth =
             static_cast<unsigned>(S.knobOr("pending", Cfg.PendingDepth));
         Cfg.BufferCapacity =
             static_cast<unsigned>(S.knobOr("buffer", Cfg.BufferCapacity));
         Cfg.LeadCycles =
             static_cast<unsigned>(S.knobOr("lead", Cfg.LeadCycles));
         Cfg.MinSkidCycles =
             static_cast<unsigned>(S.knobOr("minskid", Cfg.MinSkidCycles));
         return std::make_unique<TskidPrefetcher>(Cfg);
       }});
}

PrefetcherRegistry &PrefetcherRegistry::instance() {
  // Function-local static: built (with the full arsenal) on first use, so
  // there is no cross-TU static-init ordering hazard.
  static PrefetcherRegistry R;
  return R;
}

void PrefetcherRegistry::add(Info I) {
  // Re-registration is a programming error: a silent overwrite would let
  // one translation unit quietly shadow another's factory, and every spec
  // naming the entry would resolve to a different unit depending on
  // registration order.
  auto [It, Inserted] = Entries.emplace(I.Name, Info{});
  TRIDENT_CHECK(Inserted, "duplicate prefetcher registration '%s'",
                I.Name.c_str());
  It->second = std::move(I);
}

std::vector<std::string> PrefetcherRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const auto &E : Entries)
    Out.push_back(E.first);
  return Out; // std::map iterates sorted
}

std::vector<std::string> PrefetcherRegistry::arsenalNames() const {
  std::vector<std::string> Out;
  for (const auto &E : Entries)
    if (E.second.InArsenal)
      Out.push_back(E.first);
  return Out;
}

const PrefetcherRegistry::Info *
PrefetcherRegistry::lookup(const std::string &Name) const {
  auto It = Entries.find(Name);
  return It == Entries.end() ? nullptr : &It->second;
}

std::unique_ptr<HwPrefetcher>
PrefetcherRegistry::create(const std::string &Spec, const PrefetcherEnv &Env,
                           std::string *Error) const {
  if (isNone(Spec))
    return nullptr;
  PrefetcherSpec S;
  if (!PrefetcherSpec::parse(Spec, S, Error))
    return nullptr;
  const Info *I = lookup(S.Name);
  if (!I) {
    if (Error) {
      *Error = "unknown prefetcher '" + S.Name + "' (registered:";
      for (const auto &E : Entries)
        *Error += " " + E.first;
      *Error += ", none)";
    }
    return nullptr;
  }
  return I->Make(S, Env, Error);
}
