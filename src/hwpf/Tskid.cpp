//===- Tskid.cpp ----------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/Tskid.h"
#include "support/Check.h"

using namespace trident;

TskidPrefetcher::TskidPrefetcher(const TskidConfig &Cfg)
    : Config(Cfg), Buffer(Cfg.BufferCapacity) {
  TRIDENT_CHECK(Config.NumEntries > 0 && Config.RecentMissDepth > 0 &&
                    Config.PendingDepth > 0,
                "tskid config must be nonzero");
  Triggers.resize(Config.NumEntries);
  Recent.resize(Config.RecentMissDepth);
  Pending.resize(Config.PendingDepth);
}

std::string TskidPrefetcher::name() const { return "tskid"; }

unsigned TskidPrefetcher::numPending() const {
  unsigned N = 0;
  for (const PendingPrefetch &P : Pending)
    N += P.Valid;
  return N;
}

HwPfStats TskidPrefetcher::snapshotStats() const {
  HwPfStats S;
  S.Prefetcher = name();
  S.Counters = {{"probe_hits", ProbeHits},
                {"probe_misses", ProbeMisses},
                {"lines_prefetched", LinesPrefetched},
                {"triggers_learned", TriggersLearned},
                {"delayed_issues", DelayedIssues},
                {"fills_observed", FillsObserved}};
  return S;
}

void TskidPrefetcher::drainPending(Cycle Now, MemoryBackend &BE) {
  for (PendingPrefetch &P : Pending) {
    if (!P.Valid || P.IssueAt > Now)
      continue;
    P.Valid = false;
    if (Buffer.contains(P.LineAddr))
      continue;
    Cycle Ready =
        BE.fetchBeyondL1(P.LineAddr, Now, AccessKind::HardwarePrefetch);
    Buffer.insert(P.LineAddr, Ready);
    ++LinesPrefetched;
  }
}

void TskidPrefetcher::schedule(Addr LineAddr, Cycle IssueAt, Cycle Now,
                               MemoryBackend &BE) {
  if (IssueAt <= Now) {
    // Due immediately (short skid): no timing value in queueing.
    if (!Buffer.contains(LineAddr)) {
      Cycle Ready =
          BE.fetchBeyondL1(LineAddr, Now, AccessKind::HardwarePrefetch);
      Buffer.insert(LineAddr, Ready);
      ++LinesPrefetched;
    }
    return;
  }
  ++DelayedIssues;
  // Reuse a free slot; otherwise displace the entry due furthest in the
  // future (the least timely prediction).
  PendingPrefetch *Victim = &Pending[0];
  for (PendingPrefetch &P : Pending) {
    if (!P.Valid) {
      Victim = &P;
      break;
    }
    if (P.IssueAt > Victim->IssueAt)
      Victim = &P;
  }
  Victim->Valid = true;
  Victim->LineAddr = LineAddr;
  Victim->IssueAt = IssueAt;
}

void TskidPrefetcher::trainOnFill(Addr /*LineAddr*/, Cycle /*Ready*/,
                                  AccessKind /*Kind*/) {
  // Fill observations only feed the stats channel today; the learned skid
  // already encodes arrival timing. Kept as the cache-fill hook user so
  // the contract is exercised end-to-end.
  ++FillsObserved;
}

void TskidPrefetcher::trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                                  MemoryBackend &BE) {
  drainPending(Now, BE);
  const uint64_t Block = ByteAddr / BE.lineSize();

  // Learn: associate this (target) miss with the oldest recent miss from
  // a different PC — the candidate trigger — recording line delta and the
  // observed skid between the two misses.
  const RecentMiss *Trigger = nullptr;
  for (const RecentMiss &M : Recent) {
    if (!M.Valid || M.PC == PC)
      continue;
    if (!Trigger || M.At < Trigger->At)
      Trigger = &M;
  }
  if (Trigger && Now > Trigger->At) {
    TriggerEntry &T = Triggers[Trigger->PC % Config.NumEntries];
    if (!T.Valid || T.TriggerPC != Trigger->PC)
      ++TriggersLearned;
    T.Valid = true;
    T.TriggerPC = Trigger->PC;
    T.BlockDelta =
        static_cast<int64_t>(Block) - static_cast<int64_t>(Trigger->Block);
    T.Skid = Now - Trigger->At;
  }

  // Predict: if this PC is a known trigger, schedule the target's line
  // for the learned time instead of firing immediately.
  const TriggerEntry &T = Triggers[PC % Config.NumEntries];
  if (T.Valid && T.TriggerPC == PC && T.BlockDelta != 0) {
    int64_t Target = static_cast<int64_t>(Block) + T.BlockDelta;
    if (Target > 0) {
      Addr LineAddr = static_cast<uint64_t>(Target) * BE.lineSize();
      Cycle Due = T.Skid > Config.MinSkidCycles ? Now + T.Skid : Now;
      Cycle IssueAt = Due > Config.LeadCycles ? Due - Config.LeadCycles : Now;
      schedule(LineAddr, IssueAt, Now, BE);
    }
  }

  // Record this miss in the recent ring (the trigger candidate pool).
  Recent[RecentHand] = {true, PC, Block, Now};
  RecentHand = (RecentHand + 1) % Config.RecentMissDepth;
}

std::optional<Cycle> TskidPrefetcher::probe(Addr LineAddr, Cycle Now,
                                            MemoryBackend &BE) {
  drainPending(Now, BE);
  std::optional<Cycle> Ready = Buffer.take(LineAddr);
  if (Ready)
    ++ProbeHits;
  else
    ++ProbeMisses;
  return Ready;
}
