//===- StreamBuffer.cpp ---------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/StreamBuffer.h"
#include "support/StatRegistry.h"

#include <cstdio>
#include <cstdlib>

using namespace trident;

void StreamBufferStats::registerInto(StatRegistry &R,
                                     const std::string &Prefix) const {
  R.setCounter(Prefix + "allocations", Allocations);
  R.setCounter(Prefix + "probe_hits", ProbeHits);
  R.setCounter(Prefix + "probe_misses", ProbeMisses);
  R.setCounter(Prefix + "lines_prefetched", LinesPrefetched);
}

StreamBufferUnit::StreamBufferUnit(const StreamBufferConfig &Cfg)
    : Config(Cfg), Predictor(Config.HistoryEntries) {
  Buffers.resize(Config.NumBuffers);
  for (Buffer &B : Buffers)
    B.Ring.resize(Config.Depth);
}

std::string StreamBufferUnit::name() const {
  return "stream-buffers-" + std::to_string(Config.NumBuffers) + "x" +
         std::to_string(Config.Depth);
}

HwPfStats StreamBufferUnit::snapshotStats() const {
  HwPfStats S;
  S.Prefetcher = name();
  S.Counters = {{"allocations", Stats.Allocations},
                {"probe_hits", Stats.ProbeHits},
                {"probe_misses", Stats.ProbeMisses},
                {"lines_prefetched", Stats.LinesPrefetched}};
  return S;
}

unsigned StreamBufferUnit::numActiveBuffers() const {
  unsigned N = 0;
  for (const Buffer &B : Buffers)
    N += B.Valid;
  return N;
}

bool StreamBufferUnit::coveredByExistingStream(Addr LineAddr) const {
  for (const Buffer &B : Buffers) {
    if (!B.Valid || !B.mayContain(LineAddr))
      continue;
    for (uint32_t I = 0; I < B.Count; ++I)
      if (B.at(I).LineAddr == LineAddr)
        return true;
  }
  return false;
}

void StreamBufferUnit::refill(Buffer &B, Cycle Now, MemoryBackend &BE) {
  const unsigned LineSize = BE.lineSize();
  unsigned Guard = 0;
  // A buffer keeps only a couple of fills in flight at a time (it ramps to
  // its full depth over successive hits rather than bursting 8 fetches the
  // moment it is allocated) — so losing a buffer to LRU stealing costs the
  // ramp again, which is what makes >8 concurrent streams expensive.
  unsigned NewFetches = 0;
  while (B.Count < Config.Depth && NewFetches < MaxFetchesPerRefill &&
         Guard++ < 4 * Config.Depth) {
    Addr Line = B.NextAddr & ~static_cast<Addr>(LineSize - 1);
    if (Config.StopAtPageBoundary &&
        (Line >> Config.PageBits) != B.PrimeVpn)
      break; // streams do not run past their page
    B.NextAddr = static_cast<Addr>(static_cast<int64_t>(B.NextAddr) + B.Stride);
    // Sub-line strides revisit the same line; only fetch new lines.
    if (B.Count != 0 && B.backEntry().LineAddr == Line)
      continue;
    Cycle Ready = BE.fetchBeyondL1(Line, Now, AccessKind::HardwarePrefetch);
    B.push({Line, Ready});
    ++Stats.LinesPrefetched;
    ++NewFetches;
  }
}

void StreamBufferUnit::trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                                   MemoryBackend &BE) {
  Predictor.train(PC, ByteAddr);

  std::optional<int64_t> Stride = Predictor.predict(PC);
  if (Config.RequireConfidence && !Stride)
    return;
  if (!Stride)
    Stride = static_cast<int64_t>(BE.lineSize());

  const unsigned LineSize = BE.lineSize();
  Addr MissLine = ByteAddr & ~static_cast<Addr>(LineSize - 1);
  // Avoid allocating a second buffer for a stream that is already covered.
  Addr NextLine = static_cast<Addr>(static_cast<int64_t>(ByteAddr) + *Stride) &
                  ~static_cast<Addr>(LineSize - 1);
  if (coveredByExistingStream(NextLine) || coveredByExistingStream(MissLine))
    return;
  // If a buffer allocated by this PC is already tracking this stream,
  // leave it alone (re-allocating on every in-flight miss would reset its
  // ramp); re-prime it only when the stream genuinely jumped. "Tracking"
  // means the buffer's next-fetch address is at most one stride behind the
  // miss and not absurdly far ahead (software prefetches legitimately
  // consume entries several iterations before the demand arrives).
  Buffer *Victim = nullptr;
  for (Buffer &B : Buffers) {
    if (!B.Valid || B.AllocPC != PC)
      continue;
    if (B.Stride == *Stride) {
      int64_t Steps = (static_cast<int64_t>(ByteAddr) -
                       static_cast<int64_t>(B.NextAddr)) /
                      *Stride;
      if (Steps <= 1 && Steps >= -8 * static_cast<int64_t>(Config.Depth))
        return; // still tracking this stream
    }
    Victim = &B; // stream jumped: re-prime
    break;
  }
  // Else allocate a free buffer, or steal the LRU one (when more streams
  // are live than buffers exist, they thrash — the behaviour that
  // motivates per-load software prefetching in the paper).
  if (!Victim)
    for (Buffer &B : Buffers)
      if (!B.Valid) {
        Victim = &B;
        break;
      }
  if (!Victim) {
    Victim = &Buffers[0];
    for (Buffer &B : Buffers)
      if (B.LastUse < Victim->LastUse)
        Victim = &B;
  }

  static const bool DebugSb = [] {
    const char *V = std::getenv("TRIDENT_DEBUG_SB");
    return V && *V && *V != '0';
  }();
  if (DebugSb)
    std::fprintf(stderr,
                 "[sb] alloc pc=0x%llx addr=0x%llx stride=%lld victimPC=0x%llx"
                 " victimNext=0x%llx victimStride=%lld valid=%d\n",
                 (unsigned long long)PC, (unsigned long long)ByteAddr,
                 (long long)*Stride, (unsigned long long)Victim->AllocPC,
                 (unsigned long long)Victim->NextAddr,
                 (long long)Victim->Stride, Victim->Valid);

  Victim->Valid = true;
  Victim->Stride = *Stride;
  Victim->AllocPC = PC;
  Victim->PrimeVpn = ByteAddr >> Config.PageBits;
  Victim->NextAddr =
      static_cast<Addr>(static_cast<int64_t>(ByteAddr) + *Stride);
  Victim->LastUse = ++UseClock;
  Victim->clearEntries();
  ++Stats.Allocations;
  refill(*Victim, Now, BE);
}

std::optional<Cycle> StreamBufferUnit::probe(Addr LineAddr, Cycle Now,
                                             MemoryBackend &BE) {
  for (Buffer &B : Buffers) {
    if (!B.Valid || !B.mayContain(LineAddr))
      continue;
    for (uint32_t I = 0; I < B.Count; ++I) {
      if (B.at(I).LineAddr != LineAddr)
        continue;
      Cycle Ready = B.at(I).Ready;
      // Consume up to and including the hit entry, then run ahead.
      B.popFront(I + 1);
      B.LastUse = ++UseClock;
      refill(B, Now, BE);
      ++Stats.ProbeHits;
      return Ready;
    }
  }
  ++Stats.ProbeMisses;
  return std::nullopt;
}
