//===- Dcpt.cpp -----------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/Dcpt.h"
#include "support/Check.h"

using namespace trident;

DcptPrefetcher::DcptPrefetcher(const DcptConfig &Cfg)
    : Config(Cfg), Buffer(Cfg.BufferCapacity) {
  TRIDENT_CHECK(Config.NumEntries > 0 && Config.NumDeltas >= 2 &&
                    Config.Degree > 0,
                "dcpt config must be nonzero (and hold at least two deltas)");
  Table.resize(Config.NumEntries);
  for (Entry &E : Table)
    E.Deltas.resize(Config.NumDeltas);
}

std::string DcptPrefetcher::name() const { return "dcpt"; }

HwPfStats DcptPrefetcher::snapshotStats() const {
  HwPfStats S;
  S.Prefetcher = name();
  S.Counters = {{"probe_hits", ProbeHits},
                {"probe_misses", ProbeMisses},
                {"lines_prefetched", LinesPrefetched},
                {"pattern_matches", PatternMatches}};
  return S;
}

void DcptPrefetcher::reset(Entry &E, Addr PC, uint64_t Block) {
  E.Valid = true;
  E.Tag = PC;
  E.LastBlock = Block;
  E.LastPrefetchBlock = 0;
  E.Head = 0;
  E.Count = 0;
}

void DcptPrefetcher::trainOnMiss(Addr PC, Addr ByteAddr, Cycle Now,
                                 MemoryBackend &BE) {
  const uint64_t LS = BE.lineSize();
  const uint64_t Block = ByteAddr / LS;
  Entry &E = Table[PC % Config.NumEntries];
  if (!E.Valid || E.Tag != PC) {
    reset(E, PC, Block);
    return;
  }
  int64_t Delta64 =
      static_cast<int64_t>(Block) - static_cast<int64_t>(E.LastBlock);
  if (Delta64 == 0)
    return;
  // Deltas are stored narrow (the hardware budget the DPC entry argues
  // for); an out-of-range jump restarts the history.
  if (Delta64 > INT32_MAX || Delta64 < INT32_MIN) {
    reset(E, PC, Block);
    return;
  }
  E.push(static_cast<int32_t>(Delta64));
  E.LastBlock = Block;
  if (E.Count < 2)
    return;

  // Correlate: find the most recent earlier occurrence of the newest
  // delta pair (d[n-1], d[n]) in the history.
  const int32_t DPrev = E.at(E.Count - 2);
  const int32_t DLast = E.at(E.Count - 1);
  int MatchEnd = -1; // index (from oldest) of the pair's second element
  for (int I = static_cast<int>(E.Count) - 3; I >= 1; --I) {
    if (E.at(I - 1) == DPrev && E.at(I) == DLast) {
      MatchEnd = I;
      break;
    }
  }
  if (MatchEnd < 0)
    return;
  ++PatternMatches;

  // Replay the deltas that followed the match from the current block.
  uint64_t Predicted = Block;
  unsigned Issued = 0;
  for (unsigned I = MatchEnd + 1;
       I < E.Count && Issued < Config.Degree; ++I) {
    int64_t D = E.at(I);
    if (D < 0 && Predicted < static_cast<uint64_t>(-D))
      break; // replay ran off the bottom of memory
    Predicted = static_cast<uint64_t>(static_cast<int64_t>(Predicted) + D);
    // Skip blocks already covered by the previous replay of this entry
    // (DCPT's in-flight dedup) or still sitting in the buffer.
    if (Predicted == E.LastPrefetchBlock)
      continue;
    Addr LineAddr = Predicted * LS;
    if (Buffer.contains(LineAddr))
      continue;
    Cycle Ready = BE.fetchBeyondL1(LineAddr, Now, AccessKind::HardwarePrefetch);
    Buffer.insert(LineAddr, Ready);
    E.LastPrefetchBlock = Predicted;
    ++LinesPrefetched;
    ++Issued;
  }
}

std::optional<Cycle> DcptPrefetcher::probe(Addr LineAddr, Cycle /*Now*/,
                                           MemoryBackend & /*BE*/) {
  std::optional<Cycle> Ready = Buffer.take(LineAddr);
  if (Ready)
    ++ProbeHits;
  else
    ++ProbeMisses;
  return Ready;
}
