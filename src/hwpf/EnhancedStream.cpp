//===- EnhancedStream.cpp -------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "hwpf/EnhancedStream.h"
#include "support/Check.h"

using namespace trident;

EnhancedStreamPrefetcher::EnhancedStreamPrefetcher(
    const EnhancedStreamConfig &Cfg)
    : Config(Cfg), Buffer(Cfg.NumStreams * Cfg.Depth) {
  TRIDENT_CHECK(Config.NumTrainingEntries > 0 && Config.NumStreams > 0 &&
                    Config.Degree > 0 && Config.RegionLines > 0,
                "enhanced-stream config must be nonzero");
  Trainers.resize(Config.NumTrainingEntries);
  Streams.resize(Config.NumStreams);
}

std::string EnhancedStreamPrefetcher::name() const {
  return "enhanced-stream";
}

unsigned EnhancedStreamPrefetcher::numActiveStreams() const {
  unsigned N = 0;
  for (const StreamEntry &S : Streams)
    N += S.Valid;
  return N;
}

HwPfStats EnhancedStreamPrefetcher::snapshotStats() const {
  HwPfStats S;
  S.Prefetcher = name();
  S.Counters = {{"allocations", Allocations},
                {"probe_hits", ProbeHits},
                {"probe_misses", ProbeMisses},
                {"lines_prefetched", LinesPrefetched},
                {"noise_rejected", NoiseRejected},
                {"dead_streams_removed", DeadStreamsRemoved}};
  return S;
}

void EnhancedStreamPrefetcher::advance(StreamEntry &S, unsigned Lines,
                                       Cycle Now, MemoryBackend &BE) {
  const uint64_t LS = BE.lineSize();
  for (unsigned I = 0; I < Lines; ++I) {
    // A negative-stride stream that would step below address zero has run
    // off the bottom of memory: retire it.
    if (S.Stride < 0 &&
        S.NextBlock < static_cast<uint64_t>(-S.Stride)) {
      S.Valid = false;
      return;
    }
    Addr LineAddr = S.NextBlock * LS;
    Cycle Ready = BE.fetchBeyondL1(LineAddr, Now, AccessKind::HardwarePrefetch);
    Buffer.insert(LineAddr, Ready);
    S.NextBlock = static_cast<uint64_t>(
        static_cast<int64_t>(S.NextBlock) + S.Stride);
    ++S.Length;
    ++LinesPrefetched;
  }
  S.LastUse = TrainClock;
}

EnhancedStreamPrefetcher::StreamEntry *EnhancedStreamPrefetcher::streamVictim() {
  // Free slot first; then a dead stream (short and idle — the table-
  // pollution case the enhancement targets); finally plain LRU.
  StreamEntry *Lru = &Streams[0];
  for (StreamEntry &S : Streams) {
    if (!S.Valid)
      return &S;
    if (S.LastUse < Lru->LastUse)
      Lru = &S;
  }
  for (StreamEntry &S : Streams) {
    if (S.Length < Config.DeadMinLength &&
        TrainClock - S.LastUse > Config.DeadIdleEvents) {
      ++DeadStreamsRemoved;
      return &S;
    }
  }
  return Lru;
}

void EnhancedStreamPrefetcher::confirmStream(const TrainingEntry &T, Cycle Now,
                                             MemoryBackend &BE) {
  StreamEntry *S = streamVictim();
  S->Valid = true;
  S->Stride = T.Direction > 0 ? T.Stride : -T.Stride;
  S->NextBlock = static_cast<uint64_t>(
      static_cast<int64_t>(T.LastBlock) + S->Stride);
  S->Length = 0;
  S->LastUse = TrainClock;
  ++Allocations;
  advance(*S, Config.Degree, Now, BE);
}

void EnhancedStreamPrefetcher::trainRegion(uint64_t Block, Cycle Now,
                                           MemoryBackend &BE) {
  const uint64_t RegionBase = Block - Block % Config.RegionLines;
  TrainingEntry *T = nullptr;
  TrainingEntry *Victim = &Trainers[0];
  for (TrainingEntry &E : Trainers) {
    if (E.Valid && E.RegionBase == RegionBase) {
      T = &E;
      break;
    }
    // Victim preference: any free slot, else the LRU trainer.
    if (Victim->Valid && (!E.Valid || E.LastUse < Victim->LastUse))
      Victim = &E;
  }
  if (!T) {
    // New region under training.
    T = Victim;
    T->Valid = true;
    T->RegionBase = RegionBase;
    T->LastBlock = Block;
    T->MissCount = 1;
    T->Direction = 0;
    T->Stride = 0;
    T->LastUse = TrainClock;
    return;
  }
  T->LastUse = TrainClock;
  int64_t Delta =
      static_cast<int64_t>(Block) - static_cast<int64_t>(T->LastBlock);
  if (Delta == 0)
    return;
  if (T->Direction == 0) {
    // Second consistent miss fixes the direction and block stride.
    T->Direction = Delta > 0 ? 1 : -1;
    T->Stride = Delta > 0 ? Delta : -Delta;
    T->LastBlock = Block;
    T->MissCount = 2;
  } else if (Delta == (T->Direction > 0 ? T->Stride : -T->Stride)) {
    T->LastBlock = Block;
    ++T->MissCount;
  } else {
    // Noise-tolerant training: a miss that breaks the observed direction
    // or stride is dropped without resetting the trainer, so one stray
    // access cannot kill a forming stream.
    ++NoiseRejected;
    return;
  }
  if (T->MissCount >= Config.ConfirmMisses) {
    confirmStream(*T, Now, BE);
    T->Valid = false;
  }
}

void EnhancedStreamPrefetcher::trainOnMiss(Addr /*PC*/, Addr ByteAddr,
                                           Cycle Now, MemoryBackend &BE) {
  ++TrainClock; // monotonic timestamp: training events, not cycles
  const uint64_t Block = ByteAddr / BE.lineSize();
  // A miss at (or one stride past) a confirmed stream's head means the
  // stream is running behind the demand: advance it instead of retraining
  // the region.
  for (StreamEntry &S : Streams) {
    if (!S.Valid || S.Stride == 0)
      continue;
    uint64_t Ahead = static_cast<uint64_t>(
        static_cast<int64_t>(S.NextBlock) + S.Stride);
    if (Block == S.NextBlock || Block == Ahead) {
      S.NextBlock = static_cast<uint64_t>(
          static_cast<int64_t>(Block) + S.Stride);
      advance(S, Config.Degree, Now, BE);
      return;
    }
  }
  trainRegion(Block, Now, BE);
}

std::optional<Cycle> EnhancedStreamPrefetcher::probe(Addr LineAddr, Cycle Now,
                                                     MemoryBackend &BE) {
  std::optional<Cycle> Ready = Buffer.take(LineAddr);
  if (!Ready) {
    ++ProbeMisses;
    return std::nullopt;
  }
  ++ProbeHits;
  // Top up the stream this line belongs to: the consumed block sits
  // within Depth strides behind the stream head.
  const uint64_t Block = LineAddr / BE.lineSize();
  for (StreamEntry &S : Streams) {
    if (!S.Valid || S.Stride == 0)
      continue;
    int64_t Behind =
        static_cast<int64_t>(S.NextBlock) - static_cast<int64_t>(Block);
    int64_t K = Behind / S.Stride;
    if (Behind % S.Stride == 0 && K >= 1 &&
        K <= static_cast<int64_t>(Config.Depth)) {
      advance(S, 1, Now, BE);
      break;
    }
  }
  return Ready;
}
