//===- ProgramBuilder.h - Label-resolving assembler ------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent assembler for building simulated programs: emit instructions,
/// define labels, branch to labels (forward references are fixed up at
/// finish()). Used by the workload generators, the examples, and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_ISA_PROGRAMBUILDER_H
#define TRIDENT_ISA_PROGRAMBUILDER_H

#include "isa/Program.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace trident {

class ProgramBuilder {
public:
  explicit ProgramBuilder(Addr Base = 0x1000) : BasePC(Base) {}

  /// Defines \p Name at the current emission point. A label may be defined
  /// once and referenced any number of times, before or after definition.
  ProgramBuilder &label(const std::string &Name);

  /// Address the next emitted instruction will get.
  Addr here() const { return BasePC + Code.size(); }

  /// Emits an arbitrary pre-built instruction.
  ProgramBuilder &emit(Instruction I);

  // Convenience emitters (thin wrappers over the isa factory helpers).
  ProgramBuilder &nop() { return emit(makeNop()); }
  ProgramBuilder &halt() { return emit(makeHalt()); }
  ProgramBuilder &alu(Opcode Op, unsigned Rd, unsigned Rs1, unsigned Rs2) {
    return emit(makeAlu(Op, Rd, Rs1, Rs2));
  }
  ProgramBuilder &aluImm(Opcode Op, unsigned Rd, unsigned Rs1, int64_t Imm) {
    return emit(makeAluImm(Op, Rd, Rs1, Imm));
  }
  ProgramBuilder &addi(unsigned Rd, unsigned Rs1, int64_t Imm) {
    return aluImm(Opcode::AddI, Rd, Rs1, Imm);
  }
  ProgramBuilder &loadImm(unsigned Rd, int64_t Imm) {
    return emit(makeLoadImm(Rd, Imm));
  }
  ProgramBuilder &move(unsigned Rd, unsigned Rs1) {
    return emit(makeMove(Rd, Rs1));
  }
  ProgramBuilder &load(unsigned Rd, unsigned Base, int64_t Off) {
    return emit(makeLoad(Rd, Base, Off));
  }
  ProgramBuilder &store(unsigned Base, int64_t Off, unsigned ValueReg) {
    return emit(makeStore(Base, Off, ValueReg));
  }
  ProgramBuilder &prefetch(unsigned Base, int64_t Off) {
    return emit(makePrefetch(Base, Off));
  }
  ProgramBuilder &fadd(unsigned Rd, unsigned Rs1, unsigned Rs2) {
    return alu(Opcode::FAdd, Rd, Rs1, Rs2);
  }
  ProgramBuilder &fmul(unsigned Rd, unsigned Rs1, unsigned Rs2) {
    return alu(Opcode::FMul, Rd, Rs1, Rs2);
  }

  /// Emits a conditional branch to \p Label (resolved at finish()).
  ProgramBuilder &branch(Opcode Op, unsigned Rs1, unsigned Rs2,
                         const std::string &Label);
  ProgramBuilder &beq(unsigned Rs1, unsigned Rs2, const std::string &L) {
    return branch(Opcode::Beq, Rs1, Rs2, L);
  }
  ProgramBuilder &bne(unsigned Rs1, unsigned Rs2, const std::string &L) {
    return branch(Opcode::Bne, Rs1, Rs2, L);
  }
  ProgramBuilder &blt(unsigned Rs1, unsigned Rs2, const std::string &L) {
    return branch(Opcode::Blt, Rs1, Rs2, L);
  }
  ProgramBuilder &bge(unsigned Rs1, unsigned Rs2, const std::string &L) {
    return branch(Opcode::Bge, Rs1, Rs2, L);
  }

  /// Emits an unconditional jump to \p Label.
  ProgramBuilder &jump(const std::string &Label);

  /// Marks the entry point at the current emission point (defaults to the
  /// base address when never called).
  ProgramBuilder &entryHere();

  /// Resolves all label references and returns the finished program.
  /// Asserts on undefined labels. The builder is left empty.
  Program finish();

private:
  Addr BasePC;
  Addr EntryPC = 0;
  bool EntrySet = false;
  std::vector<Instruction> Code;
  std::unordered_map<std::string, Addr> Labels;
  // Instruction index -> label whose address goes in Imm.
  std::vector<std::pair<size_t, std::string>> Fixups;
};

} // namespace trident

#endif // TRIDENT_ISA_PROGRAMBUILDER_H
