//===- Instruction.cpp ----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/Instruction.h"
#include "support/Check.h"

#include <cstdio>
#include <cstring>

using namespace trident;

std::array<uint64_t, 3> Instruction::encode() const {
  uint64_t Word0 = static_cast<uint64_t>(Op) |
                   (static_cast<uint64_t>(Rd) << 8) |
                   (static_cast<uint64_t>(Rs1) << 16) |
                   (static_cast<uint64_t>(Rs2) << 24) |
                   (static_cast<uint64_t>(Synthetic ? 1 : 0) << 32) |
                   (static_cast<uint64_t>(ExtraCommits) << 40);
  uint64_t Word1;
  static_assert(sizeof(Word1) == sizeof(Imm));
  std::memcpy(&Word1, &Imm, sizeof(Word1));
  return {Word0, Word1, OrigPC};
}

Instruction Instruction::decode(const std::array<uint64_t, 3> &Words) {
  const uint64_t Word0 = Words[0];
  const uint64_t OpByte = Word0 & 0xff;
  TRIDENT_CHECK(OpByte < static_cast<uint64_t>(Opcode::NumOpcodes),
                "encoded opcode byte %llu is not an opcode",
                (unsigned long long)OpByte);
  const uint64_t SynByte = (Word0 >> 32) & 0xff;
  TRIDENT_CHECK(SynByte <= 1, "encoded synthetic flag byte %llu is not 0/1",
                (unsigned long long)SynByte);
  TRIDENT_CHECK((Word0 >> 48) == 0,
                "reserved bits set in encoded instruction word 0");
  Instruction I;
  I.Op = static_cast<Opcode>(OpByte);
  I.Rd = static_cast<uint8_t>((Word0 >> 8) & 0xff);
  I.Rs1 = static_cast<uint8_t>((Word0 >> 16) & 0xff);
  I.Rs2 = static_cast<uint8_t>((Word0 >> 24) & 0xff);
  I.Synthetic = SynByte != 0;
  I.ExtraCommits = static_cast<uint8_t>((Word0 >> 40) & 0xff);
  static_assert(sizeof(I.Imm) == sizeof(Words[1]));
  std::memcpy(&I.Imm, &Words[1], sizeof(I.Imm));
  I.OrigPC = Words[2];
  return I;
}

std::string trident::toString(const Instruction &I) {
  char Buf[128];
  const char *Name = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::Halt:
    std::snprintf(Buf, sizeof(Buf), "%s", Name);
    break;
  case Opcode::LoadImm:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, %lld", Name, I.Rd,
                  static_cast<long long>(I.Imm));
    break;
  case Opcode::Move:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u", Name, I.Rd, I.Rs1);
    break;
  case Opcode::Load:
  case Opcode::NFLoad:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, %lld(r%u)", Name, I.Rd,
                  static_cast<long long>(I.Imm), I.Rs1);
    break;
  case Opcode::Store:
    std::snprintf(Buf, sizeof(Buf), "%s %lld(r%u), r%u", Name,
                  static_cast<long long>(I.Imm), I.Rs1, I.Rs2);
    break;
  case Opcode::Prefetch:
    std::snprintf(Buf, sizeof(Buf), "%s %lld(r%u)", Name,
                  static_cast<long long>(I.Imm), I.Rs1);
    break;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, 0x%llx", Name, I.Rs1, I.Rs2,
                  static_cast<unsigned long long>(I.Imm));
    break;
  case Opcode::Jump:
    std::snprintf(Buf, sizeof(Buf), "%s 0x%llx", Name,
                  static_cast<unsigned long long>(I.Imm));
    break;
  default:
    if (readsRs2(I.Op))
      std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, r%u", Name, I.Rd, I.Rs1,
                    I.Rs2);
    else
      std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, %lld", Name, I.Rd, I.Rs1,
                    static_cast<long long>(I.Imm));
    break;
  }
  std::string S(Buf);
  if (I.Synthetic)
    S += "  ; <synthetic>";
  return S;
}

Instruction trident::makeNop() { return Instruction(); }

Instruction trident::makeHalt() {
  Instruction I;
  I.Op = Opcode::Halt;
  return I;
}

Instruction trident::makeAlu(Opcode Op, unsigned Rd, unsigned Rs1,
                             unsigned Rs2) {
  TRIDENT_CHECK(execClass(Op) != ExecClass::Mem && readsRs2(Op), "not a reg-reg ALU opcode");
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Rs2 = static_cast<uint8_t>(Rs2);
  return I;
}

Instruction trident::makeAluImm(Opcode Op, unsigned Rd, unsigned Rs1,
                                int64_t Imm) {
  TRIDENT_CHECK(!readsRs2(Op) && writesRd(Op), "not a reg-imm ALU opcode");
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Imm = Imm;
  return I;
}

Instruction trident::makeLoadImm(unsigned Rd, int64_t Imm) {
  Instruction I;
  I.Op = Opcode::LoadImm;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Imm = Imm;
  return I;
}

Instruction trident::makeMove(unsigned Rd, unsigned Rs1) {
  Instruction I;
  I.Op = Opcode::Move;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  return I;
}

Instruction trident::makeLoad(unsigned Rd, unsigned Base, int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Imm = Offset;
  return I;
}

Instruction trident::makeNFLoad(unsigned Rd, unsigned Base, int64_t Offset) {
  Instruction I = makeLoad(Rd, Base, Offset);
  I.Op = Opcode::NFLoad;
  return I;
}

Instruction trident::makeStore(unsigned Base, int64_t Offset,
                               unsigned ValueReg) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Rs2 = static_cast<uint8_t>(ValueReg);
  I.Imm = Offset;
  return I;
}

Instruction trident::makePrefetch(unsigned Base, int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Prefetch;
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Imm = Offset;
  return I;
}

Instruction trident::makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2,
                                Addr Target) {
  TRIDENT_CHECK(isConditionalBranch(Op), "not a conditional branch");
  Instruction I;
  I.Op = Op;
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Rs2 = static_cast<uint8_t>(Rs2);
  I.Imm = static_cast<int64_t>(Target);
  return I;
}

Instruction trident::makeJump(Addr Target) {
  Instruction I;
  I.Op = Opcode::Jump;
  I.Imm = static_cast<int64_t>(Target);
  return I;
}
