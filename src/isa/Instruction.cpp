//===- Instruction.cpp ----------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/Instruction.h"
#include "support/Check.h"

#include <cstdio>

using namespace trident;

std::string trident::toString(const Instruction &I) {
  char Buf[128];
  const char *Name = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::Halt:
    std::snprintf(Buf, sizeof(Buf), "%s", Name);
    break;
  case Opcode::LoadImm:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, %lld", Name, I.Rd,
                  static_cast<long long>(I.Imm));
    break;
  case Opcode::Move:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u", Name, I.Rd, I.Rs1);
    break;
  case Opcode::Load:
  case Opcode::NFLoad:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, %lld(r%u)", Name, I.Rd,
                  static_cast<long long>(I.Imm), I.Rs1);
    break;
  case Opcode::Store:
    std::snprintf(Buf, sizeof(Buf), "%s %lld(r%u), r%u", Name,
                  static_cast<long long>(I.Imm), I.Rs1, I.Rs2);
    break;
  case Opcode::Prefetch:
    std::snprintf(Buf, sizeof(Buf), "%s %lld(r%u)", Name,
                  static_cast<long long>(I.Imm), I.Rs1);
    break;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, 0x%llx", Name, I.Rs1, I.Rs2,
                  static_cast<unsigned long long>(I.Imm));
    break;
  case Opcode::Jump:
    std::snprintf(Buf, sizeof(Buf), "%s 0x%llx", Name,
                  static_cast<unsigned long long>(I.Imm));
    break;
  default:
    if (readsRs2(I.Op))
      std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, r%u", Name, I.Rd, I.Rs1,
                    I.Rs2);
    else
      std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, %lld", Name, I.Rd, I.Rs1,
                    static_cast<long long>(I.Imm));
    break;
  }
  std::string S(Buf);
  if (I.Synthetic)
    S += "  ; <synthetic>";
  return S;
}

Instruction trident::makeNop() { return Instruction(); }

Instruction trident::makeHalt() {
  Instruction I;
  I.Op = Opcode::Halt;
  return I;
}

Instruction trident::makeAlu(Opcode Op, unsigned Rd, unsigned Rs1,
                             unsigned Rs2) {
  TRIDENT_CHECK(execClass(Op) != ExecClass::Mem && readsRs2(Op), "not a reg-reg ALU opcode");
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Rs2 = static_cast<uint8_t>(Rs2);
  return I;
}

Instruction trident::makeAluImm(Opcode Op, unsigned Rd, unsigned Rs1,
                                int64_t Imm) {
  TRIDENT_CHECK(!readsRs2(Op) && writesRd(Op), "not a reg-imm ALU opcode");
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Imm = Imm;
  return I;
}

Instruction trident::makeLoadImm(unsigned Rd, int64_t Imm) {
  Instruction I;
  I.Op = Opcode::LoadImm;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Imm = Imm;
  return I;
}

Instruction trident::makeMove(unsigned Rd, unsigned Rs1) {
  Instruction I;
  I.Op = Opcode::Move;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  return I;
}

Instruction trident::makeLoad(unsigned Rd, unsigned Base, int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Imm = Offset;
  return I;
}

Instruction trident::makeNFLoad(unsigned Rd, unsigned Base, int64_t Offset) {
  Instruction I = makeLoad(Rd, Base, Offset);
  I.Op = Opcode::NFLoad;
  return I;
}

Instruction trident::makeStore(unsigned Base, int64_t Offset,
                               unsigned ValueReg) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Rs2 = static_cast<uint8_t>(ValueReg);
  I.Imm = Offset;
  return I;
}

Instruction trident::makePrefetch(unsigned Base, int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Prefetch;
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Imm = Offset;
  return I;
}

Instruction trident::makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2,
                                Addr Target) {
  TRIDENT_CHECK(isConditionalBranch(Op), "not a conditional branch");
  Instruction I;
  I.Op = Op;
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Rs2 = static_cast<uint8_t>(Rs2);
  I.Imm = static_cast<int64_t>(Target);
  return I;
}

Instruction trident::makeJump(Addr Target) {
  Instruction I;
  I.Op = Opcode::Jump;
  I.Imm = static_cast<int64_t>(Target);
  return I;
}
