//===- Program.h - A loaded program image ----------------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A program is a contiguous run of decoded instructions at a base address.
/// Trident patches the *original binary* in place to redirect execution into
/// hot traces (Section 3.2, "Linking Trace"), so instructions are mutable
/// and the original image can be restored per-address.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_ISA_PROGRAM_H
#define TRIDENT_ISA_PROGRAM_H

#include "isa/Instruction.h"
#include "support/Check.h"

#include <string>
#include <vector>

namespace trident {

class Program {
public:
  Program() = default;
  Program(Addr Base, std::vector<Instruction> Body, Addr Entry)
      : BasePC(Base), EntryPC(Entry), Code(std::move(Body)) {
    TRIDENT_CHECK(EntryPC >= BasePC && EntryPC < BasePC + this->Code.size(),
                  "entry PC 0x%llx outside program [0x%llx, 0x%llx)",
                  (unsigned long long)EntryPC, (unsigned long long)BasePC,
                  (unsigned long long)(BasePC + this->Code.size()));
  }

  Addr basePC() const { return BasePC; }
  Addr entryPC() const { return EntryPC; }
  Addr endPC() const { return BasePC + Code.size(); }
  size_t size() const { return Code.size(); }

  bool contains(Addr PC) const { return PC >= BasePC && PC < endPC(); }

  const Instruction &at(Addr PC) const {
    TRIDENT_DCHECK(contains(PC), "PC 0x%llx outside program",
                   (unsigned long long)PC);
    return Code[PC - BasePC];
  }

  Instruction &at(Addr PC) {
    TRIDENT_DCHECK(contains(PC), "PC 0x%llx outside program",
                   (unsigned long long)PC);
    return Code[PC - BasePC];
  }

  /// Full-image listing, one "PC: instruction" line each; for debugging and
  /// the examples.
  std::string disassemble() const;

private:
  Addr BasePC = 0;
  Addr EntryPC = 0;
  std::vector<Instruction> Code;
};

} // namespace trident

#endif // TRIDENT_ISA_PROGRAM_H
