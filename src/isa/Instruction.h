//===- Instruction.h - One decoded machine instruction ---------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decoded instruction. The simulator is a decoded-instruction machine:
/// "patching instruction bits" (how the paper's self-repairing optimizer
/// updates a prefetch distance in place, Section 3.5.1) is modeled as
/// rewriting the \c Imm field of the Prefetch instruction inside the code
/// cache.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_ISA_INSTRUCTION_H
#define TRIDENT_ISA_INSTRUCTION_H

#include "isa/Opcode.h"

#include <array>
#include <cstdint>
#include <string>

namespace trident {

/// Instruction addresses advance by one per instruction (decoded-instruction
/// machine); data addresses are byte-granular.
using Addr = uint64_t;

struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  /// Immediate: ALU operand, load/store/prefetch displacement, or absolute
  /// branch target.
  int64_t Imm = 0;

  /// True when the instruction was inserted by the dynamic optimizer
  /// (prefetches, non-faulting dereference loads). Synthetic instructions
  /// are executed and consume resources but are excluded from committed
  /// instruction counts so IPC corresponds to the original program
  /// (Section 4.1 of the paper).
  bool Synthetic = false;

  /// For instructions living in the code cache: the address of the original
  /// binary instruction this one was copied from (0 for synthetic ones).
  Addr OrigPC = 0;

  /// Commit credit for original instructions the optimizer *removed*
  /// (streamlined jumps, redundant branches/nops): the paper requires IPC
  /// to count "the number of instructions the original code would have
  /// executed" (Section 4.1), so eliminated instructions still commit,
  /// carried by a surviving neighbour.
  uint8_t ExtraCommits = 0;

  bool isLoad() const { return trident::isLoad(Op); }
  bool isMemAccess() const { return trident::isMemAccess(Op); }
  bool isBranch() const { return trident::isBranch(Op); }
  bool isConditionalBranch() const { return trident::isConditionalBranch(Op); }
  bool writesRd() const { return trident::writesRd(Op); }
  bool readsRs1() const { return trident::readsRs1(Op); }
  bool readsRs2() const { return trident::readsRs2(Op); }

  /// Registers read/written, as convenience accessors returning
  /// reg::NumRegs when not applicable.
  unsigned destReg() const { return writesRd() ? Rd : reg::NumRegs; }

  bool operator==(const Instruction &) const = default;

  /// Packed binary encoding: word 0 carries the scalar fields (opcode,
  /// registers, flags), word 1 the immediate bits, word 2 the original
  /// PC. decode() inverts it exactly — the property tests fuzz the
  /// round-trip. This is the wire format a persisted code cache or trace
  /// file would use; the simulator itself keeps instructions decoded.
  std::array<uint64_t, 3> encode() const;
  static Instruction decode(const std::array<uint64_t, 3> &Words);
};

/// Renders "opcode rd, rs1, rs2/imm" assembly-ish text, e.g.
/// "ld r5, 16(r3)" or "beq r1, r2, 0x1040".
std::string toString(const Instruction &I);

// Factory helpers used by the assembler, tests, and the optimizer.

Instruction makeNop();
Instruction makeHalt();
Instruction makeAlu(Opcode Op, unsigned Rd, unsigned Rs1, unsigned Rs2);
Instruction makeAluImm(Opcode Op, unsigned Rd, unsigned Rs1, int64_t Imm);
Instruction makeLoadImm(unsigned Rd, int64_t Imm);
Instruction makeMove(unsigned Rd, unsigned Rs1);
Instruction makeLoad(unsigned Rd, unsigned Base, int64_t Offset);
Instruction makeNFLoad(unsigned Rd, unsigned Base, int64_t Offset);
Instruction makeStore(unsigned Base, int64_t Offset, unsigned ValueReg);
Instruction makePrefetch(unsigned Base, int64_t Offset);
Instruction makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2, Addr Target);
Instruction makeJump(Addr Target);

} // namespace trident

#endif // TRIDENT_ISA_INSTRUCTION_H
