//===- ProgramBuilder.cpp -------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "support/Check.h"

#include <cstdio>

using namespace trident;

std::string Program::disassemble() const {
  std::string Out;
  char Buf[32];
  for (Addr PC = BasePC; PC < endPC(); ++PC) {
    std::snprintf(Buf, sizeof(Buf), "0x%llx: ",
                  static_cast<unsigned long long>(PC));
    Out += Buf;
    Out += toString(at(PC));
    Out += '\n';
  }
  return Out;
}

ProgramBuilder &ProgramBuilder::label(const std::string &Name) {
  TRIDENT_CHECK(!Labels.count(Name), "label redefined");
  Labels[Name] = here();
  return *this;
}

ProgramBuilder &ProgramBuilder::emit(Instruction I) {
  Code.push_back(I);
  return *this;
}

ProgramBuilder &ProgramBuilder::branch(Opcode Op, unsigned Rs1, unsigned Rs2,
                                       const std::string &Label) {
  Fixups.emplace_back(Code.size(), Label);
  return emit(makeBranch(Op, Rs1, Rs2, /*Target=*/0));
}

ProgramBuilder &ProgramBuilder::jump(const std::string &Label) {
  Fixups.emplace_back(Code.size(), Label);
  return emit(makeJump(/*Target=*/0));
}

ProgramBuilder &ProgramBuilder::entryHere() {
  EntryPC = here();
  EntrySet = true;
  return *this;
}

Program ProgramBuilder::finish() {
  for (const auto &[Index, Label] : Fixups) {
    auto It = Labels.find(Label);
    TRIDENT_CHECK(It != Labels.end(), "reference to undefined label");
    Code[Index].Imm = static_cast<int64_t>(It->second);
  }
  TRIDENT_CHECK(!Code.empty(), "empty program");
  Addr Entry = EntrySet ? EntryPC : BasePC;
  Program P(BasePC, std::move(Code), Entry);
  Code.clear();
  Labels.clear();
  Fixups.clear();
  EntrySet = false;
  return P;
}
