//===- Opcode.cpp ---------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/Opcode.h"
#include "support/Check.h"


using namespace trident;

const char *trident::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Mul:
    return "mul";
  case Opcode::AddI:
    return "addi";
  case Opcode::SubI:
    return "subi";
  case Opcode::AndI:
    return "andi";
  case Opcode::OrI:
    return "ori";
  case Opcode::XorI:
    return "xori";
  case Opcode::ShlI:
    return "shli";
  case Opcode::ShrI:
    return "shri";
  case Opcode::MulI:
    return "muli";
  case Opcode::LoadImm:
    return "ldi";
  case Opcode::Move:
    return "move";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::Load:
    return "ld";
  case Opcode::Store:
    return "st";
  case Opcode::NFLoad:
    return "nfld";
  case Opcode::Prefetch:
    return "pf";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blt:
    return "blt";
  case Opcode::Bge:
    return "bge";
  case Opcode::Jump:
    return "jmp";
  case Opcode::NumOpcodes:
    break;
  }
  TRIDENT_UNREACHABLE("invalid opcode");
  return "<bad>";
}

ExecClass trident::execClass(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
    return ExecClass::None;
  case Opcode::FAdd:
  case Opcode::FMul:
  case Opcode::FDiv:
    return ExecClass::FpAlu;
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::NFLoad:
  case Opcode::Prefetch:
    return ExecClass::Mem;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Jump:
    return ExecClass::Branch;
  default:
    return ExecClass::IntAlu;
  }
}

unsigned trident::executionLatency(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
  case Opcode::MulI:
    return 3;
  case Opcode::FAdd:
  case Opcode::FMul:
    return 4;
  case Opcode::FDiv:
    return 12;
  default:
    return 1;
  }
}

bool trident::isLoad(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::NFLoad;
}

bool trident::isMemAccess(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store || Op == Opcode::NFLoad ||
         Op == Opcode::Prefetch;
}

bool trident::isConditionalBranch(Opcode Op) {
  return Op == Opcode::Beq || Op == Opcode::Bne || Op == Opcode::Blt ||
         Op == Opcode::Bge;
}

bool trident::isBranch(Opcode Op) {
  return isConditionalBranch(Op) || Op == Opcode::Jump;
}

bool trident::writesRd(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Store:
  case Opcode::Prefetch:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Jump:
    return false;
  default:
    return true;
  }
}

bool trident::readsRs1(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::LoadImm:
  case Opcode::Jump:
    return false;
  default:
    return true;
  }
}

bool trident::readsRs2(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Mul:
  case Opcode::FAdd:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::Store: // Rs2 is the stored value.
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    return true;
  default:
    return false;
  }
}
