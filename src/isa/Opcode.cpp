//===- Opcode.cpp ---------------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "isa/Opcode.h"
#include "support/Check.h"


using namespace trident;

const char *trident::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Mul:
    return "mul";
  case Opcode::AddI:
    return "addi";
  case Opcode::SubI:
    return "subi";
  case Opcode::AndI:
    return "andi";
  case Opcode::OrI:
    return "ori";
  case Opcode::XorI:
    return "xori";
  case Opcode::ShlI:
    return "shli";
  case Opcode::ShrI:
    return "shri";
  case Opcode::MulI:
    return "muli";
  case Opcode::LoadImm:
    return "ldi";
  case Opcode::Move:
    return "move";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::Load:
    return "ld";
  case Opcode::Store:
    return "st";
  case Opcode::NFLoad:
    return "nfld";
  case Opcode::Prefetch:
    return "pf";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blt:
    return "blt";
  case Opcode::Bge:
    return "bge";
  case Opcode::Jump:
    return "jmp";
  case Opcode::NumOpcodes:
    break;
  }
  TRIDENT_UNREACHABLE("invalid opcode");
  return "<bad>";
}
