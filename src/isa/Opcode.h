//===- Opcode.h - Instruction opcodes and traits ---------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the simulated machine. It is a small Alpha-like
/// RISC ISA: 32 general registers, loads/stores with register+immediate
/// addressing, conditional branches, and the two instructions the paper's
/// optimizer inserts — a software \c Prefetch and a non-faulting load
/// (\c NFLoad, Section 3.4.3). \c Move exists because Trident's base
/// optimizer converts store/load pairs into a MOVE (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_ISA_OPCODE_H
#define TRIDENT_ISA_OPCODE_H

#include <cstdint>

namespace trident {

enum class Opcode : uint8_t {
  Nop,
  Halt, ///< Stops the context; programs end with Halt.

  // Integer ALU, register-register.
  Add,
  Sub,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Mul,

  // Integer ALU, register-immediate (Rs2 unused).
  AddI,
  SubI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,
  MulI,

  LoadImm, ///< Rd = Imm (64-bit immediate materialization).
  Move,    ///< Rd = Rs1.

  // Floating point (modeled on the integer register file with FP latencies;
  // the memory-system experiments do not depend on a separate FP file).
  FAdd,
  FMul,
  FDiv,

  // Memory.
  Load,     ///< Rd = mem64[Rs1 + Imm].
  Store,    ///< mem64[Rs1 + Imm] = Rs2.
  NFLoad,   ///< Non-faulting load; never traps (optimizer-inserted).
  Prefetch, ///< Hints the cache to fetch line of (Rs1 + Imm); no writeback.

  // Control flow. Conditional branches compare Rs1 against Rs2 and jump to
  // the absolute instruction address in Imm when the condition holds.
  Beq,
  Bne,
  Blt,
  Bge,
  Jump, ///< Unconditional jump to Imm.

  NumOpcodes
};

/// Functional-unit class an instruction issues to; used for per-cycle issue
/// limits (Table 1: up to 4 integer, 2 FP, 2 loads/stores per cycle).
enum class ExecClass : uint8_t {
  IntAlu,
  FpAlu,
  Mem,
  Branch,
  None, ///< Nop/Halt.
};

/// Returns the mnemonic (e.g. "addi").
const char *opcodeName(Opcode Op);

/// Returns the functional-unit class for \p Op.
ExecClass execClass(Opcode Op);

/// Fixed execution latency in cycles for non-memory instructions; loads and
/// stores get their latency from the memory hierarchy instead.
unsigned executionLatency(Opcode Op);

/// True for Load and NFLoad (instructions that read data memory into Rd).
bool isLoad(Opcode Op);

/// True for any instruction that computes a data memory address
/// (Load, NFLoad, Store, Prefetch).
bool isMemAccess(Opcode Op);

/// True for conditional branches (Beq..Bge).
bool isConditionalBranch(Opcode Op);

/// True for any control transfer (conditional branches and Jump).
bool isBranch(Opcode Op);

/// True if the instruction writes register Rd.
bool writesRd(Opcode Op);

/// True if the instruction reads register Rs1.
bool readsRs1(Opcode Op);

/// True if the instruction reads register Rs2.
bool readsRs2(Opcode Op);

namespace reg {
/// Register conventions. R0 is hardwired to zero. The top three registers
/// are reserved as optimizer scratch: trace re-optimization may clobber them
/// when materializing pointer prefetches, so workload programs must not use
/// them (mirrors Alpha AT/temporaries being reserved for the runtime).
constexpr unsigned Zero = 0;
constexpr unsigned FirstScratch = 29;
constexpr unsigned NumRegs = 32;
} // namespace reg

} // namespace trident

#endif // TRIDENT_ISA_OPCODE_H
