//===- Opcode.h - Instruction opcodes and traits ---------------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the simulated machine. It is a small Alpha-like
/// RISC ISA: 32 general registers, loads/stores with register+immediate
/// addressing, conditional branches, and the two instructions the paper's
/// optimizer inserts — a software \c Prefetch and a non-faulting load
/// (\c NFLoad, Section 3.4.3). \c Move exists because Trident's base
/// optimizer converts store/load pairs into a MOVE (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_ISA_OPCODE_H
#define TRIDENT_ISA_OPCODE_H

#include <cstdint>

namespace trident {

enum class Opcode : uint8_t {
  Nop,
  Halt, ///< Stops the context; programs end with Halt.

  // Integer ALU, register-register.
  Add,
  Sub,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Mul,

  // Integer ALU, register-immediate (Rs2 unused).
  AddI,
  SubI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,
  MulI,

  LoadImm, ///< Rd = Imm (64-bit immediate materialization).
  Move,    ///< Rd = Rs1.

  // Floating point (modeled on the integer register file with FP latencies;
  // the memory-system experiments do not depend on a separate FP file).
  FAdd,
  FMul,
  FDiv,

  // Memory.
  Load,     ///< Rd = mem64[Rs1 + Imm].
  Store,    ///< mem64[Rs1 + Imm] = Rs2.
  NFLoad,   ///< Non-faulting load; never traps (optimizer-inserted).
  Prefetch, ///< Hints the cache to fetch line of (Rs1 + Imm); no writeback.

  // Control flow. Conditional branches compare Rs1 against Rs2 and jump to
  // the absolute instruction address in Imm when the condition holds.
  Beq,
  Bne,
  Blt,
  Bge,
  Jump, ///< Unconditional jump to Imm.

  NumOpcodes
};

/// Functional-unit class an instruction issues to; used for per-cycle issue
/// limits (Table 1: up to 4 integer, 2 FP, 2 loads/stores per cycle).
enum class ExecClass : uint8_t {
  IntAlu,
  FpAlu,
  Mem,
  Branch,
  None, ///< Nop/Halt.
};

/// Returns the mnemonic (e.g. "addi").
const char *opcodeName(Opcode Op);

// The opcode property predicates below run in the fetch/issue inner loop
// (4-5 calls per committed instruction); they are constexpr inline so the
// compiler folds them into the caller instead of paying an out-of-line
// call per query.

/// Returns the functional-unit class for \p Op.
constexpr ExecClass execClass(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
    return ExecClass::None;
  case Opcode::FAdd:
  case Opcode::FMul:
  case Opcode::FDiv:
    return ExecClass::FpAlu;
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::NFLoad:
  case Opcode::Prefetch:
    return ExecClass::Mem;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Jump:
    return ExecClass::Branch;
  default:
    return ExecClass::IntAlu;
  }
}

/// Fixed execution latency in cycles for non-memory instructions; loads and
/// stores get their latency from the memory hierarchy instead.
constexpr unsigned executionLatency(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
  case Opcode::MulI:
    return 3;
  case Opcode::FAdd:
  case Opcode::FMul:
    return 4;
  case Opcode::FDiv:
    return 12;
  default:
    return 1;
  }
}

/// True for Load and NFLoad (instructions that read data memory into Rd).
constexpr bool isLoad(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::NFLoad;
}

/// True for any instruction that computes a data memory address
/// (Load, NFLoad, Store, Prefetch).
constexpr bool isMemAccess(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store || Op == Opcode::NFLoad ||
         Op == Opcode::Prefetch;
}

/// True for conditional branches (Beq..Bge).
constexpr bool isConditionalBranch(Opcode Op) {
  return Op == Opcode::Beq || Op == Opcode::Bne || Op == Opcode::Blt ||
         Op == Opcode::Bge;
}

/// True for any control transfer (conditional branches and Jump).
constexpr bool isBranch(Opcode Op) {
  return isConditionalBranch(Op) || Op == Opcode::Jump;
}

/// True if the instruction writes register Rd.
constexpr bool writesRd(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Store:
  case Opcode::Prefetch:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Jump:
    return false;
  default:
    return true;
  }
}

/// True if the instruction reads register Rs1.
constexpr bool readsRs1(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::LoadImm:
  case Opcode::Jump:
    return false;
  default:
    return true;
  }
}

/// True if the instruction reads register Rs2.
constexpr bool readsRs2(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Mul:
  case Opcode::FAdd:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::Store: // Rs2 is the stored value.
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    return true;
  default:
    return false;
  }
}

namespace reg {
/// Register conventions. R0 is hardwired to zero. The top three registers
/// are reserved as optimizer scratch: trace re-optimization may clobber them
/// when materializing pointer prefetches, so workload programs must not use
/// them (mirrors Alpha AT/temporaries being reserved for the runtime).
constexpr unsigned Zero = 0;
constexpr unsigned FirstScratch = 29;
constexpr unsigned NumRegs = 32;
} // namespace reg

} // namespace trident

#endif // TRIDENT_ISA_OPCODE_H
