//===- MixSimulation.h - Multi-programmed workload mixes -------*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Co-schedules the primary workload with 1..3 co-runner workloads over
/// ONE shared memory system — cache capacity, MSHRs, bus bandwidth, and
/// the hardware prefetcher are contended — so the scenario space covers
/// interference the solo sweeps cannot produce (DESIGN.md §16).
///
/// Lane model: lane 0 is the primary with the full solo wiring (Trident
/// runtime, selector control plane, fault injector, tracer). Lanes 1..N
/// are raw cores running their workload with no runtime and no event bus;
/// they exist to generate contention, not measurements. Each lane gets a
/// disjoint CoreConfig::MemBias so same-numbered addresses in different
/// programs never alias in the shared caches.
///
/// Scheduling: quantum round-robin on a global cycle boundary. Each round
/// the boundary advances by SimConfig::MixQuantumCycles; lane 0 runs first
/// (toward its warmup/measurement commit goal, capped at the boundary),
/// then each co-runner catches up to the boundary. Everything is
/// deterministic: same seed and config ⇒ bit-identical SimResult,
/// decision trace, and registry export.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SIM_MIXSIMULATION_H
#define TRIDENT_SIM_MIXSIMULATION_H

#include "sim/Simulation.h"

namespace trident {

/// Runs \p W as lane 0 of a multi-programmed mix described by
/// Config.MixWith (1..3 co-runner workload names; fuzz specs allowed).
/// Called by runSimulation when MixWith is non-empty — call that instead.
SimResult runMixSimulation(const Workload &W, const SimConfig &Config,
                           EventTracer *Tracer = nullptr);

} // namespace trident

#endif // TRIDENT_SIM_MIXSIMULATION_H
