//===- Simulation.h - Full-system wiring and experiment runner -*- C++ -*-===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wires the whole machine together — SMT core, memory system, optional
/// hardware stream-buffer prefetcher, branch predictor, and the Trident
/// runtime with the self-repairing prefetcher — and runs one workload
/// under one configuration, reproducing the paper's methodology
/// (Section 4): warm up with monitoring disabled, then measure a fixed
/// budget of committed *original* instructions.
///
//===----------------------------------------------------------------------===//

#ifndef TRIDENT_SIM_SIMULATION_H
#define TRIDENT_SIM_SIMULATION_H

#include "control/PrefetcherSelector.h"
#include "core/TridentRuntime.h"
#include "events/EventTracer.h"
#include "support/StatRegistry.h"
#include "faults/FaultInjector.h"
#include "hwpf/PrefetcherRegistry.h"
#include "workloads/Workloads.h"

#include <vector>

#include <array>
#include <memory>
#include <string>

namespace trident {

/// Display name for a prefetcher spec: "no-hwpf" for the explicit
/// no-prefetcher configuration, the spec string verbatim otherwise.
std::string hwPfConfigName(const std::string &Spec);

struct SimConfig {
  CoreConfig Core = CoreConfig::baseline();
  MemSystemConfig Mem = MemSystemConfig::baseline();
  /// Hardware-prefetcher spec, resolved through PrefetcherRegistry:
  /// "none", a registered name ("sb8x8", "enhanced-stream", "dcpt",
  /// "tskid", ...), or name:knob=value,... (see trident_sim --hwpf list).
  std::string HwPf = "sb8x8";
  /// Enable the Trident runtime at all (false = raw hardware baseline).
  bool EnableTrident = false;
  RuntimeConfig Runtime = RuntimeConfig::baseline();
  /// Warmup instructions (monitoring/optimization disabled; Section 4.2).
  uint64_t WarmupInstructions = 200'000;
  /// Measured committed original instructions.
  uint64_t SimInstructions = 2'000'000;
  /// Fault-injection schedule (empty = no injector is constructed and the
  /// run is bit-identical to a pre-fault-injection build). Trigger cycles
  /// are absolute, warmup included.
  FaultPlan Faults;
  /// Phase-aware prefetcher selection (src/control). Static (the default)
  /// builds no control plane at all, so runs are byte-identical to a
  /// pre-control-plane build; bandit/oracle swap arsenal units at epoch
  /// boundaries. An enabled selector with a zero core feedback interval
  /// runs the core at Selector.IntervalCommits (the selector's heartbeat)
  /// without mutating this config.
  SelectorConfig Selector;
  /// Multi-programmed mix: names of 1..3 co-runner workloads (resolved
  /// through makeWorkload, so fuzz specs work) co-scheduled with the
  /// primary on private cores that share this config's memory system —
  /// cache capacity, MSHRs, bus bandwidth, and the hardware prefetcher.
  /// Empty (the default) runs the solo path, bit-identical to builds that
  /// predate mixes. See sim/MixSimulation.h and DESIGN.md §16.
  std::vector<std::string> MixWith;
  /// Mix co-scheduling quantum: each lane advances until its local clock
  /// reaches the shared boundary, which then moves forward by this many
  /// cycles. Lanes later in a round queue behind bus/MSHR reservations
  /// the earlier lanes already made up to the boundary, so large quanta
  /// skew bandwidth toward the primary; 1000 cycles interleaves fairly at
  /// modest host cost. Part of the config fingerprint.
  Cycle MixQuantumCycles = 1'000;

  /// The paper's baseline: 8x8 stream buffers, no software prefetching.
  static SimConfig hwBaseline();
  /// Trident with a given prefetch mode on top of the hw baseline.
  static SimConfig withMode(PrefetchMode Mode);
};

struct SimResult {
  std::string Workload;
  std::string ConfigName;
  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  double Ipc = 0.0;
  MemStats Mem;
  RuntimeStats Runtime;
  DltStats Dlt;
  TlbStats Tlb;
  /// The attached prefetcher's named-counter snapshot (name empty, no
  /// counters when the config ran without one). Counter names are
  /// per-prefetcher; the legacy stream-buffer set keeps its historical
  /// names, so default-config registry exports are unchanged.
  HwPfStats HwPf;
  /// Uniform prefetcher-effectiveness counters (accuracy/coverage inputs),
  /// maintained by the memory system for any attached unit.
  HwPfFeedback PfFeedback;
  Cycle HelperBusyCycles = 0;
  uint64_t BranchMispredicts = 0;
  /// Fault-injection accounting (all zero when no plan was configured).
  FaultStats Faults;
  /// Control-plane accounting (all zero when the selector was static).
  SelectorStats Selector;
  /// The selector's epoch-boundary decision sequence over the measurement
  /// window — the determinism artifact: identical seeds must reproduce
  /// this byte-for-byte under serial and parallel runners.
  std::vector<SelectorDecisionRecord> SelectorTrace;
  /// Arsenal unit attached when the run ended ("" without a selector or
  /// when the run ended unit-less).
  std::string SelectorFinalUnit;
  /// Per-co-runner progress over the measurement window (empty for solo
  /// runs). The primary lane's numbers are the top-level fields above —
  /// a mix result reads exactly like a solo result plus this appendix.
  struct MixLane {
    std::string Workload;
    uint64_t Instructions = 0;
    Cycle Cycles = 0;
  };
  std::vector<MixLane> MixLanes;
  /// FNV-style hash of the main context's final register file — used by
  /// tests to check that dynamic optimization never changes semantics.
  uint64_t RegChecksum = 0;
  /// True when the program ran to its Halt before the instruction budget.
  bool Halted = false;

  /// Per-kind event-bus publish counts over the measurement window. The
  /// hot-path kinds (Commit, LoadOutcome, Branch) are only constructed
  /// when something subscribed to them, so their counts reflect the
  /// machine only when the Trident runtime (or another subscriber) was
  /// attached; the filtered kinds are published unconditionally.
  std::array<uint64_t, kNumEventKinds> EventsPublished{};

  /// The machine's full named-statistics snapshot (cpu.*, mem.*, hwpf.*,
  /// dlt.*, trident.*, events.*), taken at the end of the measurement
  /// window. Shared so memoized results stay cheap to copy.
  std::shared_ptr<const StatRegistry> Registry;

  double helperActiveFraction() const {
    return Cycles == 0 ? 0.0
                       : static_cast<double>(HelperBusyCycles) /
                             static_cast<double>(Cycles);
  }
};

/// Runs \p W under \p Config and returns the measured result. When
/// \p Tracer is given it is subscribed to the machine's event bus for the
/// whole run (warmup included); the tracer is strictly passive, so the
/// measured result is bit-identical with and without it.
SimResult runSimulation(const Workload &W, const SimConfig &Config,
                        EventTracer *Tracer = nullptr);

/// Convenience: speedup of \p A over baseline \p Base (IPC ratio).
inline double speedup(const SimResult &A, const SimResult &Base) {
  return Base.Ipc == 0.0 ? 0.0 : A.Ipc / Base.Ipc;
}

} // namespace trident

#endif // TRIDENT_SIM_SIMULATION_H
