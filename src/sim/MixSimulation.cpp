//===- MixSimulation.cpp --------------------------------------------------===//
//
// Part of the Trident-SRP reproduction (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "sim/MixSimulation.h"

#include "branch/BranchPredictor.h"
#include "control/PhaseMonitor.h"
#include "sim/ResultAssembly.h"
#include "support/Check.h"
#include "trident/CodeCache.h"

#include <memory>

using namespace trident;

namespace {

/// Co-runner commit target per quantum: effectively unbounded (the cycle
/// boundary always stops the lane first) but small enough that
/// SmtCore::run's goal arithmetic (committed + target) cannot wrap.
constexpr uint64_t kUnboundedCommits = uint64_t(1) << 62;

/// One co-runner: a raw core (no Trident runtime, no event bus, no
/// control plane) executing its workload against the shared memory
/// system. Member order is load-bearing: Prog/Data/CC must be alive
/// before Image, Image before Core.
struct CoLane {
  Workload W;
  Program Prog;
  DataMemory Data;
  CodeCache CC;
  CodeImage Image;
  MetaPredictor Predictor;
  SmtCore Core;
  /// Lane-local cycle at the start of the measurement window (co-runner
  /// clocks are not cleared by clearStats).
  Cycle MeasureStart = 0;

  CoLane(Workload Src, const CoreConfig &Cfg, MemorySystem &Mem)
      : W(std::move(Src)), Prog(W.Prog), Image(Prog, CC),
        Core(Cfg, Image, Data, Mem) {
    W.Init(Data);
    Core.setBranchPredictor(&Predictor);
    Core.startContext(0, Prog.entryPC());
  }

  uint64_t instructions() const { return Core.stats(0).CommittedOriginal; }
  Cycle cycles() const { return Core.now() - MeasureStart; }
};

} // namespace

SimResult trident::runMixSimulation(const Workload &W, const SimConfig &Config,
                                    EventTracer *Tracer) {
  TRIDENT_CHECK(!Config.MixWith.empty() && Config.MixWith.size() <= 3,
                "mix supports 1..3 co-runners, got %zu",
                Config.MixWith.size());
  TRIDENT_CHECK(Config.MixQuantumCycles > 0, "mix quantum must be positive");

  // Lane 0: the primary, wired exactly like the solo path in
  // runSimulation (Trident runtime, control plane, fault injector,
  // tracer) — a mix result must read like a solo result under contention.
  Program Prog = W.Prog; // private copy: Trident patches it
  DataMemory Data;
  W.Init(Data);

  MemorySystem Mem(Config.Mem);
  PrefetcherEnv Env;
  Env.PageBounded = Config.Mem.Tlb.Enable;
  Env.PageBits = Config.Mem.Tlb.PageBits;
  {
    std::string PfError;
    std::unique_ptr<HwPrefetcher> Unit =
        PrefetcherRegistry::instance().create(Config.HwPf, Env, &PfError);
    TRIDENT_CHECK(Unit || PrefetcherRegistry::isNone(Config.HwPf),
                  "bad --hwpf spec '%s': %s", Config.HwPf.c_str(),
                  PfError.c_str());
    if (Unit)
      Mem.attachPrefetcher(std::move(Unit));
  }

  CoreConfig CoreCfg = Config.Core;
  if (Config.Selector.enabled() && CoreCfg.HwPfFeedbackIntervalCommits == 0)
    CoreCfg.HwPfFeedbackIntervalCommits = Config.Selector.IntervalCommits;
  TRIDENT_CHECK(CoreCfg.MemBias == 0,
                "lane 0 owns bias 0; configure co-runners via MixWith");

  CodeCache CC;
  CodeImage Image(Prog, CC);
  SmtCore Core(CoreCfg, Image, Data, Mem);
  MetaPredictor Predictor;
  Core.setBranchPredictor(&Predictor);

  EventBus Bus;
  Core.setEventBus(&Bus);

  std::unique_ptr<TridentRuntime> Runtime;
  if (Config.EnableTrident) {
    RuntimeConfig RC = Config.Runtime;
    RC.MemoryLatency = Config.Mem.MemoryLatency;
    RC.L1HitLatency = Config.Mem.L1.HitLatency;
    Runtime = std::make_unique<TridentRuntime>(RC, Prog, Core, CC);
    Runtime->attach(Bus);
  }
  std::unique_ptr<PhaseMonitor> Monitor;
  if (Config.Selector.enabled()) {
    Monitor = std::make_unique<PhaseMonitor>(Config.Selector, Mem, Env,
                                             Config.HwPf);
    Monitor->attach(Bus);
  }
  std::unique_ptr<FaultInjector> Injector;
  if (!Config.Faults.empty()) {
    FaultTargets Targets;
    Targets.Mem = &Mem;
    Targets.Runtime = Runtime.get();
    Injector = std::make_unique<FaultInjector>(Config.Faults, Targets);
    Injector->attach(Bus);
  }
  if (Tracer)
    Bus.subscribeDeferred(Tracer, Tracer->mask());

  Core.startContext(0, Prog.entryPC());

  // Lanes 1..N: co-runners on private cores over the SAME memory system.
  // Each lane's bias keeps its cache/MSHR/prefetcher footprint disjoint
  // from every other lane's in tag space while contending for the same
  // capacity and bandwidth. Bit 44 leaves the full 16 TiB workload
  // address range below untouched.
  std::vector<std::unique_ptr<CoLane>> CoLanes;
  for (size_t I = 0; I < Config.MixWith.size(); ++I) {
    CoreConfig LaneCfg = Config.Core;
    LaneCfg.MemBias = static_cast<Addr>(I + 1) << 44;
    // Co-runners have no event bus, so the feedback channel would only
    // burn a countdown; keep it off regardless of the primary's setting.
    LaneCfg.HwPfFeedbackIntervalCommits = 0;
    CoLanes.push_back(std::make_unique<CoLane>(
        makeWorkload(Config.MixWith[I]), LaneCfg, Mem));
  }

  // Quantum round-robin: the boundary advances by MixQuantumCycles per
  // round; lane 0 runs first toward its commit goal (capped at the
  // boundary), then each live co-runner catches up to the boundary. A
  // co-runner is never ahead of the boundary and lane 0 never lags a
  // finished round, so lane clocks stay within one quantum of each other.
  Cycle Boundary = 0;
  auto advanceCoLanes = [&](Cycle Limit) {
    for (std::unique_ptr<CoLane> &L : CoLanes)
      if (!L->Core.halted(0) && L->Core.now() < Limit)
        L->Core.run(kUnboundedCommits, Limit);
  };
  auto runLane0Until = [&](uint64_t CommitGoal) {
    SmtCore::StopReason R = SmtCore::StopReason::CommitTarget;
    while (true) {
      Boundary += Config.MixQuantumCycles;
      uint64_t Done = Core.stats(0).CommittedOriginal;
      if (Done < CommitGoal)
        R = Core.run(CommitGoal - Done, Boundary);
      advanceCoLanes(Boundary);
      if (Core.stats(0).CommittedOriginal >= CommitGoal ||
          R != SmtCore::StopReason::CycleLimit)
        return R;
    }
  };

  // Warmup (monitoring/optimization disabled, Section 4.2) under full
  // contention: co-runners warm the shared caches' working pressure too.
  if (Config.WarmupInstructions > 0) {
    SmtCore::StopReason R = runLane0Until(Config.WarmupInstructions);
    TRIDENT_CHECK(R != SmtCore::StopReason::CycleLimit,
                  "mix warmup of %llu instructions stalled",
                  (unsigned long long)Config.WarmupInstructions);
    (void)R;
  }
  if (Runtime)
    Runtime->setEnabled(true);

  // Measurement window.
  Core.clearStats();
  Mem.clearStats();
  Bus.clearCounts();
  if (Runtime)
    Runtime->clearStats();
  if (Monitor)
    Monitor->onMeasurementStart();
  for (std::unique_ptr<CoLane> &L : CoLanes) {
    L->Core.clearStats();
    L->MeasureStart = L->Core.now();
  }
  Cycle Start = Core.now();
  SmtCore::StopReason Stop = runLane0Until(Config.SimInstructions);
  Cycle End = Core.now();
  Bus.flush();
  TRIDENT_CHECK(End >= Start,
                "measurement window ran backwards: start %llu, end %llu",
                (unsigned long long)Start, (unsigned long long)End);

  MachineSnapshot M;
  M.W = &W;
  M.Config = &Config;
  M.CoreCfg = &CoreCfg;
  M.Core = &Core;
  M.Mem = &Mem;
  M.Bus = &Bus;
  M.Runtime = Runtime.get();
  M.Injector = Injector.get();
  M.Monitor = Monitor.get();
  M.Start = Start;
  M.End = End;
  M.Stop = Stop;
  SimResult Res = assembleSimResult(M, [&](StatRegistry &Reg) {
    // mix.* lines appear only on mix runs (only-when-on): solo exports —
    // and the legacy golden corpus — never see them.
    Reg.setCounter("mix.lanes", 1 + CoLanes.size());
    Reg.setCounter("mix.quantum_cycles", Config.MixQuantumCycles);
    for (size_t I = 0; I < CoLanes.size(); ++I) {
      const std::string P = "mix.lane" + std::to_string(I + 1) + ".";
      Reg.setCounter(P + "instructions", CoLanes[I]->instructions());
      Reg.setCounter(P + "cycles", CoLanes[I]->cycles());
      Reg.setCounter(P + "halted", CoLanes[I]->Core.halted(0) ? 1 : 0);
    }
  });
  for (std::unique_ptr<CoLane> &L : CoLanes) {
    SimResult::MixLane Lane;
    Lane.Workload = L->W.Name;
    Lane.Instructions = L->instructions();
    Lane.Cycles = L->cycles();
    Res.MixLanes.push_back(std::move(Lane));
  }
  return Res;
}
